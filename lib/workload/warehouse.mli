(** Temporal view maintenance over a non-temporal source — the
    warehousing application (Yang & Widom) that motivated TIP.

    The source is a current-state relation [assignment(emp, dept)]; the
    warehouse view [assignment_history(emp, dept, valid Element)]
    records when each fact held. Each source change propagates with one
    TIP statement: an assignment opens a [t, NOW] period with the
    NOW-preserving [add_period]; a revocation clips with [difference]
    evaluated at the event time (grounding the open period exactly
    there). {!recompute} is the middleware oracle folding the full log;
    the incremental view equals it (tested), and E9 benchmarks the cost
    gap. *)

open Tip_core
module Db = Tip_engine.Database

type op = Assign | Revoke

type event = { at : Chronon.t; emp : string; dept : string; op : op }

(** (Re)creates the assignment_history table. *)
val setup : Db.t -> unit

val history_schema : string

(** Applies one source event to the view, using only SQL. *)
val apply_incremental : Db.t -> event -> unit

val apply_all : Db.t -> event list -> unit

(** Folds the event log directly with the core library; facts with empty
    histories under [now] are dropped. Sorted output. *)
val recompute :
  event list -> now:Chronon.t -> ((string * string) * Period.ground list) list

(** Reads the maintained view back, grounded under [now]. Sorted. *)
val view_of_db :
  Db.t -> now:Chronon.t -> ((string * string) * Period.ground list) list

(** A plausible event log: employees drift between departments over
    years, with strictly increasing times. *)
val random_events :
  ?seed:int -> employees:int -> departments:int -> events:int -> unit ->
  event list

(** {1 Years-deep history — the partition workload (E23)} *)

(** Default table name for the deep-history fact table. *)
val deep_table : string

(** The [CREATE TABLE] statement for the deep-history table
    [(id INT, dept CHAR(20), valid Element)]; with [~partitioned:true]
    it carries a [PARTITION BY RANGE (valid)] clause with one partition
    per year plus a DEFAULT partition. *)
val deep_schema :
  ?table:string -> partitioned:bool -> start_year:int -> years:int -> unit ->
  string

(** [rows] facts spread over [years] years from [start_year], with
    [hot_fraction] of them concentrated in the final year (the hot tail
    a "last year" dashboard window hits) and the rest uniform over the
    earlier years. Periods stay inside their year so per-partition end
    watermarks prune tightly. Returns [(id, dept, element literal)]
    triples, deterministic per [seed]. *)
val deep_history_rows :
  ?seed:int -> ?start_year:int -> ?years:int -> ?hot_fraction:float ->
  ?departments:int -> rows:int -> unit -> (int * string * string) list

(** Inserts one generated triple into the deep-history table. *)
val deep_insert : ?table:string -> Db.t -> int * string * string -> unit
