(* Temporal view maintenance over a non-temporal source — the warehousing
   application (Yang & Widom [9,10]) that motivated building TIP.

   The source is a plain current-state relation [assignment(emp, dept)].
   The warehouse keeps a temporal view [assignment_history(emp, dept,
   valid Element)] recording exactly when each fact held. Each source
   change is propagated *incrementally* with one TIP SQL statement:

   - assign at time t:  open a period — [union(valid, '{[t, NOW]}')];
   - revoke at time t:  close the open period — [difference(valid,
     '{[t+1s, forever]}')] evaluated with NOW = t.

   The oracle [recompute] folds the full event log in the middleware; the
   incremental view must always equal it (tested), and E9 benchmarks the
   cost gap as history grows. *)

open Tip_core
open Tip_storage
module Db = Tip_engine.Database

type op = Assign | Revoke

type event = { at : Chronon.t; emp : string; dept : string; op : op }

let history_schema =
  "CREATE TABLE assignment_history (emp CHAR(20), dept CHAR(20), \
   valid Element)"

let setup db =
  ignore (Db.exec db "DROP TABLE IF EXISTS assignment_history");
  ignore (Db.exec db history_schema)

let forever = "9999-12-31 23:59:59"

(* Applies one source event to the warehouse view, using only SQL. *)
let apply_incremental db event =
  ignore
    (Db.exec db
       (Printf.sprintf "SET NOW = '%s'" (Chronon.to_string event.at)));
  match event.op with
  | Assign ->
    (* add_period (not union!) keeps the [t, NOW] endpoint symbolic, so
       the fact stays open until revoked. *)
    let opened = Printf.sprintf "[%s, NOW]" (Chronon.to_string event.at) in
    let updated =
      Db.affected_exn
        (Db.exec db
           (Printf.sprintf
              "UPDATE assignment_history SET valid = add_period(valid, \
               '%s'::Period) WHERE emp = '%s' AND dept = '%s'"
              opened event.emp event.dept))
    in
    if updated = 0 then
      ignore
        (Db.exec db
           (Printf.sprintf
              "INSERT INTO assignment_history VALUES ('%s', '%s', '{[%s, NOW]}')"
              event.emp event.dept (Chronon.to_string event.at)))
  | Revoke ->
    (* Clip everything after t; grounding under NOW = t also closes the
       open [_, NOW] period at t. *)
    ignore
      (Db.exec db
         (Printf.sprintf
            "UPDATE assignment_history SET valid = difference(valid, \
             '{[%s, %s]}') WHERE emp = '%s' AND dept = '%s'"
            (Chronon.to_string (Chronon.succ event.at))
            forever event.emp event.dept))

let apply_all db events = List.iter (apply_incremental db) events

(* Middleware oracle: folds the event log directly with the core library. *)
let recompute events ~now =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      let key = (ev.emp, ev.dept) in
      let current = Option.value (Hashtbl.find_opt tbl key) ~default:Element.empty in
      let next =
        match ev.op with
        | Assign -> Element.add_period (Period.since ev.at) current
        | Revoke ->
          Element.difference ~now:ev.at current
            (Element.of_period
               (Period.of_chronons (Chronon.succ ev.at)
                  (Chronon.of_ymd 9999 12 31)))
      in
      Hashtbl.replace tbl key next)
    events;
  Hashtbl.fold
    (fun (emp, dept) element acc ->
      let ground = Element.ground ~now element in
      if ground = [] then acc else ((emp, dept), ground) :: acc)
    tbl []
  |> List.sort compare

(* Reads the maintained view back, grounded under [now]. *)
let view_of_db db ~now =
  let table = Catalog.table_exn (Db.catalog db) "assignment_history" in
  let acc = ref [] in
  Table.iteri
    (fun _ row ->
      let emp = Value.to_display_string row.(0) in
      let dept = Value.to_display_string row.(1) in
      let element = Tip_blade.Values.as_element row.(2) in
      let ground = Element.ground ~now element in
      if ground <> [] then acc := ((emp, dept), ground) :: !acc)
    table;
  List.sort compare !acc

(* A plausible event log: employees drift between departments over the
   years; times strictly increase. *)
let random_events ?(seed = 11) ~employees ~departments ~events () =
  let st = Random.State.make [| seed |] in
  let current = Array.make employees None in
  let t = ref (Chronon.of_ymd 1995 1 1) in
  let out = ref [] in
  let emit ev = out := ev :: !out in
  for _ = 1 to events do
    t := Chronon.add !t (Span.of_hours (1 + Random.State.int st 400));
    let e = Random.State.int st employees in
    let emp = Printf.sprintf "emp%03d" e in
    match current.(e) with
    | None ->
      let dept = Printf.sprintf "dept%02d" (Random.State.int st departments) in
      current.(e) <- Some dept;
      emit { at = !t; emp; dept; op = Assign }
    | Some dept ->
      if Random.State.bool st then begin
        (* move to another department: revoke then assign *)
        current.(e) <- None;
        emit { at = !t; emp; dept; op = Revoke }
      end
      else begin
        let dept' =
          Printf.sprintf "dept%02d" (Random.State.int st departments)
        in
        if dept' <> dept then begin
          emit { at = !t; emp; dept; op = Revoke };
          t := Chronon.add !t (Span.of_seconds 1);
          emit { at = !t; emp; dept = dept'; op = Assign };
          current.(e) <- Some dept'
        end
      end
  done;
  List.rev !out

(* --- Years-deep history (partition workloads, E23) -------------------- *)

let deep_table = "fact_history"

let deep_schema ?(table = deep_table) ~partitioned ~start_year ~years () =
  let cols = "(id INT, dept CHAR(20), valid Element)" in
  if not partitioned then Printf.sprintf "CREATE TABLE %s %s" table cols
  else begin
    let parts =
      List.init years (fun i ->
          let y = start_year + i in
          Printf.sprintf
            "PARTITION y%d FOR VALUES FROM '%d-01-01' TO '%d-01-01'" y y
            (y + 1))
      @ [ "PARTITION pdefault DEFAULT" ]
    in
    Printf.sprintf "CREATE TABLE %s %s PARTITION BY RANGE (valid) (%s)" table
      cols
      (String.concat ", " parts)
  end

let deep_history_rows ?(seed = 23) ?(start_year = 2015) ?(years = 10)
    ?(hot_fraction = 0.5) ?(departments = 20) ~rows () =
  let st = Random.State.make [| seed |] in
  (* Real calendar-year boundaries: a flat 365-day stride would drift
     across leap years and leak the hot tail into the previous year's
     partition, defeating the watermark prune the workload exercises. *)
  let year_start =
    Array.init (years + 1) (fun i ->
        Chronon.to_unix_seconds (Chronon.of_ymd (start_year + i) 1 1))
  in
  List.init rows (fun i ->
      (* Hot-tail skew: [hot_fraction] of the facts land in the final
         year, the window a dashboard-style "last year" query hits. *)
      let year =
        if years <= 1 || Random.State.float st 1.0 < hot_fraction then
          years - 1
        else Random.State.int st (years - 1)
      in
      (* Periods stay inside their year (ends capped ~40 days before
         year end), so per-partition end watermarks prune tightly. *)
      let span = year_start.(year + 1) - year_start.(year) in
      let offset = Random.State.int st (span - (40 * 24 * 3600)) in
      let start = year_start.(year) + offset in
      let len = 3600 * (1 + Random.State.int st (30 * 24)) in
      let dept = Printf.sprintf "dept%02d" (Random.State.int st departments) in
      ( i,
        dept,
        Printf.sprintf "{[%s, %s]}"
          (Chronon.to_string (Chronon.of_unix_seconds start))
          (Chronon.to_string (Chronon.of_unix_seconds (start + len))) ))

let deep_insert ?(table = deep_table) db (id, dept, element) =
  ignore
    (Db.exec db
       (Printf.sprintf "INSERT INTO %s VALUES (%d, '%s', '%s')" table id dept
          element))
