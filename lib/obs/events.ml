(* The structured event journal. One line per event on disk:

     <unix_seconds>\t<kind>\t<detail>

   with tabs and newlines in the detail escaped, so the file greps
   cleanly and reloads losslessly. *)

type event = { ev_seq : int; ev_at : float; ev_kind : string; ev_detail : string }

let window = 4096
let lock = Mutex.create ()
let mem : event list ref = ref [] (* newest first *)
let count = ref 0
let path : string option ref = ref None

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 't' -> Buffer.add_char buf '\t'
       | 'n' -> Buffer.add_char buf '\n'
       | c -> Buffer.add_char buf c);
       incr i
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let push ev =
  mem := ev :: !mem;
  incr count;
  (* trim lazily: the window only matters within 2x *)
  if !count > 2 * window then begin
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> []
    in
    mem := take window !mem;
    count := window
  end

let parse_line seq line =
  match String.split_on_char '\t' line with
  | at :: kind :: rest -> (
    match float_of_string_opt at with
    | Some at ->
      Some
        { ev_seq = seq; ev_at = at; ev_kind = kind;
          ev_detail = unescape (String.concat "\t" rest) }
    | None -> None)
  | _ -> None

let set_journal p =
  locked (fun () ->
      path := p;
      mem := [];
      count := 0;
      match p with
      | None -> ()
      | Some file when Sys.file_exists file ->
        let ic = open_in file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            (try
               let seq = ref 0 in
               while true do
                 (match parse_line !seq (input_line ic) with
                 | Some ev ->
                   push ev;
                   incr seq
                 | None -> ())
               done
             with End_of_file -> ()))
      | Some _ -> ())

let journal_path () = locked (fun () -> !path)

let record ~kind ~detail =
  locked (fun () ->
      let ev =
        { ev_seq = !count; ev_at = Unix.gettimeofday (); ev_kind = kind;
          ev_detail = detail }
      in
      push ev;
      match !path with
      | None -> ()
      | Some file -> (
        try
          let oc =
            open_out_gen [ Open_append; Open_creat ] 0o644 file
          in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              Printf.fprintf oc "%.3f\t%s\t%s\n" ev.ev_at (escape ev.ev_kind)
                (escape ev.ev_detail))
        with Sys_error _ -> ()))

let events () =
  locked (fun () ->
      let rec take n = function
        | x :: rest when n > 0 -> x :: take (n - 1) rest
        | _ -> []
      in
      List.rev (take window !mem))

let reset () =
  locked (fun () ->
      mem := [];
      count := 0;
      path := None)
