(* Wait-event instrumentation and the ASH sampler (DESIGN.md §16).

   The hot path is [with_wait]: one hashtable probe to find the calling
   thread's session slot, two clock reads, two atomic adds. The slot's
   mutable fields are written by the owning thread and read racily by
   the sampler — a torn read costs one mislabelled monitoring sample,
   never a wrong query answer, so no fence is taken per wait. *)

type wait_class =
  | DbLock
  | WalFsync
  | WalAppend
  | ArchiveSeal
  | ReplicaApply
  | ClientRead
  | ClientWrite
  | Checkpoint
  | Admission

let all =
  [ DbLock; WalFsync; WalAppend; ArchiveSeal; ReplicaApply; ClientRead;
    ClientWrite; Checkpoint; Admission ]

let label = function
  | DbLock -> "DbLock"
  | WalFsync -> "WalFsync"
  | WalAppend -> "WalAppend"
  | ArchiveSeal -> "ArchiveSeal"
  | ReplicaApply -> "ReplicaApply"
  | ClientRead -> "ClientRead"
  | ClientWrite -> "ClientWrite"
  | Checkpoint -> "Checkpoint"
  | Admission -> "Admission"

let index = function
  | DbLock -> 0
  | WalFsync -> 1
  | WalAppend -> 2
  | ArchiveSeal -> 3
  | ReplicaApply -> 4
  | ClientRead -> 5
  | ClientWrite -> 6
  | Checkpoint -> 7
  | Admission -> 8

let n_classes = List.length all
let counts = Array.init n_classes (fun _ -> Atomic.make 0)
let totals = Array.init n_classes (fun _ -> Atomic.make 0)

type session = {
  ws_id : int;
  ws_kind : string;
  mutable ws_thread : int; (* Thread.id of the bound thread; -1 unbound *)
  mutable ws_query : string option;
  mutable ws_active : bool;
  mutable ws_wait : wait_class option;
}

(* Registration is per-connection, not per-statement: a plain mutex
   around the thread-id table is fine, and [with_wait] only takes it
   for the O(1) probe. *)
let sessions_lock = Mutex.create ()
let by_thread : (int, session) Hashtbl.t = Hashtbl.create 32

let locked f =
  Mutex.lock sessions_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock sessions_lock) f

let register ~id ~kind =
  let s =
    { ws_id = id; ws_kind = kind; ws_thread = Thread.id (Thread.self ());
      ws_query = None; ws_active = false; ws_wait = None }
  in
  locked (fun () -> Hashtbl.replace by_thread s.ws_thread s);
  s

let unregister s =
  locked (fun () ->
      match Hashtbl.find_opt by_thread s.ws_thread with
      | Some s' when s' == s -> Hashtbl.remove by_thread s.ws_thread
      | _ -> ())

let set_query s q = s.ws_query <- q
let set_active s b = s.ws_active <- b
let session_count () = locked (fun () -> Hashtbl.length by_thread)

let self_session () =
  locked (fun () -> Hashtbl.find_opt by_thread (Thread.id (Thread.self ())))

let with_wait cls f =
  let slot = self_session () in
  let prev = match slot with Some s -> s.ws_wait | None -> None in
  (match slot with Some s -> s.ws_wait <- Some cls | None -> ());
  let t0 = Trace.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Trace.now_ns () - t0 in
      let i = index cls in
      Atomic.incr counts.(i);
      ignore (Atomic.fetch_and_add totals.(i) (max 0 dt));
      match slot with Some s -> s.ws_wait <- prev | None -> ())
    f

let stats () =
  List.map
    (fun c -> (c, Atomic.get counts.(index c), Atomic.get totals.(index c)))
    all

let reset_stats () =
  Array.iter (fun a -> Atomic.set a 0) counts;
  Array.iter (fun a -> Atomic.set a 0) totals

(* --- the active session history ------------------------------------- *)

type sample = {
  sa_seq : int;
  sa_at : float;
  sa_interval_ms : int;
  sa_session : int;
  sa_kind : string;
  sa_query : string option;
  sa_state : string;
}

let env_int name default floor =
  match Sys.getenv_opt name with
  | Some v -> (match int_of_string_opt v with Some n -> max floor n | None -> default)
  | None -> default

let interval = ref (env_int "TIP_ASH_INTERVAL_MS" 100 5)
let interval_ms () = !interval

let ring_lock = Mutex.create ()
let ring : sample option array ref = ref (Array.make (env_int "TIP_ASH_RING" 4096 1) None)
let ring_next = ref 0 (* next write slot *)
let ring_seq = ref 0

let ring_locked f =
  Mutex.lock ring_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock ring_lock) f

let ring_capacity () = ring_locked (fun () -> Array.length !ring)

let set_ring_capacity n =
  ring_locked (fun () ->
      ring := Array.make (max 1 n) None;
      ring_next := 0)

let clear_samples () =
  ring_locked (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      ring_next := 0)

let push_sample sa =
  let r = !ring in
  r.(!ring_next) <- Some sa;
  ring_next := (!ring_next + 1) mod Array.length r

let samples () =
  ring_locked (fun () ->
      let r = !ring in
      let n = Array.length r in
      let out = ref [] in
      (* walk backwards from the newest slot so the result is oldest
         first once the accumulator reverses it *)
      for k = 0 to n - 1 do
        match r.((!ring_next - 1 - k + (2 * n)) mod n) with
        | Some sa -> out := sa :: !out
        | None -> ()
      done;
      !out)

let sample_now () =
  let watched =
    locked (fun () ->
        Hashtbl.fold
          (fun _ s acc ->
            if s.ws_active || s.ws_wait <> None then s :: acc else acc)
          by_thread [])
  in
  if watched <> [] then begin
    let at = Unix.gettimeofday () in
    let iv = !interval in
    ring_locked (fun () ->
        List.iter
          (fun s ->
            let state =
              match s.ws_wait with Some c -> label c | None -> "Cpu"
            in
            let seq = !ring_seq in
            incr ring_seq;
            push_sample
              { sa_seq = seq; sa_at = at; sa_interval_ms = iv;
                sa_session = s.ws_id; sa_kind = s.ws_kind;
                sa_query = s.ws_query; sa_state = state })
          watched)
  end

(* --- the sampler thread --------------------------------------------- *)

let ash_enabled =
  match Sys.getenv_opt "TIP_ASH" with
  | Some ("off" | "0" | "false" | "OFF") -> false
  | _ -> true

let sampler_lock = Mutex.create ()
let sampler : Thread.t option ref = ref None
let sampler_stop = Atomic.make false

let sampler_running () =
  Mutex.lock sampler_lock;
  let r = !sampler <> None in
  Mutex.unlock sampler_lock;
  r

let start_sampler () =
  if ash_enabled then begin
    Mutex.lock sampler_lock;
    if !sampler = None then begin
      Atomic.set sampler_stop false;
      sampler :=
        Some
          (Thread.create
             (fun () ->
               while not (Atomic.get sampler_stop) do
                 sample_now ();
                 Thread.delay (float_of_int !interval /. 1000.)
               done)
             ())
    end;
    Mutex.unlock sampler_lock
  end

let stop_sampler () =
  Mutex.lock sampler_lock;
  let t = !sampler in
  sampler := None;
  Atomic.set sampler_stop true;
  Mutex.unlock sampler_lock;
  Option.iter Thread.join t
