(** The structured event journal (DESIGN.md §16): a persistent,
    append-only record of the rare-but-load-bearing lifecycle events —
    checkpoints, backups, recovery, promotion, epoch changes, fencing —
    each stamped with a unix instant, so a post-incident timeline is
    one [SELECT * FROM tip_stat_events] away.

    Events always land in a bounded in-memory window; when a journal
    file is attached (a durable database attaches
    [<dir>/events.log] on open) they are also appended there and the
    existing tail is reloaded, so the timeline survives restarts. *)

type event = {
  ev_seq : int;
  ev_at : float;  (** unix seconds *)
  ev_kind : string;
      (** ["checkpoint"], ["backup"], ["recovery"], ["promotion"],
          ["epoch_change"], ["fenced"], ... *)
  ev_detail : string;
}

(** Attaches (or with [None], detaches) the journal file. Reloads any
    events already recorded in it, newest [window] retained. *)
val set_journal : string option -> unit

val journal_path : unit -> string option

(** Appends an event: into memory, and into the journal when attached.
    Never raises — a full disk degrades to memory-only. *)
val record : kind:string -> detail:string -> unit

(** The retained window, oldest first. *)
val events : unit -> event list

(** Drops the in-memory window and detaches the journal (tests). *)
val reset : unit -> unit
