let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

type span = {
  sp_name : string;
  mutable sp_attrs : (string * string) list;
  mutable sp_elapsed_ns : int;
  mutable sp_children : span list;
}

(* Open spans keep [sp_children] newest-first while children accumulate;
   closing a span reverses the list into start order. [tr_stack] is the
   path of open spans, innermost first. *)
type t = {
  tr_root : span;
  mutable tr_stack : (span * int) list; (* span, start ns *)
}

let fresh name =
  { sp_name = name; sp_attrs = []; sp_elapsed_ns = -1; sp_children = [] }

let start name =
  let root = fresh name in
  { tr_root = root; tr_stack = [ (root, now_ns ()) ] }

let root t = t.tr_root

let close_span sp start_ns =
  sp.sp_elapsed_ns <- now_ns () - start_ns;
  sp.sp_children <- List.rev sp.sp_children

let with_span t name f =
  match t.tr_stack with
  | [] -> f () (* trace already finished: run untraced *)
  | (parent, _) :: _ ->
    let sp = fresh name in
    parent.sp_children <- sp :: parent.sp_children;
    let start_ns = now_ns () in
    t.tr_stack <- (sp, start_ns) :: t.tr_stack;
    Fun.protect
      ~finally:(fun () ->
        close_span sp start_ns;
        (match t.tr_stack with
        | (top, _) :: rest when top == sp -> t.tr_stack <- rest
        | _ -> () (* unbalanced finish already popped us *)))
      f

let annotate t key value =
  match t.tr_stack with
  | [] -> ()
  | (sp, _) :: _ -> sp.sp_attrs <- (key, value) :: sp.sp_attrs

let finish t =
  List.iter (fun (sp, start_ns) -> close_span sp start_ns) t.tr_stack;
  t.tr_stack <- [];
  t.tr_root

let children sp = sp.sp_children
let find_child sp name = List.find_opt (fun c -> c.sp_name = name) sp.sp_children

let render sp =
  let buf = Buffer.create 256 in
  let rec go indent sp =
    let attrs =
      match List.rev sp.sp_attrs with
      | [] -> ""
      | kvs ->
        " ["
        ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
        ^ "]"
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s (%.3f ms)%s\n"
         (String.make (indent * 2) ' ')
         sp.sp_name
         (float_of_int sp.sp_elapsed_ns /. 1e6)
         attrs);
    List.iter (go (indent + 1)) sp.sp_children
  in
  go 0 sp;
  Buffer.contents buf

(* Ambient slot: single statement at a time (see .mli). *)
let ambient_slot : t option ref = ref None
let ambient () = !ambient_slot

let with_ambient t f =
  let saved = !ambient_slot in
  ambient_slot := Some t;
  Fun.protect ~finally:(fun () -> ambient_slot := saved) f
