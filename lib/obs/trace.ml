let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

type span = {
  sp_name : string;
  mutable sp_attrs : (string * string) list;
  mutable sp_start_ns : int;
  mutable sp_elapsed_ns : int;
  mutable sp_children : span list;
}

(* Open spans keep [sp_children] newest-first while children accumulate;
   closing a span reverses the list into start order. [tr_stack] is the
   path of open spans, innermost first. *)
type t = {
  tr_root : span;
  mutable tr_stack : (span * int) list; (* span, start ns *)
}

let fresh name =
  { sp_name = name;
    sp_attrs = [];
    sp_start_ns = -1;
    sp_elapsed_ns = -1;
    sp_children = [] }

let start name =
  let root = fresh name in
  let t0 = now_ns () in
  root.sp_start_ns <- t0;
  { tr_root = root; tr_stack = [ (root, t0) ] }

let root t = t.tr_root

let close_span sp start_ns =
  sp.sp_elapsed_ns <- now_ns () - start_ns;
  sp.sp_children <- List.rev sp.sp_children

let with_span t name f =
  match t.tr_stack with
  | [] -> f () (* trace already finished: run untraced *)
  | (parent, _) :: _ ->
    let sp = fresh name in
    parent.sp_children <- sp :: parent.sp_children;
    let start_ns = now_ns () in
    sp.sp_start_ns <- start_ns;
    t.tr_stack <- (sp, start_ns) :: t.tr_stack;
    Fun.protect
      ~finally:(fun () ->
        close_span sp start_ns;
        (match t.tr_stack with
        | (top, _) :: rest when top == sp -> t.tr_stack <- rest
        | _ -> () (* unbalanced finish already popped us *)))
      f

let annotate t key value =
  match t.tr_stack with
  | [] -> ()
  | (sp, _) :: _ -> sp.sp_attrs <- (key, value) :: sp.sp_attrs

(* The most recently finished root span, kept so a caller above the
   engine (the server's slow-statement path) can export the trace of
   the statement it just ran without threading the handle through
   [Database.exec]. Like the ambient slot, statements finish one at a
   time per process. *)
let last_root_slot : span option ref = ref None
let last_root () = !last_root_slot

let finish t =
  List.iter (fun (sp, start_ns) -> close_span sp start_ns) t.tr_stack;
  t.tr_stack <- [];
  last_root_slot := Some t.tr_root;
  t.tr_root

let children sp = sp.sp_children
let find_child sp name = List.find_opt (fun c -> c.sp_name = name) sp.sp_children

let render sp =
  let buf = Buffer.create 256 in
  let rec go indent sp =
    let attrs =
      match List.rev sp.sp_attrs with
      | [] -> ""
      | kvs ->
        " ["
        ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
        ^ "]"
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s (%.3f ms)%s\n"
         (String.make (indent * 2) ' ')
         sp.sp_name
         (float_of_int sp.sp_elapsed_ns /. 1e6)
         attrs);
    List.iter (go (indent + 1)) sp.sp_children
  in
  go 0 sp;
  Buffer.contents buf

(* --- Chrome trace-event export ----------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* A finished span tree as a Chrome trace-event JSON array: one
   complete ("ph":"X") event per span, timestamps in microseconds
   relative to the root's start, attributes carried as "args". The
   format is what about:tracing and Perfetto load directly. *)
let to_chrome_json root =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '[';
  let first = ref true in
  let rec go sp =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    let ts =
      if sp.sp_start_ns < 0 || root.sp_start_ns < 0 then 0.
      else float_of_int (sp.sp_start_ns - root.sp_start_ns) /. 1e3
    in
    let dur =
      if sp.sp_elapsed_ns < 0 then 0. else float_of_int sp.sp_elapsed_ns /. 1e3
    in
    let args =
      match List.rev sp.sp_attrs with
      | [] -> ""
      | kvs ->
        Printf.sprintf ",\"args\":{%s}"
          (String.concat ","
             (List.map
                (fun (k, v) ->
                  Printf.sprintf "\"%s\":\"%s\"" (json_escape k)
                    (json_escape v))
                kvs))
    in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f%s}"
         (json_escape sp.sp_name) ts dur args);
    List.iter go sp.sp_children
  in
  go root;
  Buffer.add_string buf "]\n";
  Buffer.contents buf

(* Export directory: TIP_TRACE_DIR seeds it; tip_serve --trace-dir
   overrides via [set_trace_dir]. *)
let trace_dir_ref = ref (Sys.getenv_opt "TIP_TRACE_DIR")
let trace_dir () = !trace_dir_ref
let set_trace_dir d = trace_dir_ref := d

let export_seq = Atomic.make 0

(* Writes one trace file and returns its path (None when no directory
   is configured or the write fails — tracing must never take down the
   statement it observed). *)
let export_chrome root =
  match !trace_dir_ref with
  | None -> None
  | Some dir -> (
    let seq = Atomic.fetch_and_add export_seq 1 in
    let path =
      Filename.concat dir
        (Printf.sprintf "trace-%d-%d.json"
           (int_of_float (Unix.gettimeofday () *. 1e3))
           seq)
    in
    try
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (to_chrome_json root));
      Some path
    with Sys_error _ | Unix.Unix_error _ -> None)

(* Ambient slot: single statement at a time (see .mli). *)
let ambient_slot : t option ref = ref None
let ambient () = !ambient_slot

let with_ambient t f =
  let saved = !ambient_slot in
  ambient_slot := Some t;
  Fun.protect ~finally:(fun () -> ambient_slot := saved) f
