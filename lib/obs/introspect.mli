(** Bounded statement-fingerprint store (the backing of the
    [tip_stat_statements] virtual table).

    Keys are normalized statement shapes produced by the caller (the
    engine uses [Tip_sql.Lexer.fingerprint]); this module never parses
    SQL. Each key aggregates calls, latency (total/min/max plus a
    private fixed-bucket histogram aligned with {!Metrics.bounds} for
    percentile estimation), rows returned/scanned, error and
    cancellation counts.

    The store holds at most {!capacity} shapes; a new shape arriving at
    capacity evicts the least-recently-updated entry. Updates take one
    process-wide mutex — statements execute serially per database, so
    the lock is effectively uncontended (benchmark E20 bounds the cost).

    Recording is on unless [TIP_STAT_STATEMENTS] is set to
    [off]/[0]/[false]; the default capacity of 512 is overridden by
    [TIP_STAT_STATEMENTS_CAP]. *)

type outcome = Finished | Errored | Cancelled

(** Aggregated row for one statement shape (a read-only copy). *)
type stat = {
  query : string;  (** the normalized statement text *)
  calls : int;
  total_ns : int;
  min_ns : int;
  max_ns : int;
  rows_returned : int;
  rows_scanned : int;
  errors : int;
  cancelled : int;
  buckets : int array;
      (** non-cumulative latency buckets aligned with
          {!Metrics.bucket_labels}; feed to
          {!Metrics.percentile_of_buckets} *)
}

val record :
  query:string ->
  elapsed_ns:int ->
  rows_returned:int ->
  rows_scanned:int ->
  outcome ->
  unit
(** Folds one execution into the entry for [query] (creating or
    evicting as needed). No-op while disabled. *)

val snapshot : unit -> stat list
(** Copies of every entry, sorted by descending total time. *)

val size : unit -> int
(** Number of distinct shapes currently held. *)

val reset : unit -> unit
(** Drops every entry (tests and benchmarks). *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Sets the bound, evicting LRU entries if currently above it.
    @raise Invalid_argument on a non-positive capacity. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
