(** Process-wide metrics registry.

    Counters and histograms are sharded per domain (the writer picks a
    shard from [Domain.self ()]) and merged on read, so the hot paths of
    the morsel executor never contend on a lock. Gauges are single
    atomics: they are written rarely (pool resizes, session open/close).

    The registry is enabled unless the [TIP_METRICS] environment
    variable is set to [off]/[0]/[false]; [set_enabled] toggles it at
    runtime (used by the overhead benchmark). When disabled, writes are
    a single atomic load and branch. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Counters} — monotonically increasing integers. *)

type counter

val counter : ?help:string -> string -> counter
(** [counter name] registers (or retrieves) the counter called [name].
    Registration is idempotent; a kind clash raises [Invalid_argument]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} — values that go up and down. *)

type gauge

val gauge : ?help:string -> string -> gauge
val gauge_set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit
val gauge_value : gauge -> int

(** {1 Histograms} — fixed-bucket latency distributions (nanoseconds).

    Buckets are powers of ten from 1us to 10s plus a +inf overflow;
    every observation lands in the first bucket whose upper bound is
    >= the value. *)

type histogram

val histogram : ?help:string -> string -> histogram

val observe : histogram -> int -> unit
(** [observe h ns] records a latency of [ns] nanoseconds. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> int

val bucket_labels : string array
(** Upper-bound labels, ["1us"] ... ["10s"; "inf"]. *)

val bounds : int array
(** Finite bucket upper bounds in nanoseconds (one shorter than
    {!bucket_labels}: the overflow bucket has no bound). *)

val histogram_buckets : histogram -> int array
(** Cumulative per-bucket counts, merged across shards. *)

val percentile : histogram -> float -> float
(** [percentile h q] (with [q] in [0, 1]) estimates the q-th latency
    percentile in nanoseconds by linear interpolation within the bucket
    holding the q-th observation. The unbounded overflow bucket clamps
    to the last finite bound; an empty histogram reports 0. *)

val percentile_of_buckets : int array -> float -> float
(** {!percentile} over explicit non-cumulative bucket counts aligned
    with {!bucket_labels} (exposed for stores that keep their own
    bucket arrays, and for testing the interpolation directly). *)

(** {1 Exposition} *)

type sample = { s_name : string; s_kind : string; s_value : int }

val samples : unit -> sample list
(** Flattened registry, sorted by name. Histograms expand into
    [name_count], [name_sum_ns], interpolated [name_p50_ns] /
    [name_p95_ns] / [name_p99_ns] and cumulative [name_le_<bound>]
    rows. *)

(** One row per registered metric, histograms carried whole — the
    backing of the [tip_stat_metrics] virtual table. *)
type info = {
  i_name : string;
  i_kind : string;  (** ["counter"], ["gauge"] or ["histogram"] *)
  i_value : int;  (** counter/gauge value; histogram observation count *)
  i_sum_ns : int option;  (** histograms only *)
  i_percentiles : (float * float * float) option;
      (** interpolated (p50, p95, p99) in nanoseconds; histograms only *)
}

val infos : unit -> info list
(** The registry sorted by name, one {!info} per metric. *)

val dump_text : unit -> string
(** Prometheus text exposition (format 0.0.4) of every registered
    metric — the payload of the wire protocol's [M] request and of the
    monitor endpoint's [/metrics]. Histograms are genuine histogram
    families (cumulative [_bucket{le="..."}] in nanoseconds plus
    [_sum]/[_count]); the interpolated [_p50_ns]/[_p95_ns]/[_p99_ns]
    conveniences follow as separate gauge families, and HELP text is
    escaped, so the page parses under a strict scraper. *)

val reset_all : unit -> unit
(** Zero every registered metric (tests and benchmarks). *)
