(* Shard-and-merge metrics registry.

   Writers pick a shard from the current domain id, so concurrent
   morsel workers on distinct domains touch distinct atomics most of
   the time; readers sum the shards. This trades exactness of *when* a
   read observes a concurrent write (fine for monitoring) for writes
   that are one [Atomic.fetch_and_add] with no lock.

   The registration path (rare) is guarded by a mutex; metric handles
   are created once at module-init time and cached by the callers. *)

let shard_count = 16 (* power of two: shard pick is a mask *)
let shard () = (Domain.self () :> int) land (shard_count - 1)

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "TIP_METRICS" with
    | Some ("off" | "0" | "false" | "OFF") -> false
    | _ -> true)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

type counter = { c_cells : int Atomic.t array }
type gauge = { g_cell : int Atomic.t }

let bounds =
  [|
    1_000 (* 1us *); 10_000; 100_000; 1_000_000 (* 1ms *); 10_000_000;
    100_000_000; 1_000_000_000 (* 1s *); 10_000_000_000;
  |]

let bucket_labels =
  [| "1us"; "10us"; "100us"; "1ms"; "10ms"; "100ms"; "1s"; "10s"; "inf" |]

type histogram = {
  h_cells : int Atomic.t array array; (* shard -> bucket (bounds+1 overflow) *)
  h_sum : int Atomic.t array; (* per shard *)
  h_count : int Atomic.t array;
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

let registry : (string, metric * string) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_lock f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let atomic_cells n = Array.init n (fun _ -> Atomic.make 0)

let register ?(help = "") name make unwrap =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (m, _) -> (
        match unwrap m with
        | Some v -> v
        | None -> invalid_arg ("Metrics: kind mismatch for " ^ name))
      | None ->
        let v, m = make () in
        Hashtbl.replace registry name (m, help);
        v)

let counter ?help name =
  register ?help name
    (fun () ->
      let c = { c_cells = atomic_cells shard_count } in
      (c, M_counter c))
    (function M_counter c -> Some c | _ -> None)

let add c n =
  if Atomic.get enabled_flag then
    ignore (Atomic.fetch_and_add c.c_cells.(shard ()) n)

let incr c = add c 1
let sum_cells cells = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 cells
let counter_value c = sum_cells c.c_cells

let gauge ?help name =
  register ?help name
    (fun () ->
      let g = { g_cell = Atomic.make 0 } in
      (g, M_gauge g))
    (function M_gauge g -> Some g | _ -> None)

let gauge_set g v = if Atomic.get enabled_flag then Atomic.set g.g_cell v

let gauge_add g n =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add g.g_cell n)

let gauge_value g = Atomic.get g.g_cell

let histogram ?help name =
  register ?help name
    (fun () ->
      let h =
        {
          h_cells =
            Array.init shard_count (fun _ ->
                atomic_cells (Array.length bounds + 1));
          h_sum = atomic_cells shard_count;
          h_count = atomic_cells shard_count;
        }
      in
      (h, M_histogram h))
    (function M_histogram h -> Some h | _ -> None)

let bucket_of ns =
  let n = Array.length bounds in
  let rec go i = if i >= n || ns <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h ns =
  if Atomic.get enabled_flag then begin
    let s = shard () in
    ignore (Atomic.fetch_and_add h.h_cells.(s).(bucket_of ns) 1);
    ignore (Atomic.fetch_and_add h.h_sum.(s) ns);
    ignore (Atomic.fetch_and_add h.h_count.(s) 1)
  end

let histogram_count h = sum_cells h.h_count
let histogram_sum h = sum_cells h.h_sum

(* Non-cumulative per-bucket counts merged across shards. *)
let raw_buckets h =
  let merged = Array.make (Array.length bounds + 1) 0 in
  Array.iter
    (fun cells ->
      Array.iteri (fun i a -> merged.(i) <- merged.(i) + Atomic.get a) cells)
    h.h_cells;
  merged

(* Interpolated percentile over non-cumulative bucket counts: find the
   bucket holding the q-th observation and interpolate linearly between
   its bounds (a uniform-within-bucket assumption). The overflow bucket
   has no upper bound, so it clamps to the last finite bound — a p99 of
   "at least 10s" reads as 10s rather than infinity. *)
let percentile_of_buckets buckets q =
  let total = Array.fold_left ( + ) 0 buckets in
  if total = 0 then 0.
  else begin
    let last = float_of_int bounds.(Array.length bounds - 1) in
    let rank = q *. float_of_int total in
    let rec go i seen =
      if i >= Array.length buckets then last
      else begin
        let here = buckets.(i) in
        if here > 0 && float_of_int (seen + here) >= rank then begin
          let lo = if i = 0 then 0. else float_of_int bounds.(i - 1) in
          let hi = if i < Array.length bounds then float_of_int bounds.(i) else last in
          let frac = (rank -. float_of_int seen) /. float_of_int here in
          Float.min (lo +. (frac *. (hi -. lo))) last
        end
        else go (i + 1) (seen + here)
      end
    in
    go 0 0
  end

let percentile h q = percentile_of_buckets (raw_buckets h) q

(* Per-bucket counts merged across shards, made cumulative (Prometheus
   histogram semantics: bucket le=X counts every observation <= X). *)
let histogram_buckets h =
  let nbuckets = Array.length bounds + 1 in
  let merged = Array.make nbuckets 0 in
  Array.iter
    (fun cells ->
      Array.iteri (fun i a -> merged.(i) <- merged.(i) + Atomic.get a) cells)
    h.h_cells;
  let acc = ref 0 in
  Array.map
    (fun v ->
      acc := !acc + v;
      !acc)
    merged

type sample = { s_name : string; s_kind : string; s_value : int }

let metrics_sorted () =
  with_lock (fun () ->
      Hashtbl.fold (fun name (m, help) acc -> (name, m, help) :: acc) registry [])
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let samples () =
  metrics_sorted ()
  |> List.concat_map (fun (name, m, _) ->
         match m with
         | M_counter c ->
           [ { s_name = name; s_kind = "counter"; s_value = counter_value c } ]
         | M_gauge g ->
           [ { s_name = name; s_kind = "gauge"; s_value = gauge_value g } ]
         | M_histogram h ->
           let buckets = histogram_buckets h in
           let raw = raw_buckets h in
           let pct q = int_of_float (percentile_of_buckets raw q) in
           ({ s_name = name ^ "_count";
              s_kind = "histogram";
              s_value = histogram_count h }
           :: { s_name = name ^ "_sum_ns";
                s_kind = "histogram";
                s_value = histogram_sum h }
           :: { s_name = name ^ "_p50_ns";
                s_kind = "histogram";
                s_value = pct 0.50 }
           :: { s_name = name ^ "_p95_ns";
                s_kind = "histogram";
                s_value = pct 0.95 }
           :: { s_name = name ^ "_p99_ns";
                s_kind = "histogram";
                s_value = pct 0.99 }
           :: Array.to_list
                (Array.mapi
                   (fun i v ->
                     { s_name =
                         Printf.sprintf "%s_le_%s" name bucket_labels.(i);
                       s_kind = "histogram";
                       s_value = v })
                   buckets)))

(* One row per registered metric (histograms NOT expanded into bucket
   samples), for the tip_stat_metrics virtual table. *)
type info = {
  i_name : string;
  i_kind : string;
  i_value : int; (* counter/gauge value; histogram observation count *)
  i_sum_ns : int option; (* histograms only *)
  i_percentiles : (float * float * float) option; (* p50/p95/p99, ns *)
}

let infos () =
  metrics_sorted ()
  |> List.map (fun (name, m, _) ->
         match m with
         | M_counter c ->
           { i_name = name;
             i_kind = "counter";
             i_value = counter_value c;
             i_sum_ns = None;
             i_percentiles = None }
         | M_gauge g ->
           { i_name = name;
             i_kind = "gauge";
             i_value = gauge_value g;
             i_sum_ns = None;
             i_percentiles = None }
         | M_histogram h ->
           let raw = raw_buckets h in
           let pct q = percentile_of_buckets raw q in
           { i_name = name;
             i_kind = "histogram";
             i_value = histogram_count h;
             i_sum_ns = Some (histogram_sum h);
             i_percentiles = Some (pct 0.50, pct 0.95, pct 0.99) })

(* Prometheus exposition text: HELP payloads escape backslash and
   newline (the format's two escapes on HELP lines). *)
let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dump_text () =
  let buf = Buffer.create 1024 in
  let help_line name help =
    if help <> "" then
      Buffer.add_string buf
        (Printf.sprintf "# HELP tip_%s %s\n" name (escape_help help))
  in
  List.iter
    (fun (name, m, help) ->
      match m with
      | M_counter c ->
        help_line name help;
        Buffer.add_string buf (Printf.sprintf "# TYPE tip_%s counter\n" name);
        Buffer.add_string buf
          (Printf.sprintf "tip_%s %d\n" name (counter_value c))
      | M_gauge g ->
        help_line name help;
        Buffer.add_string buf (Printf.sprintf "# TYPE tip_%s gauge\n" name);
        Buffer.add_string buf (Printf.sprintf "tip_%s %d\n" name (gauge_value g))
      | M_histogram h ->
        (* A histogram family may only contain _bucket/_sum/_count
           samples; the percentile conveniences are emitted after it as
           their own gauge families so a strict scraper accepts the
           whole page. *)
        help_line name help;
        Buffer.add_string buf (Printf.sprintf "# TYPE tip_%s histogram\n" name);
        let buckets = histogram_buckets h in
        Array.iteri
          (fun i v ->
            let le =
              if i < Array.length bounds then string_of_int bounds.(i)
              else "+Inf"
            in
            Buffer.add_string buf
              (Printf.sprintf "tip_%s_bucket{le=\"%s\"} %d\n" name le v))
          buckets;
        Buffer.add_string buf
          (Printf.sprintf "tip_%s_sum %d\n" name (histogram_sum h));
        Buffer.add_string buf
          (Printf.sprintf "tip_%s_count %d\n" name (histogram_count h));
        let raw = raw_buckets h in
        List.iter
          (fun (label, q) ->
            Buffer.add_string buf
              (Printf.sprintf "# TYPE tip_%s_%s gauge\n" name label);
            Buffer.add_string buf
              (Printf.sprintf "tip_%s_%s %.0f\n" name label
                 (percentile_of_buckets raw q)))
          [ ("p50_ns", 0.50); ("p95_ns", 0.95); ("p99_ns", 0.99) ])
    (metrics_sorted ());
  Buffer.contents buf

let reset_all () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ (m, _) ->
          match m with
          | M_counter c -> Array.iter (fun a -> Atomic.set a 0) c.c_cells
          | M_gauge g -> Atomic.set g.g_cell 0
          | M_histogram h ->
            Array.iter (Array.iter (fun a -> Atomic.set a 0)) h.h_cells;
            Array.iter (fun a -> Atomic.set a 0) h.h_sum;
            Array.iter (fun a -> Atomic.set a 0) h.h_count)
        registry)
