(** Wait-event instrumentation and the active-session-history sampler
    (DESIGN.md §16).

    Every place a session can block — the database mutex, a WAL fsync,
    a socket read — is wrapped in {!with_wait}, which stamps the
    calling thread's registered session with the wait class for the
    duration and charges the elapsed nanoseconds to a per-class
    cumulative counter. A background sampler wakes on a fixed tick
    (default 100ms, [TIP_ASH_INTERVAL_MS]) and snapshots every
    registered session — its id, statement fingerprint, and current
    wait class (or [Cpu] when on-CPU) — into a bounded ring buffer:
    the active session history. The cumulative counters answer "where
    does this server wait, ever"; the ring answers "what was every
    session doing over the last few minutes", and is served as the
    [tip_stat_ash] virtual table with one valid-time [PERIOD] per
    sample so it can be windowed with ordinary TIP period predicates.

    Instrumentation is always on (two clock reads and two atomic adds
    per wait); only the sampler thread is optional. *)

(** The typed wait classes. [Checkpoint] brackets the whole checkpoint
    (so its time includes the WAL fsyncs issued inside it — attribution
    is per-site, not exclusive). *)
type wait_class =
  | DbLock  (** queued on the statement-serialization mutex *)
  | WalFsync  (** inside fsync on the WAL (or snapshot/manifest) fd *)
  | WalAppend  (** writing framed records into the WAL *)
  | ArchiveSeal  (** sealing a WAL generation into the archive *)
  | ReplicaApply  (** replica-side replay of a streamed commit batch *)
  | ClientRead  (** blocked reading the next client request *)
  | ClientWrite  (** blocked writing a response to the client *)
  | Checkpoint  (** inside a snapshot checkpoint *)
  | Admission  (** turning away a connection over [max_sessions] *)

val all : wait_class list
val label : wait_class -> string

(** {1 Sessions} *)

(** A registered session: something the sampler should watch. Client
    sessions register in the server accept path; the replication
    follower registers itself with kind ["replication"]. *)
type session

(** Registers a session and binds it to the calling thread, so
    {!with_wait} calls made by this thread are attributed to it.
    [id] is the wire session id (or any stable small int); [kind] is
    ["client"] or ["replication"]. *)
val register : id:int -> kind:string -> session

(** Unregisters and unbinds. Idempotent. *)
val unregister : session -> unit

(** Current statement fingerprint (shown in ASH samples), or [None]
    between statements. *)
val set_query : session -> string option -> unit

(** Whether the session is executing a statement. Sessions that are
    neither active nor waiting are skipped by the sampler. *)
val set_active : session -> bool -> unit

val session_count : unit -> int

(** {1 Wait scoping and cumulative stats} *)

(** [with_wait cls f] runs [f ()], attributing its wall-clock time to
    [cls]: the calling thread's session (if registered) shows [cls]
    while inside, and the per-class counters are bumped on exit.
    Re-entrant — a nested wait restores the enclosing class. Threads
    with no registered session still feed the cumulative counters. *)
val with_wait : wait_class -> (unit -> 'a) -> 'a

(** [(class, completed waits, total nanoseconds)] for every class,
    in declaration order, including zero rows. *)
val stats : unit -> (wait_class * int * int) list

val reset_stats : unit -> unit

(** {1 The active session history} *)

type sample = {
  sa_seq : int;  (** monotonically increasing; survives eviction *)
  sa_at : float;  (** unix seconds at the tick *)
  sa_interval_ms : int;  (** tick width, for the sample's valid period *)
  sa_session : int;
  sa_kind : string;
  sa_query : string option;
  sa_state : string;  (** a wait-class label, or ["Cpu"] *)
}

(** Sampler tick in milliseconds ([TIP_ASH_INTERVAL_MS], default 100,
    floor 5). *)
val interval_ms : unit -> int

(** Ring capacity in samples ([TIP_ASH_RING], default 4096). *)
val ring_capacity : unit -> int

(** Resizes (and clears) the ring — tests use a tiny ring to exercise
    eviction. *)
val set_ring_capacity : int -> unit

(** The retained window, oldest first. *)
val samples : unit -> sample list

(** Takes one synchronous sample of every watchable session — the
    sampler thread's tick body, callable directly from tests. *)
val sample_now : unit -> unit

val clear_samples : unit -> unit

(** Starts the background sampler thread (idempotent). Disabled
    entirely when [TIP_ASH=off]. *)
val start_sampler : unit -> unit

(** Stops and joins the sampler thread (idempotent). *)
val stop_sampler : unit -> unit

val sampler_running : unit -> bool
