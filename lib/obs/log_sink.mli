(** Mutex-guarded, timestamped log sink.

    The server handles each client on its own thread; naive
    [Printf.printf] log lines from concurrent sessions interleave
    mid-line. Every line routed through this sink is formatted in
    full, timestamped, and emitted atomically under one process-wide
    mutex.

    Two output formats: [Text] (the default; [<ts> <message>] lines)
    and [Json] (one structured object per line with [ts], [level],
    optional [session], [event] and string fields). The format is
    seeded from [TIP_LOG_FORMAT] ([json] switches) and set by
    [tip_serve --log-format]. *)

type format = Text | Json

val format : unit -> format
val set_format : format -> unit

val set_sink : (string -> unit) -> unit
(** Replace the output function (default: stderr + flush). The sink
    receives complete lines without trailing newline (timestamped text
    or one JSON object, per the format). Tests capture lines by
    installing a buffer here. *)

val line : ('a, Format.formatter, unit, unit) format4 -> 'a
(** [line fmt ...] emits one line atomically: timestamped text in
    [Text] mode, a [{"event":"log","message":...}] object in [Json]
    mode. *)

val event :
  ?session:int ->
  ?level:string ->
  ?text:string ->
  event:string ->
  (string * string) list ->
  unit
(** Structured event. [Json] mode emits the fields as one object;
    [Text] mode emits [text] when given (preserving historical line
    shapes, e.g. the slow-query log) or ["<event> k=v ..."] otherwise. *)

val reporter : unit -> Logs.reporter
(** A [Logs] reporter that routes every log message through the sink
    (so [Logs]-based server logging and direct [line] calls share the
    mutex and the format). *)
