(** Mutex-guarded, timestamped log sink.

    The server handles each client on its own thread; naive
    [Printf.printf] log lines from concurrent sessions interleave
    mid-line. Every line routed through this sink is formatted in
    full, timestamped, and emitted atomically under one process-wide
    mutex. *)

val set_sink : (string -> unit) -> unit
(** Replace the output function (default: stderr + flush). The sink
    receives complete, timestamped lines without trailing newline.
    Tests capture lines by installing a buffer here. *)

val line : ('a, Format.formatter, unit, unit) format4 -> 'a
(** [line fmt ...] timestamps and emits one line atomically. *)

val reporter : unit -> Logs.reporter
(** A [Logs] reporter that routes every log message through the sink
    (so [Logs]-based server logging and direct [line] calls share the
    mutex and the timestamp format). *)
