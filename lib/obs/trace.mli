(** Lightweight per-statement tracing.

    A trace is a tree of spans. [Database.exec] opens the root span for
    each statement (annotated with the NOW chronon bound for that
    statement — bound exactly once, at root-span open); planner and
    executor phases open children with [with_span].

    Spans record wall-clock nanoseconds ([now_ns]). The trace owner
    drives the span stack from a single thread; only the finished tree
    is safe to share. *)

val now_ns : unit -> int
(** Current time in integer nanoseconds (wall clock; microsecond
    resolution — the finest clock available without extra deps). *)

type span = {
  sp_name : string;
  mutable sp_attrs : (string * string) list; (* newest first *)
  mutable sp_start_ns : int; (* wall-clock ns when the span opened *)
  mutable sp_elapsed_ns : int; (* set when the span closes *)
  mutable sp_children : span list; (* in start order once closed *)
}

type t

val start : string -> t
(** [start name] begins a trace whose root span is [name]. *)

val root : t -> span

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a child span of the innermost open span. *)

val annotate : t -> string -> string -> unit
(** Attach a key/value attribute to the innermost open span. *)

val finish : t -> span
(** Close the root span (and any spans left open) and return the tree. *)

val children : span -> span list
(** Closed children in start order. *)

val find_child : span -> string -> span option

val render : span -> string
(** Indented text rendering of a finished span tree, e.g.
    {v statement (1.234 ms) [now=2001-06-01]
      plan (0.021 ms)
      execute (1.102 ms) v} *)

(** {1 Ambient trace}

    The engine stores the statement's trace in an ambient slot so that
    deeply nested phases (e.g. EXPLAIN ANALYZE rendering) can reach it
    without threading it through every signature. Statements execute
    one at a time per process in practice (the server serializes on its
    db lock); the slot is a plain ref with save/restore semantics. *)

val ambient : unit -> t option
val with_ambient : t -> (unit -> 'a) -> 'a

val last_root : unit -> span option
(** The most recently finished root span (set by {!finish}). Lets the
    server export the trace of the statement it just completed without
    threading the handle through the engine. *)

(** {1 Chrome trace-event export}

    Finished span trees serialize to the Chrome trace-event JSON format
    (an array of complete ["ph":"X"] events with microsecond [ts]/[dur]
    relative to the root), loadable directly in [about:tracing] and
    Perfetto. *)

val to_chrome_json : span -> string

val trace_dir : unit -> string option
(** The export directory: seeded from [TIP_TRACE_DIR], overridden by
    {!set_trace_dir} (e.g. [tip_serve --trace-dir]). [None] disables
    export. *)

val set_trace_dir : string option -> unit

val export_chrome : span -> string option
(** Writes the span tree as one [trace-<ms>-<seq>.json] file in the
    configured directory, creating it if needed. Returns the path, or
    [None] when no directory is configured or the write fails (export
    must never take down the statement it observed). *)
