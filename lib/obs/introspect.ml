(* Bounded statement-fingerprint store behind tip_stat_statements.

   Entries are keyed by the statement's normalized shape (the caller
   fingerprints; this module has no SQL knowledge) and aggregate call
   counts, latency, row traffic and failure outcomes. The store is a
   mutex-guarded hashtable: statements execute one at a time per
   database, so the lock is uncontended in practice, and each record is
   one probe plus a handful of integer bumps.

   Capacity is bounded: when a new shape arrives at capacity, the
   least-recently-updated entry is evicted (an O(capacity) scan over a
   counter stamp — capacity is small and eviction rare, so this beats
   maintaining an intrusive list). *)

type entry = {
  e_query : string;
  mutable e_calls : int;
  mutable e_total_ns : int;
  mutable e_min_ns : int;
  mutable e_max_ns : int;
  mutable e_rows_returned : int;
  mutable e_rows_scanned : int;
  mutable e_errors : int;
  mutable e_cancelled : int;
  e_buckets : int array; (* non-cumulative, aligned with Metrics.bounds *)
  mutable e_stamp : int; (* LRU clock value of the last update *)
}

type outcome = Finished | Errored | Cancelled

(* Read-only snapshot row handed to the virtual table. *)
type stat = {
  query : string;
  calls : int;
  total_ns : int;
  min_ns : int;
  max_ns : int;
  rows_returned : int;
  rows_scanned : int;
  errors : int;
  cancelled : int;
  buckets : int array;
}

let lock = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 64
let clock = ref 0

let default_capacity =
  match Sys.getenv_opt "TIP_STAT_STATEMENTS_CAP" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 512)
  | None -> 512

let capacity_ref = ref default_capacity

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "TIP_STAT_STATEMENTS" with
    | Some ("off" | "0" | "false" | "OFF") -> false
    | _ -> true)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let capacity () = !capacity_ref

let evict_lru () =
  (* called under the lock *)
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.e_stamp -> ()
      | _ -> victim := Some (key, e.e_stamp))
    table;
  match !victim with
  | Some (key, _) -> Hashtbl.remove table key
  | None -> ()

let set_capacity n =
  if n <= 0 then invalid_arg "Introspect.set_capacity: capacity must be positive";
  with_lock (fun () ->
      capacity_ref := n;
      while Hashtbl.length table > n do
        evict_lru ()
      done)

let bucket_of ns =
  let bounds = Metrics.bounds in
  let n = Array.length bounds in
  let rec go i = if i >= n || ns <= bounds.(i) then i else go (i + 1) in
  go 0

let record ~query ~elapsed_ns ~rows_returned ~rows_scanned outcome =
  if Atomic.get enabled_flag then
    with_lock (fun () ->
        incr clock;
        let e =
          match Hashtbl.find_opt table query with
          | Some e -> e
          | None ->
            if Hashtbl.length table >= !capacity_ref then evict_lru ();
            let e =
              { e_query = query;
                e_calls = 0;
                e_total_ns = 0;
                e_min_ns = max_int;
                e_max_ns = 0;
                e_rows_returned = 0;
                e_rows_scanned = 0;
                e_errors = 0;
                e_cancelled = 0;
                e_buckets = Array.make (Array.length Metrics.bounds + 1) 0;
                e_stamp = 0 }
            in
            Hashtbl.replace table query e;
            e
        in
        e.e_calls <- e.e_calls + 1;
        e.e_total_ns <- e.e_total_ns + elapsed_ns;
        if elapsed_ns < e.e_min_ns then e.e_min_ns <- elapsed_ns;
        if elapsed_ns > e.e_max_ns then e.e_max_ns <- elapsed_ns;
        e.e_rows_returned <- e.e_rows_returned + rows_returned;
        e.e_rows_scanned <- e.e_rows_scanned + rows_scanned;
        (match outcome with
        | Finished -> ()
        | Errored -> e.e_errors <- e.e_errors + 1
        | Cancelled -> e.e_cancelled <- e.e_cancelled + 1);
        let b = bucket_of elapsed_ns in
        e.e_buckets.(b) <- e.e_buckets.(b) + 1;
        e.e_stamp <- !clock)

let snapshot () =
  with_lock (fun () ->
      Hashtbl.fold
        (fun _ e acc ->
          { query = e.e_query;
            calls = e.e_calls;
            total_ns = e.e_total_ns;
            min_ns = (if e.e_calls = 0 then 0 else e.e_min_ns);
            max_ns = e.e_max_ns;
            rows_returned = e.e_rows_returned;
            rows_scanned = e.e_rows_scanned;
            errors = e.e_errors;
            cancelled = e.e_cancelled;
            buckets = Array.copy e.e_buckets }
          :: acc)
        table [])
  |> List.sort (fun a b -> compare (b.total_ns, b.query) (a.total_ns, a.query))

let size () = with_lock (fun () -> Hashtbl.length table)

let reset () = with_lock (fun () -> Hashtbl.reset table)
