let lock = Mutex.create ()

let default_sink s =
  output_string stderr (s ^ "\n");
  flush stderr

let sink = ref default_sink
let set_sink f = sink := f

type format = Text | Json

let format_ref =
  ref
    (match Sys.getenv_opt "TIP_LOG_FORMAT" with
    | Some ("json" | "JSON") -> Json
    | _ -> Text)

let format () = !format_ref
let set_format f = format_ref := f

let timestamp () =
  let t = Unix.gettimeofday () in
  let tm = Unix.localtime t in
  let millis = int_of_float ((t -. Float.of_int (int_of_float t)) *. 1000.) in
  Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02d.%03d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec millis

(* The whole line is built before the lock is taken; the lock only
   covers handing it to the sink, so sessions can never interleave
   fragments of two lines. *)
let emit_raw line =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> !sink line)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One structured line: {"ts":...,"level":...,["session":...,]
   "event":...,<fields>}. Every value is a JSON string — consumers get
   a flat, predictable object per line. *)
let json_line ?session ~level ~event fields =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"ts\":\"%s\",\"level\":\"%s\"" (timestamp ())
       (json_escape level));
  (match session with
  | Some id -> Buffer.add_string buf (Printf.sprintf ",\"session\":%d" id)
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf ",\"event\":\"%s\"" (json_escape event));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf ",\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let emit_leveled level s =
  match !format_ref with
  | Text -> emit_raw (timestamp () ^ " " ^ s)
  | Json -> emit_raw (json_line ~level ~event:"log" [ ("message", s) ])

let emit s = emit_leveled "info" s
let line fmt = Format.kasprintf emit fmt

(* Structured event: in JSON mode the fields become the object; in text
   mode [text] (or "event k=v ..." when absent) keeps the historical
   line shape, so log-scraping tests and operators see no change. *)
let event ?session ?(level = "info") ?text ~event:name fields =
  match !format_ref with
  | Json -> emit_raw (json_line ?session ~level ~event:name fields)
  | Text ->
    let s =
      match text with
      | Some s -> s
      | None ->
        name
        ^ String.concat ""
            (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) fields)
    in
    emit_raw (timestamp () ^ " " ^ s)

let reporter () =
  let report src level ~over k msgf =
    msgf @@ fun ?header:_ ?tags:_ fmt ->
    Format.kasprintf
      (fun msg ->
        (match !format_ref with
        | Text ->
          emit
            (Printf.sprintf "[%s] [%s] %s"
               (Logs.level_to_string (Some level))
               (Logs.Src.name src) msg)
        | Json ->
          emit_raw
            (json_line
               ~level:(Logs.level_to_string (Some level))
               ~event:"log"
               [ ("src", Logs.Src.name src); ("message", msg) ]));
        over ();
        k ())
      fmt
  in
  { Logs.report }
