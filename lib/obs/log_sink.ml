let lock = Mutex.create ()

let default_sink s =
  output_string stderr (s ^ "\n");
  flush stderr

let sink = ref default_sink
let set_sink f = sink := f

let timestamp () =
  let t = Unix.gettimeofday () in
  let tm = Unix.localtime t in
  let millis = int_of_float ((t -. Float.of_int (int_of_float t)) *. 1000.) in
  Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02d.%03d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec millis

(* The whole line is built before the lock is taken; the lock only
   covers handing it to the sink, so sessions can never interleave
   fragments of two lines. *)
let emit s =
  let line = timestamp () ^ " " ^ s in
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> !sink line)

let line fmt = Format.kasprintf emit fmt

let reporter () =
  let report src level ~over k msgf =
    msgf @@ fun ?header:_ ?tags:_ fmt ->
    Format.kasprintf
      (fun msg ->
        emit
          (Printf.sprintf "[%s] [%s] %s"
             (Logs.level_to_string (Some level))
             (Logs.Src.name src) msg);
        over ();
        k ())
      fmt
  in
  { Logs.report }
