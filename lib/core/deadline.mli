(** Cooperative cancellation tokens with deadlines and resource budgets.

    A token is shared between the thread driving a statement and anyone
    who may want to stop it (a server signal handler, a shell Ctrl-C, an
    admission controller). Execution code polls [check] at batch
    boundaries; the poll is an atomic load plus, when a deadline is
    armed, a clock read — cheap enough for per-morsel granularity.

    Budgets bound what a single statement may consume before it is
    forcibly cancelled: rows read from storage, rows materialized for
    the client, and an estimate of result-set memory. Charges are atomic
    so parallel morsels can share one token. *)

type reason =
  | Timeout  (** the statement deadline passed *)
  | Client_gone  (** client disconnected or interrupted (Ctrl-C) *)
  | Shutdown  (** server is draining *)
  | Budget of string  (** a resource budget was exhausted; which one *)

exception Cancelled of reason

type t

val never : t
(** A shared token that is never cancelled and carries no budgets.
    [check never] is a single atomic load. Never mutate it. *)

val create :
  ?timeout_ms:int ->
  ?max_rows_scanned:int ->
  ?max_result_rows:int ->
  ?max_mem_kb:int ->
  unit ->
  t
(** Fresh token. [timeout_ms] arms a deadline that many milliseconds
    from now; omitted budgets are unlimited. *)

val is_never : t -> bool

val cancel : t -> reason -> unit
(** Request cancellation. The first reason wins; later calls are
    no-ops. Safe from any thread/domain or from a signal handler. *)

val cancelled : t -> reason option
(** Non-raising poll (also detects an expired deadline). *)

val check : t -> unit
(** Raise [Cancelled r] if the token is cancelled or past deadline. *)

val arm_timeout_if_unset : t -> int -> unit
(** [arm_timeout_if_unset t ms]: give the token a deadline [ms]
    milliseconds from now unless one is already armed. Used to layer a
    database-default statement timeout under a caller-provided token. *)

val has_deadline : t -> bool

val remaining_ms : t -> float option
(** Milliseconds until the deadline, when one is armed. *)

val has_budget : t -> bool
(** True when any resource budget is armed (fast-path gate: callers
    skip per-row cost estimation on budget-free tokens). *)

val tracks_mem : t -> bool

val charge_rows_scanned : t -> int -> unit
(** Charge [n] storage rows against the scan budget; raises
    [Cancelled (Budget _)] once the budget is exhausted. No-op on
    budget-free tokens. *)

val charge_result : t -> rows:int -> bytes:int -> unit
(** Charge materialized output against the result-row and memory
    budgets. *)

val rows_scanned : t -> int
val result_rows : t -> int
val mem_bytes : t -> int

val reason_label : reason -> string
(** Stable machine-readable code: TIMEOUT, CANCELLED, SHUTDOWN,
    BUDGET — used as the prefix of typed [E] wire responses. *)

val reason_message : reason -> string
(** Human-oriented one-liner, prefixed by [reason_label] and a colon,
    e.g. ["TIMEOUT: statement deadline exceeded"]. *)
