(* An [Element] is a set of periods — the paper's general tuple timestamp
   ("from January to April, and then from July to October").

   Representation: the list of periods exactly as written, possibly
   NOW-relative and possibly overlapping. Observation is always under a
   NOW binding: [ground] normalizes to a sorted list of disjoint,
   maximal ground periods (adjacent periods coalesce, since time is
   discrete), and every set operation is a linear two-pointer merge over
   normalized inputs. This is the "time linear in the number of periods"
   implementation claimed in Section 3 of the paper. *)

type t = Period.t list

let empty = []
let of_periods ps = ps
let of_period p = [ p ]
let of_ground_list gs = List.map Period.of_ground gs
let periods t = t
let add_period p t = t @ [ p ]

(* Raw period count, before normalization. *)
let raw_count t = List.length t

let is_now_relative t = List.exists Period.is_now_relative t

(* --- Normalization ------------------------------------------------- *)

(* Merges a sorted-by-start list of ground periods into disjoint maximal
   ones. Two closed periods coalesce when the later one starts no more
   than one chronon after the earlier one ends. *)
let sweep sorted =
  let flush (s, e) acc = (s, e) :: acc in
  let rec go current acc = function
    | [] -> List.rev (flush current acc)
    | (s, e) :: rest ->
      let cs, ce = current in
      if Chronon.compare s (Chronon.succ ce) <= 0 then
        go (cs, Chronon.max ce e) acc rest
      else go (s, e) (flush current acc) rest
  in
  match sorted with
  | [] -> []
  | first :: rest -> go first [] rest

let compare_ground (s1, _) (s2, _) = Chronon.compare s1 s2

(* Elements are usually written (and always produced) in start order, so
   probe the common case before paying for a sort; when one is needed,
   the in-place array sort beats [List.sort]'s allocation churn — this
   is the hot finalizer of [group_union], which grounds one unsorted
   concatenation per group. *)
let rec sorted_asc = function
  | a :: (b :: _ as rest) -> compare_ground a b <= 0 && sorted_asc rest
  | [] | [ _ ] -> true

let ground ~now t =
  let bound = List.filter_map (Period.ground ~now) t in
  let sorted =
    if sorted_asc bound then bound
    else begin
      let arr = Array.of_list bound in
      Array.sort compare_ground arr;
      Array.to_list arr
    end
  in
  sweep sorted

let normalize ~now t = of_ground_list (ground ~now t)

let coalesce = normalize

(* --- Ground-level set algebra (linear two-pointer merges) ---------- *)

let ground_union a b =
  (* Both inputs are sorted and disjoint; a plain merge keeps the result
     sorted, and one sweep restores disjointness. *)
  let rec merge a b acc =
    match a, b with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: ta, y :: tb ->
      if compare_ground x y <= 0 then merge ta b (x :: acc)
      else merge a tb (y :: acc)
  in
  sweep (merge a b [])

let ground_intersect a b =
  let rec go a b acc =
    match a, b with
    | [], _ | _, [] -> List.rev acc
    | (s1, e1) :: ta, (s2, e2) :: tb ->
      let s = Chronon.max s1 s2 and e = Chronon.min e1 e2 in
      let acc = if Chronon.compare s e <= 0 then (s, e) :: acc else acc in
      if Chronon.compare e1 e2 < 0 then go ta b acc else go a tb acc
  in
  go a b []

let ground_difference a b =
  let rec go a b acc =
    match a with
    | [] -> List.rev acc
    | (s1, e1) :: ta ->
      match b with
      | [] -> List.rev_append acc a
      | (s2, e2) :: tb ->
        if Chronon.compare e2 s1 < 0 then go a tb acc
        else if Chronon.compare e1 s2 < 0 then go ta b ((s1, e1) :: acc)
        else begin
          (* The two heads overlap; keep any prefix of the a-head before
             the b-head, then continue with whatever of the a-head
             extends past the b-head. *)
          let acc =
            if Chronon.compare s1 s2 < 0 then (s1, Chronon.pred s2) :: acc
            else acc
          in
          if Chronon.compare e1 e2 <= 0 then go ta b acc
          else go ((Chronon.succ e2, e1) :: ta) b acc
        end
  in
  go a b []

let ground_overlaps a b =
  let rec go a b =
    match a, b with
    | [], _ | _, [] -> false
    | (s1, e1) :: ta, (s2, e2) :: tb ->
      if Chronon.compare (Chronon.max s1 s2) (Chronon.min e1 e2) <= 0 then true
      else if Chronon.compare e1 e2 < 0 then go ta b
      else go a tb
  in
  go a b

(* a ⊇ b: every b-period lies inside a single a-period. Both inputs are
   normalized, so a linear walk suffices. *)
let ground_contains a b =
  let rec go a b =
    match b with
    | [] -> true
    | (s2, e2) :: tb ->
      match a with
      | [] -> false
      | (s1, e1) :: ta ->
        if Chronon.compare e1 s2 < 0 then go ta b
        else Chronon.compare s1 s2 <= 0 && Chronon.compare e2 e1 <= 0 && go a tb
  in
  go a b

let ground_complement ~within:(lo, hi) a =
  ground_difference [ (lo, hi) ] a

let ground_length gs =
  let add acc (s, e) = Span.add acc (Chronon.diff e s) in
  List.fold_left add Span.zero gs

(* --- Element-level API --------------------------------------------- *)

let union ~now a b = of_ground_list (ground_union (ground ~now a) (ground ~now b))
let intersect ~now a b =
  of_ground_list (ground_intersect (ground ~now a) (ground ~now b))
let difference ~now a b =
  of_ground_list (ground_difference (ground ~now a) (ground ~now b))
let complement ~now ~within t =
  match Period.ground ~now within with
  | None -> empty
  | Some g -> of_ground_list (ground_complement ~within:g (ground ~now t))

let overlaps ~now a b = ground_overlaps (ground ~now a) (ground ~now b)
let contains ~now a b = ground_contains (ground ~now a) (ground ~now b)

let contains_chronon ~now t c =
  List.exists (fun p -> Period.contains_chronon ~now p c) t

let contains_period ~now t p =
  match Period.ground ~now p with
  | None -> true
  | Some g -> ground_contains (ground ~now t) [ g ]

let is_empty ~now t = ground ~now t = []

(* Number of periods after normalization. *)
let count ~now t = List.length (ground ~now t)

let length ~now t = ground_length (ground ~now t)

let start ~now t =
  match ground ~now t with [] -> None | (s, _) :: _ -> Some s

let end_ ~now t =
  match ground ~now t with
  | [] -> None
  | gs -> let _, e = List.nth gs (List.length gs - 1) in Some e

let first ~now t =
  match ground ~now t with [] -> None | g :: _ -> Some (Period.of_ground g)

let last ~now t =
  match ground ~now t with
  | [] -> None
  | gs -> Some (Period.of_ground (List.nth gs (List.length gs - 1)))

(* Smallest single period covering the whole element. *)
let extent ~now t =
  match start ~now t, end_ ~now t with
  | Some s, Some e -> Some (Period.of_chronons s e)
  | _, _ -> None

let equal_at ~now a b =
  let ga = ground ~now a and gb = ground ~now b in
  List.length ga = List.length gb
  && List.for_all2
       (fun (s1, e1) (s2, e2) -> Chronon.equal s1 s2 && Chronon.equal e1 e2)
       ga gb

(* Structural equality of the written representation. *)
let equal a b =
  List.length a = List.length b && List.for_all2 Period.equal a b

let fold f init t = List.fold_left f init t
let iter f t = List.iter f t

let pp ppf t =
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") Period.pp) t

let to_string t = Fmt.str "%a" pp t

let scan s =
  Scan.expect_char s '{';
  Scan.skip_ws s;
  if Scan.eat_char s '}' then []
  else begin
    let rec loop acc =
      let p = Period.scan s in
      Scan.skip_ws s;
      if Scan.eat_char s ',' then begin
        Scan.skip_ws s;
        loop (p :: acc)
      end
      else begin
        Scan.expect_char s '}';
        List.rev (p :: acc)
      end
    in
    loop []
  end

let of_string str =
  try Some (Scan.parse_all scan str) with Scan.Parse_error _ -> None

let of_string_exn str = Scan.parse_all scan str
