(** A pair of instants bounding a closed interval [start, end] of chronons.

    Either endpoint may be NOW-relative (["[1999-01-01, NOW]"] is "since
    1999"), so most observations take a [~now] binding. A period whose
    bound start exceeds its bound end denotes the empty set of chronons. *)

type t

(** A period with both endpoints bound: [(start, end)] with start <= end. *)
type ground = Chronon.t * Chronon.t

(** {1 Construction} *)

val make : start_:Instant.t -> end_:Instant.t -> t
val of_instants : Instant.t -> Instant.t -> t
val of_chronons : Chronon.t -> Chronon.t -> t

(** The period containing exactly one chronon. *)
val of_chronon : Chronon.t -> t

(** [since c] is [[c, NOW]]. *)
val since : Chronon.t -> t

(** [past s] is [[NOW-s, NOW]], e.g. "during the past week". *)
val past : Span.t -> t

val of_ground : ground -> t

(** {1 Accessors} *)

val start_instant : t -> Instant.t
val end_instant : t -> Instant.t
val is_now_relative : t -> bool

(** [ground ~now t] binds both endpoints; [None] if the result is empty. *)
val ground : now:Chronon.t -> t -> ground option

val is_empty : now:Chronon.t -> t -> bool
val start_at : now:Chronon.t -> t -> Chronon.t option
val end_at : now:Chronon.t -> t -> Chronon.t option

(** Span from start to end; [None] for empty periods. *)
val duration : now:Chronon.t -> t -> Span.t option

(** {1 Predicates and operations} *)

val contains_chronon : now:Chronon.t -> t -> Chronon.t -> bool
val overlaps : now:Chronon.t -> t -> t -> bool

(** [contains_period ~now a b]: does [a] cover every chronon of [b]? *)
val contains_period : now:Chronon.t -> t -> t -> bool

(** Intersection as a ground period; [None] when disjoint or empty. *)
val intersect : now:Chronon.t -> t -> t -> t option

(** Smallest single period covering both arguments. *)
val span_of : now:Chronon.t -> t -> t -> t option

val ground_overlaps : ground -> ground -> bool

(** {1 Batch kernels}

    Tight loops over integer extent arrays (unix-second bounds as
    produced by [Value.extents]) for the chunked executor. Each kernel
    compacts the selection vector [sel] (first [n] entries are row
    indexes into the bound arrays) in place to the rows passing the
    test, returning the surviving count. *)

(** Keep rows whose extent [starts.(i), ends.(i)] intersects [lo, hi]. *)
val batch_overlaps_window :
  starts:int array -> ends:int array -> lo:int -> hi:int ->
  sel:int array -> n:int -> int

(** Keep rows where extent 1 intersects extent 2 (the nonempty-ground-
    intersection test, matching {!ground_overlaps} on finite bounds). *)
val batch_overlaps_pairs :
  starts1:int array -> ends1:int array -> starts2:int array ->
  ends2:int array -> sel:int array -> n:int -> int

(** {1 Equality} *)

(** Structural equality of the representation (NOW kept symbolic). *)
val equal : t -> t -> bool

(** Set equality under a NOW binding. *)
val equal_at : now:Chronon.t -> t -> t -> bool

(** {1 Text} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option

(** @raise Scan.Parse_error on malformed input. *)
val of_string_exn : string -> t

(**/**)

val scan : Scan.t -> t
