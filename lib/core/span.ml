(* A [Span] is a signed duration, stored as a whole number of seconds.

   The external notation is the paper's [+|-]days[ hours:minutes:seconds]:
   "7 12:00:00" is seven and a half days, "-7" is seven days back,
   "0 08:00:00" is eight hours. *)

type t = int

let seconds_per_minute = 60
let seconds_per_hour = 3_600
let seconds_per_day = 86_400

let zero = 0

let of_seconds sec = sec
let to_seconds t = t

let of_minutes m = m * seconds_per_minute
let of_hours h = h * seconds_per_hour
let of_days d = d * seconds_per_day
let of_weeks w = w * 7 * seconds_per_day

let of_dhms ~days ~hours ~minutes ~seconds =
  if hours < 0 || hours > 23 then invalid_arg "Span.of_dhms: hours";
  if minutes < 0 || minutes > 59 then invalid_arg "Span.of_dhms: minutes";
  if seconds < 0 || seconds > 59 then invalid_arg "Span.of_dhms: seconds";
  let magnitude =
    abs days * seconds_per_day + hours * seconds_per_hour
    + minutes * seconds_per_minute + seconds
  in
  if days < 0 then -magnitude else magnitude

let days t = abs t / seconds_per_day
let is_negative t = t < 0

let add = ( + )
let sub = ( - )
let neg t = -t
let abs = abs
let scale_int t k = t * k

(* Fractional scaling rounds to the nearest whole second. *)
let scale_float t x =
  int_of_float (Float.round (float_of_int t *. x))

let ratio a b =
  if b = 0 then invalid_arg "Span.ratio: zero divisor";
  float_of_int a /. float_of_int b

let compare = Int.compare
let equal = Int.equal
let min (a : int) (b : int) = if a <= b then a else b
let max (a : int) (b : int) = if a >= b then a else b

let pp ppf t =
  let magnitude = Stdlib.abs t in
  let d = magnitude / seconds_per_day in
  let rest = magnitude mod seconds_per_day in
  let sign = if t < 0 then "-" else "" in
  if rest = 0 then Fmt.pf ppf "%s%d" sign d
  else
    Fmt.pf ppf "%s%d %02d:%02d:%02d" sign d (rest / seconds_per_hour)
      (rest mod seconds_per_hour / seconds_per_minute)
      (rest mod seconds_per_minute)

let to_string t = Fmt.str "%a" pp t

(* Grammar: ['+'|'-'] days [' ' hh ':' mm ':' ss]. The optional time part
   is bounded (hh<=23 etc.) so that the printed form round-trips. *)
let scan s =
  let negative =
    if Scan.eat_char s '-' then true
    else begin
      ignore (Scan.eat_char s '+');
      false
    end
  in
  let d = Scan.unsigned_int s in
  let saved = s.Scan.pos in
  let time_part =
    if Scan.eat_char s ' ' then begin
      match Scan.peek s with
      | Some c when Scan.is_digit c ->
        let hh = Scan.unsigned_int s in
        Scan.expect_char s ':';
        let mm = Scan.unsigned_int s in
        Scan.expect_char s ':';
        let ss = Scan.unsigned_int s in
        if hh > 23 || mm > 59 || ss > 59 then
          Scan.fail s "time-of-day component out of range";
        hh * seconds_per_hour + mm * seconds_per_minute + ss
      | Some _ | None ->
        (* The space belonged to the surrounding context, not to us. *)
        s.Scan.pos <- saved;
        0
    end
    else 0
  in
  let magnitude = d * seconds_per_day + time_part in
  if negative then -magnitude else magnitude

let of_string str =
  try Some (Scan.parse_all scan str) with Scan.Parse_error _ -> None

let of_string_exn str = Scan.parse_all scan str
