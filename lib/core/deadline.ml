(* Cooperative cancellation: an atomic flag plus an optional deadline
   and optional resource budgets, polled by the executor at batch
   boundaries.

   The deadline is wall-clock ([Unix.gettimeofday], the same clock the
   tracer uses — there is no monotonic-clock dependency in this tree).
   A backwards clock step can therefore extend a deadline; that is an
   accepted trade-off for a zero-dependency implementation, and the
   budgets (which count work, not time) are unaffected.

   Everything here must be safe from other domains and from signal
   handlers: the flag is an [Atomic.t] and [cancel] is a single
   compare-and-set, so a Ctrl-C handler may call it directly. *)

type reason = Timeout | Client_gone | Shutdown | Budget of string

exception Cancelled of reason

type t = {
  flag : reason option Atomic.t;
  mutable deadline_ns : int;  (* max_int = no deadline; written only by
                                 the owning thread before execution *)
  mutable clock_tick : int;
      (* rate-limits deadline clock reads: without vDSO a gettimeofday
         is a real syscall, and paying one per executor poll costs a few
         percent of a scan. Races on this counter are benign — a missed
         increment only shifts the sampling cadence. *)
  max_rows_scanned : int;
  max_result_rows : int;
  max_mem_bytes : int;
  rows_scanned : int Atomic.t;
  result_rows : int Atomic.t;
  mem_bytes : int Atomic.t;
  has_budget : bool;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let make ?timeout_ms ?(max_rows_scanned = max_int) ?(max_result_rows = max_int)
    ?(max_mem_kb = 0) () =
  let max_mem_bytes =
    if max_mem_kb <= 0 then max_int else max_mem_kb * 1024
  in
  {
    flag = Atomic.make None;
    deadline_ns =
      (match timeout_ms with
      | Some ms when ms > 0 -> now_ns () + (ms * 1_000_000)
      | _ -> max_int);
    clock_tick = 0;
    max_rows_scanned;
    max_result_rows;
    max_mem_bytes;
    rows_scanned = Atomic.make 0;
    result_rows = Atomic.make 0;
    mem_bytes = Atomic.make 0;
    has_budget =
      max_rows_scanned <> max_int || max_result_rows <> max_int
      || max_mem_bytes <> max_int;
  }

let never = make ()
let is_never t = t == never

let create ?timeout_ms ?max_rows_scanned ?max_result_rows ?max_mem_kb () =
  make ?timeout_ms ?max_rows_scanned ?max_result_rows ?max_mem_kb ()

let cancel t reason =
  if not (is_never t) then
    ignore (Atomic.compare_and_set t.flag None (Some reason))

(* Amortized deadline test for the hot poll path: only every 16th call
   reads the clock (the first call does too, catching deadlines that
   expired before execution began). At 256-row poll granularity this
   bounds expiry detection to a few thousand rows past the deadline —
   well inside any millisecond-scale timeout. *)
let past_deadline t =
  t.deadline_ns <> max_int
  &&
  let n = t.clock_tick in
  t.clock_tick <- n + 1;
  n land 15 = 0 && now_ns () > t.deadline_ns

let cancelled t =
  match Atomic.get t.flag with
  | Some _ as r -> r
  | None ->
      if past_deadline t then begin
        cancel t Timeout;
        Atomic.get t.flag
      end
      else None

let check t =
  match Atomic.get t.flag with
  | Some r -> raise (Cancelled r)
  | None ->
      if past_deadline t then begin
        cancel t Timeout;
        match Atomic.get t.flag with
        | Some r -> raise (Cancelled r)
        | None -> ()
      end

let arm_timeout_if_unset t ms =
  if (not (is_never t)) && t.deadline_ns = max_int && ms > 0 then
    t.deadline_ns <- now_ns () + (ms * 1_000_000)

let has_deadline t = t.deadline_ns <> max_int

let remaining_ms t =
  if t.deadline_ns = max_int then None
  else Some (float_of_int (t.deadline_ns - now_ns ()) /. 1e6)

let has_budget t = t.has_budget
let tracks_mem t = t.max_mem_bytes <> max_int

let exhaust t what =
  cancel t (Budget what);
  check t

let charge_rows_scanned t n =
  if t.has_budget && n > 0 then begin
    let total = Atomic.fetch_and_add t.rows_scanned n + n in
    if total > t.max_rows_scanned then
      exhaust t
        (Printf.sprintf "max_rows_scanned=%d exceeded" t.max_rows_scanned)
  end

let charge_result t ~rows ~bytes =
  if t.has_budget then begin
    (if rows > 0 then
       let total = Atomic.fetch_and_add t.result_rows rows + rows in
       if total > t.max_result_rows then
         exhaust t
           (Printf.sprintf "max_result_rows=%d exceeded" t.max_result_rows));
    if bytes > 0 then
      let total = Atomic.fetch_and_add t.mem_bytes bytes + bytes in
      if total > t.max_mem_bytes then
        exhaust t
          (Printf.sprintf "max_mem_kb=%d exceeded" (t.max_mem_bytes / 1024))
  end

let rows_scanned t = Atomic.get t.rows_scanned
let result_rows t = Atomic.get t.result_rows
let mem_bytes t = Atomic.get t.mem_bytes

let reason_label = function
  | Timeout -> "TIMEOUT"
  | Client_gone -> "CANCELLED"
  | Shutdown -> "SHUTDOWN"
  | Budget _ -> "BUDGET"

let reason_message r =
  match r with
  | Timeout -> "TIMEOUT: statement deadline exceeded"
  | Client_gone -> "CANCELLED: statement cancelled by client"
  | Shutdown -> "SHUTDOWN: server is shutting down"
  | Budget what -> "BUDGET: " ^ what
