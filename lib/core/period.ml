(* A [Period] is a pair of instants: the first marks the start and the
   second the end of a closed interval [start, end] of chronons.

   Because either endpoint may be NOW-relative ("[1999-01-01, NOW]" is
   "since 1999"), most observations take a [~now] binding. A period whose
   bound start exceeds its bound end denotes the empty set of chronons;
   such periods can arise transiently (e.g. [NOW, 1999-01-01] once NOW has
   advanced past 1999) and every operation treats them as empty. *)

type t = { start_ : Instant.t; end_ : Instant.t }

type ground = Chronon.t * Chronon.t

let make ~start_ ~end_ = { start_; end_ }
let of_instants start_ end_ = { start_; end_ }
let of_chronons s e = { start_ = Instant.Fixed s; end_ = Instant.Fixed e }
let of_chronon c = of_chronons c c
let since c = { start_ = Instant.Fixed c; end_ = Instant.now }
let past span = { start_ = Instant.now_minus span; end_ = Instant.now }

let start_instant t = t.start_
let end_instant t = t.end_
let is_now_relative t =
  Instant.is_now_relative t.start_ || Instant.is_now_relative t.end_

let ground ~now t : ground option =
  let s = Instant.bind ~now t.start_ in
  let e = Instant.bind ~now t.end_ in
  if Chronon.compare s e > 0 then None else Some (s, e)

let of_ground (s, e) = of_chronons s e

let is_empty ~now t = Option.is_none (ground ~now t)

let start_at ~now t = Option.map fst (ground ~now t)
let end_at ~now t = Option.map snd (ground ~now t)

(* Duration of the closed interval, as the span from start to end.
   A single-chronon period has zero duration under this (continuous)
   reading; [None] for empty periods. *)
let duration ~now t =
  match ground ~now t with
  | None -> None
  | Some (s, e) -> Some (Chronon.diff e s)

let contains_chronon ~now t c =
  match ground ~now t with
  | None -> false
  | Some (s, e) -> Chronon.compare s c <= 0 && Chronon.compare c e <= 0

let ground_overlaps (s1, e1) (s2, e2) =
  Chronon.compare s1 e2 <= 0 && Chronon.compare s2 e1 <= 0

let overlaps ~now a b =
  match ground ~now a, ground ~now b with
  | Some ga, Some gb -> ground_overlaps ga gb
  | None, _ | _, None -> false

(* --- Batch kernels (vectorized execution) ----------------------------------- *)

(* The batch executor works over conservative integer extents (unix
   seconds, see Value.extents), not Chronon.t: these kernels are the
   tight inner loops behind chunked OVERLAPS filters. Each takes a
   selection vector [sel] of length [n] indexing the bound arrays,
   compacts it in place to the surviving rows, and returns the new
   count. *)

(* Rows whose extent [starts.(i), ends.(i)] intersects [lo, hi]. *)
let batch_overlaps_window ~starts ~ends ~lo ~hi ~sel ~n =
  let k = ref 0 in
  for j = 0 to n - 1 do
    let i = sel.(j) in
    if starts.(i) <= hi && lo <= ends.(i) then begin
      sel.(!k) <- i;
      incr k
    end
  done;
  !k

(* Row pairs whose extents intersect each other: the nonempty-ground-
   intersection test (s1 <= e2 && s2 <= e1), matching [ground_overlaps]
   on finite bounds. *)
let batch_overlaps_pairs ~starts1 ~ends1 ~starts2 ~ends2 ~sel ~n =
  let k = ref 0 in
  for j = 0 to n - 1 do
    let i = sel.(j) in
    if starts1.(i) <= ends2.(i) && starts2.(i) <= ends1.(i) then begin
      sel.(!k) <- i;
      incr k
    end
  done;
  !k

let contains_period ~now a b =
  match ground ~now a, ground ~now b with
  | Some (s1, e1), Some (s2, e2) ->
    Chronon.compare s1 s2 <= 0 && Chronon.compare e2 e1 <= 0
  | _, None -> true (* every period contains the empty period *)
  | None, Some _ -> false

let intersect ~now a b =
  match ground ~now a, ground ~now b with
  | Some (s1, e1), Some (s2, e2) ->
    let s = Chronon.max s1 s2 and e = Chronon.min e1 e2 in
    if Chronon.compare s e <= 0 then Some (of_chronons s e) else None
  | None, _ | _, None -> None

(* Smallest single period covering both; [None] when both are empty. *)
let span_of ~now a b =
  match ground ~now a, ground ~now b with
  | Some (s1, e1), Some (s2, e2) ->
    Some (of_chronons (Chronon.min s1 s2) (Chronon.max e1 e2))
  | Some g, None | None, Some g -> Some (of_ground g)
  | None, None -> None

(* Structural equality of the representation (NOW kept symbolic). *)
let equal a b =
  Instant.equal a.start_ b.start_ && Instant.equal a.end_ b.end_

(* Set equality under a NOW binding. *)
let equal_at ~now a b =
  match ground ~now a, ground ~now b with
  | None, None -> true
  | Some (s1, e1), Some (s2, e2) -> Chronon.equal s1 s2 && Chronon.equal e1 e2
  | None, Some _ | Some _, None -> false

let pp ppf t = Fmt.pf ppf "[%a, %a]" Instant.pp t.start_ Instant.pp t.end_
let to_string t = Fmt.str "%a" pp t

let scan s =
  Scan.expect_char s '[';
  Scan.skip_ws s;
  let start_ = Instant.scan s in
  Scan.skip_ws s;
  Scan.expect_char s ',';
  Scan.skip_ws s;
  let end_ = Instant.scan s in
  Scan.skip_ws s;
  Scan.expect_char s ']';
  { start_; end_ }

let of_string str =
  try Some (Scan.parse_all scan str) with Scan.Parse_error _ -> None

let of_string_exn str = Scan.parse_all scan str
