(* A [Chronon] is a specific point on the time line at one-second
   granularity: seconds since 1970-01-01 00:00:00 on the proleptic
   Gregorian calendar.

   Civil-date conversions use Howard Hinnant's days_from_civil /
   civil_from_days algorithms, which are exact over the whole proleptic
   Gregorian calendar (including negative years). *)

type t = int

let epoch = 0

let compare = Int.compare
let equal = Int.equal

(* Monomorphic: [Stdlib.min] would drag every comparison in the hot
   element algebra through the polymorphic compare runtime. *)
let min (a : int) (b : int) = if a <= b then a else b
let max (a : int) (b : int) = if a >= b then a else b
let hash t = t

let to_unix_seconds t = t
let of_unix_seconds sec = sec

let add c span = c + Span.to_seconds span
let sub c span = c - Span.to_seconds span
let diff a b = Span.of_seconds (a - b)

let succ c = c + 1
let pred c = c - 1

(* Floor division/modulo; OCaml's (/) truncates toward zero. *)
let floor_div a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let floor_mod a b = a - floor_div a b * b

let days_from_civil ~year ~month ~day =
  let y = if month <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - era * 400 in
  let mp = if month > 2 then month - 3 else month + 9 in
  let doy = (153 * mp + 2) / 5 + day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146_097) + doe - 719_468

let civil_from_days z =
  let z = z + 719_468 in
  let era = (if z >= 0 then z else z - 146_096) / 146_097 in
  let doe = z - (era * 146_097) in
  let yoe = (doe - (doe / 1_460) + (doe / 36_524) - (doe / 146_096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let day = doy - (((153 * mp) + 2) / 5) + 1 in
  let month = if mp < 10 then mp + 3 else mp - 9 in
  let year = if month <= 2 then y + 1 else y in
  (year, month, day)

let is_leap_year y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap_year y then 29 else 28
  | _ -> invalid_arg "Chronon.days_in_month"

let check_civil ~year ~month ~day ~hour ~minute ~second =
  if month < 1 || month > 12 then invalid_arg "Chronon: month out of range";
  if day < 1 || day > days_in_month year month then
    invalid_arg "Chronon: day out of range";
  if hour < 0 || hour > 23 then invalid_arg "Chronon: hour out of range";
  if minute < 0 || minute > 59 then invalid_arg "Chronon: minute out of range";
  if second < 0 || second > 59 then invalid_arg "Chronon: second out of range"

let of_civil ~year ~month ~day ~hour ~minute ~second =
  check_civil ~year ~month ~day ~hour ~minute ~second;
  (days_from_civil ~year ~month ~day * Span.seconds_per_day)
  + (hour * 3_600) + (minute * 60) + second

let of_ymd year month day =
  of_civil ~year ~month ~day ~hour:0 ~minute:0 ~second:0

let to_civil t =
  let days = floor_div t Span.seconds_per_day in
  let rest = floor_mod t Span.seconds_per_day in
  let year, month, day = civil_from_days days in
  (year, month, day, rest / 3_600, rest mod 3_600 / 60, rest mod 60)

let year t = let y, _, _, _, _, _ = to_civil t in y

(* Truncates to midnight of the same civil day. *)
let start_of_day t = floor_div t Span.seconds_per_day * Span.seconds_per_day

let pp ppf t =
  let year, month, day, hh, mm, ss = to_civil t in
  if hh = 0 && mm = 0 && ss = 0 then Fmt.pf ppf "%04d-%02d-%02d" year month day
  else Fmt.pf ppf "%04d-%02d-%02d %02d:%02d:%02d" year month day hh mm ss

let to_string t = Fmt.str "%a" pp t

(* Grammar: yyyy-mm-dd [hh:mm:ss]; a leading '-' gives negative years. *)
let scan s =
  let negative_year = Scan.eat_char s '-' in
  let y = Scan.unsigned_int s in
  let year = if negative_year then -y else y in
  Scan.expect_char s '-';
  let month = Scan.unsigned_int s in
  Scan.expect_char s '-';
  let day = Scan.unsigned_int s in
  let saved = s.Scan.pos in
  let hour, minute, second =
    if Scan.eat_char s ' ' then begin
      match Scan.peek s with
      | Some c when Scan.is_digit c ->
        let hh = Scan.unsigned_int s in
        Scan.expect_char s ':';
        let mm = Scan.unsigned_int s in
        Scan.expect_char s ':';
        let ss = Scan.unsigned_int s in
        (hh, mm, ss)
      | Some _ | None ->
        s.Scan.pos <- saved;
        (0, 0, 0)
    end
    else (0, 0, 0)
  in
  try of_civil ~year ~month ~day ~hour ~minute ~second
  with Invalid_argument msg -> Scan.fail s msg

let of_string str =
  try Some (Scan.parse_all scan str) with Scan.Parse_error _ -> None

let of_string_exn str = Scan.parse_all scan str
