(* Allen's thirteen interval relations [Allen, CACM 1983], adapted to
   closed intervals over discrete (one-second) time.

   Under the discrete closed reading, "p meets q" holds when q starts at
   the chronon immediately after p ends (no gap, no shared chronon);
   "p before q" requires at least a one-chronon gap. With that convention
   the thirteen relations are jointly exhaustive and pairwise disjoint for
   non-empty periods, which [classify_ground] makes evident case by case. *)

type relation =
  | Before
  | Meets
  | Overlaps
  | Finished_by
  | Contains
  | Starts
  | Equals
  | Started_by
  | During
  | Finishes
  | Overlapped_by
  | Met_by
  | After

let all_relations =
  [ Before; Meets; Overlaps; Finished_by; Contains; Starts; Equals;
    Started_by; During; Finishes; Overlapped_by; Met_by; After ]

let inverse = function
  | Before -> After
  | Meets -> Met_by
  | Overlaps -> Overlapped_by
  | Finished_by -> Finishes
  | Contains -> During
  | Starts -> Started_by
  | Equals -> Equals
  | Started_by -> Starts
  | During -> Contains
  | Finishes -> Finished_by
  | Overlapped_by -> Overlaps
  | Met_by -> Meets
  | After -> Before

let relation_name = function
  | Before -> "before"
  | Meets -> "meets"
  | Overlaps -> "overlaps"
  | Finished_by -> "finished_by"
  | Contains -> "contains"
  | Starts -> "starts"
  | Equals -> "equals"
  | Started_by -> "started_by"
  | During -> "during"
  | Finishes -> "finishes"
  | Overlapped_by -> "overlapped_by"
  | Met_by -> "met_by"
  | After -> "after"

let relation_of_name name =
  match String.lowercase_ascii name with
  | "before" -> Some Before
  | "meets" -> Some Meets
  | "overlaps" -> Some Overlaps
  | "finished_by" -> Some Finished_by
  | "contains" -> Some Contains
  | "starts" -> Some Starts
  | "equals" -> Some Equals
  | "started_by" -> Some Started_by
  | "during" -> Some During
  | "finishes" -> Some Finishes
  | "overlapped_by" -> Some Overlapped_by
  | "met_by" -> Some Met_by
  | "after" -> Some After
  | _ -> None

let pp ppf r = Fmt.string ppf (relation_name r)

let classify_ground ((s1, e1) : Period.ground) ((s2, e2) : Period.ground) =
  let c_start = Chronon.compare s1 s2 in
  let c_end = Chronon.compare e1 e2 in
  if c_start < 0 then begin
    (* p starts strictly first *)
    if Chronon.compare (Chronon.succ e1) s2 < 0 then Before
    else if Chronon.equal (Chronon.succ e1) s2 then Meets
    else if c_end < 0 then Overlaps
    else if c_end = 0 then Finished_by
    else Contains
  end
  else if c_start = 0 then begin
    if c_end < 0 then Starts else if c_end = 0 then Equals else Started_by
  end
  else begin
    (* q starts strictly first: mirror the first branch *)
    if Chronon.compare (Chronon.succ e2) s1 < 0 then After
    else if Chronon.equal (Chronon.succ e2) s1 then Met_by
    else if c_end > 0 then Overlapped_by
    else if c_end = 0 then Finishes
    else During
  end

let classify ~now p q =
  match Period.ground ~now p, Period.ground ~now q with
  | Some gp, Some gq -> Some (classify_ground gp gq)
  | None, _ | _, None -> None

let holds ~now r p q =
  match classify ~now p q with
  | Some r' -> r = r'
  | None -> false

(* Batched relation test for the chunked executor: classify ground pairs
   drawn through a selection vector, compacting [sel] in place to the
   pairs satisfying [r] and returning the surviving count. One
   [classify_ground] per pair, no per-pair allocation. *)
let holds_batch_ground r ~p ~q ~sel ~n =
  let k = ref 0 in
  for j = 0 to n - 1 do
    let i = sel.(j) in
    if classify_ground p.(i) q.(i) = r then begin
      sel.(!k) <- i;
      incr k
    end
  done;
  !k

let before ~now p q = holds ~now Before p q
let meets ~now p q = holds ~now Meets p q
let overlaps ~now p q = holds ~now Overlaps p q
let finished_by ~now p q = holds ~now Finished_by p q
let contains ~now p q = holds ~now Contains p q
let starts ~now p q = holds ~now Starts p q
let equals ~now p q = holds ~now Equals p q
let started_by ~now p q = holds ~now Started_by p q
let during ~now p q = holds ~now During p q
let finishes ~now p q = holds ~now Finishes p q
let overlapped_by ~now p q = holds ~now Overlapped_by p q
let met_by ~now p q = holds ~now Met_by p q
let after ~now p q = holds ~now After p q
