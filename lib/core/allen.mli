(** Allen's thirteen interval relations (Allen, CACM 1983) over periods.

    Adapted to closed intervals on discrete time: [Meets] holds when the
    second period starts at the chronon immediately after the first ends;
    [Before] requires at least a one-chronon gap. With that convention the
    thirteen relations are jointly exhaustive and pairwise disjoint for
    non-empty periods. *)

type relation =
  | Before
  | Meets
  | Overlaps
  | Finished_by
  | Contains
  | Starts
  | Equals
  | Started_by
  | During
  | Finishes
  | Overlapped_by
  | Met_by
  | After

(** All thirteen relations, in the order above. *)
val all_relations : relation list

(** The converse relation: [inverse Before = After], etc. *)
val inverse : relation -> relation

val relation_name : relation -> string
val relation_of_name : string -> relation option
val pp : Format.formatter -> relation -> unit

(** The unique relation holding between two ground periods. *)
val classify_ground : Period.ground -> Period.ground -> relation

(** [classify ~now p q] grounds both periods under [now]; [None] if either
    is empty. *)
val classify : now:Chronon.t -> Period.t -> Period.t -> relation option

(** [holds ~now r p q] tests a specific relation; empty periods satisfy
    none. *)
val holds : now:Chronon.t -> relation -> Period.t -> Period.t -> bool

(** Batched relation test over parallel arrays of ground periods for the
    chunked executor: compacts the selection vector [sel] (first [n]
    entries index [p]/[q]) in place to the pairs satisfying the
    relation, returning the surviving count. *)
val holds_batch_ground :
  relation ->
  p:Period.ground array ->
  q:Period.ground array ->
  sel:int array ->
  n:int ->
  int

(** {1 One predicate per relation} *)

val before : now:Chronon.t -> Period.t -> Period.t -> bool
val meets : now:Chronon.t -> Period.t -> Period.t -> bool
val overlaps : now:Chronon.t -> Period.t -> Period.t -> bool
val finished_by : now:Chronon.t -> Period.t -> Period.t -> bool
val contains : now:Chronon.t -> Period.t -> Period.t -> bool
val starts : now:Chronon.t -> Period.t -> Period.t -> bool
val equals : now:Chronon.t -> Period.t -> Period.t -> bool
val started_by : now:Chronon.t -> Period.t -> Period.t -> bool
val during : now:Chronon.t -> Period.t -> Period.t -> bool
val finishes : now:Chronon.t -> Period.t -> Period.t -> bool
val overlapped_by : now:Chronon.t -> Period.t -> Period.t -> bool
val met_by : now:Chronon.t -> Period.t -> Period.t -> bool
val after : now:Chronon.t -> Period.t -> Period.t -> bool
