(** The replica-side replication client (DESIGN.md §13).

    [start] spawns one background thread that connects to the primary,
    bootstraps a snapshot if it has none (or its generation went stale),
    subscribes to the WAL stream from its confirmed offset, and replays
    committed batches into the shared catalog under the database lock.
    Every failure routes somewhere safe: corrupt or torn frames drop the
    connection and resume from the last commit boundary; a generation
    change forces a fresh bootstrap; a lost or draining primary parks
    the client in bounded-exponential-backoff reconnect while the
    replica keeps serving reads with honestly growing staleness.

    Registers a replica-side [tip_stat_replication] virtual table (one
    row describing the primary) on [start]. *)

type t

(** Starts replicating [db] from the primary at [host]:[port]. [lock]
    is the mutex replay shares with readers — pass the server's
    {!Server.db_mutex} so statements and replay serialize. The thread
    retries forever until {!stop}; a primary that is down at start is
    simply retried. [resume] is a rejoining node's local
    [(generation, offset, epoch)] — offered as a subscription before
    falling back to a bootstrap, so an ex-primary's recovered state is
    either reused (primary accepts) or discarded (fenced with
    [STALE_EPOCH], or [GEN_CHANGED]) and replaced by a fresh snapshot:
    the demotion path. *)
val start :
  ?lock:Mutex.t ->
  ?resume:int * int * int ->
  host:string ->
  port:int ->
  Tip_engine.Database.t ->
  t

(** Stops the thread and closes the connection. Idempotent. *)
val stop : t -> unit

(** Bytes between the primary's known end of log and the last offset
    this replica confirmed at a commit boundary. *)
val lag_bytes : t -> int

(** Seconds since the replica last proved it was caught up. Near zero
    while streaming; grows without bound once the primary is lost. *)
val staleness_seconds : t -> float

(** ["connecting"], ["bootstrapping"], ["streaming"], ["disconnected"],
    ["promoted"], or ["stopped"]. *)
val state : t -> string

(** Stops following the primary and turns the database into a writable
    primary rooted at [dir] (DESIGN.md §15): joins the follower thread
    (the frozen state is a commit boundary — replay only ever applies
    whole batches), saves the streamed state as a full snapshot, opens
    a fresh WAL under a promotion epoch one past anything this client
    has seen, and clears the read-only mark. Returns the new
    [(generation, epoch)]. Idempotent in effect but meant to run once;
    fails if the client never completed a bootstrap. *)
val promote :
  ?sync:Tip_storage.Wal.sync_policy ->
  ?checkpoint_every:int ->
  ?archive_dir:string ->
  t ->
  dir:string ->
  unit ->
  (int * int, string) result

(** The newest promotion epoch the primary has shown this client. *)
val epoch : t -> int

(** Times this client was fenced with [STALE_EPOCH] (then demoted to a
    fresh bootstrap under the new epoch). *)
val fence_rejections : t -> int

(** WAL generation currently replicated (0 before first bootstrap). *)
val generation : t -> int

(** Last confirmed byte offset in the primary's WAL. *)
val applied_offset : t -> int

(** Connection attempts that reached the primary. *)
val reconnects : t -> int

(** Snapshot bootstraps completed (1 after a clean start; more after
    generation changes). *)
val bootstraps : t -> int

(** Severs the current connection without stopping the loop, so the
    reconnect/backoff path runs — fault-injection hook for tests and
    benchmarks. *)
val inject_disconnect : t -> unit
