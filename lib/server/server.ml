(* The TIP database server: accepts client connections over TCP (or any
   stream socket) and executes their statements against one shared
   embedded database.

   One thread per client; statement execution is serialized with a
   mutex, so clients see the same single-writer semantics as embedded
   connections (DESIGN.md documents the concurrency scope). Parameter
   bindings (B lines) accumulate per session and apply to the next Q. *)

module Db = Tip_engine.Database
module Metrics = Tip_obs.Metrics
module Trace = Tip_obs.Trace

let log_src = Logs.Src.create "tip.server" ~doc:"TIP network server"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_sessions =
  Metrics.counter "server_sessions_total" ~help:"Client sessions accepted"

let g_sessions_active =
  Metrics.gauge "server_sessions_active" ~help:"Client sessions currently open"

let m_statements =
  Metrics.counter "server_statements_total" ~help:"Statements served over the wire"

let m_errors =
  Metrics.counter "server_errors_total" ~help:"Statements answered with an E response"

let h_statement_ns =
  Metrics.histogram "server_statement_ns"
    ~help:"Wire statement latency (ns), queueing on the db lock included"

type t = {
  db : Db.t;
  db_lock : Mutex.t;
  listener : Unix.file_descr;
  idle_timeout : float option;
  slow_ms : float option;
  mutable running : bool;
}

let result_to_response : Db.result -> Protocol.response = function
  | Db.Rows { names; rows } -> Protocol.Rows { names; rows }
  | Db.Affected n -> Protocol.Affected n
  | Db.Message m -> Protocol.Message m

(* Every failure becomes an E response; the session survives. Expected
   engine errors travel as their bare message; anything else (a bug, a
   poison statement) is caught by the final catch-all so one client
   cannot take the server down. Simulated crashes ([Failpoint.Crash])
   are deliberately NOT caught — they stand for process death. *)
let response_rows = function
  | Protocol.Rows { rows; _ } -> List.length rows
  | Protocol.Affected n -> n
  | Protocol.Message _ | Protocol.Error _ -> 0

let execute_guarded t ~params sql =
  let t0 = Trace.now_ns () in
  Mutex.lock t.db_lock;
  let response =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.db_lock)
      (fun () ->
        match
          Tip_storage.Failpoint.hit ~site:"server.exec" ();
          Db.exec ~params t.db sql
        with
        | result -> result_to_response result
        | exception Db.Error msg -> Protocol.Error msg
        | exception Tip_sql.Parser.Error msg -> Protocol.Error msg
        | exception Tip_sql.Lexer.Error msg -> Protocol.Error msg
        | exception Tip_engine.Planner.Plan_error msg -> Protocol.Error msg
        | exception Tip_engine.Expr_eval.Eval_error msg -> Protocol.Error msg
        | exception Tip_storage.Value.Type_error msg -> Protocol.Error msg
        | exception Tip_storage.Table.Constraint_violation msg ->
          Protocol.Error msg
        | exception Tip_storage.Catalog.Catalog_error msg -> Protocol.Error msg
        | exception Tip_storage.Schema.Schema_error msg -> Protocol.Error msg
        | exception (Tip_storage.Failpoint.Crash _ as e) -> raise e
        | exception e ->
          Log.err (fun m ->
              m "internal error executing %S: %s" sql (Printexc.to_string e));
          Protocol.Error ("internal error: " ^ Printexc.to_string e))
  in
  let elapsed_ns = Trace.now_ns () - t0 in
  Metrics.incr m_statements;
  Metrics.observe h_statement_ns elapsed_ns;
  (match response with
  | Protocol.Error _ -> Metrics.incr m_errors
  | _ -> ());
  (match t.slow_ms with
  | Some threshold when float_of_int elapsed_ns /. 1e6 >= threshold ->
    Tip_obs.Log_sink.line "SLOW %.3f ms rows=%d stmt=%s"
      (float_of_int elapsed_ns /. 1e6)
      (response_rows response) sql
  | _ -> ());
  response

let handle_session t fd =
  (* SO_RCVTIMEO makes a silent client's read fail after the idle
     timeout; the session is then dropped and its thread reclaimed. *)
  (match t.idle_timeout with
  | Some secs -> (
    try Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs
    with Unix.Unix_error _ | Invalid_argument _ -> ())
  | None -> ());
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let params = ref [] in
  let reply response =
    try
      Protocol.write_response oc response;
      flush oc;
      true
    with Sys_error _ | Unix.Unix_error _ -> false (* peer went away *)
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ ->
      (* read timed out (SO_RCVTIMEO) or the socket died *)
      Log.debug (fun m -> m "dropping idle or broken session")
    | exception Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT | Unix.ECONNRESET), _, _)
      ->
      Log.debug (fun m -> m "dropping idle or broken session")
    | line -> (
      (* A malformed B line can make [decode_request] itself raise (bad
         wire int, unregistered type, ...): answer E and keep going. *)
      match (try Ok (Protocol.decode_request line) with e -> Error e) with
      | Ok (Some Protocol.Quit) -> ()
      | Ok (Some (Protocol.Bind (name, v))) ->
        params := (name, v) :: List.remove_assoc name !params;
        loop ()
      | Ok (Some (Protocol.Execute sql)) ->
        let response = execute_guarded t ~params:!params sql in
        params := [];
        if reply response then loop ()
      | Ok (Some Protocol.Metrics) ->
        if reply (Protocol.Message (Metrics.dump_text ())) then loop ()
      | Ok None ->
        if reply (Protocol.Error "malformed request") then loop ()
      | Error e ->
        if reply (Protocol.Error ("malformed request: " ^ Printexc.to_string e))
        then loop ())
  in
  Metrics.incr m_sessions;
  Metrics.gauge_add g_sessions_active 1;
  Fun.protect
    ~finally:(fun () ->
      Metrics.gauge_add g_sessions_active (-1);
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try loop ()
      with e ->
        (* last-ditch guard: a session bug must never unwind into the
           accept loop's thread machinery with an unhandled exception *)
        Log.err (fun m -> m "session aborted: %s" (Printexc.to_string e)))

(* Creates a listening socket; port 0 picks an ephemeral port.
   [idle_timeout] (seconds) drops sessions that stay silent that long.
   [slow_ms] logs statements at or above that latency to the obs sink. *)
let listen ?(host = "127.0.0.1") ?idle_timeout ?slow_ms ~port db =
  (* a client vanishing mid-response must surface as EPIPE on the write,
     not kill the whole server *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 16;
  { db;
    db_lock = Mutex.create ();
    listener = fd;
    idle_timeout;
    slow_ms;
    running = true }

let port t =
  match Unix.getsockname t.listener with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Server.port: unix socket"

(* Accept loop: one thread per client. Runs until [stop]. *)
let serve t =
  Log.info (fun m -> m "listening on port %d" (port t));
  let rec accept_loop () =
    if t.running then begin
      match Unix.accept t.listener with
      | client_fd, _ ->
        ignore (Thread.create (fun () -> handle_session t client_fd) ());
        accept_loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        () (* listener closed by [stop] *)
    end
  in
  accept_loop ()

(* Runs the accept loop on a background thread; returns immediately. *)
let serve_in_background t = ignore (Thread.create (fun () -> serve t) ())

let stop t =
  t.running <- false;
  try Unix.close t.listener with Unix.Unix_error _ -> ()
