(* The TIP database server: accepts client connections over TCP (or any
   stream socket) and executes their statements against one shared
   embedded database.

   One thread per client; statement execution is serialized with a
   mutex, so clients see the same single-writer semantics as embedded
   connections (DESIGN.md documents the concurrency scope). Parameter
   bindings (B lines) accumulate per session and apply to the next Q.

   Resource governance (DESIGN.md §10): every statement runs under a
   Deadline token — armed with the per-session timeout (SET TIMEOUT)
   or the server-wide --statement-timeout-ms default — and registered
   in an in-flight table so a drain can cancel everything currently
   executing. Admission control caps concurrent sessions: beyond
   --max-sessions, a new connection is answered E OVERLOADED and
   closed instead of queueing behind the db lock forever. *)

module Db = Tip_engine.Database
module Metrics = Tip_obs.Metrics
module Wait = Tip_obs.Wait
module Trace = Tip_obs.Trace
module Deadline = Tip_core.Deadline
module Ast = Tip_sql.Ast

let log_src = Logs.Src.create "tip.server" ~doc:"TIP network server"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_sessions =
  Metrics.counter "server_sessions_total" ~help:"Client sessions accepted"

let g_sessions_active =
  Metrics.gauge "server_sessions_active" ~help:"Client sessions currently open"

let m_statements =
  Metrics.counter "server_statements_total" ~help:"Statements served over the wire"

let m_errors =
  Metrics.counter "server_errors_total" ~help:"Statements answered with an E response"

let m_sessions_rejected =
  Metrics.counter "server_sessions_rejected_total"
    ~help:"Connections refused with E OVERLOADED by admission control"

let m_idle_drops =
  Metrics.counter "server_idle_drops_total"
    ~help:"Sessions closed with E IDLE_TIMEOUT after staying silent"

let g_drain_ms =
  Metrics.gauge "server_drain_seconds"
    ~help:"Duration of the last graceful drain, milliseconds"

let h_statement_ns =
  Metrics.histogram "server_statement_ns"
    ~help:"Wire statement latency (ns), queueing on the db lock included"

let g_replicas =
  Metrics.gauge "repl_subscribers_active"
    ~help:"Replication subscribers currently streaming"

let m_repl_chunks =
  Metrics.counter "repl_chunks_sent_total"
    ~help:"WAL chunks shipped to replication subscribers"

let m_repl_bytes =
  Metrics.counter "repl_bytes_sent_total"
    ~help:"WAL bytes shipped to replication subscribers"

let m_repl_bootstraps =
  Metrics.counter "repl_bootstraps_total"
    ~help:"Snapshot bootstraps served to replicas"

let m_fenced =
  Metrics.counter "ha_fenced_total"
    ~help:"Stale-epoch replication subscriptions rejected (split-brain fence)"

let m_promotions =
  Metrics.counter "ha_promotions_total"
    ~help:"Replica promotions performed by this server"

(* Per-session statement-timeout override (SET TIMEOUT n):
   [Inherit] uses the server-wide default, [Off] disables deadlines for
   this session, [Ms n] arms n milliseconds. *)
type session_timeout = Inherit | Off | Ms of int

(* Live session row for tip_stat_activity. The owning session thread
   writes; the activity snapshot reads under [sessions_lock], so a
   half-updated statement entry can never be observed. *)
type session_info = {
  si_id : int;
  si_addr : string;
  mutable si_state : string; (* "idle" | "active" *)
  mutable si_query : string option; (* statement currently executing *)
  mutable si_started : float; (* unix time: statement start (session
                                 start while idle) *)
  mutable si_token : Deadline.t option; (* current statement's token *)
  mutable si_wait : Wait.session option; (* ASH slot, bound in the
                                            session's own thread *)
}

(* Live subscriber row for tip_stat_replication (primary side). The
   streaming thread writes sent/state; the ack-reader thread writes
   acked fields; the vtab snapshot reads under [replicas_lock]. *)
type replica_info = {
  ri_id : int;
  ri_addr : string;
  mutable ri_state : string; (* "streaming" | "caught_up" *)
  mutable ri_gen : int;
  ri_epoch : int; (* the subscription's promotion epoch *)
  mutable ri_sent_offset : int; (* WAL bytes shipped so far *)
  mutable ri_acked_offset : int; (* subscriber's confirmed replay position *)
  mutable ri_acked_commits : int;
  mutable ri_last_ack : float; (* unix time of the last ack *)
}

type t = {
  db : Db.t;
  db_lock : Mutex.t;
  listener : Unix.file_descr;
  idle_timeout : float option;
  slow_ms : float option;
  statement_timeout_ms : int option;
  max_sessions : int option;
  active : int Atomic.t;
  inflight : (int, Deadline.t) Hashtbl.t; (* statement id -> its token *)
  inflight_lock : Mutex.t;
  stmt_ids : int Atomic.t;
  sessions : (int, session_info) Hashtbl.t; (* session id -> live row *)
  sessions_lock : Mutex.t;
  session_ids : int Atomic.t;
  replicas : (int, replica_info) Hashtbl.t; (* subscriber id -> live row *)
  replicas_lock : Mutex.t;
  replica_ids : int Atomic.t;
  mutable staleness_probe : (unit -> float) option;
      (* installed by the replication client on a replica server so L
         probes (and tip_stat_replication) can report how far behind
         the primary this server's reads are *)
  mutable promote_handler : (unit -> (int * int, string) result) option;
      (* installed on a served replica; PROMOTE runs it (outside the db
         lock — it owns its own locking) and it returns the new
         (generation, epoch) or a typed error *)
  mutable draining : bool;
  mutable running : bool;
}

let result_to_response : Db.result -> Protocol.response = function
  | Db.Rows { names; rows } -> Protocol.Rows { names; rows }
  | Db.Affected n -> Protocol.Affected n
  | Db.Message m -> Protocol.Message m

let response_rows = function
  | Protocol.Rows { rows; _ } -> List.length rows
  | Protocol.Affected n -> n
  | Protocol.Message _ | Protocol.Error _ -> 0

(* --- In-flight statement registry -------------------------------------- *)

let register_inflight t token =
  let id = Atomic.fetch_and_add t.stmt_ids 1 in
  Mutex.lock t.inflight_lock;
  Hashtbl.replace t.inflight id token;
  Mutex.unlock t.inflight_lock;
  id

let unregister_inflight t id =
  Mutex.lock t.inflight_lock;
  Hashtbl.remove t.inflight id;
  Mutex.unlock t.inflight_lock

let inflight_count t =
  Mutex.lock t.inflight_lock;
  let n = Hashtbl.length t.inflight in
  Mutex.unlock t.inflight_lock;
  n

(* --- Session registry (tip_stat_activity) ------------------------------- *)

let with_sessions_lock t f =
  Mutex.lock t.sessions_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.sessions_lock) f

(* Runs on the session's own thread, so the ASH slot binds to it. *)
let register_session t addr =
  let id = Atomic.fetch_and_add t.session_ids 1 in
  let si =
    { si_id = id;
      si_addr = addr;
      si_state = "idle";
      si_query = None;
      si_started = Unix.gettimeofday ();
      si_token = None;
      si_wait = Some (Wait.register ~id ~kind:"client") }
  in
  with_sessions_lock t (fun () -> Hashtbl.replace t.sessions si.si_id si);
  si

let unregister_session t si =
  Option.iter Wait.unregister si.si_wait;
  with_sessions_lock t (fun () -> Hashtbl.remove t.sessions si.si_id)

let session_begin_statement t si ~sql ~token =
  (match si.si_wait with
  | Some w ->
    Wait.set_query w (Some (Tip_sql.Lexer.fingerprint sql));
    Wait.set_active w true
  | None -> ());
  with_sessions_lock t (fun () ->
      si.si_state <- "active";
      si.si_query <- Some sql;
      si.si_started <- Unix.gettimeofday ();
      si.si_token <- Some token)

let session_end_statement t si =
  (match si.si_wait with
  | Some w ->
    Wait.set_active w false;
    Wait.set_query w None
  | None -> ());
  with_sessions_lock t (fun () ->
      si.si_state <- "idle";
      si.si_query <- None;
      si.si_started <- Unix.gettimeofday ();
      si.si_token <- None)

(* The current-statement start time as a TIP Instant when the blade has
   registered the type (the server cannot depend on the blade
   directly); plain DATE otherwise. *)
let started_value unix_time =
  let chronon = Tip_core.Chronon.of_unix_seconds (int_of_float unix_time) in
  match Tip_storage.Value.lookup_type "instant" with
  | Some vt -> (
    try vt.Tip_storage.Value.parse (Tip_core.Chronon.to_string chronon)
    with Tip_storage.Value.Type_error _ -> Tip_storage.Value.Date chronon)
  | None -> Tip_storage.Value.Date chronon

let activity_rows t () =
  let module Value = Tip_storage.Value in
  with_sessions_lock t (fun () ->
      Hashtbl.fold
        (fun _ si acc ->
          [| Value.Int si.si_id;
             Value.Str si.si_addr;
             Value.Str si.si_state;
             (match si.si_query with
             | Some q -> Value.Str q
             | None -> Value.Null);
             started_value si.si_started;
             (match Option.map Deadline.remaining_ms si.si_token with
             | Some (Some ms) -> Value.Float ms
             | Some None | None -> Value.Null) |]
          :: acc)
        t.sessions [])
  |> List.sort (fun a b ->
         match a.(0), b.(0) with
         | Tip_storage.Value.Int x, Tip_storage.Value.Int y -> Int.compare x y
         | _ -> 0)

(* --- Replication stream (primary side) ---------------------------------- *)

module Failpoint = Tip_storage.Failpoint

let with_replicas_lock t f =
  Mutex.lock t.replicas_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.replicas_lock) f

(* Acquiring the statement-serialization mutex is THE DbLock wait —
   the number the MVCC roadmap item exists to drive down. Only the
   acquisition is attributed; time spent holding the lock lands on the
   session's other wait classes (or Cpu). *)
let with_db_lock t f =
  Wait.with_wait Wait.DbLock (fun () -> Mutex.lock t.db_lock);
  Fun.protect ~finally:(fun () -> Mutex.unlock t.db_lock) f

(* tip_stat_replication rows, primary side: one per live subscriber.
   Runs inside a statement, which already holds the db lock, so the
   WAL end offset is read directly. *)
let replication_rows t () =
  let module Value = Tip_storage.Value in
  let wal_end =
    match Db.replication_state t.db with Some (_, off, _) -> off | None -> 0
  in
  let archive_gen =
    match Db.archive_generation t.db with
    | Some g -> Value.Int g
    | None -> Value.Null
  in
  let now = Unix.gettimeofday () in
  with_replicas_lock t (fun () ->
      Hashtbl.fold
        (fun _ ri acc ->
          let lag_bytes = Stdlib.max 0 (wal_end - ri.ri_acked_offset) in
          [| Value.Str ri.ri_addr;
             Value.Str "replica";
             Value.Str ri.ri_state;
             Value.Int ri.ri_gen;
             Value.Int wal_end;
             Value.Int ri.ri_acked_offset;
             Value.Int lag_bytes;
             Value.Int ri.ri_acked_commits;
             (if lag_bytes = 0 then Value.Float 0.
              else Value.Float (now -. ri.ri_last_ack));
             Value.Int ri.ri_epoch;
             archive_gen |]
          :: acc)
        t.replicas [])

let rec read_some fd buf off len =
  match Unix.read fd buf off len with
  | 0 -> off
  | n -> if n = len then off + n else read_some fd buf (off + n) (len - n)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_some fd buf off len

(* Serves one [S <gen> <offset>] subscription until the link dies, the
   generation changes, or the server drains. The session socket becomes
   a one-way WAL byte stream (chunks + keepalives) with a companion
   thread blocking-reading the subscriber's acks; every outgoing chunk
   passes through the [repl.send] failpoint so tests can drop, delay,
   truncate or bit-flip it in flight.

   The WAL file is read under the db lock: a checkpoint — the only
   truncation — holds that lock for its whole duration, so a read that
   started under generation g cannot observe a truncated file. *)
let handle_replication_stream t fd ic oc ~addr ~gen ~offset ~epoch =
  let send_error msg =
    try
      Protocol.write_response oc (Protocol.Error msg);
      flush oc
    with Sys_error _ | Unix.Unix_error _ -> ()
  in
  (* The split-brain fence (DESIGN.md §15): a subscription whose
     promotion epoch does not match ours is answered with a typed
     error before a single byte is shipped. A stale subscriber (an old
     primary rejoining after a failover it missed) must re-bootstrap —
     its history past the promotion point may have diverged; a NEWER
     subscriber epoch means this server itself is the stale one and
     the client should go find the real primary. *)
  let fence =
    with_db_lock t (fun () ->
        let own = Db.epoch t.db in
        if epoch <> own then Some own else None)
  in
  match fence with
  | Some own ->
    Metrics.incr m_fenced;
    Tip_obs.Events.record ~kind:"fenced"
      ~detail:
        (Printf.sprintf "subscriber %s at epoch %d fenced (our epoch %d)" addr
           epoch own);
    Log.warn (fun m ->
        m "fencing subscriber %s: epoch %d vs our %d" addr epoch own);
    send_error
      (Printf.sprintf
         "STALE_EPOCH: subscription epoch %d, primary epoch %d; a promotion \
          happened — bootstrap a fresh snapshot"
         epoch own)
  | None -> (
  match Db.replication_wal_path t.db with
  | None -> send_error "REPLICATION: this server has no durable WAL to ship"
  | Some wal_path ->
    (* The stream writes; its reads are sparse acks that can be minutes
       apart, so the session idle-read timeout must not apply. *)
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0. with _ -> ());
    let ri =
      { ri_id = Atomic.fetch_and_add t.replica_ids 1;
        ri_addr = addr;
        ri_state = "streaming";
        ri_gen = gen;
        ri_epoch = epoch;
        ri_sent_offset = offset;
        ri_acked_offset = offset;
        ri_acked_commits = 0;
        ri_last_ack = Unix.gettimeofday () }
    in
    with_replicas_lock t (fun () -> Hashtbl.replace t.replicas ri.ri_id ri);
    Metrics.gauge_add g_replicas 1;
    Log.info (fun m ->
        m "replication subscriber %s: gen %d from offset %d" addr gen offset);
    (* Ack reader: owns all reads on this socket from here on. Exits
       when the peer closes (or the session teardown closes the fd). *)
    ignore
      (Thread.create
         (fun () ->
           let rec go () =
             match input_line ic with
             | exception _ -> ()
             | line -> (
               match (try Protocol.decode_request line with _ -> None) with
               | Some (Protocol.Ack { offset; commits }) ->
                 with_replicas_lock t (fun () ->
                     ri.ri_acked_offset <- Stdlib.max ri.ri_acked_offset offset;
                     ri.ri_acked_commits <- ri.ri_acked_commits + commits;
                     ri.ri_last_ack <- Unix.gettimeofday ());
                 go ()
               | Some Protocol.Quit -> ()
               | _ -> go ())
           in
           go ())
         ());
    let wal_fd =
      try Some (Unix.openfile wal_path [ Unix.O_RDONLY ] 0)
      with Unix.Unix_error _ -> None
    in
    let send_chunk payload =
      match Failpoint.stream ~site:"repl.send" payload with
      | None, _ -> `Close (* dropped: sever so the resume path engages *)
      | Some p, kill -> (
        match
          Protocol.write_chunk oc p;
          flush oc
        with
        | () ->
          Metrics.incr m_repl_chunks;
          Metrics.add m_repl_bytes (String.length p);
          if kill then `Close else `Sent
        | exception (Sys_error _ | Unix.Unix_error _) -> `Close)
    in
    let last_send = ref (Unix.gettimeofday ()) in
    let rec stream () =
      if t.draining then
        send_error (Deadline.reason_message Deadline.Shutdown)
      else begin
        let status =
          with_db_lock t (fun () ->
              match Db.replication_state t.db with
              | None -> `Error "REPLICATION: durable storage detached"
              | Some (cur_gen, wal_end, _) ->
                if cur_gen <> ri.ri_gen then
                  `Error
                    (Printf.sprintf
                       "GEN_CHANGED: WAL generation is now %d (subscribed at \
                        %d); bootstrap a fresh snapshot"
                       cur_gen ri.ri_gen)
                else if ri.ri_sent_offset > wal_end then
                  `Error
                    (Printf.sprintf
                       "GEN_CHANGED: offset %d beyond end of log %d; bootstrap \
                        a fresh snapshot"
                       ri.ri_sent_offset wal_end)
                else if ri.ri_sent_offset = wal_end then `Idle wal_end
                else begin
                  match wal_fd with
                  | None -> `Error "REPLICATION: cannot open the WAL file"
                  | Some wfd ->
                    let want = Stdlib.min 65536 (wal_end - ri.ri_sent_offset) in
                    ignore (Unix.lseek wfd ri.ri_sent_offset Unix.SEEK_SET);
                    let buf = Bytes.create want in
                    let got = read_some wfd buf 0 want in
                    if got = 0 then `Idle wal_end
                    else `Data (Bytes.sub_string buf 0 got)
                end)
        in
        match status with
        | `Error msg -> send_error msg
        | `Idle wal_end ->
          with_replicas_lock t (fun () -> ri.ri_state <- "caught_up");
          let now = Unix.gettimeofday () in
          if now -. !last_send >= 0.5 then begin
            match
              Protocol.write_response oc
                (Protocol.Message (Printf.sprintf "keepalive %d" wal_end));
              flush oc
            with
            | () ->
              last_send := now;
              Thread.delay 0.02;
              stream ()
            | exception (Sys_error _ | Unix.Unix_error _) -> ()
          end
          else begin
            Thread.delay 0.02;
            stream ()
          end
        | `Data payload -> (
          with_replicas_lock t (fun () -> ri.ri_state <- "streaming");
          match send_chunk payload with
          | `Close -> ()
          | `Sent ->
            ri.ri_sent_offset <- ri.ri_sent_offset + String.length payload;
            last_send := Unix.gettimeofday ();
            stream ())
      end
    in
    Fun.protect
      ~finally:(fun () ->
        (match wal_fd with
        | Some wfd -> ( try Unix.close wfd with Unix.Unix_error _ -> ())
        | None -> ());
        with_replicas_lock t (fun () -> Hashtbl.remove t.replicas ri.ri_id);
        Metrics.gauge_add g_replicas (-1);
        Log.info (fun m -> m "replication subscriber %s gone" addr))
      stream)

(* Serves one [P] snapshot-bootstrap exchange:
   [M snapshot <gen> <offset>] followed by a single chunk holding the
   snapshot text, all three mutually consistent (rendered under the db
   lock). Returns whether the session should continue — a failpoint
   killing the bootstrap mid-flight ends the session, which is exactly
   how a real mid-bootstrap crash presents to the replica. *)
let handle_snapshot_request t oc =
  let reply r =
    try
      Protocol.write_response oc r;
      flush oc;
      true
    with Sys_error _ | Unix.Unix_error _ -> false
  in
  match with_db_lock t (fun () -> Db.replication_snapshot t.db) with
  | exception Db.Error msg -> reply (Protocol.Error msg)
  | None ->
    reply (Protocol.Error "REPLICATION: this server has no durable WAL to ship")
  | Some (gen, text, offset, epoch) -> (
    Metrics.incr m_repl_bootstraps;
    match Failpoint.stream ~site:"repl.snapshot" text with
    | None, _ -> false (* dropped mid-bootstrap: sever *)
    | Some p, kill -> (
      match
        Protocol.write_response oc
          (Protocol.Message (Printf.sprintf "snapshot %d %d %d" gen offset epoch));
        Protocol.write_chunk oc p;
        flush oc
      with
      | () -> not kill
      | exception (Sys_error _ | Unix.Unix_error _) -> false))

(* --- Statement execution ------------------------------------------------ *)

(* Every failure becomes an E response; the session survives. Expected
   engine errors travel as their bare message; a tripped governance
   token travels as its typed message (TIMEOUT:/BUDGET:/SHUTDOWN:/
   CANCELLED: prefix); anything else (a bug, a poison statement) is
   caught by the final catch-all so one client cannot take the server
   down. Simulated crashes ([Failpoint.Crash]) are deliberately NOT
   caught — they stand for process death. *)
(* Returns the response plus the finished statement trace (grabbed
   under the db lock, so it cannot be another session's): the caller
   exports it when the statement turns out slow and --trace-dir is on. *)
let execute_statement_guarded t ~token ~params ~sql stmt =
  Wait.with_wait Wait.DbLock (fun () -> Mutex.lock t.db_lock);
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.db_lock)
    (fun () ->
      let root_before = Trace.last_root () in
      let response =
        match
          Tip_storage.Failpoint.hit ~site:"server.exec" ();
          (* waiting in the lock queue counts against the deadline: a
             statement whose deadline passed while queued is answered
             without executing at all *)
          Deadline.check token;
          Db.exec_statement ~token ~sql t.db ~params stmt
        with
        | result -> result_to_response result
        | exception Deadline.Cancelled reason ->
          Protocol.Error (Deadline.reason_message reason)
        | exception Db.Error msg -> Protocol.Error msg
        | exception Tip_engine.Planner.Plan_error msg -> Protocol.Error msg
        | exception Tip_engine.Expr_eval.Eval_error msg -> Protocol.Error msg
        | exception Tip_storage.Value.Type_error msg -> Protocol.Error msg
        | exception Tip_storage.Table.Constraint_violation msg ->
          Protocol.Error msg
        | exception Tip_storage.Catalog.Catalog_error msg -> Protocol.Error msg
        | exception Tip_storage.Schema.Schema_error msg -> Protocol.Error msg
        | exception (Tip_storage.Failpoint.Crash _ as e) -> raise e
        | exception e ->
          Log.err (fun m ->
              m "internal error executing %S: %s"
                (Tip_sql.Pretty.statement_to_string stmt)
                (Printexc.to_string e));
          Protocol.Error ("internal error: " ^ Printexc.to_string e)
      in
      (* Only a root that appeared during THIS statement is ours to
         export; a statement cancelled before it reached the engine
         leaves [last_root] pointing at some earlier statement. *)
      let root =
        match Trace.last_root () with
        | Some r
          when (match root_before with Some b -> b != r | None -> true) ->
          Some r
        | _ -> None
      in
      (response, root))

let session_timeout_ms t session_timeout =
  match session_timeout with
  | Ms ms -> Some ms
  | Off -> None
  | Inherit -> t.statement_timeout_ms

let execute_guarded t ~session ~session_timeout ~params sql =
  let t0 = Trace.now_ns () in
  let response, trace_root =
    match Tip_sql.Parser.parse sql with
    | exception Tip_sql.Parser.Error msg -> (Protocol.Error msg, None)
    | exception Tip_sql.Lexer.Error msg -> (Protocol.Error msg, None)
    | Ast.Set_timeout v ->
      (* Session-scoped: the shared database's own default is left
         alone, so one client cannot re-govern the others. *)
      let setting, text =
        match v with
        | None -> (Inherit, "statement timeout restored to the server default")
        | Some 0 -> (Off, "statement timeout disabled for this session")
        | Some ms when ms > 0 ->
          (Ms ms, Printf.sprintf "statement timeout set to %d ms" ms)
        | Some _ -> (Inherit, "")
      in
      if String.equal text "" then
        (Protocol.Error "SET TIMEOUT expects a non-negative value", None)
      else begin
        session_timeout := setting;
        (Protocol.Message text, None)
      end
    | Ast.Promote when t.promote_handler <> None ->
      (* Runs the replication client's promotion outside the db lock —
         the handler stops the follower loop (which may itself be
         holding the lock to apply a batch) and takes the lock for the
         switch itself. *)
      if t.draining then
        (Protocol.Error (Deadline.reason_message Deadline.Shutdown), None)
      else (
        match (Option.get t.promote_handler) () with
        | Ok (gen, epoch) ->
          Metrics.incr m_promotions;
          ( Protocol.Message
              (Printf.sprintf
                 "PROMOTE complete: now primary (generation %d, epoch %d)" gen
                 epoch),
            None )
        | Error msg -> (Protocol.Error msg, None)
        | exception e ->
          (Protocol.Error ("PROMOTE failed: " ^ Printexc.to_string e), None))
    | stmt ->
      if t.draining then
        (Protocol.Error (Deadline.reason_message Deadline.Shutdown), None)
      else begin
        let token =
          Deadline.create ?timeout_ms:(session_timeout_ms t !session_timeout) ()
        in
        let id = register_inflight t token in
        session_begin_statement t session ~sql ~token;
        Fun.protect
          ~finally:(fun () ->
            session_end_statement t session;
            unregister_inflight t id)
          (fun () -> execute_statement_guarded t ~token ~params ~sql stmt)
      end
  in
  let elapsed_ns = Trace.now_ns () - t0 in
  Metrics.incr m_statements;
  Metrics.observe h_statement_ns elapsed_ns;
  (match response with
  | Protocol.Error _ -> Metrics.incr m_errors
  | _ -> ());
  (match t.slow_ms with
  | Some threshold when float_of_int elapsed_ns /. 1e6 >= threshold ->
    let ms = float_of_int elapsed_ns /. 1e6 in
    let rows = response_rows response in
    Tip_obs.Log_sink.event ~session:session.si_id ~event:"slow_query"
      ~text:(Printf.sprintf "SLOW %.3f ms rows=%d stmt=%s" ms rows sql)
      [ ("ms", Printf.sprintf "%.3f" ms);
        ("rows", string_of_int rows);
        ("stmt", sql) ];
    (* Slow statements additionally export their span tree as a Chrome
       trace-event file when --trace-dir / TIP_TRACE_DIR is set. *)
    (match trace_root with
    | Some root when Trace.trace_dir () <> None -> (
      match Trace.export_chrome root with
      | Some path -> Log.debug (fun m -> m "trace exported to %s" path)
      | None -> ())
    | _ -> ())
  | _ -> ());
  response

(* --- Sessions ----------------------------------------------------------- *)

let handle_session t fd addr =
  (* SO_RCVTIMEO makes a silent client's read fail after the idle
     timeout; the session is then told why (E IDLE_TIMEOUT) and
     dropped, so clients can tell an idle drop from a crash. *)
  (match t.idle_timeout with
  | Some secs -> (
    try Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs
    with Unix.Unix_error _ | Invalid_argument _ -> ())
  | None -> ());
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let params = ref [] in
  let session_timeout = ref Inherit in
  let session = register_session t addr in
  let reply response =
    try
      Wait.with_wait Wait.ClientWrite (fun () ->
          Protocol.write_response oc response;
          flush oc);
      true
    with Sys_error _ | Unix.Unix_error _ -> false (* peer went away *)
  in
  let idle_drop () =
    Metrics.incr m_idle_drops;
    ignore
      (reply
         (Protocol.Error
            (Printf.sprintf "IDLE_TIMEOUT: session idle for %gs, closing"
               (Option.value t.idle_timeout ~default:0.))));
    Log.debug (fun m -> m "dropping idle session")
  in
  let rec loop () =
    match Wait.with_wait Wait.ClientRead (fun () -> input_line ic) with
    | exception End_of_file -> ()
    | exception Sys_error _ ->
      (* read timed out (SO_RCVTIMEO); if the socket is actually broken
         the farewell write just fails silently inside [reply] *)
      idle_drop ()
    | exception Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) ->
      idle_drop ()
    | exception Sys_blocked_io ->
      (* buffered channels surface an EAGAIN read as Sys_blocked_io *)
      idle_drop ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
      Log.debug (fun m -> m "dropping broken session")
    | line -> (
      (* A malformed B line can make [decode_request] itself raise (bad
         wire int, unregistered type, ...): answer E and keep going. *)
      match (try Ok (Protocol.decode_request line) with e -> Error e) with
      | Ok (Some Protocol.Quit) -> ()
      | Ok (Some (Protocol.Bind (name, v))) ->
        params := (name, v) :: List.remove_assoc name !params;
        loop ()
      | Ok (Some (Protocol.Execute sql)) ->
        let response =
          execute_guarded t ~session ~session_timeout ~params:!params sql
        in
        params := [];
        if reply response then loop ()
      | Ok (Some Protocol.Metrics) ->
        if reply (Protocol.Message (Metrics.dump_text ())) then loop ()
      | Ok (Some (Protocol.Wal_subscribe { gen; offset; epoch })) ->
        (* the session becomes a replication stream; when the stream
           ends (drain, gen change, broken link) so does the session *)
        if t.draining then
          ignore (reply (Protocol.Error (Deadline.reason_message Deadline.Shutdown)))
        else handle_replication_stream t fd ic oc ~addr ~gen ~offset ~epoch
      | Ok (Some Protocol.Snapshot_request) ->
        if t.draining then
          ignore (reply (Protocol.Error (Deadline.reason_message Deadline.Shutdown)))
        else if handle_snapshot_request t oc then loop ()
      | Ok (Some (Protocol.Ack _)) ->
        (* an ack outside a subscription has nothing to update *)
        loop ()
      | Ok (Some Protocol.Lag_probe) ->
        let s = match t.staleness_probe with Some f -> f () | None -> 0.0 in
        if reply (Protocol.Message (Printf.sprintf "staleness %.6f" s)) then
          loop ()
      | Ok (Some Protocol.Role_probe) ->
        (* Primary discovery for HA clients: role + promotion epoch,
           read under the db lock so a concurrent PROMOTE can never
           show a half-switched answer. *)
        let role, epoch =
          with_db_lock t (fun () ->
              ((if Db.read_only t.db then "replica" else "primary"),
               Db.epoch t.db))
        in
        if reply (Protocol.Message (Printf.sprintf "role %s %d" role epoch))
        then loop ()
      | Ok None ->
        if reply (Protocol.Error "malformed request") then loop ()
      | Error e ->
        if reply (Protocol.Error ("malformed request: " ^ Printexc.to_string e))
        then loop ())
  in
  Metrics.incr m_sessions;
  Metrics.gauge_add g_sessions_active 1;
  Fun.protect
    ~finally:(fun () ->
      unregister_session t session;
      Metrics.gauge_add g_sessions_active (-1);
      Atomic.decr t.active;
      (* shutdown before close: a replication stream's ack-reader thread
         may still be blocked in read() on this fd, and that in-flight
         read keeps the socket's file description alive past close() —
         the peer would never see FIN. shutdown() severs the connection
         itself, waking both the blocked reader and the remote end. *)
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try loop ()
      with e ->
        (* last-ditch guard: a session bug must never unwind into the
           accept loop's thread machinery with an unhandled exception *)
        Log.err (fun m -> m "session aborted: %s" (Printexc.to_string e)))

(* Admission rejection: one short write, then close. Runs on its own
   thread so a slow or unresponsive peer cannot stall the accept loop. *)
let reject_session fd reason =
  (try
     let oc = Unix.out_channel_of_descr fd in
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0;
     Protocol.write_response oc (Protocol.Error reason);
     flush oc
   with Sys_error _ | Unix.Unix_error _ | Invalid_argument _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Creates a listening socket; port 0 picks an ephemeral port.
   [idle_timeout] (seconds) drops sessions that stay silent that long.
   [slow_ms] logs statements at or above that latency to the obs sink.
   [max_sessions] rejects connections beyond that many concurrent
   sessions with E OVERLOADED; the kernel accept backlog is bounded to
   match, so refused load queues shallowly instead of piling up.
   [statement_timeout_ms] is the default deadline for every statement
   (sessions can override it with SET TIMEOUT). *)
let listen ?(host = "127.0.0.1") ?idle_timeout ?slow_ms ?max_sessions
    ?statement_timeout_ms ~port db =
  (* a client vanishing mid-response must surface as EPIPE on the write,
     not kill the whole server *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  let backlog =
    match max_sessions with Some m -> Stdlib.min 16 (Stdlib.max 1 m) | None -> 16
  in
  Unix.listen fd backlog;
  let t =
    { db;
      db_lock = Mutex.create ();
      listener = fd;
      idle_timeout;
      slow_ms;
      statement_timeout_ms;
      max_sessions;
      active = Atomic.make 0;
      inflight = Hashtbl.create 16;
      inflight_lock = Mutex.create ();
      stmt_ids = Atomic.make 0;
      sessions = Hashtbl.create 16;
      sessions_lock = Mutex.create ();
      session_ids = Atomic.make 1;
      replicas = Hashtbl.create 4;
      replicas_lock = Mutex.create ();
      replica_ids = Atomic.make 1;
      staleness_probe = None;
      promote_handler = None;
      draining = false;
      running = true }
  in
  (* Per-subscriber replication lag, queryable on the primary. Only a
     durable server can be a primary; on a replica the replication
     client registers its own upstream-facing view under the same name
     and column shape. The registry is process-global, so registration
     CHAINS onto any provider already there: a process hosting both
     ends (tests, cascading setups) reports the union, with the [role]
     column telling subscriber rows from the upstream row apart. *)
  if Db.durability_dir db <> None then begin
    let prev = Tip_engine.Vtab.find "tip_stat_replication" in
    Tip_engine.Vtab.register
      { Tip_engine.Vtab.vt_name = "tip_stat_replication";
        vt_cols =
          [| "peer_addr"; "role"; "state"; "generation"; "wal_bytes";
             "acked_bytes"; "lag_bytes"; "acked_commits"; "lag_seconds";
             "epoch"; "archive_generation" |];
        vt_help = "one row per replication subscriber (primary side)";
        vt_rows =
          (fun catalog ->
            (match prev with
            | Some p -> p.Tip_engine.Vtab.vt_rows catalog
            | None -> [])
            @ replication_rows t ()) }
  end;
  (* Live session activity as a queryable relation. Registered per
     server instance (the newest server in the process wins — tests
     spin up one at a time); the catalog argument is ignored because
     activity is server state, not database state. *)
  Tip_engine.Vtab.register
    { Tip_engine.Vtab.vt_name = "tip_stat_activity";
      vt_cols =
        [| "session_id"; "client_addr"; "state"; "query"; "started";
           "deadline_remaining_ms" |];
      vt_help = "one row per connected client session";
      vt_rows = (fun _catalog -> activity_rows t ()) };
  t

let port t =
  match Unix.getsockname t.listener with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Server.port: unix socket"

(* Accept loop: one thread per client, bounded by admission control. *)
let serve t =
  Log.info (fun m -> m "listening on port %d" (port t));
  let rec accept_loop () =
    if t.running then begin
      match Unix.accept t.listener with
      | client_fd, sockaddr ->
        let addr =
          match sockaddr with
          | Unix.ADDR_INET (a, p) ->
            Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
          | Unix.ADDR_UNIX path -> path
        in
        let admitted =
          match t.max_sessions with
          | Some m -> Atomic.get t.active < m
          | None -> true
        in
        if admitted then begin
          Atomic.incr t.active;
          ignore (Thread.create (fun () -> handle_session t client_fd addr) ())
        end
        else begin
          Metrics.incr m_sessions_rejected;
          Log.info (fun m ->
              m "rejecting connection: %d sessions active (max %d)"
                (Atomic.get t.active)
                (Option.value t.max_sessions ~default:0));
          ignore
            (Thread.create
               (fun () ->
                 Wait.with_wait Wait.Admission (fun () ->
                     reject_session client_fd
                       (Printf.sprintf
                          "OVERLOADED: %d sessions active (max %d), retry later"
                          (Atomic.get t.active)
                          (Option.value t.max_sessions ~default:0))))
               ())
        end;
        accept_loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        () (* listener closed by [stop] *)
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
        (* a signal (e.g. the SIGTERM that initiates a drain) interrupts
           the blocking accept; loop — the [t.running] check decides *)
        accept_loop ()
    end
  in
  accept_loop ()

(* Runs the accept loop on a background thread; returns immediately. *)
let serve_in_background t = ignore (Thread.create (fun () -> serve t) ())

let stop t =
  t.running <- false;
  try Unix.close t.listener with Unix.Unix_error _ -> ()

(* Graceful drain: stop accepting, cancel every in-flight statement
   through its token (they abort within one morsel/batch boundary,
   journal nothing, and answer E SHUTDOWN), then wait — up to [grace]
   seconds — for the in-flight table to empty. Sessions blocked reading
   their socket are left to the process exit; they hold no statements.
   Returns the drain duration in seconds. *)
let drain ?(grace = 5.0) t =
  let t0 = Unix.gettimeofday () in
  t.draining <- true;
  stop t;
  Mutex.lock t.inflight_lock;
  Hashtbl.iter (fun _ tok -> Deadline.cancel tok Deadline.Shutdown) t.inflight;
  Mutex.unlock t.inflight_lock;
  let deadline = t0 +. grace in
  let replicas_left () =
    with_replicas_lock t (fun () -> Hashtbl.length t.replicas)
  in
  (* Replication streams poll [t.draining] and answer their subscribers
     E SHUTDOWN themselves; wait for them alongside the in-flight
     statements so a drained primary has told every replica goodbye. *)
  let rec wait () =
    if
      (inflight_count t > 0 || replicas_left () > 0)
      && Unix.gettimeofday () < deadline
    then begin
      Thread.delay 0.01;
      wait ()
    end
  in
  wait ();
  let secs = Unix.gettimeofday () -. t0 in
  Metrics.gauge_set g_drain_ms (int_of_float (secs *. 1000.));
  Log.info (fun m ->
      m "drained in %.3fs (%d statement(s) still in flight)" secs
        (inflight_count t));
  secs

let draining t = t.draining
let active_sessions t = Atomic.get t.active

(* The statement-serialization mutex, shared with the replication
   client on a replica so stream replay and reads interleave safely. *)
let db_mutex t = t.db_lock

(* Installed by the replication client on a replica server: lets L
   probes report how far behind the primary this server's reads are. *)
let set_staleness_probe t f = t.staleness_probe <- Some f

(* Installed by the replication client on a served replica: PROMOTE
   (wire statement or SIGUSR1) runs it to perform the failover. *)
let set_promote_handler t f = t.promote_handler <- Some f

let promote t =
  match t.promote_handler with
  | None -> Error "PROMOTE: this server is not a replica"
  | Some f -> (
    match f () with
    | Ok _ as ok ->
      Metrics.incr m_promotions;
      ok
    | Error _ as e -> e)

let replica_count t = with_replicas_lock t (fun () -> Hashtbl.length t.replicas)
