(* The wire protocol between TIP clients and the server — our stand-in
   for the ODBC/JDBC connection of the paper's Figure 1.

   Line-oriented text over a stream socket. Every line is terminated by
   '\n'; embedded tabs/newlines/backslashes in payloads are escaped with
   the snapshot escaping (\t, \n, \\).

   Client -> server, one request per exchange:
     Q <sql>                      execute a statement
     B <name>\t<type>\t<text>     bind a parameter for the next Q
                                  (type = int|float|bool|string|date or a
                                  registered extension type; text in
                                  literal syntax)
     X                            close the session

   Server -> client, one response per Q:
     R <ncols> <nrows>            result rows follow:
       <name1>\t<name2>...        one header line
       <cell>\t<cell>...          nrows data lines (NULL as \N)
     A <n>                        statement affected n rows
     M <text>                     informational message
     E <text>                     error (session stays usable)

   Cells travel in display syntax and are re-parsed by type name on the
   client, exactly like the snapshot format — NOW stays symbolic on the
   wire. *)

open Tip_storage

let escape = Persist.escape_cell
let unescape = Persist.unescape_cell
let null_marker = "\\N"

let encode_cell v =
  if Value.is_null v then null_marker else escape (Value.to_display_string v)

(* Values travel with their type name so the client can rebuild typed
   values (the JDBC custom type mapping, one line at a time). *)
let encode_typed v =
  if Value.is_null v then "null\t" ^ null_marker
  else Value.type_name v ^ "\t" ^ encode_cell v

let decode_typed ty text =
  if String.equal text null_marker then Value.Null
  else begin
    let text = unescape text in
    match ty with
    | "int" -> Value.Int (int_of_string text)
    | "float" -> Value.Float (float_of_string text)
    | "boolean" -> Value.Bool (String.equal text "t")
    | "char" | "string" -> Value.Str text
    | "date" -> (
      match Tip_core.Chronon.of_string text with
      | Some c -> Value.Date c
      | None -> failwith ("bad date on the wire: " ^ text))
    | ext -> (
      match Value.lookup_type ext with
      | Some vt -> vt.Value.parse text
      | None -> failwith ("unregistered wire type: " ^ ext))
  end

(* --- Requests --------------------------------------------------------------- *)

type request =
  | Execute of string
  | Bind of string * Value.t
  | Metrics
  | Quit
  | Wal_subscribe of { gen : int; offset : int; epoch : int }
  | Snapshot_request
  | Ack of { offset : int; commits : int }
  | Lag_probe
  | Role_probe

let encode_request = function
  | Execute sql -> "Q " ^ escape sql
  | Bind (name, v) -> Printf.sprintf "B %s\t%s" (escape name) (encode_typed v)
  | Metrics -> "M"
  | Quit -> "X"
  | Wal_subscribe { gen; offset; epoch } ->
    Printf.sprintf "S %d %d %d" gen offset epoch
  | Snapshot_request -> "P"
  | Ack { offset; commits } -> Printf.sprintf "K %d %d" offset commits
  | Lag_probe -> "L"
  | Role_probe -> "W"

let decode_request line =
  if String.length line >= 2 && String.sub line 0 2 = "Q " then
    Some (Execute (unescape (String.sub line 2 (String.length line - 2))))
  else if String.length line >= 2 && String.sub line 0 2 = "B " then begin
    match
      String.split_on_char '\t' (String.sub line 2 (String.length line - 2))
    with
    | [ name; ty; text ] -> Some (Bind (unescape name, decode_typed ty text))
    | _ -> None
  end
  else if String.equal line "M" then Some Metrics
  else if String.equal line "X" then Some Quit
  else if String.equal line "P" then Some Snapshot_request
  else if String.equal line "L" then Some Lag_probe
  else if String.equal line "W" then Some Role_probe
  else if String.length line >= 2 && String.sub line 0 2 = "S " then begin
    (* pre-HA subscribers send two fields; their epoch reads as 0,
       matching pre-HA generation frames *)
    match
      String.split_on_char ' ' (String.sub line 2 (String.length line - 2))
    with
    | [ gen; offset ] -> (
      match (int_of_string_opt gen, int_of_string_opt offset) with
      | Some gen, Some offset -> Some (Wal_subscribe { gen; offset; epoch = 0 })
      | _ -> None)
    | [ gen; offset; epoch ] -> (
      match
        (int_of_string_opt gen, int_of_string_opt offset, int_of_string_opt epoch)
      with
      | Some gen, Some offset, Some epoch ->
        Some (Wal_subscribe { gen; offset; epoch })
      | _ -> None)
    | _ -> None
  end
  else if String.length line >= 2 && String.sub line 0 2 = "K " then begin
    match
      String.split_on_char ' ' (String.sub line 2 (String.length line - 2))
    with
    | [ offset; commits ] -> (
      match (int_of_string_opt offset, int_of_string_opt commits) with
      | Some offset, Some commits -> Some (Ack { offset; commits })
      | _ -> None)
    | _ -> None
  end
  else None

(* --- Responses --------------------------------------------------------------- *)

type response =
  | Rows of { names : string list; rows : Value.t array list }
  | Affected of int
  | Message of string
  | Error of string

let write_response oc = function
  | Rows { names; rows } ->
    Printf.fprintf oc "R %d %d\n" (List.length names) (List.length rows);
    output_string oc (String.concat "\t" (List.map escape names));
    output_char oc '\n';
    List.iter
      (fun row ->
        let cells = Array.to_list (Array.map encode_typed row) in
        output_string oc (String.concat "\x01" cells);
        output_char oc '\n')
      rows
  | Affected n -> Printf.fprintf oc "A %d\n" n
  | Message m -> Printf.fprintf oc "M %s\n" (escape m)
  | Error e -> Printf.fprintf oc "E %s\n" (escape e)

let read_response ic =
  let line = input_line ic in
  if String.length line >= 2 && String.sub line 0 2 = "R " then begin
    match
      String.split_on_char ' ' (String.sub line 2 (String.length line - 2))
    with
    | [ ncols; nrows ] ->
      let ncols = int_of_string ncols and nrows = int_of_string nrows in
      let names =
        List.map unescape (String.split_on_char '\t' (input_line ic))
      in
      if List.length names <> ncols then failwith "protocol: header arity";
      let rows =
        List.init nrows (fun _ ->
            let cells = String.split_on_char '\x01' (input_line ic) in
            Array.of_list
              (List.map
                 (fun cell ->
                   match String.index_opt cell '\t' with
                   | Some i ->
                     decode_typed
                       (String.sub cell 0 i)
                       (String.sub cell (i + 1) (String.length cell - i - 1))
                   | None -> failwith "protocol: bad cell")
                 cells))
      in
      Rows { names; rows }
    | _ -> failwith "protocol: bad R header"
  end
  else if String.length line >= 2 && String.sub line 0 2 = "A " then
    Affected (int_of_string (String.sub line 2 (String.length line - 2)))
  else if String.length line >= 2 && String.sub line 0 2 = "M " then
    Message (unescape (String.sub line 2 (String.length line - 2)))
  else if String.length line >= 2 && String.sub line 0 2 = "E " then
    Error (unescape (String.sub line 2 (String.length line - 2)))
  else failwith ("protocol: unexpected line " ^ line)

(* --- WAL stream framing ------------------------------------------------------ *)

(* Replication subscriptions carry raw WAL bytes, which are arbitrary
   binary as far as the wire is concerned (CRC hex, payload text, torn
   prefixes under failpoints), so they travel length-prefixed instead
   of escaped:

     D <len>\n<len raw bytes>\n

   interleaved with ordinary [M]/[E] lines for keepalives and typed
   stream errors. *)

let write_chunk oc payload =
  Printf.fprintf oc "D %d\n" (String.length payload);
  output_string oc payload;
  output_char oc '\n'

let read_stream_item ic =
  let line = input_line ic in
  if String.length line >= 2 && String.sub line 0 2 = "D " then begin
    let len =
      match int_of_string_opt (String.sub line 2 (String.length line - 2)) with
      | Some n when n >= 0 -> n
      | _ -> failwith ("protocol: bad chunk header " ^ line)
    in
    let payload = Bytes.create len in
    really_input ic payload 0 len;
    (match input_char ic with
    | '\n' -> ()
    | _ -> failwith "protocol: missing chunk terminator");
    `Chunk (Bytes.to_string payload)
  end
  else if String.length line >= 2 && String.sub line 0 2 = "M " then
    `Info (unescape (String.sub line 2 (String.length line - 2)))
  else if String.length line >= 2 && String.sub line 0 2 = "E " then
    `Err (unescape (String.sub line 2 (String.length line - 2)))
  else failwith ("protocol: unexpected stream line " ^ line)
