(** The ops-facing HTTP monitoring endpoint (DESIGN.md §16).

    A tiny embedded HTTP/1.1 server ([tip_serve --monitor-port P])
    answering the four probes an orchestrator or scraper wants, off
    the database lock entirely:

    - [GET /metrics] — the metrics registry in Prometheus text
      exposition format ({!Tip_obs.Metrics.dump_text});
    - [GET /healthz] — liveness: [200 ok] whenever the process can
      answer at all;
    - [GET /readyz] — readiness: [200]/[503] from the installed probe
      (recovery finished, not draining; on a replica, streaming with
      staleness below [--ready-max-staleness]);
    - [GET /ash.json] — the active-session-history ring as JSON.

    Anything else is [404]. Every connection is answered and closed;
    there is no keep-alive — probes are one-shot by nature. *)

type t

(** Binds and starts the accept thread; [port 0] picks an ephemeral
    port. [ready] is consulted per [/readyz] request and returns
    readiness plus a one-line explanation that becomes the body. *)
val start : port:int -> ready:(unit -> bool * string) -> unit -> t

(** The actual bound port. *)
val port : t -> int

(** Stops the accept thread and closes the listener. Idempotent. *)
val stop : t -> unit
