(* The replica-side replication client: keeps a read-only database
   converged with a primary's WAL stream, through every failure the
   wire can produce.

   One background thread runs a connect / bootstrap / subscribe /
   stream loop:

   - Connect uses [Remote.connect] (single attempt per round) inside
     this module's own bounded-exponential-backoff-with-jitter loop, so
     a dead primary costs a capped, de-synchronized retry cadence
     instead of a tight spin or a thundering herd.

   - Bootstrap ([P]) fetches a consistent (generation, snapshot,
     offset) triple and swaps the snapshot's contents into the shared
     catalog under the database lock ([Catalog.assign]); the expensive
     parse happens outside the lock.

   - Streaming feeds raw WAL chunks to [Replica.feed] under the lock
     and acks every confirmed position upstream ([K <offset>
     <commits>]). Keepalives carry the primary's end-of-log offset, so
     the replica knows how far behind it is even when nothing is being
     shipped.

   Failure routing: a corrupt frame (bit flip, torn chunk) drops the
   connection and resumes from the confirmed offset — re-shipping the
   tail repairs it; a generation change ([E GEN_CHANGED], or a
   mismatched generation frame in-stream) forces a fresh snapshot
   bootstrap instead of diverging; an epoch fence ([E STALE_EPOCH], or
   a mismatched epoch in-stream) does the same — our history predates a
   promotion and may have diverged, so only a fresh snapshot under the
   new epoch is safe; a primary drain ([E SHUTDOWN]) or loss parks the
   client in reconnect-with-backoff while the replica keeps serving
   reads and reports growing staleness.

   Two HA additions (DESIGN.md §15): [start ?resume] lets a rejoining
   node (an old primary coming back with its recovered durable state)
   offer its local (generation, offset, epoch) as a subscription before
   falling back to a bootstrap — the primary's epoch fence decides
   whether that history is still usable; [promote] stops the follower
   loop at a commit boundary (whole batches only ever apply) and turns
   the database into a writable primary under a bumped epoch. *)

module Db = Tip_engine.Database
module Metrics = Tip_obs.Metrics
module Wait = Tip_obs.Wait
module Replica = Tip_storage.Replica
module Failpoint = Tip_storage.Failpoint

let log_src = Logs.Src.create "tip.replication" ~doc:"TIP replication client"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_reconnects =
  Metrics.counter "repl_reconnects_total"
    ~help:"Reconnections to the primary (backoff loop entries)"

let m_bootstraps =
  Metrics.counter "repl_client_bootstraps_total"
    ~help:"Snapshot bootstraps completed by this replica"

let m_stream_errors =
  Metrics.counter "repl_stream_errors_total"
    ~help:"Stream failures (corrupt frames, lost connections)"

let g_lag_bytes =
  Metrics.gauge "repl_lag_bytes" ~help:"Bytes behind the primary's WAL end"

let m_fence_rejections =
  Metrics.counter "ha_fence_rejections_total"
    ~help:"Times this client was fenced with STALE_EPOCH and re-bootstrapped"

type t = {
  host : string;
  port : int;
  db : Db.t;
  lock : Mutex.t;
  mutable replica : Replica.t option; (* None until first bootstrap *)
  mutable state : string;
      (* "connecting" | "bootstrapping" | "subscribing" | "streaming"
         | "disconnected" | "promoted" | "stopped" *)
  mutable primary_epoch : int; (* newest epoch the primary has shown us *)
  mutable fenced : int; (* STALE_EPOCH rejections suffered *)
  mutable known_primary_offset : int;
  mutable caught_up_at : float; (* unix time last provably caught up *)
  mutable last_contact : float;
  mutable acked_commits : int;
  mutable reconnects : int;
  mutable bootstraps : int;
  mutable conn : Remote.t option;
  mutable stopping : bool;
  mutable thread : Thread.t option;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- Observability ------------------------------------------------------ *)

let lag_bytes t =
  match t.replica with
  | None -> t.known_primary_offset
  | Some r -> Stdlib.max 0 (t.known_primary_offset - Replica.applied_offset r)

let lag_commits_applied t =
  match t.replica with None -> 0 | Some r -> Replica.applied_commits r

(* Seconds since this replica was last provably caught up with its
   primary. Near zero while streaming keeps confirming parity; grows
   without bound once the primary is lost — exactly the number a
   lag-bounded read needs. *)
let staleness_seconds t = Unix.gettimeofday () -. t.caught_up_at

let state t = t.state
let generation t = match t.replica with None -> 0 | Some r -> Replica.generation r
let applied_offset t =
  match t.replica with None -> 0 | Some r -> Replica.applied_offset r
let reconnects t = t.reconnects
let bootstraps t = t.bootstraps
let epoch t = t.primary_epoch
let fence_rejections t = t.fenced

let replication_rows t () =
  let module Value = Tip_storage.Value in
  if t.stopping then [] (* a stopped client drops out of the view *)
  else
  [ [| Value.Str (Printf.sprintf "%s:%d" t.host t.port);
       Value.Str "primary";
       Value.Str t.state;
       Value.Int (generation t);
       Value.Int t.known_primary_offset;
       Value.Int (applied_offset t);
       Value.Int (lag_bytes t);
       Value.Int (lag_commits_applied t);
       Value.Float (staleness_seconds t);
       Value.Int t.primary_epoch;
       (* a replica normally has no archive of its own *)
       (match Db.archive_generation t.db with
       | Some g -> Value.Int g
       | None -> Value.Null) |] ]

(* --- Wire helpers ------------------------------------------------------- *)

let send_line oc request =
  output_string oc (Protocol.encode_request request);
  output_char oc '\n';
  flush oc

let ack t oc =
  match t.replica with
  | None -> ()
  | Some r ->
    let commits = Replica.applied_commits r - t.acked_commits in
    t.acked_commits <- Replica.applied_commits r;
    send_line oc
      (Protocol.Ack { offset = Replica.applied_offset r; commits })

let note_contact t =
  t.last_contact <- Unix.gettimeofday ();
  Metrics.gauge_set g_lag_bytes (lag_bytes t);
  match t.replica with
  | Some r when Replica.applied_offset r >= t.known_primary_offset ->
    t.caught_up_at <- Unix.gettimeofday ()
  | _ -> ()

(* --- Bootstrap ---------------------------------------------------------- *)

(* One [P] exchange: [M snapshot <gen> <offset> <epoch>] then a single
   chunk of snapshot text. Parses outside the lock, swaps contents
   under it. Pre-HA primaries send a two-field header (epoch 0). *)
let bootstrap t ic oc =
  t.state <- "bootstrapping";
  Failpoint.hit ~site:"repl.bootstrap" ();
  send_line oc Protocol.Snapshot_request;
  match Protocol.read_stream_item ic with
  | `Err msg -> Error msg
  | `Chunk _ -> Error "protocol: chunk before snapshot header"
  | `Info info -> (
    let header =
      match String.split_on_char ' ' info with
      | [ "snapshot"; gen; offset ] -> (
        match (int_of_string_opt gen, int_of_string_opt offset) with
        | Some gen, Some offset -> Some (gen, offset, 0)
        | _ -> None)
      | [ "snapshot"; gen; offset; epoch ] -> (
        match
          ( int_of_string_opt gen,
            int_of_string_opt offset,
            int_of_string_opt epoch )
        with
        | Some gen, Some offset, Some epoch -> Some (gen, offset, epoch)
        | _ -> None)
      | _ -> None
    in
    match header with
    | None -> Error ("protocol: bad snapshot header " ^ info)
    | Some (gen, offset, epoch) -> (
      match Protocol.read_stream_item ic with
      | `Chunk text -> (
        match Tip_storage.Persist.load_string text with
        | exception Tip_storage.Persist.Format_error msg ->
          Error ("bad snapshot: " ^ msg)
        | loaded, _meta ->
          with_lock t (fun () ->
              Tip_storage.Catalog.assign (Db.catalog t.db) ~from:loaded;
              (match t.replica with
              | None ->
                t.replica <-
                  Some
                    (Replica.create (Db.catalog t.db) ~generation:gen ~epoch
                       ~offset)
              | Some r -> Replica.rebase r ~generation:gen ~epoch ~offset);
              t.primary_epoch <- epoch;
              t.known_primary_offset <- offset;
              t.acked_commits <-
                (match t.replica with
                | Some r -> Replica.applied_commits r
                | None -> 0));
          t.bootstraps <- t.bootstraps + 1;
          Metrics.incr m_bootstraps;
          note_contact t;
          t.caught_up_at <- Unix.gettimeofday ();
          Log.info (fun m ->
              m "bootstrapped from %s:%d: gen %d, offset %d, epoch %d (%d \
                 bytes of snapshot)"
                t.host t.port gen offset epoch (String.length text));
          Ok ())
      | `Info i -> Error ("protocol: expected snapshot chunk, got " ^ i)
      | `Err msg -> Error msg))

(* --- Streaming ---------------------------------------------------------- *)

(* Classifies why the stream ended. [`Retry] keeps the confirmed state
   and resubscribes from the confirmed offset; [`Rebootstrap] discards
   it for a fresh snapshot; [`Stop] obeys [stop]. *)
let stream t ic oc r =
  (* "streaming" is claimed only once the primary answers the
     subscription (first chunk or keepalive, at most 0.5s away): a
     rejoining ex-primary's resumed offer may be about to be fenced,
     and /readyz must not vouch for a stream that was never accepted *)
  t.state <- "subscribing";
  send_line oc
    (Protocol.Wal_subscribe
       { gen = Replica.generation r;
         offset = Replica.applied_offset r;
         epoch = Replica.epoch r });
  (* where the next chunk lands in the primary's log: confirmed offset
     plus everything buffered but not yet confirmed *)
  let recv = ref (Replica.applied_offset r) in
  let rec loop () =
    if t.stopping then `Stop
    else begin
      match Protocol.read_stream_item ic with
      | `Chunk bytes -> (
        t.state <- "streaming";
        recv := !recv + String.length bytes;
        t.known_primary_offset <- Stdlib.max t.known_primary_offset !recv;
        match
          Wait.with_wait Wait.ReplicaApply (fun () ->
              with_lock t (fun () -> Replica.feed r bytes))
        with
        | Ok () ->
          (try ack t oc with Sys_error _ | Unix.Unix_error _ -> ());
          note_contact t;
          loop ()
        | Error (Replica.Stream_corrupt msg) ->
          Metrics.incr m_stream_errors;
          Log.warn (fun m -> m "stream corrupt: %s; resyncing" msg);
          `Retry
        | Error (Replica.Apply_failed msg) ->
          Metrics.incr m_stream_errors;
          Log.warn (fun m -> m "apply failed: %s; re-bootstrapping" msg);
          `Rebootstrap)
      | `Info info ->
        t.state <- "streaming";
        (match String.split_on_char ' ' info with
        | [ "keepalive"; off ] -> (
          match int_of_string_opt off with
          | Some off ->
            t.known_primary_offset <- Stdlib.max t.known_primary_offset off;
            (try ack t oc with Sys_error _ | Unix.Unix_error _ -> ())
          | None -> ())
        | _ -> ());
        note_contact t;
        loop ()
      | `Err msg -> (
        Metrics.incr m_stream_errors;
        let has_prefix p =
          String.length msg >= String.length p
          && String.equal (String.sub msg 0 (String.length p)) p
        in
        match Remote.error_code msg with
        | Remote.Shutdown ->
          Log.info (fun m -> m "primary draining: %s" msg);
          `Retry
        | Remote.Stale_epoch ->
          (* fenced: a promotion happened and our history may have
             diverged past it — only a fresh snapshot under the new
             epoch is safe (the demotion path for a rejoining
             ex-primary) *)
          t.fenced <- t.fenced + 1;
          Metrics.incr m_fence_rejections;
          Tip_obs.Events.record ~kind:"failover"
            ~detail:
              (Printf.sprintf
                 "fenced by %s:%d at epoch %d; demoting to a fresh bootstrap"
                 t.host t.port t.primary_epoch);
          Log.warn (fun m -> m "fenced by the primary: %s" msg);
          `Rebootstrap
        | _ when has_prefix "GEN_CHANGED:" ->
          Log.info (fun m -> m "%s" msg);
          `Rebootstrap
        | _ ->
          Log.warn (fun m -> m "stream error: %s" msg);
          `Retry)
      | exception (End_of_file | Sys_error _ | Failure _) ->
        Metrics.incr m_stream_errors;
        `Retry
      | exception Unix.Unix_error _ ->
        Metrics.incr m_stream_errors;
        `Retry
    end
  in
  let outcome = loop () in
  (match t.replica with Some r -> Replica.reset_stream r | None -> ());
  outcome

(* --- The connection loop ------------------------------------------------ *)

let max_backoff = 2.0

let run t =
  (* the follower is a session too: its apply waits show up in the ASH
     under kind "replication" *)
  let wait_slot = Wait.register ~id:(-1) ~kind:"replication" in
  Wait.set_query wait_slot (Some (Printf.sprintf "replica of %s:%d" t.host t.port));
  let rec round delay =
    if not t.stopping then begin
      t.state <- (if t.replica = None then "connecting" else "disconnected");
      match
        (* [deadline] doubles as the socket receive timeout: the primary
           keepalives every 0.5s, so five silent seconds mean the link
           is dead even if no FIN ever arrives — bound the blocking read
           instead of trusting the network to say goodbye *)
        Remote.connect ~host:t.host ~attempts:1 ~deadline:5.0 ~port:t.port ()
      with
      | exception Remote.Remote_error _ -> backoff delay
      | conn ->
        t.conn <- Some conn;
        t.reconnects <- t.reconnects + 1;
        Metrics.incr m_reconnects;
        let ic, oc = Remote.channels conn in
        let outcome =
          (* everything here talks to a socket another thread may close
             under us (inject_disconnect, stop): any I/O failure is a
             plain retry, never a dead client thread *)
          try
            match
              (match t.replica with
              | None -> bootstrap t ic oc
              | Some _ -> Ok ())
            with
            | Error msg ->
              Log.warn (fun m -> m "bootstrap failed: %s" msg);
              `Retry
            | Ok () -> (
              match t.replica with
              | None -> `Retry
              | Some r -> (
                match stream t ic oc r with
                | `Rebootstrap ->
                  (* the confirmed state no longer matches the primary's
                     log; a fresh snapshot replaces it next round *)
                  t.replica <- None;
                  `Retry_now
                | (`Retry | `Stop) as o -> o))
          with
          | End_of_file | Sys_error _ | Failure _ -> `Retry
          | Unix.Unix_error _ -> `Retry
          | Remote.Remote_error _ -> `Retry
        in
        t.conn <- None;
        (try Remote.close conn with _ -> ());
        (match outcome with
        | `Stop -> ()
        | `Retry_now -> round 0.05
        | `Retry -> backoff delay)
    end
  and backoff delay =
    if not t.stopping then begin
      t.state <- "disconnected";
      (* bounded exponential backoff with jitter, Remote.connect's
         semantics stretched across whole sessions *)
      let pause = delay +. Random.float (delay /. 2.) in
      let rec sleep remaining =
        if remaining > 0. && not t.stopping then begin
          Thread.delay (Float.min 0.05 remaining);
          sleep (remaining -. 0.05)
        end
      in
      sleep pause;
      round (Float.min max_backoff (delay *. 2.))
    end
  in
  round 0.05;
  Wait.unregister wait_slot;
  t.state <- "stopped"

(* --- Lifecycle ---------------------------------------------------------- *)

let start ?lock ?resume ~host ~port db =
  let t =
    { host;
      port;
      db;
      lock = (match lock with Some l -> l | None -> Mutex.create ());
      replica = None;
      state = "connecting";
      primary_epoch = 0;
      fenced = 0;
      known_primary_offset = 0;
      caught_up_at = Unix.gettimeofday ();
      last_contact = Unix.gettimeofday ();
      acked_commits = 0;
      reconnects = 0;
      bootstraps = 0;
      conn = None;
      stopping = false;
      thread = None }
  in
  (* A rejoining node (an ex-primary restarted with its durable state
     recovered) offers its local position as a subscription instead of
     bootstrapping blind: if the primary accepts (same generation and
     epoch) the existing state is reused; a GEN_CHANGED or STALE_EPOCH
     rejection falls back to a fresh bootstrap — the fence-then-demote
     path. *)
  (match resume with
  | Some (gen, offset, epoch) ->
    t.replica <-
      Some (Replica.create (Db.catalog db) ~generation:gen ~epoch ~offset);
    t.primary_epoch <- epoch;
    t.known_primary_offset <- offset;
    Log.info (fun m ->
        m "rejoining %s:%d from local state: gen %d, offset %d, epoch %d" host
          port gen offset epoch)
  | None -> ());
  (* The upstream-facing view, same name and column shape as the
     primary's subscriber view: one row describing our primary. The
     registry is process-global, so chain onto any provider already
     registered (a primary's subscriber view, an earlier client) —
     the union is the process's replication links. *)
  let prev = Tip_engine.Vtab.find "tip_stat_replication" in
  Tip_engine.Vtab.register
    { Tip_engine.Vtab.vt_name = "tip_stat_replication";
      vt_cols =
        [| "peer_addr"; "role"; "state"; "generation"; "wal_bytes";
           "acked_bytes"; "lag_bytes"; "acked_commits"; "lag_seconds";
           "epoch"; "archive_generation" |];
      vt_help = "this replica's view of its primary";
      vt_rows =
        (fun catalog ->
          (match prev with
          | Some p -> p.Tip_engine.Vtab.vt_rows catalog
          | None -> [])
          @ replication_rows t ()) };
  t.thread <- Some (Thread.create (fun () -> run t) ());
  t

(* Severs the current connection without stopping the loop — the
   reconnect/backoff path takes over. Test and bench hook. *)
let inject_disconnect t =
  match t.conn with
  | Some conn -> (try Remote.close conn with _ -> ())
  | None -> ()

let stop t =
  t.stopping <- true;
  inject_disconnect t;
  match t.thread with
  | Some th -> ( try Thread.join th with _ -> ())
  | None -> ()

(* --- Promotion (DESIGN.md §15) ------------------------------------------ *)

(* Stops following and becomes the primary. The follower thread is
   joined first — [Replica.feed] only ever applies whole committed
   batches, so the state the promotion freezes is a commit boundary of
   the old primary's history. The new epoch outbids every epoch this
   client has seen, so the old primary (which is at most at
   [primary_epoch]) is fenced the moment it tries to subscribe to
   anyone who has heard from us. *)
let promote ?sync ?checkpoint_every ?archive_dir t ~dir () =
  stop t;
  match t.replica with
  | None ->
    Error
      "PROMOTE: replica has no base state yet (never bootstrapped); cannot \
       become primary"
  | Some r ->
    let epoch = Stdlib.max t.primary_epoch (Replica.epoch r) + 1 in
    let gen = Replica.generation r + 1 in
    with_lock t (fun () ->
        Db.promote_replica ?sync ?checkpoint_every ?archive_dir
          ?asof:(Replica.last_commit_at r) t.db ~dir ~gen ~epoch ());
    t.state <- "promoted";
    Log.info (fun m ->
        m "promoted: primary at generation %d, epoch %d (applied %d commits \
           from the old primary)"
          gen epoch (Replica.applied_commits r));
    Ok (gen, epoch)
