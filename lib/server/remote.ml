(* The remote client: the same API shape as an embedded connection, over
   the wire protocol. Typed values cross the network in literal syntax
   and are rebuilt on this side (register the blade types first).

   Deadlines: [connect ?deadline] bounds the whole connect (retries
   included) and installs SO_SNDTIMEO/SO_RCVTIMEO on the socket, so a
   hung server cannot block this client forever; [execute ?deadline]
   tightens the socket timeouts for one call. A timed-out wire
   operation raises [Remote_error "TIMEOUT: ..."], which {!error_code}
   classifies alongside the server's own typed E responses. *)

exception Remote_error of string

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  default_deadline : float option; (* connect-time per-call bound, secs *)
  mutable closed : bool;
}

(* --- Typed error classification ----------------------------------------- *)

type error_code =
  | Timeout
  | Overloaded
  | Budget
  | Shutdown
  | Idle_timeout
  | Cancelled
  | Read_only
  | Stale_read
  | Stale_epoch
  | Failover
  | Other

(* Typed server errors are "CODE: human text"; everything else (engine
   errors, parse errors, transport failures we did not tag) is Other. *)
let error_code msg =
  let prefixed p =
    String.length msg >= String.length p
    && String.equal (String.sub msg 0 (String.length p)) p
  in
  if prefixed "TIMEOUT:" then Timeout
  else if prefixed "OVERLOADED:" then Overloaded
  else if prefixed "BUDGET:" then Budget
  else if prefixed "SHUTDOWN:" then Shutdown
  else if prefixed "IDLE_TIMEOUT:" then Idle_timeout
  else if prefixed "CANCELLED:" then Cancelled
  else if prefixed "READ_ONLY:" then Read_only
  else if prefixed "STALE_READ:" then Stale_read
  else if prefixed "STALE_EPOCH:" then Stale_epoch
  else if prefixed "FAILOVER:" then Failover
  else Other

(* Transient connect failures — the server not up yet, or the network
   hiccuping — are worth retrying; anything else (bad address, no
   route policy, ...) fails immediately. EPIPE/ECONNABORTED belong
   here: racing a server restart, the kernel can complete the TCP
   handshake against the dying listener and then kill the socket on
   (or right after) the first send, which should retry exactly like a
   refused connection would have. *)
let transient = function
  | Unix.ECONNREFUSED | Unix.ETIMEDOUT | Unix.ENETUNREACH | Unix.ECONNRESET
  | Unix.EPIPE | Unix.ECONNABORTED ->
    true
  | _ -> false

let set_socket_timeouts fd secs =
  try
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO secs
  with Unix.Unix_error _ | Invalid_argument _ -> ()

(* Connects with bounded retries: [attempts] tries in total, starting
   [retry_delay] seconds apart and doubling each time, plus up to 50%
   random jitter so a herd of clients does not reconnect in lockstep.
   [deadline] (seconds) caps the whole procedure — a retry loop never
   outlives it — and becomes the socket send/receive timeout for later
   calls. *)
let connect ?(host = "127.0.0.1") ?(attempts = 5) ?(retry_delay = 0.05)
    ?deadline ~port () =
  (* the server dropping the connection must surface as an exception on
     our write, not kill the client process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let attempts = max 1 attempts in
  let give_up_at =
    Option.map (fun d -> Unix.gettimeofday () +. d) deadline
  in
  let out_of_time () =
    match give_up_at with
    | Some at -> Unix.gettimeofday () >= at
    | None -> false
  in
  let rec try_connect attempt delay =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Option.iter (fun d -> set_socket_timeouts fd d) deadline;
    match
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
    with
    | () -> fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if transient e && attempt < attempts && not (out_of_time ()) then begin
        let pause = delay +. Random.float (delay /. 2.) in
        let pause =
          (* never sleep past the overall deadline *)
          match give_up_at with
          | Some at -> Float.min pause (Float.max 0. (at -. Unix.gettimeofday ()))
          | None -> pause
        in
        Unix.sleepf pause;
        try_connect (attempt + 1) (delay *. 2.)
      end
      else
        raise
          (Remote_error
             (Printf.sprintf "%s%s (after %d attempt%s)"
                (if out_of_time () then "TIMEOUT: " else "")
                (Unix.error_message e) attempt
                (if attempt = 1 then "" else "s")))
  in
  let fd = try_connect 1 (Float.max 0.001 retry_delay) in
  { fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    default_deadline = deadline;
    closed = false }

let check_open t = if t.closed then raise (Remote_error "connection is closed")

let send t request =
  output_string t.oc (Protocol.encode_request request);
  output_char t.oc '\n';
  flush t.oc

(* Runs one request/response exchange under a per-call deadline: the
   socket timeouts are tightened for the call and restored after.
   EAGAIN and friends surface from the buffered channel as [Sys_error]
   or [Unix_error]; both become a typed TIMEOUT Remote_error. *)
let with_deadline t deadline f =
  let applied =
    match deadline with
    | Some d ->
      set_socket_timeouts t.fd d;
      true
    | None -> false
  in
  let governed = applied || t.default_deadline <> None in
  Fun.protect
    ~finally:(fun () ->
      if applied then
        match t.default_deadline with
        | Some d -> set_socket_timeouts t.fd d
        | None -> set_socket_timeouts t.fd 0. (* 0 = no timeout *))
    (fun () ->
      match f () with
      | v -> v
      | exception Sys_error msg when governed ->
        raise (Remote_error ("TIMEOUT: wire operation failed: " ^ msg))
      | exception Sys_blocked_io when governed ->
        (* buffered channels surface an EAGAIN read as Sys_blocked_io *)
        raise (Remote_error "TIMEOUT: server did not respond in time")
      | exception Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
        when governed ->
        raise (Remote_error "TIMEOUT: server did not respond in time"))

(* Binds a [:name] parameter for the next [execute]. *)
let bind t name value =
  check_open t;
  send t (Protocol.Bind (name, value))

(* Executes one statement and returns the embedded-style result.
   [deadline] (seconds) bounds this call's wire I/O.
   @raise Remote_error when the server reports an error (use
   {!error_code} on the message to classify typed failures). *)
let execute ?deadline t sql =
  check_open t;
  with_deadline t deadline @@ fun () ->
  send t (Protocol.Execute sql);
  match Protocol.read_response t.ic with
  | Protocol.Rows { names; rows } -> Tip_engine.Database.Rows { names; rows }
  | Protocol.Affected n -> Tip_engine.Database.Affected n
  | Protocol.Message m -> Tip_engine.Database.Message m
  | Protocol.Error e -> raise (Remote_error e)
  | exception End_of_file -> raise (Remote_error "server closed the connection")

(* Fetches the server's metrics registry as a text dump (M request).
   @raise Remote_error when the server reports an error. *)
let metrics ?deadline t =
  check_open t;
  with_deadline t deadline @@ fun () ->
  send t Protocol.Metrics;
  match Protocol.read_response t.ic with
  | Protocol.Message m -> m
  | Protocol.Error e -> raise (Remote_error e)
  | Protocol.Rows _ | Protocol.Affected _ ->
    raise (Remote_error "unexpected response to a metrics request")
  | exception End_of_file -> raise (Remote_error "server closed the connection")

(* How far behind the primary the server's reads are, in seconds (L
   probe). A primary answers 0; a replica that lost its primary answers
   a growing number.
   @raise Remote_error on a malformed answer or server-side error. *)
let staleness ?deadline t =
  check_open t;
  with_deadline t deadline @@ fun () ->
  send t Protocol.Lag_probe;
  match Protocol.read_response t.ic with
  | Protocol.Message m -> (
    match String.split_on_char ' ' m with
    | [ "staleness"; s ] -> (
      match float_of_string_opt s with
      | Some s -> s
      | None -> raise (Remote_error ("bad staleness response: " ^ m)))
    | _ -> raise (Remote_error ("unexpected staleness response: " ^ m)))
  | Protocol.Error e -> raise (Remote_error e)
  | Protocol.Rows _ | Protocol.Affected _ ->
    raise (Remote_error "unexpected response to a lag probe")
  | exception End_of_file -> raise (Remote_error "server closed the connection")

(* Which role the server is playing right now (W probe): [`Primary] or
   [`Replica], plus its promotion epoch. The HA client uses this to
   discover the writable member of a group.
   @raise Remote_error on a malformed answer or server-side error. *)
let role ?deadline t =
  check_open t;
  with_deadline t deadline @@ fun () ->
  send t Protocol.Role_probe;
  match Protocol.read_response t.ic with
  | Protocol.Message m -> (
    match String.split_on_char ' ' m with
    | [ "role"; r; e ] -> (
      match r, int_of_string_opt e with
      | "primary", Some e -> (`Primary, e)
      | "replica", Some e -> (`Replica, e)
      | _ -> raise (Remote_error ("bad role response: " ^ m)))
    | _ -> raise (Remote_error ("unexpected role response: " ^ m)))
  | Protocol.Error e -> raise (Remote_error e)
  | Protocol.Rows _ | Protocol.Affected _ ->
    raise (Remote_error "unexpected response to a role probe")
  | exception End_of_file -> raise (Remote_error "server closed the connection")

let close t =
  if not t.closed then begin
    (try send t Protocol.Quit with Sys_error _ | Remote_error _ -> ());
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let channels t = (t.ic, t.oc)

(* --- Read routing ------------------------------------------------------- *)

(* A routed connection: writes always go to the primary; reads prefer
   the replica while it is reachable and — when [max_staleness] is set
   — provably fresh enough. Staleness probes are cheap (one L
   round-trip) and cached briefly so a burst of reads does not probe
   per statement. *)

type routed = {
  r_primary : t;
  mutable r_replica : t option;
  r_max_staleness : float option;
  r_on_stale : [ `Primary | `Error ];
  mutable r_last_probe : float; (* unix time of the cached probe *)
  mutable r_last_staleness : float;
}

let probe_cache_secs = 0.2

let connect_routed ?max_staleness ?(on_stale = `Primary) ?replica
    ~primary:(phost, pport) () =
  let p = connect ~host:phost ~port:pport () in
  let r =
    match replica with
    | None -> None
    | Some (host, port) -> (
      (* a dead replica at connect time is degradation, not failure *)
      try Some (connect ~host ~attempts:2 ~port ()) with Remote_error _ -> None)
  in
  { r_primary = p;
    r_replica = r;
    r_max_staleness = max_staleness;
    r_on_stale = on_stale;
    r_last_probe = 0.;
    r_last_staleness = 0. }

(* Reads are routable; everything else (DML, DDL, transactions, SET,
   COPY FROM ...) must see the primary. *)
let is_read sql =
  let sql = String.trim sql in
  let n = String.length sql in
  let rec word_end i =
    if i < n && (sql.[i] = '_' ||
                 (sql.[i] >= 'a' && sql.[i] <= 'z') ||
                 (sql.[i] >= 'A' && sql.[i] <= 'Z'))
    then word_end (i + 1)
    else i
  in
  match String.lowercase_ascii (String.sub sql 0 (word_end 0)) with
  | "select" | "show" | "describe" | "explain" | "stats" -> true
  | _ -> false

let replica_fresh ?deadline r =
  match r.r_max_staleness, r.r_replica with
  | None, Some _ -> `Fresh
  | _, None -> `Gone
  | Some bound, Some rep ->
    let now = Unix.gettimeofday () in
    let s =
      if now -. r.r_last_probe <= probe_cache_secs then r.r_last_staleness
      else begin
        match staleness ?deadline rep with
        | s ->
          r.r_last_probe <- now;
          r.r_last_staleness <- s;
          s
        | exception Remote_error _ ->
          (* unreachable replica: drop it; reads fall back to primary *)
          (try close rep with _ -> ());
          r.r_replica <- None;
          infinity
      end
    in
    if r.r_replica = None then `Gone
    else if s <= bound then `Fresh
    else `Stale s

let execute_routed ?deadline r sql =
  let on_primary () = execute ?deadline r.r_primary sql in
  if not (is_read sql) then on_primary ()
  else
    match replica_fresh ?deadline r with
    | `Gone -> on_primary ()
    | `Stale s -> (
      match r.r_on_stale with
      | `Primary -> on_primary ()
      | `Error ->
        raise
          (Remote_error
             (Printf.sprintf
                "STALE_READ: replica is %.3fs behind (max_staleness %gs)" s
                (Option.value r.r_max_staleness ~default:0.))))
    | `Fresh -> (
      match r.r_replica with
      | None -> on_primary ()
      | Some rep -> (
        match execute ?deadline rep sql with
        | v -> v
        | exception Remote_error msg when error_code msg = Other ->
          (* engine errors replay identically on the primary; transport
             failures mean the replica is gone — either way the primary
             is the answer, and a dead replica connection is dropped *)
          (match execute ~deadline:1.0 rep "SELECT 1;" with
          | _ -> ()
          | exception Remote_error _ ->
            (try close rep with _ -> ());
            r.r_replica <- None);
          on_primary ()))

let routed_primary r = r.r_primary
let routed_replica r = r.r_replica

let close_routed r =
  (match r.r_replica with Some rep -> (try close rep with _ -> ()) | None -> ());
  r.r_replica <- None;
  close r.r_primary

(* --- High-availability client failover (DESIGN.md §15) ------------------ *)

(* An HA connection: a list of candidate endpoints, exactly one of
   which should be a writable primary at any moment. [connect_ha]
   probes every endpoint (W), connects to the primary with the newest
   promotion epoch, and remembers that epoch; when the connection dies
   — or the server answers READ_ONLY (demoted under us) or STALE_EPOCH
   — the client re-runs discovery under bounded backoff, riding out
   the promotion window where no member is writable yet. Exhausting
   the rounds raises a typed [FAILOVER:] error. *)

type ha = {
  ha_endpoints : (string * int) list;
  ha_rounds : int; (* discovery passes before giving up *)
  ha_backoff : float; (* base pause between passes, doubling *)
  ha_deadline : float option;
  mutable ha_conn : t option;
  mutable ha_epoch : int; (* newest promotion epoch seen *)
  mutable ha_failovers : int; (* re-discoveries after the first *)
}

let ha_drop h =
  (match h.ha_conn with Some c -> (try close c with _ -> ()) | None -> ());
  h.ha_conn <- None

(* One discovery pass: probe every endpoint, keep the writable primary
   with the newest epoch (ties broken by endpoint order). A "primary"
   answering with an epoch older than one we have already seen is a
   fenced ex-primary that has not noticed the promotion yet — never
   route writes to it. *)
let ha_discover_once h =
  let best = ref None in
  List.iter
    (fun (host, port) ->
      match connect ~host ~attempts:1 ?deadline:h.ha_deadline ~port () with
      | exception Remote_error _ -> ()
      | c -> (
        match role ?deadline:h.ha_deadline c with
        | `Primary, e when e >= h.ha_epoch -> (
          match !best with
          | Some (_, be) when be >= e -> ( try close c with _ -> ())
          | Some (bc, _) ->
            (try close bc with _ -> ());
            best := Some (c, e)
          | None -> best := Some (c, e))
        | _ -> ( try close c with _ -> ())
        | exception Remote_error _ -> ( try close c with _ -> ())))
    h.ha_endpoints;
  !best

let ha_discover h =
  let rec pass n delay =
    match ha_discover_once h with
    | Some (c, e) ->
      h.ha_epoch <- max h.ha_epoch e;
      h.ha_conn <- Some c;
      c
    | None ->
      if n >= h.ha_rounds then
        raise
          (Remote_error
             (Printf.sprintf
                "FAILOVER: no writable primary among %d endpoint%s after %d \
                 discovery pass%s"
                (List.length h.ha_endpoints)
                (if List.length h.ha_endpoints = 1 then "" else "s")
                n
                (if n = 1 then "" else "es")))
      else begin
        Unix.sleepf (delay +. Random.float (delay /. 2.));
        pass (n + 1) (delay *. 2.)
      end
  in
  pass 1 (Float.max 0.001 h.ha_backoff)

let connect_ha ?(rounds = 8) ?(retry_delay = 0.05) ?deadline endpoints =
  if endpoints = [] then raise (Remote_error "FAILOVER: empty endpoint list");
  let h =
    { ha_endpoints = endpoints;
      ha_rounds = max 1 rounds;
      ha_backoff = retry_delay;
      ha_deadline = deadline;
      ha_conn = None;
      ha_epoch = 0;
      ha_failovers = 0 }
  in
  ignore (ha_discover h);
  h

(* Failover-eligible failures: the connection is gone, the server is
   going away (SHUTDOWN / IDLE_TIMEOUT / a wire TIMEOUT), or it
   stopped being a writable primary (READ_ONLY after a demotion,
   STALE_EPOCH). Engine errors are not — they would fail identically
   on any member. *)
let ha_should_failover msg =
  match error_code msg with
  | Read_only | Stale_epoch | Shutdown | Idle_timeout | Timeout -> true
  | _ -> String.equal msg "server closed the connection"

let execute_ha ?deadline h sql =
  let rec go attempt =
    let c =
      match h.ha_conn with
      | Some c -> c
      | None ->
        let c = ha_discover h in
        h.ha_failovers <- h.ha_failovers + 1;
        c
    in
    match execute ?deadline c sql with
    | v -> v
    | exception Remote_error msg when ha_should_failover msg && attempt < 3 ->
      ha_drop h;
      go (attempt + 1)
    | exception (Sys_error _ | End_of_file) when attempt < 3 ->
      ha_drop h;
      go (attempt + 1)
    | exception Unix.Unix_error (e, _, _) when transient e && attempt < 3 ->
      ha_drop h;
      go (attempt + 1)
  in
  go 1

let ha_primary h = h.ha_conn
let ha_epoch h = h.ha_epoch
let ha_failovers h = h.ha_failovers
let close_ha h = ha_drop h
