(* The remote client: the same API shape as an embedded connection, over
   the wire protocol. Typed values cross the network in literal syntax
   and are rebuilt on this side (register the blade types first). *)

exception Remote_error of string

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

(* Transient connect failures — the server not up yet, or the network
   hiccuping — are worth retrying; anything else (bad address, no
   route policy, ...) fails immediately. *)
let transient = function
  | Unix.ECONNREFUSED | Unix.ETIMEDOUT | Unix.ENETUNREACH | Unix.ECONNRESET ->
    true
  | _ -> false

(* Connects with bounded retries: [attempts] tries in total, starting
   [retry_delay] seconds apart and doubling each time, plus up to 50%
   random jitter so a herd of clients does not reconnect in lockstep. *)
let connect ?(host = "127.0.0.1") ?(attempts = 5) ?(retry_delay = 0.05) ~port ()
    =
  (* the server dropping the connection must surface as an exception on
     our write, not kill the client process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let attempts = max 1 attempts in
  let rec try_connect attempt delay =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
    with
    | () -> fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if transient e && attempt < attempts then begin
        Unix.sleepf (delay +. Random.float (delay /. 2.));
        try_connect (attempt + 1) (delay *. 2.)
      end
      else
        raise
          (Remote_error
             (Printf.sprintf "%s (after %d attempt%s)" (Unix.error_message e)
                attempt
                (if attempt = 1 then "" else "s")))
  in
  let fd = try_connect 1 (Float.max 0.001 retry_delay) in
  { fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    closed = false }

let check_open t = if t.closed then raise (Remote_error "connection is closed")

let send t request =
  output_string t.oc (Protocol.encode_request request);
  output_char t.oc '\n';
  flush t.oc

(* Binds a [:name] parameter for the next [execute]. *)
let bind t name value =
  check_open t;
  send t (Protocol.Bind (name, value))

(* Executes one statement and returns the embedded-style result.
   @raise Remote_error when the server reports an error. *)
let execute t sql =
  check_open t;
  send t (Protocol.Execute sql);
  match Protocol.read_response t.ic with
  | Protocol.Rows { names; rows } -> Tip_engine.Database.Rows { names; rows }
  | Protocol.Affected n -> Tip_engine.Database.Affected n
  | Protocol.Message m -> Tip_engine.Database.Message m
  | Protocol.Error e -> raise (Remote_error e)
  | exception End_of_file -> raise (Remote_error "server closed the connection")

(* Fetches the server's metrics registry as a text dump (M request).
   @raise Remote_error when the server reports an error. *)
let metrics t =
  check_open t;
  send t Protocol.Metrics;
  match Protocol.read_response t.ic with
  | Protocol.Message m -> m
  | Protocol.Error e -> raise (Remote_error e)
  | Protocol.Rows _ | Protocol.Affected _ ->
    raise (Remote_error "unexpected response to a metrics request")
  | exception End_of_file -> raise (Remote_error "server closed the connection")

let close t =
  if not t.closed then begin
    (try send t Protocol.Quit with Sys_error _ | Remote_error _ -> ());
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
