(* The remote client: the same API shape as an embedded connection, over
   the wire protocol. Typed values cross the network in literal syntax
   and are rebuilt on this side (register the blade types first).

   Deadlines: [connect ?deadline] bounds the whole connect (retries
   included) and installs SO_SNDTIMEO/SO_RCVTIMEO on the socket, so a
   hung server cannot block this client forever; [execute ?deadline]
   tightens the socket timeouts for one call. A timed-out wire
   operation raises [Remote_error "TIMEOUT: ..."], which {!error_code}
   classifies alongside the server's own typed E responses. *)

exception Remote_error of string

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  default_deadline : float option; (* connect-time per-call bound, secs *)
  mutable closed : bool;
}

(* --- Typed error classification ----------------------------------------- *)

type error_code =
  | Timeout
  | Overloaded
  | Budget
  | Shutdown
  | Idle_timeout
  | Cancelled
  | Other

(* Typed server errors are "CODE: human text"; everything else (engine
   errors, parse errors, transport failures we did not tag) is Other. *)
let error_code msg =
  let prefixed p =
    String.length msg >= String.length p
    && String.equal (String.sub msg 0 (String.length p)) p
  in
  if prefixed "TIMEOUT:" then Timeout
  else if prefixed "OVERLOADED:" then Overloaded
  else if prefixed "BUDGET:" then Budget
  else if prefixed "SHUTDOWN:" then Shutdown
  else if prefixed "IDLE_TIMEOUT:" then Idle_timeout
  else if prefixed "CANCELLED:" then Cancelled
  else Other

(* Transient connect failures — the server not up yet, or the network
   hiccuping — are worth retrying; anything else (bad address, no
   route policy, ...) fails immediately. *)
let transient = function
  | Unix.ECONNREFUSED | Unix.ETIMEDOUT | Unix.ENETUNREACH | Unix.ECONNRESET ->
    true
  | _ -> false

let set_socket_timeouts fd secs =
  try
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO secs
  with Unix.Unix_error _ | Invalid_argument _ -> ()

(* Connects with bounded retries: [attempts] tries in total, starting
   [retry_delay] seconds apart and doubling each time, plus up to 50%
   random jitter so a herd of clients does not reconnect in lockstep.
   [deadline] (seconds) caps the whole procedure — a retry loop never
   outlives it — and becomes the socket send/receive timeout for later
   calls. *)
let connect ?(host = "127.0.0.1") ?(attempts = 5) ?(retry_delay = 0.05)
    ?deadline ~port () =
  (* the server dropping the connection must surface as an exception on
     our write, not kill the client process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let attempts = max 1 attempts in
  let give_up_at =
    Option.map (fun d -> Unix.gettimeofday () +. d) deadline
  in
  let out_of_time () =
    match give_up_at with
    | Some at -> Unix.gettimeofday () >= at
    | None -> false
  in
  let rec try_connect attempt delay =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Option.iter (fun d -> set_socket_timeouts fd d) deadline;
    match
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
    with
    | () -> fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if transient e && attempt < attempts && not (out_of_time ()) then begin
        let pause = delay +. Random.float (delay /. 2.) in
        let pause =
          (* never sleep past the overall deadline *)
          match give_up_at with
          | Some at -> Float.min pause (Float.max 0. (at -. Unix.gettimeofday ()))
          | None -> pause
        in
        Unix.sleepf pause;
        try_connect (attempt + 1) (delay *. 2.)
      end
      else
        raise
          (Remote_error
             (Printf.sprintf "%s%s (after %d attempt%s)"
                (if out_of_time () then "TIMEOUT: " else "")
                (Unix.error_message e) attempt
                (if attempt = 1 then "" else "s")))
  in
  let fd = try_connect 1 (Float.max 0.001 retry_delay) in
  { fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    default_deadline = deadline;
    closed = false }

let check_open t = if t.closed then raise (Remote_error "connection is closed")

let send t request =
  output_string t.oc (Protocol.encode_request request);
  output_char t.oc '\n';
  flush t.oc

(* Runs one request/response exchange under a per-call deadline: the
   socket timeouts are tightened for the call and restored after.
   EAGAIN and friends surface from the buffered channel as [Sys_error]
   or [Unix_error]; both become a typed TIMEOUT Remote_error. *)
let with_deadline t deadline f =
  let applied =
    match deadline with
    | Some d ->
      set_socket_timeouts t.fd d;
      true
    | None -> false
  in
  let governed = applied || t.default_deadline <> None in
  Fun.protect
    ~finally:(fun () ->
      if applied then
        match t.default_deadline with
        | Some d -> set_socket_timeouts t.fd d
        | None -> set_socket_timeouts t.fd 0. (* 0 = no timeout *))
    (fun () ->
      match f () with
      | v -> v
      | exception Sys_error msg when governed ->
        raise (Remote_error ("TIMEOUT: wire operation failed: " ^ msg))
      | exception Sys_blocked_io when governed ->
        (* buffered channels surface an EAGAIN read as Sys_blocked_io *)
        raise (Remote_error "TIMEOUT: server did not respond in time")
      | exception Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
        when governed ->
        raise (Remote_error "TIMEOUT: server did not respond in time"))

(* Binds a [:name] parameter for the next [execute]. *)
let bind t name value =
  check_open t;
  send t (Protocol.Bind (name, value))

(* Executes one statement and returns the embedded-style result.
   [deadline] (seconds) bounds this call's wire I/O.
   @raise Remote_error when the server reports an error (use
   {!error_code} on the message to classify typed failures). *)
let execute ?deadline t sql =
  check_open t;
  with_deadline t deadline @@ fun () ->
  send t (Protocol.Execute sql);
  match Protocol.read_response t.ic with
  | Protocol.Rows { names; rows } -> Tip_engine.Database.Rows { names; rows }
  | Protocol.Affected n -> Tip_engine.Database.Affected n
  | Protocol.Message m -> Tip_engine.Database.Message m
  | Protocol.Error e -> raise (Remote_error e)
  | exception End_of_file -> raise (Remote_error "server closed the connection")

(* Fetches the server's metrics registry as a text dump (M request).
   @raise Remote_error when the server reports an error. *)
let metrics ?deadline t =
  check_open t;
  with_deadline t deadline @@ fun () ->
  send t Protocol.Metrics;
  match Protocol.read_response t.ic with
  | Protocol.Message m -> m
  | Protocol.Error e -> raise (Remote_error e)
  | Protocol.Rows _ | Protocol.Affected _ ->
    raise (Remote_error "unexpected response to a metrics request")
  | exception End_of_file -> raise (Remote_error "server closed the connection")

let close t =
  if not t.closed then begin
    (try send t Protocol.Quit with Sys_error _ | Remote_error _ -> ());
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
