(** The remote client: an embedded-connection-shaped API over the wire
    protocol. Typed values are rebuilt on this side, so register the
    blade types ({!Tip_blade.Values.register_types}) before connecting
    when results contain temporal columns. *)

exception Remote_error of string

(** Classification of a {!Remote_error} message. The server's
    governance layer prefixes typed failures ([TIMEOUT: ...],
    [OVERLOADED: ...], [BUDGET: ...], [SHUTDOWN: ...],
    [IDLE_TIMEOUT: ...], [CANCELLED: ...]); client-side wire timeouts
    use the same [TIMEOUT:] prefix. Anything else is [Other]. *)
type error_code =
  | Timeout
  | Overloaded
  | Budget
  | Shutdown
  | Idle_timeout
  | Cancelled
  | Read_only
      (** the statement would write and the server is a read replica *)
  | Stale_read
      (** a routed read refused because the replica exceeds the
          [max_staleness] bound (client-side, {!execute_routed}) *)
  | Stale_epoch
      (** a replication subscription fenced: the peer's promotion epoch
          is older than the server's (split-brain protection) *)
  | Failover
      (** the HA client exhausted its discovery passes without finding
          a writable primary ({!connect_ha} / {!execute_ha}) *)
  | Other

val error_code : string -> error_code

type t

(** Connects with bounded retries on transient failures (connection
    refused, timed out, network unreachable, reset): [attempts] tries
    in total (default 5), the first retry after [retry_delay] seconds
    (default 0.05), doubling each time with random jitter. This rides
    out a server that is still starting up. [deadline] (seconds) caps
    the whole procedure, retries included, and becomes the socket
    send/receive timeout for subsequent calls — a hung server then
    fails calls with [Remote_error "TIMEOUT: ..."] instead of blocking
    forever.
    @raise Remote_error when the server stays unreachable. *)
val connect :
  ?host:string ->
  ?attempts:int ->
  ?retry_delay:float ->
  ?deadline:float ->
  port:int ->
  unit ->
  t

(** Binds a [:name] parameter for the next {!execute}. *)
val bind : t -> string -> Tip_storage.Value.t -> unit

(** Executes one statement. [deadline] (seconds) bounds this call's
    wire I/O (overriding the connect-time default for the call).
    @raise Remote_error on server-side errors or a lost connection;
    use {!error_code} to classify. *)
val execute : ?deadline:float -> t -> string -> Tip_engine.Database.result

(** The server's metrics registry as a text dump ([M] request).
    @raise Remote_error on server-side errors or a lost connection. *)
val metrics : ?deadline:float -> t -> string

(** Seconds the server's reads are behind its primary ([L] probe): a
    primary answers [0.], a replica its measured lag — growing without
    bound once it loses its primary.
    @raise Remote_error on a malformed answer or lost connection. *)
val staleness : ?deadline:float -> t -> float

(** The server's current role ([W] probe) and its promotion epoch —
    the HA client's primary-discovery primitive.
    @raise Remote_error on a malformed answer or lost connection. *)
val role : ?deadline:float -> t -> [ `Primary | `Replica ] * int

val close : t -> unit

(** {1 Read routing}

    A routed connection sends writes to the primary and routes reads
    (SELECT/SHOW/DESCRIBE/EXPLAIN/STATS) to a replica while it is
    reachable and fresh enough. With [max_staleness] set, each read
    first checks the replica's staleness (probes are cached for 0.2 s);
    a too-stale replica either falls back to the primary (default) or
    raises a typed [STALE_READ:] error ([on_stale = `Error]) so the
    caller can decide. A replica that dies mid-session is dropped and
    every read falls back to the primary — graceful degradation, not
    failure. *)

type routed

(** Connects to the primary (required) and optionally a replica; a
    replica that cannot be reached leaves the routed connection in
    primary-only mode.
    @raise Remote_error when the primary is unreachable. *)
val connect_routed :
  ?max_staleness:float ->
  ?on_stale:[ `Primary | `Error ] ->
  ?replica:string * int ->
  primary:string * int ->
  unit ->
  routed

(** Executes one statement on the routed connection.
    @raise Remote_error on server errors; [STALE_READ: ...] when a
    bounded read found the replica too stale under [on_stale = `Error]. *)
val execute_routed :
  ?deadline:float -> routed -> string -> Tip_engine.Database.result

val routed_primary : routed -> t

(** The replica connection still in use, if any. *)
val routed_replica : routed -> t option

val close_routed : routed -> unit

(** {1 High-availability failover}

    An HA connection holds a list of candidate endpoints — one group of
    servers of which exactly one should be the writable primary at any
    moment (DESIGN.md §15). Discovery probes every endpoint's role ([W])
    and connects to the primary with the newest promotion epoch; an
    endpoint claiming primacy under an epoch older than one already
    seen is a fenced ex-primary and is never used. When the connection
    is lost — or the server answers [READ_ONLY:] (demoted under us) or
    [STALE_EPOCH:] — the client transparently re-runs discovery with
    doubling backoff, riding out the promotion window in which no
    member is writable yet. *)

type ha

(** Discovers and connects to the group's writable primary. [rounds]
    (default 8) bounds discovery passes; [retry_delay] (default 0.05 s)
    is the pause after the first failed pass, doubling with jitter.
    @raise Remote_error with a [FAILOVER:] message when no writable
    primary is found within the budget (classified {!Failover}). *)
val connect_ha :
  ?rounds:int ->
  ?retry_delay:float ->
  ?deadline:float ->
  (string * int) list ->
  ha

(** Executes one statement on the current primary, failing over (up to
    two re-discoveries per call) when the connection drops or the
    server stops being a writable primary. Engine errors pass through
    untouched — they would fail identically on any member.
    @raise Remote_error on engine errors or failed failover. *)
val execute_ha : ?deadline:float -> ha -> string -> Tip_engine.Database.result

(** The live primary connection, if one is currently established. *)
val ha_primary : ha -> t option

(** The newest promotion epoch this client has observed. *)
val ha_epoch : ha -> int

(** Completed re-discoveries (0 right after {!connect_ha}). *)
val ha_failovers : ha -> int

val close_ha : ha -> unit

(**/**)

(** The raw buffered channels over the socket — the replication
    client's entry to stream framing. *)
val channels : t -> in_channel * out_channel
