(** The remote client: an embedded-connection-shaped API over the wire
    protocol. Typed values are rebuilt on this side, so register the
    blade types ({!Tip_blade.Values.register_types}) before connecting
    when results contain temporal columns. *)

exception Remote_error of string

(** Classification of a {!Remote_error} message. The server's
    governance layer prefixes typed failures ([TIMEOUT: ...],
    [OVERLOADED: ...], [BUDGET: ...], [SHUTDOWN: ...],
    [IDLE_TIMEOUT: ...], [CANCELLED: ...]); client-side wire timeouts
    use the same [TIMEOUT:] prefix. Anything else is [Other]. *)
type error_code =
  | Timeout
  | Overloaded
  | Budget
  | Shutdown
  | Idle_timeout
  | Cancelled
  | Other

val error_code : string -> error_code

type t

(** Connects with bounded retries on transient failures (connection
    refused, timed out, network unreachable, reset): [attempts] tries
    in total (default 5), the first retry after [retry_delay] seconds
    (default 0.05), doubling each time with random jitter. This rides
    out a server that is still starting up. [deadline] (seconds) caps
    the whole procedure, retries included, and becomes the socket
    send/receive timeout for subsequent calls — a hung server then
    fails calls with [Remote_error "TIMEOUT: ..."] instead of blocking
    forever.
    @raise Remote_error when the server stays unreachable. *)
val connect :
  ?host:string ->
  ?attempts:int ->
  ?retry_delay:float ->
  ?deadline:float ->
  port:int ->
  unit ->
  t

(** Binds a [:name] parameter for the next {!execute}. *)
val bind : t -> string -> Tip_storage.Value.t -> unit

(** Executes one statement. [deadline] (seconds) bounds this call's
    wire I/O (overriding the connect-time default for the call).
    @raise Remote_error on server-side errors or a lost connection;
    use {!error_code} to classify. *)
val execute : ?deadline:float -> t -> string -> Tip_engine.Database.result

(** The server's metrics registry as a text dump ([M] request).
    @raise Remote_error on server-side errors or a lost connection. *)
val metrics : ?deadline:float -> t -> string

val close : t -> unit
