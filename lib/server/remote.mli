(** The remote client: an embedded-connection-shaped API over the wire
    protocol. Typed values are rebuilt on this side, so register the
    blade types ({!Tip_blade.Values.register_types}) before connecting
    when results contain temporal columns. *)

exception Remote_error of string

type t

(** Connects with bounded retries on transient failures (connection
    refused, timed out, network unreachable, reset): [attempts] tries
    in total (default 5), the first retry after [retry_delay] seconds
    (default 0.05), doubling each time with random jitter. This rides
    out a server that is still starting up.
    @raise Remote_error when the server stays unreachable. *)
val connect :
  ?host:string -> ?attempts:int -> ?retry_delay:float -> port:int -> unit -> t

(** Binds a [:name] parameter for the next {!execute}. *)
val bind : t -> string -> Tip_storage.Value.t -> unit

(** Executes one statement.
    @raise Remote_error on server-side errors or a lost connection. *)
val execute : t -> string -> Tip_engine.Database.result

(** The server's metrics registry as a text dump ([M] request).
    @raise Remote_error on server-side errors or a lost connection. *)
val metrics : t -> string

val close : t -> unit
