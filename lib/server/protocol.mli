(** The wire protocol between TIP clients and the server — the stand-in
    for the ODBC/JDBC connection of the paper's Figure 1.

    Line-oriented text over a stream socket. Requests: [Q <sql>] executes
    a statement, [B <name> <type> <text>] binds a parameter for the next
    Q, [M] asks for the server's metrics registry as a text dump, [X]
    ends the session. Responses: a row block, an affected count,
    a message, or an error. Values travel in literal syntax tagged with
    their type name and are rebuilt on the client (register the blade
    types first); NOW stays symbolic on the wire. *)

open Tip_storage

type request =
  | Execute of string
  | Bind of string * Value.t
  | Metrics  (** text dump of the server's metrics registry *)
  | Quit

val encode_request : request -> string
val decode_request : string -> request option

type response =
  | Rows of { names : string list; rows : Value.t array list }
  | Affected of int
  | Message of string
  | Error of string

val write_response : out_channel -> response -> unit

(** @raise Failure on malformed protocol data
    @raise End_of_file when the peer hangs up. *)
val read_response : in_channel -> response

(**/**)

val encode_typed : Value.t -> string
val decode_typed : string -> string -> Value.t
