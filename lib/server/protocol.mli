(** The wire protocol between TIP clients and the server — the stand-in
    for the ODBC/JDBC connection of the paper's Figure 1.

    Line-oriented text over a stream socket. Requests: [Q <sql>] executes
    a statement, [B <name> <type> <text>] binds a parameter for the next
    Q, [M] asks for the server's metrics registry as a text dump, [X]
    ends the session. Responses: a row block, an affected count,
    a message, or an error. Values travel in literal syntax tagged with
    their type name and are rebuilt on the client (register the blade
    types first); NOW stays symbolic on the wire. *)

open Tip_storage

type request =
  | Execute of string
  | Bind of string * Value.t
  | Metrics  (** text dump of the server's metrics registry *)
  | Quit
  | Wal_subscribe of { gen : int; offset : int; epoch : int }
      (** [S <gen> <offset> <epoch>]: stream raw WAL bytes of generation
          [gen] from byte [offset]; the session becomes a replication
          stream. [epoch] is the subscriber's promotion epoch — a
          mismatch is fenced with a typed [STALE_EPOCH:] error
          (DESIGN.md §15). Pre-HA two-field subscriptions decode with
          epoch 0. *)
  | Snapshot_request
      (** [P]: one snapshot-bootstrap exchange —
          [M snapshot <gen> <offset> <epoch>] followed by a single
          chunk *)
  | Ack of { offset : int; commits : int }
      (** [K <offset> <commits>]: subscriber's confirmed replay position,
          sent upstream on the same socket *)
  | Lag_probe
      (** [L]: answered [M <staleness_seconds>] by a replica ([0] on a
          primary) — the routing client's cheap staleness check *)
  | Role_probe
      (** [W]: answered [M role <primary|replica> <epoch>] — the HA
          client's primary-discovery probe *)

val encode_request : request -> string
val decode_request : string -> request option

type response =
  | Rows of { names : string list; rows : Value.t array list }
  | Affected of int
  | Message of string
  | Error of string

val write_response : out_channel -> response -> unit

(** @raise Failure on malformed protocol data
    @raise End_of_file when the peer hangs up. *)
val read_response : in_channel -> response

(** {1 WAL stream framing}

    Replication subscriptions ship raw WAL bytes length-prefixed
    ([D <len>\n<bytes>\n]) — binary-safe, no escaping — interleaved
    with ordinary [M] keepalives and typed [E] stream errors. *)

val write_chunk : out_channel -> string -> unit

(** @raise Failure on malformed framing
    @raise End_of_file when the peer hangs up. *)
val read_stream_item :
  in_channel -> [ `Chunk of string | `Info of string | `Err of string ]

(**/**)

val encode_typed : Value.t -> string
val decode_typed : string -> string -> Value.t
