(** The TIP database server: accepts client connections over TCP and
    executes their statements against one shared embedded database.

    One thread per client; statement execution is serialized with a
    mutex, preserving the single-writer semantics of embedded
    connections. Errors become [E] responses and the session survives.

    Resource governance (DESIGN.md §10): every statement runs under a
    {!Tip_core.Deadline} token armed with the session's statement
    timeout ([SET TIMEOUT n], defaulting to [statement_timeout_ms]);
    tripped tokens answer typed errors ([E TIMEOUT: ...],
    [E BUDGET: ...]). Admission control caps concurrent sessions
    ([max_sessions]; beyond it connections are answered
    [E OVERLOADED: ...] and closed), and {!drain} performs a graceful
    shutdown: stop accepting, cancel in-flight statements, wait. *)

type t

(** Creates the listening socket; [port 0] picks an ephemeral port.
    [idle_timeout] (seconds) closes sessions that stay silent that long
    with a final [E IDLE_TIMEOUT: ...] response, so abandoned clients
    cannot pin threads forever (and can tell the drop from a crash).
    [slow_ms] enables the slow-query log: statements taking at least
    that many milliseconds are reported through {!Tip_obs.Log_sink}
    with their text, latency, and row count. [max_sessions] bounds
    concurrent sessions (the kernel accept backlog is clamped to
    match). [statement_timeout_ms] is the default per-statement
    deadline; sessions override it with [SET TIMEOUT n] ([0] disables,
    [DEFAULT] restores the server default). *)
val listen :
  ?host:string ->
  ?idle_timeout:float ->
  ?slow_ms:float ->
  ?max_sessions:int ->
  ?statement_timeout_ms:int ->
  port:int ->
  Tip_engine.Database.t ->
  t

(** The actual bound port. *)
val port : t -> int

(** Blocking accept loop; returns after {!stop}. *)
val serve : t -> unit

(** Runs the accept loop on a background thread. *)
val serve_in_background : t -> unit

val stop : t -> unit

(** Graceful drain: stop accepting, cancel every in-flight statement
    via its token (each aborts within one morsel/batch boundary,
    journals nothing, and is answered [E SHUTDOWN: ...]), then wait up
    to [grace] seconds (default 5) for in-flight statements to finish
    unwinding. Returns the drain duration in seconds. The caller is
    expected to checkpoint the database afterwards. *)
val drain : ?grace:float -> t -> float

(** Whether {!drain} has begun (new statements are refused). *)
val draining : t -> bool

(** Sessions currently connected. *)
val active_sessions : t -> int

(** {1 Replication and high availability}

    A durable server is a potential primary: [S <gen> <offset> <epoch>]
    turns a session into a WAL byte stream (chunks, keepalives,
    subscriber acks on the same socket) and [P] serves a consistent
    snapshot bootstrap; per-subscriber lag is queryable as
    [tip_stat_replication]. A subscription whose promotion epoch does
    not match the server's is fenced with [E STALE_EPOCH: ...] before
    any byte is shipped (split-brain protection, DESIGN.md §15). [W]
    answers [M role <primary|replica> <epoch>] for client failover
    discovery. {!drain} answers every open stream [E SHUTDOWN].
    Streamed chunks pass the [repl.send] failpoint and the bootstrap
    passes [repl.snapshot], so tests can drop/delay/truncate/bit-flip
    frames in flight. *)

(** The statement-serialization mutex. The replication client on a
    replica shares it so stream replay and reads interleave safely. *)
val db_mutex : t -> Mutex.t

(** Installs the staleness probe answering [L] requests — on a replica,
    seconds behind the primary (a primary answers [0] by default). *)
val set_staleness_probe : t -> (unit -> float) -> unit

(** Installs the promotion handler a served replica runs on [PROMOTE]
    (wire statement or SIGUSR1 via {!promote}). The handler is invoked
    outside the db lock — it owns its own locking — and returns the new
    [(generation, epoch)] or a typed error. *)
val set_promote_handler : t -> (unit -> (int * int, string) result) -> unit

(** Runs the installed promotion handler (the SIGUSR1 path). *)
val promote : t -> (int * int, string) result

(** Live replication subscribers (primary side). *)
val replica_count : t -> int
