(** The TIP database server: accepts client connections over TCP and
    executes their statements against one shared embedded database.

    One thread per client; statement execution is serialized with a
    mutex, preserving the single-writer semantics of embedded
    connections. Errors become [E] responses and the session survives. *)

type t

(** Creates the listening socket; [port 0] picks an ephemeral port.
    [idle_timeout] (seconds) drops sessions that stay silent that long,
    so abandoned clients cannot pin threads forever. [slow_ms] enables
    the slow-query log: statements taking at least that many
    milliseconds are reported through {!Tip_obs.Log_sink} with their
    text, latency, and row count. *)
val listen :
  ?host:string ->
  ?idle_timeout:float ->
  ?slow_ms:float ->
  port:int ->
  Tip_engine.Database.t ->
  t

(** The actual bound port. *)
val port : t -> int

(** Blocking accept loop; returns after {!stop}. *)
val serve : t -> unit

(** Runs the accept loop on a background thread. *)
val serve_in_background : t -> unit

val stop : t -> unit
