(* The embedded HTTP monitoring endpoint (DESIGN.md §16).

   Deliberately not a web framework: parse the request line, drain the
   headers, dispatch on the path, answer, close. Probes (kubelet,
   Prometheus, curl in the failover runbook) are all one-shot GETs, so
   keep-alive buys nothing and connection-per-request keeps every
   handler allocation-local. None of the handlers touches the database
   lock — /metrics and /ash.json read lock-free registries — so the
   endpoint stays responsive while a runaway statement holds the db
   lock, which is exactly when an operator needs it. *)

module Metrics = Tip_obs.Metrics
module Wait = Tip_obs.Wait

let log_src = Logs.Src.create "tip.monitor" ~doc:"TIP monitoring endpoint"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  listener : Unix.file_descr;
  mutable running : bool;
  mutable thread : Thread.t option;
}

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let ash_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i (sa : Wait.sample) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"seq\":%d,\"at\":%.3f,\"interval_ms\":%d,\"session\":%d,\
            \"kind\":\"%s\",\"query\":%s,\"state\":\"%s\"}"
           sa.Wait.sa_seq sa.sa_at sa.sa_interval_ms sa.sa_session
           (json_escape sa.sa_kind)
           (match sa.sa_query with
           | Some q -> Printf.sprintf "\"%s\"" (json_escape q)
           | None -> "null")
           (json_escape sa.sa_state)))
    (Wait.samples ());
  Buffer.add_string buf "]\n";
  Buffer.contents buf

let respond oc ~status ~content_type body =
  let reason =
    match status with
    | 200 -> "OK"
    | 404 -> "Not Found"
    | 503 -> "Service Unavailable"
    | _ -> "Error"
  in
  Printf.fprintf oc
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status reason content_type (String.length body) body;
  flush oc

let handle_connection ready fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        (* probes must not be able to pin the handler thread *)
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
         with Unix.Unix_error _ | Invalid_argument _ -> ());
        let request = input_line ic in
        (* drain headers up to the blank line; their content is unused *)
        (try
           while
             match input_line ic with "" | "\r" -> false | _ -> true
           do
             ()
           done
         with End_of_file -> ());
        match String.split_on_char ' ' (String.trim request) with
        | [ meth; path; _version ] when meth = "GET" || meth = "HEAD" -> (
          match path with
          | "/metrics" ->
            respond oc ~status:200
              ~content_type:"text/plain; version=0.0.4; charset=utf-8"
              (Metrics.dump_text ())
          | "/healthz" ->
            respond oc ~status:200 ~content_type:"text/plain" "ok\n"
          | "/readyz" ->
            let ok, detail = ready () in
            respond oc
              ~status:(if ok then 200 else 503)
              ~content_type:"text/plain" (detail ^ "\n")
          | "/ash.json" ->
            respond oc ~status:200 ~content_type:"application/json"
              (ash_json ())
          | _ ->
            respond oc ~status:404 ~content_type:"text/plain" "not found\n")
        | _ -> respond oc ~status:404 ~content_type:"text/plain" "bad request\n"
      with
      | End_of_file | Sys_error _ | Sys_blocked_io -> ()
      | Unix.Unix_error _ -> ())

let port t =
  match Unix.getsockname t.listener with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Monitor.port: unix socket"

let start ~port:requested ~ready () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_any, requested));
  Unix.listen listener 16;
  let t = { listener; running = true; thread = None } in
  let rec accept_loop () =
    if t.running then begin
      match Unix.accept t.listener with
      | fd, _ ->
        ignore (Thread.create (fun () -> handle_connection ready fd) ());
        accept_loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        () (* listener closed by [stop] *)
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
        accept_loop ()
    end
  in
  t.thread <- Some (Thread.create accept_loop ());
  Log.info (fun m -> m "monitoring endpoint on port %d" (port t));
  t

let stop t =
  if t.running then begin
    t.running <- false;
    (* close alone does not wake a thread parked in accept(2);
       shutdown does, failing the accept with EINVAL *)
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    match t.thread with
    | Some th -> ( try Thread.join th with _ -> ())
    | None -> ()
  end
