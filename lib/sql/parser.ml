(* Recursive-descent parser for the SQL dialect described in [Ast].

   Keywords are case-insensitive and only reserved where the grammar
   needs them (e.g. an alias cannot be WHERE), so TIP routine names such
   as [intersect], [start] or [contains] remain usable as identifiers. *)

exception Error of string

type state = { tokens : Token.located array; mutable pos : int }

let error st msg =
  let t = st.tokens.(st.pos) in
  raise
    (Error
       (Printf.sprintf "parse error at line %d, column %d (near %s): %s"
          t.Token.line t.Token.column
          (Token.to_string t.Token.token)
          msg))

let peek st = st.tokens.(st.pos).Token.token

let peek2 st =
  if st.pos + 1 < Array.length st.tokens then
    st.tokens.(st.pos + 1).Token.token
  else Token.Eof

let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

(* --- Keyword helpers -------------------------------------------------- *)

let is_kw kw = function
  | Token.Ident s -> String.uppercase_ascii s = kw
  | Token.Int _ | Token.Float _ | Token.String _ | Token.Quoted_ident _
  | Token.Param _ | Token.Symbol _ | Token.Eof -> false

let at_kw st kw = is_kw kw (peek st)

let eat_kw st kw =
  if at_kw st kw then begin
    advance st;
    true
  end
  else false

let expect_kw st kw =
  if not (eat_kw st kw) then error st (Printf.sprintf "expected %s" kw)

let at_sym st s =
  match peek st with Token.Symbol s' -> String.equal s s' | _ -> false

let eat_sym st s =
  if at_sym st s then begin
    advance st;
    true
  end
  else false

let expect_sym st s =
  if not (eat_sym st s) then error st (Printf.sprintf "expected %S" s)

let reserved =
  [ "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER"; "LIMIT";
    "OFFSET"; "AS"; "ON"; "JOIN"; "INNER"; "LEFT"; "OUTER"; "CROSS"; "AND";
    "OR"; "NOT"; "IN"; "BETWEEN"; "LIKE"; "IS"; "NULL"; "DISTINCT"; "INSERT";
    "INTO"; "VALUES"; "UPDATE"; "SET"; "DELETE"; "CREATE"; "TABLE"; "DROP";
    "INDEX"; "UNIQUE"; "EXPLAIN"; "BEGIN"; "COMMIT"; "ROLLBACK"; "SHOW";
    "DESCRIBE"; "ASC"; "DESC"; "CASE"; "WHEN"; "THEN"; "ELSE"; "END"; "TRUE";
    "FALSE"; "PRIMARY"; "KEY"; "IF"; "EXISTS"; "CAST" ]

let is_reserved s = List.mem (String.uppercase_ascii s) reserved

(* Words that terminate a SELECT body and therefore cannot be bare
   aliases, even though they stay usable as routine names. *)
let ends_select s =
  match String.uppercase_ascii s with "UNION" -> true | _ -> false

(* Any identifier, including quoted ones (which are never keywords). *)
let ident st =
  match peek st with
  | Token.Ident s when not (is_reserved s) ->
    advance st;
    s
  | Token.Quoted_ident s ->
    advance st;
    s
  | _ -> error st "expected identifier"

(* --- Expressions ------------------------------------------------------ *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if eat_kw st "OR" then Ast.Binop (Ast.Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if eat_kw st "AND" then Ast.Binop (Ast.And, lhs, parse_and st) else lhs

and parse_not st =
  if eat_kw st "NOT" then Ast.Unop (Ast.Not, parse_not st)
  else parse_comparison st

and parse_comparison st =
  let lhs = parse_additive st in
  let simple op =
    advance st;
    Ast.Binop (op, lhs, parse_additive st)
  in
  match peek st with
  | Token.Symbol "=" -> simple Ast.Eq
  | Token.Symbol "<>" -> simple Ast.Neq
  | Token.Symbol "<" -> simple Ast.Lt
  | Token.Symbol "<=" -> simple Ast.Le
  | Token.Symbol ">" -> simple Ast.Gt
  | Token.Symbol ">=" -> simple Ast.Ge
  | Token.Ident _ -> parse_postfix_predicate st lhs
  | Token.Int _ | Token.Float _ | Token.String _ | Token.Quoted_ident _
  | Token.Param _ | Token.Symbol _ | Token.Eof -> lhs

(* IS [NOT] NULL, [NOT] IN, [NOT] BETWEEN ... AND ..., [NOT] LIKE. *)
and parse_postfix_predicate st scrutinee =
  if eat_kw st "IS" then begin
    let negated = eat_kw st "NOT" in
    expect_kw st "NULL";
    Ast.Is_null { negated; scrutinee }
  end
  else begin
    let negated = eat_kw st "NOT" in
    if eat_kw st "IN" then begin
      expect_sym st "(";
      if at_kw st "SELECT" then begin
        advance st;
        let query = parse_select_body st in
        expect_sym st ")";
        Ast.In_select { negated; scrutinee; query }
      end
      else begin
        let choices = parse_expr_list st in
        expect_sym st ")";
        Ast.In_list { negated; scrutinee; choices }
      end
    end
    else if eat_kw st "BETWEEN" then begin
      let low = parse_additive st in
      expect_kw st "AND";
      let high = parse_additive st in
      Ast.Between { negated; scrutinee; low; high }
    end
    else if eat_kw st "LIKE" then
      Ast.Like { negated; scrutinee; pattern = parse_additive st }
    else if negated then error st "expected IN, BETWEEN or LIKE after NOT"
    else scrutinee
  end

and parse_additive st =
  let rec loop lhs =
    if eat_sym st "+" then loop (Ast.Binop (Ast.Add, lhs, parse_multiplicative st))
    else if eat_sym st "-" then
      loop (Ast.Binop (Ast.Sub, lhs, parse_multiplicative st))
    else if eat_sym st "||" then
      loop (Ast.Binop (Ast.Concat, lhs, parse_multiplicative st))
    else lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    if eat_sym st "*" then loop (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    else if eat_sym st "/" then loop (Ast.Binop (Ast.Div, lhs, parse_unary st))
    else if eat_sym st "%" then loop (Ast.Binop (Ast.Mod, lhs, parse_unary st))
    else lhs
  in
  loop (parse_unary st)

and parse_unary st =
  if eat_sym st "-" then Ast.Unop (Ast.Neg, parse_unary st)
  else if eat_sym st "+" then parse_unary st
  else parse_cast st

(* Informix postfix cast: expr::Type, left-associative chains allowed. *)
and parse_cast st =
  let rec loop e =
    if eat_sym st "::" then loop (Ast.Cast (e, ident st)) else e
  in
  loop (parse_primary st)

and parse_expr_list st =
  let rec loop acc =
    let e = parse_expr st in
    if eat_sym st "," then loop (e :: acc) else List.rev (e :: acc)
  in
  loop []

and parse_case st =
  let rec arms acc =
    if eat_kw st "WHEN" then begin
      let cond = parse_expr st in
      expect_kw st "THEN";
      let v = parse_expr st in
      arms ((cond, v) :: acc)
    end
    else List.rev acc
  in
  let arms = arms [] in
  if arms = [] then error st "CASE requires at least one WHEN arm";
  let else_ = if eat_kw st "ELSE" then Some (parse_expr st) else None in
  expect_kw st "END";
  Ast.Case (arms, else_)

and parse_primary st =
  match peek st with
  | Token.Int n ->
    advance st;
    Ast.Lit (Ast.L_int n)
  | Token.Float f ->
    advance st;
    Ast.Lit (Ast.L_float f)
  | Token.String s ->
    advance st;
    Ast.Lit (Ast.L_string s)
  | Token.Param name ->
    advance st;
    Ast.Param name
  | Token.Symbol "(" ->
    advance st;
    if at_kw st "SELECT" then begin
      advance st;
      let q = parse_select_body st in
      expect_sym st ")";
      Ast.Scalar_subquery q
    end
    else begin
      let e = parse_expr st in
      expect_sym st ")";
      e
    end
  | Token.Ident _ when at_kw st "TRUE" ->
    advance st;
    Ast.Lit (Ast.L_bool true)
  | Token.Ident _ when at_kw st "FALSE" ->
    advance st;
    Ast.Lit (Ast.L_bool false)
  | Token.Ident _ when at_kw st "NULL" ->
    advance st;
    Ast.Lit Ast.L_null
  | Token.Ident _ when at_kw st "CASE" ->
    advance st;
    parse_case st
  | Token.Ident _ when at_kw st "EXISTS" ->
    advance st;
    expect_sym st "(";
    expect_kw st "SELECT";
    let q = parse_select_body st in
    expect_sym st ")";
    Ast.Exists q
  | Token.Ident _ when at_kw st "CAST" ->
    (* CAST(expr AS Type) sugar for expr::Type *)
    advance st;
    expect_sym st "(";
    let e = parse_expr st in
    expect_kw st "AS";
    let ty = ident st in
    (* Allow CHAR(20)-style type parameters; the engine ignores the width
       in casts. *)
    if eat_sym st "(" then begin
      (match next st with
      | Token.Int _ -> ()
      | _ -> error st "expected type width");
      expect_sym st ")"
    end;
    expect_sym st ")";
    Ast.Cast (e, ty)
  | Token.Ident _ | Token.Quoted_ident _ -> parse_name_or_call st
  | Token.Symbol _ | Token.Eof -> error st "expected expression"

(* identifier, qualified column, or function call *)
and parse_name_or_call st =
  let name =
    match peek st with
    | Token.Ident s when not (is_reserved s) ->
      advance st;
      s
    | Token.Quoted_ident s ->
      advance st;
      s
    | _ -> error st "expected identifier"
  in
  if at_sym st "(" then begin
    advance st;
    if eat_sym st ")" then Ast.Call (name, [])
    else if at_sym st "*" && String.uppercase_ascii name = "COUNT" then begin
      advance st;
      expect_sym st ")";
      Ast.Count_star
    end
    else if eat_kw st "DISTINCT" then begin
      let arg = parse_expr st in
      expect_sym st ")";
      Ast.Call_distinct (name, arg)
    end
    else begin
      let args = parse_expr_list st in
      expect_sym st ")";
      Ast.Call (name, args)
    end
  end
  else if at_sym st "." && (match peek2 st with
                           | Token.Ident _ | Token.Quoted_ident _ -> true
                           | _ -> false) then begin
    advance st;
    let col = ident st in
    Ast.Column (Some name, col)
  end
  else Ast.Column (None, name)

(* --- SELECT ----------------------------------------------------------- *)

and parse_select_item st =
  if eat_sym st "*" then Ast.Sel_star None
  else begin
    (* t.* needs two-token lookahead before falling back to expressions. *)
    match peek st, peek2 st with
    | (Token.Ident name, Token.Symbol ".")
      when (not (is_reserved name))
           && (match st.tokens.(st.pos + 2).Token.token with
              | Token.Symbol "*" -> true
              | _ -> false) ->
      advance st;
      advance st;
      advance st;
      Ast.Sel_star (Some name)
    | _, _ ->
      let e = parse_expr st in
      let alias =
        if eat_kw st "AS" then Some (ident st)
        else begin
          match peek st with
          | Token.Ident s when (not (is_reserved s)) && not (ends_select s) ->
            advance st;
            Some s
          | Token.Quoted_ident s ->
            advance st;
            Some s
          | _ -> None
        end
      in
      Ast.Sel_expr (e, alias)
  end

and parse_table_ref st =
  let rec joins left =
    if eat_kw st "JOIN" then with_on left Ast.Inner
    else if at_kw st "INNER" && is_kw "JOIN" (peek2 st) then begin
      advance st;
      advance st;
      with_on left Ast.Inner
    end
    else if at_kw st "LEFT" then begin
      advance st;
      ignore (eat_kw st "OUTER");
      expect_kw st "JOIN";
      with_on left Ast.Left_outer
    end
    else if at_kw st "CROSS" && is_kw "JOIN" (peek2 st) then begin
      advance st;
      advance st;
      let right = parse_table_primary st in
      joins
        (Ast.Join { left; kind = Ast.Inner; right; on = Ast.Lit (Ast.L_bool true) })
    end
    else left
  and with_on left kind =
    let right = parse_table_primary st in
    expect_kw st "ON";
    let on = parse_expr st in
    joins (Ast.Join { left; kind; right; on })
  in
  joins (parse_table_primary st)

and parse_table_primary st =
  if eat_sym st "(" then begin
    expect_kw st "SELECT";
    let q = parse_select_body st in
    expect_sym st ")";
    ignore (eat_kw st "AS");
    let alias = ident st in
    Ast.Derived { query = q; alias }
  end
  else begin
    let name = ident st in
    (* [AS OF] vs [AS alias]: look one token past AS. *)
    let at_as_of () =
      at_kw st "AS" && is_kw "OF" (peek2 st)
    in
    let alias =
      if at_as_of () then None
      else if eat_kw st "AS" then Some (ident st)
      else begin
        match peek st with
        | Token.Ident s
          when (not (is_reserved s)) && (not (ends_select s))
               && String.uppercase_ascii s <> "OF" ->
          advance st;
          Some s
        | Token.Quoted_ident s ->
          advance st;
          Some s
        | _ -> None
      end
    in
    let as_of =
      if at_as_of () then begin
        advance st;
        advance st;
        Some (parse_additive st)
      end
      else None
    in
    (* The alias may also follow the AS OF clause: [t AS OF '...' x]. *)
    let alias =
      match alias, as_of with
      | None, Some _ -> (
        if eat_kw st "AS" then Some (ident st)
        else begin
          match peek st with
          | Token.Ident s when (not (is_reserved s)) && not (ends_select s) ->
            advance st;
            Some s
          | Token.Quoted_ident s ->
            advance st;
            Some s
          | _ -> None
        end)
      | alias, _ -> alias
    in
    Ast.Table { name; alias; as_of }
  end

(* Body after the SELECT keyword. *)
and parse_select_body st =
  let distinct = eat_kw st "DISTINCT" in
  let items =
    let rec loop acc =
      let item = parse_select_item st in
      if eat_sym st "," then loop (item :: acc) else List.rev (item :: acc)
    in
    loop []
  in
  let from =
    if eat_kw st "FROM" then begin
      let rec loop acc =
        let t = parse_table_ref st in
        if eat_sym st "," then loop (t :: acc) else List.rev (t :: acc)
      in
      loop []
    end
    else []
  in
  let where = if eat_kw st "WHERE" then Some (parse_expr st) else None in
  let group_by =
    if eat_kw st "GROUP" then begin
      expect_kw st "BY";
      parse_expr_list st
    end
    else []
  in
  let having = if eat_kw st "HAVING" then Some (parse_expr st) else None in
  let order_by =
    if eat_kw st "ORDER" then begin
      expect_kw st "BY";
      let rec loop acc =
        let e = parse_expr st in
        let dir =
          if eat_kw st "DESC" then Ast.Desc
          else begin
            ignore (eat_kw st "ASC");
            Ast.Asc
          end
        in
        if eat_sym st "," then loop ((e, dir) :: acc)
        else List.rev ((e, dir) :: acc)
      in
      loop []
    end
    else []
  in
  let limit =
    if eat_kw st "LIMIT" then begin
      match next st with
      | Token.Int n -> Some n
      | _ -> error st "expected integer after LIMIT"
    end
    else None
  in
  let offset =
    if eat_kw st "OFFSET" then begin
      match next st with
      | Token.Int n -> Some n
      | _ -> error st "expected integer after OFFSET"
    end
    else None
  in
  { Ast.distinct; items; from; where; group_by; having; order_by; limit; offset }

(* --- Other statements -------------------------------------------------- *)

let parse_column_def st =
  let col_name = ident st in
  let col_type =
    match peek st with
    | Token.Ident s ->
      advance st;
      s
    | _ -> error st "expected type name"
  in
  let col_type_param =
    if eat_sym st "(" then begin
      match next st with
      | Token.Int n ->
        expect_sym st ")";
        Some n
      | _ -> error st "expected type width"
    end
    else None
  in
  let rec constraints not_null primary_key =
    if eat_kw st "NOT" then begin
      expect_kw st "NULL";
      constraints true primary_key
    end
    else if eat_kw st "PRIMARY" then begin
      expect_kw st "KEY";
      constraints true true
    end
    else (not_null, primary_key)
  in
  let col_not_null, col_primary_key = constraints false false in
  { Ast.col_name; col_type; col_type_param; col_not_null; col_primary_key }

let parse_create st =
  if eat_kw st "TABLE" then begin
    let if_not_exists =
      if eat_kw st "IF" then begin
        expect_kw st "NOT";
        expect_kw st "EXISTS";
        true
      end
      else false
    in
    let table = ident st in
    if eat_kw st "AS" then begin
      expect_kw st "SELECT";
      Ast.Create_table_as { table; query = parse_select_body st }
    end
    else begin
      expect_sym st "(";
      let rec cols acc =
        let c = parse_column_def st in
        if eat_sym st "," then cols (c :: acc) else List.rev (c :: acc)
      in
      let columns = cols [] in
      expect_sym st ")";
      (* PARTITION BY RANGE (col) (PARTITION p FOR VALUES FROM 'a' TO 'b',
         ..., PARTITION pdef DEFAULT) *)
      let partition_by =
        if at_kw st "PARTITION" && is_kw "BY" (peek2 st) then begin
          advance st;
          advance st;
          expect_kw st "RANGE";
          expect_sym st "(";
          let part_column = ident st in
          expect_sym st ")";
          expect_sym st "(";
          let instant () =
            match next st with
            | Token.String s -> s
            | _ -> error st "expected an instant string literal"
          in
          let parse_part () =
            expect_kw st "PARTITION";
            let part_name = ident st in
            if eat_kw st "DEFAULT" then { Ast.part_name; part_range = None }
            else begin
              expect_kw st "FOR";
              expect_kw st "VALUES";
              expect_kw st "FROM";
              let from_i = instant () in
              expect_kw st "TO";
              let to_i = instant () in
              { Ast.part_name; part_range = Some (from_i, to_i) }
            end
          in
          let rec parts acc =
            let p = parse_part () in
            if eat_sym st "," then parts (p :: acc) else List.rev (p :: acc)
          in
          let part_defs = parts [] in
          expect_sym st ")";
          Some { Ast.part_column; part_defs }
        end
        else None
      in
      let with_history =
        if at_kw st "WITH" && is_kw "HISTORY" (peek2 st) then begin
          advance st;
          advance st;
          true
        end
        else false
      in
      Ast.Create_table { table; if_not_exists; columns; with_history; partition_by }
    end
  end
  else begin
    let unique = eat_kw st "UNIQUE" in
    expect_kw st "INDEX";
    let index = ident st in
    expect_kw st "ON";
    let table = ident st in
    expect_sym st "(";
    let column = ident st in
    expect_sym st ")";
    let using =
      if at_kw st "USING" then begin
        advance st;
        Some (ident st)
      end
      else None
    in
    Ast.Create_index { index; table; column; unique; using }
  end

let parse_insert st =
  expect_kw st "INTO";
  let table = ident st in
  let columns =
    if at_sym st "(" then begin
      advance st;
      let rec loop acc =
        let c = ident st in
        if eat_sym st "," then loop (c :: acc) else List.rev (c :: acc)
      in
      let cols = loop [] in
      expect_sym st ")";
      Some cols
    end
    else None
  in
  if eat_kw st "VALUES" then begin
    let parse_row () =
      expect_sym st "(";
      let row = parse_expr_list st in
      expect_sym st ")";
      row
    in
    let rec rows acc =
      let r = parse_row () in
      if eat_sym st "," then rows (r :: acc) else List.rev (r :: acc)
    in
    Ast.Insert { table; columns; source = Ast.Values (rows []) }
  end
  else if eat_kw st "SELECT" then
    Ast.Insert { table; columns; source = Ast.Query (parse_select_body st) }
  else error st "expected VALUES or SELECT"

(* SELECT body possibly followed by UNION [ALL] SELECT ... *)
let parse_compound st =
  let first = parse_select_body st in
  if not (at_kw st "UNION") then Ast.Select first
  else begin
    let rec unions left =
      if eat_kw st "UNION" then begin
        let all = eat_kw st "ALL" in
        expect_kw st "SELECT";
        let right = Ast.Simple (parse_select_body st) in
        unions (Ast.Union { all; left; right })
      end
      else left
    in
    Ast.Select_compound (unions (Ast.Simple first))
  end

let rec parse_statement st =
  if eat_kw st "SELECT" then parse_compound st
  else if eat_kw st "INSERT" then parse_insert st
  else if eat_kw st "UPDATE" then begin
    let table = ident st in
    expect_kw st "SET";
    let rec assigns acc =
      let col = ident st in
      expect_sym st "=";
      let e = parse_expr st in
      if eat_sym st "," then assigns ((col, e) :: acc)
      else List.rev ((col, e) :: acc)
    in
    let assignments = assigns [] in
    let where = if eat_kw st "WHERE" then Some (parse_expr st) else None in
    Ast.Update { table; assignments; where }
  end
  else if eat_kw st "DELETE" then begin
    expect_kw st "FROM";
    let table = ident st in
    let where = if eat_kw st "WHERE" then Some (parse_expr st) else None in
    Ast.Delete { table; where }
  end
  else if eat_kw st "CREATE" then parse_create st
  else if eat_kw st "DROP" then begin
    if eat_kw st "TABLE" then begin
      let if_exists =
        if eat_kw st "IF" then begin
          expect_kw st "EXISTS";
          true
        end
        else false
      in
      Ast.Drop_table { table = ident st; if_exists }
    end
    else begin
      expect_kw st "INDEX";
      Ast.Drop_index { index = ident st }
    end
  end
  else if eat_kw st "EXPLAIN" then begin
    let analyze = eat_kw st "ANALYZE" in
    Ast.Explain { analyze; target = parse_statement st }
  end
  else if eat_kw st "BEGIN" then begin
    ignore (eat_kw st "WORK" || eat_kw st "TRANSACTION");
    Ast.Begin_tx
  end
  else if eat_kw st "COMMIT" then begin
    ignore (eat_kw st "WORK" || eat_kw st "TRANSACTION");
    Ast.Commit_tx
  end
  else if eat_kw st "ROLLBACK" then begin
    if eat_kw st "TO" then begin
      ignore (eat_kw st "SAVEPOINT");
      Ast.Rollback_to (ident st)
    end
    else begin
      ignore (eat_kw st "WORK" || eat_kw st "TRANSACTION");
      Ast.Rollback_tx
    end
  end
  else if eat_kw st "SAVEPOINT" then Ast.Savepoint (ident st)
  else if eat_kw st "RELEASE" then begin
    ignore (eat_kw st "SAVEPOINT");
    Ast.Release_savepoint (ident st)
  end
  else if eat_kw st "COPY" then begin
    let table = ident st in
    let direction =
      if eat_kw st "TO" then `To
      else if eat_kw st "FROM" then `From
      else error st "expected TO or FROM"
    in
    match next st with
    | Token.String file -> (
      match direction with
      | `To -> Ast.Copy_to { table; file }
      | `From -> Ast.Copy_from { table; file })
    | _ -> error st "expected a quoted file name"
  end
  else if eat_kw st "SET" then begin
    match peek st with
    | Token.Ident s when String.uppercase_ascii s = "NOW" ->
      advance st;
      if eat_kw st "DEFAULT" then Ast.Set_now None
      else begin
        expect_sym st "=";
        Ast.Set_now (Some (parse_expr st))
      end
    | Token.Ident s when String.uppercase_ascii s = "TIMEOUT" ->
      (* SET TIMEOUT n — statement deadline in milliseconds; 0 or
         DEFAULT disables. The [=] is optional for symmetry with NOW. *)
      advance st;
      if eat_kw st "DEFAULT" then Ast.Set_timeout None
      else begin
        ignore (eat_sym st "=");
        match next st with
        | Token.Int n when n >= 0 -> Ast.Set_timeout (Some n)
        | _ -> error st "SET TIMEOUT expects a non-negative integer (ms)"
      end
    | _ -> error st "only SET NOW and SET TIMEOUT are supported"
  end
  else if eat_kw st "SHOW" then begin
    match peek st with
    | Token.Ident s when String.uppercase_ascii s = "TABLES" ->
      advance st;
      Ast.Show_tables
    | Token.Ident s when String.uppercase_ascii s = "METRICS" ->
      advance st;
      Ast.Stats (stats_like st)
    | _ -> error st "expected TABLES or METRICS"
  end
  else if eat_kw st "DESCRIBE" then Ast.Describe { table = ident st }
  else if eat_kw st "CHECKPOINT" then Ast.Checkpoint
  else if eat_kw st "BACKUP" then begin
    (* BACKUP TO 'dir' *)
    if not (eat_kw st "TO") then error st "expected TO";
    match next st with
    | Token.String dir -> Ast.Backup dir
    | _ -> error st "expected a quoted backup directory"
  end
  else if eat_kw st "PROMOTE" then Ast.Promote
  else if eat_kw st "ANALYZE" then begin
    (* ANALYZE [table] — statistics for one table, or every table *)
    match peek st with
    | Token.Ident _ -> Ast.Analyze (Some (ident st))
    | _ -> Ast.Analyze None
  end
  else if eat_kw st "STATS" then Ast.Stats (stats_like st)
  else error st "expected a statement"

(* Optional metric-name filter: STATS LIKE 'wal%'. *)
and stats_like st =
  if eat_kw st "LIKE" then begin
    match next st with
    | Token.String pat -> Some pat
    | _ -> error st "LIKE expects a string pattern"
  end
  else None

(* --- Entry points ------------------------------------------------------ *)

let statement_of_tokens tokens =
  let st = { tokens; pos = 0 } in
  let s = parse_statement st in
  ignore (eat_sym st ";");
  (match peek st with
  | Token.Eof -> ()
  | _ -> error st "trailing input after statement");
  s

let parse sql =
  match Lexer.tokenize sql with
  | tokens -> statement_of_tokens tokens
  | exception Lexer.Error msg -> raise (Error msg)

(* Parses a ';'-separated script. *)
let parse_script sql =
  let tokens =
    try Lexer.tokenize sql with Lexer.Error msg -> raise (Error msg)
  in
  let st = { tokens; pos = 0 } in
  let rec loop acc =
    if peek st = Token.Eof then List.rev acc
    else begin
      let s = parse_statement st in
      ignore (eat_sym st ";");
      loop (s :: acc)
    end
  in
  loop []
