(** Hand-written SQL lexer.

    Understands integer and float literals; ['...'] strings with
    doubled-quote escaping; bare and ["..."]-quoted identifiers; [:name]
    host variables; the Informix [::] cast symbol; [--] line and
    [/* */] block comments; and the usual operator set. *)

exception Error of string

(** Lexes the whole input; the result always ends with {!Token.Eof}.
    @raise Error with position information on malformed input. *)
val tokenize : string -> Token.located array

(** Normalized statement shape (the key of [tip_stat_statements]):
    literals and [:host] variables become [?], bare identifiers fold to
    lowercase, comments/whitespace collapse, tokens re-join with single
    spaces. Quoted identifiers keep their case. Unlexable input returns
    its trimmed raw text instead of raising. *)
val fingerprint : string -> string
