(* Abstract syntax for the SQL dialect.

   The dialect is standard SQL-92 DML/DDL plus the two Informix-isms the
   paper's examples rely on: [expr::Type] explicit casts and [:name] host
   variables, and one TIP convenience statement, [SET NOW], which the
   browser uses for what-if analysis. Identifier case is preserved here;
   name resolution downcases during planning. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Concat

type unop = Not | Neg

type literal =
  | L_int of int
  | L_float of float
  | L_string of string
  | L_bool of bool
  | L_null

type expr =
  | Lit of literal
  | Column of string option * string (* optional table qualifier, column *)
  | Param of string                  (* :name host variable *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list       (* function or aggregate call *)
  | Call_distinct of string * expr   (* aggregate over distinct values *)
  | Count_star
  | Cast of expr * string            (* expr::Type or CAST(expr AS Type) *)
  | Case of (expr * expr) list * expr option
  | In_list of { negated : bool; scrutinee : expr; choices : expr list }
  | Between of { negated : bool; scrutinee : expr; low : expr; high : expr }
  | Like of { negated : bool; scrutinee : expr; pattern : expr }
  | Is_null of { negated : bool; scrutinee : expr }
  | Exists of select                  (* EXISTS (SELECT ...) *)
  | In_select of { negated : bool; scrutinee : expr; query : select }
  | Scalar_subquery of select         (* (SELECT ...) producing one value *)

and order_direction = Asc | Desc

and select_item =
  | Sel_expr of expr * string option (* expression with optional alias *)
  | Sel_star of string option       (* [*] or [t.*] *)

and join_kind = Inner | Left_outer

and table_ref =
  | Table of {
      name : string;
      alias : string option;
      as_of : expr option;
          (* FROM t AS OF <instant>: read the WITH HISTORY shadow table
             as it was at that time *)
    }
  | Join of { left : table_ref; kind : join_kind; right : table_ref; on : expr }
  | Derived of { query : select; alias : string }

and select = {
  distinct : bool;
  items : select_item list;
  from : table_ref list; (* comma-separated; empty for SELECT <exprs> *)
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_direction) list;
  limit : int option;
  offset : int option;
}

type column_def = {
  col_name : string;
  col_type : string;        (* type name as written, resolved by the catalog *)
  col_type_param : int option; (* e.g. CHAR(20) *)
  col_not_null : bool;
  col_primary_key : bool;
}

(* Set operations between SELECTs. Following Informix of the paper's era
   we support UNION and UNION ALL; an ORDER BY/LIMIT written after the
   last arm belongs to that arm (wrap in a derived table to sort the
   whole union). *)
(* PARTITION BY RANGE clause of CREATE TABLE: each partition owns the
   rows whose period starts in [part_from, part_to) (instants as
   written, resolved by the engine); a DEFAULT partition takes
   unbounded/NULL starts. *)
type partition_def = {
  part_name : string;
  part_range : (string * string) option; (* FROM .. TO ..; None = DEFAULT *)
}

type partition_clause = {
  part_column : string;
  part_defs : partition_def list;
}

type compound =
  | Simple of select
  | Union of { all : bool; left : compound; right : compound }

type statement =
  | Select of select
  | Select_compound of compound
  | Insert of {
      table : string;
      columns : string list option;
      source : insert_source;
    }
  | Update of { table : string; assignments : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Create_table of {
      table : string;
      if_not_exists : bool;
      columns : column_def list;
      with_history : bool; (* maintain a transaction-time shadow table *)
      partition_by : partition_clause option; (* range partitioning *)
    }
  | Create_table_as of { table : string; query : select }
  | Drop_table of { table : string; if_exists : bool }
  | Create_index of {
      index : string;
      table : string;
      column : string;
      unique : bool;
      using : string option; (* e.g. USING INTERVAL; None = ordered B+tree *)
    }
  | Drop_index of { index : string }
  | Explain of { analyze : bool; target : statement }
      (* EXPLAIN renders the plan; EXPLAIN ANALYZE also runs it and
         annotates each operator with actual rows and wall time *)
  | Begin_tx
  | Commit_tx
  | Rollback_tx
  | Savepoint of string
  | Rollback_to of string
  | Release_savepoint of string
  | Copy_to of { table : string; file : string }   (* COPY t TO 'f.csv' *)
  | Copy_from of { table : string; file : string } (* COPY t FROM 'f.csv' *)
  | Set_now of expr option (* SET NOW = <expr>; None restores the wall clock *)
  | Set_timeout of int option
    (* SET TIMEOUT <ms>: default statement deadline; None/0 disables *)
  | Show_tables
  | Describe of { table : string }
  | Checkpoint (* snapshot + truncate the WAL (no-op without durability) *)
  | Backup of string
    (* BACKUP TO 'dir': render a consistent online backup (snapshot +
       origin stamp) for point-in-time recovery (tip_restore) *)
  | Promote
    (* PROMOTE: stop following the primary and become writable under a
       bumped promotion epoch; only meaningful on a served replica *)
  | Analyze of string option
    (* collect optimizer statistics for one table, or all when None *)
  | Stats of string option
    (* the metrics registry as rows; SHOW METRICS is an alias; the
       optional LIKE pattern filters metric names *)

and insert_source =
  | Values of expr list list
  | Query of select

(* Immediate subexpressions, for generic tree walks. *)
let children = function
  | Lit _ | Column _ | Param _ | Count_star -> []
  | Binop (_, a, b) -> [ a; b ]
  | Unop (_, e) -> [ e ]
  | Call (_, args) -> args
  | Call_distinct (_, e) -> [ e ]
  | Cast (e, _) -> [ e ]
  | Case (arms, else_) ->
    List.concat_map (fun (c, v) -> [ c; v ]) arms @ Option.to_list else_
  | In_list { scrutinee; choices; _ } -> scrutinee :: choices
  | Between { scrutinee; low; high; _ } -> [ scrutinee; low; high ]
  | Like { scrutinee; pattern; _ } -> [ scrutinee; pattern ]
  | Is_null { scrutinee; _ } -> [ scrutinee ]
  | Exists _ | Scalar_subquery _ -> []
  | In_select { scrutinee; _ } -> [ scrutinee ]

(* Rebuilds a node with [f] applied to each immediate subexpression;
   subquery bodies are left untouched. *)
let map_children f = function
  | (Lit _ | Column _ | Param _ | Count_star) as e -> e
  | Binop (op, a, b) -> Binop (op, f a, f b)
  | Unop (op, e) -> Unop (op, f e)
  | Call (name, args) -> Call (name, List.map f args)
  | Call_distinct (name, e) -> Call_distinct (name, f e)
  | Cast (e, ty) -> Cast (f e, ty)
  | Case (arms, else_) ->
    Case (List.map (fun (c, v) -> (f c, f v)) arms, Option.map f else_)
  | In_list r ->
    In_list { r with scrutinee = f r.scrutinee; choices = List.map f r.choices }
  | Between r ->
    Between { r with scrutinee = f r.scrutinee; low = f r.low; high = f r.high }
  | Like r -> Like { r with scrutinee = f r.scrutinee; pattern = f r.pattern }
  | Is_null r -> Is_null { r with scrutinee = f r.scrutinee }
  | Exists _ as e -> e
  | In_select r -> In_select { r with scrutinee = f r.scrutinee }
  | Scalar_subquery _ as e -> e

(* An empty SELECT skeleton, convenient for building queries in code. *)
let empty_select =
  { distinct = false;
    items = [];
    from = [];
    where = None;
    group_by = [];
    having = None;
    order_by = [];
    limit = None;
    offset = None }
