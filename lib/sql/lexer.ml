(* Hand-written SQL lexer.

   Understands: integer and float literals; '...' string literals with
   doubled-quote escaping; bare and "..."-quoted identifiers; :name host
   variables; the Informix '::' explicit-cast symbol; line (--) and block
   comments; and the usual operator/punctuation set. *)

exception Error of string

let error line column msg =
  raise (Error (Printf.sprintf "lexical error at line %d, column %d: %s" line column msg))

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* position just after the last newline *)
}

let column st = st.pos - st.bol + 1

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  | Some _ | None -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '-' when peek2 st = Some '-' ->
    while peek st <> None && peek st <> Some '\n' do advance st done;
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    let start_line = st.line and start_col = column st in
    advance st;
    advance st;
    let rec close () =
      match peek st with
      | None -> error start_line start_col "unterminated block comment"
      | Some '*' when peek2 st = Some '/' ->
        advance st;
        advance st
      | Some _ ->
        advance st;
        close ()
    in
    close ();
    skip_trivia st
  | Some _ | None -> ()

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    if peek st = Some '.' && (match peek2 st with Some c -> is_digit c | None -> false)
    then begin
      advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done;
      true
    end
    else false
  in
  let is_float =
    match peek st with
    | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | Some _ | None -> ());
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done;
      true
    | Some _ | None -> is_float
  in
  let text = String.sub st.src start (st.pos - start) in
  if is_float then Token.Float (float_of_string text)
  else Token.Int (int_of_string text)

let lex_string st =
  let line = st.line and col = column st in
  advance st; (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error line col "unterminated string literal"
    | Some '\'' when peek2 st = Some '\'' ->
      Buffer.add_char buf '\'';
      advance st;
      advance st;
      go ()
    | Some '\'' -> advance st
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Token.String (Buffer.contents buf)

let lex_quoted_ident st =
  let line = st.line and col = column st in
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error line col "unterminated quoted identifier"
    | Some '"' when peek2 st = Some '"' ->
      Buffer.add_char buf '"';
      advance st;
      advance st;
      go ()
    | Some '"' -> advance st
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Token.Quoted_ident (Buffer.contents buf)

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  Token.Ident (String.sub st.src start (st.pos - start))

(* Two-character symbols first, then single-character ones. *)
let lex_symbol st =
  let line = st.line and col = column st in
  let two =
    if st.pos + 1 < String.length st.src then
      Some (String.sub st.src st.pos 2)
    else None
  in
  match two with
  | Some (("::" | "<=" | ">=" | "<>" | "!=" | "||") as s) ->
    advance st;
    advance st;
    Token.Symbol (if s = "!=" then "<>" else s)
  | Some _ | None ->
    (match peek st with
    | Some (('(' | ')' | ',' | '.' | ';' | '+' | '-' | '*' | '/' | '%'
            | '=' | '<' | '>') as c) ->
      advance st;
      Token.Symbol (String.make 1 c)
    | Some c -> error line col (Printf.sprintf "unexpected character %C" c)
    | None -> Token.Eof)

let next_token st =
  skip_trivia st;
  let line = st.line and col = column st in
  let token =
    match peek st with
    | None -> Token.Eof
    | Some c when is_digit c -> lex_number st
    | Some '\'' -> lex_string st
    | Some '"' -> lex_quoted_ident st
    | Some c when is_ident_start c -> lex_ident st
    | Some ':' when peek2 st = Some ':' -> lex_symbol st
    | Some ':' ->
      advance st;
      (match peek st with
      | Some c when is_ident_start c ->
        (match lex_ident st with
        | Token.Ident name -> Token.Param name
        | Token.Int _ | Token.Float _ | Token.String _ | Token.Quoted_ident _
        | Token.Param _ | Token.Symbol _ | Token.Eof ->
          assert false)
      | Some _ | None -> error line col "expected parameter name after ':'")
    | Some _ -> lex_symbol st
  in
  { Token.token; line; column = col }

(* Lexes the whole input; the resulting array always ends with [Eof]. *)
let tokenize src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let rec go acc =
    let t = next_token st in
    match t.Token.token with
    | Token.Eof -> List.rev (t :: acc)
    | Token.Int _ | Token.Float _ | Token.String _ | Token.Ident _
    | Token.Quoted_ident _ | Token.Param _ | Token.Symbol _ ->
      go (t :: acc)
  in
  Array.of_list (go [])

(* Normalized statement shape for the introspection catalog: every
   literal and host variable collapses to [?], bare identifiers and
   keywords fold to lowercase, comments and whitespace disappear, and
   tokens are re-joined with single spaces. Two statements differing
   only in constants therefore share one fingerprint, while quoted
   identifiers keep their case (they name distinct objects). Input the
   lexer rejects falls back to its trimmed raw text so errors are still
   attributable to *something* in tip_stat_statements. *)
(* Runs on EVERY statement (the engine's introspection hook), so it is a
   hand-rolled single pass over the source — same token boundaries as
   [tokenize], but no token array, no locations, no literal decoding:
   the only allocation is the output buffer. *)
let fingerprint src =
  let len = String.length src in
  let buf = Buffer.create len in
  let exception Fallback in
  let emit_sep () = if Buffer.length buf > 0 then Buffer.add_char buf ' ' in
  try
    let i = ref 0 in
    (* no options, no substrings: this runs on every statement *)
    let next_is c = !i + 1 < len && src.[!i + 1] = c in
    while !i < len do
      match src.[!i] with
      | ' ' | '\t' | '\r' | '\n' -> incr i
      | '-' when next_is '-' ->
        while !i < len && src.[!i] <> '\n' do incr i done
      | '/' when next_is '*' ->
        i := !i + 2;
        let closed = ref false in
        while not !closed do
          if !i >= len then raise Fallback
          else if src.[!i] = '*' && next_is '/' then begin
            i := !i + 2;
            closed := true
          end
          else incr i
        done
      | '0' .. '9' ->
        while !i < len && is_digit src.[!i] do incr i done;
        if
          !i < len
          && src.[!i] = '.'
          && !i + 1 < len
          && is_digit src.[!i + 1]
        then begin
          incr i;
          while !i < len && is_digit src.[!i] do incr i done
        end;
        if !i < len && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          incr i;
          if !i < len && (src.[!i] = '+' || src.[!i] = '-') then incr i;
          while !i < len && is_digit src.[!i] do incr i done
        end;
        emit_sep ();
        Buffer.add_char buf '?'
      | '\'' ->
        incr i;
        let closed = ref false in
        while not !closed do
          if !i >= len then raise Fallback
          else if src.[!i] = '\'' && next_is '\'' then i := !i + 2
          else if src.[!i] = '\'' then begin
            incr i;
            closed := true
          end
          else incr i
        done;
        emit_sep ();
        Buffer.add_char buf '?'
      | '"' ->
        incr i;
        emit_sep ();
        Buffer.add_char buf '"';
        let closed = ref false in
        while not !closed do
          if !i >= len then raise Fallback
          else if src.[!i] = '"' && next_is '"' then begin
            Buffer.add_char buf '"';
            i := !i + 2
          end
          else if src.[!i] = '"' then begin
            incr i;
            closed := true
          end
          else begin
            Buffer.add_char buf src.[!i];
            incr i
          end
        done;
        Buffer.add_char buf '"'
      | c when is_ident_start c ->
        emit_sep ();
        while !i < len && is_ident_char src.[!i] do
          Buffer.add_char buf (Char.lowercase_ascii src.[!i]);
          incr i
        done
      | ':' when next_is ':' ->
        i := !i + 2;
        emit_sep ();
        Buffer.add_string buf "::"
      | ':' ->
        if !i + 1 < len && is_ident_start src.[!i + 1] then begin
          incr i;
          while !i < len && is_ident_char src.[!i] do incr i done;
          emit_sep ();
          Buffer.add_char buf '?'
        end
        else raise Fallback
      | '<' when next_is '=' || next_is '>' ->
        emit_sep ();
        Buffer.add_string buf (if next_is '=' then "<=" else "<>");
        i := !i + 2
      | '>' when next_is '=' ->
        i := !i + 2;
        emit_sep ();
        Buffer.add_string buf ">="
      | '!' when next_is '=' ->
        i := !i + 2;
        emit_sep ();
        Buffer.add_string buf "<>"
      | '|' when next_is '|' ->
        i := !i + 2;
        emit_sep ();
        Buffer.add_string buf "||"
      | ( '(' | ')' | ',' | '.' | ';' | '+' | '-' | '*' | '/' | '%' | '='
        | '<' | '>' ) as c ->
        incr i;
        emit_sep ();
        Buffer.add_char buf c
      | _ -> raise Fallback
    done;
    Buffer.contents buf
  with Fallback -> String.trim src
