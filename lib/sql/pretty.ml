(* Renders the AST back to SQL text.

   Output is canonical (fully parenthesized expressions, upper-case
   keywords) so that print-then-parse is the identity up to redundant
   parentheses — which the round-trip tests rely on. *)

let binop_symbol = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "="
  | Ast.Neq -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "AND"
  | Ast.Or -> "OR"
  | Ast.Concat -> "||"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_literal ppf = function
  | Ast.L_int n -> Fmt.int ppf n
  | Ast.L_float f -> Fmt.pf ppf "%g" f
  | Ast.L_string s -> Fmt.pf ppf "'%s'" (escape_string s)
  | Ast.L_bool b -> Fmt.string ppf (if b then "TRUE" else "FALSE")
  | Ast.L_null -> Fmt.string ppf "NULL"

let rec pp_expr ppf = function
  | Ast.Lit l -> pp_literal ppf l
  | Ast.Column (None, c) -> Fmt.string ppf c
  | Ast.Column (Some q, c) -> Fmt.pf ppf "%s.%s" q c
  | Ast.Param p -> Fmt.pf ppf ":%s" p
  | Ast.Binop (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b
  | Ast.Unop (Ast.Not, e) -> Fmt.pf ppf "(NOT %a)" pp_expr e
  | Ast.Unop (Ast.Neg, e) -> Fmt.pf ppf "(-%a)" pp_expr e
  | Ast.Call (f, args) ->
    Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") pp_expr) args
  | Ast.Call_distinct (f, e) -> Fmt.pf ppf "%s(DISTINCT %a)" f pp_expr e
  | Ast.Count_star -> Fmt.string ppf "COUNT(*)"
  | Ast.Cast (e, ty) -> Fmt.pf ppf "%a::%s" pp_cast_operand e ty
  | Ast.Case (arms, else_) ->
    Fmt.string ppf "CASE";
    List.iter
      (fun (c, v) -> Fmt.pf ppf " WHEN %a THEN %a" pp_expr c pp_expr v)
      arms;
    Option.iter (fun e -> Fmt.pf ppf " ELSE %a" pp_expr e) else_;
    Fmt.string ppf " END"
  | Ast.In_list { negated; scrutinee; choices } ->
    Fmt.pf ppf "(%a %sIN (%a))" pp_expr scrutinee
      (if negated then "NOT " else "")
      (Fmt.list ~sep:(Fmt.any ", ") pp_expr)
      choices
  | Ast.Between { negated; scrutinee; low; high } ->
    Fmt.pf ppf "(%a %sBETWEEN %a AND %a)" pp_expr scrutinee
      (if negated then "NOT " else "")
      pp_expr low pp_expr high
  | Ast.Like { negated; scrutinee; pattern } ->
    Fmt.pf ppf "(%a %sLIKE %a)" pp_expr scrutinee
      (if negated then "NOT " else "")
      pp_expr pattern
  | Ast.Is_null { negated; scrutinee } ->
    Fmt.pf ppf "(%a IS %sNULL)" pp_expr scrutinee (if negated then "NOT " else "")
  | Ast.Exists q -> Fmt.pf ppf "(EXISTS (%a))" pp_select q
  | Ast.In_select { negated; scrutinee; query } ->
    Fmt.pf ppf "(%a %sIN (%a))" pp_expr scrutinee
      (if negated then "NOT " else "")
      pp_select query
  | Ast.Scalar_subquery q -> Fmt.pf ppf "(%a)" pp_select q

(* The cast operand must re-parse as a primary, so wrap anything else. *)
and pp_cast_operand ppf e =
  match e with
  | Ast.Lit _ | Ast.Column _ | Ast.Param _ | Ast.Call _ | Ast.Call_distinct _
  | Ast.Count_star | Ast.Cast _ | Ast.Scalar_subquery _ -> pp_expr ppf e
  | Ast.Binop _ | Ast.Unop _ | Ast.Case _ | Ast.In_list _ | Ast.Between _
  | Ast.Like _ | Ast.Is_null _ | Ast.Exists _ | Ast.In_select _ ->
    Fmt.pf ppf "(%a)" pp_expr e

and pp_select_item ppf = function
  | Ast.Sel_star None -> Fmt.string ppf "*"
  | Ast.Sel_star (Some t) -> Fmt.pf ppf "%s.*" t
  | Ast.Sel_expr (e, None) -> pp_expr ppf e
  | Ast.Sel_expr (e, Some alias) -> Fmt.pf ppf "%a AS %s" pp_expr e alias

and pp_table_ref ppf = function
  | Ast.Table { name; alias; as_of } ->
    Fmt.string ppf name;
    Option.iter (fun a -> Fmt.pf ppf " %s" a) alias;
    Option.iter (fun e -> Fmt.pf ppf " AS OF %a" pp_expr e) as_of
  | Ast.Join { left; kind; right; on } ->
    let kw = match kind with Ast.Inner -> "JOIN" | Ast.Left_outer -> "LEFT JOIN" in
    Fmt.pf ppf "%a %s %a ON %a" pp_table_ref left kw pp_table_ref right pp_expr on
  | Ast.Derived { query; alias } ->
    Fmt.pf ppf "(%a) %s" pp_select query alias

and pp_select ppf (s : Ast.select) =
  Fmt.string ppf "SELECT ";
  if s.distinct then Fmt.string ppf "DISTINCT ";
  Fmt.list ~sep:(Fmt.any ", ") pp_select_item ppf s.items;
  (match s.from with
  | [] -> ()
  | from -> Fmt.pf ppf " FROM %a" (Fmt.list ~sep:(Fmt.any ", ") pp_table_ref) from);
  Option.iter (fun e -> Fmt.pf ppf " WHERE %a" pp_expr e) s.where;
  (match s.group_by with
  | [] -> ()
  | gs -> Fmt.pf ppf " GROUP BY %a" (Fmt.list ~sep:(Fmt.any ", ") pp_expr) gs);
  Option.iter (fun e -> Fmt.pf ppf " HAVING %a" pp_expr e) s.having;
  (match s.order_by with
  | [] -> ()
  | os ->
    let pp_order ppf (e, dir) =
      Fmt.pf ppf "%a%s" pp_expr e
        (match dir with Ast.Asc -> "" | Ast.Desc -> " DESC")
    in
    Fmt.pf ppf " ORDER BY %a" (Fmt.list ~sep:(Fmt.any ", ") pp_order) os);
  Option.iter (fun n -> Fmt.pf ppf " LIMIT %d" n) s.limit;
  Option.iter (fun n -> Fmt.pf ppf " OFFSET %d" n) s.offset

let pp_column_def ppf (c : Ast.column_def) =
  Fmt.pf ppf "%s %s" c.col_name c.col_type;
  Option.iter (fun n -> Fmt.pf ppf "(%d)" n) c.col_type_param;
  if c.col_primary_key then Fmt.string ppf " PRIMARY KEY"
  else if c.col_not_null then Fmt.string ppf " NOT NULL"

let rec pp_compound ppf = function
  | Ast.Simple s -> pp_select ppf s
  | Ast.Union { all; left; right } ->
    Fmt.pf ppf "%a UNION %s%a" pp_compound left
      (if all then "ALL " else "")
      pp_compound right

and pp_statement ppf = function
  | Ast.Select s -> pp_select ppf s
  | Ast.Select_compound c -> pp_compound ppf c
  | Ast.Insert { table; columns; source } ->
    Fmt.pf ppf "INSERT INTO %s" table;
    Option.iter
      (fun cols -> Fmt.pf ppf " (%a)" (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) cols)
      columns;
    (match source with
    | Ast.Values rows ->
      let pp_row ppf row =
        Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_expr) row
      in
      Fmt.pf ppf " VALUES %a" (Fmt.list ~sep:(Fmt.any ", ") pp_row) rows
    | Ast.Query q -> Fmt.pf ppf " %a" pp_select q)
  | Ast.Update { table; assignments; where } ->
    let pp_assign ppf (c, e) = Fmt.pf ppf "%s = %a" c pp_expr e in
    Fmt.pf ppf "UPDATE %s SET %a" table
      (Fmt.list ~sep:(Fmt.any ", ") pp_assign)
      assignments;
    Option.iter (fun e -> Fmt.pf ppf " WHERE %a" pp_expr e) where
  | Ast.Delete { table; where } ->
    Fmt.pf ppf "DELETE FROM %s" table;
    Option.iter (fun e -> Fmt.pf ppf " WHERE %a" pp_expr e) where
  | Ast.Create_table { table; if_not_exists; columns; with_history; partition_by }
    ->
    Fmt.pf ppf "CREATE TABLE %s%s (%a)"
      (if if_not_exists then "IF NOT EXISTS " else "")
      table
      (Fmt.list ~sep:(Fmt.any ", ") pp_column_def)
      columns;
    Option.iter
      (fun { Ast.part_column; part_defs } ->
        let pp_part ppf { Ast.part_name; part_range } =
          match part_range with
          | Some (f, t) ->
            Fmt.pf ppf "PARTITION %s FOR VALUES FROM '%s' TO '%s'" part_name
              (escape_string f) (escape_string t)
          | None -> Fmt.pf ppf "PARTITION %s DEFAULT" part_name
        in
        Fmt.pf ppf " PARTITION BY RANGE (%s) (%a)" part_column
          (Fmt.list ~sep:(Fmt.any ", ") pp_part)
          part_defs)
      partition_by;
    if with_history then Fmt.pf ppf " WITH HISTORY"
  | Ast.Create_table_as { table; query } ->
    Fmt.pf ppf "CREATE TABLE %s AS %a" table pp_select query
  | Ast.Drop_table { table; if_exists } ->
    Fmt.pf ppf "DROP TABLE %s%s" (if if_exists then "IF EXISTS " else "") table
  | Ast.Create_index { index; table; column; unique; using } ->
    Fmt.pf ppf "CREATE %sINDEX %s ON %s (%s)%s"
      (if unique then "UNIQUE " else "")
      index table column
      (match using with Some u -> " USING " ^ u | None -> "")
  | Ast.Drop_index { index } -> Fmt.pf ppf "DROP INDEX %s" index
  | Ast.Explain { analyze; target } ->
    Fmt.pf ppf "EXPLAIN %s%a" (if analyze then "ANALYZE " else "") pp_statement target
  | Ast.Begin_tx -> Fmt.string ppf "BEGIN"
  | Ast.Commit_tx -> Fmt.string ppf "COMMIT"
  | Ast.Rollback_tx -> Fmt.string ppf "ROLLBACK"
  | Ast.Savepoint name -> Fmt.pf ppf "SAVEPOINT %s" name
  | Ast.Rollback_to name -> Fmt.pf ppf "ROLLBACK TO SAVEPOINT %s" name
  | Ast.Release_savepoint name -> Fmt.pf ppf "RELEASE SAVEPOINT %s" name
  | Ast.Copy_to { table; file } ->
    Fmt.pf ppf "COPY %s TO '%s'" table (escape_string file)
  | Ast.Copy_from { table; file } ->
    Fmt.pf ppf "COPY %s FROM '%s'" table (escape_string file)
  | Ast.Set_now None -> Fmt.string ppf "SET NOW DEFAULT"
  | Ast.Set_now (Some e) -> Fmt.pf ppf "SET NOW = %a" pp_expr e
  | Ast.Set_timeout None -> Fmt.string ppf "SET TIMEOUT DEFAULT"
  | Ast.Set_timeout (Some ms) -> Fmt.pf ppf "SET TIMEOUT %d" ms
  | Ast.Show_tables -> Fmt.string ppf "SHOW TABLES"
  | Ast.Describe { table } -> Fmt.pf ppf "DESCRIBE %s" table
  | Ast.Checkpoint -> Fmt.string ppf "CHECKPOINT"
  | Ast.Backup dir -> Fmt.pf ppf "BACKUP TO '%s'" (escape_string dir)
  | Ast.Promote -> Fmt.string ppf "PROMOTE"
  | Ast.Analyze None -> Fmt.string ppf "ANALYZE"
  | Ast.Analyze (Some table) -> Fmt.pf ppf "ANALYZE %s" table
  | Ast.Stats None -> Fmt.string ppf "STATS"
  | Ast.Stats (Some pat) ->
    Fmt.pf ppf "STATS LIKE '%s'" (escape_string pat)

let expr_to_string e = Fmt.str "%a" pp_expr e
let statement_to_string s = Fmt.str "%a" pp_statement s
