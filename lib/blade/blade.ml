(* The TIP DataBlade: installs the temporal types and the full routine
   collection into a database.

   After [install db], the five TIP datatypes and some forty routines
   behave as if they were built into the DBMS, exactly as the paper's
   DataBlade does for Informix: string literals cast automatically into
   temporal types, arithmetic and comparison operators are overloaded,
   Allen's operators work on periods, the element set algebra and the
   [group_union] aggregate (temporal coalescing) are available from plain
   SQL, and [overlaps]/[contains] calls against constants can be answered
   by interval indexes.

   Naming note: SQL keywords force two renamings relative to the math —
   the end of a period/element is [finish(x)] (END is reserved) and
   set-theoretic complement within a period is [complement(x, p)]. *)

open Tip_core
open Tip_storage
open Values

let bool_value b = Value.Bool b

let option_value f = function None -> Value.Null | Some x -> f x

(* --- Installation ------------------------------------------------------------ *)

let install_casts ext =
  let open Tip_engine.Extension in
  (* Automatic casts from SQL strings (implicit), and back (explicit). *)
  let string_casts =
    [ (chronon_type, fun s -> chronon (Chronon.of_string_exn s));
      (span_type, fun s -> span (Span.of_string_exn s));
      (instant_type, fun s -> instant (Instant.of_string_exn s));
      (period_type, fun s -> period (Period.of_string_exn s));
      (element_type, fun s -> element (Element.of_string_exn s)) ]
  in
  List.iter
    (fun (ty, parse) ->
      register_cast ext ~from_type:"char" ~to_type:ty ~implicit:true
        (fun ~now:_ v ->
          match parse (Value.to_string_value v) with
          | v -> v
          | exception Scan.Parse_error msg -> raise (Value.Type_error msg));
      register_cast ext ~from_type:ty ~to_type:"char" (fun ~now:_ v ->
          Value.Str (Value.to_display_string v)))
    string_casts;
  (* Widening chain: chronon -> instant -> period -> element (implicit). *)
  register_cast ext ~from_type:chronon_type ~to_type:instant_type ~implicit:true
    (fun ~now:_ v -> instant (Instant.of_chronon (as_chronon v)));
  register_cast ext ~from_type:chronon_type ~to_type:period_type ~implicit:true
    ~cost:2 (fun ~now:_ v -> period (Period.of_chronon (as_chronon v)));
  register_cast ext ~from_type:chronon_type ~to_type:element_type ~implicit:true
    ~cost:3
    (fun ~now:_ v -> element (Element.of_period (Period.of_chronon (as_chronon v))));
  register_cast ext ~from_type:instant_type ~to_type:period_type ~implicit:true
    (fun ~now:_ v ->
      let i = as_instant v in
      period (Period.of_instants i i));
  register_cast ext ~from_type:instant_type ~to_type:element_type ~implicit:true
    ~cost:2
    (fun ~now:_ v ->
      let i = as_instant v in
      element (Element.of_period (Period.of_instants i i)));
  register_cast ext ~from_type:period_type ~to_type:element_type ~implicit:true
    (fun ~now:_ v -> element (Element.of_period (as_period v)));
  (* Narrowing casts bind NOW; they are explicit, as in the paper's
     "NOW-1 becomes 1999-08-31" example. *)
  register_cast ext ~from_type:instant_type ~to_type:chronon_type
    (fun ~now v -> chronon (Instant.bind ~now (as_instant v)));
  (* SQL DATE interoperates with Chronon. *)
  register_cast ext ~from_type:"date" ~to_type:chronon_type ~implicit:true
    (fun ~now:_ v -> chronon (Value.to_date v));
  register_cast ext ~from_type:chronon_type ~to_type:"date" (fun ~now:_ v ->
      Value.Date (Chronon.start_of_day (as_chronon v)));
  register_cast ext ~from_type:"date" ~to_type:instant_type ~implicit:true
    ~cost:2 (fun ~now:_ v -> instant (Instant.of_chronon (Value.to_date v)));
  register_cast ext ~from_type:"date" ~to_type:period_type ~implicit:true
    ~cost:3 (fun ~now:_ v -> period (Period.of_chronon (Value.to_date v)));
  register_cast ext ~from_type:"date" ~to_type:element_type ~implicit:true
    ~cost:4
    (fun ~now:_ v -> element (Element.of_period (Period.of_chronon (Value.to_date v))));
  (* Spans convert to/from their length in seconds (explicitly). *)
  register_cast ext ~from_type:span_type ~to_type:"int" (fun ~now:_ v ->
      Value.Int (Span.to_seconds (as_span v)));
  register_cast ext ~from_type:"int" ~to_type:span_type (fun ~now:_ v ->
      span (Span.of_seconds (Value.to_int v)))

let install_operators ext =
  let open Tip_engine.Extension in
  let r name params impl = register_routine ext ~name ~params impl in
  let p_chronon = P_ext chronon_type
  and p_span = P_ext span_type
  and p_instant = P_ext instant_type
  and p_period = P_ext period_type
  and p_element = P_ext element_type in
  (* Arithmetic. A chronon plus a chronon stays a type error, as the
     paper insists. *)
  r "+" [ p_chronon; p_span ] (fun ~now:_ a ->
      chronon (Chronon.add (as_chronon a.(0)) (as_span a.(1))));
  r "+" [ p_span; p_chronon ] (fun ~now:_ a ->
      chronon (Chronon.add (as_chronon a.(1)) (as_span a.(0))));
  r "+" [ p_span; p_span ] (fun ~now:_ a ->
      span (Span.add (as_span a.(0)) (as_span a.(1))));
  r "+" [ p_instant; p_span ] (fun ~now:_ a ->
      instant (Instant.add (as_instant a.(0)) (as_span a.(1))));
  r "+" [ p_span; p_instant ] (fun ~now:_ a ->
      instant (Instant.add (as_instant a.(1)) (as_span a.(0))));
  r "-" [ p_chronon; p_chronon ] (fun ~now:_ a ->
      span (Chronon.diff (as_chronon a.(0)) (as_chronon a.(1))));
  r "-" [ p_chronon; p_span ] (fun ~now:_ a ->
      chronon (Chronon.sub (as_chronon a.(0)) (as_span a.(1))));
  r "-" [ p_span; p_span ] (fun ~now:_ a ->
      span (Span.sub (as_span a.(0)) (as_span a.(1))));
  r "-" [ p_instant; p_span ] (fun ~now:_ a ->
      instant (Instant.sub (as_instant a.(0)) (as_span a.(1))));
  r "-" [ p_instant; p_instant ] (fun ~now a ->
      span (Instant.diff ~now (as_instant a.(0)) (as_instant a.(1))));
  r "*" [ p_span; P_int ] (fun ~now:_ a ->
      span (Span.scale_int (as_span a.(0)) (Value.to_int a.(1))));
  r "*" [ P_int; p_span ] (fun ~now:_ a ->
      span (Span.scale_int (as_span a.(1)) (Value.to_int a.(0))));
  r "*" [ p_span; P_float ] (fun ~now:_ a ->
      span (Span.scale_float (as_span a.(0)) (Value.to_float a.(1))));
  r "*" [ P_float; p_span ] (fun ~now:_ a ->
      span (Span.scale_float (as_span a.(1)) (Value.to_float a.(0))));
  r "/" [ p_span; P_int ] (fun ~now:_ a ->
      let d = Value.to_int a.(1) in
      if d = 0 then raise (Value.Type_error "span division by zero");
      span (Span.of_seconds (Span.to_seconds (as_span a.(0)) / d)));
  r "/" [ p_span; p_span ] (fun ~now:_ a ->
      Value.Float (Span.ratio (as_span a.(0)) (as_span a.(1))));
  r "neg" [ p_span ] (fun ~now:_ a -> span (Span.neg (as_span a.(0))));
  (* NOW-aware comparisons on instants; chronons reach these through the
     implicit chronon->instant cast, which is how a Chronon column
     compares against NOW-7 and the answer changes as time advances. *)
  let cmp name test =
    r name [ p_instant; p_instant ] (fun ~now a ->
        bool_value (test (Instant.compare_at ~now (as_instant a.(0)) (as_instant a.(1)))))
  in
  cmp "=" (fun c -> c = 0);
  cmp "<>" (fun c -> c <> 0);
  cmp "<" (fun c -> c < 0);
  cmp "<=" (fun c -> c <= 0);
  cmp ">" (fun c -> c > 0);
  cmp ">=" (fun c -> c >= 0);
  (* Structural equality for the set types evaluates under NOW, so
     {[1999-01-01, NOW]} = {[1999-01-01, NOW]} and representation quirks
     (ordering, adjacency) do not matter. *)
  r "=" [ p_period; p_period ] (fun ~now a ->
      bool_value (Period.equal_at ~now (as_period a.(0)) (as_period a.(1))));
  r "<>" [ p_period; p_period ] (fun ~now a ->
      bool_value (not (Period.equal_at ~now (as_period a.(0)) (as_period a.(1)))));
  r "=" [ p_element; p_element ] (fun ~now a ->
      bool_value (Element.equal_at ~now (as_element a.(0)) (as_element a.(1))));
  r "<>" [ p_element; p_element ] (fun ~now a ->
      bool_value (not (Element.equal_at ~now (as_element a.(0)) (as_element a.(1)))))

let install_routines ext =
  let open Tip_engine.Extension in
  let r name params impl = register_routine ext ~name ~params impl in
  let p_chronon = P_ext chronon_type
  and p_span = P_ext span_type
  and p_instant = P_ext instant_type
  and p_period = P_ext period_type
  and p_element = P_ext element_type in
  (* Construction and observation. *)
  register_routine ext ~name:"now" ~params:[] ~strict:false (fun ~now _ ->
      chronon now);
  r "period" [ p_instant; p_instant ] (fun ~now:_ a ->
      period (Period.of_instants (as_instant a.(0)) (as_instant a.(1))));
  r "element" [ p_period ] (fun ~now:_ a ->
      element (Element.of_period (as_period a.(0))));
  r "start" [ p_period ] (fun ~now a ->
      option_value chronon (Period.start_at ~now (as_period a.(0))));
  r "finish" [ p_period ] (fun ~now a ->
      option_value chronon (Period.end_at ~now (as_period a.(0))));
  r "start" [ p_element ] (fun ~now a ->
      option_value chronon (Element.start ~now (as_element a.(0))));
  r "finish" [ p_element ] (fun ~now a ->
      option_value chronon (Element.end_ ~now (as_element a.(0))));
  r "first" [ p_element ] (fun ~now a ->
      option_value period (Element.first ~now (as_element a.(0))));
  r "last" [ p_element ] (fun ~now a ->
      option_value period (Element.last ~now (as_element a.(0))));
  r "extent" [ p_element ] (fun ~now a ->
      option_value period (Element.extent ~now (as_element a.(0))));
  r "duration" [ p_period ] (fun ~now a ->
      option_value span (Period.duration ~now (as_period a.(0))));
  r "length" [ p_period ] (fun ~now a ->
      option_value span (Period.duration ~now (as_period a.(0))));
  r "length" [ p_element ] (fun ~now a ->
      span (Element.length ~now (as_element a.(0))));
  r "count_periods" [ p_element ] (fun ~now a ->
      Value.Int (Element.count ~now (as_element a.(0))));
  r "is_empty" [ p_element ] (fun ~now a ->
      bool_value (Element.is_empty ~now (as_element a.(0))));
  r "normalize" [ p_element ] (fun ~now a ->
      element (Element.normalize ~now (as_element a.(0))));
  (* NOW-preserving append: unlike [union], which evaluates under NOW and
     returns ground periods, [add_period] keeps symbolic endpoints — the
     operation incremental view maintenance needs to open a [t, NOW]
     period that stays open. *)
  r "add_period" [ p_element; p_period ] (fun ~now:_ a ->
      element (Element.add_period (as_period a.(1)) (as_element a.(0))));
  (* Translate every period by a span (symbolic endpoints move too). *)
  r "shift" [ p_element; p_span ] (fun ~now:_ a ->
      let s = as_span a.(1) in
      let shift_period p =
        Period.of_instants
          (Instant.add (Period.start_instant p) s)
          (Instant.add (Period.end_instant p) s)
      in
      element
        (Element.of_periods (List.map shift_period (Element.periods (as_element a.(0))))));
  r "shift" [ p_period; p_span ] (fun ~now:_ a ->
      let p = as_period a.(0) and s = as_span a.(1) in
      period
        (Period.of_instants
           (Instant.add (Period.start_instant p) s)
           (Instant.add (Period.end_instant p) s)));
  (* 1-based access to the normalized periods; NULL past the end. *)
  r "nth_period" [ p_element; P_int ] (fun ~now a ->
      let n = Value.to_int a.(1) in
      let ground = Element.ground ~now (as_element a.(0)) in
      match List.nth_opt ground (n - 1) with
      | Some g -> period (Period.of_ground g)
      | None -> Value.Null);
  (* Civil-calendar helpers on chronons. *)
  r "year" [ p_chronon ] (fun ~now:_ a ->
      Value.Int (Chronon.year (as_chronon a.(0))));
  r "start_of_day" [ p_chronon ] (fun ~now:_ a ->
      chronon (Chronon.start_of_day (as_chronon a.(0))));
  r "month" [ p_chronon ] (fun ~now:_ a ->
      let _, m, _, _, _, _ = Chronon.to_civil (as_chronon a.(0)) in
      Value.Int m);
  r "day" [ p_chronon ] (fun ~now:_ a ->
      let _, _, d, _, _, _ = Chronon.to_civil (as_chronon a.(0)) in
      Value.Int d);
  r "day_of_week" [ p_chronon ] (fun ~now:_ a ->
      Value.Int (Granularity.day_of_week (as_chronon a.(0))));
  (* Granularities (TSQL2's coarser units): the unit is a string
     argument, e.g. trunc(c, 'month'), scale(valid, 'day'). *)
  let granularity_of a =
    match Granularity.of_string (Value.to_string_value a) with
    | Some g -> g
    | None ->
      raise (Value.Type_error (Printf.sprintf "unknown granularity %s"
                                 (Value.to_display_string a)))
  in
  r "trunc" [ p_chronon; P_string ] (fun ~now:_ a ->
      chronon (Granularity.truncate (granularity_of a.(1)) (as_chronon a.(0))));
  r "granule" [ p_chronon; P_string ] (fun ~now:_ a ->
      period
        (Period.of_ground
           (Granularity.granule (granularity_of a.(1)) (as_chronon a.(0)))));
  r "granules_between" [ p_chronon; p_chronon; P_string ] (fun ~now:_ a ->
      Value.Int
        (Granularity.between (granularity_of a.(2)) (as_chronon a.(0))
           (as_chronon a.(1))));
  r "scale" [ p_element; P_string ] (fun ~now a ->
      element (Granularity.scale ~now (granularity_of a.(1)) (as_element a.(0))));
  r "add_months" [ p_chronon; P_int ] (fun ~now:_ a ->
      chronon (Granularity.add_months (as_chronon a.(0)) (Value.to_int a.(1))));
  r "add_years" [ p_chronon; P_int ] (fun ~now:_ a ->
      chronon (Granularity.add_years (as_chronon a.(0)) (Value.to_int a.(1))));
  (* Allen's thirteen operators on periods (empty periods satisfy none). *)
  let allen name relation =
    r name [ p_period; p_period ] (fun ~now a ->
        bool_value
          (Allen.holds ~now relation (as_period a.(0)) (as_period a.(1))))
  in
  allen "before" Allen.Before;
  allen "meets" Allen.Meets;
  allen "overlaps" Allen.Overlaps;
  allen "finished_by" Allen.Finished_by;
  allen "contains" Allen.Contains;
  allen "starts" Allen.Starts;
  allen "equals" Allen.Equals;
  allen "started_by" Allen.Started_by;
  allen "during" Allen.During;
  allen "finishes" Allen.Finishes;
  allen "overlapped_by" Allen.Overlapped_by;
  allen "met_by" Allen.Met_by;
  allen "after" Allen.After;
  r "allen_relation" [ p_period; p_period ] (fun ~now a ->
      option_value
        (fun rel -> Value.Str (Allen.relation_name rel))
        (Allen.classify ~now (as_period a.(0)) (as_period a.(1))));
  (* Element set algebra — the linear-time routines of Section 3. *)
  let binary name impl =
    r name [ p_element; p_element ] (fun ~now a ->
        impl ~now (as_element a.(0)) (as_element a.(1)))
  in
  binary "union" (fun ~now a b -> element (Element.union ~now a b));
  binary "intersect" (fun ~now a b -> element (Element.intersect ~now a b));
  binary "difference" (fun ~now a b -> element (Element.difference ~now a b));
  binary "overlaps" (fun ~now a b -> bool_value (Element.overlaps ~now a b));
  binary "contains" (fun ~now a b -> bool_value (Element.contains ~now a b));
  r "complement" [ p_element; p_period ] (fun ~now a ->
      element
        (Element.complement ~now ~within:(as_period a.(1)) (as_element a.(0))));
  (* Period-level intersection (NULL when disjoint). *)
  r "intersect" [ p_period; p_period ] (fun ~now a ->
      option_value period (Period.intersect ~now (as_period a.(0)) (as_period a.(1))));
  r "span_of" [ p_period; p_period ] (fun ~now a ->
      option_value period (Period.span_of ~now (as_period a.(0)) (as_period a.(1))));
  (* Profile observations (per-instant aggregation results). *)
  let p_profile = P_ext profile_type in
  r "profile_of" [ p_element ] (fun ~now a ->
      profile (Profile.of_element ~now (as_element a.(0))));
  r "value_at" [ p_profile; p_chronon ] (fun ~now:_ a ->
      Value.Int (Profile.value_at (as_profile a.(0)) (as_chronon a.(1))));
  r "max_value" [ p_profile ] (fun ~now:_ a ->
      Value.Int (Profile.max_value (as_profile a.(0))));
  r "argmax" [ p_profile ] (fun ~now:_ a ->
      element (Profile.argmax (as_profile a.(0))));
  r "at_least" [ p_profile; P_int ] (fun ~now:_ a ->
      element (Profile.at_least (as_profile a.(0)) (Value.to_int a.(1))));
  r "integral" [ p_profile ] (fun ~now:_ a ->
      Value.Int (Profile.integral (as_profile a.(0))));
  ignore p_span

let install_aggregates ext =
  let open Tip_engine.Extension in
  (* group_union: the temporal coalescing aggregate of the paper's
     Section 2 — union of a collection of elements. The accumulator is
     an *unnormalized* element: each step just prepends the input's
     periods (union is normalize-of-concatenation, so order is free),
     and one normalize in the finalizer coalesces everything — O(n log n)
     per group instead of a full re-sort-and-sweep per input row. The
     concatenation view also makes partial accumulators mergeable, so
     coalescing runs on the morsel-parallel path. *)
  let concat_elements a b =
    element
      (Element.of_periods
         (List.rev_append (Element.periods a) (Element.periods b)))
  in
  register_aggregate ext ~name:"group_union"
    { agg_init = (fun () -> element Element.empty);
      agg_step =
        (fun ~now:_ acc v ->
          concat_elements (to_element_value v) (as_element acc));
      agg_final = (fun ~now acc -> element (Element.normalize ~now (as_element acc)));
      agg_merge =
        Some
          (fun ~now:_ a b -> concat_elements (as_element a) (as_element b)) };
  (* group_intersect: chronons common to every input element. *)
  register_aggregate ext ~name:"group_intersect"
    { agg_init = (fun () -> Value.Null); (* no input yet *)
      agg_step =
        (fun ~now acc v ->
          if Value.is_null acc then element (to_element_value v)
          else
            element (Element.intersect ~now (as_element acc) (to_element_value v)));
      agg_final = (fun ~now:_ acc -> acc);
      agg_merge =
        Some
          (fun ~now a b ->
            if Value.is_null a then b
            else if Value.is_null b then a
            else element (Element.intersect ~now (as_element a) (as_element b))) };
  (* group_profile: per-instant COUNT — the sequenced aggregation that
     plain element routines cannot express (see EXPERIMENTS.md E12). The
     accumulator collects the grounded inputs; the final sweep builds the
     step function. *)
  register_aggregate ext ~name:"group_profile"
    { agg_init = (fun () -> profile Profile.empty);
      agg_step =
        (fun ~now acc v ->
          (* represent the pending inputs as a profile and merge by
             re-sweeping; inputs per group are typically small *)
          let current = as_profile acc in
          let weighted =
            (Element.ground ~now (to_element_value v), 1)
            :: List.map
                 (fun e -> ([ e.Profile.span_ ], e.Profile.value))
                 (Profile.entries current)
          in
          profile (Profile.of_weighted_ground weighted));
      agg_final = (fun ~now:_ acc -> acc);
      agg_merge =
        Some
          (fun ~now:_ a b ->
            let weighted p =
              List.map
                (fun e -> ([ e.Profile.span_ ], e.Profile.value))
                (Profile.entries (as_profile p))
            in
            profile (Profile.of_weighted_ground (weighted a @ weighted b))) }

let install_planner_hooks ext =
  Tip_engine.Extension.register_interval_sargable ext ~name:"overlaps";
  Tip_engine.Extension.register_interval_sargable ext ~name:"contains";
  (* Transaction time: WITH HISTORY shadow tables carry an Element
     timestamp that opens as {[now, NOW]} and is clipped when the row
     stops being current — the engine drives the mechanics, the blade
     supplies the temporal semantics. *)
  Tip_engine.Extension.register_history_support ext
    { Tip_engine.Extension.timestamp_type = element_type;
      open_timestamp =
        (fun ~now -> element (Element.of_period (Period.since now)));
      close_timestamp =
        (fun ~now tt ->
          let clip =
            Element.of_period
              (Period.of_chronons (Chronon.succ now) (Chronon.of_ymd 9999 12 31))
          in
          element (Element.difference ~now (as_element tt) clip));
      is_open = (fun tt -> Element.is_now_relative (as_element tt));
      timestamp_contains =
        (fun ~now tt at -> Element.contains_chronon ~now (as_element tt) at) };
  Tip_engine.Extension.register_chronon_extractor ext (fun v ->
      match v with
      | Value.Ext (_, V_chronon c) -> Some c
      | Value.Ext (_, V_instant i) ->
        Some (Instant.bind ~now:(Tx_clock.now ()) i)
      | _ -> None)

(* Installs the TIP DataBlade into a database. Idempotent per database
   is not required — install once right after [Database.create]. *)
let install db =
  register_types ();
  let ext = Tip_engine.Database.extension db in
  install_casts ext;
  install_operators ext;
  install_routines ext;
  install_aggregates ext;
  install_planner_hooks ext

(* Convenience: a fresh database with the blade installed. *)
let create_database () =
  let db = Tip_engine.Database.create () in
  install db;
  db
