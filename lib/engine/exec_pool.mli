(** A lazily-initialized, reusable fixed-size pool of OCaml 5 domains
    for intra-query parallelism.

    The pool size defaults to {!Domain.recommended_domain_count} and can
    be overridden with the [TIP_PARALLEL] environment variable;
    [TIP_PARALLEL=1] forces the sequential path. Worker domains are
    spawned on first parallel use and then reused for the life of the
    process (they hold no query state between batches).

    Only one statement executes at a time (the engine is
    single-connection), so batches never overlap; tasks must not submit
    nested batches. *)

(** Upper bound on the pool size ([TIP_PARALLEL] values above it are
    clamped). *)
val max_size : int

(** The pure sizing rule: [env] is the raw [TIP_PARALLEL] value ([None]
    when unset), [recommended] the hardware parallelism. Malformed or
    non-positive overrides fall back to [recommended]; the result is
    clamped to [1, max_size]. *)
val resolve_size : env:string option -> recommended:int -> int

(** The size the environment asks for ({!resolve_size} over the real
    [TIP_PARALLEL] and {!Domain.recommended_domain_count}). *)
val default_size : unit -> int

(** The pool size currently in force: the last {!set_size}, or
    {!default_size}. *)
val size : unit -> int

(** Overrides the pool size (clamped to [1, max_size]) for subsequent
    batches — the bench harness and tests use this to compare sequential
    and parallel execution in one process. Workers already spawned stay
    alive; shrinking just leaves them idle. *)
val set_size : int -> unit

(** [size () <= 1]: callers should not attempt parallel execution. *)
val sequential : unit -> bool

(** Runs the thunks to completion, in parallel across the pool when
    [size () > 1] (the calling domain participates), and returns their
    results in input order. If any thunk raises, the first exception (in
    input order) is re-raised after all tasks finish. Must not be called
    from within a task.

    When [token] is supplied, tasks still queued after the token is
    cancelled are skipped (they fail with [Deadline.Cancelled] without
    executing), so a cancelled batch ends within one task's worth of
    work. *)
val run : ?token:Tip_core.Deadline.t -> (unit -> 'a) list -> 'a list
