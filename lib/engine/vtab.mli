(** Virtual-table registry: system telemetry as ordinary relations.

    The planner resolves a FROM-clause name against the catalog first
    and falls back to this registry, so [SELECT ... FROM
    tip_stat_statements] plans like any other query — filters, joins,
    ORDER BY, LIMIT and EXPLAIN all compose — while a real table of the
    same name shadows the virtual one. Each query materializes a fresh
    snapshot of the provider's rows; virtual scans never run on the
    parallel path.

    Built-in providers: [tip_stat_statements], [tip_stat_metrics] and
    [tip_stat_tables] (registered by {!Database}), plus
    [tip_stat_activity] (registered by the server, which owns the
    session table). *)

open Tip_storage

type provider = {
  vt_name : string;  (** lowercase relation name *)
  vt_cols : string array;  (** lowercase column names *)
  vt_help : string;  (** one-line description *)
  vt_rows : Catalog.t -> Value.t array list;
      (** snapshot of the rows; receives the querying database's
          catalog (global providers ignore it) *)
}

val register : provider -> unit
(** Registers (or replaces) the provider under its lowercase name. *)

val find : string -> provider option
(** Case-insensitive lookup. *)

val names : unit -> string list
(** Registered relation names, sorted. *)
