(* Volcano-style pull execution: a plan runs as a lazy row sequence.

   Joins materialize their build side only; scans, filters, projections
   and limits stream. Aggregation and sorting are blocking, as they must
   be.

   A second, morsel-driven entry point ([collect_parallel]) executes
   planner-approved subtrees on the {!Exec_pool} domain pool: leaf scans
   split into rid-range morsels with the downstream filter/project
   pipeline (and hash-join probes) fused into each morsel task, and
   aggregation runs as per-domain partials merged by group key. Morsel
   outputs concatenate in rid order and group order is normalized to
   first appearance, so the parallel path returns exactly what the
   sequential one would; any plan shape it does not cover falls back to
   the sequential operators below. *)

open Tip_storage
module Ast = Tip_sql.Ast
module Metrics = Tip_obs.Metrics
module Trace = Tip_obs.Trace
module Deadline = Tip_core.Deadline

exception Exec_error of string

(* Registry handles, created once at module init. Scan counts are added
   in bulk (per scan / per morsel), never per row, to keep the
   instrumented hot path within the <3% overhead budget. *)
let m_rows_scanned =
  Metrics.counter "exec_rows_scanned_total"
    ~help:"Rows examined by leaf scans (sequential and morsel paths)"

let m_rows_joined =
  Metrics.counter "exec_rows_joined_total"
    ~help:"Rows emitted by hash-join probes"

let m_rows_coalesced =
  Metrics.counter "exec_rows_coalesced_total"
    ~help:"Rows folded into user-registered aggregates (e.g. group_union)"

let m_agg_rows =
  Metrics.counter "exec_agg_rows_total"
    ~help:"Rows consumed by sequential aggregation"

let m_morsels =
  Metrics.counter "exec_morsels_total" ~help:"Morsel tasks executed on the pool"

let m_parallel_subtrees =
  Metrics.counter "exec_parallel_subtrees_total"
    ~help:"Plan subtrees that took the morsel-parallel path"

let m_queries =
  Metrics.counter "exec_queries_total"
    ~help:"Plans executed through collect_parallel"

(* Hash table keyed by a list of values (group keys / join keys). *)
module Row_key = struct
  type t = Value.t list

  (* One traversal, no length precomputation. *)
  let equal a b =
    let rec go a b =
      match a, b with
      | [], [] -> true
      | x :: a, y :: b -> Value.equal x y && go a b
      | [], _ :: _ | _ :: _, [] -> false
    in
    go a b

  let hash vs = List.fold_left (fun h v -> (h * 31) + Value.hash v) 17 vs
end

module Key_table = Hashtbl.Make (Row_key)

(* Hash table keyed by a whole row, without going through a list (used
   by DISTINCT, where every input row becomes a key). Equality matches
   [Row_key]: element-wise [Value.equal]. *)
module Row_array_key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
    go 0

  let hash row = Array.fold_left (fun h v -> (h * 31) + Value.hash v) 17 row
end

module Row_table = Hashtbl.Make (Row_array_key)

(* Hash table keyed by a single value, for the one-key hash-join fast
   path: probing with the value itself avoids allocating a one-element
   key list per probe row. *)
module Val_key = struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end

module Val_table = Hashtbl.Make (Val_key)

(* --- Aggregate runners -------------------------------------------------- *)

type runner = { step : Value.t array -> unit; final : unit -> Value.t }

let numeric_add a b =
  match a, b with
  | Value.Int x, Value.Int y -> Value.Int (x + y)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
    Value.Float (Value.to_float a +. Value.to_float b)
  | _, _ ->
    raise (Exec_error (Printf.sprintf "SUM/AVG over non-numeric %s"
                         (Value.type_name b)))

let make_runner ctx (spec : Plan.agg_spec) : runner =
  let eval_arg row =
    match spec.arg with
    | Some c -> c ctx row
    | None -> Value.Null
  in
  (* DISTINCT: wrap the runner so each argument value steps once. *)
  let distinct_wrap runner =
    if not spec.Plan.distinct then runner
    else begin
      let seen = Key_table.create 16 in
      { runner with
        step =
          (fun row ->
            let v = eval_arg row in
            if not (Value.is_null v) then begin
              if not (Key_table.mem seen [ v ]) then begin
                Key_table.replace seen [ v ] ();
                runner.step row
              end
            end) }
    end
  in
  distinct_wrap
  @@
  match spec.impl with
  | Plan.Agg_count_star ->
    let n = ref 0 in
    { step = (fun _ -> incr n); final = (fun () -> Value.Int !n) }
  | Plan.Agg_count ->
    let n = ref 0 in
    { step = (fun row -> if not (Value.is_null (eval_arg row)) then incr n);
      final = (fun () -> Value.Int !n) }
  | Plan.Agg_sum ->
    let acc = ref Value.Null in
    { step =
        (fun row ->
          let v = eval_arg row in
          if not (Value.is_null v) then
            acc := if Value.is_null !acc then v else numeric_add !acc v);
      final = (fun () -> !acc) }
  | Plan.Agg_avg ->
    let acc = ref Value.Null and n = ref 0 in
    { step =
        (fun row ->
          let v = eval_arg row in
          if not (Value.is_null v) then begin
            acc := (if Value.is_null !acc then v else numeric_add !acc v);
            incr n
          end);
      final =
        (fun () ->
          if !n = 0 then Value.Null
          else Value.Float (Value.to_float !acc /. float_of_int !n)) }
  | Plan.Agg_min | Plan.Agg_max ->
    let keep_smaller = spec.impl = Plan.Agg_min in
    let acc = ref Value.Null in
    { step =
        (fun row ->
          let v = eval_arg row in
          if not (Value.is_null v) then
            if Value.is_null !acc then acc := v
            else begin
              let c = Value.compare v !acc in
              if (keep_smaller && c < 0) || ((not keep_smaller) && c > 0) then
                acc := v
            end);
      final = (fun () -> !acc) }
  | Plan.Agg_user (agg, _) ->
    let acc = ref (agg.Extension.agg_init ()) in
    let steps = ref 0 in
    (* The coalesce counter is flushed at finalization rather than paying
       an atomic per input row. *)
    { step =
        (fun row ->
          let v = eval_arg row in
          if not (Value.is_null v) then begin
            incr steps;
            acc := agg.Extension.agg_step ~now:ctx.Expr_eval.now !acc v
          end);
      final =
        (fun () ->
          Metrics.add m_rows_coalesced !steps;
          steps := 0;
          agg.Extension.agg_final ~now:ctx.Expr_eval.now !acc) }

(* --- Sequence helpers ----------------------------------------------------- *)

let seq_of_list l = List.to_seq l

let concat_rows left right =
  Array.append left right

(* ORDER BY comparison over pre-evaluated key lists. *)
let compare_sort_keys by ka kb =
  let rec go ks1 ks2 dirs =
    match ks1, ks2, dirs with
    | [], [], [] -> 0
    | k1 :: t1, k2 :: t2, (_, dir) :: td ->
      let c = Value.compare k1 k2 in
      let c = match dir with Ast.Asc -> c | Ast.Desc -> -c in
      if c <> 0 then c else go t1 t2 td
    | _, _, _ -> 0
  in
  go ka kb by

(* Bounded top-k for ORDER BY ... LIMIT: keeps the k first rows of the
   stable sort without materializing the input, using a size-k max-heap
   ordered by (sort keys, arrival index) — arrival index makes the order
   total, so the result is exactly the stable sort's prefix. *)
let top_k ctx by k input : Value.t array list =
  if k <= 0 then []
  else begin
    let cmp_elt (ka, ia, _) (kb, ib, _) =
      let c = compare_sort_keys by ka kb in
      if c <> 0 then c else Int.compare ia ib
    in
    let heap = Array.make k None in
    let size = ref 0 in
    let elt i = match heap.(i) with Some e -> e | None -> assert false in
    let swap i j =
      let tmp = heap.(i) in
      heap.(i) <- heap.(j);
      heap.(j) <- tmp
    in
    let rec sift_up i =
      if i > 0 then begin
        let p = (i - 1) / 2 in
        if cmp_elt (elt p) (elt i) < 0 then begin
          swap p i;
          sift_up p
        end
      end
    in
    let rec sift_down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let largest = ref i in
      if l < !size && cmp_elt (elt l) (elt !largest) > 0 then largest := l;
      if r < !size && cmp_elt (elt r) (elt !largest) > 0 then largest := r;
      if !largest <> i then begin
        swap i !largest;
        sift_down !largest
      end
    in
    let arrival = ref 0 in
    Seq.iter
      (fun row ->
        let key = List.map (fun (c, _) -> c ctx row) by in
        let e = (key, !arrival, row) in
        incr arrival;
        if !size < k then begin
          heap.(!size) <- Some e;
          incr size;
          sift_up (!size - 1)
        end
        else if cmp_elt e (elt 0) < 0 then begin
          heap.(0) <- Some e;
          sift_down 0
        end)
      input;
    let kept = Array.init !size elt in
    Array.sort cmp_elt kept;
    Array.to_list (Array.map (fun (_, _, row) -> row) kept)
  end

(* --- Execution -------------------------------------------------------------- *)

(* The operator bodies are parameterized by the function used to run
   child plans, so the same code serves the purely sequential executor
   ([run] recurses with itself) and the hybrid one ([run_hybrid]
   recurses with a function that diverts parallel-safe subtrees to the
   domain pool). *)

type recurse = Expr_eval.ctx -> Plan.t -> Value.t array Seq.t

(* EXPLAIN ANALYZE support: wrap a child sequence so that every pull
   (including the first, which performs any eager work of the operator
   body) accrues wall time into [stats.actual_ns] and every produced row
   bumps [stats.actual_rows]. Timings are inclusive of children, like
   the usual EXPLAIN ANALYZE convention. *)
let instrumented_seq (stats : Plan.op_stats) (produce : unit -> Value.t array Seq.t) :
    Value.t array Seq.t =
  let rec wrap force () =
    let t0 = Trace.now_ns () in
    let node = force () in
    ignore (Atomic.fetch_and_add stats.Plan.actual_ns (Trace.now_ns () - t0));
    match node with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (row, rest) ->
      Atomic.incr stats.Plan.actual_rows;
      Seq.Cons (row, wrap rest)
  in
  wrap (fun () -> (produce ()) ())

(* Leaf-scan body shared by the three scan operators: bulk metric +
   budget charge once per scan, and a cancellation poll every 256 rows
   through a scan-local counter (the shared per-row tick counter is
   costlier on the hot path and buys nothing here). Armed failpoints
   fall back to a poll per row so injected cancellations land at exact
   row boundaries, as the governance fuzz requires. *)
let scan_rows ctx table n rids =
  Metrics.add m_rows_scanned n;
  Deadline.charge_rows_scanned ctx.Expr_eval.token n;
  if Failpoint.active () then
    Seq.filter_map
      (fun rid ->
        Expr_eval.tick ctx;
        Table.get table rid)
      (seq_of_list rids)
  else begin
    let k = ref 0 in
    Seq.filter_map
      (fun rid ->
        incr k;
        if !k land 255 = 0 then Expr_eval.poll ctx;
        Table.get table rid)
      (seq_of_list rids)
  end

(* --- Chunks (batch-at-a-time execution) ---------------------------------- *)

(* Fixed-size chunks of row references with a selection vector: leaf
   scans fill [rows]/[len], filters compact [sel] in place via fused
   kernels ({!Expr_eval.batch_pred}), and projections/joins write fresh
   rows into stage-owned output chunks. Buffers are reused across chunks
   — safe because emitted rows are heap-row references or freshly
   allocated operator outputs, never the chunk buffer itself. *)
let chunk_size = 1024

type chunk = {
  mutable rows : Value.t array array; (* row buffer; first [len] filled *)
  mutable len : int;
  mutable sel : int array; (* selection vector; first [nsel] valid *)
  mutable nsel : int;
}

let make_chunk () =
  { rows = Array.make chunk_size [||];
    len = 0;
    sel = Array.make chunk_size 0;
    nsel = 0 }

(* Grow [rows]/[sel] to hold at least [n] entries (join fan-out can
   exceed the fixed chunk size). *)
let ensure_capacity c n =
  if Array.length c.rows < n then begin
    let rows = Array.make (Stdlib.max n (2 * Array.length c.rows)) [||] in
    Array.blit c.rows 0 rows 0 (Array.length c.rows);
    c.rows <- rows
  end;
  if Array.length c.sel < n then begin
    let sel = Array.make (Stdlib.max n (2 * Array.length c.sel)) 0 in
    Array.blit c.sel 0 sel 0 (Array.length c.sel);
    c.sel <- sel
  end

(* Fill [c] with the live rows of rids[lo, lo+len) (at most [chunk_size])
   and reset the selection vector to identity. *)
let fill_chunk table (rids : int array) lo len c =
  let n = ref 0 in
  for i = lo to lo + len - 1 do
    match Table.get table rids.(i) with
    | Some row ->
      c.rows.(!n) <- row;
      c.sel.(!n) <- !n;
      incr n
    | None -> ()
  done;
  c.len <- !n;
  c.nsel <- !n

(* Batch execution toggle: the batch-vs-row differential fuzz and the
   bench's row-mode baseline turn it off to force the row-at-a-time
   operators. *)
let batch_enabled = ref true
let set_batch_enabled b = batch_enabled := b

(* Tables below this stay on the row path even when batching is on:
   chunk setup (selection-vector init, stage allocation) costs more than
   it saves on a handful of rows. Settable so the differential fuzz can
   push its small tables through the batch kernels. *)
let batch_min_rows = ref 256
let set_batch_min_rows n = batch_min_rows := max 0 n

(* Sequential chunk dispatch pays off once at least one operator can
   fuse above a rid-splittable leaf; bare leaves keep the row path
   (scan_rows already bulk-charges). Armed failpoints force the row
   path so per-row poll counts stay exact for the governance fuzz. *)
let batch_shape = function
  | (Plan.Filter _ | Plan.Project _ | Plan.Hash_join _) as p ->
    Plan.parallel_pipeline p
  | _ -> false

(* A compiled chunk pipeline: a leaf rid snapshot plus a stage factory.
   Calling the factory instantiates the fused chunk transform for one
   task — stages own reusable output chunks, so every concurrent morsel
   task needs its own instance, while the read-only state underneath
   (compiled kernels, materialized hash-join build tables) is shared. *)
type par_source = { par_table : Table.t; par_rids : int array }

let rec run_with (recurse : recurse) ctx (plan : Plan.t) : Value.t array Seq.t =
  match run_chunked ctx plan with
  | Some rows -> rows
  | None -> run_rows recurse ctx plan

and run_rows (recurse : recurse) ctx (plan : Plan.t) : Value.t array Seq.t =
  match plan with
  | Plan.One_row -> Seq.return [||]
  | Plan.Virtual_scan { produce; _ } ->
    (* Providers materialize a snapshot; charge it like a scan so
       governance budgets and metrics see virtual rows too. *)
    let rows = produce () in
    let n = List.length rows in
    Metrics.add m_rows_scanned n;
    Deadline.charge_rows_scanned ctx.Expr_eval.token n;
    Seq.map
      (fun row ->
        Expr_eval.tick ctx;
        row)
      (seq_of_list rows)
  | Plan.Instrument { input; stats } ->
    instrumented_seq stats (fun () -> recurse ctx input)
  | Plan.Seq_scan { table; _ } ->
    (* Snapshot the rid list so concurrent mutation cannot skew the scan. *)
    let rids = Table.rids table in
    scan_rows ctx table (Table.row_count table) rids
  | Plan.Index_scan { table; btree; lo; hi; _ } ->
    (* Rows come back in key order — the planner relies on this to
       satisfy ORDER BY from an index. *)
    let rids = Btree.range btree ~lo ~hi in
    scan_rows ctx table (List.length rids) rids
  | Plan.Interval_scan { table; index; lo; hi; _ } ->
    (* Multi-period values have one index entry per period, so a row can
       match the probe window several times; dedupe before fetching.
       Adaptive fallback: when the window matches most of the table the
       index only adds overhead, and the recheck filter above makes a
       plain scan equivalent — so degrade to one. *)
    let rids = Interval_index.query_overlaps index ~lo ~hi in
    if List.length rids > Table.row_count table / 2 then
      scan_rows ctx table (Table.row_count table) (Table.rids table)
    else begin
      let rids = List.sort_uniq Int.compare rids in
      scan_rows ctx table (List.length rids) rids
    end
  | Plan.Filter { input; pred; _ } ->
    Seq.filter (fun row -> Expr_eval.to_predicate pred ctx row)
      (recurse ctx input)
  | Plan.Nested_loop { left; right } ->
    let right_rows = List.of_seq (recurse ctx right) in
    (* Output cardinality is |left|·|right| — far beyond what the leaf
       scans charged — so tick per emitted row: a cross join over tiny
       inputs is exactly the runaway the governor must catch. *)
    Seq.concat_map
      (fun lrow ->
        Seq.map
          (fun rrow ->
            Expr_eval.tick ctx;
            concat_rows lrow rrow)
          (seq_of_list right_rows))
      (recurse ctx left)
  | Plan.Hash_join { left; right; left_keys; right_keys; build_left; _ } ->
    (* Build on the cost-chosen side, probe from the other; NULL keys
       never join. Output rows are always left-columns ++ right-columns;
       the emission order is probe-major, so it depends on [build_left]
       — a plan property, identical across the row, batch and morsel
       paths. *)
    let build_plan, probe_plan, build_keys, probe_keys =
      if build_left then (left, right, left_keys, right_keys)
      else (right, left, right_keys, left_keys)
    in
    let build = Key_table.create 64 in
    Seq.iter
      (fun brow ->
        let key = List.map (fun c -> c ctx brow) build_keys in
        if not (List.exists Value.is_null key) then begin
          let existing = Option.value (Key_table.find_opt build key) ~default:[] in
          Key_table.replace build key (brow :: existing)
        end)
      (recurse ctx build_plan);
    Seq.concat_map
      (fun prow ->
        let key = List.map (fun c -> c ctx prow) probe_keys in
        if List.exists Value.is_null key then Seq.empty
        else begin
          match Key_table.find_opt build key with
          | None -> Seq.empty
          | Some matches ->
            Metrics.add m_rows_joined (List.length matches);
            (* entries were prepended during build; restore scan order *)
            Seq.map
              (fun brow ->
                Expr_eval.tick ctx;
                if build_left then concat_rows brow prow
                else concat_rows prow brow)
              (seq_of_list (List.rev matches))
        end)
      (recurse ctx probe_plan)
  | Plan.Left_outer_join { left; right; on; right_width; _ } ->
    let right_rows = List.of_seq (recurse ctx right) in
    let nulls = Array.make right_width Value.Null in
    Seq.concat_map
      (fun lrow ->
        Expr_eval.tick ctx;
        let matches =
          List.filter
            (fun rrow -> Expr_eval.to_predicate on ctx (concat_rows lrow rrow))
            right_rows
        in
        match matches with
        | [] -> Seq.return (concat_rows lrow nulls)
        | _ -> Seq.map (fun rrow -> concat_rows lrow rrow) (seq_of_list matches))
      (recurse ctx left)
  | Plan.Project { input; exprs; _ } ->
    Seq.map (fun row -> Array.map (fun c -> c ctx row) exprs)
      (recurse ctx input)
  | Plan.Aggregate { input; keys; aggs; _ } ->
    run_aggregate recurse ctx input keys aggs
  | Plan.Sort { input; by; _ } ->
    let rows = Array.of_seq (recurse ctx input) in
    (* decorate-sort-undecorate: evaluate the keys once per row *)
    let decorated =
      Array.map (fun row -> (List.map (fun (c, _) -> c ctx row) by, row)) rows
    in
    Array.stable_sort
      (fun (ka, _) (kb, _) -> compare_sort_keys by ka kb)
      decorated;
    Seq.map snd (Array.to_seq decorated)
  | Plan.Distinct input ->
    let seen = Row_table.create 64 in
    Seq.filter
      (fun row ->
        if Row_table.mem seen row then false
        else begin
          Row_table.replace seen row ();
          true
        end)
      (recurse ctx input)
  | Plan.Append inputs ->
    List.fold_left
      (fun acc input -> Seq.append acc (recurse ctx input))
      Seq.empty inputs
  | Plan.Partition_scan { children; _ } ->
    (* Partition-wise consumption: each surviving child pipeline goes
       back through [recurse], so it independently takes the batch or
       morsel-parallel path exactly as an unpartitioned scan would. *)
    List.fold_left
      (fun acc child -> Seq.append acc (recurse ctx child))
      Seq.empty children
  | Plan.Limit { input; limit; offset } ->
    let s =
      match limit with
      | Some n -> (
        let k = Stdlib.max 0 (n + Option.value offset ~default:0) in
        match run_topk recurse ctx input k with
        | Some s -> s
        | None ->
          if Plan.parallel_pipeline input then
            (* Streaming input under a limit: stay lazy and sequential so
               the scan stops after [k] rows instead of materializing on
               the pool. *)
            run ctx input
          else recurse ctx input)
      | None -> recurse ctx input
    in
    let s = match offset with Some n -> Seq.drop n s | None -> s in
    (match limit with Some n -> Seq.take n s | None -> s)

and run_aggregate recurse ctx input keys aggs =
  (* Groups in first-appearance order, each with its runner instances;
     emission walks this list so no final table lookup is needed. *)
  let order : (Value.t list * runner list) list ref = ref [] in
  let input_rows = ref 0 in
  (* The common single-key GROUP BY hashes the key value directly; only
     multi-key grouping pays a key-list allocation per row. *)
  let consume =
    match keys with
    | [ ck ] ->
      let groups : runner list Val_table.t = Val_table.create 64 in
      fun row ->
        incr input_rows;
        let key = ck ctx row in
        let runners =
          match Val_table.find_opt groups key with
          | Some runners -> runners
          | None ->
            let runners = List.map (make_runner ctx) aggs in
            Val_table.replace groups key runners;
            order := ([ key ], runners) :: !order;
            runners
        in
        List.iter (fun r -> r.step row) runners
    | _ ->
      let groups : runner list Key_table.t = Key_table.create 64 in
      fun row ->
        incr input_rows;
        let key = List.map (fun c -> c ctx row) keys in
        let runners =
          match Key_table.find_opt groups key with
          | Some runners -> runners
          | None ->
            let runners = List.map (make_runner ctx) aggs in
            Key_table.replace groups key runners;
            order := (key, runners) :: !order;
            runners
        in
        List.iter (fun r -> r.step row) runners
  in
  (* Chunked consumption: when the input is a rid-splittable pipeline
     (including a bare leaf scan), drive chunks straight into the group
     table with no row sequence in between. The pool-backed parallel
     aggregation path is chosen upstream ([try_parallel]) before this
     runs, so only subtrees it declined — pool off, table too small, or
     unmergeable aggregates — land here. *)
  let drive_chunks (src, mk) =
    let nrids = Array.length src.par_rids in
    Metrics.add m_rows_scanned nrids;
    Deadline.charge_rows_scanned ctx.Expr_eval.token nrids;
    let stage = mk () in
    let c = make_chunk () in
    let pos = ref 0 in
    while !pos < nrids do
      Expr_eval.poll ctx;
      let len = Stdlib.min chunk_size (nrids - !pos) in
      fill_chunk src.par_table src.par_rids !pos len c;
      let out = stage c in
      for j = 0 to out.nsel - 1 do
        consume out.rows.(out.sel.(j))
      done;
      pos := !pos + len
    done
  in
  let batch_ok =
    !batch_enabled && (not (Failpoint.active ())) && Exec_pool.sequential ()
  in
  let rec consume_plan plan =
    match
      if batch_ok && Plan.parallel_pipeline plan then
        chunk_pipeline ctx ~min_rows:!batch_min_rows ~mark_parallel:false plan
      else None
    with
    | Some pipeline -> drive_chunks pipeline
    | None -> (
      match plan with
      | Plan.Partition_scan { children; _ } ->
        (* Partition-wise consumption: each surviving child pipeline
           feeds the shared group table chunk-at-a-time on its own, so a
           partitioned aggregate costs the same per row as the
           unpartitioned one. *)
        List.iter consume_plan children
      | _ -> Seq.iter consume (recurse ctx plan))
  in
  consume_plan input;
  Metrics.add m_agg_rows !input_rows;
  let emit (key, runners) =
    Array.of_list (key @ List.map (fun r -> r.final ()) runners)
  in
  if keys = [] && !order = [] then begin
    (* Grand aggregate over an empty input still yields one row. *)
    let runners = List.map (make_runner ctx) aggs in
    Seq.return (emit ([], runners))
  end
  else Seq.map emit (seq_of_list (List.rev !order))

(* LIMIT directly above a Sort — possibly through row-wise Projects —
   needs only the first [k] sorted rows, so a bounded heap replaces the
   full materialize-and-sort. *)
and run_topk recurse ctx plan k : Value.t array Seq.t option =
  match plan with
  | Plan.Instrument { input; stats } ->
    Option.map
      (fun s -> instrumented_seq stats (fun () -> s))
      (run_topk recurse ctx input k)
  | Plan.Project { input; exprs; _ } ->
    Option.map
      (Seq.map (fun row -> Array.map (fun c -> c ctx row) exprs))
      (run_topk recurse ctx input k)
  | Plan.Sort { input; by; _ } ->
    Some (seq_of_list (top_k ctx by k (recurse ctx input)))
  | _ -> None

and run ctx plan = run_with run ctx plan

(* Compile a rid-splittable pipeline into a chunk-stage factory. Shapes
   mirror {!Plan.parallel_pipeline}: Seq_scan/Interval_scan leaves under
   Filter/Project operators, Hash_join probe sides and Instrument
   wrappers. Leaves below [min_rows] rows refuse (the morsel caller
   passes its threshold; the sequential batch drivers pass
   [batch_min_rows]).
   [mark_parallel] controls the EXPLAIN ANALYZE parallel marker. *)
and chunk_pipeline ctx ~min_rows ~mark_parallel (plan : Plan.t) :
    (par_source * (unit -> chunk -> chunk)) option =
  match plan with
  | Plan.Seq_scan { table; _ } ->
    let rids = Table.rids_array table in
    if Array.length rids < min_rows then None
    else Some ({ par_table = table; par_rids = rids }, fun () c -> c)
  | Plan.Interval_scan { table; index; lo; hi; _ } ->
    (* Same candidate set, dedup and adaptive full-scan degradation as
       the row operator, so chunk concatenation reproduces its output
       exactly. *)
    let rids = Interval_index.query_overlaps index ~lo ~hi in
    let rids =
      if List.length rids > Table.row_count table / 2 then
        Table.rids_array table
      else Array.of_list (List.sort_uniq Int.compare rids)
    in
    if Array.length rids < min_rows then None
    else Some ({ par_table = table; par_rids = rids }, fun () c -> c)
  | Plan.Instrument { input; stats } ->
    (* Chunked stages have no per-operator boundaries to time; operators
       report the rows that flowed through them and the driver
       attributes wall time to the subtree root. *)
    Option.map
      (fun (src, mk) ->
        if mark_parallel then Atomic.set stats.Plan.ran_parallel true;
        ( src,
          fun () ->
            let stage = mk () in
            fun c ->
              let c = stage c in
              ignore (Atomic.fetch_and_add stats.Plan.actual_rows c.nsel);
              c ))
      (chunk_pipeline ctx ~min_rows ~mark_parallel input)
  | Plan.Filter { input; pred; bpred; _ } ->
    let kernel =
      match bpred with
      | Some k -> k
      | None -> Expr_eval.batch_of_predicate pred
    in
    Option.map
      (fun (src, mk) ->
        ( src,
          fun () ->
            let stage = mk () in
            fun c ->
              let c = stage c in
              c.nsel <- kernel ctx c.rows ~sel:c.sel ~n:c.nsel;
              c ))
      (chunk_pipeline ctx ~min_rows ~mark_parallel input)
  | Plan.Project { input; exprs; _ } ->
    Option.map
      (fun (src, mk) ->
        ( src,
          fun () ->
            let stage = mk () in
            let out = make_chunk () in
            fun c ->
              let c = stage c in
              let n = c.nsel in
              ensure_capacity out n;
              for j = 0 to n - 1 do
                let row = c.rows.(c.sel.(j)) in
                out.rows.(j) <- Array.map (fun e -> e ctx row) exprs;
                out.sel.(j) <- j
              done;
              out.len <- n;
              out.nsel <- n;
              out ))
      (chunk_pipeline ctx ~min_rows ~mark_parallel input)
  | Plan.Hash_join { left; right; left_keys; right_keys; build_left; _ } -> (
    let build_plan, probe_plan, build_keys, probe_keys =
      if build_left then (left, right, left_keys, right_keys)
      else (right, left, right_keys, left_keys)
    in
    match chunk_pipeline ctx ~min_rows ~mark_parallel probe_plan with
    | None -> None
    | Some (src, mk) ->
      (* Sequential build, then probes fuse into the chunk stages; the
         finished table is only read (concurrently, on the morsel
         path). *)
      let probe = build_join_table ctx build_plan build_keys probe_keys in
      Some
        ( src,
          fun () ->
            let stage = mk () in
            let out = make_chunk () in
            fun c ->
              let c = stage c in
              let k = ref 0 in
              for j = 0 to c.nsel - 1 do
                let prow = c.rows.(c.sel.(j)) in
                let matches = probe prow in
                let m = Array.length matches in
                if m > 0 then begin
                  Metrics.add m_rows_joined m;
                  ensure_capacity out (!k + m);
                  for x = 0 to m - 1 do
                    out.rows.(!k) <-
                      (if build_left then concat_rows matches.(x) prow
                       else concat_rows prow matches.(x));
                    out.sel.(!k) <- !k;
                    incr k
                  done
                end
              done;
              out.len <- !k;
              out.nsel <- !k;
              out ))
  | Plan.Index_scan _ | Plan.Nested_loop _ | Plan.Left_outer_join _
  | Plan.Aggregate _ | Plan.Sort _ | Plan.Distinct _ | Plan.Limit _
  | Plan.Append _ | Plan.Partition_scan _ | Plan.One_row
  | Plan.Virtual_scan _ ->
    None

(* Materialize a hash-join build side into a probe function returning
   matches in build-scan order. Single-key joins hash the value itself
   (no per-row key list); NULL keys never join. *)
and build_join_table ctx build_plan build_keys probe_keys :
    Value.t array -> Value.t array array =
  match build_keys, probe_keys with
  | [ bk ], [ pk ] ->
    let tmp : Value.t array list Val_table.t = Val_table.create 64 in
    Seq.iter
      (fun brow ->
        let key = bk ctx brow in
        if not (Value.is_null key) then
          Val_table.replace tmp key
            (brow :: Option.value (Val_table.find_opt tmp key) ~default:[]))
      (run ctx build_plan);
    let table = Val_table.create (Stdlib.max 16 (Val_table.length tmp)) in
    Val_table.iter
      (fun key rows ->
        Val_table.replace table key (Array.of_list (List.rev rows)))
      tmp;
    fun prow ->
      let key = pk ctx prow in
      if Value.is_null key then [||]
      else begin
        match Val_table.find_opt table key with
        | Some rows -> rows
        | None -> [||]
      end
  | _ ->
    let tmp : Value.t array list Key_table.t = Key_table.create 64 in
    Seq.iter
      (fun brow ->
        let key = List.map (fun c -> c ctx brow) build_keys in
        if not (List.exists Value.is_null key) then
          Key_table.replace tmp key
            (brow :: Option.value (Key_table.find_opt tmp key) ~default:[]))
      (run ctx build_plan);
    let table = Key_table.create (Stdlib.max 16 (Key_table.length tmp)) in
    Key_table.iter
      (fun key rows ->
        Key_table.replace table key (Array.of_list (List.rev rows)))
      tmp;
    fun prow ->
      let key = List.map (fun c -> c ctx prow) probe_keys in
      if List.exists Value.is_null key then [||]
      else begin
        match Key_table.find_opt table key with
        | Some rows -> rows
        | None -> [||]
      end

(* Sequential batch driver: run a qualifying pipeline chunk-at-a-time as
   a lazy sequence — one cancellation poll and one buffer fill per
   chunk, fused kernels in between, each chunk's survivors emitted
   before the buffers are reused. Laziness across chunks keeps LIMIT
   early-exit intact at chunk granularity. *)
and run_chunked ctx (plan : Plan.t) : Value.t array Seq.t option =
  if (not !batch_enabled) || Failpoint.active () || not (batch_shape plan)
  then None
  else
    Option.map
      (fun (src, mk) ->
        let stage = mk () in
        let c = make_chunk () in
        let nrids = Array.length src.par_rids in
        Metrics.add m_rows_scanned nrids;
        Deadline.charge_rows_scanned ctx.Expr_eval.token nrids;
        let rec chunks lo () =
          if lo >= nrids then Seq.Nil
          else begin
            Expr_eval.poll ctx;
            let len = Stdlib.min chunk_size (nrids - lo) in
            fill_chunk src.par_table src.par_rids lo len c;
            let out = stage c in
            let selected = ref [] in
            for j = out.nsel - 1 downto 0 do
              selected := out.rows.(out.sel.(j)) :: !selected
            done;
            Seq.append (seq_of_list !selected) (chunks (lo + len)) ()
          end
        in
        chunks 0)
      (chunk_pipeline ctx ~min_rows:!batch_min_rows ~mark_parallel:false plan)

let collect ctx plan = List.of_seq (run ctx plan)

(* --- Parallel execution ------------------------------------------------------ *)

(* Tables smaller than this run sequentially: morsel bookkeeping costs
   more than it saves. Settable so tests can force tiny tables through
   the parallel machinery. *)
let min_parallel_rows = ref 1024
let set_min_parallel_rows n = min_parallel_rows := Stdlib.max 1 n

(* Target rows per morsel; actual morsel count is balanced against the
   pool size so every domain gets work without oversplitting. Morsel
   boundaries align to whole chunks whenever the table is big enough for
   every task to get at least one full chunk, so morsel tasks and the
   sequential batch driver see identical chunk shapes. *)
let morsel_rows = 2048

let morsel_ranges len =
  let n = Exec_pool.size () in
  let by_target = (len + morsel_rows - 1) / morsel_rows in
  let ntasks = Stdlib.min (Stdlib.max n (Stdlib.min (4 * n) by_target)) len in
  let chunk = (len + ntasks - 1) / ntasks in
  let chunk =
    if chunk >= chunk_size then
      (chunk + chunk_size - 1) / chunk_size * chunk_size
    else chunk
  in
  let rec go lo acc =
    if lo >= len then List.rev acc
    else go (lo + chunk) ((lo, Stdlib.min chunk (len - lo)) :: acc)
  in
  go 0 []

(* Runs one morsel through its own chunk-stage instance.

   Each morsel polls the statement token on entry and then once per
   chunk — at most 1024 rows between polls, the same bound the row path
   keeps (the shared ctx tick counter is not used off the coordinating
   thread, and neither is the failpoint table — both are
   unsynchronized). Together with [Exec_pool.run ?token] skipping
   still-queued morsels once the flag is set, a cancelled parallel
   subtree stops within one chunk, not at join-completion. *)
let run_morsel token src (mk : unit -> chunk -> chunk) (lo, len) consume =
  Metrics.incr m_morsels;
  Metrics.add m_rows_scanned len;
  Deadline.charge_rows_scanned token len;
  let stage = mk () in
  let c = make_chunk () in
  let stop = lo + len in
  let pos = ref lo in
  while !pos < stop do
    Deadline.check token;
    let n = Stdlib.min chunk_size (stop - !pos) in
    fill_chunk src.par_table src.par_rids !pos n c;
    let out = stage c in
    for j = 0 to out.nsel - 1 do
      consume out.rows.(out.sel.(j))
    done;
    pos := !pos + n
  done

let par_collect token src mk : Value.t array list =
  let thunks =
    List.map
      (fun range () ->
        let acc = ref [] in
        run_morsel token src mk range (fun row -> acc := row :: !acc);
        List.rev !acc)
      (morsel_ranges (Array.length src.par_rids))
  in
  List.concat (Exec_pool.run ~token thunks)

(* --- Partitioned parallel aggregation ------------------------------------ *)

(* Explicit partial-aggregate states (the closure-based [runner]s cannot
   merge). COUNT/SUM/MIN/MAX fold associatively; AVG carries a
   (sum, count) pair. Per-morsel partials are merged in morsel order, so
   integer results are bit-identical to the sequential fold; float
   SUM/AVG reassociate additions across morsel boundaries (documented in
   DESIGN.md). *)
type pacc =
  | P_count of int
  | P_sum of Value.t (* Null until the first non-null input *)
  | P_avg of Value.t * int
  | P_extreme of Value.t (* min or max; the spec disambiguates *)
  | P_user of Value.t
    (* a user aggregate's own accumulator; only aggregates that
       registered an [agg_merge] reach the parallel path
       (Plan.mergeable_agg), so merging is always defined *)

let pacc_init (spec : Plan.agg_spec) =
  match spec.impl with
  | Plan.Agg_count_star | Plan.Agg_count -> P_count 0
  | Plan.Agg_sum -> P_sum Value.Null
  | Plan.Agg_avg -> P_avg (Value.Null, 0)
  | Plan.Agg_min | Plan.Agg_max -> P_extreme Value.Null
  | Plan.Agg_user (agg, _) -> P_user (agg.Extension.agg_init ())

let spec_user_agg (spec : Plan.agg_spec) =
  match spec.impl with
  | Plan.Agg_user (agg, _) -> agg
  | _ -> assert false

let pacc_step ctx (spec : Plan.agg_spec) acc row =
  let arg () = match spec.arg with Some c -> c ctx row | None -> Value.Null in
  match acc with
  | P_count n -> (
    match spec.impl with
    | Plan.Agg_count_star -> P_count (n + 1)
    | _ -> if Value.is_null (arg ()) then acc else P_count (n + 1))
  | P_sum s ->
    let v = arg () in
    if Value.is_null v then acc
    else P_sum (if Value.is_null s then v else numeric_add s v)
  | P_avg (s, n) ->
    let v = arg () in
    if Value.is_null v then acc
    else P_avg ((if Value.is_null s then v else numeric_add s v), n + 1)
  | P_extreme cur ->
    let v = arg () in
    if Value.is_null v then acc
    else if Value.is_null cur then P_extreme v
    else begin
      let c = Value.compare v cur in
      let better =
        match spec.impl with Plan.Agg_min -> c < 0 | _ -> c > 0
      in
      if better then P_extreme v else acc
    end
  | P_user acc_v ->
    let v = arg () in
    if Value.is_null v then acc
    else begin
      Metrics.incr m_rows_coalesced;
      P_user
        ((spec_user_agg spec).Extension.agg_step ~now:ctx.Expr_eval.now acc_v v)
    end

(* [a] accumulated earlier input than [b]; ties keep [a], matching the
   sequential runner's strict-improvement rule. *)
let pacc_merge ~now (spec : Plan.agg_spec) a b =
  match a, b with
  | P_count x, P_count y -> P_count (x + y)
  | P_sum x, P_sum y ->
    if Value.is_null y then a
    else if Value.is_null x then b
    else P_sum (numeric_add x y)
  | P_avg (_, nx), P_avg (_, 0) -> ignore nx; a
  | P_avg (x, nx), P_avg (y, ny) ->
    if nx = 0 then b else P_avg (numeric_add x y, nx + ny)
  | P_extreme x, P_extreme y ->
    if Value.is_null y then a
    else if Value.is_null x then b
    else begin
      let c = Value.compare y x in
      let better =
        match spec.impl with Plan.Agg_min -> c < 0 | _ -> c > 0
      in
      if better then b else a
    end
  | P_user x, P_user y -> (
    match (spec_user_agg spec).Extension.agg_merge with
    | Some merge -> P_user (merge ~now x y)
    | None -> assert false (* gated by Plan.mergeable_agg *))
  | (P_count _ | P_sum _ | P_avg _ | P_extreme _ | P_user _), _ ->
    assert false

let pacc_final ~now (spec : Plan.agg_spec) = function
  | P_count n -> Value.Int n
  | P_sum s -> s
  | P_avg (_, 0) -> Value.Null
  | P_avg (s, n) -> Value.Float (Value.to_float s /. float_of_int n)
  | P_extreme v -> v
  | P_user acc -> (spec_user_agg spec).Extension.agg_final ~now acc

let par_aggregate ctx src mk keys aggs : Value.t array list =
  let specs = Array.of_list aggs in
  let now = ctx.Expr_eval.now in
  let token = ctx.Expr_eval.token in
  let thunks =
    List.map
      (fun range () ->
        let groups : pacc array Key_table.t = Key_table.create 64 in
        let order = ref [] in
        run_morsel token src mk range (fun row ->
            let key = List.map (fun c -> c ctx row) keys in
            let accs =
              match Key_table.find_opt groups key with
              | Some accs -> accs
              | None ->
                let accs = Array.map pacc_init specs in
                Key_table.replace groups key accs;
                order := key :: !order;
                accs
            in
            Array.iteri
              (fun i acc -> accs.(i) <- pacc_step ctx specs.(i) acc row)
              accs);
        (List.rev !order, groups))
      (morsel_ranges (Array.length src.par_rids))
  in
  let partials = Exec_pool.run ~token thunks in
  (* Merge in morsel order: concatenating the partial orders and keeping
     first occurrences reproduces the sequential first-appearance group
     order, because morsels partition the input in order. *)
  let groups : pacc array Key_table.t = Key_table.create 64 in
  let order = ref [] in
  List.iter
    (fun (part_order, part) ->
      List.iter
        (fun key ->
          let accs = Key_table.find part key in
          match Key_table.find_opt groups key with
          | None ->
            Key_table.replace groups key accs;
            order := key :: !order
          | Some cur ->
            Array.iteri
              (fun i b -> cur.(i) <- pacc_merge ~now specs.(i) cur.(i) b)
              accs)
        part_order)
    partials;
  let emit key accs =
    Array.of_list
      (key
      @ Array.to_list
          (Array.mapi (fun i acc -> pacc_final ~now specs.(i) acc) accs))
  in
  if keys = [] && Key_table.length groups = 0 then
    (* Grand aggregate over an empty input still yields one row. *)
    [ emit [] (Array.map pacc_init specs) ]
  else
    List.map (fun key -> emit key (Key_table.find groups key)) (List.rev !order)

(* --- Hybrid driver ----------------------------------------------------------- *)

(* Runs [plan] on the pool when the planner marked this exact subtree
   parallel-safe and the leaf clears the size threshold. *)
let try_parallel ctx plan : Value.t array list option =
  if Exec_pool.sequential () || not (Plan.parallel_safe plan) then None
  else begin
    (* An [Instrument] wrapper at the subtree root receives the whole
       parallel execution's wall time and output row count (the fused
       stages below it report rows only; see [par_pipeline]). *)
    let target, stats =
      match plan with
      | Plan.Instrument { input; stats } -> (input, Some stats)
      | p -> (p, None)
    in
    let t0 = Trace.now_ns () in
    let pipeline plan =
      chunk_pipeline ctx ~min_rows:!min_parallel_rows ~mark_parallel:true plan
    in
    let result =
      match target with
      | Plan.Aggregate { input; keys; aggs; _ } ->
        Option.map
          (fun (src, mk) -> par_aggregate ctx src mk keys aggs)
          (pipeline input)
      | _ ->
        Option.map
          (fun (src, mk) -> par_collect ctx.Expr_eval.token src mk)
          (pipeline target)
    in
    (match result with
    | Some rows ->
      Metrics.incr m_parallel_subtrees;
      Option.iter
        (fun (s : Plan.op_stats) ->
          ignore (Atomic.fetch_and_add s.Plan.actual_ns (Trace.now_ns () - t0));
          ignore (Atomic.fetch_and_add s.Plan.actual_rows (List.length rows));
          Atomic.set s.Plan.ran_parallel true)
        stats
    | None -> ());
    result
  end

let rec run_hybrid ctx plan =
  match try_parallel ctx plan with
  | Some rows -> seq_of_list rows
  | None -> run_with run_hybrid ctx plan

(* Result-set budgets are charged on the client-facing collection path
   only (subquery [collect]s are intermediate work, already bounded by
   the scan budget). The memory estimate walks the row's object graph,
   so it is computed only when a memory budget is actually armed. *)
let charge_result_seq ctx seq =
  let token = ctx.Expr_eval.token in
  if not (Deadline.has_budget token) then seq
  else
    Seq.map
      (fun row ->
        let bytes =
          if Deadline.tracks_mem token then
            Obj.reachable_words (Obj.repr row) * (Sys.word_size / 8)
          else 0
        in
        Deadline.charge_result token ~rows:1 ~bytes;
        row)
      seq

let collect_parallel ctx plan =
  Metrics.incr m_queries;
  let rows =
    if Exec_pool.sequential () then run ctx plan else run_hybrid ctx plan
  in
  List.of_seq (charge_result_seq ctx rows)
