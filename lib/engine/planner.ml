(* Translates a bound SELECT into a physical plan.

   The optimizer is deliberately simple but not a strawman: WHERE
   conjuncts are pushed down to the scans they cover, equality conjuncts
   across two join inputs become hash joins, sargable conjuncts over
   indexed columns become B+tree range scans, and interval-sargable
   routine calls (registered by the blade, e.g. [overlaps]) over columns
   with an interval index become interval-index scans with an exact
   recheck on top. Everything else is a nested loop plus filters.

   Compilation detail: bindings get global column offsets left-to-right
   across the FROM list, and every expression attached to a plan node is
   compiled with a resolver shifted by that node's subtree start, so each
   node sees offsets relative to its own rows. *)

open Tip_storage
module Ast = Tip_sql.Ast
module Pretty = Tip_sql.Pretty

exception Plan_error of string

let plan_error fmt = Format.kasprintf (fun s -> raise (Plan_error s)) fmt

type binding = {
  qual : string option; (* alias or table name, lowercase *)
  col_names : string array; (* lowercase *)
  offset : int;
}

type layout = { bindings : binding list; width : int }

let empty_layout = { bindings = []; width = 0 }

let lc = String.lowercase_ascii

(* --- Column resolution --------------------------------------------------- *)

let resolve_in layout q name =
  let name = lc name in
  match q with
  | Some q ->
    let q = lc q in
    (match List.find_opt (fun b -> b.qual = Some q) layout.bindings with
    | None -> plan_error "unknown table or alias %s" q
    | Some b -> (
      match Array.find_index (String.equal name) b.col_names with
      | Some i -> b.offset + i
      | None -> plan_error "no column %s in %s" name q))
  | None -> (
    let hits =
      List.filter_map
        (fun b ->
          match Array.find_index (String.equal name) b.col_names with
          | Some i -> Some (b.offset + i)
          | None -> None)
        layout.bindings
    in
    match hits with
    | [ i ] -> i
    | [] -> plan_error "unknown column %s" name
    | _ :: _ :: _ -> plan_error "ambiguous column %s" name)

(* --- Expression analysis --------------------------------------------------- *)

let rec fold_expr f acc e =
  List.fold_left (fold_expr f) (f acc e) (Ast.children e)

(* Absolute column indices referenced by [e], resolved in [layout]. *)
let indices_of layout e =
  fold_expr
    (fun acc e ->
      match e with
      | Ast.Column (q, name) -> resolve_in layout q name :: acc
      | _ -> acc)
    [] e

(* Rewrites every column reference to its absolute index, making
   structural equality meaningful across qualifier spellings. *)
let rec normalize layout e =
  match e with
  | Ast.Column (q, name) ->
    Ast.Column (Some "#", string_of_int (resolve_in layout q name))
  (* Case-fold the names structural matching must ignore. *)
  | Ast.Call (name, args) -> Ast.Call (lc name, List.map (normalize layout) args)
  | Ast.Cast (e, ty) -> Ast.Cast (normalize layout e, lc ty)
  | _ -> Ast.map_children (normalize layout) e

let rec conjuncts = function
  | Ast.Binop (Ast.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let builtin_aggs = [ "count"; "sum"; "avg"; "min"; "max" ]

let is_agg_call ext = function
  | Ast.Count_star -> true
  | Ast.Call (name, _) | Ast.Call_distinct (name, _) ->
    List.mem (lc name) builtin_aggs || Extension.is_aggregate ext name
  | _ -> false

let contains_agg ext e =
  fold_expr (fun acc e -> acc || is_agg_call ext e) false e

(* Conjuncts containing subqueries are never pushed below the full FROM:
   [indices_of] cannot see the outer columns a correlated subquery
   captures, so pushdown could hand it a too-narrow row. They run as a
   top-level filter over the complete layout instead. *)
let contains_subquery e =
  fold_expr
    (fun acc e ->
      acc
      ||
      match e with
      | Ast.Exists _ | Ast.In_select _ | Ast.Scalar_subquery _ -> true
      | _ -> false)
    false e

(* --- Compilation helpers ---------------------------------------------------- *)

type pctx = { ext : Extension.t; ectx : Expr_eval.ctx; catalog : Catalog.t }

(* Evaluates [e] at plan time if it references no columns (subqueries
   are deliberately excluded — they are not plan-time constants). *)
exception Not_const

let const_eval pctx e =
  let env =
    Expr_eval.base_env ~ext:pctx.ext
      ~resolve_column:(fun _ _ -> raise Not_const)
      ()
  in
  match (Expr_eval.compile env e) pctx.ectx [||] with
  | v -> Some v
  | exception (Not_const | Expr_eval.Eval_error _) -> None

(* --- FROM planning ------------------------------------------------------------ *)

type fbase =
  | B_table of Table.t
  | B_partitioned of Partition.t
  | B_derived of Plan.t

type fref =
  | F_base of fbase * binding
  | F_join of fref * Ast.join_kind * Ast.expr option * fref

let rec fref_range = function
  | F_base (_, b) -> (b.offset, b.offset + Array.length b.col_names)
  | F_join (l, _, _, r) ->
    let lo, _ = fref_range l and _, hi = fref_range r in
    (lo, hi)

let rec fref_bindings = function
  | F_base (_, b) -> [ b ]
  | F_join (l, _, _, r) -> fref_bindings l @ fref_bindings r

(* Offsets protected from scan-level pushdown: right sides of outer joins. *)
let rec protected_ranges = function
  | F_base _ -> []
  | F_join (l, kind, _, r) ->
    let own = match kind with Ast.Left_outer -> [ fref_range r ] | Ast.Inner -> [] in
    own @ protected_ranges l @ protected_ranges r

type conjunct = { expr : Ast.expr; mutable used : bool }

let pool_of exprs = List.map (fun expr -> { expr; used = false }) exprs

let indices_within (lo, hi) idxs = List.for_all (fun i -> i >= lo && i < hi) idxs
let touches (lo, hi) idxs = List.exists (fun i -> i >= lo && i < hi) idxs

(* --- Index selection for base scans --------------------------------------------- *)

let ordered_index_scan pctx table binding conjunct_exprs =
  let layout1 = { bindings = [ binding ]; width = Array.length binding.col_names } in
  let col_of = function
    | Ast.Column (q, name) -> Some (resolve_in layout1 q name - binding.offset)
    | _ -> None
  in
  let try_conjunct e =
    let attempt op lhs rhs =
      match col_of lhs with
      | None -> None
      | Some col -> (
        match Table.index_on_column table ~kind:Table.Ordered col with
        | None -> None
        | Some idx -> (
          match const_eval pctx rhs with
          | None -> None
          | Some key ->
            let col_ty = (Schema.column (Table.schema table) col).Schema.ty in
            (* Make sure the probe key lives in the column's type so the
               B+tree comparison is meaningful; try an implicit cast. *)
            let key =
              if Schema.value_conforms col_ty key then Some key
              else begin
                match col_ty with
                | Schema.T_ext target -> (
                  match
                    Extension.find_implicit_cast pctx.ext
                      ~from_type:(Value.type_name key) ~to_type:target
                  with
                  | Some cast ->
                    Some (cast.Extension.cast_impl ~now:pctx.ectx.Expr_eval.now key)
                  | None -> None)
                | Schema.T_date -> (
                  match key with
                  | Value.Str s ->
                    Option.map
                      (fun c -> Value.Date (Tip_core.Chronon.start_of_day c))
                      (Tip_core.Chronon.of_string s)
                  | _ -> None)
                | _ -> None
              end
            in
            match key, idx.Table.impl with
            | Some key, Table.Ordered_impl bt ->
              let range =
                match op with
                | Ast.Eq -> Some (Btree.Inclusive key, Btree.Inclusive key)
                | Ast.Lt -> Some (Btree.Unbounded, Btree.Exclusive key)
                | Ast.Le -> Some (Btree.Unbounded, Btree.Inclusive key)
                | Ast.Gt -> Some (Btree.Exclusive key, Btree.Unbounded)
                | Ast.Ge -> Some (Btree.Inclusive key, Btree.Unbounded)
                | _ -> None
              in
              Option.map
                (fun (lo, hi) ->
                  Plan.Index_scan
                    { table; btree = bt; lo; hi;
                      label = Printf.sprintf "on %s" (Pretty.expr_to_string e) })
                range
            | _, _ -> None))
    in
    let flip = function
      | Ast.Lt -> Ast.Gt
      | Ast.Le -> Ast.Ge
      | Ast.Gt -> Ast.Lt
      | Ast.Ge -> Ast.Le
      | op -> op
    in
    match e with
    | Ast.Binop (((Ast.Eq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), lhs, rhs) -> (
      match attempt op lhs rhs with
      | Some plan -> Some plan
      | None -> attempt (flip op) rhs lhs)
    (* BETWEEN decomposes into a two-sided range on the same index. *)
    | Ast.Between { negated = false; scrutinee; low; high } -> (
      match attempt Ast.Ge scrutinee low, attempt Ast.Le scrutinee high with
      | Some (Plan.Index_scan ge), Some (Plan.Index_scan le) ->
        Some
          (Plan.Index_scan
             { ge with
               hi = le.hi;
               label = Printf.sprintf "on %s" (Pretty.expr_to_string e) })
      | _, _ -> None)
    | _ -> None
  in
  List.find_map try_conjunct conjunct_exprs

let interval_index_scan pctx table binding conjunct_exprs =
  let layout1 = { bindings = [ binding ]; width = Array.length binding.col_names } in
  let col_of = function
    | Ast.Column (q, name) -> Some (resolve_in layout1 q name - binding.offset)
    | _ -> None
  in
  (* A plan-time constant's conservative chronon extent; a bare string is
     re-read as a literal of the column's type first (the same automatic
     string cast the blade registers). *)
  let probe_extent col v =
    match Value.extent v with
    | Some _ as extent -> extent
    | None -> (
      match v, (Schema.column (Table.schema table) col).Schema.ty with
      | Value.Str s, Schema.T_ext target -> (
        match Value.lookup_type target with
        | Some vt -> (
          match vt.Value.parse s with
          | parsed -> Value.extent parsed
          | exception _ -> None)
        | None -> None)
      | _, _ -> None)
  in
  let attempt label col_side const_side =
    match col_of col_side with
    | None -> None
    | Some col -> (
      match Table.index_on_column table ~kind:Table.Interval col with
      | Some { Table.impl = Table.Interval_impl idx; _ } -> (
        match Option.map (probe_extent col) (const_eval pctx const_side) with
        | Some (Some (lo, hi)) ->
          Some (Plan.Interval_scan { table; index = idx; lo; hi; label }, col)
        | Some None | None -> None)
      | Some _ | None -> None)
  in
  let try_conjunct e =
    match e with
    | Ast.Call (name, [ a; b ]) when Extension.is_interval_sargable pctx.ext name ->
      let label = Printf.sprintf "probe %s" (Pretty.expr_to_string e) in
      (match attempt label a b with
      | Some p -> Some p
      | None -> attempt label b a)
    | _ -> None
  in
  List.find_map try_conjunct conjunct_exprs

(* --- Cost model ----------------------------------------------------------- *)

(* The executor degrades an interval scan to a full scan once the probe
   window matches over half the table, so an index access path is only
   worth choosing below that selectivity. With ANALYZE statistics the
   planner makes the same call up front, from histograms instead of a
   materialized candidate list. *)
let interval_selectivity_threshold = 0.5

let est_count st sel =
  int_of_float ((sel *. float_of_int st.Stats.st_rows) +. 0.5)

(* Estimated output cardinality of a pipeline, for hash-join build-side
   choice: leaf scans read ANALYZE row counts; filters apply the classic
   1/3 guess. [None] whenever any leaf lacks statistics — planning then
   keeps the historical build-right default, so un-analyzed databases
   plan exactly as before. *)
let rec pipeline_est = function
  | Plan.Seq_scan { table; _ }
  | Plan.Interval_scan { table; _ }
  | Plan.Index_scan { table; _ } ->
    Option.map (fun st -> st.Stats.st_rows) (Table.stats table)
  | Plan.Filter { input; _ } ->
    Option.map (fun n -> Stdlib.max 1 (n / 3)) (pipeline_est input)
  | Plan.Project { input; _ } | Plan.Instrument { input; _ } ->
    pipeline_est input
  | _ -> None

(* --- Planning a FROM tree --------------------------------------------------------- *)

let label_of_exprs exprs =
  String.concat " AND " (List.map Pretty.expr_to_string exprs)

(* Access path for one stored table: a selective interval probe when a
   conjunct is sargable, else an ordered index range, else a full scan.
   Also returns the estimated rows surviving the recheck filter when
   ANALYZE statistics exist. (Shared by plain scans and by each child
   of a partitioned scan.) *)
let plan_base_table pctx table binding exprs =
  let stats = Table.stats table in
  match interval_index_scan pctx table binding exprs with
  | Some (scan, col) -> (
    let cost =
      match stats, scan with
      | Some st, Plan.Interval_scan { lo; hi; _ } ->
        Option.map
          (fun cs ->
            let sel = Stats.overlap_selectivity cs ~lo ~hi in
            (st, sel, est_count st sel))
          (Stats.find_col st col)
      | _ -> None
    in
    match cost, scan with
    | Some (_, sel, est), Plan.Interval_scan r
      when sel <= interval_selectivity_threshold ->
      ( Plan.Interval_scan
          { r with label = Printf.sprintf "%s (est rows=%d)" r.label est },
        Some est )
    | Some (st, sel, est), _ ->
      (* The probe window matches most of the table: a full scan avoids
         the candidate sort/dedup the executor would fall back to
         anyway. *)
      ( Plan.Seq_scan
          { table;
            label =
              Printf.sprintf
                " (est rows=%d, interval probe rejected at selectivity %.2f)"
                st.Stats.st_rows sel },
        Some est )
    | None, _ -> (scan, None))
  | None -> (
    match ordered_index_scan pctx table binding exprs with
    | Some scan -> (scan, None)
    | None -> (
      match stats with
      | Some st ->
        ( Plan.Seq_scan
            { table; label = Printf.sprintf " (est rows=%d)" st.Stats.st_rows },
          Some (Stdlib.max 1 (st.Stats.st_rows / 3)) )
      | None -> (Plan.Seq_scan { table; label = "" }, None)))

(* The finite chronon window the pushed conjuncts probe the partition
   column with, if any: the first interval-sargable call pairing the
   column with a plan-time constant whose extent is known. A bare
   string constant is re-read as a literal of the column's type first,
   mirroring {!interval_index_scan}.

   The third component reports whether the probe also proves the whole
   filter for fully-covered partitions (filter elision): the probing
   call is [overlaps], it is the only conjunct pushed to this table,
   and the constant is one solid bounded period — so any row whose
   period start falls inside [lo, hi] overlaps it by construction. *)
let partition_probe pctx layout (pt : Partition.t) binding exprs =
  let is_part_col = function
    | Ast.Column (q, name) -> (
      match resolve_in layout q name with
      | i -> i = binding.offset + pt.Partition.pt_column
      | exception _ -> false)
    | _ -> false
  in
  let col_ty =
    (Schema.column pt.Partition.pt_schema pt.Partition.pt_column).Schema.ty
  in
  let typed_const v =
    match Value.extent v with
    | Some _ -> Some v
    | None -> (
      match v, col_ty with
      | Value.Str s, Schema.T_ext target -> (
        match Value.lookup_type target with
        | Some vt -> (
          match vt.Value.parse s with
          | parsed -> Some parsed
          | exception _ -> None)
        | None -> None)
      | _, _ -> None)
  in
  let attempt col_side const_side =
    if not (is_part_col col_side) then None
    else
      match Option.bind (const_eval pctx const_side) typed_const with
      | None -> None
      | Some v -> (
        match Value.extent v with
        | None -> None
        | Some (lo, hi) ->
          let solid =
            match Value.extents v with
            | [ _ ] -> lo > min_int && hi < max_int
            | _ -> false
          in
          Some (lo, hi, solid))
  in
  List.find_map
    (fun e ->
      match e with
      | Ast.Call (name, [ a; b ])
        when Extension.is_interval_sargable pctx.ext name -> (
        let sole = String.lowercase_ascii name = "overlaps" && exprs = [ e ] in
        match
          match attempt a b with Some w -> Some w | None -> attempt b a
        with
        | Some (lo, hi, solid) -> Some (lo, hi, solid && sole)
        | None -> None)
      | _ -> None)
    exprs

let rec plan_fref pctx layout pool protected fref : Plan.t =
  match fref with
  | F_base (base, binding) ->
    let range = fref_range fref in
    let blocked =
      List.exists (fun prot -> touches prot [ fst range ]) protected
    in
    let mine =
      if blocked then []
      else
        List.filter
          (fun c ->
            (not c.used)
            && (not (contains_agg pctx.ext c.expr))
            && (not (contains_subquery c.expr))
            && indices_within range (indices_of layout c.expr))
          pool
    in
    List.iter (fun c -> c.used <- true) mine;
    let exprs = List.map (fun c -> c.expr) mine in
    (match base with
    | B_partitioned pt ->
      (* Pruned partition-wise scan: each surviving child carries its
         own access path and recheck filter, so each child pipeline
         batches or parallelizes independently. The compiled predicate
         is shared — it only ever sees rows, never the table. *)
      let kept, pruned, implied_window, plabel =
        match partition_probe pctx layout pt binding exprs with
        | Some (lo, hi, implied) ->
          let kept, pruned = Partition.prune pt ~lo ~hi in
          ( kept, pruned,
            (if implied then Some (lo, hi) else None),
            Printf.sprintf " probe [%s, %s]"
              (Partition.bound_to_string lo)
              (Partition.bound_to_string hi) )
        | None -> (Partition.all_parts pt, 0, None, "")
      in
      (* Filter elision: when the sole conjunct is [overlaps] against
         one solid bounded window, a non-default child whose start
         range sits inside the window and whose rows are all fixed
         periods (finite end watermark; NOW-relative starts route to
         DEFAULT) passes the filter by construction — its scan runs
         bare. *)
      let elide (p : Partition.part) =
        match implied_window with
        | None -> false
        | Some (lo, hi) ->
          (not p.Partition.p_default)
          && p.Partition.p_from >= lo
          && p.Partition.p_to <= hi + 1
          && Atomic.get p.Partition.p_max_end < max_int
      in
      let wrap =
        if exprs = [] then fun scan -> scan
        else begin
          let shift = binding.offset in
          let combined =
            List.fold_left (fun a b -> Ast.Binop (Ast.And, a, b))
              (List.hd exprs) (List.tl exprs)
          in
          let env = shifted_env pctx layout ~shift in
          let pred = Expr_eval.compile env combined in
          let bpred = Some (Expr_eval.compile_batch env combined) in
          let label = label_of_exprs exprs in
          fun scan -> Plan.Filter { input = scan; pred; bpred; label }
        end
      in
      let elided = ref 0 in
      let children =
        List.map
          (fun (p : Partition.part) ->
            if elide p then begin
              incr elided;
              fst (plan_base_table pctx p.Partition.p_table binding [])
            end
            else
              wrap
                (fst (plan_base_table pctx p.Partition.p_table binding exprs)))
          kept
      in
      let plabel =
        if !elided = 0 then plabel
        else Printf.sprintf "%s filter-elided=%d" plabel !elided
      in
      Plan.Partition_scan
        { parent = pt.Partition.pt_name;
          children;
          total = Array.length pt.Partition.pt_parts;
          pruned;
          label = plabel }
    | B_table _ | B_derived _ ->
      (* [filter_est]: estimated rows surviving the recheck filter, when
         the table has ANALYZE statistics. All labels below only gain
         estimate suffixes when stats exist, so un-analyzed planning
         (and the EXPLAIN shape tests) stay byte-identical. *)
      let scan, filter_est =
        match base with
        | B_table table -> plan_base_table pctx table binding exprs
        | B_derived plan -> (plan, None)
        | B_partitioned _ -> assert false
      in
      if exprs = [] then scan
      else begin
        (* All pushed conjuncts recheck above the scan — index scans may
           over-approximate (interval probes always do). *)
        let shift = binding.offset in
        let combined =
          List.fold_left (fun a b -> Ast.Binop (Ast.And, a, b)) (List.hd exprs)
            (List.tl exprs)
        in
        let env = shifted_env pctx layout ~shift in
        let label =
          label_of_exprs exprs
          ^
          match filter_est with
          | Some est -> Printf.sprintf " (est rows=%d)" est
          | None -> ""
        in
        Plan.Filter
          { input = scan;
            pred = Expr_eval.compile env combined;
            bpred = Some (Expr_eval.compile_batch env combined);
            label }
      end)
  | F_join (l, Ast.Left_outer, on, r) ->
    let lplan = plan_fref pctx layout pool protected l in
    let rplan = plan_fref pctx layout pool protected r in
    let start, _ = fref_range fref in
    let _, rhi = fref_range r in
    let rlo, _ = fref_range r in
    let on_expr = Option.value on ~default:(Ast.Lit (Ast.L_bool true)) in
    Plan.Left_outer_join
      { left = lplan; right = rplan;
        on = compile_shifted pctx layout ~shift:start on_expr;
        right_width = rhi - rlo;
        label = Pretty.expr_to_string on_expr }
  | F_join (l, Ast.Inner, _on, r) ->
    (* Inner-join ON conjuncts were added to the pool up front. *)
    let lplan = plan_fref pctx layout pool protected l in
    let rplan = plan_fref pctx layout pool protected r in
    let start, _ = fref_range fref in
    let lrange = fref_range l and rrange = fref_range r in
    let joinable =
      List.filter
        (fun c ->
          (not c.used)
          && (not (contains_agg pctx.ext c.expr))
          && (not (contains_subquery c.expr))
          && indices_within (fref_range fref) (indices_of layout c.expr))
        pool
    in
    List.iter (fun c -> c.used <- true) joinable;
    let equi, residual =
      List.partition_map
        (fun c ->
          match c.expr with
          | Ast.Binop (Ast.Eq, a, b) -> (
            let ia = indices_of layout a and ib = indices_of layout b in
            if ia <> [] && ib <> [] && indices_within lrange ia
               && indices_within rrange ib
            then Left (a, b, c.expr)
            else if ia <> [] && ib <> [] && indices_within rrange ia
                    && indices_within lrange ib
            then Left (b, a, c.expr)
            else Right c.expr)
          | e -> Right e)
        joinable
    in
    let joined =
      if equi = [] then Plan.Nested_loop { left = lplan; right = rplan }
      else begin
        let left_keys =
          List.map (fun (a, _, _) -> compile_shifted pctx layout ~shift:start a) equi
        in
        let right_keys =
          List.map
            (fun (_, b, _) -> compile_shifted pctx layout ~shift:(fst rrange) b)
            equi
        in
        (* Build on the estimated-smaller input when both sides carry
           ANALYZE statistics; otherwise keep the historical build-right
           default. *)
        let lest = pipeline_est lplan and rest = pipeline_est rplan in
        let build_left =
          match lest, rest with Some l, Some r -> l < r | _ -> false
        in
        let label = label_of_exprs (List.map (fun (_, _, e) -> e) equi) in
        let label =
          match lest, rest with
          | Some l, Some r ->
            Printf.sprintf "%s (build=%s, est left=%d right=%d)" label
              (if build_left then "left" else "right")
              l r
          | _ -> label
        in
        Plan.Hash_join
          { left = lplan; right = rplan; left_keys; right_keys; build_left;
            label }
      end
    in
    if residual = [] then joined
    else begin
      let combined =
        List.fold_left
          (fun a b -> Ast.Binop (Ast.And, a, b))
          (List.hd residual) (List.tl residual)
      in
      let env = shifted_env pctx layout ~shift:start in
      Plan.Filter
        { input = joined;
          pred = Expr_eval.compile env combined;
          bpred = Some (Expr_eval.compile_batch env combined);
          label = label_of_exprs residual }
    end

(* Compiles [e] against [layout], with row offsets shifted down by
   [shift] (the subtree's starting offset). Subqueries are planned with
   this layout as their outer scope, so one level of correlation works
   (outer references become hidden per-row parameters). *)
and shifted_env pctx layout ~shift =
  Expr_eval.base_env ~ext:pctx.ext
    ~plan_subquery:(subquery_hook ~outer:(layout, shift) pctx)
    ~resolve_column:(fun q name -> resolve_in layout q name - shift)
    ()

and compile_shifted pctx layout ~shift e =
  Expr_eval.compile (shifted_env pctx layout ~shift) e

(* A caching [plan_subquery] for one compilation environment: the
   row-free analysis and the compiler must see the same answer for the
   same (physical) subquery node, and planning should happen once. *)
and subquery_hook ?outer pctx =
  let cache = ref [] in
  fun select ->
    match List.assq_opt select !cache with
    | Some r -> r
    | None ->
      let r = plan_subquery ?outer pctx select in
      cache := (select, r) :: !cache;
      r

(* Plans a subquery. Columns that do not resolve in the subquery's own
   FROM but do resolve in [outer] are rewritten to hidden parameters
   bound from the outer row at evaluation time (one level of
   correlation; nested subqueries correlate against their immediate
   parent only). *)
and plan_subquery ?outer pctx select =
  (* The subquery's own name scope. *)
  let inner_frefs, inner_width =
    List.fold_left
      (fun (refs, offset) tref ->
        let fref, offset = build_fref pctx pctx.catalog offset tref in
        (fref :: refs, offset))
      ([], 0) select.Ast.from
  in
  let inner_layout =
    { bindings = List.concat_map fref_bindings (List.rev inner_frefs);
      width = inner_width }
  in
  let corr = ref [] in
  let fresh = ref 0 in
  let rec rw e =
    match e with
    | Ast.Column (q, n) -> (
      match resolve_in inner_layout q n with
      | _ -> e (* inner scope wins, as SQL scoping requires *)
      | exception Plan_error _ -> (
        match outer with
        | None -> e (* let plan_select report the unknown column *)
        | Some (outer_layout, shift) -> (
          match resolve_in outer_layout q n with
          | abs ->
            let name = Printf.sprintf "__corr_%d" !fresh in
            incr fresh;
            corr := (name, abs - shift) :: !corr;
            Ast.Param name
          | exception Plan_error _ -> e)))
    | _ -> Ast.map_children rw e
  in
  let rec rw_ref = function
    | Ast.Join r ->
      Ast.Join { r with left = rw_ref r.left; right = rw_ref r.right; on = rw r.on }
    | (Ast.Table _ | Ast.Derived _) as t -> t
  in
  let rewritten =
    { select with
      Ast.items =
        List.map
          (function
            | Ast.Sel_expr (e, a) -> Ast.Sel_expr (rw e, a)
            | Ast.Sel_star _ as item -> item)
          select.Ast.items;
      from = List.map rw_ref select.Ast.from;
      where = Option.map rw select.Ast.where;
      group_by = List.map rw select.Ast.group_by;
      having = Option.map rw select.Ast.having;
      order_by = List.map (fun (e, d) -> (rw e, d)) select.Ast.order_by }
  in
  let plan, _names = plan_select pctx pctx.catalog rewritten in
  let corr = List.rev !corr in
  if corr = [] then
    { Expr_eval.sq_run = (fun ctx _row -> Executor.collect ctx plan);
      sq_correlated = false }
  else
    { Expr_eval.sq_run =
        (fun ctx row ->
          let params =
            List.fold_left
              (fun acc (name, idx) -> (name, row.(idx)) :: acc)
              ctx.Expr_eval.params corr
          in
          Executor.collect { ctx with Expr_eval.params } plan);
      sq_correlated = true }

(* Builds the fref tree and layout from the FROM clause. *)
and build_fref pctx catalog offset table_ref : fref * int =
  match table_ref with
  | Ast.Table { name; alias; as_of = None } -> (
    match Catalog.find_table catalog name with
    | Some table ->
      let schema = Table.schema table in
      let col_names =
        Array.map (fun c -> c.Schema.name) schema.Schema.columns
      in
      let qual = Some (lc (Option.value alias ~default:name)) in
      let binding = { qual; col_names; offset } in
      (F_base (B_table table, binding), offset + Array.length col_names)
    | None -> (
      match Catalog.find_partitioned catalog name with
      | Some pt ->
        let schema = pt.Partition.pt_schema in
        let col_names =
          Array.map (fun c -> c.Schema.name) schema.Schema.columns
        in
        let qual = Some (lc (Option.value alias ~default:name)) in
        let binding = { qual; col_names; offset } in
        (F_base (B_partitioned pt, binding), offset + Array.length col_names)
      | None -> (
      (* Catalog miss: the name may be a registered virtual table (a
         tip_stat relation). A real table always shadows a virtual one. *)
      match Vtab.find name with
      | None -> plan_error "no such table: %s" name
      | Some p ->
        let plan =
          Plan.Virtual_scan
            { vt_name = p.Vtab.vt_name;
              produce = (fun () -> p.Vtab.vt_rows catalog);
              label = "" }
        in
        let col_names = p.Vtab.vt_cols in
        let qual = Some (lc (Option.value alias ~default:name)) in
        let binding = { qual; col_names; offset } in
        (F_base (B_derived plan, binding), offset + Array.length col_names))))
  | Ast.Table { name; alias; as_of = Some at_expr } ->
    (* Time travel: read the WITH HISTORY shadow table as it was at the
       given instant. The scan filters rows whose transaction-time
       timestamp contains the instant, then hides the _tt column so the
       reference looks exactly like the base table. *)
    let support =
      match Extension.history_support pctx.ext with
      | Some s -> s
      | None ->
        plan_error "AS OF requires a temporal blade with history support"
    in
    let history =
      match Catalog.find_table catalog (name ^ "_history") with
      | Some t -> t
      | None -> plan_error "table %s has no transaction-time history" name
    in
    let schema = Table.schema history in
    let tt_index = Schema.arity schema - 1 in
    if (Schema.column schema tt_index).Schema.name <> "_tt" then
      plan_error "table %s has no transaction-time history" name;
    let at =
      match const_eval pctx at_expr with
      | Some v -> (
        let chron =
          match v with
          | Value.Str s -> Tip_core.Chronon.of_string s
          | v -> Extension.to_chronon pctx.ext v
        in
        match chron with
        | Some c -> c
        | None -> plan_error "AS OF expects a time instant")
      | None -> plan_error "AS OF expects a constant expression"
    in
    let now = pctx.ectx.Expr_eval.now in
    let pred _ctx row =
      Value.Bool (support.Extension.timestamp_contains ~now row.(tt_index) at)
    in
    let projections =
      Array.init tt_index (fun i _ctx (row : Value.t array) -> row.(i))
    in
    let col_names =
      Array.init tt_index (fun i -> (Schema.column schema i).Schema.name)
    in
    let plan =
      Plan.Project
        { input =
            Plan.Filter
              { input = Plan.Seq_scan { table = history; label = "" };
                pred;
                bpred = None;
                label =
                  Printf.sprintf "_tt contains %s"
                    (Tip_core.Chronon.to_string at) };
          exprs = projections;
          names = col_names }
    in
    let qual = Some (lc (Option.value alias ~default:name)) in
    let binding = { qual; col_names = Array.map lc col_names; offset } in
    (F_base (B_derived plan, binding), offset + Array.length col_names)
  | Ast.Derived { query; alias } ->
    let plan, names = plan_select pctx catalog query in
    let col_names = Array.map lc names in
    let binding = { qual = Some (lc alias); col_names; offset } in
    (F_base (B_derived plan, binding), offset + Array.length col_names)
  | Ast.Join { left; kind; right; on } ->
    let lref, offset = build_fref pctx catalog offset left in
    let rref, offset = build_fref pctx catalog offset right in
    (F_join (lref, kind, Some on, rref), offset)

(* --- SELECT planning ------------------------------------------------------------------ *)

and plan_select pctx catalog (s : Ast.select) : Plan.t * string array =
  let ordered_scan_replacement = ref None in
  (* 1. FROM: build refs and the full layout. *)
  let frefs, width =
    List.fold_left
      (fun (refs, offset) tref ->
        let fref, offset = build_fref pctx catalog offset tref in
        (fref :: refs, offset))
      ([], 0) s.Ast.from
  in
  let frefs = List.rev frefs in
  let combined =
    match frefs with
    | [] -> None
    | first :: rest ->
      Some (List.fold_left (fun acc r -> F_join (acc, Ast.Inner, None, r)) first rest)
  in
  let layout =
    match combined with
    | None -> empty_layout
    | Some fref -> { bindings = fref_bindings fref; width }
  in
  (* 2. Conjunct pool: WHERE plus inner-join ON conditions. *)
  let rec on_conjuncts = function
    | F_base _ -> []
    | F_join (l, kind, on, r) ->
      let own =
        match kind, on with
        | Ast.Inner, Some e -> conjuncts e
        | Ast.Inner, None | Ast.Left_outer, _ -> []
      in
      own @ on_conjuncts l @ on_conjuncts r
  in
  let where_conjuncts =
    match s.Ast.where with Some e -> conjuncts e | None -> []
  in
  List.iter
    (fun e ->
      if contains_agg pctx.ext e then
        plan_error "aggregate calls are not allowed in WHERE")
    where_conjuncts;
  let pool =
    pool_of
      (where_conjuncts
      @ (match combined with Some f -> on_conjuncts f | None -> []))
  in
  let protected = match combined with Some f -> protected_ranges f | None -> [] in
  (* 3. Plan the join tree with pushdown. *)
  let input =
    match combined with
    | None -> Plan.One_row
    | Some fref -> plan_fref pctx layout pool protected fref
  in
  (* Any conjunct not consumed (e.g. inside an outer-join-only FROM) runs
     as a final filter. *)
  let leftovers = List.filter (fun c -> not c.used) pool in
  let input =
    if leftovers = [] then input
    else begin
      let exprs = List.map (fun c -> c.expr) leftovers in
      let combined =
        List.fold_left (fun a b -> Ast.Binop (Ast.And, a, b)) (List.hd exprs)
          (List.tl exprs)
      in
      let env = shifted_env pctx layout ~shift:0 in
      Plan.Filter
        { input;
          pred = Expr_eval.compile env combined;
          bpred = Some (Expr_eval.compile_batch env combined);
          label = label_of_exprs exprs }
    end
  in
  (* 4. ORDER BY rewriting: ordinals and output aliases. *)
  let item_exprs =
    List.map
      (function
        | Ast.Sel_expr (e, alias) -> Some (e, alias)
        | Ast.Sel_star _ -> None)
      s.Ast.items
  in
  let rewrite_order_expr e =
    match e with
    | Ast.Lit (Ast.L_int n) -> (
      match List.nth_opt item_exprs (n - 1) with
      | Some (Some (e, _)) -> e
      | Some None | None -> plan_error "ORDER BY position %d is not selectable" n)
    | Ast.Column (None, name) -> (
      let matches =
        List.filter_map
          (function
            | Some (e, Some alias) when String.equal (lc alias) (lc name) ->
              Some e
            | _ -> None)
          item_exprs
      in
      match matches with [ e' ] -> e' | [] -> e | _ -> plan_error "ambiguous ORDER BY name %s" name)
    | e -> e
  in
  let order_by = List.map (fun (e, d) -> (rewrite_order_expr e, d)) s.Ast.order_by in
  (* GROUP BY accepts the same ordinals/aliases as ORDER BY. *)
  let s = { s with Ast.group_by = List.map rewrite_order_expr s.Ast.group_by } in
  (* 5. Aggregation analysis. *)
  let select_exprs =
    List.filter_map (function Some (e, _) -> Some e | None -> None) item_exprs
  in
  let exprs_with_aggs =
    select_exprs @ Option.to_list s.Ast.having @ List.map fst order_by
  in
  let aggregated =
    s.Ast.group_by <> [] || List.exists (contains_agg pctx.ext) exprs_with_aggs
  in
  let has_star =
    List.exists (function Ast.Sel_star _ -> true | Ast.Sel_expr _ -> false)
      s.Ast.items
  in
  if aggregated && has_star then
    plan_error "SELECT * cannot be combined with aggregation";
  let input, post_env =
    if not aggregated then begin
      let env =
        Expr_eval.base_env ~ext:pctx.ext
          ~plan_subquery:(subquery_hook ~outer:(layout, 0) pctx)
          ~resolve_column:(fun q n -> resolve_in layout q n)
          ()
      in
      (input, env)
    end
    else begin
      (* Collect the distinct aggregate calls appearing anywhere. *)
      let norm = normalize layout in
      let keys_norm = List.map norm s.Ast.group_by in
      let record e =
        fold_expr
          (fun acc sub ->
            if is_agg_call pctx.ext sub then begin
              let n = norm sub in
              if not (List.exists (fun (n', _) -> n' = n) acc) then
                acc @ [ (n, sub) ]
              else acc
            end
            else acc)
          [] e
      in
      let all_calls =
        List.fold_left
          (fun acc e ->
            List.fold_left
              (fun acc (n, sub) ->
                if List.exists (fun (n', _) -> n' = n) acc then acc
                else acc @ [ (n, sub) ])
              acc (record e))
          [] exprs_with_aggs
      in
      (* Build aggregate specs. *)
      let agg_impl_of name =
        match lc name with
        | "count" -> Plan.Agg_count
        | "sum" -> Plan.Agg_sum
        | "avg" -> Plan.Agg_avg
        | "min" -> Plan.Agg_min
        | "max" -> Plan.Agg_max
        | other -> (
          match Extension.find_aggregate pctx.ext other with
          | Some agg -> Plan.Agg_user (agg, other)
          | None -> plan_error "unknown aggregate %s" name)
      in
      let compile_agg_arg name a =
        if contains_agg pctx.ext a then
          plan_error "nested aggregate calls are not allowed";
        ignore name;
        Some (compile_shifted pctx layout ~shift:0 a)
      in
      let make_spec (_, call) =
        match call with
        | Ast.Count_star ->
          { Plan.impl = Plan.Agg_count_star; arg = None; distinct = false;
            agg_label = "count(*)" }
        | Ast.Call (name, args) ->
          let arg =
            match args with
            | [ a ] -> compile_agg_arg name a
            | _ -> plan_error "aggregate %s takes exactly one argument" name
          in
          { Plan.impl = agg_impl_of name; arg; distinct = false;
            agg_label = Pretty.expr_to_string call }
        | Ast.Call_distinct (name, a) ->
          { Plan.impl = agg_impl_of name;
            arg = compile_agg_arg name a;
            distinct = true;
            agg_label = Pretty.expr_to_string call }
        | _ -> assert false
      in
      let specs = List.map make_spec all_calls in
      let keys = List.map (compile_shifted pctx layout ~shift:0) s.Ast.group_by in
      let label =
        Printf.sprintf "keys=[%s] aggs=[%s]"
          (String.concat ", " (List.map Pretty.expr_to_string s.Ast.group_by))
          (String.concat ", " (List.map (fun sp -> sp.Plan.agg_label) specs))
      in
      let agg_plan = Plan.Aggregate { input; keys; aggs = specs; label } in
      (* Post-aggregation environment: slots for keys then agg calls. *)
      let slots =
        List.mapi (fun i n -> (n, i)) keys_norm
        @ List.mapi
            (fun i (n, _) -> (n, List.length keys_norm + i))
            all_calls
      in
      let slot_of e =
        match norm e with
        | n -> List.assoc_opt n slots
        | exception Plan_error _ -> None
      in
      let env =
        { Expr_eval.resolve_column =
            (fun _ n ->
              plan_error "column %s must appear in GROUP BY or an aggregate" n);
          slot_of;
          ext = pctx.ext;
          plan_subquery = subquery_hook pctx }
      in
      (agg_plan, env)
    end
  in
  (* 6. HAVING. *)
  let input =
    match s.Ast.having with
    | None -> input
    | Some e ->
      if not aggregated then plan_error "HAVING requires aggregation";
      Plan.Filter
        { input; pred = Expr_eval.compile post_env e; bpred = None;
          label = Pretty.expr_to_string e }
  in
  (* 7. ORDER BY (pre-projection; Distinct preserves order above).
     Optimization: a single-table, non-aggregated query ordered by one
     ascending column with an ordered index reads the index instead of
     sorting — the B+tree scan yields key order. NULL handling matches
     the sort (nulls-first) because NULL keys are never indexed and the
     indexed column is only substituted when it is NOT NULL. *)
  let order_satisfied_by_index =
    (not aggregated) && s.Ast.distinct = false
    &&
    match order_by, s.Ast.from, input with
    | [ (order_expr, Ast.Asc) ], [ Ast.Table _ ],
      (Plan.Seq_scan { table; _ } as _scan) -> (
      match order_expr with
      | Ast.Column (q, n) -> (
        match resolve_in layout q n with
        | col -> (
          let column = Schema.column (Table.schema table) col in
          column.Schema.not_null
          &&
          match Table.index_on_column table ~kind:Table.Ordered col with
          | Some { Table.impl = Table.Ordered_impl bt; _ } ->
            ordered_scan_replacement := Some (table, bt);
            true
          | Some _ | None -> false)
        | exception Plan_error _ -> false)
      | _ -> false)
    | _, _, _ -> false
  in
  let input =
    if order_satisfied_by_index then begin
      match !ordered_scan_replacement with
      | Some (table, bt) ->
        Plan.Index_scan
          { table; btree = bt; lo = Btree.Unbounded; hi = Btree.Unbounded;
            label = "(satisfies ORDER BY)" }
      | None -> input
    end
    else input
  in
  let input =
    if order_by = [] || order_satisfied_by_index then input
    else begin
      let by =
        List.map (fun (e, d) -> (Expr_eval.compile post_env e, d)) order_by
      in
      let label =
        String.concat ", "
          (List.map
             (fun (e, d) ->
               Pretty.expr_to_string e
               ^ match d with Ast.Asc -> "" | Ast.Desc -> " DESC")
             order_by)
      in
      Plan.Sort { input; by; label }
    end
  in
  (* 8. Projection with star expansion. *)
  let projections =
    List.concat_map
      (fun item ->
        match item with
        | Ast.Sel_star None ->
          List.concat_map
            (fun b ->
              List.mapi
                (fun i name ->
                  let idx = b.offset + i in
                  ((fun _ row -> row.(idx)), name))
                (Array.to_list b.col_names))
            layout.bindings
        | Ast.Sel_star (Some q) -> (
          match
            List.find_opt (fun b -> b.qual = Some (lc q)) layout.bindings
          with
          | None -> plan_error "unknown table or alias %s" q
          | Some b ->
            List.mapi
              (fun i name ->
                let idx = b.offset + i in
                ((fun _ row -> row.(idx)), name))
              (Array.to_list b.col_names))
        | Ast.Sel_expr (e, alias) ->
          let name =
            match alias with
            | Some a -> a
            | None -> (
              match e with
              | Ast.Column (_, n) -> n
              | Ast.Call (f, _) -> lc f
              | Ast.Count_star -> "count"
              | Ast.Cast (Ast.Column (_, n), _) -> n
              | _ -> Pretty.expr_to_string e)
          in
          [ (Expr_eval.compile post_env e, name) ])
      s.Ast.items
  in
  let exprs = Array.of_list (List.map fst projections) in
  let names = Array.of_list (List.map snd projections) in
  let plan = Plan.Project { input; exprs; names } in
  (* 9. DISTINCT then LIMIT. *)
  let plan = if s.Ast.distinct then Plan.Distinct plan else plan in
  let plan =
    match s.Ast.limit, s.Ast.offset with
    | None, None -> plan
    | limit, offset -> Plan.Limit { input = plan; limit; offset }
  in
  (plan, names)

(* UNION [ALL] trees: plan each arm, require matching arity, append, and
   deduplicate for plain UNION. Output names come from the first arm. *)
and plan_compound pctx catalog (c : Ast.compound) : Plan.t * string array =
  match c with
  | Ast.Simple s -> plan_select pctx catalog s
  | Ast.Union { all; left; right } ->
    let lplan, lnames = plan_compound pctx catalog left in
    let rplan, rnames = plan_compound pctx catalog right in
    if Array.length lnames <> Array.length rnames then
      plan_error "UNION arms select %d and %d columns" (Array.length lnames)
        (Array.length rnames);
    let appended =
      (* Flatten nested appends so a long UNION chain stays one node. *)
      match lplan, rplan with
      | Plan.Append ls, Plan.Append rs -> Plan.Append (ls @ rs)
      | Plan.Append ls, r -> Plan.Append (ls @ [ r ])
      | l, Plan.Append rs -> Plan.Append (l :: rs)
      | l, r -> Plan.Append [ l; r ]
    in
    ((if all then appended else Plan.Distinct appended), lnames)

(* Entry points. *)
let plan ~ext ~ectx catalog select =
  let pctx = { ext; ectx; catalog } in
  plan_select pctx catalog select

let plan_union ~ext ~ectx catalog compound =
  let pctx = { ext; ectx; catalog } in
  plan_compound pctx catalog compound

(* A subquery runner for standalone expressions (INSERT value lists,
   SET NOW): no outer scope, so correlation fails with an
   unknown-column error. *)
let subquery_runner ~ext ~ectx catalog =
  let pctx = { ext; ectx; catalog } in
  subquery_hook pctx

(* A subquery runner for single-table DML predicates: the table's row is
   the outer scope, so UPDATE/DELETE WHERE clauses may correlate. *)
let subquery_runner_for_table ~ext ~ectx catalog schema =
  let pctx = { ext; ectx; catalog } in
  let col_names = Array.map (fun c -> c.Schema.name) schema.Schema.columns in
  let layout =
    { bindings =
        [ { qual = Some schema.Schema.table_name; col_names; offset = 0 } ];
      width = Array.length col_names }
  in
  subquery_hook ~outer:(layout, 0) pctx

(* EXPLAIN output: the plan tree plus the parallelism annotation the
   hybrid executor acts on. *)
let explain plan =
  let note =
    if Plan.parallel_safe plan then "Parallel: safe"
    else if Plan.parallel_candidate plan then "Parallel: partial"
    else "Parallel: none"
  in
  Plan.to_string plan ^ "\n" ^ note

(* EXPLAIN ANALYZE output: the executed (instrumented) plan tree — each
   operator annotated with actual rows, inclusive wall time and a
   [parallel] marker where the morsel path ran — plus a footer with the
   phase timings, total row count, and the NOW chronon the statement was
   bound to (bound once, at root-span open; DESIGN.md §9). *)
let explain_analyze ~now ~rows ~plan_ns ~exec_ns plan =
  let ms ns = float_of_int ns /. 1e6 in
  Printf.sprintf "%s%s\nPhases: plan %.3f ms, execute %.3f ms\nRows: %d\nNOW: %s"
    (explain plan)
    (if Exec_pool.sequential () then " (pool: sequential)"
     else Printf.sprintf " (pool: %d domains)" (Exec_pool.size ()))
    (ms plan_ns) (ms exec_ns) rows now
