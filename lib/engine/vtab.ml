(* Virtual-table registry: system telemetry served as ordinary
   relations (tip_stat_statements, tip_stat_activity, ...).

   A provider names a relation, declares its columns, and materializes
   a snapshot of rows on demand. The planner consults this registry
   only when catalog lookup fails, so a real table always shadows a
   virtual one; the rows feed a Plan.Virtual_scan leaf that behaves
   like any other row source above it (filters, joins, ORDER BY,
   EXPLAIN all compose). Snapshots are never parallel — they are tiny
   and the providers read mutable registries.

   The registry is global (providers describe process-wide state);
   [produce] receives the querying database's catalog so per-database
   relations like tip_stat_tables report the right tables. *)

open Tip_storage

type provider = {
  vt_name : string; (* lowercase relation name *)
  vt_cols : string array; (* lowercase column names *)
  vt_help : string;
  vt_rows : Catalog.t -> Value.t array list;
}

let lock = Mutex.create ()
let providers : (string, provider) Hashtbl.t = Hashtbl.create 8

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let register p =
  with_lock (fun () ->
      Hashtbl.replace providers (String.lowercase_ascii p.vt_name) p)

let find name =
  with_lock (fun () ->
      Hashtbl.find_opt providers (String.lowercase_ascii name))

let names () =
  with_lock (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) providers [])
  |> List.sort String.compare
