(** Expression compilation and evaluation.

    Expressions compile once per statement into closures over a row and
    an evaluation context. SQL three-valued logic lives here: NULL
    propagates through operators, AND/OR follow Kleene logic, and WHERE
    treats unknown as false (via {!to_predicate}).

    Built-in semantics cover the base types; any combination the engine
    does not know falls through to the extension registry keyed by the
    operator symbol — that is how [chronon + span] becomes meaningful
    once the TIP blade is installed. Row-free subexpressions (constants
    and non-correlated subqueries) are evaluated once per statement and
    cached. *)

open Tip_storage
module Ast = Tip_sql.Ast

exception Eval_error of string

(** Per-statement evaluation context: the bound transaction time, host
    parameters, the extension registry, and the statement's governance
    token. *)
type ctx = {
  now : Tip_core.Chronon.t;
  params : (string * Value.t) list;  (** lowercase names *)
  ext : Extension.t;
  token : Tip_core.Deadline.t;
      (** cancellation/budget token; [Deadline.never] when ungoverned *)
  mutable poll_tick : int;
      (** row counter behind {!tick}'s every-256-rows polling *)
}

val poll : ctx -> unit
(** Check the token now (also a failpoint site, [exec.poll], so tests
    can cancel at an exact batch boundary). Raises
    [Tip_core.Deadline.Cancelled]. *)

val tick : ctx -> unit
(** Per-row hook: polls every 256th call. *)

(** A compiled expression: evaluate against a context and a row. *)
type compiled = ctx -> Value.t array -> Value.t

(** A planned subquery: [sq_run ctx outer_row] produces its rows.
    Non-correlated subqueries ignore the outer row (and are cached once
    per statement); correlated ones read outer columns through hidden
    parameters bound per outer row. *)
type subquery_exec = {
  sq_run : ctx -> Value.t array -> Value.t array list;
  sq_correlated : bool;
}

(** Compilation environment. *)
type env = {
  resolve_column : string option -> string -> int;
      (** qualifier, name → row offset; raises on unknown/ambiguous *)
  slot_of : Ast.expr -> int option;
      (** pre-computed slots (group keys / aggregate results), checked at
          every node so post-aggregation expressions can reference them *)
  ext : Extension.t;
  plan_subquery : Ast.select -> subquery_exec;
      (** provided by the planner; must be stable (same select, same
          answer), since both compilation and the row-free analysis call
          it *)
}

(** An environment with no aggregate slots; [plan_subquery] defaults to
    an error. *)
val base_env :
  ?plan_subquery:(Ast.select -> subquery_exec) ->
  ext:Extension.t ->
  resolve_column:(string option -> string -> int) ->
  unit ->
  env

(** Compiles an expression; name resolution happens now, evaluation does
    none. *)
val compile : env -> Ast.expr -> compiled

(** WHERE semantics: NULL (unknown) is not true.
    @raise Eval_error when the value is not boolean. *)
val to_predicate : compiled -> ctx -> Value.t array -> bool

(** {1 Batch (chunk-at-a-time) evaluation} *)

(** A fused predicate kernel over a chunk: [bp ctx rows ~sel ~n] reads
    row indices from the first [n] entries of the selection vector [sel],
    compacts [sel] in place to the rows that pass (WHERE semantics: NULL
    is not true), and returns the surviving count. *)
type batch_pred = ctx -> Value.t array array -> sel:int array -> n:int -> int

(** Generic fallback: row-at-a-time evaluation through {!to_predicate}. *)
val batch_of_predicate : compiled -> batch_pred

(** Compiles a predicate to a fused batch kernel. Conjunctions become
    sequential kernels over the narrowing selection vector, integer
    comparisons and single-extent element OVERLAPS run as tight loops,
    and everything else falls back to {!batch_of_predicate}. Semantics
    are identical to [to_predicate (compile env e)] on every row. *)
val compile_batch : env -> Ast.expr -> batch_pred

(** {1 Pieces exposed for reuse and tests} *)

(** Binary operator semantics: built-ins first, then the extension
    registry. NULL operands yield NULL.
    @raise Eval_error when undefined for the operand types. *)
val apply_binop :
  Extension.t -> now:Tip_core.Chronon.t -> Ast.binop -> Value.t -> Value.t ->
  Value.t

(** SQL LIKE: ['%'] any sequence, ['_'] any one character. *)
val like_match : pattern:string -> string -> bool

(** Cast semantics for [expr::Type]: engine-native conversions for base
    types, the extension registry for everything else, string literals
    parse as the target type.
    @raise Eval_error when no cast applies. *)
val cast_value :
  Extension.t -> now:Tip_core.Chronon.t -> Value.t -> to_type:string -> Value.t

val literal_value : Ast.literal -> Value.t

(** Is the expression independent of the current row (and aggregate
    slots)? Such expressions are constant within one statement. *)
val row_free : env -> Ast.expr -> bool
