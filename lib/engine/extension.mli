(** The extensibility interface — the stand-in for Informix's DataBlade
    API.

    A blade installs, against one database: scalar routines (overloaded
    by argument type), operator overloads (the same mechanism, keyed by
    the operator symbol), casts (implicit or explicit, with a resolution
    cost), user-defined aggregates, and planner hints. Datatypes
    themselves register globally in {!Tip_storage.Value}; everything here
    is per-database state, mirroring how a DataBlade installs into one
    Informix database. *)

open Tip_storage

(** Parameter types for overload matching. *)
type ptype =
  | P_int
  | P_float  (** also accepts ints, at widening cost 1 *)
  | P_bool
  | P_string
  | P_date
  | P_ext of string  (** a registered extension type, by canonical name *)
  | P_any

val ptype_name : ptype -> string
val ptype_of_value : Value.t -> ptype

(** Does the value inhabit the parameter type with no conversion?
    NULL inhabits everything. *)
val value_matches : ptype -> Value.t -> bool

type routine = {
  params : ptype list;
  strict : bool;
      (** strict routines return NULL without running on any NULL input *)
  impl : now:Tip_core.Chronon.t -> Value.t array -> Value.t;
      (** [now] is the statement's transaction time *)
}

type cast = {
  cast_to : string;
  implicit : bool;
      (** implicit casts participate in overload resolution; explicit
          ones require [expr::Type] *)
  cast_cost : int;
      (** resolution cost; longer widening chains cost more so that e.g.
          chronon→instant is preferred over chronon→element *)
  cast_impl : now:Tip_core.Chronon.t -> Value.t -> Value.t;
}

type aggregate = {
  agg_init : unit -> Value.t;  (** accumulator seed *)
  agg_step : now:Tip_core.Chronon.t -> Value.t -> Value.t -> Value.t;
      (** [step acc v]; NULL inputs are skipped by the executor *)
  agg_final : now:Tip_core.Chronon.t -> Value.t -> Value.t;
  agg_merge :
    (now:Tip_core.Chronon.t -> Value.t -> Value.t -> Value.t) option;
      (** combine two partial accumulators (associative, seed-neutral);
          [None] keeps the aggregate off the morsel-parallel path *)
}

(** Transaction-time support, registered by a temporal blade: how to
    create, close and probe the tuple timestamps of WITH HISTORY shadow
    tables. *)
type history_support = {
  timestamp_type : string;
      (** column type of the shadow table's [_tt] column *)
  open_timestamp : now:Tip_core.Chronon.t -> Value.t;
      (** timestamp of a freshly current row, e.g. [{[now, NOW]}] *)
  close_timestamp : now:Tip_core.Chronon.t -> Value.t -> Value.t;
      (** clip an open timestamp when the row stops being current *)
  is_open : Value.t -> bool;
  timestamp_contains :
    now:Tip_core.Chronon.t -> Value.t -> Tip_core.Chronon.t -> bool;
      (** AS OF probe: was the row current at the instant? *)
}

type t

exception Resolution_error of string

val create : unit -> t

(** {1 Registration} *)

(** @raise Invalid_argument if this exact signature is already present. *)
val register_routine :
  t ->
  name:string ->
  params:ptype list ->
  ?strict:bool ->
  (now:Tip_core.Chronon.t -> Value.t array -> Value.t) ->
  unit

val register_cast :
  t ->
  from_type:string ->
  to_type:string ->
  ?implicit:bool ->
  ?cost:int ->
  (now:Tip_core.Chronon.t -> Value.t -> Value.t) ->
  unit

(** @raise Invalid_argument on duplicate aggregate name. *)
val register_aggregate : t -> name:string -> aggregate -> unit

(** Declares that [name(column, constant)] can be answered from an
    interval index on the column, with an exact recheck. *)
val register_interval_sargable : t -> name:string -> unit

(** Teaches the engine to read a chronon out of a blade value (used by
    SET NOW and DATE coercions). *)
val register_chronon_extractor :
  t -> (Value.t -> Tip_core.Chronon.t option) -> unit

(** Enables [CREATE TABLE ... WITH HISTORY] and [FROM t AS OF ...]. *)
val register_history_support : t -> history_support -> unit

val history_support : t -> history_support option

(** {1 Lookup and resolution} *)

val find_aggregate : t -> string -> aggregate option
val is_aggregate : t -> string -> bool
val is_interval_sargable : t -> string -> bool
val has_routine : t -> string -> bool
val find_cast : t -> from_type:string -> to_type:string -> cast option
val find_implicit_cast : t -> from_type:string -> to_type:string -> cast option
val to_chronon : t -> Value.t -> Tip_core.Chronon.t option

(** The outcome of overload resolution: either the answer is known to be
    NULL (strict routine with a NULL argument), or a routine plus its
    argument casts. Resolution depends only on the arguments' type
    names, so call sites may cache a [resolved] keyed by those names and
    skip re-scoring on every row. *)
type resolved

(** Resolves the cheapest overload of [name] for the argument values
    (exact match 0, int→float widening 1, implicit casts at their
    registered cost) without applying it.
    @raise Resolution_error on no match or an ambiguous tie. *)
val resolve_routine : t -> name:string -> Value.t array -> resolved

(** Applies a previously resolved overload to arguments whose type names
    match the ones it was resolved for. *)
val apply_resolved :
  now:Tip_core.Chronon.t -> resolved -> Value.t array -> Value.t

(** {!resolve_routine} and {!apply_resolved} in one step. Strict
    routines short-circuit to NULL on NULL arguments.
    @raise Resolution_error on no match or an ambiguous tie. *)
val apply_routine :
  t -> now:Tip_core.Chronon.t -> name:string -> Value.t array -> Value.t

(** A per-call-site applier for [name] with inline caches: overload
    resolution is reused while the argument type names repeat, and cast
    outputs are reused while the input value is physically the same — so
    a literal argument (one shared value per compiled statement) casts
    once, not once per row. Create a fresh caller per compilation site;
    the cast cache assumes [now] does not change across calls.
    @raise Resolution_error on no match or an ambiguous tie. *)
val caller :
  t -> name:string -> now:Tip_core.Chronon.t -> Value.t array -> Value.t

(** Applies a registered cast ([expr::Type]); identity casts succeed
    trivially, NULL passes through.
    @raise Resolution_error when no cast exists. *)
val apply_cast :
  t -> now:Tip_core.Chronon.t -> Value.t -> to_type:string -> Value.t
