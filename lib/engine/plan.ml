(* Physical query plans.

   A plan is a tree of Volcano-style operators whose expressions are
   already compiled to closures; [Executor.run] turns it into a row
   sequence. Each node carries a human-readable label so EXPLAIN can
   print the tree without decompiling closures. *)

open Tip_storage
module Ast = Tip_sql.Ast

type agg_impl =
  | Agg_count_star
  | Agg_count
  | Agg_sum
  | Agg_avg
  | Agg_min
  | Agg_max
  | Agg_user of Extension.aggregate * string (* registered name *)

type agg_spec = {
  impl : agg_impl;
  arg : Expr_eval.compiled option; (* None only for count-star *)
  distinct : bool; (* aggregate over distinct argument values *)
  agg_label : string;
}

type t =
  | Seq_scan of { table : Table.t; label : string }
  | Index_scan of {
      table : Table.t;
      btree : Btree.t;
      lo : Btree.bound;
      hi : Btree.bound;
      label : string;
    }
  | Interval_scan of {
      table : Table.t;
      index : Interval_index.t;
      lo : int;
      hi : int;
      label : string;
    }
  | Filter of { input : t; pred : Expr_eval.compiled; label : string }
  | Nested_loop of { left : t; right : t }
  | Hash_join of {
      left : t;
      right : t;
      left_keys : Expr_eval.compiled list;
      right_keys : Expr_eval.compiled list;
      label : string;
    }
  | Left_outer_join of {
      left : t;
      right : t;
      on : Expr_eval.compiled;
      right_width : int;
      label : string;
    }
  | Project of {
      input : t;
      exprs : Expr_eval.compiled array;
      names : string array;
    }
  | Aggregate of {
      input : t;
      keys : Expr_eval.compiled list;
      aggs : agg_spec list;
      label : string;
    }
  | Sort of {
      input : t;
      by : (Expr_eval.compiled * Ast.order_direction) list;
      label : string;
    }
  | Distinct of t
  | Limit of { input : t; limit : int option; offset : int option }
  | Append of t list (* concatenation of same-arity inputs (UNION ALL) *)
  | One_row (* FROM-less SELECT produces a single empty row *)

(* --- Parallelism-safety annotation ------------------------------------ *)

(* An aggregate whose partial states combine associatively across
   morsels: the built-ins (COUNT/SUM/MIN/MAX, and AVG as a (sum, count)
   pair) without DISTINCT. User aggregates run opaque step functions
   with no merge, and DISTINCT needs global dedup, so both force the
   sequential aggregation path. *)
let mergeable_agg spec =
  (not spec.distinct)
  &&
  match spec.impl with
  | Agg_count_star | Agg_count | Agg_sum | Agg_avg | Agg_min | Agg_max -> true
  | Agg_user _ -> false

(* A morsel-parallel pipeline: a rid-splittable leaf scan with only
   per-row operators (and hash-join probes) above it. Index scans stay
   sequential — their rid order is key order, which the planner may be
   using to satisfy ORDER BY. *)
let rec parallel_pipeline = function
  | Seq_scan _ | Interval_scan _ -> true
  | Filter { input; _ } | Project { input; _ } -> parallel_pipeline input
  | Hash_join { left; _ } -> parallel_pipeline left
  | Index_scan _ | Nested_loop _ | Left_outer_join _ | Aggregate _ | Sort _
  | Distinct _ | Limit _ | Append _ | One_row ->
    false

let parallel_safe = function
  | Aggregate { input; aggs; _ } ->
    parallel_pipeline input && List.for_all mergeable_agg aggs
  | plan -> parallel_pipeline plan

(* Does any subtree qualify? (The executor applies [parallel_safe] at
   every node, so e.g. the aggregate under a Project still runs
   parallel.) *)
let rec parallel_candidate plan =
  parallel_safe plan
  ||
  match plan with
  | Filter { input; _ }
  | Project { input; _ }
  | Aggregate { input; _ }
  | Sort { input; _ }
  | Distinct input
  | Limit { input; _ } ->
    parallel_candidate input
  | Nested_loop { left; right }
  | Hash_join { left; right; _ }
  | Left_outer_join { left; right; _ } ->
    parallel_candidate left || parallel_candidate right
  | Append inputs -> List.exists parallel_candidate inputs
  | Seq_scan _ | Index_scan _ | Interval_scan _ | One_row -> false

let agg_name = function
  | Agg_count_star -> "count(*)"
  | Agg_count -> "count"
  | Agg_sum -> "sum"
  | Agg_avg -> "avg"
  | Agg_min -> "min"
  | Agg_max -> "max"
  | Agg_user (_, name) -> name

let rec pp ?(indent = 0) ppf plan =
  let pad ppf () = Fmt.string ppf (String.make (indent * 2) ' ') in
  let child = indent + 1 in
  match plan with
  | Seq_scan { table; label } ->
    Fmt.pf ppf "%aSeqScan %s%s@." pad () (Table.name table) label
  | Index_scan { table; label; _ } ->
    Fmt.pf ppf "%aIndexScan %s %s@." pad () (Table.name table) label
  | Interval_scan { table; label; _ } ->
    Fmt.pf ppf "%aIntervalScan %s %s@." pad () (Table.name table) label
  | Filter { input; label; _ } ->
    Fmt.pf ppf "%aFilter %s@." pad () label;
    pp ~indent:child ppf input
  | Nested_loop { left; right } ->
    Fmt.pf ppf "%aNestedLoop@." pad ();
    pp ~indent:child ppf left;
    pp ~indent:child ppf right
  | Hash_join { left; right; label; _ } ->
    Fmt.pf ppf "%aHashJoin %s@." pad () label;
    pp ~indent:child ppf left;
    pp ~indent:child ppf right
  | Left_outer_join { left; right; label; _ } ->
    Fmt.pf ppf "%aLeftOuterJoin %s@." pad () label;
    pp ~indent:child ppf left;
    pp ~indent:child ppf right
  | Project { input; names; _ } ->
    Fmt.pf ppf "%aProject [%s]@." pad ()
      (String.concat ", " (Array.to_list names));
    pp ~indent:child ppf input
  | Aggregate { input; label; _ } ->
    Fmt.pf ppf "%aAggregate %s@." pad () label;
    pp ~indent:child ppf input
  | Sort { input; label; _ } ->
    Fmt.pf ppf "%aSort %s@." pad () label;
    pp ~indent:child ppf input
  | Distinct input ->
    Fmt.pf ppf "%aDistinct@." pad ();
    pp ~indent:child ppf input
  | Limit { input; limit; offset } ->
    Fmt.pf ppf "%aLimit%s%s@." pad ()
      (match limit with Some n -> Printf.sprintf " limit=%d" n | None -> "")
      (match offset with Some n -> Printf.sprintf " offset=%d" n | None -> "");
    pp ~indent:child ppf input
  | Append inputs ->
    Fmt.pf ppf "%aAppend@." pad ();
    List.iter (pp ~indent:child ppf) inputs
  | One_row -> Fmt.pf ppf "%aOneRow@." pad ()

let to_string plan = Fmt.str "%a" (pp ~indent:0) plan
