(* Physical query plans.

   A plan is a tree of Volcano-style operators whose expressions are
   already compiled to closures; [Executor.run] turns it into a row
   sequence. Each node carries a human-readable label so EXPLAIN can
   print the tree without decompiling closures. *)

open Tip_storage
module Ast = Tip_sql.Ast

type agg_impl =
  | Agg_count_star
  | Agg_count
  | Agg_sum
  | Agg_avg
  | Agg_min
  | Agg_max
  | Agg_user of Extension.aggregate * string (* registered name *)

type agg_spec = {
  impl : agg_impl;
  arg : Expr_eval.compiled option; (* None only for count-star *)
  distinct : bool; (* aggregate over distinct argument values *)
  agg_label : string;
}

(* Per-operator runtime counters for EXPLAIN ANALYZE. Atomics because a
   wrapped operator may run inside parallel morsel workers; the reader
   (the renderer) only looks after execution finishes. *)
type op_stats = {
  actual_rows : int Atomic.t;
  actual_ns : int Atomic.t;
  ran_parallel : bool Atomic.t;
}

let fresh_stats () =
  {
    actual_rows = Atomic.make 0;
    actual_ns = Atomic.make 0;
    ran_parallel = Atomic.make false;
  }

type t =
  | Seq_scan of { table : Table.t; label : string }
  | Index_scan of {
      table : Table.t;
      btree : Btree.t;
      lo : Btree.bound;
      hi : Btree.bound;
      label : string;
    }
  | Interval_scan of {
      table : Table.t;
      index : Interval_index.t;
      lo : int;
      hi : int;
      label : string;
    }
  | Filter of {
      input : t;
      pred : Expr_eval.compiled;
      bpred : Expr_eval.batch_pred option;
        (* fused chunk kernel for the same predicate; None when the
           predicate was built outside the planner (subplans, rechecks) *)
      label : string;
    }
  | Nested_loop of { left : t; right : t }
  | Hash_join of {
      left : t;
      right : t;
      left_keys : Expr_eval.compiled list;
      right_keys : Expr_eval.compiled list;
      build_left : bool;
        (* cost-chosen build side: false builds on the right and streams
           the left (the historical default), true the reverse *)
      label : string;
    }
  | Left_outer_join of {
      left : t;
      right : t;
      on : Expr_eval.compiled;
      right_width : int;
      label : string;
    }
  | Project of {
      input : t;
      exprs : Expr_eval.compiled array;
      names : string array;
    }
  | Aggregate of {
      input : t;
      keys : Expr_eval.compiled list;
      aggs : agg_spec list;
      label : string;
    }
  | Sort of {
      input : t;
      by : (Expr_eval.compiled * Ast.order_direction) list;
      label : string;
    }
  | Distinct of t
  | Limit of { input : t; limit : int option; offset : int option }
  | Append of t list (* concatenation of same-arity inputs (UNION ALL) *)
  | Partition_scan of {
      parent : string; (* partitioned table name *)
      children : t list;
        (* one pipeline per surviving partition (scan plus pushed-down
           recheck filter), declared order; pruned partitions are absent *)
      total : int; (* partitions declared *)
      pruned : int;
      label : string;
    }
  | One_row (* FROM-less SELECT produces a single empty row *)
  | Virtual_scan of {
      vt_name : string;
      produce : unit -> Value.t array list;
      label : string;
    }
    (* snapshot of a registered virtual table (the tip_stat relations);
       never parallel — providers read mutable registries *)
  | Instrument of { input : t; stats : op_stats }
    (* transparent wrapper recording actual rows / time (EXPLAIN ANALYZE) *)

(* --- Parallelism-safety annotation ------------------------------------ *)

(* An aggregate whose partial states combine associatively across
   morsels: the built-ins (COUNT/SUM/MIN/MAX, and AVG as a (sum, count)
   pair) without DISTINCT, plus user aggregates that registered an
   [agg_merge]. DISTINCT needs global dedup, and mergeless user
   aggregates run opaque step functions, so both force the sequential
   aggregation path. *)
let mergeable_agg spec =
  (not spec.distinct)
  &&
  match spec.impl with
  | Agg_count_star | Agg_count | Agg_sum | Agg_avg | Agg_min | Agg_max -> true
  | Agg_user (agg, _) -> agg.Extension.agg_merge <> None

(* A morsel-parallel pipeline: a rid-splittable leaf scan with only
   per-row operators (and hash-join probes) above it. Index scans stay
   sequential — their rid order is key order, which the planner may be
   using to satisfy ORDER BY. *)
let rec parallel_pipeline = function
  | Seq_scan _ | Interval_scan _ -> true
  | Filter { input; _ } | Project { input; _ } -> parallel_pipeline input
  | Hash_join { left; right; build_left; _ } ->
    (* the probe side is the streaming pipeline; the build side is
       materialized up front either way *)
    parallel_pipeline (if build_left then right else left)
  | Instrument { input; _ } -> parallel_pipeline input
  | Index_scan _ | Nested_loop _ | Left_outer_join _ | Aggregate _ | Sort _
  | Distinct _ | Limit _ | Append _ | Partition_scan _ | One_row
  | Virtual_scan _ ->
    (* a partition scan is not itself one rid-splittable source; the
       executor recurses into each child pipeline, which parallelizes
       partition-wise on its own *)
    false

let rec parallel_safe = function
  | Aggregate { input; aggs; _ } ->
    parallel_pipeline input && List.for_all mergeable_agg aggs
  | Instrument { input; _ } -> parallel_safe input
  | plan -> parallel_pipeline plan

(* Does any subtree qualify? (The executor applies [parallel_safe] at
   every node, so e.g. the aggregate under a Project still runs
   parallel.) *)
let rec parallel_candidate plan =
  parallel_safe plan
  ||
  match plan with
  | Filter { input; _ }
  | Project { input; _ }
  | Aggregate { input; _ }
  | Sort { input; _ }
  | Distinct input
  | Limit { input; _ }
  | Instrument { input; _ } ->
    parallel_candidate input
  | Nested_loop { left; right }
  | Hash_join { left; right; _ }
  | Left_outer_join { left; right; _ } ->
    parallel_candidate left || parallel_candidate right
  | Append inputs -> List.exists parallel_candidate inputs
  | Partition_scan { children; _ } -> List.exists parallel_candidate children
  | Seq_scan _ | Index_scan _ | Interval_scan _ | One_row | Virtual_scan _ ->
    false

(* Wrap every operator with an [Instrument] node (EXPLAIN ANALYZE).
   Only the analyze path does this, so the planner and the plain
   executor never see wrapper nodes. Idempotent. *)
let rec instrument plan =
  match plan with
  | Instrument _ -> plan
  | _ ->
    let input =
      match plan with
      | Seq_scan _ | Index_scan _ | Interval_scan _ | One_row
      | Virtual_scan _ ->
        plan
      | Filter r -> Filter { r with input = instrument r.input }
      | Nested_loop { left; right } ->
        Nested_loop { left = instrument left; right = instrument right }
      | Hash_join r ->
        Hash_join { r with left = instrument r.left; right = instrument r.right }
      | Left_outer_join r ->
        Left_outer_join
          { r with left = instrument r.left; right = instrument r.right }
      | Project r -> Project { r with input = instrument r.input }
      | Aggregate r -> Aggregate { r with input = instrument r.input }
      | Sort r -> Sort { r with input = instrument r.input }
      | Distinct p -> Distinct (instrument p)
      | Limit r -> Limit { r with input = instrument r.input }
      | Append ps -> Append (List.map instrument ps)
      | Partition_scan r ->
        Partition_scan { r with children = List.map instrument r.children }
      | Instrument _ -> assert false
    in
    Instrument { input; stats = fresh_stats () }

let agg_name = function
  | Agg_count_star -> "count(*)"
  | Agg_count -> "count"
  | Agg_sum -> "sum"
  | Agg_avg -> "avg"
  | Agg_min -> "min"
  | Agg_max -> "max"
  | Agg_user (_, name) -> name

(* [Instrument] wrappers render as a suffix on the operator they wrap,
   e.g. "SeqScan m (actual rows=50000 time=0.812 ms, parallel)". *)
let stats_note stats =
  Printf.sprintf " (actual rows=%d time=%.3f ms%s)"
    (Atomic.get stats.actual_rows)
    (float_of_int (Atomic.get stats.actual_ns) /. 1e6)
    (if Atomic.get stats.ran_parallel then ", parallel" else "")

let rec pp ?(indent = 0) ppf plan = pp_suffix ~indent ~suffix:"" ppf plan

and pp_suffix ~indent ~suffix ppf plan =
  let pad ppf () = Fmt.string ppf (String.make (indent * 2) ' ') in
  let child = indent + 1 in
  match plan with
  | Instrument { input; stats } ->
    pp_suffix ~indent ~suffix:(suffix ^ stats_note stats) ppf input
  | Seq_scan { table; label } ->
    Fmt.pf ppf "%aSeqScan %s%s%s@." pad () (Table.name table) label suffix
  | Index_scan { table; label; _ } ->
    Fmt.pf ppf "%aIndexScan %s %s%s@." pad () (Table.name table) label suffix
  | Interval_scan { table; label; _ } ->
    Fmt.pf ppf "%aIntervalScan %s %s%s@." pad () (Table.name table) label suffix
  | Filter { input; label; _ } ->
    Fmt.pf ppf "%aFilter %s%s@." pad () label suffix;
    pp ~indent:child ppf input
  | Nested_loop { left; right } ->
    Fmt.pf ppf "%aNestedLoop%s@." pad () suffix;
    pp ~indent:child ppf left;
    pp ~indent:child ppf right
  | Hash_join { left; right; label; _ } ->
    Fmt.pf ppf "%aHashJoin %s%s@." pad () label suffix;
    pp ~indent:child ppf left;
    pp ~indent:child ppf right
  | Left_outer_join { left; right; label; _ } ->
    Fmt.pf ppf "%aLeftOuterJoin %s%s@." pad () label suffix;
    pp ~indent:child ppf left;
    pp ~indent:child ppf right
  | Project { input; names; _ } ->
    Fmt.pf ppf "%aProject [%s]%s@." pad ()
      (String.concat ", " (Array.to_list names))
      suffix;
    pp ~indent:child ppf input
  | Aggregate { input; label; _ } ->
    Fmt.pf ppf "%aAggregate %s%s@." pad () label suffix;
    pp ~indent:child ppf input
  | Sort { input; label; _ } ->
    Fmt.pf ppf "%aSort %s%s@." pad () label suffix;
    pp ~indent:child ppf input
  | Distinct input ->
    Fmt.pf ppf "%aDistinct%s@." pad () suffix;
    pp ~indent:child ppf input
  | Limit { input; limit; offset } ->
    Fmt.pf ppf "%aLimit%s%s%s@." pad ()
      (match limit with Some n -> Printf.sprintf " limit=%d" n | None -> "")
      (match offset with Some n -> Printf.sprintf " offset=%d" n | None -> "")
      suffix;
    pp ~indent:child ppf input
  | Append inputs ->
    Fmt.pf ppf "%aAppend%s@." pad () suffix;
    List.iter (pp ~indent:child ppf) inputs
  | Partition_scan { parent; children; total; pruned; label } ->
    Fmt.pf ppf "%aPartitionScan %s partitions=%d/%d pruned=%d%s%s@." pad ()
      parent (total - pruned) total pruned label suffix;
    List.iter (pp ~indent:child ppf) children
  | Virtual_scan { vt_name; label; _ } ->
    Fmt.pf ppf "%aVirtualScan %s%s%s@." pad () vt_name label suffix
  | One_row -> Fmt.pf ppf "%aOneRow%s@." pad () suffix

let to_string plan = Fmt.str "%a" (pp ~indent:0) plan
