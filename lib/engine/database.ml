(* The database facade: parse, bind NOW, plan, execute.

   NOW handling (the paper's Section 2/4 semantics): each statement binds
   the special symbol NOW exactly once, to the current transaction time —
   either the wall clock or a per-database override installed by
   [SET NOW = ...] (the what-if mechanism the TIP Browser exposes). The
   binding is pushed into [Tip_core.Tx_clock] for the duration of the
   statement so that every blade routine, cast and comparison observes
   the same frozen instant.

   Transactions are single-connection with an in-memory undo log: insert,
   delete and update are undoable; DDL auto-commits (documented in
   DESIGN.md). *)

open Tip_storage
module Ast = Tip_sql.Ast
module Parser = Tip_sql.Parser
module Metrics = Tip_obs.Metrics
module Wait = Tip_obs.Wait
module Trace = Tip_obs.Trace
module Introspect = Tip_obs.Introspect
module Deadline = Tip_core.Deadline

exception Error of string

let db_error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let m_statements =
  Metrics.counter "engine_statements_total"
    ~help:"Statements executed by the embedded engine"

let m_checkpoints =
  Metrics.counter "checkpoints_total" ~help:"Durable checkpoints taken"

let h_statement_ns =
  Metrics.histogram "engine_statement_ns"
    ~help:"Per-statement latency (parse excluded), nanoseconds"

let m_cancelled =
  Metrics.counter "engine_statements_cancelled_total"
    ~help:"Statements aborted by their governance token (any reason)"

(* The executor's scan counter, re-registered by name (registration is
   idempotent and returns the same handle): reading it before and after
   a statement yields that statement's rows-scanned tally for the
   fingerprint store — statements execute serially per database, so the
   delta is attributable. *)
let m_rows_scanned = Metrics.counter "exec_rows_scanned_total"

let m_timed_out =
  Metrics.counter "engine_statements_timed_out_total"
    ~help:"Statements aborted because their deadline passed"

(* Statement tracing; enable with Logs.Src.set_level (or tip_shell
   --verbose). *)
let log_src = Logs.Src.create "tip.database" ~doc:"TIP statement execution"

module Log = (val Logs.src_log log_src : Logs.LOG)

type undo =
  | U_insert of Table.t * int
  | U_delete of Table.t * Value.t array
  | U_update of Table.t * int * Value.t array
  | U_savepoint of string (* marker; undone entries stop here *)

type tx = { mutable undo : undo list }

(* Redo records awaiting the statement/transaction boundary. DML drops
   on ROLLBACK; DDL (and CTAS backfill) survives it, mirroring the
   in-memory rule that DDL auto-commits and is not undoable. *)
type pending_entry =
  | P_dml of Wal.record
  | P_ddl of Wal.record
  | P_mark of string (* savepoint marker, mirrors U_savepoint *)

type durability = {
  dir : string;
  wal : Wal.writer;
  mutable gen : int; (* generation shared by snapshot and log *)
  mutable epoch : int; (* promotion epoch (DESIGN.md §15); bumps on promote *)
  archive_dir : string option; (* seal generations here at checkpoint *)
  checkpoint_every : int; (* auto-checkpoint threshold in records; 0 = off *)
  mutable last_commit_at : int option;
      (* instant (unix seconds) of the newest commit in the log — stamps
         snapshots ([asof]) so backups know their PITR floor *)
}

type t = {
  catalog : Catalog.t;
  ext : Extension.t;
  mutable now_override : Tip_core.Chronon.t option;
  mutable tx : tx option;
  mutable durability : durability option;
  mutable pending : pending_entry list; (* newest first *)
  mutable stmt_undo : undo list;
      (* the running statement's own undo entries (newest first), kept
         even outside transactions so a cancelled statement can revert
         its partial effects without touching committed state *)
  mutable timeout_ms : int option;
      (* default statement deadline, set by SET TIMEOUT; applied to
         statements whose caller armed no deadline of their own *)
  mutable read_only : bool;
      (* a read replica: every mutating statement is refused with a
         typed READ_ONLY error; the replication stream bypasses the
         statement layer entirely (Wal.apply against the catalog) *)
}

type result =
  | Rows of { names : string list; rows : Value.t array list }
  | Affected of int
  | Message of string

(* [catalog] lets a database be opened over a catalog restored from a
   snapshot (any extension types must be registered before loading). *)
let create ?catalog () =
  let ext = Extension.create () in
  Builtins.install ext;
  { catalog = (match catalog with Some c -> c | None -> Catalog.create ());
    ext;
    now_override = None;
    tx = None;
    durability = None;
    pending = [];
    stmt_undo = [];
    timeout_ms = None;
    read_only = false }

let catalog t = t.catalog
let extension t = t.ext
let now_override t = t.now_override
let in_transaction t = t.tx <> None
let durability_dir t = Option.map (fun d -> d.dir) t.durability
let statement_timeout_ms t = t.timeout_ms
let set_read_only t flag = t.read_only <- flag
let read_only t = t.read_only

let log_undo t u =
  t.stmt_undo <- u :: t.stmt_undo;
  match t.tx with Some tx -> tx.undo <- u :: tx.undo | None -> ()

(* --- Write-ahead journaling -------------------------------------------- *)

let journaling t = t.durability <> None
let journal_dml t r = if journaling t then t.pending <- P_dml r :: t.pending
let journal_ddl t r = if journaling t then t.pending <- P_ddl r :: t.pending

let row_cells row = Array.map Persist.serialize_value row

let journal_insert ?(ddl = false) t table row =
  let r = Wal.Insert { table = Table.name table; cells = row_cells row } in
  if ddl then journal_ddl t r else journal_dml t r

let journal_delete t table row =
  journal_dml t (Wal.Delete { table = Table.name table; cells = row_cells row })

let journal_update t table ~old_row ~new_row =
  journal_dml t
    (Wal.Update
       { table = Table.name table;
         old_cells = row_cells old_row;
         new_cells = row_cells new_row })

(* Appends the statement's records (plus a commit marker) to the log.
   Only called at a commit boundary: outside a transaction. The marker
   is stamped with the statement's NOW (so SET NOW keeps replay
   deterministic) — the transaction-time instant point-in-time recovery
   stops on. *)
let flush_pending t =
  match t.durability with
  | None -> ()
  | Some d ->
    if t.tx = None && t.pending <> [] then begin
      let records =
        List.filter_map
          (function P_dml r | P_ddl r -> Some r | P_mark _ -> None)
          (List.rev t.pending)
      in
      t.pending <- [];
      if records <> [] then begin
        let at =
          Tip_core.Chronon.to_unix_seconds
            (match t.now_override with
            | Some c -> c
            | None -> Tip_core.Tx_clock.now ())
        in
        Wal.commit ~at d.wal records;
        d.last_commit_at <- Some at
      end
    end

(* Atomic checkpoint: render the catalog to snapshot.tmp, fsync, rename
   over the old snapshot, then truncate the log — both stamped with the
   next generation so a crash between the two steps leaves a stale log
   that recovery skips instead of double-applying. With an archive
   attached, the closing generation is sealed *before* the snapshot
   rename: any stale log a crash can leave behind is therefore already
   in the archive, so the chain never loses a generation to the
   crash window. *)
let checkpoint t =
  match t.durability with
  | None -> 0
  | Some d ->
    Wait.with_wait Wait.Checkpoint @@ fun () ->
    flush_pending t;
    (* Bring the durability point current before rendering the
       snapshot: an Every_n policy may be holding up to n-1 commits it
       has not fsynced, and a checkpoint is an explicit durability
       request. *)
    if Wal.pending_sync d.wal then Wal.sync d.wal;
    let truncated = Wal.record_count d.wal in
    Option.iter
      (fun adir ->
        Archive.seal ~dir:adir ~wal_path:(Recovery.wal_path ~dir:d.dir)
          ~gen:d.gen)
      d.archive_dir;
    let gen = d.gen + 1 in
    Persist.save ~wal_gen:gen ~epoch:d.epoch ?asof:d.last_commit_at t.catalog
      (Recovery.snapshot_path ~dir:d.dir);
    Wal.truncate d.wal ~gen;
    d.gen <- gen;
    Metrics.incr m_checkpoints;
    Tip_obs.Events.record ~kind:"checkpoint"
      ~detail:
        (Printf.sprintf "gen %d sealed, %d log record(s) truncated" (gen - 1)
           truncated);
    truncated

let maybe_auto_checkpoint t =
  match t.durability with
  | Some d
    when d.checkpoint_every > 0
         && t.tx = None
         && Wal.record_count d.wal >= d.checkpoint_every ->
    Log.info (fun m ->
        m "auto checkpoint (%d log records)" (Wal.record_count d.wal));
    ignore (checkpoint t)
  | Some _ | None -> ()

(* Renders an online backup into [dir]: the same consistent snapshot a
   replica bootstrap ships, plus an origin stamp recording the
   (generation, offset, epoch, asof) it pairs with — the point the
   archived chain resumes from at restore. Runs under the caller's
   (server's) database lock; offsets are commit boundaries because
   flushing happens at statement boundaries only. *)
let backup t ~dir =
  match t.durability with
  | None -> db_error "BACKUP requires a durable database (--durability)"
  | Some d ->
    if t.tx <> None then
      db_error "BUSY: cannot render a backup inside an open transaction";
    flush_pending t;
    if Wal.pending_sync d.wal then Wal.sync d.wal;
    let origin =
      { Archive.o_gen = d.gen;
        o_offset = Wal.offset d.wal;
        o_epoch = d.epoch;
        o_asof = d.last_commit_at }
    in
    Archive.write_backup ~dir
      ~snapshot:
        (Persist.snapshot_string ~wal_gen:d.gen ~epoch:d.epoch
           ?asof:d.last_commit_at t.catalog)
      origin;
    Tip_obs.Events.record ~kind:"backup"
      ~detail:
        (Printf.sprintf "to %s at gen %d offset %d epoch %d" dir d.gen
           origin.Archive.o_offset d.epoch);
    origin

let undo_entry = function
  | U_insert (table, rid) -> ignore (Table.delete table rid)
  | U_delete (table, row) -> ignore (Table.insert table row)
  | U_update (table, rid, old_row) -> ignore (Table.update table rid old_row)
  | U_savepoint _ -> ()

(* --- Value coercion into a column ---------------------------------------- *)

(* Implements the blade's "automatic casts from SQL strings": a string
   arriving in a Chronon/Span/.../DATE column is parsed as a literal of
   that type; other mismatches go through registered implicit casts. *)
let coerce_into t ~now col_ty v =
  match Schema.coerce col_ty v with
  | Some v -> v
  | None -> (
    match col_ty, v with
    | Schema.T_ext target, Value.Str s -> (
      match Value.lookup_type target with
      | Some vt -> (
        match vt.Value.parse s with
        | v -> v
        | exception _ -> db_error "cannot parse %S as %s" s target)
      | None -> db_error "type %s not registered" target)
    | Schema.T_ext target, v -> (
      match
        Extension.find_implicit_cast t.ext ~from_type:(Value.type_name v)
          ~to_type:target
      with
      | Some cast -> cast.Extension.cast_impl ~now v
      | None ->
        db_error "cannot store %s in a %s column" (Value.type_name v) target)
    | Schema.T_date, Value.Str s -> (
      match Tip_core.Chronon.of_string s with
      | Some c -> Value.Date (Tip_core.Chronon.start_of_day c)
      | None -> db_error "cannot parse %S as DATE" s)
    | Schema.T_date, v -> (
      match Extension.to_chronon t.ext v with
      | Some c -> Value.Date (Tip_core.Chronon.start_of_day c)
      | None -> db_error "cannot store %s in a DATE column" (Value.type_name v))
    | _, _ ->
      db_error "cannot store %s in a %s column" (Value.type_name v)
        (Schema.type_name col_ty))

(* --- Statement execution ----------------------------------------------------- *)

let statement_now t =
  match t.now_override with
  | Some c -> c
  | None -> Tip_core.Tx_clock.now ()

let make_ectx ?(token = Tip_core.Deadline.never) t ~now ~params =
  { Expr_eval.now;
    params = List.map (fun (k, v) -> (String.lowercase_ascii k, v)) params;
    ext = t.ext;
    token;
    poll_tick = 0 }

(* Evaluates an expression that may reference parameters and subqueries
   but no columns (INSERT values, SET NOW). *)
let eval_standalone t ectx expr =
  let env =
    Expr_eval.base_env ~ext:t.ext
      ~plan_subquery:(Planner.subquery_runner ~ext:t.ext ~ectx t.catalog)
      ~resolve_column:(fun _ name ->
        db_error "column reference %s not allowed here" name)
      ()
  in
  (Expr_eval.compile env expr) ectx [||]

let run_select t ectx select =
  let plan, names = Planner.plan ~ext:t.ext ~ectx t.catalog select in
  let rows = Executor.collect_parallel ectx plan in
  Rows { names = Array.to_list names; rows }

(* EXPLAIN ANALYZE: plan under a "plan" span, wrap every operator with
   an [Instrument] node, execute for real under an "execute" span, and
   render the tree annotated with actual rows / time / parallel
   markers. The whole run shares one NOW — it was bound (exactly once)
   when [exec_statement_raw] opened the root span, and [Tx_clock] is
   overridden with it, so an operator evaluating NOW late in a long run
   sees the same instant as the first (DESIGN.md §9). *)
let run_explain_analyze t ectx ~now target =
  let trace =
    match Trace.ambient () with
    | Some tr -> tr
    | None -> Trace.start "statement"
  in
  let plan =
    Trace.with_span trace "plan" (fun () ->
        match target with
        | Ast.Select select ->
          fst (Planner.plan ~ext:t.ext ~ectx t.catalog select)
        | Ast.Select_compound compound ->
          fst (Planner.plan_union ~ext:t.ext ~ectx t.catalog compound)
        | _ -> db_error "EXPLAIN ANALYZE supports only SELECT")
  in
  let plan = Plan.instrument plan in
  let rows =
    Trace.with_span trace "execute" (fun () ->
        Executor.collect_parallel ectx plan)
  in
  let span_ns name =
    match Trace.find_child (Trace.root trace) name with
    | Some sp -> sp.Trace.sp_elapsed_ns
    | None -> 0
  in
  Message
    (Planner.explain_analyze
       ~now:(Tip_core.Chronon.to_string now)
       ~rows:(List.length rows) ~plan_ns:(span_ns "plan")
       ~exec_ns:(span_ns "execute") plan)

(* Single-table DML helper: compiled predicate + matching rids. *)
let dml_matches t ectx table where =
  let schema = Table.schema table in
  let layout_resolve _q name = Schema.column_index_exn schema name in
  let pred =
    Option.map
      (fun e ->
        Expr_eval.compile
          (Expr_eval.base_env ~ext:t.ext
             ~plan_subquery:
               (Planner.subquery_runner_for_table ~ext:t.ext ~ectx t.catalog
                  schema)
             ~resolve_column:layout_resolve ())
          e)
      where
  in
  let matches = ref [] in
  List.iter
    (fun rid ->
      Expr_eval.tick ectx;
      match Table.get table rid with
      | None -> ()
      | Some row ->
        let keep =
          match pred with
          | None -> true
          | Some p -> Expr_eval.to_predicate p ectx row
        in
        if keep then matches := (rid, row) :: !matches)
    (Table.rids table);
  List.rev !matches

(* The transaction-time shadow table of [table], when WITH HISTORY is
   on: recognized structurally (same columns plus a trailing [_tt]), so
   the link survives snapshots. *)
let history_of t table =
  match Catalog.find_table t.catalog (Table.name table ^ "_history") with
  | None -> None
  | Some h ->
    let hschema = Table.schema h in
    let n = Schema.arity hschema in
    if
      n = Schema.arity (Table.schema table) + 1
      && (Schema.column hschema (n - 1)).Schema.name = "_tt"
    then Some (h, n - 1)
    else None

(* Appends an open history row for a freshly current [row]. *)
let history_open t ~now table row =
  match history_of t table, Extension.history_support t.ext with
  | Some (h, _), Some support ->
    let hrow = Array.append row [| support.Extension.open_timestamp ~now |] in
    let hrid = Table.insert h hrow in
    log_undo t (U_insert (h, hrid));
    journal_insert t h (Table.get_exn h hrid)
  | _, _ -> ()

(* Closes the open history row matching [row] (all columns equal). *)
let history_close t ~now table row =
  match history_of t table, Extension.history_support t.ext with
  | Some (h, tt), Some support ->
    let closed = ref false in
    Table.iteri
      (fun hrid hrow ->
        if not !closed then begin
          let same =
            support.Extension.is_open hrow.(tt)
            &&
            let rec all i =
              i >= tt || (Value.equal hrow.(i) row.(i) && all (i + 1))
            in
            all 0
          in
          if same then begin
            let hrow' = Array.copy hrow in
            hrow'.(tt) <- support.Extension.close_timestamp ~now hrow.(tt);
            if Table.update h hrid hrow' then begin
              log_undo t (U_update (h, hrid, hrow));
              journal_update t h ~old_row:hrow ~new_row:(Table.get_exn h hrid)
            end;
            closed := true
          end
        end)
      h
  | _, _ -> ()

let insert_row t ~now table values =
  let schema = Table.schema table in
  let row =
    Array.mapi
      (fun i v -> coerce_into t ~now (Schema.column schema i).Schema.ty v)
      values
  in
  let rid = Table.insert table row in
  Catalog.note_partition_write t.catalog table row;
  log_undo t (U_insert (table, rid));
  journal_insert t table (Table.get_exn table rid);
  history_open t ~now table row;
  rid

(* Coerce a value row against the partitioned parent's schema, route it
   to the owning partition by its period start, and insert there. The
   coercion must happen before routing (string literals only gain an
   extent once they become period values); [insert_row] re-coercing the
   already-typed row is a no-op. *)
let insert_routed t ~now pt values =
  let schema = pt.Partition.pt_schema in
  if Array.length values <> Schema.arity schema then
    db_error "INSERT arity mismatch: expected %d values, got %d"
      (Schema.arity schema) (Array.length values);
  let row =
    Array.mapi
      (fun i v -> coerce_into t ~now (Schema.column schema i).Schema.ty v)
      values
  in
  let part =
    try Partition.route pt row
    with Partition.Partition_error msg -> db_error "%s" msg
  in
  ignore (insert_row t ~now part.Partition.p_table row)

let reorder_columns schema columns values =
  match columns with
  | None ->
    if List.length values <> Schema.arity schema then
      db_error "INSERT arity mismatch: expected %d values, got %d"
        (Schema.arity schema) (List.length values);
    Array.of_list values
  | Some cols ->
    if List.length cols <> List.length values then
      db_error "INSERT column list and VALUES differ in length";
    let row = Array.make (Schema.arity schema) Value.Null in
    List.iter2
      (fun col v ->
        let i = Schema.column_index_exn schema col in
        row.(i) <- v)
      cols values;
    row

(* Statements a read replica may run: nothing that mutates rows or the
   catalog, no transactions (a replica has nothing of its own to
   commit), no CHECKPOINT (the replica's source of truth is the
   primary's WAL). ANALYZE and COPY TO are allowed — they touch only
   local planner statistics / an output file. *)
let replica_allowed = function
  | Ast.Select _ | Ast.Select_compound _ | Ast.Explain _ | Ast.Show_tables
  | Ast.Describe _ | Ast.Stats _ | Ast.Analyze _ | Ast.Set_timeout _
  | Ast.Set_now _ | Ast.Copy_to _ ->
    true
  | _ -> false

let exec_statement_raw t ~token ~params stmt =
  if t.read_only && not (replica_allowed stmt) then
    db_error "READ_ONLY: this is a read replica; send writes to the primary";
  (* The statement's NOW is read from the clock exactly once, here, and
     frozen for the whole statement: the root span opens with it, and
     [Tx_clock.with_override] makes every later read — blade routines,
     plan operators, EXPLAIN ANALYZE instrumentation — return the same
     instant (the audit in DESIGN.md §9 lists the call sites). *)
  let now = statement_now t in
  let trace = Trace.start "statement" in
  Trace.annotate trace "now" (Tip_core.Chronon.to_string now);
  Log.debug (fun m ->
      m "executing (NOW = %s): %s"
        (Tip_core.Chronon.to_string now)
        (Tip_sql.Pretty.statement_to_string stmt));
  Tip_core.Tx_clock.with_override now (fun () ->
      Trace.with_ambient trace @@ fun () ->
      Fun.protect ~finally:(fun () -> ignore (Trace.finish trace)) @@ fun () ->
      let ectx = make_ectx ~token t ~now ~params in
      match stmt with
      | Ast.Select select -> run_select t ectx select
      | Ast.Select_compound compound ->
        let plan, names =
          Planner.plan_union ~ext:t.ext ~ectx t.catalog compound
        in
        Rows
          { names = Array.to_list names;
            rows = Executor.collect_parallel ectx plan }
      | Ast.Explain { analyze = false; target = Ast.Select select } ->
        let plan, _ = Planner.plan ~ext:t.ext ~ectx t.catalog select in
        Message (Planner.explain plan)
      | Ast.Explain { analyze = false; target = Ast.Select_compound compound }
        ->
        let plan, _ = Planner.plan_union ~ext:t.ext ~ectx t.catalog compound in
        Message (Planner.explain plan)
      | Ast.Explain { analyze = true; target } ->
        run_explain_analyze t ectx ~now target
      | Ast.Explain _ -> db_error "EXPLAIN supports only SELECT"
      | Ast.Insert { table; columns; source } -> (
        (* A partitioned parent accepts INSERTs like a plain table; the
           only difference is the sink, which routes each row to its
           owning partition. *)
        let schema, sink =
          match Catalog.find_table t.catalog table with
          | Some tbl ->
            (Table.schema tbl, fun row -> ignore (insert_row t ~now tbl row))
          | None -> (
            match Catalog.find_partitioned t.catalog table with
            | Some pt ->
              (pt.Partition.pt_schema, fun row -> insert_routed t ~now pt row)
            | None -> db_error "no such table: %s" table)
        in
        match source with
        | Ast.Values rows ->
          let n =
            List.fold_left
              (fun n exprs ->
                let values = List.map (eval_standalone t ectx) exprs in
                let row = reorder_columns schema columns values in
                sink row;
                n + 1)
              0 rows
          in
          Affected n
        | Ast.Query select ->
          let plan, _ = Planner.plan ~ext:t.ext ~ectx t.catalog select in
          let n = ref 0 in
          Seq.iter
            (fun produced ->
              let row =
                reorder_columns schema columns (Array.to_list produced)
              in
              sink row;
              incr n)
            (Executor.run ectx plan);
          Affected !n)
      | Ast.Update { table = tname; assignments; where } -> (
        let compile_assignments schema =
          let layout_resolve _q name = Schema.column_index_exn schema name in
          let env =
            Expr_eval.base_env ~ext:t.ext
              ~plan_subquery:
                (Planner.subquery_runner_for_table ~ext:t.ext ~ectx t.catalog
                   schema)
              ~resolve_column:layout_resolve ()
          in
          List.map
            (fun (col, e) ->
              let i = Schema.column_index_exn schema col in
              (i, Expr_eval.compile env e))
            assignments
        in
        let apply_assignments schema compiled old_row =
          let row = Array.copy old_row in
          List.iter
            (fun (i, c) ->
              row.(i) <-
                coerce_into t ~now (Schema.column schema i).Schema.ty
                  (c ectx old_row))
            compiled;
          row
        in
        let update_in_place table rid old_row row =
          if Table.update table rid row then begin
            Catalog.note_partition_write t.catalog table row;
            log_undo t (U_update (table, rid, old_row));
            journal_update t table ~old_row ~new_row:(Table.get_exn table rid);
            history_close t ~now table old_row;
            match Table.get table rid with
            | Some stored -> history_open t ~now table stored
            | None -> ()
          end
        in
        match Catalog.find_table t.catalog tname with
        | Some table ->
          let schema = Table.schema table in
          let compiled = compile_assignments schema in
          let matches = dml_matches t ectx table where in
          List.iter
            (fun (rid, old_row) ->
              Expr_eval.tick ectx;
              update_in_place table rid old_row
                (apply_assignments schema compiled old_row))
            matches;
          Affected (List.length matches)
        | None -> (
          match Catalog.find_partitioned t.catalog tname with
          | None -> db_error "no such table: %s" tname
          | Some pt ->
            (* Children share the parent's column layout, so assignments
               compile once against the parent schema. All matches are
               collected before any row is touched: a row moved forward
               into a not-yet-visited partition must not match again
               there (the Halloween problem). *)
            let schema = pt.Partition.pt_schema in
            let compiled = compile_assignments schema in
            let matches =
              List.concat_map
                (fun (src : Partition.part) ->
                  List.map
                    (fun (rid, old_row) -> (src, rid, old_row))
                    (dml_matches t ectx src.Partition.p_table where))
                (Partition.all_parts pt)
            in
            List.iter
              (fun ((src : Partition.part), rid, old_row) ->
                Expr_eval.tick ectx;
                let table = src.Partition.p_table in
                let row = apply_assignments schema compiled old_row in
                let dst =
                  try Partition.route pt row
                  with Partition.Partition_error msg -> db_error "%s" msg
                in
                if dst.Partition.p_name = src.Partition.p_name then
                  update_in_place table rid old_row row
                else if Table.delete table rid then begin
                  (* Cross-partition move, journaled as a child-table
                     DELETE plus INSERT so recovery and replicas replay
                     it without partition awareness. *)
                  log_undo t (U_delete (table, old_row));
                  journal_delete t table old_row;
                  history_close t ~now table old_row;
                  ignore (insert_row t ~now dst.Partition.p_table row)
                end)
              matches;
            Affected (List.length matches)))
      | Ast.Delete { table = tname; where } -> (
        let delete_from table =
          let matches = dml_matches t ectx table where in
          List.iter
            (fun (rid, old_row) ->
              Expr_eval.tick ectx;
              if Table.delete table rid then begin
                log_undo t (U_delete (table, old_row));
                journal_delete t table old_row;
                history_close t ~now table old_row
              end)
            matches;
          List.length matches
        in
        match Catalog.find_table t.catalog tname with
        | Some table -> Affected (delete_from table)
        | None -> (
          match Catalog.find_partitioned t.catalog tname with
          | Some pt ->
            Affected
              (List.fold_left
                 (fun acc (p : Partition.part) ->
                   acc + delete_from p.Partition.p_table)
                 0 (Partition.all_parts pt))
          | None -> db_error "no such table: %s" tname))
      | Ast.Create_table { table; if_not_exists; columns; with_history; partition_by }
        ->
        if
          if_not_exists
          && (Catalog.find_table t.catalog table <> None
             || Catalog.find_partitioned t.catalog table <> None)
        then Message (Printf.sprintf "table %s already exists, skipped" table)
        else begin
          let cols =
            List.map
              (fun (c : Ast.column_def) ->
                let ty = Schema.type_of_name ?param:c.col_type_param c.col_type in
                Schema.make_column ~not_null:c.col_not_null
                  ~primary_key:c.col_primary_key c.col_name ty)
              columns
          in
          match partition_by with
          | Some pc ->
            if with_history then
              db_error
                "PARTITION BY cannot be combined with WITH HISTORY (partition \
                 the current table and shadow it manually if both are needed)";
            let parse_instant pname s =
              match Tip_core.Chronon.of_string s with
              | Some c -> Tip_core.Chronon.to_unix_seconds c
              | None ->
                db_error "partition %s: cannot parse instant '%s'" pname s
            in
            let parts =
              List.map
                (fun (d : Ast.partition_def) ->
                  match d.Ast.part_range with
                  | None -> (d.Ast.part_name, None)
                  | Some (f, upto) ->
                    ( d.Ast.part_name,
                      Some
                        ( parse_instant d.Ast.part_name f,
                          parse_instant d.Ast.part_name upto ) ))
                pc.Ast.part_defs
            in
            (try
               ignore
                 (Catalog.create_partitioned t.catalog
                    (Schema.make ~table_name:table cols)
                    ~column:pc.Ast.part_column ~parts)
             with Partition.Partition_error msg -> db_error "%s" msg);
            journal_ddl t
              (Wal.Create_partitioned
                 { table; columns = cols; column = pc.Ast.part_column; parts });
            Message
              (Printf.sprintf "table %s created (%d partitions)"
                 (String.lowercase_ascii table)
                 (List.length parts))
          | None ->
          (* Resolve history support before creating anything, so a
             failure leaves no half-created table behind. *)
          let history_cols =
            if not with_history then None
            else begin
              match Extension.history_support t.ext with
              | None ->
                db_error
                  "WITH HISTORY requires a temporal blade with history support"
              | Some support ->
                (* history rows repeat values over time, so the shadow
                   drops uniqueness but keeps NOT NULL *)
                Some
                  (List.map
                     (fun (c : Schema.column) ->
                       Schema.make_column ~not_null:c.Schema.not_null
                         c.Schema.name c.Schema.ty)
                     cols
                  @ [ Schema.make_column "_tt"
                        (Schema.type_of_name support.Extension.timestamp_type)
                    ])
            end
          in
          ignore (Catalog.create_table t.catalog (Schema.make ~table_name:table cols));
          journal_ddl t (Wal.Create_table { table; columns = cols });
          Option.iter
            (fun hcols ->
              let table = table ^ "_history" in
              ignore
                (Catalog.create_table t.catalog
                   (Schema.make ~table_name:table hcols));
              journal_ddl t (Wal.Create_table { table; columns = hcols }))
            history_cols;
          Message
            (Printf.sprintf "table %s created%s"
               (String.lowercase_ascii table)
               (if with_history then " (with transaction-time history)" else ""))
        end
      | Ast.Create_table_as { table; query } ->
        (* Column types are inferred from the first non-NULL value in
           each output column; all-NULL columns default to TEXT. *)
        let plan, names = Planner.plan ~ext:t.ext ~ectx t.catalog query in
        let rows = Executor.collect_parallel ectx plan in
        let type_of_column i =
          let rec probe = function
            | [] -> Schema.T_char None
            | row :: rest -> (
              match row.(i) with
              | Value.Null -> probe rest
              | Value.Int _ -> Schema.T_int
              | Value.Float _ -> Schema.T_float
              | Value.Bool _ -> Schema.T_bool
              | Value.Str _ -> Schema.T_char None
              | Value.Date _ -> Schema.T_date
              | Value.Ext (name, _) -> Schema.T_ext name)
          in
          probe rows
        in
        let cols =
          Array.to_list
            (Array.mapi
               (fun i name -> Schema.make_column name (type_of_column i))
               names)
        in
        let created =
          Catalog.create_table t.catalog (Schema.make ~table_name:table cols)
        in
        journal_ddl t (Wal.Create_table { table; columns = cols });
        (* CTAS backfill is DDL-class in the log: like the table itself
           it is not undone by ROLLBACK. *)
        List.iter
          (fun row ->
            let rid = Table.insert created row in
            journal_insert ~ddl:true t created (Table.get_exn created rid))
          rows;
        Message
          (Printf.sprintf "table %s created (%d rows)"
             (String.lowercase_ascii table)
             (List.length rows))
      | Ast.Drop_table { table; if_exists } ->
        if Catalog.drop_table t.catalog table then begin
          journal_ddl t (Wal.Drop_table table);
          Message (Printf.sprintf "table %s dropped" table)
        end
        else if if_exists then Message "no such table, skipped"
        else db_error "no such table: %s" table
      | Ast.Create_index { index; table; column; unique; using } -> (
        let kind =
          match Option.map String.lowercase_ascii using with
          | None | Some "btree" | Some "ordered" -> Table.Ordered
          | Some "interval" -> Table.Interval
          | Some other -> db_error "unknown index kind %s" other
        in
        let journal_one ~idx_name ~table_name =
          journal_ddl t
            (Wal.Create_index
               { idx_name;
                 table = table_name;
                 column;
                 interval = kind = Table.Interval;
                 unique })
        in
        match Catalog.find_partitioned t.catalog table with
        | Some pt ->
          (* One physical index per child, [<index>__<partition>]; DROP
             INDEX on the parent-level name removes the whole family. *)
          List.iter
            (fun (p : Partition.part) ->
              let idx_name = index ^ "__" ^ p.Partition.p_name in
              let table_name = Table.name p.Partition.p_table in
              ignore
                (Catalog.create_index t.catalog ~idx_name ~table_name ~column
                   ~unique ~kind);
              journal_one ~idx_name ~table_name)
            (Partition.all_parts pt);
          Message
            (Printf.sprintf "index %s created (%d partitions)" index
               (List.length (Partition.all_parts pt)))
        | None ->
          ignore
            (Catalog.create_index t.catalog ~idx_name:index ~table_name:table
               ~column ~unique ~kind);
          journal_one ~idx_name:index ~table_name:table;
          Message (Printf.sprintf "index %s created" index))
      | Ast.Drop_index { index } ->
        if Catalog.drop_index t.catalog index then begin
          journal_ddl t (Wal.Drop_index index);
          Message (Printf.sprintf "index %s dropped" index)
        end
        else begin
          (* A parent-level name for a per-partition index family:
             drop every [<index>__<partition>] member that exists. *)
          let dropped = ref 0 in
          List.iter
            (fun parent ->
              match Catalog.find_partitioned t.catalog parent with
              | None -> ()
              | Some pt ->
                List.iter
                  (fun (p : Partition.part) ->
                    let idx_name = index ^ "__" ^ p.Partition.p_name in
                    if Catalog.drop_index t.catalog idx_name then begin
                      journal_ddl t (Wal.Drop_index idx_name);
                      incr dropped
                    end)
                  (Partition.all_parts pt))
            (Catalog.partitioned_names t.catalog);
          if !dropped > 0 then
            Message
              (Printf.sprintf "index %s dropped (%d partitions)" index !dropped)
          else db_error "no such index: %s" index
        end
      | Ast.Begin_tx ->
        if t.tx <> None then db_error "already in a transaction";
        t.tx <- Some { undo = [] };
        Message "BEGIN"
      | Ast.Commit_tx ->
        if t.tx = None then db_error "no transaction in progress";
        t.tx <- None;
        Message "COMMIT"
      | Ast.Rollback_tx -> (
        match t.tx with
        | None -> db_error "no transaction in progress"
        | Some tx ->
          List.iter undo_entry tx.undo;
          (* DML journal entries die with the rollback; DDL survives it,
             exactly like the in-memory state. *)
          t.pending <-
            List.filter
              (function P_ddl _ -> true | P_dml _ | P_mark _ -> false)
              t.pending;
          t.tx <- None;
          Message "ROLLBACK")
      | Ast.Savepoint name -> (
        match t.tx with
        | None -> db_error "SAVEPOINT requires a transaction"
        | Some tx ->
          tx.undo <- U_savepoint (String.lowercase_ascii name) :: tx.undo;
          if journaling t then
            t.pending <- P_mark (String.lowercase_ascii name) :: t.pending;
          Message (Printf.sprintf "SAVEPOINT %s" name))
      | Ast.Rollback_to name -> (
        match t.tx with
        | None -> db_error "no transaction in progress"
        | Some tx ->
          let name = String.lowercase_ascii name in
          (* Undo back to (and keep) the marker, so the savepoint can be
             rolled back to again. *)
          let rec unwind = function
            | [] -> db_error "no such savepoint: %s" name
            | U_savepoint n :: _ as rest when n = name -> rest
            | u :: rest ->
              undo_entry u;
              unwind rest
          in
          tx.undo <- unwind tx.undo;
          (* Mirror on the journal: drop DML (and newer savepoint marks)
             back to the marker, keeping it and any DDL encountered. *)
          let rec trim = function
            | [] -> []
            | P_mark n :: _ as rest when n = name -> rest
            | (P_ddl _ as e) :: rest -> e :: trim rest
            | (P_dml _ | P_mark _) :: rest -> trim rest
          in
          t.pending <- trim t.pending;
          Message (Printf.sprintf "ROLLBACK TO %s" name))
      | Ast.Release_savepoint name -> (
        match t.tx with
        | None -> db_error "no transaction in progress"
        | Some tx ->
          let name = String.lowercase_ascii name in
          let found = ref false in
          tx.undo <-
            List.filter
              (fun u ->
                match u with
                | U_savepoint n when n = name && not !found ->
                  found := true;
                  false
                | _ -> true)
              tx.undo;
          if not !found then db_error "no such savepoint: %s" name;
          let released = ref false in
          t.pending <-
            List.filter
              (fun e ->
                match e with
                | P_mark n when n = name && not !released ->
                  released := true;
                  false
                | _ -> true)
              t.pending;
          Message (Printf.sprintf "RELEASE %s" name))
      | Ast.Copy_to { table; file } ->
        let table =
          match Catalog.find_table t.catalog table with
          | Some tbl -> tbl
          | None ->
            if Catalog.find_partitioned t.catalog table <> None then
              db_error
                "COPY TO a partitioned table is not supported; COPY each \
                 partition child (%s__<partition>)"
                table
            else db_error "no such table: %s" table
        in
        let n =
          try Csv.export table file
          with Sys_error msg | Csv.Csv_error msg -> db_error "COPY: %s" msg
        in
        Message (Printf.sprintf "COPY %d rows to %s" n file)
      | Ast.Copy_from { table; file } ->
        let schema, sink =
          match Catalog.find_table t.catalog table with
          | Some tbl ->
            (Table.schema tbl, fun row -> ignore (insert_row t ~now tbl row))
          | None -> (
            match Catalog.find_partitioned t.catalog table with
            | Some pt ->
              (pt.Partition.pt_schema, fun row -> insert_routed t ~now pt row)
            | None -> db_error "no such table: %s" table)
        in
        let n =
          try Csv.import ~schema ~insert:sink file
          with Sys_error msg | Csv.Csv_error msg -> db_error "COPY: %s" msg
        in
        Affected n
      | Ast.Set_timeout None ->
        t.timeout_ms <- None;
        Message "statement timeout disabled"
      | Ast.Set_timeout (Some ms) ->
        if ms < 0 then db_error "SET TIMEOUT expects a non-negative value";
        if ms = 0 then begin
          t.timeout_ms <- None;
          Message "statement timeout disabled"
        end
        else begin
          t.timeout_ms <- Some ms;
          Message (Printf.sprintf "statement timeout set to %d ms" ms)
        end
      | Ast.Set_now None ->
        t.now_override <- None;
        Message "NOW restored to the transaction clock"
      | Ast.Set_now (Some e) -> (
        let v = eval_standalone t ectx e in
        let chronon =
          match v with
          | Value.Str s -> Tip_core.Chronon.of_string s
          | v -> Extension.to_chronon t.ext v
        in
        match chronon with
        | Some c ->
          t.now_override <- Some c;
          Message
            (Printf.sprintf "NOW set to %s" (Tip_core.Chronon.to_string c))
        | None ->
          db_error "SET NOW expects a time value, got %s" (Value.type_name v))
      | Ast.Show_tables ->
        Rows
          { names = [ "table_name" ];
            rows =
              List.map
                (fun name -> [| Value.Str name |])
                (List.sort String.compare
                   (Catalog.table_names t.catalog
                   @ Catalog.partitioned_names t.catalog)) }
      | Ast.Describe { table } ->
        let schema =
          match Catalog.find_table t.catalog table with
          | Some tbl -> Table.schema tbl
          | None -> (
            match Catalog.find_partitioned t.catalog table with
            | Some pt -> pt.Partition.pt_schema
            | None -> db_error "no such table: %s" table)
        in
        Rows
          { names = [ "column"; "type"; "not_null"; "primary_key" ];
            rows =
              List.map
                (fun (c : Schema.column) ->
                  [| Value.Str c.name;
                     Value.Str (Schema.type_name c.ty);
                     Value.Bool c.not_null;
                     Value.Bool c.primary_key |])
                (Schema.columns schema) }
      | Ast.Stats pattern ->
        let keep =
          match pattern with
          | None -> fun _ -> true
          | Some pat -> Expr_eval.like_match ~pattern:pat
        in
        Rows
          { names = [ "metric"; "kind"; "value" ];
            rows =
              List.filter_map
                (fun (s : Metrics.sample) ->
                  if keep s.Metrics.s_name then
                    Some
                      [| Value.Str s.Metrics.s_name;
                         Value.Str s.Metrics.s_kind;
                         Value.Int s.Metrics.s_value |]
                  else None)
                (Metrics.samples ()) }
      | Ast.Analyze target ->
        let targets =
          match target with
          | Some name -> (
            match Catalog.find_table t.catalog name with
            | Some tbl -> [ tbl ]
            | None -> (
              match Catalog.find_partitioned t.catalog name with
              | Some pt ->
                List.map
                  (fun (p : Partition.part) -> p.Partition.p_table)
                  (Partition.all_parts pt)
              | None -> db_error "no such table: %s" name))
          | None ->
            List.filter_map
              (Catalog.find_table t.catalog)
              (Catalog.table_names t.catalog)
        in
        let analyzed_at = Tip_core.Chronon.to_string now in
        let total =
          List.fold_left
            (fun acc tbl ->
              let st = Table.analyze ~analyzed_at tbl in
              acc + st.Stats.st_rows)
            0 targets
        in
        Message
          (Printf.sprintf "ANALYZE complete (%d table%s, %d rows sampled)"
             (List.length targets)
             (if List.length targets = 1 then "" else "s")
             total)
      | Ast.Checkpoint ->
        if t.tx <> None then
          db_error "CHECKPOINT is not allowed inside a transaction";
        (match t.durability with
        | None -> Message "CHECKPOINT skipped (no durable storage attached)"
        | Some _ ->
          let n = checkpoint t in
          Message
            (Printf.sprintf "CHECKPOINT complete (%d log records truncated)" n))
      | Ast.Backup dir ->
        let origin = backup t ~dir in
        Message
          (Printf.sprintf
             "BACKUP complete: %s (generation %d, epoch %d, offset %d)" dir
             origin.Archive.o_gen origin.Archive.o_epoch origin.Archive.o_offset)
      | Ast.Promote ->
        (* Promotion needs the replication client (it owns the follower
           loop and the primary's stream position); the server installs
           a handler that intercepts PROMOTE before execution reaches
           here. An embedded database has nothing to promote. *)
        db_error "PROMOTE: this database is not a replica")

(* Layers the database-default statement timeout (SET TIMEOUT) under
   whatever token the caller supplied: a fresh token when the caller is
   ungoverned, otherwise arm the caller's token unless it already
   carries a deadline of its own (the server's per-session timeout
   wins over the embedded default). *)
let effective_token t token =
  match t.timeout_ms with
  | None -> token
  | Some ms ->
    if Deadline.is_never token then Deadline.create ~timeout_ms:ms ()
    else begin
      Deadline.arm_timeout_if_unset token ms;
      token
    end

(* The durable commit boundary: whenever a statement leaves the
   database outside a transaction, its journal entries are appended to
   the WAL (and fsynced per the sync policy) before the result — or the
   exception — reaches the caller. A partially-executed failing
   statement is flushed too, so the log always mirrors memory. Two
   exceptions to "flush what happened":

   - An injected [Failpoint.Crash] stands for the process dying mid-I/O,
     so nothing may run after it.

   - A cancelled statement ([Deadline.Cancelled]: deadline, budget,
     Ctrl-C, drain) must leave no trace at all: its in-memory effects
     are reverted through the statement-scoped undo list, its journal
     entries are dropped before they reach the WAL, and inside a
     transaction the undo log is rewound to the statement boundary so a
     later ROLLBACK does not double-undo. The caller sees the raised
     reason; the WAL sees a clean statement prefix. *)
let exec_statement ?(token = Deadline.never) ?sql t ~params stmt =
  let token = effective_token t token in
  let t0 = Trace.now_ns () in
  let scanned0 =
    if Introspect.enabled () then Metrics.counter_value m_rows_scanned else 0
  in
  (* Fold the execution into the fingerprint store (tip_stat_statements):
     keyed by the normalized shape of the original text when the caller
     has it, else of the pretty-printed AST (identical shape — literals
     collapse to ? either way). Skipped entirely while disabled, so the
     fingerprinting tax is opt-out (benchmark E20). *)
  let note outcome ~rows_returned =
    if Introspect.enabled () then
      Introspect.record
        ~query:
          (Tip_sql.Lexer.fingerprint
             (match sql with
             | Some s -> s
             | None -> Tip_sql.Pretty.statement_to_string stmt))
        ~elapsed_ns:(Trace.now_ns () - t0)
        ~rows_returned
        ~rows_scanned:
          (Stdlib.max 0 (Metrics.counter_value m_rows_scanned - scanned0))
        outcome
  in
  let observe () =
    Metrics.incr m_statements;
    Metrics.observe h_statement_ns (Trace.now_ns () - t0)
  in
  t.stmt_undo <- [];
  let saved_tx_undo = match t.tx with Some tx -> Some tx.undo | None -> None in
  let saved_pending = t.pending in
  match exec_statement_raw t ~token ~params stmt with
  | result ->
    flush_pending t;
    maybe_auto_checkpoint t;
    observe ();
    note Introspect.Finished
      ~rows_returned:
        (match result with
        | Rows { rows; _ } -> List.length rows
        | Affected _ | Message _ -> 0);
    result
  | exception (Failpoint.Crash _ as e) -> raise e
  | exception (Deadline.Cancelled reason as e) ->
    List.iter undo_entry t.stmt_undo;
    t.stmt_undo <- [];
    (match t.tx, saved_tx_undo with
    | Some tx, Some saved -> tx.undo <- saved
    | _, _ -> ());
    t.pending <- saved_pending;
    Metrics.incr m_cancelled;
    (match reason with
    | Deadline.Timeout -> Metrics.incr m_timed_out
    | _ -> ());
    Log.info (fun m ->
        m "statement cancelled (%s): %s"
          (Deadline.reason_label reason)
          (Tip_sql.Pretty.statement_to_string stmt));
    observe ();
    note Introspect.Cancelled ~rows_returned:0;
    raise e
  | exception e ->
    flush_pending t;
    observe ();
    note Introspect.Errored ~rows_returned:0;
    raise e

let exec ?token ?(params = []) t sql =
  match Parser.parse sql with
  | stmt -> exec_statement ?token ~sql t ~params stmt
  | exception Parser.Error msg -> db_error "%s" msg

(* Runs a ';'-separated script, returning the last result. *)
let exec_script ?token ?(params = []) t sql =
  match Parser.parse_script sql with
  | [] -> Message "empty script"
  | stmts ->
    List.fold_left
      (fun _ stmt -> exec_statement ?token t ~params stmt)
      (Message "") stmts
  | exception Parser.Error msg -> db_error "%s" msg

(* --- Durable open / close ---------------------------------------------------- *)

(* Opens (or creates) a durable database: recover snapshot + WAL tail,
   then immediately re-checkpoint so the recovered state becomes the new
   snapshot and the old (possibly torn) log is superseded by a fresh one
   of the next generation. Extension types must be registered before the
   call; install the blade on the returned database afterwards. *)
let open_durable ?(sync = Wal.Always) ?(checkpoint_every = 10_000) ?archive_dir
    ~dir () =
  let catalog, info = Recovery.recover ~dir in
  if info.Recovery.replayed_records > 0 || info.Recovery.stopped <> None then
    Log.info (fun m ->
        m "recovered %s: %d record(s) in %d batch(es) replayed%s" dir
          info.Recovery.replayed_records info.Recovery.replayed_batches
          (match info.Recovery.stopped with
          | Some reason -> Printf.sprintf " (log tail dropped: %s)" reason
          | None -> ""));
  let t = create ~catalog () in
  let epoch = info.Recovery.epoch in
  (* The re-checkpoint below supersedes the recovered log; with an
     archive attached, seal it first (under the generation its own
     frame carries — a stale log was already sealed at its checkpoint,
     so re-sealing is an idempotent overwrite with identical bytes). *)
  Option.iter
    (fun adir ->
      let wal_path = Recovery.wal_path ~dir in
      let scan = Wal.scan wal_path in
      Option.iter
        (fun gen -> Archive.seal ~dir:adir ~wal_path ~gen)
        scan.Wal.generation)
    archive_dir;
  let gen = info.Recovery.generation + 1 in
  Persist.save ~wal_gen:gen ~epoch ?asof:info.Recovery.last_commit_at catalog
    (Recovery.snapshot_path ~dir);
  let wal = Wal.create ~sync ~epoch ~gen (Recovery.wal_path ~dir) in
  t.durability <-
    Some
      { dir;
        wal;
        gen;
        epoch;
        archive_dir;
        checkpoint_every;
        last_commit_at = info.Recovery.last_commit_at };
  (* The durable open is where a process becomes a database server of
     some kind: attach the persistent event journal next to the WAL and
     turn the ASH sampler on. *)
  Tip_obs.Events.set_journal (Some (Filename.concat dir "events.log"));
  Tip_obs.Events.record ~kind:"recovery"
    ~detail:
      (Printf.sprintf "opened %s at gen %d epoch %d, replayed %d record(s)%s"
         dir gen epoch info.Recovery.replayed_records
         (match info.Recovery.stopped with
         | Some reason -> Printf.sprintf " (log tail dropped: %s)" reason
         | None -> ""));
  Tip_obs.Wait.start_sampler ();
  (t, info)

(* Detaches and closes the WAL without checkpointing — on-disk state is
   untouched, so this is safe even after a simulated crash. A graceful
   shutdown should [checkpoint] first. The one flush performed here:
   an Every_n policy's unsynced tail is fsynced so a clean close never
   abandons the up-to-n-1 commits the policy was still holding (extra
   durability can only extend the surviving prefix, so this stays safe
   after a simulated crash too; failures are swallowed because the fd
   may already be unusable then). *)
let close_durable t =
  match t.durability with
  | None -> ()
  | Some d ->
    t.durability <- None;
    t.pending <- [];
    (try if Wal.pending_sync d.wal then Wal.sync d.wal with _ -> ());
    Wal.close d.wal

(* --- Replication and high availability (primary side) ------------------------ *)

let epoch t = match t.durability with Some d -> d.epoch | None -> 0
let last_commit_at t = Option.bind t.durability (fun d -> d.last_commit_at)

(* Where a caught-up subscriber stands: current WAL generation, its
   end-of-log byte offset, and the promotion epoch. *)
let replication_state t =
  Option.map (fun d -> (d.gen, Wal.offset d.wal, d.epoch)) t.durability

let replication_wal_path t =
  Option.map (fun d -> Recovery.wal_path ~dir:d.dir) t.durability

(* Highest WAL generation sealed into the attached archive — what
   tip_stat_replication reports as [archive_generation]. [None] without
   an archive (or before the first seal). *)
let archive_generation t =
  match t.durability with
  | Some { archive_dir = Some adir; _ } -> (
    match Archive.sealed_generations adir with
    | [] -> None
    | gens -> Some (List.fold_left max 0 gens))
  | Some _ | None -> None

(* The bootstrap payload: snapshot text plus the (generation, offset,
   epoch) triple it is consistent with. Must run under the server's
   database lock so no statement commits between rendering the snapshot
   and reading the offset; refused inside an open transaction because
   the snapshot would leak uncommitted rows. *)
let replication_snapshot t =
  match t.durability with
  | None -> None
  | Some d ->
    if t.tx <> None then
      db_error "BUSY: cannot bootstrap a replica inside an open transaction";
    Some
      ( d.gen,
        Persist.snapshot_string ~wal_gen:d.gen ~epoch:d.epoch
          ?asof:d.last_commit_at t.catalog,
        Wal.offset d.wal,
        d.epoch )

(* Promotion (replica side): turns a read-only replica into a writable
   primary rooted at [dir]. The replica's streamed state becomes a full
   snapshot stamped with generation [gen] and the bumped promotion
   epoch [epoch]; a fresh WAL opens under that epoch, so every
   generation frame the new primary ships fences subscribers still on
   the old epoch. Any previous durability attachment (an HA node's
   pre-demotion life) is closed, not sealed — its history was
   superseded by the re-bootstrap that made this node a replica. *)
let promote_replica ?(sync = Wal.Always) ?(checkpoint_every = 10_000)
    ?archive_dir ?asof t ~dir ~gen ~epoch () =
  (match t.durability with
  | Some d -> (
    t.durability <- None;
    t.pending <- [];
    try Wal.close d.wal with _ -> ())
  | None -> ());
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Persist.save ~wal_gen:gen ~epoch ?asof t.catalog
    (Recovery.snapshot_path ~dir);
  let wal = Wal.create ~sync ~epoch ~gen (Recovery.wal_path ~dir) in
  t.durability <-
    Some { dir; wal; gen; epoch; archive_dir; checkpoint_every;
           last_commit_at = asof };
  t.read_only <- false;
  Tip_obs.Events.set_journal (Some (Filename.concat dir "events.log"));
  Tip_obs.Events.record ~kind:"promotion"
    ~detail:(Printf.sprintf "writable at %s, gen %d epoch %d" dir gen epoch);
  Tip_obs.Events.record ~kind:"epoch_change"
    ~detail:(Printf.sprintf "epoch now %d" epoch);
  Tip_obs.Wait.start_sampler ()

(* --- Result helpers ----------------------------------------------------------- *)

let rows_exn = function
  | Rows { rows; _ } -> rows
  | Affected _ | Message _ -> db_error "statement did not return rows"

let names_exn = function
  | Rows { names; _ } -> names
  | Affected _ | Message _ -> db_error "statement did not return rows"

let affected_exn = function
  | Affected n -> n
  | Rows _ | Message _ -> db_error "statement did not return a row count"

(* Renders a result as an aligned text table (psql-style). *)
let render_result result =
  match result with
  | Message m -> m
  | Affected n -> Printf.sprintf "(%d row%s affected)" n (if n = 1 then "" else "s")
  | Rows { names; rows } ->
    let cells =
      List.map (fun row -> Array.map Value.to_display_string row) rows
    in
    let ncols = List.length names in
    let widths = Array.of_list (List.map String.length names) in
    List.iter
      (fun row ->
        Array.iteri
          (fun i cell ->
            if i < ncols then widths.(i) <- Stdlib.max widths.(i) (String.length cell))
          row)
      cells;
    let buf = Buffer.create 256 in
    let pad s w = s ^ String.make (w - String.length s) ' ' in
    Buffer.add_string buf
      (String.concat " | " (List.mapi (fun i n -> pad n widths.(i)) names));
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (String.concat "-+-"
         (List.mapi (fun i _ -> String.make widths.(i) '-') names));
    Buffer.add_char buf '\n';
    List.iter
      (fun row ->
        Buffer.add_string buf
          (String.concat " | "
             (List.mapi (fun i _ -> pad row.(i) widths.(i)) names));
        Buffer.add_char buf '\n')
      cells;
    Buffer.add_string buf
      (Printf.sprintf "(%d row%s)" (List.length rows)
         (if List.length rows = 1 then "" else "s"));
    Buffer.contents buf

(* --- Built-in virtual tables (DESIGN.md §11) --------------------------------- *)

(* The engine's side of the introspection catalog: statement
   fingerprints, the metrics registry, and per-table access counters as
   relations. tip_stat_activity lives in the server, which owns the
   session table. Registered at module init so every database (embedded
   or served) resolves them. *)

let ms ns = Value.Float (float_of_int ns /. 1e6)

(* Typed temporal values for the observability vtabs: the engine cannot
   depend on the blade, so it renders the text form and parses it
   through the registered type vtable (the same trick the server uses
   for tip_stat_activity), degrading gracefully when the blade is not
   installed. *)
let typed_value type_name text fallback =
  match Value.lookup_type type_name with
  | Some vt -> (
    try vt.Value.parse text with Value.Type_error _ -> fallback)
  | None -> fallback

let instant_value unix_time =
  let c = Tip_core.Chronon.of_unix_seconds (int_of_float unix_time) in
  typed_value "instant" (Tip_core.Chronon.to_string c) (Value.Date c)

(* An ASH sample's valid time: the closed chronon span of its tick, as
   a one-period ELEMENT — the same shape as any valid-time column, so
   the set-algebra [overlaps]/[contains] predicates (and the planner's
   sargable pruning) window it exactly like table history. Chronons are
   second-granular, so a 100ms tick renders as the degenerate period
   [t, t] — closed, hence still windowable. *)
let period_value ~from_s ~to_s =
  let c1 = Tip_core.Chronon.of_unix_seconds (int_of_float from_s) in
  let c2 = Tip_core.Chronon.of_unix_seconds (int_of_float (Float.max from_s to_s)) in
  let text =
    Printf.sprintf "{[%s, %s]}"
      (Tip_core.Chronon.to_string c1)
      (Tip_core.Chronon.to_string c2)
  in
  typed_value "element" text (Value.Str text)

let () =
  Vtab.register
    { Vtab.vt_name = "tip_stat_statements";
      vt_cols =
        [| "query"; "calls"; "total_ms"; "mean_ms"; "min_ms"; "max_ms";
           "p50_ms"; "p95_ms"; "p99_ms"; "rows_returned"; "rows_scanned";
           "errors"; "cancellations" |];
      vt_help = "statement fingerprints with latency and row aggregates";
      vt_rows =
        (fun _catalog ->
          List.map
            (fun (s : Introspect.stat) ->
              let pct q =
                Value.Float (Metrics.percentile_of_buckets s.buckets q /. 1e6)
              in
              [| Value.Str s.Introspect.query;
                 Value.Int s.calls;
                 ms s.total_ns;
                 (if s.calls = 0 then Value.Null
                  else ms (s.total_ns / s.calls));
                 ms s.min_ns;
                 ms s.max_ns;
                 pct 0.50;
                 pct 0.95;
                 pct 0.99;
                 Value.Int s.rows_returned;
                 Value.Int s.rows_scanned;
                 Value.Int s.errors;
                 Value.Int s.cancelled |])
            (Introspect.snapshot ())) };
  Vtab.register
    { Vtab.vt_name = "tip_stat_metrics";
      vt_cols =
        [| "name"; "kind"; "value"; "sum_ns"; "p50_ms"; "p95_ms"; "p99_ms" |];
      vt_help = "the process metrics registry, one row per metric";
      vt_rows =
        (fun _catalog ->
          List.map
            (fun (i : Metrics.info) ->
              let p sel =
                match i.Metrics.i_percentiles with
                | Some ps -> Value.Float (sel ps /. 1e6)
                | None -> Value.Null
              in
              [| Value.Str i.Metrics.i_name;
                 Value.Str i.i_kind;
                 Value.Int i.i_value;
                 (match i.i_sum_ns with
                 | Some s -> Value.Int s
                 | None -> Value.Null);
                 p (fun (a, _, _) -> a);
                 p (fun (_, b, _) -> b);
                 p (fun (_, _, c) -> c) |])
            (Metrics.infos ())) };
  Vtab.register
    { Vtab.vt_name = "tip_stat_tables";
      vt_cols =
        [| "table_name"; "row_count"; "index_count"; "scans"; "scan_rows";
           "writes"; "last_analyzed"; "histogram_buckets" |];
      vt_help = "per-table live rows, access counters and ANALYZE state";
      vt_rows =
        (fun catalog ->
          List.filter_map
            (fun name ->
              match Catalog.find_table catalog name with
              | None -> None
              | Some tbl ->
                let analyzed, buckets =
                  match Table.stats tbl with
                  | Some st ->
                    ( Value.Str st.Stats.st_analyzed_at,
                      Value.Int st.Stats.st_buckets )
                  | None -> (Value.Null, Value.Null)
                in
                Some
                  [| Value.Str name;
                     Value.Int (Table.row_count tbl);
                     Value.Int (List.length (Table.indexes tbl));
                     Value.Int (Table.scan_count tbl);
                     Value.Int (Table.scan_row_count tbl);
                     Value.Int (Table.write_count tbl);
                     analyzed;
                     buckets |])
            (Catalog.table_names catalog)) };
  Vtab.register
    { Vtab.vt_name = "tip_stat_partitions";
      vt_cols =
        [| "table_name"; "partition"; "from_bound"; "to_bound"; "is_default";
           "row_count"; "max_end"; "kept_scans"; "pruned_scans" |];
      vt_help =
        "partitions of range-partitioned tables: bounds, end watermark and \
         pruning counters";
      vt_rows =
        (fun catalog ->
          List.concat_map
            (fun parent ->
              match Catalog.find_partitioned catalog parent with
              | None -> []
              | Some pt ->
                List.map
                  (fun (p : Partition.part) ->
                    let wm = Atomic.get p.Partition.p_max_end in
                    [| Value.Str parent;
                       Value.Str p.Partition.p_name;
                       (if p.Partition.p_default then Value.Null
                        else Value.Str (Partition.bound_to_string p.Partition.p_from));
                       (if p.Partition.p_default then Value.Null
                        else Value.Str (Partition.bound_to_string p.Partition.p_to));
                       Value.Bool p.Partition.p_default;
                       Value.Int (Table.row_count p.Partition.p_table);
                       (if wm = min_int then Value.Null
                        else Value.Str (Partition.bound_to_string wm));
                       Value.Int (Atomic.get p.Partition.p_scanned);
                       Value.Int (Atomic.get p.Partition.p_pruned) |])
                  (Partition.all_parts pt))
            (Catalog.partitioned_names catalog)) };
  Vtab.register
    { Vtab.vt_name = "tip_stat_waits";
      vt_cols = [| "wait_class"; "waits"; "total_wait_ms" |];
      vt_help =
        "cumulative wait-event profile: completed waits and total waited \
         time per class";
      vt_rows =
        (fun _catalog ->
          List.map
            (fun (cls, count, total_ns) ->
              [| Value.Str (Wait.label cls); Value.Int count; ms total_ns |])
            (Wait.stats ())) };
  Vtab.register
    { Vtab.vt_name = "tip_stat_ash";
      vt_cols =
        [| "sample_seq"; "at"; "session_id"; "kind"; "query"; "wait_class";
           "valid" |];
      vt_help =
        "active session history: periodic samples of every session's \
         current statement and wait state, each with a valid-time PERIOD";
      vt_rows =
        (fun _catalog ->
          List.map
            (fun (sa : Tip_obs.Wait.sample) ->
              [| Value.Int sa.sa_seq;
                 instant_value sa.sa_at;
                 Value.Int sa.sa_session;
                 Value.Str sa.sa_kind;
                 (match sa.sa_query with
                 | Some q -> Value.Str q
                 | None -> Value.Null);
                 Value.Str sa.sa_state;
                 period_value ~from_s:sa.sa_at
                   ~to_s:(sa.sa_at +. (float_of_int sa.sa_interval_ms /. 1000.)) |])
            (Wait.samples ())) };
  Vtab.register
    { Vtab.vt_name = "tip_stat_events";
      vt_cols = [| "seq"; "at"; "kind"; "detail" |];
      vt_help =
        "the structured event journal: checkpoints, backups, recovery, \
         promotions, epoch changes";
      vt_rows =
        (fun _catalog ->
          List.map
            (fun (ev : Tip_obs.Events.event) ->
              [| Value.Int ev.ev_seq;
                 instant_value ev.ev_at;
                 Value.Str ev.ev_kind;
                 Value.Str ev.ev_detail |])
            (Tip_obs.Events.events ())) }
