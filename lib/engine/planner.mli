(** Translates bound SELECTs into physical plans.

    The optimizer is deliberately simple but not a strawman: WHERE
    conjuncts push down to the scans they cover; equality conjuncts
    across two join inputs become hash joins; sargable conjuncts over
    B+tree-indexed columns become index range scans; interval-sargable
    routine calls (e.g. [overlaps(col, const)] once the blade registers
    them) over interval-indexed columns become interval scans with an
    exact recheck. Everything else is nested loops plus filters.
    Aggregation follows SQL scoping: group keys and aggregate calls get
    slots, and post-aggregation expressions may reference only those. *)

open Tip_storage
module Ast = Tip_sql.Ast

exception Plan_error of string

(** Plans one SELECT; returns the plan and its output column names.
    @raise Plan_error on unknown/ambiguous names, aggregate misuse,
    correlated subqueries, and similar static errors. *)
val plan :
  ext:Extension.t ->
  ectx:Expr_eval.ctx ->
  Catalog.t ->
  Ast.select ->
  Plan.t * string array

(** Plans a UNION [ALL] tree; arms must agree on arity; names come from
    the first arm. *)
val plan_union :
  ext:Extension.t ->
  ectx:Expr_eval.ctx ->
  Catalog.t ->
  Ast.compound ->
  Plan.t * string array

(** A subquery runner for standalone expressions (INSERT value lists,
    SET NOW): no outer scope, so correlation fails with an
    unknown-column error. *)
val subquery_runner :
  ext:Extension.t ->
  ectx:Expr_eval.ctx ->
  Catalog.t ->
  Ast.select ->
  Expr_eval.subquery_exec

(** A subquery runner for single-table DML predicates: the table's row
    is the outer scope, so UPDATE/DELETE WHERE clauses may correlate. *)
val subquery_runner_for_table :
  ext:Extension.t ->
  ectx:Expr_eval.ctx ->
  Catalog.t ->
  Schema.t ->
  Ast.select ->
  Expr_eval.subquery_exec

(** [Plan.to_string] plus a trailing parallelism annotation
    ("Parallel: safe" — whole plan runs on the pool, "Parallel: partial"
    — some subtree does, "Parallel: none"). *)
val explain : Plan.t -> string

(** EXPLAIN ANALYZE rendering: {!explain} of the executed (instrumented)
    plan plus a footer with phase timings, output row count, and the NOW
    chronon the statement was bound to. [now] is already rendered;
    [plan_ns]/[exec_ns] are the phase durations. *)
val explain_analyze :
  now:string -> rows:int -> plan_ns:int -> exec_ns:int -> Plan.t -> string
