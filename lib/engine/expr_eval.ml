(* Expression compilation and evaluation.

   Expressions compile once (per statement) into closures over a row and
   an evaluation context; evaluation then does no name resolution. SQL's
   three-valued logic is implemented here: NULL propagates through
   operators, AND/OR follow Kleene logic, and WHERE treats unknown as
   false (the caller converts with [to_predicate]).

   Built-in semantics cover the base types; any combination the engine
   does not know falls through to the extension registry, keyed by the
   operator symbol — that is how [chronon + span] or [chronon < NOW-7]
   becomes meaningful once the TIP blade is installed. *)

open Tip_storage
module Ast = Tip_sql.Ast
module Pretty = Tip_sql.Pretty

exception Eval_error of string

let eval_error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

type ctx = {
  now : Tip_core.Chronon.t;
  params : (string * Value.t) list;
  ext : Extension.t;
  token : Tip_core.Deadline.t;
  mutable poll_tick : int;
}

type compiled = ctx -> Value.t array -> Value.t

(* --- Cooperative cancellation ------------------------------------------- *)

(* The executor and the DML row loops call [tick] once per row; every
   256th tick performs a real poll (atomic load + possible clock read).
   [poll] is also a failpoint site so tests can fire a cancellation at
   an exact batch boundary: arming [exec.poll:k:fail=cancel] turns the
   k-th poll into [cancel token] before the check, which is how the
   differential fuzz walks the cancellation window deterministically. *)

let poll_site = "exec.poll"

let poll ctx =
  (if Failpoint.active () then
     match Failpoint.hit ~site:poll_site () with
     | () -> ()
     | exception Failure msg
       when String.length msg >= 6 && String.sub msg 0 6 = "cancel" ->
         let reason =
           match msg with
           | "cancel-shutdown" -> Tip_core.Deadline.Shutdown
           | "cancel-client" -> Tip_core.Deadline.Client_gone
           | _ -> Tip_core.Deadline.Timeout
         in
         Tip_core.Deadline.cancel ctx.token reason);
  Tip_core.Deadline.check ctx.token

(* Poll every 256 rows in production; with failpoints armed, poll every
   row so injected cancellations land at exact row boundaries (traces in
   the fuzz touch tables far smaller than the production interval). *)
let tick ctx =
  let n = ctx.poll_tick + 1 in
  ctx.poll_tick <- n;
  if n land 255 = 0 || Failpoint.active () then poll ctx

(* A planned subquery: [sq_run ctx outer_row] produces its rows.
   Non-correlated subqueries ignore the outer row (and get cached once
   per statement); correlated ones read outer columns through hidden
   parameters bound per row. *)
type subquery_exec = {
  sq_run : ctx -> Value.t array -> Value.t array list;
  sq_correlated : bool;
}

type env = {
  resolve_column : string option -> string -> int;
  slot_of : Ast.expr -> int option;
    (* pre-computed slots (group keys / aggregate results); checked at
       every node so post-aggregation expressions can reference them *)
  ext : Extension.t;
  plan_subquery : Ast.select -> subquery_exec;
    (* provided by the planner; must be stable (same select, same
       answer), since both compilation and the row-free analysis call
       it *)
}

let no_subqueries _select =
  eval_error "subqueries are not allowed in this context"

let base_env ?(plan_subquery = no_subqueries) ~ext ~resolve_column () =
  { resolve_column; slot_of = (fun _ -> None); ext; plan_subquery }

(* --- Built-in operator semantics ---------------------------------------- *)

let arith_int_float op_int op_float a b =
  match a, b with
  | Value.Int x, Value.Int y -> Some (Value.Int (op_int x y))
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
    Some (Value.Float (op_float (Value.to_float a) (Value.to_float b)))
  | _, _ -> None

let builtin_binop op a b =
  match op with
  | Ast.Add -> (
    match a, b with
    | Value.Date d, Value.Int n ->
      Some (Value.Date (Tip_core.Chronon.add d (Tip_core.Span.of_days n)))
    | Value.Int n, Value.Date d ->
      Some (Value.Date (Tip_core.Chronon.add d (Tip_core.Span.of_days n)))
    | _, _ -> arith_int_float ( + ) ( +. ) a b)
  | Ast.Sub -> (
    match a, b with
    | Value.Date d, Value.Int n ->
      Some (Value.Date (Tip_core.Chronon.sub d (Tip_core.Span.of_days n)))
    | Value.Date x, Value.Date y ->
      (* Plain SQL DATE subtraction: signed whole days. *)
      let seconds = Tip_core.Span.to_seconds (Tip_core.Chronon.diff x y) in
      Some (Value.Int (seconds / Tip_core.Span.seconds_per_day))
    | _, _ -> arith_int_float ( - ) ( -. ) a b)
  | Ast.Mul -> arith_int_float ( * ) ( *. ) a b
  | Ast.Div -> (
    match a, b with
    | _, Value.Int 0 -> eval_error "division by zero"
    | _, Value.Float 0. -> eval_error "division by zero"
    | _, _ -> arith_int_float ( / ) ( /. ) a b)
  | Ast.Mod -> (
    match a, b with
    | _, Value.Int 0 -> eval_error "division by zero"
    | Value.Int x, Value.Int y -> Some (Value.Int (x mod y))
    | _, _ -> None)
  | Ast.Concat -> (
    match a, b with
    | Value.Str x, Value.Str y -> Some (Value.Str (x ^ y))
    | _, _ -> None)
  | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
    (* Plain SQL: a string literal compared against a DATE column reads
       as a date literal. *)
    let a, b =
      match a, b with
      | Value.Date _, Value.Str s -> (
        match Tip_core.Chronon.of_string s with
        | Some c -> (a, Value.Date (Tip_core.Chronon.start_of_day c))
        | None -> (a, b))
      | Value.Str s, Value.Date _ -> (
        match Tip_core.Chronon.of_string s with
        | Some c -> (Value.Date (Tip_core.Chronon.start_of_day c), b)
        | None -> (a, b))
      | _, _ -> (a, b)
    in
    (* Only same-kind comparisons are built in; anything else goes to the
       extension registry so that implicit casts apply (e.g. a string
       literal against a Chronon column). *)
    let same_kind =
      match a, b with
      | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) -> true
      | Value.Str _, Value.Str _ -> true
      | Value.Bool _, Value.Bool _ -> true
      | Value.Date _, Value.Date _ -> true
      | Value.Ext (n1, _), Value.Ext (n2, _) -> String.equal n1 n2
      | _, _ -> false
    in
    if not same_kind then None
    else begin
      match Value.compare a b with
      | c ->
        let r =
          match op with
          | Ast.Eq -> c = 0
          | Ast.Neq -> c <> 0
          | Ast.Lt -> c < 0
          | Ast.Le -> c <= 0
          | Ast.Gt -> c > 0
          | Ast.Ge -> c >= 0
          | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Concat
          | Ast.And | Ast.Or -> assert false
        in
        Some (Value.Bool r)
      | exception Value.Type_error _ -> None
    end)
  | Ast.And | Ast.Or -> assert false (* handled lazily in compile *)

let op_symbol = Pretty.binop_symbol

(* Per-call-site routine dispatch with inline caches for overload
   resolution and literal-argument casts (see {!Extension.caller}). *)
let routine_caller ext name = Extension.caller ext ~name

let apply_binop ext ~now op a b =
  if Value.is_null a || Value.is_null b then Value.Null
  else begin
    match builtin_binop op a b with
    | Some v -> v
    | None -> (
      match Extension.apply_routine ext ~now ~name:(op_symbol op) [| a; b |] with
      | v -> v
      | exception Extension.Resolution_error _ ->
        eval_error "operator %s undefined for %s and %s" (op_symbol op)
          (Value.type_name a) (Value.type_name b))
  end

(* [apply_binop] with a per-call-site caller on the non-builtin path, so
   overload resolution and literal-operand casts are cached across rows. *)
let binop_applier ext op =
  let call = routine_caller ext (op_symbol op) in
  fun ~now a b ->
    if Value.is_null a || Value.is_null b then Value.Null
    else begin
      match builtin_binop op a b with
      | Some v -> v
      | None -> (
        match call ~now [| a; b |] with
        | v -> v
        | exception Extension.Resolution_error _ ->
          eval_error "operator %s undefined for %s and %s" (op_symbol op)
            (Value.type_name a) (Value.type_name b))
    end

(* --- LIKE ----------------------------------------------------------------- *)

(* SQL LIKE: '%' any sequence, '_' any single character. *)
let like_match ~pattern text =
  let np = String.length pattern and nt = String.length text in
  (* memoized recursion over (pattern index, text index) *)
  let memo = Hashtbl.create 16 in
  let rec go pi ti =
    match Hashtbl.find_opt memo (pi, ti) with
    | Some r -> r
    | None ->
      let r =
        if pi = np then ti = nt
        else begin
          match pattern.[pi] with
          | '%' -> go (pi + 1) ti || (ti < nt && go pi (ti + 1))
          | '_' -> ti < nt && go (pi + 1) (ti + 1)
          | c -> ti < nt && text.[ti] = c && go (pi + 1) (ti + 1)
        end
      in
      Hashtbl.replace memo (pi, ti) r;
      r
  in
  go 0 0

(* --- Casts ------------------------------------------------------------------ *)

let cast_value ext ~now v ~to_type =
  if Value.is_null v then Value.Null
  else begin
    match String.uppercase_ascii to_type with
    | "INT" | "INTEGER" | "BIGINT" | "SMALLINT" -> (
      match v with
      | Value.Int _ -> v
      | Value.Float f -> Value.Int (int_of_float f)
      | Value.Str s -> (
        match int_of_string_opt (String.trim s) with
        | Some n -> Value.Int n
        | None -> eval_error "cannot cast %S to INT" s)
      | Value.Bool b -> Value.Int (if b then 1 else 0)
      | Value.Ext _ -> Extension.apply_cast ext ~now v ~to_type:"int"
      | _ -> eval_error "cannot cast %s to INT" (Value.type_name v))
    | "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" -> (
      match v with
      | Value.Float _ -> v
      | Value.Int n -> Value.Float (float_of_int n)
      | Value.Str s -> (
        match float_of_string_opt (String.trim s) with
        | Some f -> Value.Float f
        | None -> eval_error "cannot cast %S to FLOAT" s)
      | Value.Ext _ -> Extension.apply_cast ext ~now v ~to_type:"float"
      | _ -> eval_error "cannot cast %s to FLOAT" (Value.type_name v))
    | "CHAR" | "VARCHAR" | "TEXT" | "STRING" | "CHARACTER" ->
      Value.Str (Value.to_display_string v)
    | "BOOLEAN" | "BOOL" -> (
      match v with
      | Value.Bool _ -> v
      | Value.Str ("t" | "true" | "TRUE") -> Value.Bool true
      | Value.Str ("f" | "false" | "FALSE") -> Value.Bool false
      | _ -> eval_error "cannot cast %s to BOOLEAN" (Value.type_name v))
    | "DATE" -> (
      match v with
      | Value.Date _ -> v
      | Value.Str s -> (
        match Tip_core.Chronon.of_string s with
        | Some c -> Value.Date (Tip_core.Chronon.start_of_day c)
        | None -> eval_error "cannot cast %S to DATE" s)
      | Value.Ext _ -> Extension.apply_cast ext ~now v ~to_type:"date"
      | _ -> eval_error "cannot cast %s to DATE" (Value.type_name v))
    | _ -> (
      (* Extension type: registered casts, or parsing a string literal. *)
      match Extension.apply_cast ext ~now v ~to_type with
      | v -> v
      | exception Extension.Resolution_error _ -> (
        match v, Value.lookup_type to_type with
        | Value.Str s, Some vt -> vt.Value.parse s
        | _, _ ->
          eval_error "no cast from %s to %s" (Value.type_name v) to_type))
  end

(* --- Compilation --------------------------------------------------------------- *)

let literal_value = function
  | Ast.L_int n -> Value.Int n
  | Ast.L_float f -> Value.Float f
  | Ast.L_string s -> Value.Str s
  | Ast.L_bool b -> Value.Bool b
  | Ast.L_null -> Value.Null

(* Row-free expressions (no column, no aggregate slot) are constant for
   the duration of one statement — NOW and parameters are fixed — so
   their compiled form caches the first evaluation. This is what makes a
   per-row recheck like [overlaps(valid, '{...}'::Element)] parse its
   constant once, not once per row. *)
let rec row_free env e =
  env.slot_of e = None
  &&
  match e with
  | Ast.Column _ | Ast.Count_star -> false
  (* Parameters are not cached: hidden correlation parameters change per
     outer row, and a plain lookup is cheap anyway. *)
  | Ast.Param _ -> false
  (* A correlated subquery reads the outer row through its hidden
     parameters, so it is row-dependent even though its AST children do
     not show it. *)
  | Ast.Exists q | Ast.Scalar_subquery q | Ast.In_select { query = q; _ } -> (
    (not (env.plan_subquery q).sq_correlated)
    && List.for_all (row_free env) (Ast.children e))
  | _ -> List.for_all (row_free env) (Ast.children e)

let rec compile env expr : compiled =
  match env.slot_of expr with
  | Some slot -> fun _ row -> row.(slot)
  | None ->
    let compiled = compile_node env expr in
    (match expr with
    | Ast.Lit _ | Ast.Column _ -> compiled (* already cheap *)
    | _ when row_free env expr ->
      let cache = ref None in
      fun ctx row -> (
        match !cache with
        | Some v -> v
        | None ->
          let v = compiled ctx row in
          cache := Some v;
          v)
    | _ -> compiled)

and compile_node env expr : compiled =
  match expr with
  | Ast.Lit l ->
    let v = literal_value l in
    fun _ _ -> v
  | Ast.Column (q, name) ->
    let i = env.resolve_column q name in
    fun _ row -> row.(i)
  | Ast.Param name -> (
    fun ctx _ ->
      match List.assoc_opt (String.lowercase_ascii name) ctx.params with
      | Some v -> v
      | None -> eval_error "unbound parameter :%s" name)
  | Ast.Binop (Ast.And, a, b) ->
    let ca = compile env a and cb = compile env b in
    fun ctx row -> (
      (* Kleene AND: false dominates NULL. *)
      match ca ctx row with
      | Value.Bool false -> Value.Bool false
      | Value.Bool true -> truth_value (cb ctx row)
      | Value.Null -> (
        match truth_value (cb ctx row) with
        | Value.Bool false -> Value.Bool false
        | _ -> Value.Null)
      | v -> eval_error "AND expects booleans, got %s" (Value.type_name v))
  | Ast.Binop (Ast.Or, a, b) ->
    let ca = compile env a and cb = compile env b in
    fun ctx row -> (
      match ca ctx row with
      | Value.Bool true -> Value.Bool true
      | Value.Bool false -> truth_value (cb ctx row)
      | Value.Null -> (
        match truth_value (cb ctx row) with
        | Value.Bool true -> Value.Bool true
        | _ -> Value.Null)
      | v -> eval_error "OR expects booleans, got %s" (Value.type_name v))
  | Ast.Binop (op, a, b) ->
    let ca = compile env a and cb = compile env b in
    let app = binop_applier env.ext op in
    fun ctx row -> app ~now:ctx.now (ca ctx row) (cb ctx row)
  | Ast.Unop (Ast.Not, e) ->
    let ce = compile env e in
    fun ctx row -> (
      match ce ctx row with
      | Value.Bool b -> Value.Bool (not b)
      | Value.Null -> Value.Null
      | v -> eval_error "NOT expects boolean, got %s" (Value.type_name v))
  | Ast.Unop (Ast.Neg, e) ->
    let ce = compile env e in
    let ext = env.ext in
    fun ctx row -> (
      match ce ctx row with
      | Value.Null -> Value.Null
      | Value.Int n -> Value.Int (-n)
      | Value.Float f -> Value.Float (-.f)
      | v -> (
        match Extension.apply_routine ext ~now:ctx.now ~name:"neg" [| v |] with
        | r -> r
        | exception Extension.Resolution_error _ ->
          eval_error "cannot negate %s" (Value.type_name v)))
  | Ast.Call (name, args) ->
    let cargs = List.map (compile env) args in
    let call = routine_caller env.ext name in
    fun ctx row ->
      let argv = Array.of_list (List.map (fun c -> c ctx row) cargs) in
      (match call ~now:ctx.now argv with
      | v -> v
      | exception Extension.Resolution_error msg -> eval_error "%s" msg)
  | Ast.Call_distinct (name, _) ->
    fun _ _ ->
      eval_error "%s(DISTINCT ...) outside aggregation context" name
  | Ast.Count_star ->
    fun _ _ -> eval_error "COUNT(*) outside aggregation context"
  | Ast.Cast (e, ty) ->
    let ce = compile env e in
    let ext = env.ext in
    fun ctx row -> cast_value ext ~now:ctx.now (ce ctx row) ~to_type:ty
  | Ast.Case (arms, else_) ->
    let carms = List.map (fun (c, v) -> (compile env c, compile env v)) arms in
    let celse = Option.map (compile env) else_ in
    fun ctx row ->
      let rec go = function
        | [] -> (
          match celse with Some c -> c ctx row | None -> Value.Null)
        | (cc, cv) :: rest -> (
          match cc ctx row with
          | Value.Bool true -> cv ctx row
          | Value.Bool false | Value.Null -> go rest
          | v -> eval_error "CASE expects boolean, got %s" (Value.type_name v))
      in
      go carms
  | Ast.In_list { negated; scrutinee; choices } ->
    let cs = compile env scrutinee in
    let cchoices = List.map (compile env) choices in
    let ext = env.ext in
    fun ctx row ->
      let v = cs ctx row in
      if Value.is_null v then Value.Null
      else begin
        let rec go saw_null = function
          | [] -> if saw_null then Value.Null else Value.Bool negated
          | c :: rest -> (
            match apply_binop ext ~now:ctx.now Ast.Eq v (c ctx row) with
            | Value.Bool true -> Value.Bool (not negated)
            | Value.Null -> go true rest
            | _ -> go saw_null rest)
        in
        go false cchoices
      end
  | Ast.Between { negated; scrutinee; low; high } ->
    let cs = compile env scrutinee
    and cl = compile env low
    and ch = compile env high in
    let ext = env.ext in
    fun ctx row ->
      let v = cs ctx row in
      let ge = apply_binop ext ~now:ctx.now Ast.Ge v (cl ctx row) in
      let le = apply_binop ext ~now:ctx.now Ast.Le v (ch ctx row) in
      let conj =
        match ge, le with
        | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
        | Value.Bool true, Value.Bool true -> Value.Bool true
        | _, _ -> Value.Null
      in
      (match conj with
      | Value.Bool b -> Value.Bool (if negated then not b else b)
      | v -> v)
  | Ast.Like { negated; scrutinee; pattern } ->
    let cs = compile env scrutinee and cp = compile env pattern in
    fun ctx row -> (
      match cs ctx row, cp ctx row with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | Value.Str text, Value.Str pattern ->
        let m = like_match ~pattern text in
        Value.Bool (if negated then not m else m)
      | a, b ->
        eval_error "LIKE expects strings, got %s and %s" (Value.type_name a)
          (Value.type_name b))
  | Ast.Is_null { negated; scrutinee } ->
    let cs = compile env scrutinee in
    fun ctx row ->
      let isnull = Value.is_null (cs ctx row) in
      Value.Bool (if negated then not isnull else isnull)
  | Ast.Exists q ->
    let sq = env.plan_subquery q in
    fun ctx row -> Value.Bool (sq.sq_run ctx row <> [])
  | Ast.In_select { negated; scrutinee; query } ->
    let cs = compile env scrutinee in
    let sq = env.plan_subquery query in
    let ext = env.ext in
    fun ctx row ->
      let v = cs ctx row in
      if Value.is_null v then Value.Null
      else begin
        let candidates =
          List.map
            (fun produced ->
              if Array.length produced <> 1 then
                eval_error "IN subquery must select exactly one column";
              produced.(0))
            (sq.sq_run ctx row)
        in
        let rec go saw_null = function
          | [] -> if saw_null then Value.Null else Value.Bool negated
          | c :: rest -> (
            match apply_binop ext ~now:ctx.now Ast.Eq v c with
            | Value.Bool true -> Value.Bool (not negated)
            | Value.Null -> go true rest
            | _ -> go saw_null rest)
        in
        go false candidates
      end
  | Ast.Scalar_subquery q ->
    let sq = env.plan_subquery q in
    fun ctx row -> (
      match sq.sq_run ctx row with
      | [] -> Value.Null
      | [ [| v |] ] -> v
      | [ _ ] -> eval_error "scalar subquery must select exactly one column"
      | _ :: _ :: _ -> eval_error "scalar subquery returned more than one row")

and truth_value v =
  match v with
  | Value.Bool _ | Value.Null -> v
  | _ -> eval_error "expected boolean, got %s" (Value.type_name v)

(* WHERE semantics: unknown is not true. *)
let to_predicate (c : compiled) ctx row =
  match c ctx row with
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> eval_error "predicate must be boolean, got %s" (Value.type_name v)

(* --- Batch (chunk-at-a-time) predicate kernels --------------------------- *)

(* A batch predicate reads row indices from the first [n] entries of the
   selection vector, compacts the vector in place to the rows that pass
   (WHERE semantics: NULL is not true), and returns the surviving count.
   Conjuncts then run as sequential kernels over a narrowing vector, so a
   selective first conjunct shields the rest of the chunk from the more
   expensive ones. *)
type batch_pred = ctx -> Value.t array array -> sel:int array -> n:int -> int

let batch_of_predicate (c : compiled) : batch_pred =
 fun ctx rows ~sel ~n ->
  let k = ref 0 in
  for j = 0 to n - 1 do
    let i = sel.(j) in
    if to_predicate c ctx rows.(i) then begin
      sel.(!k) <- i;
      incr k
    end
  done;
  !k

let pred_truth = function
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> eval_error "predicate must be boolean, got %s" (Value.type_name v)

(* Comparison kernel: integer pairs compare inline; NULL drops the row;
   every other combination goes through [apply_binop], which is exactly
   what the row-at-a-time closure would have done. *)
let cmp_kernel op ca cb ext : batch_pred =
  let test : int -> int -> bool =
    match op with
    | Ast.Eq -> ( = )
    | Ast.Neq -> ( <> )
    | Ast.Lt -> ( < )
    | Ast.Le -> ( <= )
    | Ast.Gt -> ( > )
    | Ast.Ge -> ( >= )
    | _ -> assert false
  in
  let app = binop_applier ext op in
  fun ctx rows ~sel ~n ->
    let k = ref 0 in
    for j = 0 to n - 1 do
      let i = sel.(j) in
      let row = rows.(i) in
      let a = ca ctx row and b = cb ctx row in
      let keep =
        match a, b with
        | Value.Int x, Value.Int y -> test x y
        | Value.Null, _ | _, Value.Null -> false
        | _, _ -> pred_truth (app ~now:ctx.now a b)
      in
      if keep then begin
        sel.(!k) <- i;
        incr k
      end
    done;
    !k

(* The extent fast path is sound only for element×element overlaps, whose
   semantics are nonempty ground intersection: with fixed endpoints an
   element's extents equal its ground periods exactly, so the pairwise
   interval test below is precise. Period×period overlaps is the strict
   Allen relation and NOW-relative endpoints need real grounding — both
   fall back to routine dispatch per row (cached resolution). Elements
   hold few periods, so the quadratic pair test with early exit beats
   setting up a merge. *)
let finite_extents v =
  match v with
  | Value.Ext ("element", _) -> (
    match Value.extents v with
    | [] -> None
    | exts
      when List.for_all (fun (s, e) -> s > min_int && e < max_int) exts ->
      Some exts
    | _ -> None)
  | _ -> None

let extents_overlap xs ys =
  List.exists
    (fun (s1, e1) -> List.exists (fun (s2, e2) -> s1 <= e2 && s2 <= e1) ys)
    xs

let overlaps_kernel ca cb ext : batch_pred =
  let call = routine_caller ext "overlaps" in
  (* Per-side extents caches, keyed by physical identity of the value.
     A literal side compiles to one shared value per statement, so its
     string→element coercion and extent extraction happen once, not per
     row. Slots hold immutable pairs swapped in a single store, so the
     caches stay race-safe when morsel workers share the kernel. *)
  let cache_a : (Value.t * (int * int) list option) option ref = ref None in
  let cache_b : (Value.t * (int * int) list option) option ref = ref None in
  let coerced_extents ~now v =
    match finite_extents v with
    | Some _ as r -> r
    | None -> (
      match v with
      | Value.Str _ -> (
        match Extension.apply_cast ext ~now v ~to_type:"element" with
        | coerced -> finite_extents coerced
        | exception (Extension.Resolution_error _ | Value.Type_error _) ->
          None)
      | _ -> None)
  in
  let extents_of cache ~now v =
    match !cache with
    | Some (vin, ext) when vin == v -> ext
    | _ ->
      let ext = coerced_extents ~now v in
      cache := Some (v, ext);
      ext
  in
  fun ctx rows ~sel ~n ->
    let k = ref 0 in
    for j = 0 to n - 1 do
      let i = sel.(j) in
      let row = rows.(i) in
      let a = ca ctx row and b = cb ctx row in
      let keep =
        if Value.is_null a || Value.is_null b then false
        else begin
          match
            extents_of cache_a ~now:ctx.now a, extents_of cache_b ~now:ctx.now b
          with
          | Some xs, Some ys -> extents_overlap xs ys
          | _, _ -> (
            match call ~now:ctx.now [| a; b |] with
            | v -> pred_truth v
            | exception Extension.Resolution_error msg -> eval_error "%s" msg)
        end
      in
      if keep then begin
        sel.(!k) <- i;
        incr k
      end
    done;
    !k

let rec compile_batch env expr : batch_pred =
  match expr with
  | Ast.Binop (Ast.And, a, b) ->
    let ka = compile_batch env a and kb = compile_batch env b in
    fun ctx rows ~sel ~n ->
      let n = ka ctx rows ~sel ~n in
      kb ctx rows ~sel ~n
  | Ast.Binop (((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b)
    ->
    cmp_kernel op (compile env a) (compile env b) env.ext
  | Ast.Call (name, [ a; b ]) when String.lowercase_ascii name = "overlaps" ->
    overlaps_kernel (compile env a) (compile env b) env.ext
  | _ -> batch_of_predicate (compile env expr)
