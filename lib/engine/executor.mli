(** Volcano-style pull execution: a plan runs as a lazy row sequence.

    Scans, filters, projections and limits stream; joins materialize
    only their build side; aggregation and sorting are blocking. The
    sequence must be consumed within the statement whose context created
    it (scans snapshot their rid list, but rows are shared).

    {!collect_parallel} is the morsel-driven entry point: subtrees the
    planner marks parallel-safe ({!Plan.parallel_safe}) execute on the
    {!Exec_pool} domain pool and return exactly the rows the sequential
    path would, in the same order; everything else falls back to the
    sequential operators. *)

open Tip_storage

exception Exec_error of string

(** Lazy row stream for a plan (purely sequential). *)
val run : Expr_eval.ctx -> Plan.t -> Value.t array Seq.t

(** [run] materialized to a list. *)
val collect : Expr_eval.ctx -> Plan.t -> Value.t array list

(** Like {!collect}, but parallel-safe subtrees run as rid-range morsels
    on the domain pool. Bit-for-bit equivalent to {!collect} (float
    SUM/AVG may reassociate; see DESIGN.md). Falls back entirely to
    {!collect} when the pool is sequential ([TIP_PARALLEL=1] or one
    domain). *)
val collect_parallel : Expr_eval.ctx -> Plan.t -> Value.t array list

(** Leaf row-count threshold below which {!collect_parallel} stays
    sequential (default 1024; clamped to at least 1). Tests lower it to
    force tiny tables through the parallel machinery. *)
val set_min_parallel_rows : int -> unit

(** Rows per execution chunk on the batch and morsel paths (1024). *)
val chunk_size : int

(** Toggle batch-at-a-time execution (default on). When off, qualifying
    pipelines run through the row-at-a-time operators instead — the
    batch-vs-row differential fuzz and the bench's row-mode baseline use
    this. Armed failpoints disable the batch path implicitly so per-row
    poll counts stay exact. *)
val set_batch_enabled : bool -> unit

(** Leaf row-count threshold below which sequential batch dispatch keeps
    the row path (default 256): chunk setup costs more than it saves on
    a handful of rows. Tests lower it to force small tables through the
    batch kernels. *)
val set_batch_min_rows : int -> unit

(**/**)

(** One aggregate accumulator instance (exposed for tests). *)
type runner = { step : Value.t array -> unit; final : unit -> Value.t }

val make_runner : Expr_eval.ctx -> Plan.agg_spec -> runner
