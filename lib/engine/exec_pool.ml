(* A lazily-initialized, reusable fixed-size domain pool.

   Workers block on a condition variable waiting for tasks; a batch
   ([run]) enqueues one closure per thunk, wakes the workers, and the
   calling domain drains the same queue so a pool of size [n] executes
   on exactly [n] domains (n-1 workers + the caller). Workers are
   spawned on demand up to [size () - 1] and never torn down — they hold
   no state between batches, and process exit reaps them. *)

let max_size = 64

let clamp n = if n < 1 then 1 else if n > max_size then max_size else n

module Metrics = Tip_obs.Metrics

let m_batches =
  Metrics.counter "pool_batches_total" ~help:"Task batches submitted to the pool"

let m_tasks =
  Metrics.counter "pool_tasks_total" ~help:"Thunks executed across all batches"

let g_pool_size =
  Metrics.gauge "pool_size" ~help:"Configured pool size (domains per batch)"

let g_pool_workers =
  Metrics.gauge "pool_workers" ~help:"Worker domains spawned so far"

let resolve_size ~env ~recommended =
  match env with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> clamp n
    | Some _ | None -> clamp recommended)
  | None -> clamp recommended

let default_size () =
  resolve_size
    ~env:(Sys.getenv_opt "TIP_PARALLEL")
    ~recommended:(Domain.recommended_domain_count ())

let override : int option ref = ref None

let size () = match !override with Some n -> n | None -> default_size ()
let set_size n = override := Some (clamp n)
let sequential () = size () <= 1

(* --- The worker pool ------------------------------------------------- *)

let lock = Mutex.create ()
let have_work = Condition.create ()
let queue : (unit -> unit) Queue.t = Queue.create ()
let workers = ref 0 (* worker domains spawned so far *)

(* Tasks are pre-wrapped and never raise. *)
let rec worker_loop () =
  Mutex.lock lock;
  while Queue.is_empty queue do
    Condition.wait have_work lock
  done;
  let task = Queue.pop queue in
  Mutex.unlock lock;
  task ();
  worker_loop ()

let ensure_workers wanted =
  let missing =
    Mutex.lock lock;
    let m = wanted - !workers in
    if m > 0 then workers := wanted;
    Mutex.unlock lock;
    m
  in
  for _ = 1 to missing do
    ignore (Domain.spawn worker_loop : unit Domain.t)
  done;
  Metrics.gauge_set g_pool_workers !workers

(* --- Batches ---------------------------------------------------------- *)

let run_sequential thunks = List.map (fun t -> t ()) thunks

let run ?token thunks =
  let n = size () in
  Metrics.incr m_batches;
  Metrics.add m_tasks (List.length thunks);
  Metrics.gauge_set g_pool_size n;
  (* Once the statement token trips, still-queued tasks are skipped
     outright (recorded as cancelled, never executed), so a cancelled
     parallel subtree stops within the morsel currently running rather
     than finishing the whole batch. *)
  let abandoned () =
    match token with
    | None -> None
    | Some tok -> Tip_core.Deadline.cancelled tok
  in
  match thunks with
  | [] -> []
  | [ t ] -> [ t () ]
  | _ when n <= 1 -> run_sequential thunks
  | _ ->
    ensure_workers (n - 1);
    let tasks = Array.of_list thunks in
    let len = Array.length tasks in
    let results = Array.make len None in
    let pending = ref len in
    let batch_done = Condition.create () in
    let job i () =
      let r =
        match abandoned () with
        | Some reason -> Error (Tip_core.Deadline.Cancelled reason)
        | None -> ( try Ok (tasks.(i) ()) with e -> Error e)
      in
      Mutex.lock lock;
      results.(i) <- Some r;
      decr pending;
      if !pending = 0 then Condition.broadcast batch_done;
      Mutex.unlock lock
    in
    Mutex.lock lock;
    for i = 0 to len - 1 do
      Queue.add (job i) queue
    done;
    Condition.broadcast have_work;
    (* The caller drains the queue alongside the workers, then waits for
       in-flight tasks to land. *)
    let rec drain () =
      if not (Queue.is_empty queue) then begin
        let task = Queue.pop queue in
        Mutex.unlock lock;
        task ();
        Mutex.lock lock;
        drain ()
      end
    in
    drain ();
    while !pending > 0 do
      Condition.wait batch_done lock
    done;
    Mutex.unlock lock;
    (* Re-raise the first failure in input order (Array.iter is
       left-to-right; List.init's evaluation order is not). *)
    Array.iter (function Some (Error e) -> raise e | _ -> ()) results;
    List.init len (fun i ->
        match results.(i) with Some (Ok v) -> v | _ -> assert false)
