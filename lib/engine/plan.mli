(** Physical query plans: a tree of Volcano-style operators whose
    expressions are already compiled to closures. {!Executor.run} turns a
    plan into a row sequence; each node carries a label so EXPLAIN can
    print the tree without decompiling closures. *)

open Tip_storage
module Ast = Tip_sql.Ast

type agg_impl =
  | Agg_count_star
  | Agg_count
  | Agg_sum
  | Agg_avg
  | Agg_min
  | Agg_max
  | Agg_user of Extension.aggregate * string  (** registered name *)

type agg_spec = {
  impl : agg_impl;
  arg : Expr_eval.compiled option;  (** [None] only for count-star *)
  distinct : bool;  (** aggregate over distinct argument values *)
  agg_label : string;
}

(** Per-operator runtime counters recorded by [Instrument] wrappers
    (EXPLAIN ANALYZE). Atomic because instrumented operators may run
    inside parallel morsel workers. *)
type op_stats = {
  actual_rows : int Atomic.t;
  actual_ns : int Atomic.t;
  ran_parallel : bool Atomic.t;
}

val fresh_stats : unit -> op_stats

type t =
  | Seq_scan of { table : Table.t; label : string }
  | Index_scan of {
      table : Table.t;
      btree : Btree.t;
      lo : Btree.bound;
      hi : Btree.bound;
      label : string;
    }  (** B+tree range scan; conjuncts recheck above *)
  | Interval_scan of {
      table : Table.t;
      index : Interval_index.t;
      lo : int;
      hi : int;
      label : string;
    }  (** candidate rows whose extents intersect the probe window *)
  | Filter of {
      input : t;
      pred : Expr_eval.compiled;
      bpred : Expr_eval.batch_pred option;
          (** fused chunk kernel for the same predicate; [None] when the
              predicate was built outside the planner *)
      label : string;
    }
  | Nested_loop of { left : t; right : t }  (** cross product *)
  | Hash_join of {
      left : t;
      right : t;
      left_keys : Expr_eval.compiled list;
      right_keys : Expr_eval.compiled list;
      build_left : bool;
          (** cost-chosen build side: [false] builds on the right and
              streams the left (the historical default) *)
      label : string;
    }  (** equi-join *)
  | Left_outer_join of {
      left : t;
      right : t;
      on : Expr_eval.compiled;
      right_width : int;  (** columns to NULL-pad for unmatched rows *)
      label : string;
    }
  | Project of {
      input : t;
      exprs : Expr_eval.compiled array;
      names : string array;
    }
  | Aggregate of {
      input : t;
      keys : Expr_eval.compiled list;
      aggs : agg_spec list;
      label : string;
    }  (** output rows are [keys @ aggregate results] *)
  | Sort of {
      input : t;
      by : (Expr_eval.compiled * Ast.order_direction) list;
      label : string;
    }
  | Distinct of t  (** order-preserving (first occurrence wins) *)
  | Limit of { input : t; limit : int option; offset : int option }
  | Append of t list  (** concatenation of same-arity inputs (UNION ALL) *)
  | Partition_scan of {
      parent : string;  (** partitioned table name *)
      children : t list;
          (** one pipeline per surviving partition (scan plus
              pushed-down recheck filter), declared order *)
      total : int;  (** partitions declared *)
      pruned : int;
      label : string;
    }
      (** pruned scan over a range-partitioned table; EXPLAIN renders
          [partitions=kept/total pruned=n]. The executor concatenates
          the children, each of which batches/parallelizes on its own
          (partition-wise consumption). *)
  | One_row  (** FROM-less SELECT produces a single empty row *)
  | Virtual_scan of {
      vt_name : string;
      produce : unit -> Value.t array list;
      label : string;
    }
      (** snapshot of a registered virtual table ({!Vtab}); never
          parallel — providers read mutable registries *)
  | Instrument of { input : t; stats : op_stats }
      (** transparent wrapper recording actual rows and wall time; the
          parallelism predicates and the executor see through it *)

val agg_name : agg_impl -> string

val instrument : t -> t
(** Wrap every operator in the tree with an [Instrument] node
    (idempotent; used only by the EXPLAIN ANALYZE path). *)

(** {1 Parallelism-safety annotation}

    The planner marks plans with these; the parallel executor trusts
    them to decide routing (and falls back to the sequential path for
    anything unsafe). *)

(** Can this aggregate's partial states merge associatively across
    morsels? True for the non-DISTINCT built-ins and for user aggregates
    that registered an [agg_merge]; false for DISTINCT and mergeless
    user aggregates. *)
val mergeable_agg : agg_spec -> bool

(** Is this exact subtree a morsel-parallel pipeline: a [Seq_scan] or
    [Interval_scan] leaf under only [Filter]/[Project] operators and
    [Hash_join] probe sides? *)
val parallel_pipeline : t -> bool

(** Can this exact subtree run on the parallel path: a parallel pipeline,
    or an [Aggregate] of one whose aggregates are all mergeable? *)
val parallel_safe : t -> bool

(** Does any subtree satisfy {!parallel_safe}? (Shown by EXPLAIN.) *)
val parallel_candidate : t -> bool

(** Indented tree rendering, as shown by EXPLAIN. *)
val pp : ?indent:int -> Format.formatter -> t -> unit

val to_string : t -> string
