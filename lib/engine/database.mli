(** The database facade: parse, bind NOW, plan, execute.

    NOW handling (the paper's Sections 2/4): each statement binds the
    special symbol NOW exactly once, to the current transaction time —
    the wall clock, or a per-database override installed by
    [SET NOW = ...] (the browser's what-if mechanism). The binding is
    pushed into {!Tip_core.Tx_clock} for the statement's duration so
    every blade routine, cast and comparison observes the same frozen
    instant.

    Transactions are single-connection with an in-memory undo log
    (insert/delete/update are undoable; DDL auto-commits). *)

open Tip_storage
module Ast = Tip_sql.Ast

exception Error of string

type t

type result =
  | Rows of { names : string list; rows : Value.t array list }
  | Affected of int  (** DML row count *)
  | Message of string  (** DDL acknowledgements, EXPLAIN text, ... *)

(** A fresh database with built-in scalar functions installed. Pass
    [catalog] to open over a snapshot restored with
    {!Tip_storage.Persist.load} (register extension types first). *)
val create : ?catalog:Catalog.t -> unit -> t

val catalog : t -> Catalog.t

(** The registry a DataBlade installs into. *)
val extension : t -> Extension.t

(** The [SET NOW] override currently in force, if any. *)
val now_override : t -> Tip_core.Chronon.t option

val in_transaction : t -> bool

(** {1 Execution}

    Every entry point accepts a governance [token]
    ({!Tip_core.Deadline.t}). The executor polls it at batch boundaries;
    when it trips — deadline, budget, client interrupt, drain — the
    statement raises [Deadline.Cancelled], its partial in-memory effects
    are reverted, and none of its records reach the WAL (the log keeps a
    clean statement prefix). A [SET TIMEOUT n] default deadline is
    layered under ungoverned callers and under tokens with no deadline
    of their own. *)

(** Parses and executes one statement; [params] binds [:name] host
    variables.
    @raise Error (and planner/eval/constraint exceptions) on failure.
    @raise Tip_core.Deadline.Cancelled when [token] trips. *)
val exec :
  ?token:Tip_core.Deadline.t ->
  ?params:(string * Value.t) list ->
  t ->
  string ->
  result

(** Executes an already-parsed statement. [sql] is the statement's
    original text, used only to key the {!Tip_obs.Introspect}
    fingerprint store ([tip_stat_statements]); when absent the
    pretty-printed AST is fingerprinted instead (same shape). *)
val exec_statement :
  ?token:Tip_core.Deadline.t ->
  ?sql:string ->
  t ->
  params:(string * Value.t) list ->
  Ast.statement ->
  result

(** Runs a [';']-separated script; returns the last result. *)
val exec_script :
  ?token:Tip_core.Deadline.t ->
  ?params:(string * Value.t) list ->
  t ->
  string ->
  result

(** The default statement deadline currently in force ([SET TIMEOUT]),
    in milliseconds. *)
val statement_timeout_ms : t -> int option

(** {1 Durability}

    A durable database pairs the in-memory engine with an on-disk
    directory holding a snapshot and a write-ahead log. Every committed
    DML/DDL statement is appended to the log (as a batch closed by a
    commit marker) before its result is returned; [CHECKPOINT] — or the
    automatic record-count trigger — atomically rewrites the snapshot
    and truncates the log. *)

(** Opens (creating if needed) the durable database in [dir]: loads the
    newest valid snapshot, replays the committed WAL tail (stopping
    cleanly at the first torn or corrupt record), then checkpoints so
    the recovered state becomes the new snapshot. Register extension
    types before calling; install the blade on the returned database
    afterwards. [sync] controls when the log is fsynced (default
    {!Wal.Always}: a statement's effects survive any later crash once
    its result has been returned). [checkpoint_every] bounds the log
    at that many records (default 10_000; [0] disables auto-checkpoint).
    [archive_dir] turns on WAL archiving: every generation the database
    retires — at checkpoints, and the recovered log on open — is sealed
    into that directory's chain ({!Archive}) instead of existing only
    until truncation. *)
val open_durable :
  ?sync:Wal.sync_policy ->
  ?checkpoint_every:int ->
  ?archive_dir:string ->
  dir:string ->
  unit ->
  t * Recovery.info

(** Directory backing this database, if opened with {!open_durable}. *)
val durability_dir : t -> string option

(** Forces a checkpoint: flushes pending records, writes the snapshot
    atomically, truncates the WAL. Returns the number of log records
    truncated. No-op (returning [0]) without durable storage.
    @raise Error inside an open transaction. *)
val checkpoint : t -> int

(** Detaches and closes the WAL without checkpointing; safe after a
    simulated crash. Graceful shutdown should [checkpoint] first. An
    [Every_n] sync policy's unsynced tail is fsynced on the way out so
    a clean close never abandons commits the policy was still holding. *)
val close_durable : t -> unit

(** {1 Replication and high availability}

    The primary side of WAL shipping (DESIGN.md §13) and the HA
    surfaces built on it (§15). The replication calls must run under
    the server's database lock so the (generation, offset, epoch)
    tuples they return are consistent with the catalog and the log. *)

(** Marks the database as a read replica: every statement that would
    mutate rows, the catalog, or transaction state is refused with a
    typed [READ_ONLY:] {!Error}. Reads, EXPLAIN, SHOW/DESCRIBE/STATS,
    ANALYZE, COPY TO and SET TIMEOUT/NOW still run. *)
val set_read_only : t -> bool -> unit

val read_only : t -> bool

(** The promotion epoch this database's generation frames carry —
    [0] until a promotion somewhere in its ancestry bumped it (and for
    non-durable databases). *)
val epoch : t -> int

(** Instant (unix seconds) of the newest commit in the log, if any. *)
val last_commit_at : t -> int option

(** Current WAL generation, end-of-log byte offset and promotion epoch
    — where a fully caught-up subscriber stands. [None] without
    durable storage. *)
val replication_state : t -> (int * int * int) option

(** Path of the live WAL file, for the primary's stream reader. *)
val replication_wal_path : t -> string option

(** Highest WAL generation sealed into the attached archive — the
    [archive_generation] column of [tip_stat_replication]. [None]
    without an archive, or before the first seal. *)
val archive_generation : t -> int option

(** The bootstrap payload: [(generation, snapshot_text, wal_offset,
    epoch)], mutually consistent. [None] without durable storage.
    @raise Error (typed [BUSY:]) inside an open transaction — the
    snapshot would leak uncommitted rows. *)
val replication_snapshot : t -> (int * string * int * int) option

(** Renders an online backup into [dir] ([BACKUP TO 'dir']): the
    consistent snapshot plus its {!Archive.origin} stamp. Must run
    under the server's database lock.
    @raise Error without durable storage, or (typed [BUSY:]) inside an
    open transaction. *)
val backup : t -> dir:string -> Archive.origin

(** Turns a read-only replica into a writable primary rooted at [dir]:
    saves the streamed state as a full snapshot stamped with [gen] and
    the bumped promotion epoch [epoch], opens a fresh WAL under that
    epoch, clears the read-only mark. [asof] is the replica's newest
    applied commit instant. Called by the server's PROMOTE handler —
    the replication client owns the gen/epoch bookkeeping. *)
val promote_replica :
  ?sync:Wal.sync_policy ->
  ?checkpoint_every:int ->
  ?archive_dir:string ->
  ?asof:int ->
  t ->
  dir:string ->
  gen:int ->
  epoch:int ->
  unit ->
  unit

(** {1 Result helpers}

    All raise {!Error} when the result has the wrong shape. *)

val rows_exn : result -> Value.t array list
val names_exn : result -> string list
val affected_exn : result -> int

(** Aligned text table (psql-style) for shells and examples. *)
val render_result : result -> string
