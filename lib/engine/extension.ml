(* The extensibility interface — our stand-in for the Informix DataBlade
   API.

   A blade installs, against one database: scalar routines (with
   overloading by argument type), operator overloads (the same mechanism,
   keyed by the operator symbol), casts (implicit or explicit), user-
   defined aggregates, and planner hints (which routine calls an interval
   index can answer). Datatypes themselves are registered globally in
   [Tip_storage.Value]; everything here is per-database state, mirroring
   how a DataBlade is installed into one Informix database. *)

open Tip_storage

(* Parameter types for overload matching. *)
type ptype =
  | P_int
  | P_float
  | P_bool
  | P_string
  | P_date
  | P_ext of string
  | P_any

let ptype_name = function
  | P_int -> "int"
  | P_float -> "float"
  | P_bool -> "boolean"
  | P_string -> "char"
  | P_date -> "date"
  | P_ext n -> n
  | P_any -> "any"

(* The runtime type tag of a value, as a ptype for matching. *)
let ptype_of_value = function
  | Value.Null -> P_any
  | Value.Int _ -> P_int
  | Value.Float _ -> P_float
  | Value.Bool _ -> P_bool
  | Value.Str _ -> P_string
  | Value.Date _ -> P_date
  | Value.Ext (name, _) -> P_ext name

let value_matches ptype v =
  match ptype, v with
  | P_any, _ -> true
  | _, Value.Null -> true (* NULL inhabits every type; routines see it *)
  | P_int, Value.Int _ -> true
  | P_float, (Value.Float _ | Value.Int _) -> true
  | P_bool, Value.Bool _ -> true
  | P_string, Value.Str _ -> true
  | P_date, Value.Date _ -> true
  | P_ext n, Value.Ext (n', _) -> String.equal n n'
  | (P_int | P_float | P_bool | P_string | P_date | P_ext _), _ -> false

(* A routine implementation. [now] is the statement's transaction time. *)
type routine = {
  params : ptype list;
  strict : bool; (* strict routines return NULL on any NULL argument *)
  impl : now:Tip_core.Chronon.t -> Value.t array -> Value.t;
}

type cast = {
  cast_to : string; (* target type name (canonical) *)
  implicit : bool;
  cast_cost : int;
    (* resolution cost; longer widening chains cost more so that e.g.
       chronon->instant is preferred over chronon->element *)
  cast_impl : now:Tip_core.Chronon.t -> Value.t -> Value.t;
}

type aggregate = {
  agg_init : unit -> Value.t;         (* accumulator seed *)
  agg_step : now:Tip_core.Chronon.t -> Value.t -> Value.t -> Value.t;
  agg_final : now:Tip_core.Chronon.t -> Value.t -> Value.t;
  agg_merge :
    (now:Tip_core.Chronon.t -> Value.t -> Value.t -> Value.t) option;
    (* combine two partial accumulators; None keeps the aggregate off
       the morsel-parallel path *)
}

(* Transaction-time support, registered by a temporal blade: how to
   create, close and probe the tuple timestamps of WITH HISTORY shadow
   tables. The engine has no temporal types of its own, so this is the
   interface through which a blade brings transaction time to SQL. *)
type history_support = {
  timestamp_type : string;
    (* the column type of the shadow table's _tt column, e.g. "element" *)
  open_timestamp : now:Tip_core.Chronon.t -> Value.t;
    (* the timestamp of a freshly current row: {[now, NOW]} *)
  close_timestamp : now:Tip_core.Chronon.t -> Value.t -> Value.t;
    (* clip an open timestamp at [now] when the row stops being current *)
  is_open : Value.t -> bool;
    (* does the timestamp still track NOW? *)
  timestamp_contains : now:Tip_core.Chronon.t -> Value.t -> Tip_core.Chronon.t -> bool;
    (* AS OF probe: was the row current at the given instant? *)
}

type t = {
  routines : (string, routine list) Hashtbl.t;
  casts : (string, cast list) Hashtbl.t; (* keyed by source type name *)
  aggregates : (string, aggregate) Hashtbl.t;
  mutable interval_sargable : string list;
    (* routine names [f] such that [f(column, constant)] is answerable
       from an interval index on the column (with recheck) *)
  mutable chronon_extractors : (Value.t -> Tip_core.Chronon.t option) list;
    (* how the engine gets a chronon out of a blade value, e.g. for SET NOW *)
  mutable history : history_support option;
}

exception Resolution_error of string

let resolution_error fmt =
  Format.kasprintf (fun s -> raise (Resolution_error s)) fmt

let create () =
  { routines = Hashtbl.create 64;
    casts = Hashtbl.create 16;
    aggregates = Hashtbl.create 16;
    interval_sargable = [];
    chronon_extractors = [];
    history = None }

let canonical = String.lowercase_ascii

(* --- Registration ------------------------------------------------------- *)

let register_routine t ~name ~params ?(strict = true) impl =
  let key = canonical name in
  let existing = Option.value (Hashtbl.find_opt t.routines key) ~default:[] in
  List.iter
    (fun r ->
      if r.params = params then
        invalid_arg
          (Printf.sprintf "routine %s(%s) already registered" key
             (String.concat ", " (List.map ptype_name params))))
    existing;
  Hashtbl.replace t.routines key ({ params; strict; impl } :: existing)

let register_cast t ~from_type ~to_type ?(implicit = false) ?(cost = 1) cast_impl =
  let key = canonical from_type in
  let existing = Option.value (Hashtbl.find_opt t.casts key) ~default:[] in
  let cast = { cast_to = canonical to_type; implicit; cast_cost = cost; cast_impl } in
  Hashtbl.replace t.casts key (cast :: existing)

let register_aggregate t ~name agg =
  let key = canonical name in
  if Hashtbl.mem t.aggregates key then
    invalid_arg (Printf.sprintf "aggregate %s already registered" key);
  Hashtbl.replace t.aggregates key agg

let register_interval_sargable t ~name =
  t.interval_sargable <- canonical name :: t.interval_sargable

let register_chronon_extractor t f =
  t.chronon_extractors <- f :: t.chronon_extractors

let register_history_support t support = t.history <- Some support

let history_support t = t.history

(* --- Lookup -------------------------------------------------------------- *)

let find_aggregate t name = Hashtbl.find_opt t.aggregates (canonical name)
let is_aggregate t name = find_aggregate t name <> None

let is_interval_sargable t name =
  List.mem (canonical name) t.interval_sargable

let find_cast t ~from_type ~to_type =
  match Hashtbl.find_opt t.casts (canonical from_type) with
  | None -> None
  | Some casts ->
    List.find_opt (fun c -> String.equal c.cast_to (canonical to_type)) casts

let find_implicit_cast t ~from_type ~to_type =
  match find_cast t ~from_type ~to_type with
  | Some c when c.implicit -> Some c
  | Some _ | None -> None

(* Chronon extraction: Date natively, blade types via extractors. *)
let to_chronon t v =
  match v with
  | Value.Date c -> Some c
  | Value.Null | Value.Int _ | Value.Float _ | Value.Bool _ | Value.Str _
  | Value.Ext _ ->
    List.find_map (fun f -> f v) t.chronon_extractors

(* --- Overload resolution --------------------------------------------------- *)

(* Cost of passing [v] where [p] is expected: 0 exact, 1 via implicit
   conversion (int widening to float, or a registered implicit cast),
   with the chosen cast; None if impossible. The widening cost keeps
   overloads like (span, int) and (span, float) unambiguous. *)
let arg_cost t p v =
  let exact =
    match p, v with
    | P_float, Value.Int _ -> false (* widening, not exact *)
    | _, _ -> value_matches p v
  in
  if exact then Some (0, None)
  else if p = P_float && (match v with Value.Int _ -> true | _ -> false) then
    Some (1, None)
  else begin
    match p with
    | P_ext target -> (
      match find_implicit_cast t ~from_type:(Value.type_name v) ~to_type:target with
      | Some cast -> Some (cast.cast_cost, Some cast)
      | None -> None)
    | P_date -> (
      match
        find_implicit_cast t ~from_type:(Value.type_name v) ~to_type:"date"
      with
      | Some cast -> Some (cast.cast_cost, Some cast)
      | None -> None)
    | P_int | P_float | P_bool | P_string | P_any -> None
  end

(* The outcome of overload resolution. Resolution depends only on the
   arguments' type names (costs, casts and the NULL rules all key off
   the value's type, with NULL its own type), so call sites may cache a
   [resolved] keyed by those names and skip re-scoring per row. *)
type resolved =
  | R_null  (* strict routine with a NULL argument, or the null-tie rule *)
  | R_apply of cast option array * routine

(* Resolves the best overload of [name] for [args] without applying it.
   Raises [Resolution_error] when nothing (or too many things) match. *)
let resolve_routine t ~name args =
  let key = canonical name in
  match Hashtbl.find_opt t.routines key with
  | None -> resolution_error "unknown routine %s" name
  | Some overloads ->
    let arity_matched =
      List.filter (fun r -> List.length r.params = Array.length args) overloads
    in
    if arity_matched = [] then
      resolution_error "routine %s does not take %d arguments" name
        (Array.length args);
    let scored =
      List.filter_map
        (fun r ->
          let rec score i params total casts =
            match params with
            | [] -> Some (total, List.rev casts)
            | p :: rest -> (
              match arg_cost t p args.(i) with
              | Some (c, cast) -> score (i + 1) rest (total + c) (cast :: casts)
              | None -> None)
          in
          match score 0 r.params 0 [] with
          | Some (total, casts) -> Some (total, casts, r)
          | None -> None)
        arity_matched
    in
    (match List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) scored with
    | [] ->
      resolution_error "no overload of %s matches (%s)" name
        (String.concat ", "
           (List.map Value.type_name (Array.to_list args)))
    (* A NULL argument matches every type, which can tie otherwise
       distinct overloads; when all tied candidates are strict the
       answer is NULL whichever would run. *)
    | (c1, _, r1) :: (c2, _, _) :: _
      when c1 = c2 && Array.exists Value.is_null args
           && List.for_all
                (fun (c, _, r) -> c > c1 || r.strict)
                scored
           && r1.strict ->
      R_null
    | (c1, _, _) :: (c2, _, _) :: _ when c1 = c2 ->
      resolution_error "ambiguous call to %s" name
    | (_, casts, r) :: _ ->
      if r.strict && Array.exists Value.is_null args then R_null
      else R_apply (Array.of_list casts, r))

let apply_resolved ~now resolved args =
  match resolved with
  | R_null -> Value.Null
  | R_apply (casts, r) ->
    let args =
      Array.mapi
        (fun i v ->
          match casts.(i) with
          | Some cast -> cast.cast_impl ~now v
          | None -> v)
        args
    in
    r.impl ~now args

(* Resolves and applies in one step (resolution cost per call; hot paths
   cache the [resolved] instead). *)
let apply_routine t ~now ~name args =
  apply_resolved ~now (resolve_routine t ~name args) args

(* Per-call-site dispatch with two inline caches: overload resolution is
   keyed by the argument type names (almost always identical across the
   rows of one statement), and cast outputs are keyed per position by
   physical identity of the input value — a literal compiles to one
   shared value, so e.g. an element constant written as a string parses
   once instead of once per row. Both caches swap immutable pairs in a
   single store, so racing morsel workers at worst recompute. The cast
   cache is only sound while [now] is fixed, i.e. within one compiled
   statement — create a fresh caller per compilation site. *)
let caller t ~name =
  let resolved_cache : (string array * resolved) option ref = ref None in
  let cast_cache : (Value.t * Value.t) option array ref = ref [||] in
  fun ~now (argv : Value.t array) ->
    let n = Array.length argv in
    let resolved =
      match !resolved_cache with
      | Some (tys, r)
        when Array.length tys = n
             &&
             let rec ok i =
               i >= n
               || (String.equal tys.(i) (Value.type_name argv.(i))
                  && ok (i + 1))
             in
             ok 0 ->
        r
      | _ ->
        let r = resolve_routine t ~name argv in
        resolved_cache := Some (Array.map Value.type_name argv, r);
        r
    in
    match resolved with
    | R_null -> Value.Null
    | R_apply (casts, r) ->
      let cache =
        let c = !cast_cache in
        if Array.length c = n then c
        else begin
          let c = Array.make n None in
          cast_cache := c;
          c
        end
      in
      let args =
        Array.mapi
          (fun i v ->
            match casts.(i) with
            | None -> v
            | Some cast -> (
              match cache.(i) with
              | Some (vin, vout) when vin == v -> vout
              | _ ->
                let out = cast.cast_impl ~now v in
                cache.(i) <- Some (v, out);
                out))
          argv
      in
      r.impl ~now args

let has_routine t name = Hashtbl.mem t.routines (canonical name)

(* Applies a cast (for [expr::Type]); any registered cast qualifies, and
   identity casts succeed trivially. *)
let apply_cast t ~now v ~to_type =
  let from_type = Value.type_name v in
  if Value.is_null v then Value.Null
  else if String.equal (canonical from_type) (canonical to_type) then v
  else begin
    match find_cast t ~from_type ~to_type with
    | Some cast -> cast.cast_impl ~now v
    | None ->
      resolution_error "no cast from %s to %s" from_type (canonical to_type)
  end
