(** Incremental replay of a shipped WAL stream (DESIGN.md §13).

    Buffers raw WAL bytes as they arrive from the primary, cuts them
    into CRC-checked frames, and applies only whole committed batches
    to the catalog. The confirmed position ({!applied_offset}) moves
    exclusively at commit boundaries, so a disconnect mid-batch costs
    nothing: {!reset_stream} drops the open fragment and the subscriber
    resumes from the last statement boundary.

    A generation frame that does not match the replica's bootstrap
    generation means the primary checkpointed and truncated its log;
    it surfaces as [Apply_failed] and the caller must re-bootstrap
    ({!rebase} after loading the fresh snapshot) instead of diverging.
    A frame carrying a different promotion epoch is fenced the same
    way — a failover happened around this stream (DESIGN.md §15).

    Not thread-safe: callers serialize {!feed} with reads under the
    database lock. *)

type error =
  | Stream_corrupt of string
      (** a damaged frame — CRC mismatch, torn header, or an
          unconfirmed tail past the buffering cap; drop the connection
          and resume from {!applied_offset} *)
  | Apply_failed of string
      (** the stream does not fit the replica's state (generation or
          epoch change, record/catalog mismatch); re-bootstrap *)

type t

(** A replica positioned at byte [offset] of the generation-[generation]
    WAL stamped with promotion epoch [epoch], with [catalog] already
    holding the matching base state. [max_pending] caps the received
    unconfirmed bytes (default 16 MiB): a stream that never reaches a
    commit boundary within the cap is classified [Stream_corrupt]. *)
val create :
  ?max_pending:int -> Catalog.t -> generation:int -> epoch:int -> offset:int -> t

(** Ingests stream bytes, applying every complete committed batch.
    On [Error] the replica's confirmed state is still consistent (the
    failing batch was not partially applied unless the failure came
    from mid-batch [Wal.apply], which only happens on a stream that
    lies about its base state — re-bootstrap repairs both cases). *)
val feed : t -> string -> (unit, error) result

(** Drops the half-received tail, keeping all confirmed state. *)
val reset_stream : t -> unit

(** Re-points the replica at a fresh snapshot's generation, epoch and
    offset (the caller swaps catalog contents via [Catalog.assign]
    first). *)
val rebase : t -> generation:int -> epoch:int -> offset:int -> unit

val generation : t -> int
val epoch : t -> int
val applied_offset : t -> int
val applied_commits : t -> int
val applied_records : t -> int

(** Instant (unix seconds) of the newest stamped commit applied from
    the stream — the replica's applied-state clock. *)
val last_commit_at : t -> int option

val catalog : t -> Catalog.t
