(** The system catalog: table names to table objects, plus a global
    index namespace (SQL's [DROP INDEX] takes no table name, so index
    names are unique database-wide). All names fold case. *)

exception Catalog_error of string

type t

val create : unit -> t

val find_table : t -> string -> Table.t option

(** @raise Catalog_error when the table does not exist. *)
val table_exn : t -> string -> Table.t

(** All table names, sorted. *)
val table_names : t -> string list

(** @raise Catalog_error on duplicate table name. *)
val create_table : t -> Schema.t -> Table.t

(** Returns whether the table (or partitioned table — children and
    metadata go with it) existed; its indexes leave the namespace.
    @raise Catalog_error when [name] is a partition child: children are
    dropped through their parent. *)
val drop_table : t -> string -> bool

(** {1 Partitioned tables (DESIGN.md §14)}

    A partitioned parent is not itself a {!Table.t}: it is a
    {!Partition.t} descriptor over ordinary child tables named
    [<parent>__<partition>] that live in the catalog like any other
    table (and therefore index, ANALYZE, journal and replicate
    unchanged). *)

val find_partitioned : t -> string -> Partition.t option

(** Parent names, sorted. *)
val partitioned_names : t -> string list

(** The descriptor and part owning a child table name, if the name is a
    partition child. *)
val partition_of_child : t -> string -> (Partition.t * Partition.part) option

(** Raises the owning part's end watermark when [table] is a partition
    child and [row] has a temporal extent; no-op otherwise. Every path
    that lands a row in a table (engine DML, WAL replay) calls this so
    pruning stays sound on primaries, replicas and after recovery. *)
val note_partition_write : t -> Table.t -> Value.t array -> unit

(** Creates the children ([<parent>__<partition>], one per declared
    partition, same columns as [schema]) and registers the descriptor.
    Nothing is left behind on failure.
    @raise Catalog_error / [Partition.Partition_error] on name clashes,
    overlapping ranges, duplicate partitions or >1 DEFAULT. *)
val create_partitioned :
  t ->
  Schema.t ->
  column:string ->
  parts:(string * (int * int) option) list ->
  Partition.t

(** Re-registers a loaded partition spec over child tables that already
    exist (snapshot load re-creates children first), rebuilding each
    child's end watermark from its rows. *)
val link_partitioned :
  t ->
  name:string ->
  schema:Schema.t ->
  column:string ->
  parts:(string * (int * int) option) list ->
  Partition.t

(** @raise Catalog_error on duplicate index name (database-wide). *)
val create_index :
  t ->
  idx_name:string ->
  table_name:string ->
  column:string ->
  unique:bool ->
  kind:Table.index_kind ->
  Table.index

val drop_index : t -> string -> bool

(** Replaces [t]'s contents (tables and index namespace) with [from]'s,
    keeping the handle itself — replication re-bootstrap swaps in a
    freshly loaded snapshot under the catalog object the engine and
    virtual tables already share. *)
val assign : t -> from:t -> unit
