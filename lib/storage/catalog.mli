(** The system catalog: table names to table objects, plus a global
    index namespace (SQL's [DROP INDEX] takes no table name, so index
    names are unique database-wide). All names fold case. *)

exception Catalog_error of string

type t

val create : unit -> t

val find_table : t -> string -> Table.t option

(** @raise Catalog_error when the table does not exist. *)
val table_exn : t -> string -> Table.t

(** All table names, sorted. *)
val table_names : t -> string list

(** @raise Catalog_error on duplicate table name. *)
val create_table : t -> Schema.t -> Table.t

(** Returns whether the table existed; its indexes leave the namespace. *)
val drop_table : t -> string -> bool

(** @raise Catalog_error on duplicate index name (database-wide). *)
val create_index :
  t ->
  idx_name:string ->
  table_name:string ->
  column:string ->
  unique:bool ->
  kind:Table.index_kind ->
  Table.index

val drop_index : t -> string -> bool

(** Replaces [t]'s contents (tables and index namespace) with [from]'s,
    keeping the handle itself — replication re-bootstrap swaps in a
    freshly loaded snapshot under the catalog object the engine and
    virtual tables already share. *)
val assign : t -> from:t -> unit
