(* Interval index over period-valued (or element-valued) columns.

   An augmented AVL interval tree: each node stores one [lo, hi] interval
   (conservative chronon extent, in seconds) together with the row id,
   keyed by (lo, hi, rid), and carries the maximum [hi] of its subtree.
   An overlap query prunes every subtree whose max end lies before the
   probe window, giving O(log n + answer) stabbing on well-spread data.

   This is the reproduction stand-in for the period-index DataBlade of
   Bliujute et al. (ICDE 1999) that the paper cites as related work: the
   engine uses it to answer window-overlap scans (e.g. the TIP Browser's
   highlight window) without a full scan. NOW-relative timestamps get
   open-ended extents ([max_int]), so the index returns a superset and
   the executor rechecks the exact predicate. *)

type interval = { lo : int; hi : int; rid : int }

let m_probes =
  Tip_obs.Metrics.counter "interval_probes_total"
    ~help:"Interval-index overlap probes served"

type node = {
  iv : interval;
  left : node option;
  right : node option;
  height : int;
  max_hi : int; (* max of iv.hi over the whole subtree *)
}

type t = { mutable root : node option; mutable size : int }

let create () = { root = None; size = 0 }

let size t = t.size

let height = function None -> 0 | Some n -> n.height
let max_hi_of = function None -> min_int | Some n -> n.max_hi

let mk iv left right =
  { iv; left; right;
    height = 1 + Stdlib.max (height left) (height right);
    max_hi = Stdlib.max iv.hi (Stdlib.max (max_hi_of left) (max_hi_of right)) }

let balance_factor n = height n.left - height n.right

let rotate_right n =
  match n.left with
  | None -> n
  | Some l -> mk l.iv l.left (Some (mk n.iv l.right n.right))

let rotate_left n =
  match n.right with
  | None -> n
  | Some r -> mk r.iv (Some (mk n.iv n.left r.left)) r.right

let rebalance n =
  let bf = balance_factor n in
  if bf > 1 then begin
    let l = Option.get n.left in
    let n = if balance_factor l < 0 then mk n.iv (Some (rotate_left l)) n.right else n in
    rotate_right n
  end
  else if bf < -1 then begin
    let r = Option.get n.right in
    let n = if balance_factor r > 0 then mk n.iv n.left (Some (rotate_right r)) else n in
    rotate_left n
  end
  else n

let compare_iv a b =
  let c = Int.compare a.lo b.lo in
  if c <> 0 then c
  else begin
    let c = Int.compare a.hi b.hi in
    if c <> 0 then c else Int.compare a.rid b.rid
  end

let rec insert_node tree iv =
  match tree with
  | None -> mk iv None None
  | Some n ->
    (* Equal keys go right, so identical triples coexist harmlessly. *)
    if compare_iv iv n.iv < 0 then
      rebalance (mk n.iv (Some (insert_node n.left iv)) n.right)
    else rebalance (mk n.iv n.left (Some (insert_node n.right iv)))

let insert t ~lo ~hi rid =
  t.root <- Some (insert_node t.root { lo; hi; rid });
  t.size <- t.size + 1

let rec min_node n = match n.left with None -> n | Some l -> min_node l

let rec remove_node ~found tree iv =
  match tree with
  | None -> None
  | Some n ->
    let c = compare_iv iv n.iv in
    if c < 0 then Some (rebalance (mk n.iv (remove_node ~found n.left iv) n.right))
    else if c > 0 then
      Some (rebalance (mk n.iv n.left (remove_node ~found n.right iv)))
    else begin
      found := true;
      match n.left, n.right with
      | None, other | other, None -> other
      | Some _, Some r ->
        let successor = min_node r in
        let dummy = ref false in
        Some
          (rebalance
             (mk successor.iv n.left (remove_node ~found:dummy n.right successor.iv)))
    end

(* Removes one occurrence of the (lo, hi, rid) triple; returns whether it
   was present. *)
let remove t ~lo ~hi rid =
  let found = ref false in
  t.root <- remove_node ~found t.root { lo; hi; rid };
  if !found then t.size <- t.size - 1;
  !found

(* All rids whose interval intersects [lo, hi] (closed on both ends). *)
let query_overlaps t ~lo ~hi =
  Tip_obs.Metrics.incr m_probes;
  let acc = ref [] in
  let rec go = function
    | None -> ()
    | Some n ->
      if n.max_hi < lo then () (* whole subtree ends before the window *)
      else begin
        go n.left;
        if n.iv.lo <= hi && lo <= n.iv.hi then acc := n.iv.rid :: !acc;
        (* Right subtree keys start at >= n.iv.lo; prune when past window. *)
        if n.iv.lo <= hi then go n.right
      end
  in
  go t.root;
  List.rev !acc

let query_stab t ~at = query_overlaps t ~lo:at ~hi:at

let iter t f =
  let rec go = function
    | None -> ()
    | Some n ->
      go n.left;
      f ~lo:n.iv.lo ~hi:n.iv.hi n.iv.rid;
      go n.right
  in
  go t.root

(* AVL + augmentation invariants, for tests. *)
let check_invariants t =
  let rec go = function
    | None -> (0, min_int)
    | Some n ->
      let hl, ml = go n.left and hr, mr = go n.right in
      assert (abs (hl - hr) <= 1);
      assert (n.height = 1 + Stdlib.max hl hr);
      let m = Stdlib.max n.iv.hi (Stdlib.max ml mr) in
      assert (n.max_hi = m);
      (match n.left with
      | Some l -> assert (compare_iv l.iv n.iv <= 0)
      | None -> ());
      (match n.right with
      | Some r -> assert (compare_iv n.iv r.iv <= 0)
      | None -> ());
      (n.height, m)
  in
  ignore (go t.root)
