(* Heap storage for one table: rows addressed by stable row ids.

   Deleted slots become tombstones and are recycled through a free list,
   so row ids stay valid for the indexes that reference them. *)

type row = Value.t array

type t = {
  slots : row option Vec.t;
  mutable free : int list; (* tombstone slots available for reuse *)
  mutable live : int;
}

let create () = { slots = Vec.create ~dummy:None; free = []; live = 0 }

let live_count t = t.live

let insert t row =
  t.live <- t.live + 1;
  match t.free with
  | rid :: rest ->
    t.free <- rest;
    Vec.set t.slots rid (Some row);
    rid
  | [] -> Vec.push t.slots (Some row)

let get t rid =
  if rid < 0 || rid >= Vec.length t.slots then None else Vec.get t.slots rid

let get_exn t rid =
  match get t rid with
  | Some row -> row
  | None -> invalid_arg (Printf.sprintf "Heap.get_exn: no row %d" rid)

let delete t rid =
  match get t rid with
  | None -> false
  | Some _ ->
    Vec.set t.slots rid None;
    t.free <- rid :: t.free;
    t.live <- t.live - 1;
    true

let update t rid row =
  match get t rid with
  | None -> false
  | Some _ ->
    Vec.set t.slots rid (Some row);
    true

(* Iterates live rows in row-id order. *)
let iteri f t =
  Vec.iteri (fun rid slot -> match slot with Some row -> f rid row | None -> ()) t.slots

let fold f init t =
  Vec.fold
    (fun acc slot -> match slot with Some row -> f acc row | None -> acc)
    init t.slots

let rids t =
  let acc = ref [] in
  iteri (fun rid _ -> acc := rid :: !acc) t;
  List.rev !acc

(* Live row ids as a fresh array, ascending: the parallel executor
   slices it into rid-range morsels. *)
let rids_array t =
  let out = Array.make t.live 0 in
  let i = ref 0 in
  iteri
    (fun rid _ ->
      out.(!i) <- rid;
      incr i)
    t;
  out
