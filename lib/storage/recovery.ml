(* Crash recovery: latest valid snapshot + WAL tail replay.

   A durable database directory holds two files:

     <dir>/snapshot       the last checkpoint (atomic rename target)
     <dir>/wal            redo records appended since that checkpoint

   Opening recovers in three steps: discard a leftover snapshot.tmp
   (an interrupted checkpoint), load the snapshot if present, then
   replay the WAL's committed batches — but only when the log's
   generation matches the snapshot's, so a stale log surviving a crash
   between the checkpoint rename and the truncation is skipped rather
   than applied twice. Replay stops cleanly at the first torn or
   corrupt frame (and at the first record that does not fit the
   catalog), keeping every batch before it: the recovered state is
   always a committed-statement prefix of the pre-crash history. *)

let log_src = Logs.Src.create "tip.recovery" ~doc:"TIP crash recovery"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Metrics = Tip_obs.Metrics

let m_replayed_records =
  Metrics.counter "recovery_replayed_records_total"
    ~help:"Redo records applied during WAL replay"

let m_replayed_batches =
  Metrics.counter "recovery_replayed_batches_total"
    ~help:"Committed batches applied during WAL replay"

let snapshot_path ~dir = Filename.concat dir "snapshot"
let wal_path ~dir = Filename.concat dir "wal"

type info = {
  snapshot_loaded : bool;
  generation : int; (* snapshot's WAL generation (0 when fresh) *)
  epoch : int; (* promotion epoch recovered with the snapshot *)
  replayed_records : int; (* redo records applied from the log *)
  replayed_batches : int;
  stale_wal : bool; (* generation mismatch: log skipped *)
  stopped : string option; (* why replay stopped before the log's end *)
  last_commit_at : int option;
      (* instant (unix seconds) of the newest commit in the recovered
         state: the last replayed stamped commit, else the snapshot's
         own asof stamp *)
}

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Recovery: %s is not a directory" dir)

(* Loads the snapshot and replays the matching WAL tail. Raises
   [Persist.Format_error] only for a corrupt snapshot — a damaged log
   never raises, it just bounds how far replay gets. *)
let recover ~dir =
  ensure_dir dir;
  let snapshot = snapshot_path ~dir in
  let tmp = snapshot ^ ".tmp" in
  if Sys.file_exists tmp then begin
    Log.info (fun m -> m "discarding interrupted checkpoint %s" tmp);
    try Sys.remove tmp with Sys_error _ -> ()
  end;
  let catalog, snap_meta, snapshot_loaded =
    if Sys.file_exists snapshot then begin
      let catalog, meta = Persist.load_meta snapshot in
      (catalog, meta, true)
    end
    else
      ( Catalog.create (),
        { Persist.m_wal_gen = None; m_epoch = 0; m_asof = None },
        false )
  in
  let snap_gen = Option.value snap_meta.Persist.m_wal_gen ~default:0 in
  let scan = Wal.scan (wal_path ~dir) in
  let wal_gen = Option.value scan.Wal.generation ~default:0 in
  let stale = scan.Wal.batches <> [] && wal_gen <> snap_gen in
  if stale then
    Log.warn (fun m ->
        m "skipping stale WAL (generation %d, snapshot is %d)" wal_gen snap_gen);
  let replayed_records = ref 0 in
  let replayed_batches = ref 0 in
  let last_commit_at = ref snap_meta.Persist.m_asof in
  let stopped = ref scan.Wal.stopped in
  if not stale then begin
    try
      List.iter
        (fun batch ->
          List.iter
            (fun record ->
              Wal.apply catalog record;
              match record with
              | Wal.Commit at ->
                (match at with Some _ -> last_commit_at := at | None -> ())
              | _ -> incr replayed_records)
            batch;
          incr replayed_batches)
        scan.Wal.batches
    with
    | Wal.Corrupt msg -> stopped := Some msg
    | Table.Constraint_violation msg | Catalog.Catalog_error msg
    | Schema.Schema_error msg ->
      stopped := Some msg
  end;
  Metrics.add m_replayed_records !replayed_records;
  Metrics.add m_replayed_batches !replayed_batches;
  Option.iter
    (fun msg -> Log.warn (fun m -> m "WAL replay stopped early: %s" msg))
    !stopped;
  ( catalog,
    { snapshot_loaded;
      generation = snap_gen;
      epoch = (if stale then snap_meta.Persist.m_epoch else
                 Stdlib.max snap_meta.Persist.m_epoch scan.Wal.epoch);
      replayed_records = !replayed_records;
      replayed_batches = !replayed_batches;
      stale_wal = stale;
      stopped = !stopped;
      last_commit_at = !last_commit_at } )
