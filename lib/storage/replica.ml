(* Incremental replay of a shipped WAL stream into a catalog.

   The primary ships raw WAL bytes from a subscription offset; this
   module buffers them, cuts them into CRC-checked frames
   ([Wal.parse_frame]), and applies whole committed batches only. The
   confirmed position ([applied_offset]) advances exclusively at commit
   boundaries: a torn tail, a half-received batch, or a corrupt frame
   never moves it, so after any disconnect the subscriber resumes from
   the last statement boundary and the pending fragment is simply
   re-shipped. This mirrors single-node recovery — [Wal.scan] discards
   an uncommitted trailing batch; here the discard happens per
   reconnect instead of per restart.

   Generation frames are the divergence guard: the stream is only
   meaningful against the snapshot generation the replica bootstrapped
   from, so a mismatched generation frame (the primary checkpointed and
   truncated its log) surfaces as [Apply_failed] and the caller must
   re-bootstrap from a fresh snapshot instead of replaying records onto
   the wrong base state. The frame's epoch is fenced the same way: a
   frame stamped with a different promotion epoch means a failover
   happened around this stream and its history may have diverged.

   The unconfirmed buffer is capped: a stream that keeps shipping
   records without ever reaching a commit boundary (a runaway batch, a
   malicious or corrupt primary) would otherwise grow [buf] without
   bound. Overflow is classified [Stream_corrupt] — a well-formed
   primary commits every statement, so a batch larger than the cap is
   not something replay can ever confirm.

   Thread safety: none here — the replication client serializes [feed]
   with reads under the database lock. *)

module Metrics = Tip_obs.Metrics

let m_records =
  Metrics.counter "repl_apply_records_total"
    ~help:"Redo records applied from the replication stream"

let m_batches =
  Metrics.counter "repl_apply_batches_total"
    ~help:"Committed batches applied from the replication stream"

let m_bytes =
  Metrics.counter "repl_apply_bytes_total"
    ~help:"Stream bytes confirmed applied (commit boundaries only)"

type error = Stream_corrupt of string | Apply_failed of string

let default_max_pending = 16 * 1024 * 1024

type t = {
  catalog : Catalog.t;
  mutable generation : int;
  mutable epoch : int; (* promotion epoch the stream must carry *)
  max_pending : int; (* cap on [buf] (received, unconfirmed bytes) *)
  mutable buf : string; (* received, unconfirmed bytes *)
  mutable parsed : int; (* prefix of [buf] already cut into [pending] *)
  mutable pending : Wal.record list; (* current batch, newest first *)
  mutable applied_offset : int; (* confirmed WAL byte position *)
  mutable applied_commits : int;
  mutable applied_records : int;
  mutable last_commit_at : int option; (* newest applied commit instant *)
}

let create ?(max_pending = default_max_pending) catalog ~generation ~epoch
    ~offset =
  { catalog;
    generation;
    epoch;
    max_pending;
    buf = "";
    parsed = 0;
    pending = [];
    applied_offset = offset;
    applied_commits = 0;
    applied_records = 0;
    last_commit_at = None }

let generation t = t.generation
let epoch t = t.epoch
let applied_offset t = t.applied_offset
let applied_commits t = t.applied_commits
let applied_records t = t.applied_records
let last_commit_at t = t.last_commit_at
let catalog t = t.catalog

(* Drops any half-received batch; the confirmed state is untouched.
   Called on reconnect before resuming from [applied_offset]. *)
let reset_stream t =
  t.buf <- "";
  t.parsed <- 0;
  t.pending <- []

(* Points the replica at a fresh base state (a new snapshot bootstrap):
   new generation/epoch, new confirmed offset, stream buffer cleared.
   The catalog contents are swapped by the caller ([Catalog.assign]). *)
let rebase t ~generation ~epoch ~offset =
  t.generation <- generation;
  t.epoch <- epoch;
  t.applied_offset <- offset;
  reset_stream t

let err e = Error e

(* Confirms [upto] bytes of [buf] as applied: advance the offset and
   compact the buffer so it only ever holds the open batch. *)
let confirm t upto =
  t.applied_offset <- t.applied_offset + upto;
  Metrics.add m_bytes upto;
  t.buf <- String.sub t.buf upto (String.length t.buf - upto);
  t.parsed <- 0;
  t.pending <- []

let apply_batch t records =
  Failpoint.hit ~site:"repl.apply" ();
  List.iter (Wal.apply t.catalog) records;
  t.applied_commits <- t.applied_commits + 1;
  t.applied_records <- t.applied_records + List.length records;
  Metrics.incr m_batches;
  Metrics.add m_records (List.length records)

let feed t bytes =
  if String.length bytes > 0 then t.buf <- t.buf ^ bytes;
  if String.length t.buf > t.max_pending then
    err
      (Stream_corrupt
         (Printf.sprintf
            "pending stream tail exceeds %d bytes without a commit boundary"
            t.max_pending))
  else
    let rec step () =
      match Wal.parse_frame t.buf ~pos:t.parsed with
      | `Need_more -> Ok ()
      | `Corrupt msg -> err (Stream_corrupt msg)
      | `Frame (record, next) -> (
        match record with
        | Wal.Generation { gen; epoch } ->
          if t.pending <> [] then
            err (Stream_corrupt "generation frame inside an open batch")
          else if epoch <> t.epoch then
            err
              (Apply_failed
                 (Printf.sprintf
                    "epoch changed (have %d, stream is %d): a promotion \
                     happened around this stream"
                    t.epoch epoch))
          else if gen <> t.generation then
            err
              (Apply_failed
                 (Printf.sprintf "generation changed (have %d, stream is %d)"
                    t.generation gen))
          else begin
            confirm t next;
            step ()
          end
        | Wal.Commit at -> (
          let batch = List.rev t.pending in
          match apply_batch t batch with
          | () ->
            (match at with Some _ -> t.last_commit_at <- at | None -> ());
            confirm t next;
            step ()
          | exception Wal.Corrupt msg -> err (Apply_failed msg)
          | exception Catalog.Catalog_error msg -> err (Apply_failed msg))
        | record ->
          t.pending <- record :: t.pending;
          t.parsed <- next;
          step ())
    in
    step ()
