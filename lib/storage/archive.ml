(* WAL archiving, online backup and point-in-time recovery.


   A checkpoint truncates the live log, which without archiving
   destroys the only copy of that generation's history. With an
   archive directory attached, the generation is *sealed* first: its
   raw bytes are copied to [DIR/wal-<gen>] (tmp + fsync + rename, all
   failpoint-armed) and recorded in a chain manifest

     tiparchive 1
     seg <gen> <bytes> <crc32 of the segment's bytes>
     ...

   rewritten atomically after every seal. The manifest is what makes
   the chain trustworthy: a restore re-hashes every segment against its
   recorded CRC before replaying a single record, and a manifest that
   fails to parse is rebuilt from the segment files themselves (each
   one self-describes via its leading generation frame).

   A backup is a consistent (snapshot, generation, offset, epoch, asof)
   five-tuple rendered under the database lock — the same payload a
   replica bootstrap ships over the wire — written to a directory as
   [snapshot] plus an [origin] stamp file. Restoring replays: the base
   generation's archived segment from the backup offset, every later
   archived generation in order, then the (optional) live tail — and
   with a target instant, stops just before the first commit stamped
   after it, exactly the statement-boundary semantics of crash
   recovery. Segments may carry torn tails (a generation sealed from a
   crashed log); replay stops cleanly at the tear and continues with
   the next generation, which is precisely the prefix the primary
   itself recovered onto. *)

module Metrics = Tip_obs.Metrics
module Wait = Tip_obs.Wait

let log_src = Logs.Src.create "tip.archive" ~doc:"TIP WAL archiving"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_seals =
  Metrics.counter "archive_seals_total"
    ~help:"WAL generations sealed into the archive"

let m_seal_bytes =
  Metrics.counter "archive_bytes_total"
    ~help:"WAL bytes copied into the archive"

let m_backups =
  Metrics.counter "backups_total" ~help:"Online backups rendered (BACKUP TO)"

let m_restores =
  Metrics.counter "restores_total" ~help:"Backup restores completed"

exception Archive_error of string

let archive_error fmt = Format.kasprintf (fun s -> raise (Archive_error s)) fmt

(* --- Filesystem helpers (failpoint-armed) ------------------------------- *)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    archive_error "ARCHIVE: %s is not a directory" dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* tmp + fsync + rename, so a crash mid-seal leaves either the old file
   or the new one; the three steps are the archive failpoint sites. *)
let write_file_atomic path content =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Failpoint.write ~site:"archive.write" fd (Bytes.of_string content);
      Failpoint.fsync ~site:"archive.fsync" fd);
  Failpoint.rename ~site:"archive.rename" tmp path

(* --- The chain manifest -------------------------------------------------- *)

let manifest_path dir = Filename.concat dir "manifest"
let segment_path dir gen = Filename.concat dir (Printf.sprintf "wal-%d" gen)

type segment = { seg_gen : int; seg_bytes : int; seg_crc : int32 }

let render_manifest segs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "tiparchive 1\n";
  List.iter
    (fun s ->
      Printf.bprintf buf "seg %d %d %08lx\n" s.seg_gen s.seg_bytes s.seg_crc)
    segs;
  Buffer.contents buf

let parse_manifest text =
  match String.split_on_char '\n' text with
  | "tiparchive 1" :: rest ->
    List.filter_map
      (fun line ->
        if String.equal line "" then None
        else
          match String.split_on_char ' ' line with
          | [ "seg"; gen; bytes; crc ] -> (
            match
              ( int_of_string_opt gen,
                int_of_string_opt bytes,
                try Some (Int32.of_string ("0x" ^ crc)) with Failure _ -> None )
            with
            | Some g, Some b, Some c ->
              Some { seg_gen = g; seg_bytes = b; seg_crc = c }
            | _ -> archive_error "ARCHIVE_CORRUPT: bad manifest line %S" line)
          | _ -> archive_error "ARCHIVE_CORRUPT: bad manifest line %S" line)
      rest
  | _ -> archive_error "ARCHIVE_CORRUPT: bad manifest magic"

(* Rebuilds manifest entries from the segment files on disk — the
   self-healing path when the manifest is missing or unreadable (each
   segment's CRC is recomputable from its bytes). *)
let scan_segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         if
           String.length name > 4
           && String.sub name 0 4 = "wal-"
           && not (Filename.check_suffix name ".tmp")
         then
           match int_of_string_opt (String.sub name 4 (String.length name - 4))
           with
           | Some gen ->
             let bytes = read_file (segment_path dir gen) in
             Some
               { seg_gen = gen;
                 seg_bytes = String.length bytes;
                 seg_crc = Wal.crc32 bytes }
           | None -> None
         else None)
  |> List.sort (fun a b -> Int.compare a.seg_gen b.seg_gen)

let load_manifest dir =
  let path = manifest_path dir in
  if not (Sys.file_exists path) then []
  else parse_manifest (read_file path)

(* Strict manifest for restore; lenient (rebuild from disk) for seal. *)
let load_manifest_lenient dir =
  match load_manifest dir with
  | segs -> segs
  | exception (Archive_error msg | Sys_error msg) ->
    Log.warn (fun m -> m "rebuilding archive manifest: %s" msg);
    scan_segments dir

(* --- Sealing ------------------------------------------------------------- *)

(* Copies the live log's bytes into the archive as generation [gen] and
   records it in the manifest. Idempotent: re-sealing a generation
   (recovery re-runs an interrupted checkpoint's seal) overwrites the
   segment and replaces its manifest entry — the re-sealed bytes are
   the recovered committed prefix, which is the only part a restore
   would have replayed anyway. Must run before the truncation it
   protects, under the same lock as the checkpoint. *)
let seal ~dir ~wal_path ~gen =
  Wait.with_wait Wait.ArchiveSeal @@ fun () ->
  ensure_dir dir;
  let bytes = if Sys.file_exists wal_path then read_file wal_path else "" in
  write_file_atomic (segment_path dir gen) bytes;
  let entry =
    { seg_gen = gen; seg_bytes = String.length bytes; seg_crc = Wal.crc32 bytes }
  in
  let segs =
    load_manifest_lenient dir
    |> List.filter (fun s -> s.seg_gen <> gen)
    |> (fun l -> l @ [ entry ])
    |> List.sort (fun a b -> Int.compare a.seg_gen b.seg_gen)
  in
  write_file_atomic (manifest_path dir) (render_manifest segs);
  Metrics.incr m_seals;
  Metrics.add m_seal_bytes (String.length bytes);
  Log.info (fun m ->
      m "sealed generation %d (%d bytes) into %s" gen (String.length bytes) dir)

let sealed_generations dir =
  if Sys.file_exists (manifest_path dir) then
    List.map (fun s -> s.seg_gen) (load_manifest dir)
  else []

(* --- Online backup ------------------------------------------------------- *)

type origin = {
  o_gen : int; (* WAL generation the snapshot pairs with *)
  o_offset : int; (* end-of-log byte offset at render time *)
  o_epoch : int; (* promotion epoch *)
  o_asof : int option; (* newest commit instant folded into the base *)
}

let origin_string o =
  Printf.sprintf "tipbackup 1\ngen %d\noffset %d\nepoch %d\nasof %s\n" o.o_gen
    o.o_offset o.o_epoch
    (match o.o_asof with Some a -> string_of_int a | None -> "-")

let parse_origin text =
  let fields =
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           match String.split_on_char ' ' line with
           | [ k; v ] -> Some (k, v)
           | _ -> None)
  in
  let int_field k =
    match List.assoc_opt k fields with
    | Some v -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> archive_error "BACKUP_CORRUPT: bad %s stamp %S" k v)
    | None -> archive_error "BACKUP_CORRUPT: origin is missing its %s stamp" k
  in
  match String.split_on_char '\n' text with
  | "tipbackup 1" :: _ ->
    { o_gen = int_field "gen";
      o_offset = int_field "offset";
      o_epoch = int_field "epoch";
      o_asof =
        (match List.assoc_opt "asof" fields with
        | Some "-" | None -> None
        | Some v -> (
          match int_of_string_opt v with
          | Some a -> Some a
          | None -> archive_error "BACKUP_CORRUPT: bad asof stamp %S" v)) }
  | _ -> archive_error "BACKUP_CORRUPT: bad origin magic"

(* Writes a rendered backup — the caller produced (snapshot text, gen,
   offset, epoch, asof) consistently under the database lock. *)
let write_backup ~dir ~snapshot origin =
  ensure_dir dir;
  write_file_atomic (Filename.concat dir "snapshot") snapshot;
  write_file_atomic (Filename.concat dir "origin") (origin_string origin);
  Metrics.incr m_backups

let read_backup_origin ~dir =
  let path = Filename.concat dir "origin" in
  if not (Sys.file_exists path) then
    archive_error "BACKUP_CORRUPT: %s has no origin stamp (not a backup?)" dir;
  parse_origin (read_file path)

(* --- Restore / point-in-time recovery ------------------------------------ *)

type restore_info = {
  r_base_gen : int;
  r_epoch : int; (* epoch of the newest generation replayed *)
  r_segments : int; (* archived segments replayed *)
  r_tail_replayed : bool;
  r_applied_batches : int;
  r_applied_records : int; (* commit markers excluded *)
  r_last_commit_at : int option;
  r_reached_target : bool; (* replay stopped at the --until boundary *)
  r_missing_gens : int list; (* chain gaps skipped (never sealed) *)
}

(* Mutable replay state threaded through the chain walk. *)
type progress = {
  mutable p_batches : int;
  mutable p_records : int;
  mutable p_last_commit_at : int option;
}

(* Replays the committed batches of one generation's bytes starting at
   [pos], stopping cleanly at a torn/corrupt frame (the prefix the
   primary itself recovered onto) or — with [until] — just before the
   first commit stamped after the target. Returns [`More] to continue
   with the next generation, [`Target_reached], or [`Epoch_break]: a
   generation frame stamped with a different promotion epoch means a
   demote/re-bootstrap/promote cycle replaced this node's state outside
   the log, so the chain is discontinuous there and replay must not
   cross it. *)
let replay_bytes catalog ~bytes ~pos ~until ~expect_gen ~epoch progress =
  let pending = ref [] in
  let pos = ref pos in
  let outcome = ref `More in
  let running = ref true in
  while !running do
    match Wal.parse_frame bytes ~pos:!pos with
    | `Need_more -> running := false (* clean end (or torn tail) *)
    | `Corrupt msg ->
      Log.warn (fun m ->
          m "generation %d: replay stopped at byte %d: %s" expect_gen !pos msg);
      running := false
    | `Frame (record, next) -> (
      match record with
      | Wal.Generation { gen; epoch = e } ->
        if gen <> expect_gen then begin
          Log.warn (fun m ->
              m "generation %d: unexpected generation frame %d; stopping"
                expect_gen gen);
          running := false
        end
        else if e <> epoch then begin
          Log.warn (fun m ->
              m
                "generation %d carries epoch %d (chain is epoch %d): \
                 promotion discontinuity, replay stops here"
                gen e epoch);
          outcome := `Epoch_break;
          running := false
        end
        else pos := next
      | Wal.Commit at ->
        let past_target =
          match until, at with
          | Some target, Some instant -> instant > target
          | _ -> false
        in
        if past_target then begin
          outcome := `Target_reached;
          running := false
        end
        else begin
          (try
             List.iter (Wal.apply catalog) (List.rev !pending);
             progress.p_batches <- progress.p_batches + 1;
             progress.p_records <- progress.p_records + List.length !pending;
             match at with
             | Some _ -> progress.p_last_commit_at <- at
             | None -> ()
           with
          | Wal.Corrupt msg
          | Table.Constraint_violation msg
          | Catalog.Catalog_error msg
          | Schema.Schema_error msg ->
            Log.warn (fun m ->
                m "generation %d: replay stopped: %s" expect_gen msg);
            running := false);
          pending := [];
          pos := next
        end
      | record ->
        pending := record :: !pending;
        pos := next)
  done;
  !outcome

(* Restores a backup directory: base snapshot, then the archived chain,
   then the live tail, honouring [until] (unix seconds).
   @raise Archive_error with a typed message — [TARGET_TOO_OLD:] when
   the target instant predates the backup's base snapshot,
   [ARCHIVE_CORRUPT:] when a sealed segment fails its CRC. *)
let restore ~backup ?archive_dir ?tail ?until () =
  let origin = read_backup_origin ~dir:backup in
  (match until, origin.o_asof with
  | Some target, Some asof when target < asof ->
    archive_error
      "TARGET_TOO_OLD: target instant %d predates the backup's base snapshot \
       (asof %d); restore from an older backup"
      target asof
  | _ -> ());
  let snapshot_path = Filename.concat backup "snapshot" in
  if not (Sys.file_exists snapshot_path) then
    archive_error "BACKUP_CORRUPT: %s has no snapshot" backup;
  let catalog, _meta = Persist.load_meta snapshot_path in
  let segments =
    match archive_dir with None -> [] | Some dir -> load_manifest dir
  in
  let tail_scan_gen, tail_bytes =
    match tail with
    | Some path when Sys.file_exists path ->
      let bytes = read_file path in
      let scan = Wal.scan path in
      (scan.Wal.generation, Some bytes)
    | _ -> (None, None)
  in
  let last_gen =
    List.fold_left
      (fun acc s -> Stdlib.max acc s.seg_gen)
      (match tail_scan_gen with Some g -> g | None -> origin.o_gen)
      segments
  in
  let progress =
    { p_batches = 0; p_records = 0; p_last_commit_at = origin.o_asof }
  in
  let segments_replayed = ref 0 in
  let tail_replayed = ref false in
  let missing = ref [] in
  let reached = ref false in
  let segment_bytes s =
    match archive_dir with
    | None -> assert false
    | Some dir ->
      let bytes = read_file (segment_path dir s.seg_gen) in
      if String.length bytes <> s.seg_bytes || Wal.crc32 bytes <> s.seg_crc then
        archive_error
          "ARCHIVE_CORRUPT: segment wal-%d fails its manifest check (%d bytes \
           crc %08lx, manifest says %d bytes crc %08lx)"
          s.seg_gen (String.length bytes) (Wal.crc32 bytes) s.seg_bytes
          s.seg_crc;
      bytes
  in
  let gen = ref origin.o_gen in
  while not !reached && !gen <= last_gen do
    let g = !gen in
    (* the base generation resumes from the backup offset (a commit
       boundary by construction); later generations replay whole *)
    let pos = if g = origin.o_gen then origin.o_offset else 0 in
    let source =
      match List.find_opt (fun s -> s.seg_gen = g) segments with
      | Some s -> Some (segment_bytes s, `Segment)
      | None -> (
        match tail_scan_gen, tail_bytes with
        | Some tg, Some bytes when tg = g -> Some (bytes, `Tail)
        | _ -> None)
    in
    (match source with
    | None ->
      (* never sealed: the generation carried no commits (a crash
         between a checkpoint's snapshot rename and its truncation
         retires a generation that never had a log) — or the operator
         lost a segment; either way say so instead of silently gapping *)
      missing := g :: !missing;
      Log.warn (fun m -> m "generation %d missing from the chain; skipping" g)
    | Some (bytes, kind) -> (
      (match kind with
      | `Segment -> incr segments_replayed
      | `Tail -> tail_replayed := true);
      match
        replay_bytes catalog ~bytes ~pos ~until ~expect_gen:g
          ~epoch:origin.o_epoch progress
      with
      | `Target_reached -> reached := true
      | `Epoch_break -> gen := last_gen (* stop the walk; not the target *)
      | `More -> ()));
    incr gen
  done;
  Metrics.incr m_restores;
  ( catalog,
    { r_base_gen = origin.o_gen;
      r_epoch = origin.o_epoch;
      r_segments = !segments_replayed;
      r_tail_replayed = !tail_replayed;
      r_applied_batches = progress.p_batches;
      r_applied_records = progress.p_records;
      r_last_commit_at = progress.p_last_commit_at;
      r_reached_target = !reached;
      r_missing_gens = List.rev !missing } )
