(** WAL archiving, online backup and point-in-time recovery
    (DESIGN.md §15).

    A checkpoint normally truncates the live log, destroying the only
    copy of that generation's history. With an archive directory
    attached the generation is {e sealed} first — copied to
    [DIR/wal-<gen>] and recorded in a CRC-verified chain manifest — so
    the full redo history survives. A {e backup} is a consistent
    snapshot plus an [(gen, offset, epoch, asof)] origin stamp; restore
    replays the archived chain (and optionally the live tail) on top of
    it, stopping — with a target instant — just before the first commit
    stamped after it, on a statement boundary exactly like crash
    recovery. *)

(** Every failure this module detects: typed, prefix-classified
    messages — [ARCHIVE_CORRUPT:] (a sealed segment or the manifest
    fails verification), [BACKUP_CORRUPT:] (a damaged backup
    directory), [TARGET_TOO_OLD:] (a PITR target older than the
    backup's base snapshot). *)
exception Archive_error of string

(** {1 Archiving} *)

(** Copies the log at [wal_path] into [dir/wal-<gen>] (tmp + fsync +
    rename through failpoint sites [archive.write], [archive.fsync],
    [archive.rename]) and rewrites the manifest atomically. Idempotent:
    re-sealing a generation replaces its segment and manifest entry.
    Must run {e before} the truncation it protects, under the
    checkpoint's lock. A missing [wal_path] seals an empty segment. *)
val seal : dir:string -> wal_path:string -> gen:int -> unit

(** The generations recorded in [dir]'s manifest, ascending.
    @raise Archive_error on a corrupt manifest. *)
val sealed_generations : string -> int list

(** {1 Online backup} *)

type origin = {
  o_gen : int;  (** WAL generation the snapshot pairs with *)
  o_offset : int;  (** end-of-log byte offset at render time — a commit
                       boundary, where chain replay resumes *)
  o_epoch : int;  (** promotion epoch *)
  o_asof : int option;
      (** instant (unix seconds) of the newest commit folded into the
          base — the floor below which PITR refuses a target *)
}

(** Writes [dir/snapshot] and [dir/origin] atomically. The caller
    renders [snapshot] and [origin] consistently under the database
    lock (see {!Database.backup}). *)
val write_backup : dir:string -> snapshot:string -> origin -> unit

(** @raise Archive_error when [dir] is not a backup. *)
val read_backup_origin : dir:string -> origin

(** {1 Restore} *)

type restore_info = {
  r_base_gen : int;
  r_epoch : int;
      (** the promotion epoch the restored state belongs to (the
          backup's); replay never crosses an epoch change — a
          generation frame stamped with a different epoch marks a
          demote/re-bootstrap/promote discontinuity and stops the
          chain walk there *)
  r_segments : int;  (** archived segments replayed *)
  r_tail_replayed : bool;
  r_applied_batches : int;
  r_applied_records : int;  (** commit markers excluded *)
  r_last_commit_at : int option;
  r_reached_target : bool;
      (** replay stopped at the [until] boundary (rather than running
          out of history before it) *)
  r_missing_gens : int list;
      (** chain gaps skipped — generations that were never sealed
          (retired carrying no commits) or whose segments are lost *)
}

(** Rebuilds a catalog from [backup], replaying the archived chain in
    [archive_dir] and then the live log [tail] (a path; missing file =
    no tail), stopping just before the first commit stamped after
    [until] (unix seconds). Segments are re-hashed against the manifest
    before replay; a torn tail inside a sealed segment (a generation
    sealed from a crashed log) stops that segment cleanly and replay
    continues with the next — the same prefix the primary itself
    recovered onto. Register extension types first.
    @raise Archive_error — [TARGET_TOO_OLD:] when [until] predates the
    backup's base snapshot, [ARCHIVE_CORRUPT:] on a CRC mismatch.
    @raise Persist.Format_error on a corrupt base snapshot. *)
val restore :
  backup:string ->
  ?archive_dir:string ->
  ?tail:string ->
  ?until:int ->
  unit ->
  Catalog.t * restore_info
