(* B+tree secondary index: an ordered multimap from column values to row
   ids, supporting exact lookups and range scans.

   Nodes are immutable arrays and inserts copy the root-to-leaf path, so
   a split never mutates shared state. Deletion removes the rid from its
   entry (and the entry when its rid list empties) without rebalancing —
   the tree can only shrink below the fill factor, never lose ordering;
   this is the usual lazy-deletion compromise real systems also make. *)

type rid = int

let m_probes =
  Tip_obs.Metrics.counter "btree_probes_total"
    ~help:"B+tree range/point probes served"

(* Max entries per node; nodes split at 2*branching. *)
let branching = 16

type node =
  | Leaf of (Value.t * rid list) array
  | Internal of node array * Value.t array
    (* children c0..cn and separators k0..k(n-1); child ci holds keys in
       [k(i-1), ki) *)

type t = { mutable root : node; mutable entries : int }

let create () = { root = Leaf [||]; entries = 0 }

let entry_count t = t.entries

(* Index of the child to descend into for [key]. *)
let child_slot seps key =
  let n = Array.length seps in
  let rec go i =
    if i >= n then n else if Value.compare key seps.(i) < 0 then i else go (i + 1)
  in
  go 0

(* Position of [key] in a leaf: [Found i] or [Insert_at i]. *)
type probe = Found of int | Insert_at of int

let probe_leaf entries key =
  let n = Array.length entries in
  let rec go lo hi =
    (* invariant: keys before lo are < key, keys at/after hi are > key *)
    if lo >= hi then Insert_at lo
    else begin
      let mid = (lo + hi) / 2 in
      let c = Value.compare key (fst entries.(mid)) in
      if c = 0 then Found mid else if c < 0 then go lo mid else go (mid + 1) hi
    end
  in
  go 0 n

let array_insert a i x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

let array_remove a i =
  let n = Array.length a in
  let b = Array.sub a 0 (n - 1) in
  Array.blit a (i + 1) b i (n - 1 - i);
  b

let array_replace a i x =
  let b = Array.copy a in
  b.(i) <- x;
  b

type insert_result =
  | One of node
  | Split of node * Value.t * node (* left, first key of right, right *)

let rec insert_node node key rid =
  match node with
  | Leaf entries -> (
    match probe_leaf entries key with
    | Found i ->
      let k, rids = entries.(i) in
      One (Leaf (array_replace entries i (k, rid :: rids)))
    | Insert_at i ->
      let entries = array_insert entries i (key, [ rid ]) in
      if Array.length entries <= 2 * branching then One (Leaf entries)
      else begin
        let mid = Array.length entries / 2 in
        let left = Array.sub entries 0 mid in
        let right = Array.sub entries mid (Array.length entries - mid) in
        Split (Leaf left, fst right.(0), Leaf right)
      end)
  | Internal (children, seps) -> (
    let slot = child_slot seps key in
    match insert_node children.(slot) key rid with
    | One child -> One (Internal (array_replace children slot child, seps))
    | Split (l, sep, r) ->
      let children = array_replace children slot l in
      let children = array_insert children (slot + 1) r in
      let seps = array_insert seps slot sep in
      if Array.length seps <= 2 * branching then One (Internal (children, seps))
      else begin
        let mid = Array.length seps / 2 in
        let up = seps.(mid) in
        let lseps = Array.sub seps 0 mid in
        let rseps = Array.sub seps (mid + 1) (Array.length seps - mid - 1) in
        let lchildren = Array.sub children 0 (mid + 1) in
        let rchildren =
          Array.sub children (mid + 1) (Array.length children - mid - 1)
        in
        Split (Internal (lchildren, lseps), up, Internal (rchildren, rseps))
      end)

let insert t key rid =
  (match insert_node t.root key rid with
  | One root -> t.root <- root
  | Split (l, sep, r) -> t.root <- Internal ([| l; r |], [| sep |]));
  t.entries <- t.entries + 1

let rec remove_node node key rid =
  match node with
  | Leaf entries -> (
    match probe_leaf entries key with
    | Insert_at _ -> None
    | Found i ->
      let k, rids = entries.(i) in
      if not (List.mem rid rids) then None
      else begin
        (* Drop exactly one occurrence: (key, rid) pairs behave as a
           multiset, matching insert. *)
        let rec drop_one = function
          | [] -> []
          | r :: rest -> if r = rid then rest else r :: drop_one rest
        in
        let rids = drop_one rids in
        let entries =
          if rids = [] then array_remove entries i
          else array_replace entries i (k, rids)
        in
        Some (Leaf entries)
      end)
  | Internal (children, seps) -> (
    let slot = child_slot seps key in
    match remove_node children.(slot) key rid with
    | None -> None
    | Some child -> Some (Internal (array_replace children slot child, seps)))

let remove t key rid =
  match remove_node t.root key rid with
  | None -> false
  | Some root ->
    t.root <- root;
    t.entries <- t.entries - 1;
    true

let rec find_node node key =
  match node with
  | Leaf entries -> (
    match probe_leaf entries key with
    | Found i -> snd entries.(i)
    | Insert_at _ -> [])
  | Internal (children, seps) -> find_node children.(child_slot seps key) key

let find t key = find_node t.root key

type bound = Unbounded | Inclusive of Value.t | Exclusive of Value.t

let below_hi hi key =
  match hi with
  | Unbounded -> true
  | Inclusive v -> Value.compare key v <= 0
  | Exclusive v -> Value.compare key v < 0

let above_lo lo key =
  match lo with
  | Unbounded -> true
  | Inclusive v -> Value.compare key v >= 0
  | Exclusive v -> Value.compare key v > 0

(* In-order traversal clipped to [lo, hi]; [f key rid] per entry. *)
let iter_range t ~lo ~hi f =
  Tip_obs.Metrics.incr m_probes;
  let rec go node =
    match node with
    | Leaf entries ->
      Array.iter
        (fun (k, rids) ->
          if above_lo lo k && below_hi hi k then
            List.iter (fun rid -> f k rid) rids)
        entries
    | Internal (children, seps) ->
      (* Children whose key range can intersect [lo, hi]: the descent is
         clipped on both sides, so a range scan touches O(log n + answer)
         nodes. *)
      let n = Array.length seps in
      let first =
        match lo with
        | Unbounded -> 0
        | Inclusive v | Exclusive v -> child_slot seps v
      in
      let rec walk i =
        if i <= n then begin
          let lower_sep_ok =
            i = 0 || (match hi with
                     | Unbounded -> true
                     | Inclusive v | Exclusive v ->
                       Value.compare seps.(i - 1) v <= 0)
          in
          if lower_sep_ok then begin
            go children.(i);
            walk (i + 1)
          end
        end
      in
      walk first
  in
  go t.root

let range t ~lo ~hi =
  let acc = ref [] in
  iter_range t ~lo ~hi (fun _ rid -> acc := rid :: !acc);
  List.rev !acc

let iter t f = iter_range t ~lo:Unbounded ~hi:Unbounded f

(* Structural invariants, used by tests: key order within and across
   nodes, and separator consistency. *)
let rec check_node node lo hi =
  match node with
  | Leaf entries ->
    Array.iteri
      (fun i (k, rids) ->
        assert (rids <> []);
        assert (above_lo lo k);
        assert (match hi with Unbounded -> true | _ -> not (above_lo hi k));
        if i > 0 then assert (Value.compare (fst entries.(i - 1)) k < 0))
      entries
  | Internal (children, seps) ->
    assert (Array.length children = Array.length seps + 1);
    Array.iteri
      (fun i child ->
        let lo' = if i = 0 then lo else Inclusive seps.(i - 1) in
        let hi' =
          if i = Array.length seps then hi else Inclusive seps.(i)
          (* separators are inclusive lower bounds of the next child, so
             the child's upper bound is exclusive; encode by Exclusive *)
        in
        let hi' =
          match hi' with
          | Inclusive v when i < Array.length seps -> Exclusive v
          | b -> b
        in
        check_node child lo' hi')
      children

let check_invariants t = check_node t.root Unbounded Unbounded
