(** Crash recovery: latest valid snapshot + WAL tail replay
    (DESIGN.md §8).

    A durable database directory holds [snapshot] (the last checkpoint)
    and [wal] (redo records appended since). {!recover} discards an
    interrupted [snapshot.tmp], loads the snapshot, and replays the
    log's committed batches when the generations agree — a stale log
    left by a crash mid-checkpoint is skipped rather than applied
    twice. Replay stops cleanly at the first torn or corrupt frame,
    keeping every committed batch before it, so the recovered state is a
    committed-statement prefix of the pre-crash history. *)

val snapshot_path : dir:string -> string
val wal_path : dir:string -> string

type info = {
  snapshot_loaded : bool;
  generation : int;  (** snapshot's WAL generation (0 when fresh) *)
  epoch : int;  (** promotion epoch recovered with the snapshot/log *)
  replayed_records : int;
      (** redo records applied from the log (commit markers excluded) *)
  replayed_batches : int;
  stale_wal : bool;  (** generation mismatch: log skipped *)
  stopped : string option;
      (** why replay stopped before the log's end, if it did *)
  last_commit_at : int option;
      (** instant (unix seconds) of the newest commit in the recovered
          state — the last stamped commit replayed, else the snapshot's
          own [asof] stamp *)
}

(** Rebuilds the catalog from [dir], creating the directory when
    missing (a fresh, empty database). Register extension types first.
    @raise Persist.Format_error on a corrupt snapshot — a damaged log
    never raises, it only bounds how far replay gets. *)
val recover : dir:string -> Catalog.t * info
