(* The append-only write-ahead log.

   Temporal tables are append-heavy histories, so the durable path is
   log-structured: every committed DML/DDL statement appends its
   row-level redo records followed by a commit marker, and a checkpoint
   (snapshot + truncate) bounds replay time.

   Framing: each record travels as

     tipwal <payload length> <crc32 of payload>\n
     <payload bytes>\n

   so a reader can always tell a torn tail (short header, short payload,
   or CRC mismatch) from a valid record and stop cleanly at the last
   intact frame. Payloads are line-oriented text; cells reuse the
   snapshot's escaped round-trip format, so NOW-relative timestamps stay
   symbolic in the log exactly as they do in snapshots.

   A generation frame leads every log. Snapshots carry the generation
   they pair with ([Persist] [walgen] line); recovery replays the log
   only when the generations agree, which makes the checkpoint protocol
   crash-safe: a crash between the snapshot rename and the log
   truncation leaves a new-generation snapshot next to an old-generation
   log, and the stale log is skipped instead of being applied twice.

   Statement atomicity: records are buffered by the engine and appended
   together with a trailing [Commit] record in a single write; replay
   applies a batch only once its commit marker has been read, so a torn
   batch is discarded as a whole and recovery always lands on a
   statement boundary. *)

module Metrics = Tip_obs.Metrics
module Wait = Tip_obs.Wait

let m_appends =
  Metrics.counter "wal_appends_total" ~help:"Redo records appended to the log"

let m_commits =
  Metrics.counter "wal_commits_total" ~help:"Committed statement batches"

let m_fsyncs = Metrics.counter "wal_fsyncs_total" ~help:"fsync calls on the log"
let m_bytes = Metrics.counter "wal_bytes_total" ~help:"Bytes written to the log"

let m_truncates =
  Metrics.counter "wal_truncates_total" ~help:"Log truncations (checkpoints)"

(* --- CRC32 (IEEE 802.3, table-driven) ---------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int
          (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* --- Records ----------------------------------------------------------- *)

type record =
  | Generation of { gen : int; epoch : int }
  | Insert of { table : string; cells : string array }
  | Delete of { table : string; cells : string array }
  | Update of {
      table : string;
      old_cells : string array;
      new_cells : string array;
    }
  | Create_table of { table : string; columns : Schema.column list }
  | Create_partitioned of {
      table : string;
      columns : Schema.column list;
      column : string;
      parts : (string * (int * int) option) list;
    }
  | Drop_table of string
  | Create_index of {
      idx_name : string;
      table : string;
      column : string;
      interval : bool;
      unique : bool;
    }
  | Drop_index of string
  | Commit of int option

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let cells_line cells = String.concat "\t" (Array.to_list cells)
let cells_of_line line = Array.of_list (String.split_on_char '\t' line)

let encode = function
  | Generation { gen; epoch } -> Printf.sprintf "generation %d %d" gen epoch
  | Insert { table; cells } ->
    Printf.sprintf "insert %s\n%s" table (cells_line cells)
  | Delete { table; cells } ->
    Printf.sprintf "delete %s\n%s" table (cells_line cells)
  | Update { table; old_cells; new_cells } ->
    Printf.sprintf "update %s\n%s\n%s" table (cells_line old_cells)
      (cells_line new_cells)
  | Create_table { table; columns } ->
    String.concat "\n"
      (Printf.sprintf "create_table %s" table
      :: List.map Persist.column_line columns)
  | Create_partitioned { table; columns; column; parts } ->
    let part_line (name, bounds) =
      match bounds with
      | None -> Printf.sprintf "part %s default" name
      | Some (f, t) -> Printf.sprintf "part %s %d %d" name f t
    in
    String.concat "\n"
      ((Printf.sprintf "create_partitioned %s %s %d" table column
          (List.length columns)
       :: List.map Persist.column_line columns)
      @ List.map part_line parts)
  | Drop_table table -> Printf.sprintf "drop_table %s" table
  | Create_index { idx_name; table; column; interval; unique } ->
    Printf.sprintf "create_index %s %s %s %s %d" idx_name table column
      (if interval then "interval" else "ordered")
      (if unique then 1 else 0)
  | Drop_index idx_name -> Printf.sprintf "drop_index %s" idx_name
  | Commit None -> "commit"
  | Commit (Some at) -> Printf.sprintf "commit %d" at

let int_field s =
  match int_of_string s with
  | n -> n
  | exception Failure _ -> corrupt "bad integer field %S" s

let decode payload =
  match String.split_on_char '\n' payload with
  | [] -> corrupt "empty record payload"
  | first :: rest -> (
    match String.split_on_char ' ' first, rest with
    (* the bare pre-HA form decodes as epoch 0 *)
    | [ "generation"; g ], [] -> Generation { gen = int_field g; epoch = 0 }
    | [ "generation"; g; e ], [] ->
      Generation { gen = int_field g; epoch = int_field e }
    | [ "insert"; table ], [ cells ] ->
      Insert { table; cells = cells_of_line cells }
    | [ "delete"; table ], [ cells ] ->
      Delete { table; cells = cells_of_line cells }
    | [ "update"; table ], [ old_cells; new_cells ] ->
      Update
        { table;
          old_cells = cells_of_line old_cells;
          new_cells = cells_of_line new_cells }
    | [ "create_table"; table ], columns -> (
      match List.map Persist.parse_column_line columns with
      | columns -> Create_table { table; columns }
      | exception Persist.Format_error msg -> corrupt "%s" msg)
    | [ "create_partitioned"; table; column; ncols ], rest -> (
      let ncols = int_field ncols in
      if List.length rest < ncols then
        corrupt "truncated create_partitioned record";
      let columns = List.filteri (fun i _ -> i < ncols) rest in
      let part_lines = List.filteri (fun i _ -> i >= ncols) rest in
      let part line =
        match String.split_on_char ' ' line with
        | [ "part"; name; "default" ] -> (name, None)
        | [ "part"; name; f; t ] -> (name, Some (int_field f, int_field t))
        | _ -> corrupt "bad partition line %S" line
      in
      match List.map Persist.parse_column_line columns with
      | columns ->
        Create_partitioned
          { table; columns; column; parts = List.map part part_lines }
      | exception Persist.Format_error msg -> corrupt "%s" msg)
    | [ "drop_table"; table ], [] -> Drop_table table
    | [ "create_index"; idx_name; table; column; kind; unique ], [] ->
      let interval =
        match kind with
        | "interval" -> true
        | "ordered" -> false
        | k -> corrupt "unknown index kind %S" k
      in
      Create_index { idx_name; table; column; interval; unique = unique = "1" }
    | [ "drop_index"; idx_name ], [] -> Drop_index idx_name
    (* the bare pre-HA marker decodes as "instant unknown" *)
    | [ "commit" ], [] -> Commit None
    | [ "commit"; at ], [] -> Commit (Some (int_field at))
    | _ -> corrupt "unrecognized record %S" first)

let frame record =
  let payload = encode record in
  Printf.sprintf "tipwal %d %08lx\n%s\n" (String.length payload)
    (crc32 payload) payload

(* --- Appending --------------------------------------------------------- *)

type sync_policy = Always | Every_n of int | Never

let sync_policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Some Always
  | "never" -> Some Never
  | s ->
    let prefix = "every=" in
    let n = String.length prefix in
    if String.length s > n && String.sub s 0 n = prefix then
      match int_of_string (String.sub s n (String.length s - n)) with
      | k when k > 0 -> Some (Every_n k)
      | _ | (exception Failure _) -> None
    else None

let sync_policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Every_n n -> Printf.sprintf "every=%d" n

type writer = {
  path : string;
  fd : Unix.file_descr;
  sync_policy : sync_policy;
  mutable epoch : int; (* promotion epoch stamped into generation frames *)
  mutable unsynced_commits : int;
  mutable appended : int; (* records since open/truncate *)
  mutable bytes : int; (* bytes written since open/truncate *)
  mutable closed : bool;
}

let write_frames w records =
  let buf = Buffer.create 256 in
  List.iter (fun r -> Buffer.add_string buf (frame r)) records;
  Metrics.add m_appends (List.length records);
  Metrics.add m_bytes (Buffer.length buf);
  Wait.with_wait Wait.WalAppend (fun () ->
      Failpoint.write ~site:"wal.write" w.fd (Buffer.to_bytes buf));
  w.bytes <- w.bytes + Buffer.length buf

(* All durable-path fsyncs funnel through here so the counter (and the
   WalFsync wait attribution) cannot drift from the failpoint site. *)
let fsync_fd fd =
  Metrics.incr m_fsyncs;
  Wait.with_wait Wait.WalFsync (fun () ->
      Failpoint.fsync ~site:"wal.fsync" fd)

(* Creates (or truncates) the log and stamps it with [gen]/[epoch]. *)
let create ?(sync = Always) ?(epoch = 0) ~gen path =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let w =
    { path;
      fd;
      sync_policy = sync;
      epoch;
      unsynced_commits = 0;
      appended = 0;
      bytes = 0;
      closed = false }
  in
  write_frames w [ Generation { gen; epoch } ];
  fsync_fd fd;
  w

let check_open w = if w.closed then invalid_arg "Wal: writer is closed"

(* Appends the records plus a commit marker — stamped with the commit
   instant [at] (unix seconds) when the caller knows it — in one write,
   then syncs according to the policy. Once this returns under
   [Always], the records survive any crash. *)
let commit ?at w records =
  check_open w;
  Metrics.incr m_commits;
  write_frames w (records @ [ Commit at ]);
  w.appended <- w.appended + List.length records + 1;
  match w.sync_policy with
  | Always -> fsync_fd w.fd
  | Never -> ()
  | Every_n n ->
    w.unsynced_commits <- w.unsynced_commits + 1;
    if w.unsynced_commits >= n then begin
      fsync_fd w.fd;
      w.unsynced_commits <- 0
    end

let record_count w = w.appended
let offset w = w.bytes
let pending_sync w = w.unsynced_commits > 0
let writer_epoch w = w.epoch

(* Empties the log and stamps the new generation (the checkpoint's
   second half; the snapshot carrying [gen] must already be in place).
   [epoch] bumps the promotion epoch — only a replica promotion does. *)
let truncate ?epoch w ~gen =
  check_open w;
  Metrics.incr m_truncates;
  (match epoch with Some e -> w.epoch <- e | None -> ());
  Unix.ftruncate w.fd 0;
  ignore (Unix.lseek w.fd 0 Unix.SEEK_SET);
  w.bytes <- 0;
  write_frames w [ Generation { gen; epoch = w.epoch } ];
  fsync_fd w.fd;
  w.appended <- 0;
  w.unsynced_commits <- 0

let sync w =
  check_open w;
  fsync_fd w.fd;
  w.unsynced_commits <- 0

(* Closing never flushes anything (appends are unbuffered writes), so
   it is safe to close a writer after a simulated crash. *)
let close w =
  if not w.closed then begin
    w.closed <- true;
    try Unix.close w.fd with Unix.Unix_error _ -> ()
  end

(* --- Reading ----------------------------------------------------------- *)

type scan = {
  generation : int option;
  epoch : int; (* promotion epoch of the leading frame (0 when absent) *)
  batches : record list list; (* committed batches, oldest first *)
  stopped : string option; (* why reading stopped before the end *)
}

(* Reads one frame; [None] at a clean end of file.
   @raise Corrupt on a torn or damaged frame. *)
let read_frame ic =
  match input_line ic with
  | exception End_of_file -> None
  | header -> (
    match String.split_on_char ' ' header with
    | [ "tipwal"; len; crc ] ->
      let len =
        match int_of_string len with
        | n when n >= 0 -> n
        | _ -> corrupt "bad frame length %S" len
        | exception Failure _ -> corrupt "bad frame length %S" len
      in
      let payload = Bytes.create len in
      (match really_input ic payload 0 len with
      | () -> ()
      | exception End_of_file -> corrupt "torn payload (wanted %d bytes)" len);
      (match input_char ic with
      | '\n' -> ()
      | _ -> corrupt "missing frame terminator"
      | exception End_of_file -> corrupt "missing frame terminator");
      let payload = Bytes.to_string payload in
      let actual = Printf.sprintf "%08lx" (crc32 payload) in
      if not (String.equal actual crc) then
        corrupt "CRC mismatch (stored %s, computed %s)" crc actual;
      Some (decode payload)
    | _ -> corrupt "bad frame header %S" header)

(* Incremental frame parser over a byte buffer — the replication
   receiver's entry point. Unlike [read_frame] it never raises: a
   partial frame is reported as [`Need_more] so the caller can wait for
   more bytes, and damage as [`Corrupt].

   Frame headers are short ("tipwal <len> <crc>\n" tops out well under
   64 bytes), so a missing newline in a 64-byte window is damage, not
   an incomplete header — without that bound a corrupted header would
   make the receiver wait for more bytes forever. *)
let max_header = 64

let parse_frame buf ~pos =
  let len = String.length buf in
  if pos >= len then `Need_more
  else
    match String.index_from_opt buf pos '\n' with
    | None -> if len - pos > max_header then `Corrupt "unterminated frame header" else `Need_more
    | Some nl when nl - pos > max_header -> `Corrupt "oversized frame header"
    | Some nl -> (
      let header = String.sub buf pos (nl - pos) in
      match String.split_on_char ' ' header with
      | [ "tipwal"; plen; crc ] -> (
        match int_of_string plen with
        | exception Failure _ -> `Corrupt (Printf.sprintf "bad frame length %S" plen)
        | plen when plen < 0 -> `Corrupt (Printf.sprintf "bad frame length %d" plen)
        | plen ->
          (* header \n payload \n *)
          let frame_end = nl + 1 + plen + 1 in
          if len < frame_end then `Need_more
          else begin
            let payload = String.sub buf (nl + 1) plen in
            if buf.[frame_end - 1] <> '\n' then `Corrupt "missing frame terminator"
            else
              let actual = Printf.sprintf "%08lx" (crc32 payload) in
              if not (String.equal actual crc) then
                `Corrupt
                  (Printf.sprintf "CRC mismatch (stored %s, computed %s)" crc
                     actual)
              else
                match decode payload with
                | record -> `Frame (record, frame_end)
                | exception Corrupt msg -> `Corrupt msg
          end)
      | _ -> `Corrupt (Printf.sprintf "bad frame header %S" header))

(* Scans the whole log, stopping cleanly at the first torn or corrupt
   frame; an uncommitted trailing batch is discarded. Never raises on
   damaged input. *)
let scan path =
  if not (Sys.file_exists path) then
    { generation = None; epoch = 0; batches = []; stopped = None }
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let generation = ref None in
        let epoch = ref 0 in
        let batches = ref [] in
        let pending = ref [] in
        let stopped = ref None in
        let rec go first =
          match read_frame ic with
          | None -> ()
          | Some (Generation { gen; epoch = e }) when first ->
            generation := Some gen;
            epoch := e;
            go false
          | Some (Commit _ as c) ->
            batches := List.rev (c :: !pending) :: !batches;
            pending := [];
            go false
          | Some r ->
            pending := r :: !pending;
            go false
          | exception Corrupt msg -> stopped := Some msg
        in
        go true;
        { generation = !generation;
          epoch = !epoch;
          batches = List.rev !batches;
          stopped = !stopped })
  end

(* --- Replay ------------------------------------------------------------ *)

(* Finds the first (lowest-rid) live row equal to [row]. *)
let find_row table row =
  let exception Found of int in
  match
    Table.iteri
      (fun rid stored ->
        if
          Array.length stored = Array.length row
          && (let rec eq i =
                i >= Array.length row
                || (Value.equal stored.(i) row.(i) && eq (i + 1))
              in
              eq 0)
        then raise (Found rid))
      table
  with
  | () -> None
  | exception Found rid -> Some rid

let row_types table =
  Array.map (fun c -> c.Schema.ty) (Table.schema table).Schema.columns

let parse_cells table cells =
  match Persist.parse_row (row_types table) cells with
  | row -> row
  | exception Persist.Format_error msg -> corrupt "%s" msg

(* Applies one record to the catalog.
   @raise Corrupt when the record does not fit the catalog (a log that
   does not match its snapshot). *)
let apply catalog record =
  let table_exn name =
    match Catalog.find_table catalog name with
    | Some t -> t
    | None -> corrupt "no such table %s in log replay" name
  in
  match record with
  | Generation _ | Commit _ -> ()
  | Insert { table; cells } ->
    let table = table_exn table in
    let row = parse_cells table cells in
    ignore (Table.insert table row);
    (* Replayed inserts into partition children (recovery, replication)
       must keep the parent's pruning watermark sound. *)
    Catalog.note_partition_write catalog table row
  | Delete { table; cells } -> (
    let table = table_exn table in
    match find_row table (parse_cells table cells) with
    | Some rid -> ignore (Table.delete table rid)
    | None -> corrupt "no row matches a logged DELETE on %s" (Table.name table))
  | Update { table; old_cells; new_cells } -> (
    let table = table_exn table in
    match find_row table (parse_cells table old_cells) with
    | Some rid ->
      let row = parse_cells table new_cells in
      ignore (Table.update table rid row);
      Catalog.note_partition_write catalog table row
    | None -> corrupt "no row matches a logged UPDATE on %s" (Table.name table))
  | Create_table { table; columns } ->
    ignore (Catalog.create_table catalog (Schema.make ~table_name:table columns))
  | Create_partitioned { table; columns; column; parts } ->
    ignore
      (Catalog.create_partitioned catalog
         (Schema.make ~table_name:table columns)
         ~column ~parts)
  | Drop_table table -> ignore (Catalog.drop_table catalog table)
  | Create_index { idx_name; table; column; interval; unique } ->
    ignore
      (Catalog.create_index catalog ~idx_name ~table_name:table ~column ~unique
         ~kind:(if interval then Table.Interval else Table.Ordered))
  | Drop_index idx_name -> ignore (Catalog.drop_index catalog idx_name)
