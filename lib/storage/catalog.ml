(* The system catalog: table names to table objects, plus a global index
   namespace (SQL's DROP INDEX takes no table name, so index names must
   be unique database-wide), plus the partitioned-table registry mapping
   a parent name to its {!Partition} descriptor and each child back to
   its parent. *)

exception Catalog_error of string

let catalog_error fmt = Format.kasprintf (fun s -> raise (Catalog_error s)) fmt

type t = {
  tables : (string, Table.t) Hashtbl.t;
  index_owner : (string, string) Hashtbl.t; (* index name -> table name *)
  partitions : (string, Partition.t) Hashtbl.t; (* parent name -> descriptor *)
  part_parent : (string, Partition.t * Partition.part) Hashtbl.t;
      (* child table name -> (parent descriptor, its part) *)
}

let create () =
  { tables = Hashtbl.create 16;
    index_owner = Hashtbl.create 16;
    partitions = Hashtbl.create 4;
    part_parent = Hashtbl.create 8 }

let key name = String.lowercase_ascii name

let find_table t name = Hashtbl.find_opt t.tables (key name)

let table_exn t name =
  match find_table t name with
  | Some table -> table
  | None -> catalog_error "no such table: %s" name

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []
  |> List.sort String.compare

let find_partitioned t name = Hashtbl.find_opt t.partitions (key name)

let partitioned_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.partitions []
  |> List.sort String.compare

let partition_of_child t name = Hashtbl.find_opt t.part_parent (key name)

let note_partition_write t table row =
  match Hashtbl.find_opt t.part_parent (key (Table.name table)) with
  | Some (pt, part) -> Partition.note_row part pt row
  | None -> ()

let create_table t schema =
  let name = key schema.Schema.table_name in
  if Hashtbl.mem t.tables name then catalog_error "table %s already exists" name;
  if Hashtbl.mem t.partitions name then
    catalog_error "table %s already exists (partitioned)" name;
  let table = Table.create schema in
  Hashtbl.replace t.tables name table;
  (* The implicit primary-key index joins the global namespace too. *)
  List.iter
    (fun idx -> Hashtbl.replace t.index_owner (key idx.Table.idx_name) name)
    (Table.indexes table);
  table

(* Registers the descriptor and the child back-links of an already-built
   partitioned table. *)
let register_partitioned t pt =
  Hashtbl.replace t.partitions pt.Partition.pt_name pt;
  Array.iter
    (fun part ->
      Hashtbl.replace t.part_parent
        (key (Table.name part.Partition.p_table))
        (pt, part))
    pt.Partition.pt_parts

let create_partitioned t schema ~column ~parts =
  let name = key schema.Schema.table_name in
  if Hashtbl.mem t.tables name || Hashtbl.mem t.partitions name then
    catalog_error "table %s already exists" name;
  (* Create every child first so a bad declaration (duplicate child
     name, overlapping ranges) leaves nothing behind. *)
  let created = ref [] in
  let cleanup () =
    List.iter
      (fun child -> ignore (Hashtbl.remove t.tables (key child)))
      !created
  in
  match
    let with_tables =
      List.map
        (fun (pname, bounds) ->
          let child = Partition.child_name name pname in
          let child_schema =
            Schema.make ~table_name:child
              (Array.to_list schema.Schema.columns)
          in
          let table = create_table t child_schema in
          created := child :: !created;
          (pname, bounds, table))
        parts
    in
    Partition.make ~name ~schema ~column with_tables
  with
  | pt ->
    register_partitioned t pt;
    pt
  | exception e ->
    cleanup ();
    raise e

(* Rebinds a loaded partition spec to child tables that already exist
   (snapshot load re-creates children as ordinary tables first), and
   rebuilds each child's end watermark from its rows. *)
let link_partitioned t ~name ~schema ~column ~parts =
  let with_tables =
    List.map
      (fun (pname, bounds) ->
        let child = Partition.child_name name pname in
        (pname, bounds, table_exn t child))
      parts
  in
  let pt = Partition.make ~name ~schema ~column with_tables in
  Array.iter (fun part -> Partition.rebuild_watermark pt part) pt.Partition.pt_parts;
  register_partitioned t pt;
  pt

let drop_plain_table t name =
  match find_table t name with
  | None -> false
  | Some table ->
    List.iter
      (fun idx -> Hashtbl.remove t.index_owner (key idx.Table.idx_name))
      (Table.indexes table);
    Hashtbl.remove t.tables (key name);
    true

let drop_table t name =
  match find_partitioned t name with
  | Some pt ->
    Array.iter
      (fun part ->
        let child = Table.name part.Partition.p_table in
        Hashtbl.remove t.part_parent (key child);
        ignore (drop_plain_table t child))
      pt.Partition.pt_parts;
    Hashtbl.remove t.partitions (key name);
    true
  | None ->
    if Hashtbl.mem t.part_parent (key name) then
      catalog_error
        "%s is a partition; drop the partitioned parent instead" name;
    drop_plain_table t name

let create_index t ~idx_name ~table_name ~column ~unique ~kind =
  let idx_key = key idx_name in
  if Hashtbl.mem t.index_owner idx_key then
    catalog_error "index %s already exists" idx_name;
  let table = table_exn t table_name in
  let idx = Table.create_index table ~idx_name:idx_key ~column ~unique ~kind in
  Hashtbl.replace t.index_owner idx_key (key table_name);
  idx

(* Replaces [t]'s contents with [from]'s, in place. Replication
   re-bootstrap needs this: the replica's catalog object is shared with
   the engine, planner and registered virtual tables, so on a fresh
   snapshot the contents must be swapped under the existing handle
   rather than allocating a new catalog. *)
let assign t ~from =
  Hashtbl.reset t.tables;
  Hashtbl.reset t.index_owner;
  Hashtbl.reset t.partitions;
  Hashtbl.reset t.part_parent;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.tables k v) from.tables;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.index_owner k v) from.index_owner;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.partitions k v) from.partitions;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.part_parent k v) from.part_parent

let drop_index t idx_name =
  let idx_key = key idx_name in
  match Hashtbl.find_opt t.index_owner idx_key with
  | None -> false
  | Some owner ->
    let table = table_exn t owner in
    ignore (Table.drop_index table idx_key);
    Hashtbl.remove t.index_owner idx_key;
    true
