(* The system catalog: table names to table objects, plus a global index
   namespace (SQL's DROP INDEX takes no table name, so index names must
   be unique database-wide). *)

exception Catalog_error of string

let catalog_error fmt = Format.kasprintf (fun s -> raise (Catalog_error s)) fmt

type t = {
  tables : (string, Table.t) Hashtbl.t;
  index_owner : (string, string) Hashtbl.t; (* index name -> table name *)
}

let create () = { tables = Hashtbl.create 16; index_owner = Hashtbl.create 16 }

let key name = String.lowercase_ascii name

let find_table t name = Hashtbl.find_opt t.tables (key name)

let table_exn t name =
  match find_table t name with
  | Some table -> table
  | None -> catalog_error "no such table: %s" name

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []
  |> List.sort String.compare

let create_table t schema =
  let name = key schema.Schema.table_name in
  if Hashtbl.mem t.tables name then catalog_error "table %s already exists" name;
  let table = Table.create schema in
  Hashtbl.replace t.tables name table;
  (* The implicit primary-key index joins the global namespace too. *)
  List.iter
    (fun idx -> Hashtbl.replace t.index_owner (key idx.Table.idx_name) name)
    (Table.indexes table);
  table

let drop_table t name =
  match find_table t name with
  | None -> false
  | Some table ->
    List.iter
      (fun idx -> Hashtbl.remove t.index_owner (key idx.Table.idx_name))
      (Table.indexes table);
    Hashtbl.remove t.tables (key name);
    true

let create_index t ~idx_name ~table_name ~column ~unique ~kind =
  let idx_key = key idx_name in
  if Hashtbl.mem t.index_owner idx_key then
    catalog_error "index %s already exists" idx_name;
  let table = table_exn t table_name in
  let idx = Table.create_index table ~idx_name:idx_key ~column ~unique ~kind in
  Hashtbl.replace t.index_owner idx_key (key table_name);
  idx

(* Replaces [t]'s contents with [from]'s, in place. Replication
   re-bootstrap needs this: the replica's catalog object is shared with
   the engine, planner and registered virtual tables, so on a fresh
   snapshot the contents must be swapped under the existing handle
   rather than allocating a new catalog. *)
let assign t ~from =
  Hashtbl.reset t.tables;
  Hashtbl.reset t.index_owner;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.tables k v) from.tables;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.index_owner k v) from.index_owner

let drop_index t idx_name =
  let idx_key = key idx_name in
  match Hashtbl.find_opt t.index_owner idx_key with
  | None -> false
  | Some owner ->
    let table = table_exn t owner in
    ignore (Table.drop_index table idx_key);
    Hashtbl.remove t.index_owner idx_key;
    true
