(* Optimizer statistics: per-table row counts plus per-column period
   histograms, collected by ANALYZE and consumed by the planner's cost
   model.

   Temporal columns are summarized by two equi-width histograms over
   ground (unix-second) bounds: where periods *start*, and how *long*
   they run. Together with the mean period length they answer the one
   question the planner asks: "what fraction of this table's rows have
   a period overlapping the probe window [lo, hi]?" — a row's period
   [s, s+len] intersects the window iff s <= hi && s + len >= lo, so
   counting starts in [lo - mean_len, hi] is a first-order estimate.
   NOW-relative bounds (min_int/max_int extents) cannot be bucketed;
   they are counted separately and treated as overlapping everything,
   which errs toward the exact-but-slower sequential recheck. *)

type histogram = {
  h_lo : int;  (* inclusive lower bound of bucket 0 *)
  h_width : int;  (* bucket width in value units, >= 1 *)
  h_counts : int array;
}

type col_stats = {
  cs_column : int;
  cs_nonnull : int;
  cs_periods : int;
  cs_unbounded : int;
  cs_avg_len : int;
  cs_starts : histogram;
  cs_lengths : histogram;
}

type t = {
  st_rows : int;
  st_buckets : int;
  st_analyzed_at : string;
  st_cols : col_stats list;
}

let total_count h = Array.fold_left ( + ) 0 h.h_counts

(* --- Histogram construction ------------------------------------------------- *)

let build_histogram ~buckets values =
  let buckets = max 1 buckets in
  match values with
  | [] -> { h_lo = 0; h_width = 1; h_counts = Array.make buckets 0 }
  | v :: rest ->
    let lo = List.fold_left min v rest and hi = List.fold_left max v rest in
    (* ceil((hi - lo + 1) / buckets), floored at 1 *)
    let width = max 1 ((hi - lo + buckets) / buckets) in
    let counts = Array.make buckets 0 in
    List.iter
      (fun x ->
        let b = min (buckets - 1) ((x - lo) / width) in
        counts.(b) <- counts.(b) + 1)
      values;
    { h_lo = lo; h_width = width; h_counts = counts }

(* Estimated fraction of histogram values falling in [lo, hi], with
   linear interpolation inside partially-covered buckets. *)
let fraction_in_window h ~lo ~hi =
  let total = total_count h in
  if total = 0 || hi < lo then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iteri
      (fun i count ->
        if count > 0 then begin
          let blo = h.h_lo + (i * h.h_width) in
          let bhi = blo + h.h_width - 1 in
          if not (hi < blo || bhi < lo) then begin
            let cover_lo = max lo blo and cover_hi = min hi bhi in
            let frac =
              float_of_int (cover_hi - cover_lo + 1)
              /. float_of_int h.h_width
            in
            acc := !acc +. (float_of_int count *. min 1.0 frac)
          end
        end)
      h.h_counts;
    min 1.0 (!acc /. float_of_int total)
  end

(* --- Column statistics ------------------------------------------------------- *)

(* Builds column stats from one (start, length) pair per finite period,
   plus the count of NOW-relative (unbounded) periods. *)
let build_col_stats ~column ~buckets ~nonnull ~unbounded pairs =
  let starts = List.map fst pairs and lengths = List.map snd pairs in
  let n = List.length pairs in
  let avg_len =
    if n = 0 then 0 else List.fold_left ( + ) 0 lengths / n
  in
  { cs_column = column;
    cs_nonnull = nonnull;
    cs_periods = n + unbounded;
    cs_unbounded = unbounded;
    cs_avg_len = avg_len;
    cs_starts = build_histogram ~buckets starts;
    cs_lengths = build_histogram ~buckets lengths }

(* Histograms are estimates, not proofs: a probe entirely outside the
   bucketed range still matches rows inserted since ANALYZE, and exact
   zeros poison downstream cost arithmetic (ratios, comparisons against
   thresholds). Estimates for populated columns therefore never go
   below this floor. *)
let selectivity_epsilon = 1e-4

(* Estimated fraction of the column's rows with a period overlapping
   [lo, hi]. Clamped to [epsilon, 1]; returns 1.0 when the column was
   never populated (no information -> assume everything matches, which
   keeps the planner conservative). *)
let overlap_selectivity cs ~lo ~hi =
  if cs.cs_periods = 0 then 1.0
  else begin
    let finite = cs.cs_periods - cs.cs_unbounded in
    let unbounded_frac =
      float_of_int cs.cs_unbounded /. float_of_int cs.cs_periods
    in
    if finite = 0 then 1.0
    else begin
      (* a period starting at s with the mean length overlaps [lo, hi]
         iff s is in [lo - mean_len, hi]; saturate the subtraction so a
         min_int probe bound cannot wrap *)
      let probe_lo =
        if lo < min_int + cs.cs_avg_len then min_int else lo - cs.cs_avg_len
      in
      let start_frac = fraction_in_window cs.cs_starts ~lo:probe_lo ~hi in
      Float.max selectivity_epsilon
        (min 1.0 (unbounded_frac +. ((1.0 -. unbounded_frac) *. start_frac)))
    end
  end

let find_col t column =
  List.find_opt (fun cs -> cs.cs_column = column) t.st_cols
