(** A table: schema + heap + indexes, with constraint checking.

    Every mutation goes through this module so indexes and constraints
    cannot drift from the heap. A schema with a primary key gets a
    unique B+tree index ([<table>_pkey]) automatically. *)

exception Constraint_violation of string

type index_kind = Ordered | Interval

type index = {
  idx_name : string;
  idx_column : int;  (** column position in the schema *)
  idx_unique : bool;
  impl : index_impl;
}

and index_impl =
  | Ordered_impl of Btree.t
  | Interval_impl of Interval_index.t

type t

val create : Schema.t -> t
val schema : t -> Schema.t
val name : t -> string
val row_count : t -> int
val indexes : t -> index list

(** {1 Mutations}

    All raise {!Constraint_violation} on arity, type, NOT NULL or
    uniqueness violations, leaving the table unchanged. *)

(** Validates, stores, maintains every index; returns the row id. *)
val insert : t -> Value.t array -> int

(** Removes the row and its index entries; returns whether it existed. *)
val delete : t -> int -> bool

(** Replaces the row in place (index entries follow); restores the old
    index state if the new row violates a unique index. *)
val update : t -> int -> Value.t array -> bool

(** {1 Reads} *)

val get : t -> int -> Value.t array option
val get_exn : t -> int -> Value.t array
val rids : t -> int list

(** Live row ids, ascending, as a fresh array (see {!Heap.rids_array}). *)
val rids_array : t -> int array
val iteri : (int -> Value.t array -> unit) -> t -> unit
val fold : ('a -> Value.t array -> 'a) -> 'a -> t -> 'a

(** {1 Access counters}

    Cheap per-table statistics for the [tip_stat_tables] catalog,
    charged in bulk (one atomic add per scan entry, one per mutation),
    never per row. *)

(** Full-scan entries ({!rids}, {!rids_array}, {!iteri}, {!fold}). *)
val scan_count : t -> int

(** Cumulative live rows visible to those scans. *)
val scan_row_count : t -> int

(** Successful inserts, deletes and updates. *)
val write_count : t -> int

(** {1 Optimizer statistics}

    Collected by ANALYZE, consumed by the planner's cost model. *)

(** The last ANALYZE result; [None] until one runs. *)
val stats : t -> Stats.t option

val set_stats : t -> Stats.t option -> unit

(** One heap pass building fresh statistics: row count plus period
    start/length histograms for every column whose values expose
    temporal extents. Stores and returns the result. [analyzed_at] is
    the statement's NOW, already rendered. *)
val analyze : ?buckets:int -> analyzed_at:string -> t -> Stats.t

(** {1 Secondary indexes} *)

val find_index : t -> string -> index option

(** The first index of the given kind on a column position, if any. *)
val index_on_column : t -> kind:index_kind -> int -> index option

(** Creates and backfills an index; a unique violation during backfill
    aborts without registering it.
    @raise Constraint_violation on duplicate name or backfill failure. *)
val create_index :
  t -> idx_name:string -> column:string -> unique:bool -> kind:index_kind ->
  index

val drop_index : t -> string -> bool

(**/**)

val validate_row : t -> Value.t array -> Value.t array
