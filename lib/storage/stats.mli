(** Optimizer statistics collected by ANALYZE: per-table row counts and
    per-temporal-column histograms of period starts and lengths, used by
    the planner to estimate how many rows a probe window selects. *)

(** Equi-width histogram over an integer domain. *)
type histogram = {
  h_lo : int;  (** inclusive lower bound of bucket 0 *)
  h_width : int;  (** bucket width in value units, >= 1 *)
  h_counts : int array;
}

type col_stats = {
  cs_column : int;  (** schema position *)
  cs_nonnull : int;  (** rows that contributed at least one period *)
  cs_periods : int;  (** periods observed, including unbounded ones *)
  cs_unbounded : int;  (** NOW-relative periods (un-bucketable) *)
  cs_avg_len : int;  (** mean finite period length, seconds *)
  cs_starts : histogram;  (** where finite periods start *)
  cs_lengths : histogram;  (** how long finite periods run *)
}

type t = {
  st_rows : int;  (** live rows at ANALYZE time *)
  st_buckets : int;  (** histogram resolution used *)
  st_analyzed_at : string;  (** the statement's NOW, rendered *)
  st_cols : col_stats list;
}

val total_count : histogram -> int

(** Equi-width histogram of [values] with [buckets] buckets (floored at
    1); empty input yields an all-zero histogram. *)
val build_histogram : buckets:int -> int list -> histogram

(** Estimated fraction of the histogram's values in [lo, hi], linearly
    interpolating partially-covered buckets. In [0, 1]. *)
val fraction_in_window : histogram -> lo:int -> hi:int -> float

(** Column stats from one (start, length) pair per finite period plus
    the count of unbounded (NOW-relative) periods. *)
val build_col_stats :
  column:int ->
  buckets:int ->
  nonnull:int ->
  unbounded:int ->
  (int * int) list ->
  col_stats

(** Floor for {!overlap_selectivity} on populated columns: probes
    entirely outside the histogram range estimate this instead of an
    exact 0, which would poison cost ratios and threshold comparisons. *)
val selectivity_epsilon : float

(** Estimated fraction of the column's rows with a period overlapping
    [lo, hi]. Unbounded periods count as always overlapping; a column
    with no observed periods estimates 1.0 (no information); otherwise
    clamped to [[selectivity_epsilon, 1]]. *)
val overlap_selectivity : col_stats -> lo:int -> hi:int -> float

val find_col : t -> int -> col_stats option
