(** Heap storage for one table: rows addressed by stable row ids.

    Deleted slots become tombstones and are recycled through a free
    list, so row ids stay valid for the indexes that reference them. *)

type row = Value.t array

type t

val create : unit -> t
val live_count : t -> int

(** Stores a row, reusing a tombstone slot when one is free; returns the
    row id. *)
val insert : t -> row -> int

(** [None] for out-of-range or deleted row ids. *)
val get : t -> int -> row option

(** @raise Invalid_argument when the row does not exist. *)
val get_exn : t -> int -> row

(** Returns whether the row existed. *)
val delete : t -> int -> bool

(** In-place replacement; returns whether the row existed. *)
val update : t -> int -> row -> bool

(** Iterates live rows in row-id order. *)
val iteri : (int -> row -> unit) -> t -> unit

val fold : ('a -> row -> 'a) -> 'a -> t -> 'a

(** Live row ids, ascending. *)
val rids : t -> int list

(** Live row ids, ascending, as a fresh array — the snapshot the
    parallel executor slices into rid-range morsels. *)
val rids_array : t -> int array
