(* Deterministic fault injection for the durability path.

   Every I/O the durability subsystem performs (WAL appends, snapshot
   writes, fsyncs, renames) goes through this module, so tests can kill
   the engine at any chosen I/O, shorten a write to simulate a torn
   page, or flip a bit to simulate media corruption — all without
   forking a process. A [Crash] escaping to the top level stands for
   the process dying: the harness drops the engine and re-opens from
   disk.

   Sites are armed programmatically ([arm]) or through the
   TIP_FAILPOINTS environment variable:

     TIP_FAILPOINTS="wal.write:3:crash,snapshot.rename:1:crash"

   Each clause is site:hit:action where [hit] counts invocations of the
   site (1-based) and action is one of crash, shortwrite=N, bitflip=N,
   fail=MSG. *)

exception Crash of string

type action =
  | Crash_now
  | Short_write of int (* write only the first N bytes, then crash *)
  | Bit_flip of int (* flip bit N (mod payload bits), carry on *)
  | Fail of string (* raise a plain Failure — an "unexpected" error *)
  | Drop (* stream sites: swallow the payload and sever the link *)
  | Delay of float (* stream sites: sleep before delivering *)

type arm_point = { site : string; hit : int; action : action }

let armed : arm_point list ref = ref []
let counters : (string, int) Hashtbl.t = Hashtbl.create 8
let env_loaded = ref false

let parse_action s =
  match String.index_opt s '=' with
  | None -> (
    match s with
    | "crash" -> Crash_now
    | "drop" -> Drop
    | _ -> invalid_arg ("TIP_FAILPOINTS: unknown action " ^ s))
  | Some i -> (
    let name = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    match name with
    | "shortwrite" -> Short_write (int_of_string arg)
    | "bitflip" -> Bit_flip (int_of_string arg)
    | "fail" -> Fail arg
    | "delay" -> Delay (float_of_string arg)
    | _ -> invalid_arg ("TIP_FAILPOINTS: unknown action " ^ name))

let parse_env spec =
  String.split_on_char ',' spec
  |> List.filter (fun s -> String.trim s <> "")
  |> List.map (fun clause ->
         match String.split_on_char ':' (String.trim clause) with
         | [ site; hit; action ] ->
           { site; hit = int_of_string hit; action = parse_action action }
         | _ -> invalid_arg ("TIP_FAILPOINTS: bad clause " ^ clause))

let load_env () =
  if not !env_loaded then begin
    env_loaded := true;
    match Sys.getenv_opt "TIP_FAILPOINTS" with
    | None | Some "" -> ()
    | Some spec -> armed := parse_env spec @ !armed
  end

let arm ~site ~hit action =
  load_env ();
  armed := { site; hit; action } :: !armed

let reset () =
  env_loaded := true;
  (* programmatic resets discard the env spec too *)
  armed := [];
  Hashtbl.reset counters

let active () = !armed <> []

(* The action armed for this invocation of [site], if any; bumps the
   site's invocation counter either way. *)
let check site =
  load_env ();
  if !armed = [] then None
  else begin
    let n = (try Hashtbl.find counters site with Not_found -> 0) + 1 in
    Hashtbl.replace counters site n;
    match List.find_opt (fun a -> a.site = site && a.hit = n) !armed with
    | Some a -> Some a.action
    | None -> None
  end

let crash site = raise (Crash (Printf.sprintf "injected crash at %s" site))

(* A control-flow-only site (no I/O): supports Crash_now, Fail and
   Delay; byte-level actions are meaningless here and ignored. *)
let hit ~site () =
  match check site with
  | None | Some (Short_write _) | Some (Bit_flip _) | Some Drop -> ()
  | Some Crash_now -> crash site
  | Some (Fail msg) -> failwith msg
  | Some (Delay s) -> Unix.sleepf s

let write_all fd bytes len =
  let rec go off =
    if off < len then begin
      let n = Unix.write fd bytes off (len - off) in
      go (off + n)
    end
  in
  go 0

let flip_bit s bit =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  if len > 0 then begin
    let bit = abs bit mod (len * 8) in
    let byte = bit / 8 and inside = bit mod 8 in
    Bytes.set b byte
      (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl inside)))
  end;
  Bytes.to_string b

(* Writes the whole buffer through the failpoint at [site]. *)
let write ~site fd bytes =
  let len = Bytes.length bytes in
  match check site with
  | None | Some Drop -> write_all fd bytes len
  | Some (Delay s) ->
    Unix.sleepf s;
    write_all fd bytes len
  | Some Crash_now -> crash site
  | Some (Fail msg) -> failwith msg
  | Some (Short_write n) ->
    write_all fd bytes (min n len);
    crash site
  | Some (Bit_flip bit) ->
    let bytes = Bytes.of_string (flip_bit (Bytes.to_string bytes) bit) in
    write_all fd bytes len

let fsync ~site fd =
  match check site with
  | None | Some (Short_write _) | Some (Bit_flip _) | Some Drop -> Unix.fsync fd
  | Some (Delay s) ->
    Unix.sleepf s;
    Unix.fsync fd
  | Some Crash_now -> crash site
  | Some (Fail msg) -> failwith msg

let rename ~site src dst =
  match check site with
  | None | Some (Short_write _) | Some (Bit_flip _) | Some Drop ->
    Sys.rename src dst
  | Some (Delay s) ->
    Unix.sleepf s;
    Sys.rename src dst
  | Some Crash_now -> crash site
  | Some (Fail msg) -> failwith msg

(* A replication-stream site: decides what (if anything) of [payload]
   actually goes on the wire and whether the link dies afterwards.
   Returns [payload_to_send option * kill_connection_after].  [Drop]
   swallows the payload AND severs the link: on a reliable transport a
   silently lost frame could never be repaired, so the interesting
   failure is losing the tail and re-syncing from the confirmed
   offset.  [Short_write n] ships a prefix then severs the link (a torn
   frame in flight); [Bit_flip] corrupts silently and leaves the link
   up, exercising the receiver's CRC rejection. *)
let stream ~site payload =
  match check site with
  | None -> (Some payload, false)
  | Some Crash_now -> crash site
  | Some (Fail msg) -> failwith msg
  | Some Drop -> (None, true)
  | Some (Delay s) ->
    Unix.sleepf s;
    (Some payload, false)
  | Some (Short_write n) ->
    (Some (String.sub payload 0 (min n (String.length payload))), true)
  | Some (Bit_flip bit) -> (Some (flip_bit payload bit), false)
