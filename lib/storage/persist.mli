(** Textual snapshot persistence for a whole catalog.

    Cell values are serialized through each type's printer and re-parsed
    on load, which is exact because every value type round-trips through
    its literal syntax; in particular NOW-relative timestamps are stored
    symbolically. Extension types must be registered before {!load}.

    {!save} is atomic: the snapshot is written to [<path>.tmp], fsynced
    and renamed into place, so an interrupted save never clobbers the
    previous snapshot. Write-ahead logging and recovery live in {!Wal}
    and {!Recovery} (DESIGN.md §8). *)

exception Format_error of string

(** Writes every table (schema, indexes, rows) to the file, atomically
    (tmp + fsync + rename). [wal_gen] stamps the snapshot with the WAL
    generation it pairs with (see {!Recovery}). *)
val save : ?wal_gen:int -> Catalog.t -> string -> unit

(** The snapshot text {!save} would write, for diffing and tests. *)
val snapshot_string : ?wal_gen:int -> Catalog.t -> string

(** Rebuilds a catalog from a snapshot: rows re-inserted, secondary
    indexes recreated and backfilled.
    @raise Format_error on malformed input (bad cells and counts are
    classified with their line number, never a bare [Failure])
    @raise Sys_error on I/O failure. *)
val load : string -> Catalog.t

(** Like {!load}, also returning the snapshot's WAL generation. *)
val load_full : string -> Catalog.t * int option

(** Like {!load_full} but from snapshot text in memory — the inverse of
    {!snapshot_string}, used by replication bootstrap where the snapshot
    arrives over the wire rather than from a file. *)
val load_string : string -> Catalog.t * int option

(**/**)

val serialize_value : Value.t -> string
val parse_value : Schema.col_type -> string -> Value.t
val parse_row : Schema.col_type array -> string array -> Value.t array
val serialize_row : Value.t array -> string
val escape_cell : string -> string
val unescape_cell : string -> string
val column_line : Schema.column -> string
val parse_column_line : string -> Schema.column
