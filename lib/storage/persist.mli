(** Textual snapshot persistence for a whole catalog.

    Cell values are serialized through each type's printer and re-parsed
    on load, which is exact because every value type round-trips through
    its literal syntax; in particular NOW-relative timestamps are stored
    symbolically. Extension types must be registered before {!load}.

    {!save} is atomic: the snapshot is written to [<path>.tmp], fsynced
    and renamed into place, so an interrupted save never clobbers the
    previous snapshot. Write-ahead logging and recovery live in {!Wal}
    and {!Recovery} (DESIGN.md §8). *)

exception Format_error of string

(** Writes every table (schema, indexes, rows) to the file, atomically
    (tmp + fsync + rename). [wal_gen] stamps the snapshot with the WAL
    generation it pairs with (see {!Recovery}); [epoch] with the
    promotion epoch; [asof] with the instant (unix seconds) of the
    newest commit folded into it (the backup base instant PITR refuses
    to restore before). *)
val save : ?wal_gen:int -> ?epoch:int -> ?asof:int -> Catalog.t -> string -> unit

(** The snapshot text {!save} would write, for diffing and tests. *)
val snapshot_string :
  ?wal_gen:int -> ?epoch:int -> ?asof:int -> Catalog.t -> string

(** The header stamps a snapshot carries alongside its tables. Absent
    lines (pre-HA snapshots) read as [None] / epoch 0. *)
type meta = {
  m_wal_gen : int option;
  m_epoch : int;
  m_asof : int option;
}

(** Rebuilds a catalog from a snapshot: rows re-inserted, secondary
    indexes recreated and backfilled.
    @raise Format_error on malformed input (bad cells and counts are
    classified with their line number, never a bare [Failure])
    @raise Sys_error on I/O failure. *)
val load : string -> Catalog.t

(** Like {!load}, also returning the header stamps. *)
val load_meta : string -> Catalog.t * meta

(** Like {!load_meta}, returning only the WAL generation. *)
val load_full : string -> Catalog.t * int option

(** Like {!load_meta} but from snapshot text in memory — the inverse of
    {!snapshot_string}, used by replication bootstrap where the snapshot
    arrives over the wire rather than from a file. *)
val load_string : string -> Catalog.t * meta

(**/**)

val serialize_value : Value.t -> string
val parse_value : Schema.col_type -> string -> Value.t
val parse_row : Schema.col_type array -> string array -> Value.t array
val serialize_row : Value.t array -> string
val escape_cell : string -> string
val unescape_cell : string -> string
val column_line : Schema.column -> string
val parse_column_line : string -> Schema.column
