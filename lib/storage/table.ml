(* A table: schema + heap + indexes, with constraint checking.

   Every mutation goes through here so that indexes and constraints can
   never drift from the heap. Primary keys are enforced through a unique
   B+tree maintained automatically when the schema declares one. *)

exception Constraint_violation of string

let violation fmt = Format.kasprintf (fun s -> raise (Constraint_violation s)) fmt

type index_kind = Ordered | Interval

type index = {
  idx_name : string;
  idx_column : int; (* column position *)
  idx_unique : bool;
  impl : index_impl;
}

and index_impl =
  | Ordered_impl of Btree.t
  | Interval_impl of Interval_index.t

type t = {
  schema : Schema.t;
  heap : Heap.t;
  mutable indexes : index list;
  (* access counters for tip_stat_tables: one bulk atomic add per scan
     entry point, never per row, so parallel workers do not contend *)
  scans : int Atomic.t;
  scan_rows : int Atomic.t;
  writes : int Atomic.t;
  mutable stats : Stats.t option; (* last ANALYZE, None until one runs *)
}

let create schema =
  let t =
    { schema;
      heap = Heap.create ();
      indexes = [];
      scans = Atomic.make 0;
      scan_rows = Atomic.make 0;
      writes = Atomic.make 0;
      stats = None }
  in
  (match Schema.primary_key_index schema with
  | Some i ->
    t.indexes <-
      [ { idx_name = schema.Schema.table_name ^ "_pkey";
          idx_column = i;
          idx_unique = true;
          impl = Ordered_impl (Btree.create ()) } ]
  | None -> ());
  t

let schema t = t.schema
let name t = t.schema.Schema.table_name
let row_count t = Heap.live_count t.heap
let indexes t = t.indexes

(* --- Row validation --------------------------------------------------- *)

let validate_row t row =
  let n = Schema.arity t.schema in
  if Array.length row <> n then
    violation "table %s expects %d values, got %d" (name t) n (Array.length row);
  Array.mapi
    (fun i v ->
      let col = Schema.column t.schema i in
      if col.Schema.not_null && Value.is_null v then
        violation "column %s of %s is NOT NULL" col.Schema.name (name t);
      match Schema.coerce col.Schema.ty v with
      | Some v -> v
      | None ->
        violation "column %s of %s expects %s, got %s (%s)" col.Schema.name
          (name t)
          (Schema.type_name col.Schema.ty)
          (Value.type_name v)
          (Value.to_display_string v))
    row

(* --- Index maintenance ------------------------------------------------ *)

let index_insert idx row rid =
  let v = row.(idx.idx_column) in
  if not (Value.is_null v) then begin
    match idx.impl with
    | Ordered_impl bt ->
      if idx.idx_unique && Btree.find bt v <> [] then
        violation "duplicate key %s for unique index %s"
          (Value.to_display_string v) idx.idx_name;
      Btree.insert bt v rid
    | Interval_impl it ->
      List.iter
        (fun (lo, hi) -> Interval_index.insert it ~lo ~hi rid)
        (Value.extents v)
  end

let index_remove idx row rid =
  let v = row.(idx.idx_column) in
  if not (Value.is_null v) then begin
    match idx.impl with
    | Ordered_impl bt -> ignore (Btree.remove bt v rid)
    | Interval_impl it ->
      List.iter
        (fun (lo, hi) -> ignore (Interval_index.remove it ~lo ~hi rid))
        (Value.extents v)
  end

(* --- Mutations --------------------------------------------------------- *)

let insert t row =
  let row = validate_row t row in
  (* Check unique indexes before touching anything, so a violation leaves
     the table unchanged. *)
  List.iter
    (fun idx ->
      match idx.impl with
      | Ordered_impl bt ->
        let v = row.(idx.idx_column) in
        if idx.idx_unique && (not (Value.is_null v)) && Btree.find bt v <> []
        then
          violation "duplicate key %s for unique index %s"
            (Value.to_display_string v) idx.idx_name
      | Interval_impl _ -> ())
    t.indexes;
  let rid = Heap.insert t.heap row in
  List.iter (fun idx -> index_insert idx row rid) t.indexes;
  ignore (Atomic.fetch_and_add t.writes 1);
  rid

let delete t rid =
  match Heap.get t.heap rid with
  | None -> false
  | Some row ->
    List.iter (fun idx -> index_remove idx row rid) t.indexes;
    ignore (Heap.delete t.heap rid);
    ignore (Atomic.fetch_and_add t.writes 1);
    true

let update t rid row =
  match Heap.get t.heap rid with
  | None -> false
  | Some old_row ->
    let row = validate_row t row in
    List.iter (fun idx -> index_remove idx old_row rid) t.indexes;
    (match List.iter (fun idx -> index_insert idx row rid) t.indexes with
    | () -> ignore (Heap.update t.heap rid row)
    | exception e ->
      (* Restore the old index entries before re-raising. *)
      List.iter (fun idx -> index_remove idx row rid) t.indexes;
      List.iter (fun idx -> index_insert idx old_row rid) t.indexes;
      raise e);
    ignore (Atomic.fetch_and_add t.writes 1);
    true

let get t rid = Heap.get t.heap rid
let get_exn t rid = Heap.get_exn t.heap rid

(* Scan entry points charge the access counters in bulk: one scan, plus
   the live rows it will visit. *)
let charge_scan t =
  ignore (Atomic.fetch_and_add t.scans 1);
  ignore (Atomic.fetch_and_add t.scan_rows (Heap.live_count t.heap))

let rids t =
  charge_scan t;
  Heap.rids t.heap

let rids_array t =
  charge_scan t;
  Heap.rids_array t.heap

let iteri f t =
  charge_scan t;
  Heap.iteri f t.heap

let fold f init t =
  charge_scan t;
  Heap.fold f init t.heap

let scan_count t = Atomic.get t.scans
let scan_row_count t = Atomic.get t.scan_rows
let write_count t = Atomic.get t.writes

(* --- Optimizer statistics (ANALYZE) ----------------------------------- *)

let stats t = t.stats
let set_stats t s = t.stats <- s

(* One pass over the heap: for every column whose values expose temporal
   extents, gather (start, length) per finite period and count the
   NOW-relative ones. Columns that never produced an extent get no
   col_stats — the planner then knows nothing about them. *)
let analyze ?(buckets = 32) ~analyzed_at t =
  let n = Schema.arity t.schema in
  let pairs = Array.make n [] in
  let nonnull = Array.make n 0 in
  let unbounded = Array.make n 0 in
  let rows = ref 0 in
  charge_scan t;
  Heap.iteri
    (fun _rid row ->
      incr rows;
      for i = 0 to n - 1 do
        match Value.extents row.(i) with
        | [] -> ()
        | extents ->
          nonnull.(i) <- nonnull.(i) + 1;
          List.iter
            (fun (lo, hi) ->
              if lo = min_int || hi = max_int then
                unbounded.(i) <- unbounded.(i) + 1
              else pairs.(i) <- (lo, hi - lo) :: pairs.(i))
            extents
      done)
    t.heap;
  let cols = ref [] in
  for i = n - 1 downto 0 do
    if pairs.(i) <> [] || unbounded.(i) > 0 then
      cols :=
        Stats.build_col_stats ~column:i ~buckets ~nonnull:nonnull.(i)
          ~unbounded:unbounded.(i) pairs.(i)
        :: !cols
  done;
  let s =
    { Stats.st_rows = !rows;
      st_buckets = buckets;
      st_analyzed_at = analyzed_at;
      st_cols = !cols }
  in
  t.stats <- Some s;
  s

(* --- Secondary indexes -------------------------------------------------- *)

let find_index t idx_name =
  List.find_opt (fun i -> String.equal i.idx_name idx_name) t.indexes

let index_on_column t ~kind column =
  List.find_opt
    (fun i ->
      i.idx_column = column
      &&
      match i.impl, kind with
      | Ordered_impl _, Ordered -> true
      | Interval_impl _, Interval -> true
      | Ordered_impl _, Interval | Interval_impl _, Ordered -> false)
    t.indexes

let create_index t ~idx_name ~column ~unique ~kind =
  if find_index t idx_name <> None then
    violation "index %s already exists" idx_name;
  let col_pos = Schema.column_index_exn t.schema column in
  let impl =
    match kind with
    | Ordered -> Ordered_impl (Btree.create ())
    | Interval -> Interval_impl (Interval_index.create ())
  in
  let idx = { idx_name; idx_column = col_pos; idx_unique = unique; impl } in
  (* Backfill from existing rows; unique violations abort cleanly. *)
  (match Heap.iteri (fun rid row -> index_insert idx row rid) t.heap with
  | () -> ()
  | exception e -> raise e);
  t.indexes <- t.indexes @ [ idx ];
  idx

let drop_index t idx_name =
  let before = List.length t.indexes in
  t.indexes <- List.filter (fun i -> not (String.equal i.idx_name idx_name)) t.indexes;
  List.length t.indexes < before
