(** Range partitioning by valid time (DESIGN.md §14).

    A partitioned table is a parent name plus an ordered set of child
    tables, each owning the rows whose period {e starts} inside the
    child's [\[from, to)] chronon range; rows whose period start is
    unbounded (NOW-relative or NULL) route to the optional DEFAULT
    partition. Children are ordinary {!Table.t}s registered in the
    catalog under [<parent>__<partition>], so indexes, ANALYZE
    statistics, WAL journaling and replication all apply per child with
    no new machinery.

    Pruning is two-sided and conservative: a probe window [\[lo, hi\]]
    can only match a partition whose start range begins at or before
    [hi] {e and} whose observed maximum period end (a monotone
    watermark maintained on every insert, never lowered by deletes) is
    at least [lo]. The watermark makes old partitions of short-lived
    rows prunable from below, which static bounds alone cannot do. *)

exception Partition_error of string

(** One child partition. *)
type part = {
  p_name : string;  (** partition name as declared, lowercase *)
  p_from : int;  (** inclusive start chronon; ignored for DEFAULT *)
  p_to : int;  (** exclusive end chronon; ignored for DEFAULT *)
  p_default : bool;
  p_table : Table.t;
  p_max_end : int Atomic.t;
      (** conservative max period end ever inserted; [min_int] when the
          partition has never held a temporal row *)
  p_scanned : int Atomic.t;  (** pruning passes that kept this partition *)
  p_pruned : int Atomic.t;  (** pruning passes that skipped it *)
}

type t = {
  pt_name : string;  (** parent table name, lowercase *)
  pt_column : int;  (** partition column's schema position *)
  pt_col_name : string;
  pt_schema : Schema.t;
  pt_parts : part array;  (** range parts in declared order, default last *)
}

(** [<parent>__<partition>], the catalog name of a child table. *)
val child_name : string -> string -> string

(** Builds the descriptor; validates the column exists, ranges are
    non-empty and non-overlapping, names are unique, and at most one
    partition is DEFAULT.
    @raise Partition_error on any violation. [parts] pairs each declared
    partition name with [Some (from, to)] or [None] for DEFAULT; the
    tables must be the already-created children in the same order. *)
val make :
  name:string ->
  schema:Schema.t ->
  column:string ->
  (string * (int * int) option * Table.t) list ->
  t

val default_part : t -> part option

(** The partition owning a row: by the period's start chronon, or the
    DEFAULT partition for NULL/unbounded starts.
    @raise Partition_error when no range matches and there is no
    DEFAULT. *)
val route : t -> Value.t array -> part

(** Raises the partition's end watermark to cover [row]'s period, if it
    has one. Called on every path that lands a row in a child: engine
    DML, WAL replay (replication and recovery) and snapshot load. *)
val note_row : part -> t -> Value.t array -> unit

(** Recomputes a part's watermark from its current rows (snapshot
    load). *)
val rebuild_watermark : t -> part -> unit

(** Partitions that can hold a row overlapping [\[lo, hi\]]; also
    returns how many were pruned, and bumps each part's
    scanned/pruned counters. *)
val prune : t -> lo:int -> hi:int -> part list * int

(** All partitions, in declared order (a scan with no usable probe). *)
val all_parts : t -> part list

(** Renders a chronon bound for EXPLAIN / [tip_stat_partitions]. *)
val bound_to_string : int -> string
