(* Textual snapshot persistence for a whole catalog.

   The format is a line-oriented header-and-rows layout; cell values are
   serialized through each type's printer and re-parsed on load, which is
   exact because every value type (including blade types) round-trips
   through its literal syntax — in particular NOW-relative timestamps are
   stored symbolically, as they must be.

   Saving is atomic: the snapshot is rendered in memory, written to
   [<path>.tmp], fsynced and renamed into place, so an interrupted save
   never clobbers the previous snapshot. All snapshot I/O goes through
   [Failpoint] so crash tests can interrupt any step. A snapshot may
   carry a WAL generation number ([walgen] line) that [Recovery] uses to
   reject a stale write-ahead log left behind by a crash between the
   checkpoint rename and the log truncation. *)

exception Format_error of string

let format_error fmt = Format.kasprintf (fun s -> raise (Format_error s)) fmt

(* --- Cell escaping ----------------------------------------------------- *)

let escape_cell s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape_cell s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      (if s.[i] = '\\' && i + 1 < n then begin
         (match s.[i + 1] with
         | 't' -> Buffer.add_char buf '\t'
         | 'n' -> Buffer.add_char buf '\n'
         | '\\' -> Buffer.add_char buf '\\'
         | c -> Buffer.add_char buf c);
         go (i + 2)
       end
       else begin
         Buffer.add_char buf s.[i];
         go (i + 1)
       end)
    end
  in
  go 0;
  Buffer.contents buf

let null_marker = "\\N"

let serialize_value v =
  if Value.is_null v then null_marker
  else begin
    match v with
    | Value.Bool b -> if b then "t" else "f"
    | Value.Null | Value.Int _ | Value.Float _ | Value.Str _ | Value.Date _
    | Value.Ext _ -> escape_cell (Value.to_display_string v)
  end

(* Corrupt cells must surface as [Format_error], never a bare [Failure],
   so recovery can classify them. *)
let int_cell text =
  match int_of_string text with
  | n -> n
  | exception Failure _ -> format_error "bad INT cell %S" text

let float_cell text =
  match float_of_string text with
  | f -> f
  | exception Failure _ -> format_error "bad FLOAT cell %S" text

let parse_value ty cell =
  if String.equal cell null_marker then Value.Null
  else begin
    let text = unescape_cell cell in
    match ty with
    | Schema.T_int -> Value.Int (int_cell text)
    | Schema.T_float -> Value.Float (float_cell text)
    | Schema.T_bool -> Value.Bool (String.equal text "t")
    | Schema.T_char _ -> Value.Str text
    | Schema.T_date -> (
      match Tip_core.Chronon.of_string text with
      | Some c -> Value.Date c
      | None -> format_error "bad date cell %S" text)
    | Schema.T_ext name -> (
      match Value.lookup_type name with
      | Some vt -> (
        match vt.Value.parse text with
        | v -> v
        | exception Value.Type_error msg ->
          format_error "bad %s cell %S: %s" name text msg)
      | None -> format_error "type %s not registered at load time" name)
  end

(* --- Saving ------------------------------------------------------------- *)

let type_spec ty =
  match ty with
  | Schema.T_int -> ("INT", "-")
  | Schema.T_float -> ("FLOAT", "-")
  | Schema.T_bool -> ("BOOLEAN", "-")
  | Schema.T_char None -> ("TEXT", "-")
  | Schema.T_char (Some n) -> ("CHAR", string_of_int n)
  | Schema.T_date -> ("DATE", "-")
  | Schema.T_ext name -> ("EXT:" ^ name, "-")

(* One schema column as a snapshot/WAL header line (shared with [Wal]'s
   CREATE TABLE records). *)
let column_line (c : Schema.column) =
  let ty, param = type_spec c.Schema.ty in
  Printf.sprintf "column %s %s %s %d %d" c.Schema.name ty param
    (if c.Schema.not_null then 1 else 0)
    (if c.Schema.primary_key then 1 else 0)

let serialize_row row =
  String.concat "\t" (Array.to_list (Array.map serialize_value row))

let save_table buf table =
  let schema = Table.schema table in
  Printf.bprintf buf "table %s\n" schema.Schema.table_name;
  Array.iter
    (fun c -> Printf.bprintf buf "%s\n" (column_line c))
    schema.Schema.columns;
  List.iter
    (fun idx ->
      let kind =
        match idx.Table.impl with
        | Table.Ordered_impl _ -> "ordered"
        | Table.Interval_impl _ -> "interval"
      in
      let col = (Schema.column schema idx.Table.idx_column).Schema.name in
      Printf.bprintf buf "index %s %s %s %d\n" idx.Table.idx_name col kind
        (if idx.Table.idx_unique then 1 else 0))
    (Table.indexes table);
  Printf.bprintf buf "rows %d\n" (Table.row_count table);
  Table.iteri
    (fun _rid row -> Printf.bprintf buf "%s\n" (serialize_row row))
    table;
  Buffer.add_string buf "end\n"

(* Partition metadata follows the child tables it refers to, so the
   loader can link the spec against already-reloaded children. The
   parent's schema is not repeated: children carry identical columns. *)
let save_partitioned buf pt =
  Printf.bprintf buf "partitioned %s %s\n" pt.Partition.pt_name
    pt.Partition.pt_col_name;
  Array.iter
    (fun p ->
      if p.Partition.p_default then
        Printf.bprintf buf "part %s default\n" p.Partition.p_name
      else
        Printf.bprintf buf "part %s %d %d\n" p.Partition.p_name
          p.Partition.p_from p.Partition.p_to)
    pt.Partition.pt_parts;
  Buffer.add_string buf "end\n"

let snapshot_string ?wal_gen ?epoch ?asof catalog =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "tipdb 1\n";
  Option.iter (fun g -> Printf.bprintf buf "walgen %d\n" g) wal_gen;
  Option.iter (fun e -> Printf.bprintf buf "epoch %d\n" e) epoch;
  Option.iter (fun a -> Printf.bprintf buf "asof %d\n" a) asof;
  List.iter
    (fun name -> save_table buf (Catalog.table_exn catalog name))
    (Catalog.table_names catalog);
  List.iter
    (fun name ->
      match Catalog.find_partitioned catalog name with
      | Some pt -> save_partitioned buf pt
      | None -> ())
    (Catalog.partitioned_names catalog);
  Buffer.contents buf

(* Write-to-temp, fsync, rename: a crash at any point leaves either the
   old snapshot or the new one, never a truncated mix. *)
let save ?wal_gen ?epoch ?asof catalog path =
  let content = snapshot_string ?wal_gen ?epoch ?asof catalog in
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Failpoint.write ~site:"snapshot.write" fd (Bytes.of_string content);
      Failpoint.fsync ~site:"snapshot.fsync" fd);
  Failpoint.rename ~site:"snapshot.rename" tmp path

(* --- Loading ------------------------------------------------------------- *)

(* Abstract line source, so the same loader serves both on-disk
   snapshots and snapshot payloads received over the wire. *)
type reader = { next : unit -> string option; mutable line_no : int }

let reader_of_channel ic =
  { next = (fun () -> try Some (input_line ic) with End_of_file -> None);
    line_no = 0 }

let reader_of_string s =
  let pos = ref 0 in
  let next () =
    if !pos >= String.length s then None
    else begin
      let nl =
        match String.index_from_opt s !pos '\n' with
        | Some nl -> nl
        | None -> String.length s
      in
      let line = String.sub s !pos (nl - !pos) in
      pos := nl + 1;
      Some line
    end
  in
  { next; line_no = 0 }

let read_line_opt r =
  match r.next () with
  | Some line ->
    r.line_no <- r.line_no + 1;
    Some line
  | None -> None

let read_line_exn r what =
  match read_line_opt r with
  | Some line -> line
  | None -> format_error "unexpected end of file (expected %s)" what

let parse_type ty param =
  if String.length ty > 4 && String.sub ty 0 4 = "EXT:" then
    Schema.T_ext (String.sub ty 4 (String.length ty - 4))
  else begin
    match ty with
    | "INT" -> Schema.T_int
    | "FLOAT" -> Schema.T_float
    | "BOOLEAN" -> Schema.T_bool
    | "TEXT" -> Schema.T_char None
    | "CHAR" -> Schema.T_char (Some (int_cell param))
    | "DATE" -> Schema.T_date
    | _ -> format_error "unknown stored type %s" ty
  end

let parse_column_line line =
  match String.split_on_char ' ' line with
  | [ "column"; name; ty; param; not_null; pk ] ->
    let ty = parse_type ty param in
    Schema.make_column ~not_null:(not_null = "1") ~primary_key:(pk = "1") name
      ty
  | _ -> format_error "bad column line %S" line

let split_words line = String.split_on_char ' ' line

let parse_row types cells =
  if Array.length cells <> Array.length types then
    format_error "row arity mismatch: expected %d cells, got %d"
      (Array.length types) (Array.length cells);
  Array.mapi (fun i cell -> parse_value types.(i) cell) cells

let load_table r catalog first_line =
  let table_name =
    match split_words first_line with
    | [ "table"; name ] -> name
    | _ -> format_error "expected table header, got %S" first_line
  in
  (* Columns, then optional index lines, then rows. *)
  let columns = ref [] in
  let index_specs = ref [] in
  let with_line f =
    match f () with
    | v -> v
    | exception Format_error msg -> format_error "line %d: %s" r.line_no msg
  in
  let rec header () =
    let line = read_line_exn r "column/index/rows" in
    match split_words line with
    | "column" :: _ ->
      columns := with_line (fun () -> parse_column_line line) :: !columns;
      header ()
    | [ "index"; idx_name; col; kind; unique ] ->
      index_specs := (idx_name, col, kind, unique = "1") :: !index_specs;
      header ()
    | [ "rows"; n ] ->
      with_line (fun () ->
          match int_of_string n with
          | n -> n
          | exception Failure _ -> format_error "bad row count %S" n)
    | _ -> format_error "bad header line at line %d: %S" r.line_no line
  in
  let n_rows = header () in
  let schema = Schema.make ~table_name (List.rev !columns) in
  let table = Catalog.create_table catalog schema in
  let types = Array.map (fun c -> c.Schema.ty) schema.Schema.columns in
  for _ = 1 to n_rows do
    let line = read_line_exn r "row" in
    let cells = Array.of_list (String.split_on_char '\t' line) in
    let row = with_line (fun () -> parse_row types cells) in
    ignore (Table.insert table row)
  done;
  (match read_line_exn r "end" with
  | "end" -> ()
  | line -> format_error "expected end at line %d, got %S" r.line_no line);
  (* Recreate secondary indexes (the pkey index already exists). *)
  List.iter
    (fun (idx_name, col, kind, unique) ->
      if Table.find_index table idx_name = None then begin
        let kind =
          match kind with
          | "ordered" -> Table.Ordered
          | "interval" -> Table.Interval
          | k -> format_error "unknown index kind %s" k
        in
        ignore (Catalog.create_index catalog ~idx_name ~table_name ~column:col
                  ~unique ~kind)
      end)
    (List.rev !index_specs)

(* A "partitioned <parent> <column>" block: part lines, then "end".
   The children were reloaded as ordinary tables above, so the spec
   links straight to them (rebuilding pruning watermarks from rows). *)
let load_partitioned r catalog ~parent ~column =
  let rec parts acc =
    let line = read_line_exn r "part/end" in
    match split_words line with
    | [ "end" ] -> List.rev acc
    | [ "part"; name; "default" ] -> parts ((name, None) :: acc)
    | [ "part"; name; f; t ] ->
      parts ((name, Some (int_cell f, int_cell t)) :: acc)
    | _ -> format_error "bad partition line at line %d: %S" r.line_no line
  in
  let parts = parts [] in
  let first_child =
    match parts with
    | (pname, _) :: _ -> Partition.child_name parent pname
    | [] -> format_error "partitioned table %s declares no partitions" parent
  in
  let child =
    match Catalog.find_table catalog first_child with
    | Some t -> t
    | None -> format_error "missing partition child table %s" first_child
  in
  let schema =
    Schema.make ~table_name:parent
      (Array.to_list (Table.schema child).Schema.columns)
  in
  match Catalog.link_partitioned catalog ~name:parent ~schema ~column ~parts with
  | _ -> ()
  | exception (Partition.Partition_error msg | Catalog.Catalog_error msg) ->
    format_error "partitioned table %s: %s" parent msg

type meta = {
  m_wal_gen : int option; (* the walgen line, when present *)
  m_epoch : int; (* promotion epoch (0 for pre-HA snapshots) *)
  m_asof : int option; (* instant of the newest commit folded in *)
}

let load_from r =
  (match read_line_opt r with
  | Some "tipdb 1" -> ()
  | Some line -> format_error "bad magic %S" line
  | None -> format_error "empty file");
  let catalog = Catalog.create () in
  let wal_gen = ref None in
  let epoch = ref 0 in
  let asof = ref None in
  let rec tables () =
    match read_line_opt r with
    | None -> ()
    | Some "" -> tables ()
    | Some line -> (
      match split_words line with
      | [ "walgen"; g ] ->
        wal_gen := Some (int_cell g);
        tables ()
      | [ "epoch"; e ] ->
        epoch := int_cell e;
        tables ()
      | [ "asof"; a ] ->
        asof := Some (int_cell a);
        tables ()
      | [ "partitioned"; parent; column ] ->
        load_partitioned r catalog ~parent ~column;
        tables ()
      | _ ->
        load_table r catalog line;
        tables ())
  in
  tables ();
  (catalog, { m_wal_gen = !wal_gen; m_epoch = !epoch; m_asof = !asof })

let load_meta path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> load_from (reader_of_channel ic))

let load_full path =
  let catalog, meta = load_meta path in
  (catalog, meta.m_wal_gen)

let load path = fst (load_meta path)
let load_string s = load_from (reader_of_string s)
