(** Deterministic fault injection for the durability path.

    All durability I/O (WAL appends, snapshot writes, fsyncs, renames)
    is routed through the wrappers below, each tagged with a site name.
    Arming a site makes its k-th invocation misbehave: crash (raise
    {!Crash}, standing for the process dying), write a prefix and then
    crash (a torn write), flip one bit (media corruption), or raise a
    plain [Failure] (an unexpected software error).

    Sites can also be armed from the environment:
    [TIP_FAILPOINTS="wal.write:3:crash,wal.write:5:shortwrite=7"].

    Armed sites and counters are global mutable state; tests call
    {!reset} between cases. With nothing armed the wrappers reduce to
    plain I/O and the per-site counters are not even maintained. *)

exception Crash of string

type action =
  | Crash_now  (** raise {!Crash} instead of performing the I/O *)
  | Short_write of int  (** write only the first N bytes, then crash *)
  | Bit_flip of int  (** flip bit N (mod payload size), then continue *)
  | Fail of string  (** raise [Failure msg] — a generic software fault *)
  | Drop  (** stream sites: swallow the payload, sever the link *)
  | Delay of float  (** stream sites: sleep this long before delivering *)

(** Arms [site] so that its [hit]-th invocation (1-based) performs
    [action]. Multiple arms may target the same site. *)
val arm : site:string -> hit:int -> action -> unit

(** Disarms everything and zeroes all invocation counters (including
    clauses loaded from TIP_FAILPOINTS). *)
val reset : unit -> unit

(** Whether any failpoint is currently armed. *)
val active : unit -> bool

(** A control-flow-only site: honours [Crash_now] and [Fail]. *)
val hit : site:string -> unit -> unit

(** Writes the whole buffer to [fd] (short writes are retried), subject
    to the failpoint armed at [site]. *)
val write : site:string -> Unix.file_descr -> Bytes.t -> unit

val fsync : site:string -> Unix.file_descr -> unit
val rename : site:string -> string -> string -> unit

(** A replication-stream site. Decides what, if anything, of [payload]
    goes on the wire and whether the connection is killed afterwards:
    returns [(what_to_send, kill_link_after)]. [Drop] yields
    [(None, true)] — the payload is lost and the link severed, so the
    receiver's resume-from-confirmed-offset path engages; [Short_write
    n] ships an n-byte prefix then severs; [Bit_flip] corrupts the
    payload silently and keeps the link up; [Delay s] sleeps then
    delivers intact. TIP_FAILPOINTS actions [drop] and [delay=SECS]
    map to the two stream-only constructors. *)
val stream : site:string -> string -> string option * bool
