(** The append-only write-ahead log (DESIGN.md §8).

    Records are framed as [tipwal <len> <crc32>\n<payload>\n] so a torn
    tail — short header, short payload or CRC mismatch — is always
    distinguishable from a valid record, and replay stops cleanly at the
    last intact frame instead of failing. Cell payloads reuse the
    snapshot round-trip format ({!Persist}), so NOW-relative timestamps
    stay symbolic in the log.

    Each committed statement's records are appended together with a
    trailing {!constructor-Commit} marker in one write; replay applies a
    batch only after reading its marker, so recovery always lands on a
    statement boundary. A leading {!constructor-Generation} frame pairs
    the log with the snapshot of the same generation and lets recovery
    reject a stale log left by a crash mid-checkpoint. *)

(** IEEE 802.3 CRC32 of the whole string. *)
val crc32 : string -> int32

(** Redo records. Cell arrays hold values already serialized through
    {!Persist.serialize_value}; [Delete]/[Update] identify their target
    row by full-row equality (the engine has no stable physical row ids
    across snapshot reload). *)
type record =
  | Generation of { gen : int; epoch : int }
      (** [epoch] is the promotion epoch (DESIGN.md §15): bumped when a
          replica is promoted to primary, so a stale pre-promotion
          stream can be fenced. Pre-HA logs decode as epoch 0. *)
  | Insert of { table : string; cells : string array }
  | Delete of { table : string; cells : string array }
  | Update of {
      table : string;
      old_cells : string array;
      new_cells : string array;
    }
  | Create_table of { table : string; columns : Schema.column list }
  | Create_partitioned of {
      table : string;
      columns : Schema.column list;
      column : string;  (** partition column name *)
      parts : (string * (int * int) option) list;
          (** partition name, [Some (from, to)] chronon range or [None]
              for DEFAULT — the {!Catalog.create_partitioned} shape *)
    }
  | Drop_table of string
  | Create_index of {
      idx_name : string;
      table : string;
      column : string;
      interval : bool;
      unique : bool;
    }
  | Drop_index of string
  | Commit of int option
      (** the commit instant in unix seconds — the transaction time that
          point-in-time recovery stops on. [None] when decoded from a
          pre-HA bare [commit] marker. *)

(** A damaged frame or a record that does not fit the catalog. {!scan}
    never lets it escape; {!apply} raises it. *)
exception Corrupt of string

(** {1 Appending} *)

(** When [commit] makes records crash-proof: [Always] fsyncs every
    commit before returning, [Every_n n] fsyncs every n-th commit,
    [Never] leaves syncing to the OS. *)
type sync_policy = Always | Every_n of int | Never

(** Parses "always", "never" or "every=N" (N > 0). *)
val sync_policy_of_string : string -> sync_policy option

val sync_policy_to_string : sync_policy -> string

type writer

(** Creates (or truncates) the log at [path], stamped with generation
    [gen] (and promotion epoch [epoch], default 0) and fsynced. *)
val create : ?sync:sync_policy -> ?epoch:int -> gen:int -> string -> writer

(** Appends the records plus a commit marker — stamped with the commit
    instant [at] (unix seconds) when given — in one write, then syncs
    per the policy. Under [Always], once this returns the batch survives
    any crash. *)
val commit : ?at:int -> writer -> record list -> unit

(** Records appended since the writer was created or last truncated
    (commit markers included) — the checkpoint trigger. *)
val record_count : writer -> int

(** Bytes written since the writer was created or last truncated — the
    current end-of-log position a replication subscriber resumes from.
    Resets to 0 (then grows past the generation frame) on {!truncate}. *)
val offset : writer -> int

(** Whether an [Every_n] writer is holding commits it has not yet
    fsynced — the tail a clean shutdown or checkpoint must flush. *)
val pending_sync : writer -> bool

(** Empties the log and stamps the new generation (the second half of a
    checkpoint; the snapshot carrying [gen] must already be renamed into
    place). [epoch] bumps the writer's promotion epoch — only a replica
    promotion passes it. *)
val truncate : ?epoch:int -> writer -> gen:int -> unit

(** The promotion epoch stamped into this writer's generation frames. *)
val writer_epoch : writer -> int

(** Forces an fsync regardless of policy. *)
val sync : writer -> unit

(** Closes the fd. Never flushes (appends are unbuffered), so closing
    after a simulated crash does not alter the on-disk state. *)
val close : writer -> unit

(** {1 Reading and replay} *)

type scan = {
  generation : int option;  (** the leading generation frame, if any *)
  epoch : int;  (** its promotion epoch (0 when absent or pre-HA) *)
  batches : record list list;
      (** committed batches, oldest first; each batch ends with its
          {!constructor-Commit} marker so callers can read the commit
          instant *)
  stopped : string option;
      (** why reading stopped before a clean end of file *)
}

(** Reads the whole log, stopping cleanly at the first torn or corrupt
    frame; an uncommitted trailing batch is discarded. Never raises on
    damaged input; a missing file reads as empty. *)
val scan : string -> scan

(** Incrementally parses one frame out of [buf] starting at [pos] —
    the replication receiver's entry point. [`Frame (r, next)] yields
    the record and the position just past its frame; [`Need_more]
    means the buffer holds only a prefix of a frame; [`Corrupt] is
    damage (bad header, CRC mismatch, unparseable payload). Never
    raises. *)
val parse_frame :
  string -> pos:int -> [ `Frame of record * int | `Need_more | `Corrupt of string ]

(** Applies one record to the catalog (replay path — bypasses the
    engine, so history shadow tables are not re-maintained; their
    mutations appear as their own records).
    @raise Corrupt when the record does not fit the catalog. *)
val apply : Catalog.t -> record -> unit

(**/**)

val encode : record -> string
val decode : string -> record
val frame : record -> string
