exception Partition_error of string

let part_error fmt = Format.kasprintf (fun s -> raise (Partition_error s)) fmt

type part = {
  p_name : string;
  p_from : int;
  p_to : int;
  p_default : bool;
  p_table : Table.t;
  p_max_end : int Atomic.t;
  p_scanned : int Atomic.t;
  p_pruned : int Atomic.t;
}

type t = {
  pt_name : string;
  pt_column : int;
  pt_col_name : string;
  pt_schema : Schema.t;
  pt_parts : part array;
}

let lc = String.lowercase_ascii
let child_name parent pname = lc parent ^ "__" ^ lc pname

let make ~name ~schema ~column parts =
  let column = lc column in
  let col_pos =
    match Schema.column_index schema column with
    | Some i -> i
    | None -> part_error "partition column %s does not exist" column
  in
  if parts = [] then part_error "partitioned table %s declares no partitions" name;
  let seen = Hashtbl.create 8 in
  let mk (pname, bounds, table) =
    let pname = lc pname in
    if Hashtbl.mem seen pname then
      part_error "duplicate partition name %s" pname;
    Hashtbl.add seen pname ();
    let p_from, p_to, p_default =
      match bounds with
      | Some (f, t) ->
        if f >= t then
          part_error "partition %s: FROM bound must precede TO bound" pname;
        (f, t, false)
      | None -> (min_int, max_int, true)
    in
    { p_name = pname; p_from; p_to; p_default; p_table = table;
      p_max_end = Atomic.make min_int;
      p_scanned = Atomic.make 0;
      p_pruned = Atomic.make 0 }
  in
  let parts = List.map mk parts in
  (match List.filter (fun p -> p.p_default) parts with
  | [] | [ _ ] -> ()
  | _ -> part_error "at most one DEFAULT partition is allowed");
  let ranges = List.filter (fun p -> not p.p_default) parts in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j && a.p_from < b.p_to && b.p_from < a.p_to then
            part_error "partitions %s and %s overlap" a.p_name b.p_name)
        ranges)
    ranges;
  { pt_name = lc name; pt_column = col_pos; pt_col_name = column;
    pt_schema = schema; pt_parts = Array.of_list parts }

let default_part t =
  Array.find_opt (fun p -> p.p_default) t.pt_parts

let route t row =
  let v = row.(t.pt_column) in
  let to_default why =
    match default_part t with
    | Some p -> p
    | None ->
      part_error "no DEFAULT partition in %s for %s row" t.pt_name why
  in
  match Value.extent v with
  | None -> to_default "a NULL-period"
  | Some (lo, _) when lo = min_int -> to_default "an unbounded-start"
  | Some (lo, _) -> (
    match
      Array.find_opt
        (fun p -> (not p.p_default) && p.p_from <= lo && lo < p.p_to)
        t.pt_parts
    with
    | Some p -> p
    | None ->
      to_default
        (Printf.sprintf "an out-of-range (start %s)"
           (Tip_core.Chronon.to_string (Tip_core.Chronon.of_unix_seconds lo))))

(* Monotone max: losing a CAS race just means retrying against a larger
   current value, so the watermark can only grow. *)
let rec bump a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then bump a v

let note_row part t row =
  match Value.extent row.(t.pt_column) with
  | Some (_, hi) -> bump part.p_max_end hi
  | None -> ()

let rebuild_watermark t part =
  Atomic.set part.p_max_end min_int;
  Table.iteri (fun _ row -> note_row part t row) part.p_table

let prune t ~lo ~hi =
  let kept = ref [] and pruned = ref 0 in
  Array.iter
    (fun p ->
      (* A row in [p] starts in [p_from, p_to) (unbounded for DEFAULT)
         and ends at or below the watermark, so it can only overlap the
         probe when the start range begins by [hi] and the watermark
         reaches [lo]. *)
      let start_possible = p.p_default || p.p_from <= hi in
      let end_possible = Atomic.get p.p_max_end >= lo in
      if start_possible && end_possible then begin
        Atomic.incr p.p_scanned;
        kept := p :: !kept
      end
      else begin
        Atomic.incr p.p_pruned;
        incr pruned
      end)
    t.pt_parts;
  (List.rev !kept, !pruned)

let all_parts t = Array.to_list t.pt_parts

let bound_to_string b =
  if b = min_int then "-infinity"
  else if b = max_int then "infinity"
  else Tip_core.Chronon.to_string (Tip_core.Chronon.of_unix_seconds b)
