bin/tip_serve.ml: Arg Cmd Cmdliner Option Printf Sys Term Tip_blade Tip_engine Tip_server Tip_storage Tip_workload
