bin/tip_serve.mli:
