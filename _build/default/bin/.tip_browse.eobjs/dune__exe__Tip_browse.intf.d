bin/tip_browse.mli:
