bin/tip_browse.ml: Arg Cmd Cmdliner List Option Printf String Term Tip_blade Tip_browser Tip_client Tip_core Tip_engine Tip_storage Tip_workload
