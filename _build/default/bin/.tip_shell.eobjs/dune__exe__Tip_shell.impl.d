bin/tip_shell.ml: Arg Buffer Cmd Cmdliner List Logs Option Printf String Term Tip_blade Tip_core Tip_engine Tip_server Tip_sql Tip_storage Tip_workload
