bin/tip_shell.mli:
