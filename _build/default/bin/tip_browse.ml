(* tip_browse: the TIP Browser from the paper's Figure 2, as a CLI.

   Renders a query result with a timeline column, highlights tuples valid
   in the current window, and can sweep the window along the time line
   (the slider) or re-evaluate under a different NOW (what-if).

   Examples:
     tip_browse --demo
     tip_browse --demo --query "SELECT * FROM Prescription" --column valid
     tip_browse --demo --frames 5
     tip_browse --demo --now 1999-09-26
     tip_browse --load db.snapshot --query "..." --column valid *)

let rec main demo load query column now frames width from_ until interactive =
  let db =
    match demo, load with
    | true, _ -> Tip_workload.Medical.demo_database ()
    | false, Some file ->
      Tip_blade.Values.register_types ();
      let catalog = Tip_storage.Persist.load file in
      let db = Tip_engine.Database.create ~catalog () in
      Tip_blade.Blade.install db;
      db
    | false, None ->
      prerr_endline "tip_browse: need --demo or --load FILE";
      exit 1
  in
  let conn = Tip_client.Connection.connect_to db in
  (match now with
  | Some d -> (
    match Tip_core.Chronon.of_string d with
    | Some c -> Tip_client.Connection.set_now conn c
    | None ->
      prerr_endline ("tip_browse: bad --now date " ^ d);
      exit 1)
  | None -> ());
  let sql = Option.value query ~default:"SELECT * FROM Prescription" in
  let browser =
    Tip_browser.Browser.open_query ~strip_width:width conn ~sql
      ~time_column:column
  in
  (match from_, until with
  | Some f, Some u -> (
    match Tip_core.Chronon.of_string f, Tip_core.Chronon.of_string u with
    | Some f, Some u ->
      Tip_browser.Browser.set_window browser
        (Tip_browser.Timeline.make_window ~from_:f ~until:u)
    | _, _ ->
      prerr_endline "tip_browse: bad --from/--until date";
      exit 1)
  | Some _, None | None, Some _ ->
    prerr_endline "tip_browse: --from and --until go together";
    exit 1
  | None, None -> ());
  if interactive then interact browser
  else if frames <= 1 then print_string (Tip_browser.Browser.render browser)
  else
    List.iteri
      (fun i frame ->
        Printf.printf "--- frame %d ---\n%s\n" (i + 1) frame)
      (Tip_browser.Browser.sweep browser ~frames)

(* Keyboard-driven session: the slider and the NOW entry field of the
   original GUI, driven by one-line commands. *)
and interact browser =
  let help () =
    print_endline
      "commands: l/r slide left/right | + / - zoom in/out | fit | \
       now DATE | reset | q"
  in
  help ();
  let rec loop () =
    print_string (Tip_browser.Browser.render browser);
    print_string "browse> ";
    flush stdout;
    match input_line stdin with
    | exception End_of_file -> ()
    | line -> (
      match String.split_on_char ' ' (String.trim line)
            |> List.filter (fun s -> s <> "")
      with
      | [ "q" ] | [ "quit" ] -> ()
      | [ "l" ] ->
        Tip_browser.Browser.slide browser (-1);
        loop ()
      | [ "r" ] ->
        Tip_browser.Browser.slide browser 1;
        loop ()
      | [ "+" ] ->
        Tip_browser.Browser.zoom browser 0.5;
        loop ()
      | [ "-" ] ->
        Tip_browser.Browser.zoom browser 2.0;
        loop ()
      | [ "fit" ] ->
        Tip_browser.Browser.set_window browser
          (Tip_browser.Browser.fit_window browser);
        loop ()
      | [ "now"; date ] -> (
        (match Tip_core.Chronon.of_string date with
        | Some c -> Tip_browser.Browser.set_now browser c
        | None -> Printf.printf "bad date %s\n" date);
        loop ())
      | [ "reset" ] ->
        Tip_browser.Browser.reset_now browser;
        loop ()
      | [] -> loop ()
      | _ ->
        help ();
        loop ())
  in
  loop ()

let () =
  let open Cmdliner in
  let demo = Arg.(value & flag & info [ "demo" ] ~doc:"Browse the medical demo.") in
  let load =
    Arg.(value & opt (some string) None & info [ "load" ] ~docv:"FILE"
           ~doc:"Load a database snapshot.")
  in
  let query =
    Arg.(value & opt (some string) None & info [ "query" ] ~docv:"SQL"
           ~doc:"Query whose result to browse (default: the Prescription table).")
  in
  let column =
    Arg.(value & opt string "valid" & info [ "column" ] ~docv:"NAME"
           ~doc:"Temporal attribute to browse by.")
  in
  let now =
    Arg.(value & opt (some string) None & info [ "now" ] ~docv:"DATE"
           ~doc:"Evaluate under this NOW (what-if analysis).")
  in
  let frames =
    Arg.(value & opt int 1 & info [ "frames" ] ~docv:"N"
           ~doc:"Render N frames while sliding the window right.")
  in
  let width =
    Arg.(value & opt int 48 & info [ "width" ] ~docv:"CHARS"
           ~doc:"Timeline strip width.")
  in
  let from_ =
    Arg.(value & opt (some string) None & info [ "from" ] ~docv:"DATE"
           ~doc:"Window start (with --until).")
  in
  let until =
    Arg.(value & opt (some string) None & info [ "until" ] ~docv:"DATE"
           ~doc:"Window end (with --from).")
  in
  let interactive =
    Arg.(value & flag & info [ "interactive"; "i" ]
           ~doc:"Interactive session: slide, zoom and override NOW from the keyboard.")
  in
  let term =
    Term.(const main $ demo $ load $ query $ column $ now $ frames $ width
          $ from_ $ until $ interactive)
  in
  let info = Cmd.info "tip_browse" ~doc:"Browse temporal data on a timeline" in
  exit (Cmd.eval (Cmd.v info term))
