(* Quickstart: create a TIP-enabled database, store temporal data, query it.

   Run with: dune exec examples/quickstart.exe *)

module Db = Tip_engine.Database

let run db sql =
  Printf.printf "tip> %s\n%s\n\n" sql (Db.render_result (Db.exec db sql))

let () =
  (* A fresh embedded database with the TIP DataBlade installed: the five
     temporal datatypes and their routines are now part of SQL. *)
  let db = Tip_blade.Blade.create_database () in

  (* Freeze NOW so the output is reproducible (and to show off what-if). *)
  run db "SET NOW = '1999-10-15'";

  (* Chronon = a point in time, Span = a duration, Element = a set of
     periods; string literals cast automatically. *)
  run db
    "CREATE TABLE project (name CHAR(20) PRIMARY KEY, kickoff Chronon, \
     standup_every Span, staffed Element)";
  run db
    "INSERT INTO project VALUES ('tip', '1999-01-11 09:30:00', '1', \
     '{[1999-01-11, 1999-06-30], [1999-09-01, NOW]}'), ('warehouse', \
     '1999-05-03', '7', '{[1999-05-03, NOW]}')";

  (* Temporal queries are plain SQL plus TIP routines. *)
  run db "SELECT name, length(staffed)::INT / 86400 AS days_staffed FROM project";
  run db
    "SELECT name FROM project WHERE contains(staffed, '1999-05-15'::Chronon)";
  run db
    "SELECT p1.name, p2.name, intersect(p1.staffed, p2.staffed) FROM \
     project p1, project p2 WHERE p1.name < p2.name AND \
     overlaps(p1.staffed, p2.staffed)";

  (* NOW-relative data answers differently as time advances. *)
  run db "SELECT name FROM project WHERE contains(staffed, now())";
  run db "SET NOW = '1999-08-01'";
  run db "SELECT name FROM project WHERE contains(staffed, now())";

  print_endline "Done. Try `dune exec bin/tip_shell.exe -- --demo` next."
