(* Temporal analytics over the synthetic medical database: profiles
   (per-instant aggregation) and granularities — the machinery built for
   E12/E13 doing real analytical work on a generated workload.

   Run with: dune exec examples/temporal_analytics.exe *)

open Tip_core
module Db = Tip_engine.Database

let run db sql =
  Printf.printf "tip> %s\n%s\n\n" sql (Db.render_result (Db.exec db sql))

let () =
  let db = Tip_blade.Blade.create_database () in
  ignore (Db.exec db "SET NOW = '2001-06-01'");
  let data =
    Tip_workload.Medical.generate ~seed:2024 ~patients:40 ~prescriptions:300 ()
  in
  Tx_clock.with_override (Chronon.of_ymd 2001 6 1) (fun () ->
      Tip_workload.Medical.load_native db data);
  Printf.printf
    "A generated hospital workload: 300 prescriptions over 40 patients,\n\
     1995-2000. Questions a pharmacy planner would ask:\n\n";

  print_endline "--- Peak load: how many prescriptions ran at once? ---\n";
  run db
    "SELECT max_value(group_profile(valid)) AS peak, \
     start(argmax(group_profile(valid))) AS peak_starts FROM Prescription";

  print_endline "--- Which patients ever overlapped 4+ prescriptions? ---\n";
  run db
    "SELECT patient, max_value(group_profile(valid)) AS peak FROM \
     Prescription GROUP BY patient HAVING max_value(group_profile(valid)) >= 4 \
     ORDER BY 2 DESC, patient LIMIT 8";

  print_endline
    "--- Time under heavy load (3+ simultaneous), per drug ---\n";
  run db
    "SELECT drug, length(at_least(group_profile(valid), 3))::INT / 86400 \
     AS heavy_days FROM Prescription GROUP BY drug \
     ORDER BY 2 DESC LIMIT 5";

  print_endline "--- Month-level reporting via granularities ---\n";
  run db
    "SELECT trunc(start(valid), 'month')::CHAR AS month_start, COUNT(*) \
     FROM Prescription WHERE year(start(valid)) = 1997 \
     GROUP BY trunc(start(valid), 'month') ORDER BY 1 LIMIT 6";

  print_endline
    "--- Billing months: prescriptions scaled to whole months ---\n";
  run db
    "SELECT patient, length(scale(group_union(valid), 'month'))::INT / 86400 \
     AS billed_days, length(group_union(valid))::INT / 86400 AS actual_days \
     FROM Prescription GROUP BY patient ORDER BY patient LIMIT 6";

  print_endline "--- Prescription age distribution, in whole weeks ---\n";
  run db
    "SELECT granules_between(start(valid), finish(valid), 'week') AS weeks, \
     COUNT(*) FROM Prescription GROUP BY granules_between(start(valid), \
     finish(valid), 'week') ORDER BY 1 LIMIT 8"
