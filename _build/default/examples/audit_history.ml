(* Transaction time via the DataBlade: WITH HISTORY tables and AS OF
   queries.

   The paper handles valid time (when facts are true in the world); its
   NOW machinery also enables transaction time (when facts were current
   in the database) — the other TSQL2 axis. Here the engine maintains an
   audit shadow table through the blade's Element timestamps: every row
   carries {[t_inserted, NOW]}, clipped when it stops being current, and
   [FROM t AS OF '...'] time-travels.

   Run with: dune exec examples/audit_history.exe *)

module Db = Tip_engine.Database

let run db sql =
  Printf.printf "tip> %s\n%s\n\n" sql (Db.render_result (Db.exec db sql))

let quiet db sql = ignore (Db.exec db sql)

let () =
  let db = Tip_blade.Blade.create_database () in

  print_endline "A staffing table with transaction-time history:\n";
  quiet db "SET NOW = '1999-01-04'";
  run db "CREATE TABLE staff (name CHAR(20), role CHAR(20)) WITH HISTORY";
  run db "INSERT INTO staff VALUES ('ada', 'engineer')";
  quiet db "SET NOW = '1999-03-01'";
  run db "INSERT INTO staff VALUES ('grace', 'admiral')";
  quiet db "SET NOW = '1999-06-15'";
  run db "UPDATE staff SET role = 'manager' WHERE name = 'ada'";
  quiet db "SET NOW = '1999-09-30'";
  run db "DELETE FROM staff WHERE name = 'grace'";
  quiet db "SET NOW = '1999-12-01'";

  print_endline "--- Time travel with AS OF ---\n";
  run db "SELECT name, role FROM staff AS OF '1999-04-01' ORDER BY name";
  run db "SELECT name, role FROM staff AS OF '1999-08-01' ORDER BY name";
  run db "SELECT name, role FROM staff ORDER BY name";

  print_endline "--- Comparing two instants in one query ---\n";
  run db
    "SELECT a.name, a.role AS was, b.role AS became FROM staff AS OF \
     '1999-04-01' a, staff AS OF '1999-08-01' b WHERE a.name = b.name AND \
     a.role <> b.role";

  print_endline
    "--- The audit log is a plain table with Element timestamps ---\n";
  run db "SELECT name, role, _tt FROM staff_history ORDER BY name, start(_tt)";
  run db
    "SELECT name, length(group_union(_tt))::INT / 86400 AS days_on_books \
     FROM staff_history GROUP BY name ORDER BY name";

  print_endline
    "Note how the two temporal dimensions compose: _tt is an ordinary\n\
     Element, so every TIP routine (coalescing, Allen operators, the\n\
     browser) works on the audit log too."
