(* NOW semantics (experiment E7): the same query over unchanged data
   returns different answers at different times, and SET NOW lets a user
   evaluate queries in a temporal context different from the present.

   Run with: dune exec examples/whatif_now.exe *)

module Db = Tip_engine.Database

let () =
  let db = Tip_workload.Medical.demo_database () in
  let current_meds =
    "SELECT patient, drug FROM Prescription WHERE contains(valid, now()) \
     ORDER BY patient, drug"
  in
  let under_30_days =
    "SELECT patient FROM Prescription WHERE patientdob > 'NOW-30' \
     ORDER BY patient"
  in
  let ask now =
    ignore (Db.exec db (Printf.sprintf "SET NOW = '%s'" now));
    Printf.printf "\n--- evaluated as of %s ---\n" now;
    Printf.printf "Currently prescribed:\n%s\n"
      (Db.render_result (Db.exec db current_meds));
    Printf.printf "Patients under 30 days old:\n%s\n"
      (Db.render_result (Db.exec db under_30_days))
  in
  Printf.printf "Query 1: %s\n" current_meds;
  Printf.printf "Query 2: %s\n" under_30_days;
  Printf.printf
    "\nThe data never changes below — only NOW does. Diabeta's timestamp is \
     {[1999-10-01, NOW]},\nso it stays current forever; fixed periods drift \
     into the past; 'NOW-30' tracks the clock.\n";
  List.iter ask
    [ "1999-09-22"; "1999-10-03"; "1999-10-15"; "1999-12-01"; "2001-01-01" ];
  (* Length of a NOW-relative element grows with time. *)
  let growth =
    "SELECT length(valid)::INT / 86400 AS days_on_diabeta FROM Prescription \
     WHERE drug = 'Diabeta'"
  in
  Printf.printf "\nQuery 3: %s\n" growth;
  List.iter
    (fun now ->
      ignore (Db.exec db (Printf.sprintf "SET NOW = '%s'" now));
      match Db.rows_exn (Db.exec db growth) with
      | [ [| v |] ] ->
        Printf.printf "  as of %s: %s days\n" now
          (Tip_storage.Value.to_display_string v)
      | _ -> ())
    [ "1999-10-02"; "1999-10-15"; "2000-01-01"; "2000-10-01" ]
