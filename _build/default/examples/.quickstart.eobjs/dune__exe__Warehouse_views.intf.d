examples/warehouse_views.mli:
