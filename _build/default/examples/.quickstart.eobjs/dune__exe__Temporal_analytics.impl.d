examples/temporal_analytics.ml: Chronon Printf Tip_blade Tip_core Tip_engine Tip_workload Tx_clock
