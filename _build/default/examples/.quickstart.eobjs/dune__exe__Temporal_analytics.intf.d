examples/temporal_analytics.mli:
