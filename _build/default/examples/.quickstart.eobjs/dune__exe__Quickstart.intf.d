examples/quickstart.mli:
