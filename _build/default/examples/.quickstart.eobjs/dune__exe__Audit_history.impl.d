examples/audit_history.ml: Printf Tip_blade Tip_engine
