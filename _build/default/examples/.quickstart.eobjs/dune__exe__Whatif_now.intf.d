examples/whatif_now.mli:
