examples/audit_history.mli:
