examples/medical_demo.ml: List Printf Tip_browser Tip_client Tip_core Tip_engine Tip_storage Tip_workload
