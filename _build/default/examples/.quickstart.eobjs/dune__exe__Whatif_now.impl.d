examples/whatif_now.ml: List Printf Tip_engine Tip_storage Tip_workload
