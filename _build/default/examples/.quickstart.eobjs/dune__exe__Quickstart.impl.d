examples/quickstart.ml: Printf Tip_blade Tip_engine
