examples/tsql2_layer.mli:
