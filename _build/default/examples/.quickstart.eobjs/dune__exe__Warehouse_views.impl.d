examples/warehouse_views.ml: Chronon List Printf Tip_blade Tip_core Tip_engine Tip_workload
