examples/medical_demo.mli:
