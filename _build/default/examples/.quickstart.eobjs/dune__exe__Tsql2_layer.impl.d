examples/tsql2_layer.ml: Printf Tip_engine Tip_tsql2 Tip_workload
