(* Temporal view maintenance (experiment E9): the data-warehousing
   application from Yang & Widom that motivated TIP.

   A non-temporal source tracks who works in which department *now*. The
   warehouse maintains a temporal view with a full validity history,
   updated incrementally — one TIP SQL statement per source change —
   instead of being recomputed from the event log.

   Run with: dune exec examples/warehouse_views.exe *)

open Tip_core
module Db = Tip_engine.Database
module W = Tip_workload.Warehouse

let () =
  let db = Tip_blade.Blade.create_database () in
  W.setup db;

  (* A small hand-written history so the output reads naturally. *)
  let day y m d = Chronon.of_ymd y m d in
  let events =
    [ { W.at = day 1998 1 5; emp = "ada"; dept = "eng"; op = W.Assign };
      { W.at = day 1998 3 1; emp = "grace"; dept = "ops"; op = W.Assign };
      { W.at = day 1998 9 30; emp = "ada"; dept = "eng"; op = W.Revoke };
      { W.at = day 1999 1 4; emp = "ada"; dept = "eng"; op = W.Assign };
      { W.at = day 1999 6 1; emp = "grace"; dept = "ops"; op = W.Revoke };
      { W.at = day 1999 6 2; emp = "grace"; dept = "eng"; op = W.Assign } ]
  in
  print_endline "Source changes (a non-temporal current-state relation):";
  List.iter
    (fun ev ->
      Printf.printf "  %s  %-6s %s %s\n"
        (Chronon.to_string ev.W.at)
        ev.W.emp
        (match ev.W.op with W.Assign -> "joins " | W.Revoke -> "leaves")
        ev.W.dept)
    events;

  print_endline
    "\nEach change is propagated with one TIP statement, e.g.\n  UPDATE \
     assignment_history SET valid = union(valid, '{[t, NOW]}') ...\n";
  W.apply_all db events;

  ignore (Db.exec db "SET NOW = '1999-10-15'");
  print_endline "Warehouse view as of 1999-10-15:";
  print_endline
    (Db.render_result
       (Db.exec db "SELECT emp, dept, valid FROM assignment_history ORDER BY emp, dept"));

  (* The view answers temporal questions the source cannot. *)
  List.iter
    (fun sql ->
      Printf.printf "\ntip> %s\n%s\n" sql (Db.render_result (Db.exec db sql)))
    [ "SELECT emp FROM assignment_history WHERE dept = 'eng' AND \
       contains(valid, '1998-06-01'::Chronon)";
      "SELECT emp, length(group_union(valid))::INT / 86400 AS days_employed \
       FROM assignment_history GROUP BY emp";
      "SELECT h1.emp, h2.emp, intersect(h1.valid, h2.valid) FROM \
       assignment_history h1, assignment_history h2 WHERE h1.dept = 'eng' \
       AND h2.dept = 'eng' AND h1.emp < h2.emp AND overlaps(h1.valid, h2.valid)" ];

  (* Cross-check against recomputation from the log. *)
  let now = Chronon.of_ymd 1999 10 15 in
  let incremental = W.view_of_db db ~now in
  let recomputed = W.recompute events ~now in
  Printf.printf "\nIncremental view equals recomputation from the log: %b\n"
    (incremental = recomputed)
