(* The paper's future work, made executable: "we will investigate how
   closely TIP can approach a full-featured temporal query language like
   TSQL2 in expressive power".

   This example runs TSQL2-flavored queries through the Tsql2 layer,
   which translates them into plain TIP SQL — the sequenced semantics
   (join only while simultaneously valid; carry the intersected
   timestamp) come for free from TIP routines.

   Run with: dune exec examples/tsql2_layer.exe *)

module Db = Tip_engine.Database
module T = Tip_tsql2.Tsql2

let run db sql =
  let translated = T.translate sql in
  Printf.printf "tsql2> %s\n  -->  %s\n%s\n\n" sql translated
    (Db.render_result (Db.exec db translated))

let () =
  let db = Tip_workload.Medical.demo_database () in
  print_endline
    "TSQL2-flavored queries over the medical demo (NOW = 1999-10-15).\n";

  (* Sequenced selection: the timestamp column appears automatically. *)
  run db "SELECT patient, drug FROM Prescription p WHERE drug = 'Aspirin'";

  (* The paper's Query 2, TSQL2 style: no explicit overlaps/intersect —
     sequenced join semantics supply both. *)
  run db
    "SELECT p1.patient FROM Prescription p1, Prescription p2 WHERE \
     p1.drug = 'Diabeta' AND p2.drug = 'Aspirin' AND p1.patient = p2.patient";

  (* VALID() in predicates. *)
  run db
    "SELECT patient, drug FROM Prescription p WHERE \
     contains(VALID(p), '1999-10-03'::Chronon)";

  (* SNAPSHOT: TSQL2's non-temporal query. *)
  run db
    "SELECT SNAPSHOT patient, length(group_union(valid))::INT / 86400 AS days \
     FROM Prescription GROUP BY patient ORDER BY patient";

  (* And the measured distance to full TSQL2: *)
  print_endline "Not expressible in the layer (raises Unsupported):";
  (match T.translate "SELECT patient, COUNT(*) FROM Prescription p GROUP BY patient" with
  | exception T.Unsupported msg -> Printf.printf "  sequenced GROUP BY: %s\n" msg
  | _ -> ());
  print_endline
    "\nConclusion (matches the paper's position): selection, projection,\n\
     sequenced joins and snapshot queries translate mechanically onto TIP\n\
     routines; per-instant aggregation is the first construct that would\n\
     need an engine-level temporal grouping operator."
