(* The paper's demonstration, end to end: the synthetic medical database
   of Section 4 and every worked query from Section 2, followed by the
   TIP Browser view of Figure 2.

   Run with: dune exec examples/medical_demo.exe *)

module Db = Tip_engine.Database

let banner title =
  Printf.printf "\n=== %s ===\n" title

let run ?(params = []) db sql =
  Printf.printf "tip> %s\n%s\n" sql (Db.render_result (Db.exec ~params db sql))

let () =
  banner "Setup (Section 2: CREATE TABLE Prescription, verbatim)";
  let db = Tip_workload.Medical.demo_database () in
  Printf.printf "Demo frozen at NOW = 1999-10-15 (the original demo ran in \
                 October 1999).\n";
  run db "DESCRIBE Prescription";
  run db "SELECT doctor, patient, drug, valid FROM Prescription";

  banner "Query 1: Tylenol prescribed under :w weeks of age";
  let tylenol =
    "SELECT patient FROM Prescription WHERE drug = 'Tylenol' AND \
     start(valid) - patientdob < '7 00:00:00'::Span * :w"
  in
  run ~params:[ ("w", Tip_storage.Value.Int 1) ] db tylenol;

  banner "Query 2: who took Diabeta and Aspirin simultaneously, and when";
  run db
    "SELECT p1.patient, p1.drug, p2.drug, intersect(p1.valid, p2.valid) \
     FROM Prescription p1, Prescription p2 WHERE p1.drug = 'Diabeta' AND \
     p2.drug = 'Aspirin' AND p1.patient = p2.patient AND \
     overlaps(p1.valid, p2.valid)";

  banner "Query 3: temporal coalescing with group_union";
  run db
    "SELECT patient, length(group_union(valid))::INT / 86400 AS days \
     FROM Prescription GROUP BY patient ORDER BY patient";
  print_endline
    "Note: SUM(length(valid)) would double-count overlapped periods:";
  run db
    "SELECT patient, SUM(length(valid)::INT) / 86400 AS naive_days FROM \
     Prescription GROUP BY patient ORDER BY patient";

  banner "EXPLAIN: the temporal self-join plan";
  run db
    "EXPLAIN SELECT p1.patient FROM Prescription p1, Prescription p2 WHERE \
     p1.patient = p2.patient AND overlaps(p1.valid, p2.valid)";

  banner "The TIP Browser (Figure 2)";
  let conn = Tip_client.Connection.connect_to db in
  let browser =
    Tip_browser.Browser.open_table conn ~table:"Prescription"
      ~time_column:"valid"
  in
  print_string (Tip_browser.Browser.render browser);

  banner "Sliding the window (the slider beneath the result display)";
  Tip_browser.Browser.set_window browser
    (Tip_browser.Timeline.make_window
       ~from_:(Tip_core.Chronon.of_ymd 1999 9 1)
       ~until:(Tip_core.Chronon.of_ymd 1999 10 15));
  List.iteri
    (fun i frame -> Printf.printf "--- slider position %d ---\n%s" (i + 1) frame)
    (Tip_browser.Browser.sweep browser ~frames:3);

  banner "What-if analysis: override NOW";
  Tip_browser.Browser.set_now browser (Tip_core.Chronon.of_ymd 1999 9 26);
  Printf.printf "As of 1999-09-26:\n%s" (Tip_browser.Browser.render browser)
