(** The TIP Browser, in text form (the paper's Figure 2).

    The user browses a table or query result by any temporal attribute;
    a movable, resizable window lies over the time line; tuples valid in
    the window are highlighted; each tuple's valid periods render as
    timeline segments in the rightmost column; a slider moves the
    window; and NOW can be overridden to evaluate the query in a
    temporal context different from the present (what-if analysis). *)

exception Browser_error of string

type t

(** Runs the query and fits the window to the result's temporal extent.
    [time_column] must name a Chronon/Instant/Period/Element (or DATE)
    output column.
    @raise Browser_error when the column is missing or non-temporal. *)
val open_query :
  ?strip_width:int -> Tip_client.Connection.t -> sql:string ->
  time_column:string -> t

(** [open_query] over [SELECT * FROM table]. *)
val open_table :
  ?strip_width:int -> Tip_client.Connection.t -> table:string ->
  time_column:string -> t

(** Re-runs the query under the connection's current NOW. *)
val refresh : t -> unit

(** {1 Window controls} *)

val window : t -> Timeline.window
val set_window : t -> Timeline.window -> unit

(** The slider: positive steps move right; one step is an eighth of the
    window. *)
val slide : t -> int -> unit

val zoom : t -> float -> unit

(** Refits the window to the (grounded) extent of the current rows. *)
val fit_window : t -> Timeline.window

(** {1 What-if analysis} *)

(** Re-evaluates everything as if NOW were the given chronon. *)
val set_now : t -> Tip_core.Chronon.t -> unit

val reset_now : t -> unit

(** {1 Rendering} *)

(** Is the row's temporal attribute non-empty within the window? *)
val is_valid_in_window : t -> Tip_storage.Value.t array -> bool

val valid_count : t -> int

(** One full screen: header (query, NOW, window, valid count), the
    aligned result table with validity markers and timeline strips, a
    density footer and an axis. *)
val render : t -> string

(** [frames] renders while sliding right one step per frame. *)
val sweep : t -> frames:int -> string list
