(* Timeline strips: fixed-width character renderings of the periods an
   element covers within a window — the ASCII counterpart of the segment
   column on the right of the paper's Figure 2. *)

open Tip_core

type window = { from_ : Chronon.t; until : Chronon.t }

let make_window ~from_ ~until =
  if Chronon.compare from_ until >= 0 then
    invalid_arg "Timeline.make_window: empty window";
  { from_; until }

let window_width w = Chronon.diff w.until w.from_

(* Shifts the window by a span (negative moves left). *)
let shift w span =
  { from_ = Chronon.add w.from_ span; until = Chronon.add w.until span }

(* Scales the window around its center. *)
let zoom w factor =
  if factor <= 0. then invalid_arg "Timeline.zoom: non-positive factor";
  let width = Span.to_seconds (window_width w) in
  let center = Chronon.add w.from_ (Span.of_seconds (width / 2)) in
  let half = Stdlib.max 1 (int_of_float (float_of_int width *. factor /. 2.)) in
  { from_ = Chronon.sub center (Span.of_seconds half);
    until = Chronon.add center (Span.of_seconds half) }

(* The boundaries of cell [i] of [width] cells across the window. *)
let cell_bounds w ~width i =
  let total = Span.to_seconds (window_width w) in
  let lo = Chronon.to_unix_seconds w.from_ + (total * i / width) in
  let hi = Chronon.to_unix_seconds w.from_ + (total * (i + 1) / width) - 1 in
  (lo, Stdlib.max lo hi)

(* Renders the ground periods into a strip of [width] characters:
   ['#'] where the element covers part of the cell, ['.'] elsewhere.
   [?mark] (usually NOW) overlays ['!'] on a covered cell and ['|'] on an
   uncovered one, so the current instant is visible on every row. *)
let strip ?mark ~width ~window ground =
  let buf = Bytes.make width '.' in
  let covers (lo, hi) =
    List.exists
      (fun (s, e) ->
        Chronon.to_unix_seconds s <= hi && lo <= Chronon.to_unix_seconds e)
      ground
  in
  for i = 0 to width - 1 do
    if covers (cell_bounds window ~width i) then Bytes.set buf i '#'
  done;
  (match mark with
  | Some at ->
    let at = Chronon.to_unix_seconds at in
    for i = 0 to width - 1 do
      let lo, hi = cell_bounds window ~width i in
      if lo <= at && at <= hi then
        Bytes.set buf i (if Bytes.get buf i = '#' then '!' else '|')
    done
  | None -> ());
  Bytes.to_string buf

(* Does the element intersect the window at all? *)
let visible ~window ground =
  let wlo = Chronon.to_unix_seconds window.from_ in
  let whi = Chronon.to_unix_seconds window.until in
  List.exists
    (fun (s, e) ->
      Chronon.to_unix_seconds s <= whi && wlo <= Chronon.to_unix_seconds e)
    ground

(* A density footer: per cell, how many of the given elements cover it,
   rendered as a digit ('+' beyond 9). *)
let density ~width ~window grounds =
  let buf = Bytes.make width ' ' in
  for i = 0 to width - 1 do
    let bounds = cell_bounds window ~width i in
    let n =
      List.fold_left
        (fun n ground ->
          let lo, hi = bounds in
          if
            List.exists
              (fun (s, e) ->
                Chronon.to_unix_seconds s <= hi && lo <= Chronon.to_unix_seconds e)
              ground
          then n + 1
          else n)
        0 grounds
    in
    let c =
      if n = 0 then '.'
      else if n <= 9 then Char.chr (Char.code '0' + n)
      else '+'
    in
    Bytes.set buf i c
  done;
  Bytes.to_string buf

(* An axis line with the window's boundary dates. *)
let axis ~width ~window =
  let left = Chronon.to_string window.from_ in
  let right = Chronon.to_string window.until in
  let pad = width - String.length left - String.length right in
  if pad >= 1 then left ^ String.make pad ' ' ^ right
  else left ^ " .. " ^ right
