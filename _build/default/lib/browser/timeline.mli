(** Timeline strips: fixed-width character renderings of the periods an
    element covers within a window — the ASCII counterpart of the segment
    column on the right of the paper's Figure 2. *)

open Tip_core

(** A half-open view [from_, until] over the time line. *)
type window = { from_ : Chronon.t; until : Chronon.t }

(** @raise Invalid_argument when [from_ >= until]. *)
val make_window : from_:Chronon.t -> until:Chronon.t -> window

val window_width : window -> Span.t

(** Shifts the window (negative spans move left). *)
val shift : window -> Span.t -> window

(** Scales the window around its center; factor > 0. *)
val zoom : window -> float -> window

(** Renders ground periods into [width] characters: ['#'] where covered,
    ['.'] elsewhere. [?mark] (usually NOW) overlays ['!'] on a covered
    cell and ['|'] on an uncovered one. *)
val strip :
  ?mark:Chronon.t -> width:int -> window:window -> Period.ground list -> string

(** Does the element intersect the window at all? *)
val visible : window:window -> Period.ground list -> bool

(** Per-cell count of covering elements, as digits (['+'] beyond 9) —
    the "distribution of result tuples over time". *)
val density : width:int -> window:window -> Period.ground list list -> string

(** An axis line labelled with the window's boundary dates. *)
val axis : width:int -> window:window -> string

(**/**)

val cell_bounds : window -> width:int -> int -> int * int
