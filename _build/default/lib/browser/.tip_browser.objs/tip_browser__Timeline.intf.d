lib/browser/timeline.mli: Chronon Period Span Tip_core
