lib/browser/timeline.ml: Bytes Char Chronon List Span Stdlib String Tip_core
