lib/browser/browser.ml: Array Buffer Chronon Element Format List Printf Span Stdlib String Timeline Tip_blade Tip_client Tip_core Tip_engine Tip_storage Tx_clock Value
