lib/browser/browser.mli: Timeline Tip_client Tip_core Tip_storage
