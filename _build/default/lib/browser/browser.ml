(* The TIP Browser, in text form.

   Reproduces the observable behaviour of the paper's Figure 2: the user
   browses a table or query result by any attribute of type Chronon,
   Instant, Period or Element; a time window of adjustable size and
   position lies over the time line; tuples valid in the window are
   highlighted; each tuple's valid periods are drawn as segments of the
   time line in the rightmost column; a slider moves the window; and the
   user may enter a different value for NOW to evaluate the query in a
   temporal context different from the present (what-if analysis). *)

open Tip_core
open Tip_storage
module Db = Tip_engine.Database

exception Browser_error of string

let browser_error fmt = Format.kasprintf (fun s -> raise (Browser_error s)) fmt

type t = {
  conn : Tip_client.Connection.t;
  sql : string;
  time_column : string;
  mutable names : string array;
  mutable rows : Value.t array array;
  mutable time_index : int;
  mutable window : Timeline.window;
  mutable strip_width : int;
}

(* Re-runs the query under the connection's current NOW. *)
let refresh t =
  let rs = Tip_client.Connection.query t.conn t.sql in
  t.names <- Array.of_list (Tip_client.Result_set.column_names rs);
  t.rows <- Array.of_list (Tip_client.Result_set.to_list rs);
  t.time_index <-
    (match
       Array.find_index
         (fun n ->
           String.lowercase_ascii n = String.lowercase_ascii t.time_column)
         t.names
     with
    | Some i -> i
    | None -> browser_error "no column %s in query result" t.time_column)

let now_of t =
  match Tip_client.Connection.session_now t.conn with
  | Some c -> c
  | None -> (
    match Db.now_override (Tip_client.Connection.database t.conn) with
    | Some c -> c
    | None -> Tx_clock.now ())

(* Ground periods of a row's temporal attribute under the current NOW. *)
let ground_of t row =
  let v = row.(t.time_index) in
  if Value.is_null v then []
  else begin
    match Tip_blade.Values.to_element_value v with
    | e -> Element.ground ~now:(now_of t) e
    | exception Value.Type_error msg -> browser_error "%s" msg
  end

(* Fits the window to the extent of all rows, with ~5%% margin; rows that
   are NOW-relative are grounded first, so the fit follows NOW. *)
let fit_window t =
  let now = now_of t in
  let extend acc row =
    List.fold_left
      (fun acc (s, e) ->
        match acc with
        | None -> Some (s, e)
        | Some (lo, hi) -> Some (Chronon.min lo s, Chronon.max hi e))
      acc (ground_of t row)
  in
  match Array.fold_left extend None t.rows with
  | None ->
    (* No temporal data: a one-year window around NOW. *)
    Timeline.make_window
      ~from_:(Chronon.sub now (Span.of_days 182))
      ~until:(Chronon.add now (Span.of_days 182))
  | Some (lo, hi) ->
    let width = Stdlib.max 86_400 (Span.to_seconds (Chronon.diff hi lo)) in
    let margin = Span.of_seconds (width / 20) in
    Timeline.make_window ~from_:(Chronon.sub lo margin)
      ~until:(Chronon.add hi margin)

let open_query ?(strip_width = 48) conn ~sql ~time_column =
  let t =
    { conn; sql; time_column;
      names = [||]; rows = [||]; time_index = 0;
      window = Timeline.make_window ~from_:Chronon.epoch
          ~until:(Chronon.add Chronon.epoch (Span.of_days 1));
      strip_width }
  in
  refresh t;
  t.window <- fit_window t;
  t

(* Browsing a whole table, the default mode of the demo. *)
let open_table ?strip_width conn ~table ~time_column =
  open_query ?strip_width conn ~sql:(Printf.sprintf "SELECT * FROM %s" table)
    ~time_column

(* --- Window and NOW controls ------------------------------------------------- *)

let window t = t.window
let set_window t window = t.window <- window

(* The slider: positive steps move right; one step is an eighth of the
   window. *)
let slide t steps =
  let step = Span.to_seconds (Timeline.window_width t.window) / 8 in
  t.window <- Timeline.shift t.window (Span.of_seconds (step * steps))

let zoom t factor = t.window <- Timeline.zoom t.window factor

(* What-if: re-evaluate everything as if NOW were [chronon]. *)
let set_now t chronon =
  Tip_client.Connection.set_now t.conn chronon;
  refresh t

let reset_now t =
  Tip_client.Connection.clear_now t.conn;
  refresh t

(* --- Rendering ------------------------------------------------------------------ *)

let is_valid_in_window t row = Timeline.visible ~window:t.window (ground_of t row)

let valid_count t =
  Array.fold_left (fun n row -> if is_valid_in_window t row then n + 1 else n) 0 t.rows

let render t =
  let buf = Buffer.create 1024 in
  let now = now_of t in
  Buffer.add_string buf
    (Printf.sprintf "TIP Browser — %s\nNOW = %s%s | window %s .. %s | %d/%d tuples valid in window\n"
       t.sql (Chronon.to_string now)
       (if Tip_client.Connection.session_now t.conn <> None then " (what-if)"
        else "")
       (Chronon.to_string t.window.Timeline.from_)
       (Chronon.to_string t.window.Timeline.until)
       (valid_count t) (Array.length t.rows));
  (* Column widths. *)
  let ncols = Array.length t.names in
  let cell row i = Value.to_display_string row.(i) in
  let widths =
    Array.init ncols (fun i ->
        Array.fold_left
          (fun w row -> Stdlib.max w (String.length (cell row i)))
          (String.length t.names.(i))
          t.rows)
  in
  let pad s w = s ^ String.make (Stdlib.max 0 (w - String.length s)) ' ' in
  (* Header row; two leading spaces align with the validity marker. *)
  Buffer.add_string buf "  ";
  Array.iteri
    (fun i name ->
      Buffer.add_string buf (pad name widths.(i));
      Buffer.add_string buf " | ")
    t.names;
  Buffer.add_string buf "timeline\n";
  (* Data rows. *)
  Array.iter
    (fun row ->
      let valid = is_valid_in_window t row in
      Buffer.add_string buf (if valid then "* " else "  ");
      Array.iteri
        (fun i _ ->
          Buffer.add_string buf (pad (cell row i) widths.(i));
          Buffer.add_string buf " | ")
        t.names;
      Buffer.add_string buf
        (Timeline.strip ~mark:now ~width:t.strip_width ~window:t.window
           (ground_of t row));
      Buffer.add_char buf '\n')
    t.rows;
  (* Density footer and axis. *)
  let lead =
    2 + Array.fold_left (fun acc w -> acc + w + 3) 0 widths
  in
  let grounds = Array.to_list (Array.map (ground_of t) t.rows) in
  Buffer.add_string buf (String.make lead ' ');
  Buffer.add_string buf
    (Timeline.density ~width:t.strip_width ~window:t.window grounds);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make lead ' ');
  Buffer.add_string buf (Timeline.axis ~width:t.strip_width ~window:t.window);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* A slider sweep: renders [frames] views while moving the window from
   its current position rightwards, one step per frame. *)
let sweep t ~frames =
  List.init frames (fun i ->
      if i > 0 then slide t 1;
      render t)
