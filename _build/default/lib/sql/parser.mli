(** Recursive-descent parser for the SQL dialect described in {!Ast}.

    SQL-92 DML/DDL plus the Informix-isms the paper relies on
    ([expr::Type] casts, [:name] host variables), UNION [ALL],
    non-correlated subqueries, and the TIP [SET NOW] statement. Keywords
    are case-insensitive and reserved only where the grammar needs them,
    so TIP routine names ([intersect], [start], [union], [contains])
    remain usable as identifiers. *)

exception Error of string

(** Parses one statement (an optional trailing [';'] is allowed).
    @raise Error with position information. *)
val parse : string -> Ast.statement

(** Parses a [';']-separated script. *)
val parse_script : string -> Ast.statement list
