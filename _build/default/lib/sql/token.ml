(* Lexical tokens for the SQL dialect.

   Keywords are not distinguished at the lexical level: the parser decides
   which identifiers act as keywords, so TIP routine names like
   [intersect] or [start] stay usable as plain identifiers where the
   grammar allows. *)

type t =
  | Int of int
  | Float of float
  | String of string          (* contents of a '...' literal, unescaped *)
  | Ident of string           (* bare identifier, original spelling *)
  | Quoted_ident of string    (* "..." delimited identifier *)
  | Param of string           (* :name host variable *)
  | Symbol of string          (* operators and punctuation *)
  | Eof

type located = { token : t; line : int; column : int }

let pp ppf = function
  | Int n -> Fmt.pf ppf "%d" n
  | Float f -> Fmt.pf ppf "%g" f
  | String s -> Fmt.pf ppf "'%s'" s
  | Ident s -> Fmt.string ppf s
  | Quoted_ident s -> Fmt.pf ppf "%S" s
  | Param s -> Fmt.pf ppf ":%s" s
  | Symbol s -> Fmt.string ppf s
  | Eof -> Fmt.string ppf "<eof>"

let to_string t = Fmt.str "%a" pp t

let equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> String.equal x y
  | Ident x, Ident y -> String.equal x y
  | Quoted_ident x, Quoted_ident y -> String.equal x y
  | Param x, Param y -> String.equal x y
  | Symbol x, Symbol y -> String.equal x y
  | Eof, Eof -> true
  | (Int _ | Float _ | String _ | Ident _ | Quoted_ident _ | Param _
    | Symbol _ | Eof), _ -> false
