(** Renders the AST back to SQL text.

    Output is canonical (fully parenthesized expressions, upper-case
    keywords) so print-then-parse is a fixpoint — which the round-trip
    tests rely on, and which makes the printer safe for generating the
    layered baseline's SQL. *)

val binop_symbol : Ast.binop -> string
val escape_string : string -> string
val pp_literal : Format.formatter -> Ast.literal -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_select_item : Format.formatter -> Ast.select_item -> unit
val pp_table_ref : Format.formatter -> Ast.table_ref -> unit
val pp_select : Format.formatter -> Ast.select -> unit
val pp_compound : Format.formatter -> Ast.compound -> unit
val pp_column_def : Format.formatter -> Ast.column_def -> unit
val pp_statement : Format.formatter -> Ast.statement -> unit
val expr_to_string : Ast.expr -> string
val statement_to_string : Ast.statement -> string
