(** Lexical tokens.

    Keywords are not distinguished lexically: the parser decides which
    identifiers act as keywords, so TIP routine names like [intersect] or
    [start] stay usable as plain identifiers where the grammar allows. *)

type t =
  | Int of int
  | Float of float
  | String of string  (** contents of a ['...'] literal, unescaped *)
  | Ident of string  (** bare identifier, original spelling *)
  | Quoted_ident of string  (** ["..."]-delimited identifier *)
  | Param of string  (** [:name] host variable *)
  | Symbol of string  (** operators and punctuation; [!=] normalizes to [<>] *)
  | Eof

(** A token with its source position (1-based). *)
type located = { token : t; line : int; column : int }

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
