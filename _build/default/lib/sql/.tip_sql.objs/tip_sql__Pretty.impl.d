lib/sql/pretty.ml: Ast Buffer Fmt List Option String
