lib/sql/token.ml: Fmt String
