(** Hand-written SQL lexer.

    Understands integer and float literals; ['...'] strings with
    doubled-quote escaping; bare and ["..."]-quoted identifiers; [:name]
    host variables; the Informix [::] cast symbol; [--] line and
    [/* */] block comments; and the usual operator set. *)

exception Error of string

(** Lexes the whole input; the result always ends with {!Token.Eof}.
    @raise Error with position information on malformed input. *)
val tokenize : string -> Token.located array
