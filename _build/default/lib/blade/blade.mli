(** The TIP DataBlade: one [install] call makes the five temporal types
    and some fifty routines behave as if built into the DBMS.

    Installed surface (all reachable from plain SQL):
    - implicit casts from string literals to every TIP type, and the
      widening chain chronon → instant → period → element; explicit
      narrowing casts bind NOW (["NOW-1"::Instant::Chronon]);
    - overloaded arithmetic ([chronon - chronon] is a span; [chronon +
      chronon] is a type error, as the paper insists) and NOW-aware
      comparisons (a chronon compared with [NOW-7] may change answer as
      time advances);
    - Allen's thirteen interval operators on periods, plus
      [allen_relation];
    - the element set algebra: [union], [intersect], [difference],
      [complement], [overlaps], [contains], [length], [start], [finish],
      [first], [last], [extent], [count_periods], [is_empty],
      [normalize], and the NOW-preserving [add_period];
    - aggregates [group_union] (temporal coalescing) and
      [group_intersect];
    - planner hints: [overlaps]/[contains] are interval-sargable, and
      chronon/instant values can feed [SET NOW].

    Naming notes: the end of a period/element is [finish] (END is a SQL
    keyword) and set complement is [complement(element, period)]. *)

(** Installs the blade into a database (registers the global types on
    first use). Call once, right after {!Tip_engine.Database.create}. *)
val install : Tip_engine.Database.t -> unit

(** A fresh database with the blade installed. *)
val create_database : unit -> Tip_engine.Database.t
