(** TIP's five datatypes as engine values.

    Extends the storage layer's value universe with payload constructors
    for Chronon, Span, Instant, Period and Element, and registers their
    vtables (literal parsing, printing, ordering, index extents) in the
    global datatype registry — the "new datatypes" half of the
    DataBlade. The routines/casts/operators half lives in {!Blade}. *)

open Tip_core
open Tip_storage

type Value.ext +=
  | V_chronon of Chronon.t
  | V_span of Span.t
  | V_instant of Instant.t
  | V_period of Period.t
  | V_element of Element.t
  | V_profile of Profile.t
      (** the sixth type: per-instant aggregation results *)

(** {1 Canonical type names} *)

val chronon_type : string
val span_type : string
val instant_type : string
val period_type : string
val element_type : string
val profile_type : string

(** {1 Constructors} *)

val chronon : Chronon.t -> Value.t
val span : Span.t -> Value.t
val instant : Instant.t -> Value.t
val period : Period.t -> Value.t
val element : Element.t -> Value.t
val profile : Profile.t -> Value.t

(** {1 Accessors}

    All raise {!Value.Type_error} on the wrong payload. *)

val as_chronon : Value.t -> Chronon.t
val as_span : Value.t -> Span.t
val as_instant : Value.t -> Instant.t
val as_period : Value.t -> Period.t
val as_element : Value.t -> Element.t
val as_profile : Value.t -> Profile.t

(** Loose reading: any timestamp-ish value (element, period, instant,
    chronon or DATE) as an element. Used by aggregates, whose inputs
    bypass cast resolution. *)
val to_element_value : Value.t -> Element.t

(** {1 Registration} *)

(** Registers the five datatypes in the global registry; idempotent.
    Must run before parsing snapshots that contain TIP values. *)
val register_types : unit -> unit

(**/**)

val period_extent : Period.t -> (int * int) option
val element_extents : Element.t -> (int * int) list
