(* TIP's five datatypes as engine values.

   This module extends the storage layer's value universe with payload
   constructors for Chronon, Span, Instant, Period and Element, and
   registers their vtables (literal parsing, printing, ordering, index
   extents) in the global datatype registry — the "new datatypes" half of
   the DataBlade. The routines/casts/operators half lives in {!Blade}. *)

open Tip_core
open Tip_storage

type Value.ext +=
  | V_chronon of Chronon.t
  | V_span of Span.t
  | V_instant of Instant.t
  | V_period of Period.t
  | V_element of Element.t
  | V_profile of Profile.t
      (* the sixth type: per-instant aggregation results (E12/E13) *)

(* Canonical type names. *)
let chronon_type = "chronon"
let span_type = "span"
let instant_type = "instant"
let period_type = "period"
let element_type = "element"
let profile_type = "profile"

(* --- Constructors --------------------------------------------------------- *)

let chronon c = Value.Ext (chronon_type, V_chronon c)
let span s = Value.Ext (span_type, V_span s)
let instant i = Value.Ext (instant_type, V_instant i)
let period p = Value.Ext (period_type, V_period p)
let element e = Value.Ext (element_type, V_element e)
let profile p = Value.Ext (profile_type, V_profile p)

(* --- Accessors -------------------------------------------------------------- *)

let type_mismatch expected v =
  raise
    (Value.Type_error
       (Printf.sprintf "expected %s, got %s" expected (Value.type_name v)))

let as_chronon = function
  | Value.Ext (_, V_chronon c) -> c
  | v -> type_mismatch chronon_type v

let as_span = function
  | Value.Ext (_, V_span s) -> s
  | v -> type_mismatch span_type v

let as_instant = function
  | Value.Ext (_, V_instant i) -> i
  | v -> type_mismatch instant_type v

let as_period = function
  | Value.Ext (_, V_period p) -> p
  | v -> type_mismatch period_type v

let as_element = function
  | Value.Ext (_, V_element e) -> e
  | v -> type_mismatch element_type v

let as_profile = function
  | Value.Ext (_, V_profile p) -> p
  | v -> type_mismatch profile_type v

(* Loose reading: any timestamp-ish value as an element. Used by
   aggregates, whose inputs bypass cast resolution. *)
let to_element_value = function
  | Value.Ext (_, V_element e) -> e
  | Value.Ext (_, V_period p) -> Element.of_period p
  | Value.Ext (_, V_chronon c) -> Element.of_period (Period.of_chronon c)
  | Value.Ext (_, V_instant i) ->
    Element.of_period (Period.of_instants i i)
  | Value.Date c -> Element.of_period (Period.of_chronon c)
  | v -> type_mismatch element_type v

(* --- Vtables ------------------------------------------------------------------- *)

let parse_error_to_type_error f s =
  match f s with
  | v -> v
  | exception Scan.Parse_error msg -> raise (Value.Type_error msg)

(* Conservative index extents: NOW-relative endpoints are unbounded so
   that entries stay valid as time advances (the executor rechecks). *)
let instant_extent = function
  | Instant.Fixed c ->
    let s = Chronon.to_unix_seconds c in
    Some (s, s)
  | Instant.Now_relative _ -> Some (min_int, max_int)

let period_extent p =
  let lo =
    match Period.start_instant p with
    | Instant.Fixed c -> Chronon.to_unix_seconds c
    | Instant.Now_relative _ -> min_int
  in
  let hi =
    match Period.end_instant p with
    | Instant.Fixed c -> Chronon.to_unix_seconds c
    | Instant.Now_relative _ -> max_int
  in
  if lo > hi then None else Some (lo, hi)

(* One index entry per period: an interval index over elements then
   prunes on each period separately rather than on one bounding box
   spanning the gaps — the difference between a useful and a useless
   index for multi-period timestamps. *)
let element_extents e =
  Element.fold
    (fun acc p ->
      match period_extent p with Some ext -> ext :: acc | None -> acc)
    [] e
  |> List.rev

let registered = ref false

(* Registers the five datatypes; safe to call more than once. *)
let register_types () =
  if not !registered then begin
    registered := true;
    Value.register_type ~name:chronon_type
      { Value.parse =
          (fun s -> chronon (parse_error_to_type_error Chronon.of_string_exn s));
        print = (fun v -> Chronon.to_string (as_chronon v));
        compare = Some (fun a b -> Chronon.compare (as_chronon a) (as_chronon b));
        extents =
          Some
            (fun v ->
              let s = Chronon.to_unix_seconds (as_chronon v) in
              [ (s, s) ]) };
    Value.register_type ~name:span_type
      { Value.parse =
          (fun s -> span (parse_error_to_type_error Span.of_string_exn s));
        print = (fun v -> Span.to_string (as_span v));
        compare = Some (fun a b -> Span.compare (as_span a) (as_span b));
        extents = None };
    (* Instants have no NOW-independent total order, so no [compare]:
       ordering them is the job of the blade's comparison operators,
       which receive the statement's transaction time. *)
    Value.register_type ~name:instant_type
      { Value.parse =
          (fun s -> instant (parse_error_to_type_error Instant.of_string_exn s));
        print = (fun v -> Instant.to_string (as_instant v));
        compare = None;
        extents =
          Some (fun v -> Option.to_list (instant_extent (as_instant v))) };
    Value.register_type ~name:period_type
      { Value.parse =
          (fun s -> period (parse_error_to_type_error Period.of_string_exn s));
        print = (fun v -> Period.to_string (as_period v));
        compare = None;
        extents =
          Some (fun v -> Option.to_list (period_extent (as_period v))) };
    Value.register_type ~name:element_type
      { Value.parse =
          (fun s -> element (parse_error_to_type_error Element.of_string_exn s));
        print = (fun v -> Element.to_string (as_element v));
        compare = None;
        extents = Some (fun v -> element_extents (as_element v)) };
    Value.register_type ~name:profile_type
      { Value.parse =
          (fun s -> profile (parse_error_to_type_error Profile.of_string_exn s));
        print = (fun v -> Profile.to_string (as_profile v));
        compare = None;
        extents =
          Some
            (fun v ->
              List.map
                (fun e ->
                  let s, e' = e.Profile.span_ in
                  (Chronon.to_unix_seconds s, Chronon.to_unix_seconds e'))
                (Profile.entries (as_profile v))) }
  end
