lib/blade/values.mli: Chronon Element Instant Period Profile Span Tip_core Tip_storage Value
