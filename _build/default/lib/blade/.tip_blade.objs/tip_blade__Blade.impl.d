lib/blade/blade.ml: Allen Array Chronon Element Granularity Instant List Period Printf Profile Scan Span Tip_core Tip_engine Tip_storage Tx_clock Value Values
