lib/blade/values.ml: Chronon Element Instant List Option Period Printf Profile Scan Span Tip_core Tip_storage Value
