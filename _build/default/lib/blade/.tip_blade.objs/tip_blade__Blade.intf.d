lib/blade/blade.mli: Tip_engine
