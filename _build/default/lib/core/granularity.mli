(** Granularities: TSQL2's coarser time units layered over the chronon.

    Supplies truncation to the enclosing granule, granule periods,
    boundary counting, calendar-aware month/year shifts, and scaling a
    whole element up to granule boundaries (TSQL2's cast to a coarser
    granularity). Weeks are ISO (Monday-based); month and year granules
    follow the civil calendar and are not all the same length. *)

type t = Second | Minute | Hour | Day | Week | Month | Year

val all : t list
val to_string : t -> string

(** Accepts singular and plural names, case-insensitively. *)
val of_string : string -> t option

val pp : Format.formatter -> t -> unit

(** 0 = Monday .. 6 = Sunday (ISO). *)
val day_of_week : Chronon.t -> int

(** Start of the enclosing granule (idempotent). *)
val truncate : t -> Chronon.t -> Chronon.t

(** Start of the next granule. *)
val next : t -> Chronon.t -> Chronon.t

(** The (closed) granule containing the chronon. *)
val granule : t -> Chronon.t -> Period.ground

(** Granule boundaries crossed from [a] to [b]: same granule = 0,
    adjacent = 1; negative when [b < a]. For [Second] this is the exact
    span in seconds. *)
val between : t -> Chronon.t -> Chronon.t -> int

(** Expands every period of the element to whole granules and
    renormalizes — any granule a period touches becomes fully covered. *)
val scale : now:Chronon.t -> t -> Element.t -> Element.t

val scale_ground : t -> Period.ground list -> Period.ground list

(** Calendar shift by whole months, clamping the day-of-month (Jan 31 +
    1 month = Feb 28/29) and preserving the time of day. *)
val add_months : Chronon.t -> int -> Chronon.t

val add_years : Chronon.t -> int -> Chronon.t
