(* Minimal character scanner shared by the temporal-literal parsers.

   All TIP literals (chronons, spans, instants, periods, elements) are
   parsed with this cursor; parsers raise [Parse_error] with a message
   that includes the offending position. *)

exception Parse_error of string

type t = { src : string; mutable pos : int }

let of_string src = { src; pos = 0 }

let fail s msg =
  raise (Parse_error (Printf.sprintf "%s at position %d in %S" msg s.pos s.src))

let eof s = s.pos >= String.length s.src

let peek s = if eof s then None else Some s.src.[s.pos]

let advance s = s.pos <- s.pos + 1

let next s =
  match peek s with
  | None -> fail s "unexpected end of input"
  | Some c -> advance s; c

let skip_ws s =
  while (not (eof s)) && (s.src.[s.pos] = ' ' || s.src.[s.pos] = '\t') do
    advance s
  done

let eat_char s c =
  match peek s with
  | Some c' when c' = c -> advance s; true
  | Some _ | None -> false

let expect_char s c =
  if not (eat_char s c) then fail s (Printf.sprintf "expected %C" c)

let is_digit c = c >= '0' && c <= '9'

(* Consumes one or more decimal digits and returns their integer value. *)
let unsigned_int s =
  let start = s.pos in
  while (not (eof s)) && is_digit s.src.[s.pos] do
    advance s
  done;
  if s.pos = start then fail s "expected digits";
  int_of_string (String.sub s.src start (s.pos - start))

(* Case-insensitive keyword match; consumes it when present. *)
let eat_keyword s kw =
  let n = String.length kw in
  if s.pos + n <= String.length s.src
     && String.uppercase_ascii (String.sub s.src s.pos n) = kw
  then begin
    s.pos <- s.pos + n;
    true
  end
  else false

let expect_eof s =
  skip_ws s;
  if not (eof s) then fail s "trailing input"

(* Runs [f] over the whole of [str], requiring that it be consumed. *)
let parse_all f str =
  let s = of_string str in
  skip_ws s;
  let v = f s in
  expect_eof s;
  v
