(** A set of periods — the general tuple timestamp of the paper.

    Notation: [{[p1], [p2], ...}], e.g.
    [{[1999-01-01, 1999-04-30], [1999-07-01, 1999-10-31]}].

    An element is stored as written — its periods may be NOW-relative,
    overlapping or out of order — and is {e normalized} under a NOW
    binding into sorted, disjoint, maximal ground periods (adjacent
    periods coalesce, since time is discrete). All set operations run in
    time linear in the number of periods of their normalized inputs. *)

type t

val empty : t
val of_periods : Period.t list -> t
val of_period : Period.t -> t
val of_ground_list : Period.ground list -> t
val periods : t -> Period.t list
val add_period : Period.t -> t -> t

(** Period count before normalization. *)
val raw_count : t -> int

val is_now_relative : t -> bool

(** {1 Normalization} *)

(** Sorted, disjoint, maximal ground periods under [now]. *)
val ground : now:Chronon.t -> t -> Period.ground list

(** [normalize ~now t] is [t] rewritten as ground, disjoint, sorted
    periods — the temporal {e coalesce} operation. *)
val normalize : now:Chronon.t -> t -> t

(** Alias for {!normalize}. *)
val coalesce : now:Chronon.t -> t -> t

(** {1 Set algebra}

    Results are always normalized (and therefore ground). *)

val union : now:Chronon.t -> t -> t -> t
val intersect : now:Chronon.t -> t -> t -> t
val difference : now:Chronon.t -> t -> t -> t

(** Complement relative to a bounding period. *)
val complement : now:Chronon.t -> within:Period.t -> t -> t

val overlaps : now:Chronon.t -> t -> t -> bool

(** [contains ~now a b]: does [a] cover every chronon of [b]? *)
val contains : now:Chronon.t -> t -> t -> bool

val contains_chronon : now:Chronon.t -> t -> Chronon.t -> bool
val contains_period : now:Chronon.t -> t -> Period.t -> bool

(** {1 Observations} *)

val is_empty : now:Chronon.t -> t -> bool

(** Number of periods after normalization. *)
val count : now:Chronon.t -> t -> int

(** Total covered duration (sum of period durations). *)
val length : now:Chronon.t -> t -> Span.t

(** Start of the first period, as used in the paper's queries. *)
val start : now:Chronon.t -> t -> Chronon.t option

(** End of the last period. *)
val end_ : now:Chronon.t -> t -> Chronon.t option

val first : now:Chronon.t -> t -> Period.t option
val last : now:Chronon.t -> t -> Period.t option

(** Smallest single period covering the whole element. *)
val extent : now:Chronon.t -> t -> Period.t option

(** Set equality under a NOW binding. *)
val equal_at : now:Chronon.t -> t -> t -> bool

(** Structural equality of the written representation. *)
val equal : t -> t -> bool

val fold : ('a -> Period.t -> 'a) -> 'a -> t -> 'a
val iter : (Period.t -> unit) -> t -> unit

(** {1 Ground-level algebra}

    Exposed for testing and benchmarking; inputs must be sorted, disjoint
    and maximal (as produced by {!ground}). *)

val ground_union : Period.ground list -> Period.ground list -> Period.ground list
val ground_intersect :
  Period.ground list -> Period.ground list -> Period.ground list
val ground_difference :
  Period.ground list -> Period.ground list -> Period.ground list
val ground_complement :
  within:Period.ground -> Period.ground list -> Period.ground list
val ground_overlaps : Period.ground list -> Period.ground list -> bool
val ground_contains : Period.ground list -> Period.ground list -> bool
val ground_length : Period.ground list -> Span.t

(** {1 Text} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option

(** @raise Scan.Parse_error on malformed input. *)
val of_string_exn : string -> t

(**/**)

val scan : Scan.t -> t
