(* An [Instant] is either a fixed chronon or a NOW-relative time: an
   offset (a span) from the special symbol NOW, whose interpretation
   changes as time advances. "NOW-1" denotes yesterday.

   All observations of a NOW-relative instant go through [bind], which
   substitutes a concrete chronon (the current transaction time) for NOW. *)

type t =
  | Fixed of Chronon.t
  | Now_relative of Span.t

let of_chronon c = Fixed c
let now = Now_relative Span.zero
let now_plus span = Now_relative span
let now_minus span = Now_relative (Span.neg span)

let is_now_relative = function Fixed _ -> false | Now_relative _ -> true

let bind ~now:current = function
  | Fixed c -> c
  | Now_relative offset -> Chronon.add current offset

let add t span =
  match t with
  | Fixed c -> Fixed (Chronon.add c span)
  | Now_relative offset -> Now_relative (Span.add offset span)

let sub t span = add t (Span.neg span)

(* [diff a b ~now] needs a NOW binding unless both instants move with NOW,
   in which case the offsets subtract exactly. *)
let diff ~now:current a b =
  match a, b with
  | Now_relative x, Now_relative y -> Span.sub x y
  | (Fixed _ | Now_relative _), _ ->
    Chronon.diff (bind ~now:current a) (bind ~now:current b)

let compare_at ~now:current a b =
  Chronon.compare (bind ~now:current a) (bind ~now:current b)

(* Structural equality: [NOW-1] equals [NOW-1] but not yesterday's date. *)
let equal a b =
  match a, b with
  | Fixed x, Fixed y -> Chronon.equal x y
  | Now_relative x, Now_relative y -> Span.equal x y
  | Fixed _, Now_relative _ | Now_relative _, Fixed _ -> false

let pp ppf = function
  | Fixed c -> Chronon.pp ppf c
  | Now_relative offset ->
    if Span.equal offset Span.zero then Fmt.string ppf "NOW"
    else if Span.is_negative offset then Fmt.pf ppf "NOW%a" Span.pp offset
    else Fmt.pf ppf "NOW+%a" Span.pp offset

let to_string t = Fmt.str "%a" pp t

let scan s =
  if Scan.eat_keyword s "NOW" then begin
    Scan.skip_ws s;
    match Scan.peek s with
    | Some '+' ->
      Scan.advance s;
      Scan.skip_ws s;
      Now_relative (Span.scan s)
    | Some '-' ->
      Scan.advance s;
      Scan.skip_ws s;
      Now_relative (Span.neg (Span.scan s))
    | Some _ | None -> Now_relative Span.zero
  end
  else Fixed (Chronon.scan s)

let of_string str =
  try Some (Scan.parse_all scan str) with Scan.Parse_error _ -> None

let of_string_exn str = Scan.parse_all scan str
