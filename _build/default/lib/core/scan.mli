(** Minimal character scanner shared by the temporal-literal parsers. *)

exception Parse_error of string

type t = { src : string; mutable pos : int }

val of_string : string -> t

(** @raise Parse_error with position information. *)
val fail : t -> string -> 'a

val eof : t -> bool
val peek : t -> char option
val advance : t -> unit

(** @raise Parse_error at end of input. *)
val next : t -> char

val skip_ws : t -> unit
val eat_char : t -> char -> bool

(** @raise Parse_error when the next character differs. *)
val expect_char : t -> char -> unit

val is_digit : char -> bool

(** One or more decimal digits as an integer.
    @raise Parse_error when none are present. *)
val unsigned_int : t -> int

(** Case-insensitive keyword match; consumes it when present. *)
val eat_keyword : t -> string -> bool

(** @raise Parse_error on trailing input. *)
val expect_eof : t -> unit

(** Runs [f] over the whole of the string, requiring full consumption. *)
val parse_all : (t -> 'a) -> string -> 'a
