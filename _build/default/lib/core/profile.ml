(* Temporal profiles: integer-valued step functions over the time line.

   A profile answers "how many facts were true at each instant" — the
   per-instant aggregation that TSQL2 calls sequenced COUNT and that
   plain SQL plus TIP routines cannot express (the E12 gap). The
   representation is the minimal list of disjoint, value-labelled ground
   periods, ascending, with zero-valued gaps omitted:

     {[1999-01-01, 1999-02-28]:1, [1999-03-01, 1999-04-30]:3, ...}

   Construction is a sweep over period endpoints: O(n log n) for n input
   periods, independently of the time-line length. *)

type entry = { span_ : Period.ground; value : int }

type t = entry list (* ascending, disjoint, value <> 0 *)

let empty = []
let entries t = t
let is_empty t = t = []

(* --- Construction ----------------------------------------------------- *)

(* Endpoint sweep: +delta at start, -delta just after end. *)
let of_weighted_ground (weighted : (Period.ground list * int) list) : t =
  let events = ref [] in
  List.iter
    (fun (ground, weight) ->
      List.iter
        (fun (s, e) ->
          events := (Chronon.to_unix_seconds s, weight) :: !events;
          events := (Chronon.to_unix_seconds e + 1, -weight) :: !events)
        ground)
    weighted;
  let events =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) !events
  in
  (* Merge simultaneous events, then emit one entry per maximal run of a
     constant non-zero value. *)
  let rec sweep acc current_value run_start = function
    | [] -> acc
    | (at, delta) :: rest ->
      let deltas_here, rest =
        let rec take acc = function
          | (at', d) :: tl when at' = at -> take (acc + d) tl
          | tl -> (acc, tl)
        in
        take delta rest
      in
      let next_value = current_value + deltas_here in
      if next_value = current_value then sweep acc current_value run_start rest
      else begin
        let acc =
          match run_start with
          | Some (start, v) when v <> 0 && at > start ->
            { span_ =
                (Chronon.of_unix_seconds start, Chronon.of_unix_seconds (at - 1));
              value = v }
            :: acc
          | Some _ | None -> acc
        in
        sweep acc next_value (Some (at, next_value)) rest
      end
  in
  List.rev (sweep [] 0 None events)

(* Per-instant count of a collection of elements. *)
let of_elements ~now elements =
  of_weighted_ground (List.map (fun e -> (Element.ground ~now e, 1)) elements)

let of_element ~now e = of_elements ~now [ e ]

(* --- Observation -------------------------------------------------------- *)

let value_at t chronon =
  let rec go = function
    | [] -> 0
    | { span_ = (s, e); value } :: rest ->
      if Chronon.compare chronon s < 0 then 0
      else if Chronon.compare chronon e <= 0 then value
      else go rest
  in
  go t

let max_value t = List.fold_left (fun m { value; _ } -> Stdlib.max m value) 0 t
let min_nonzero t =
  List.fold_left (fun m { value; _ } -> Stdlib.min m value) max_int t
  |> fun m -> if m = max_int then 0 else m

(* The instants where the profile reaches its maximum, as an element. *)
let argmax t =
  let m = max_value t in
  Element.of_ground_list
    (List.filter_map
       (fun { span_; value } -> if value = m && m > 0 then Some span_ else None)
       t)

(* Chronons covered with value >= threshold, as an element. *)
let at_least t threshold =
  Element.of_ground_list
    (List.filter_map
       (fun { span_; value } -> if value >= threshold then Some span_ else None)
       t)

(* Time-weighted integral: sum over entries of value * duration (in
   seconds, counting closed periods discretely). *)
let integral t =
  List.fold_left
    (fun acc { span_ = (s, e); value } ->
      acc + (value * (Span.to_seconds (Chronon.diff e s) + 1)))
    0 t

let equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         x.value = y.value
         && Chronon.equal (fst x.span_) (fst y.span_)
         && Chronon.equal (snd x.span_) (snd y.span_))
       a b

(* --- Text ------------------------------------------------------------------ *)

let pp_entry ppf { span_ = (s, e); value } =
  Fmt.pf ppf "[%a, %a]:%d" Chronon.pp s Chronon.pp e value

let pp ppf t = Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") pp_entry) t
let to_string t = Fmt.str "%a" pp t

let scan s =
  Scan.expect_char s '{';
  Scan.skip_ws s;
  if Scan.eat_char s '}' then []
  else begin
    let entry () =
      Scan.expect_char s '[';
      Scan.skip_ws s;
      let start_ = Chronon.scan s in
      Scan.skip_ws s;
      Scan.expect_char s ',';
      Scan.skip_ws s;
      let end_ = Chronon.scan s in
      Scan.skip_ws s;
      Scan.expect_char s ']';
      Scan.expect_char s ':';
      let negative = Scan.eat_char s '-' in
      let v = Scan.unsigned_int s in
      { span_ = (start_, end_); value = (if negative then -v else v) }
    in
    let rec loop acc =
      let e = entry () in
      Scan.skip_ws s;
      if Scan.eat_char s ',' then begin
        Scan.skip_ws s;
        loop (e :: acc)
      end
      else begin
        Scan.expect_char s '}';
        List.rev (e :: acc)
      end
    in
    loop []
  end

let of_string str =
  try Some (Scan.parse_all scan str) with Scan.Parse_error _ -> None

let of_string_exn str = Scan.parse_all scan str

(* Invariants, used by tests: ascending, disjoint, non-zero values. *)
let check_invariants t =
  let rec go = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
      Chronon.compare (snd a.span_) (fst b.span_) < 0 && go rest
  in
  List.for_all
    (fun { span_ = (s, e); value } -> Chronon.compare s e <= 0 && value <> 0)
    t
  && go t
