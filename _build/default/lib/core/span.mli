(** A signed duration of time with one-second resolution.

    The textual notation follows the paper: [[+|-]days[ hours:minutes:seconds]].
    ["7 12:00:00"] is seven and a half days, ["-7"] is seven days back, and
    ["0 08:00:00"] is eight hours. *)

type t

val seconds_per_minute : int
val seconds_per_hour : int
val seconds_per_day : int

val zero : t

(** {1 Constructors} *)

val of_seconds : int -> t
val to_seconds : t -> int
val of_minutes : int -> t
val of_hours : int -> t
val of_days : int -> t
val of_weeks : int -> t

(** [of_dhms ~days ~hours ~minutes ~seconds] builds a span from its printed
    components. The sign of [days] gives the sign of the whole span; the
    time-of-day components must lie in their usual ranges.
    @raise Invalid_argument otherwise. *)
val of_dhms : days:int -> hours:int -> minutes:int -> seconds:int -> t

(** Whole days in the magnitude of the span. *)
val days : t -> int

val is_negative : t -> bool

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val abs : t -> t
val scale_int : t -> int -> t

(** Fractional scaling, rounded to the nearest whole second. *)
val scale_float : t -> float -> t

(** [ratio a b] is the quotient [a / b] as a float.
    @raise Invalid_argument if [b] is zero. *)
val ratio : t -> t -> float

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Text} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Parses the paper notation; [None] on malformed input. *)
val of_string : string -> t option

(** @raise Scan.Parse_error on malformed input. *)
val of_string_exn : string -> t

(**/**)

(** Scans a span at the cursor; used by the other literal parsers. *)
val scan : Scan.t -> t
