(** Either a fixed chronon or a NOW-relative time.

    A NOW-relative instant is an offset of type {!Span.t} from the special
    symbol NOW, whose interpretation changes as time advances: ["NOW-1"]
    denotes yesterday. Notation: a chronon literal, or [NOW[±span]]. *)

type t =
  | Fixed of Chronon.t
  | Now_relative of Span.t

val of_chronon : Chronon.t -> t

(** The symbol NOW itself. *)
val now : t

val now_plus : Span.t -> t
val now_minus : Span.t -> t
val is_now_relative : t -> bool

(** [bind ~now t] substitutes [now] (the current transaction time) for the
    symbol NOW, yielding a concrete chronon. *)
val bind : now:Chronon.t -> t -> Chronon.t

(** {1 Arithmetic} *)

val add : t -> Span.t -> t
val sub : t -> Span.t -> t

(** [diff ~now a b] is the span from [b] to [a], evaluated under [now].
    When both instants are NOW-relative the result is independent of [now]. *)
val diff : now:Chronon.t -> t -> t -> Span.t

(** {1 Comparison} *)

(** Order under a NOW binding; this is how the DBMS compares instants, so
    the answer may change as time advances. *)
val compare_at : now:Chronon.t -> t -> t -> int

(** Structural equality: [NOW-1] equals [NOW-1], not yesterday's date. *)
val equal : t -> t -> bool

(** {1 Text} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option

(** @raise Scan.Parse_error on malformed input. *)
val of_string_exn : string -> t

(**/**)

val scan : Scan.t -> t
