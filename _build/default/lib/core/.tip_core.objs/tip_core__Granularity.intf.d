lib/core/granularity.mli: Chronon Element Format Period
