lib/core/period.mli: Chronon Format Instant Scan Span
