lib/core/element.ml: Chronon Fmt List Period Scan Span
