lib/core/scan.ml: Printf String
