lib/core/period.ml: Chronon Fmt Instant Option Scan
