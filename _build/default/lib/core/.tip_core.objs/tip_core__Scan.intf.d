lib/core/scan.mli:
