lib/core/chronon.mli: Format Scan Span
