lib/core/instant.ml: Chronon Fmt Scan Span
