lib/core/chronon.ml: Fmt Int Scan Span Stdlib
