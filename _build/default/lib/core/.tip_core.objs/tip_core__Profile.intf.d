lib/core/profile.mli: Chronon Element Format Period Scan
