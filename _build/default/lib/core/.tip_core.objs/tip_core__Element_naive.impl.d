lib/core/element_naive.ml: Chronon List Period
