lib/core/allen.mli: Chronon Format Period
