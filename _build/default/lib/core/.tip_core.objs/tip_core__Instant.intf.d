lib/core/instant.mli: Chronon Format Scan Span
