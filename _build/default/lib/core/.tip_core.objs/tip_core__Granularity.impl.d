lib/core/granularity.ml: Chronon Element Fmt List Period Span Stdlib String
