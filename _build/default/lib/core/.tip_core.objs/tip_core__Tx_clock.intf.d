lib/core/tx_clock.mli: Chronon
