lib/core/element.mli: Chronon Format Period Scan Span
