lib/core/profile.ml: Chronon Element Fmt Int List Period Scan Span Stdlib
