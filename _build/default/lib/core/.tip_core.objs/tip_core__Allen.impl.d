lib/core/allen.ml: Chronon Fmt Period String
