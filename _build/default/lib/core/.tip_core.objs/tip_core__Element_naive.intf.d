lib/core/element_naive.mli: Period
