lib/core/span.mli: Format Scan
