lib/core/span.ml: Float Fmt Int Scan Stdlib
