lib/core/tx_clock.ml: Chronon Fun Unix
