(** Source of the current transaction time.

    NOW is interpreted as the current transaction time during query
    evaluation, so the engine binds one chronon from this clock per
    statement. An override supports deterministic tests and the
    browser's what-if analysis. *)

(** Current transaction time: the override if set, else the wall clock. *)
val now : unit -> Chronon.t

(** The machine's wall clock as a chronon (UTC). *)
val wall_clock : unit -> Chronon.t

val set_override : Chronon.t -> unit
val clear_override : unit -> unit

(** Runs [f] with NOW bound to the given chronon, restoring the previous
    binding afterwards (exception-safe). *)
val with_override : Chronon.t -> (unit -> 'a) -> 'a
