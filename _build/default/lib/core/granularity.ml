(* Granularities: the TSQL2 notion of coarser time units layered over
   the chronon.

   TIP (like SQL's DATE/DATETIME) fixes the chronon at one second; TSQL2
   lets timestamps live at SECOND/DAY/MONTH/... granularity. This module
   supplies the calendar machinery to emulate that: truncation to the
   enclosing granule, granule periods, stepping, counting, and scaling a
   whole element up to granule boundaries (TSQL2's CAST to a coarser
   granularity). Weeks are ISO (Monday-based); months and years follow
   the civil calendar, so granules are not all the same length. *)

type t = Second | Minute | Hour | Day | Week | Month | Year

let all = [ Second; Minute; Hour; Day; Week; Month; Year ]

let to_string = function
  | Second -> "second"
  | Minute -> "minute"
  | Hour -> "hour"
  | Day -> "day"
  | Week -> "week"
  | Month -> "month"
  | Year -> "year"

let of_string s =
  match String.lowercase_ascii s with
  | "second" | "seconds" -> Some Second
  | "minute" | "minutes" -> Some Minute
  | "hour" | "hours" -> Some Hour
  | "day" | "days" -> Some Day
  | "week" | "weeks" -> Some Week
  | "month" | "months" -> Some Month
  | "year" | "years" -> Some Year
  | _ -> None

let pp ppf g = Fmt.string ppf (to_string g)

(* Day of week, 0 = Monday .. 6 = Sunday (ISO). 1970-01-01 was a
   Thursday. *)
let day_of_week c =
  let days =
    let s = Chronon.to_unix_seconds (Chronon.start_of_day c) in
    s / Span.seconds_per_day
  in
  ((days mod 7) + 7 + 3) mod 7

(* --- Truncation -------------------------------------------------------- *)

let truncate g c =
  let year, month, _day, _hh, _mm, _ss = Chronon.to_civil c in
  match g with
  | Second -> c
  | Minute ->
    let s = Chronon.to_unix_seconds c in
    Chronon.of_unix_seconds (s - (((s mod 60) + 60) mod 60))
  | Hour ->
    let s = Chronon.to_unix_seconds c in
    Chronon.of_unix_seconds (s - (((s mod 3600) + 3600) mod 3600))
  | Day -> Chronon.start_of_day c
  | Week ->
    Chronon.sub (Chronon.start_of_day c) (Span.of_days (day_of_week c))
  | Month -> Chronon.of_ymd year month 1
  | Year -> Chronon.of_ymd year 1 1

(* Start of the next granule. *)
let next g c =
  let t = truncate g c in
  match g with
  | Second -> Chronon.succ t
  | Minute -> Chronon.add t (Span.of_minutes 1)
  | Hour -> Chronon.add t (Span.of_hours 1)
  | Day -> Chronon.add t (Span.of_days 1)
  | Week -> Chronon.add t (Span.of_days 7)
  | Month ->
    let year, month, _, _, _, _ = Chronon.to_civil t in
    if month = 12 then Chronon.of_ymd (year + 1) 1 1
    else Chronon.of_ymd year (month + 1) 1
  | Year ->
    let year, _, _, _, _, _ = Chronon.to_civil t in
    Chronon.of_ymd (year + 1) 1 1

(* The granule containing [c], as a ground period (closed). *)
let granule g c : Period.ground = (truncate g c, Chronon.pred (next g c))

(* Number of granule boundaries crossed from [a] to [b] (so same granule
   = 0, adjacent granules = 1); negative when b < a. *)
let rec between g a b =
  if Chronon.compare a b > 0 then -between g b a
  else begin
    match g with
    | Second -> Span.to_seconds (Chronon.diff b a)
    | Minute | Hour | Day | Week ->
      (* fixed-length granules: arithmetic, not iteration *)
      let len =
        match g with
        | Minute -> 60
        | Hour -> 3_600
        | Day -> Span.seconds_per_day
        | Week -> 7 * Span.seconds_per_day
        | Second | Month | Year -> assert false
      in
      let fa = Chronon.to_unix_seconds (truncate g a) in
      let fb = Chronon.to_unix_seconds (truncate g b) in
      (fb - fa) / len
    | Month ->
      let ya, ma, _, _, _, _ = Chronon.to_civil a in
      let yb, mb, _, _, _, _ = Chronon.to_civil b in
      ((yb - ya) * 12) + (mb - ma)
    | Year ->
      let ya, _, _, _, _, _ = Chronon.to_civil a in
      let yb, _, _, _, _, _ = Chronon.to_civil b in
      yb - ya
  end

(* --- Scaling elements ---------------------------------------------------- *)

(* Expands every period to whole granules (TSQL2's cast to a coarser
   granularity: any granule the period touches is covered entirely). *)
let scale_ground g ground =
  List.map
    (fun (s, e) -> (truncate g s, Chronon.pred (next g e)))
    ground

let scale ~now g element =
  (* expansion can make periods adjacent/overlapping: renormalize *)
  let expanded = scale_ground g (Element.ground ~now element) in
  Element.normalize ~now (Element.of_ground_list expanded)

(* Calendar shift by whole months/years, clamping the day (Jan 31 +
   1 month = Feb 28/29), preserving the time of day. *)
let add_months c n =
  let year, month, day, hh, mm, ss = Chronon.to_civil c in
  let total = ((year * 12) + (month - 1)) + n in
  let year' = if total >= 0 then total / 12 else ((total + 1) / 12) - 1 in
  let month' = total - (year' * 12) + 1 in
  let day' = Stdlib.min day (Chronon.days_in_month year' month') in
  Chronon.of_civil ~year:year' ~month:month' ~day:day' ~hour:hh ~minute:mm
    ~second:ss

let add_years c n = add_months c (12 * n)
