(* Source of the current transaction time.

   The special symbol NOW is interpreted as the current transaction time
   during query evaluation (Section 2 of the paper), so the engine binds
   one chronon from this clock per statement. The override supports both
   deterministic tests and the browser's what-if analysis, where the user
   evaluates queries "in a temporal context different from the present". *)

let override : Chronon.t option ref = ref None

let wall_clock () = Chronon.of_unix_seconds (int_of_float (Unix.time ()))

let now () =
  match !override with
  | Some c -> c
  | None -> wall_clock ()

let set_override c = override := Some c
let clear_override () = override := None

let with_override c f =
  let saved = !override in
  override := Some c;
  Fun.protect ~finally:(fun () -> override := saved) f
