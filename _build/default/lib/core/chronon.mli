(** A specific point in time at one-second granularity.

    Chronons live on the proleptic Gregorian calendar and are notated
    [yyyy-mm-dd[ hh:mm:ss]]; the time-of-day part is omitted when printing
    midnight values. *)

type t

(** 1970-01-01 00:00:00. *)
val epoch : t

(** {1 Construction} *)

(** [of_civil] builds a chronon from civil-calendar components.
    @raise Invalid_argument when a component is out of range (e.g. Feb 30). *)
val of_civil :
  year:int -> month:int -> day:int -> hour:int -> minute:int -> second:int -> t

(** [of_ymd y m d] is midnight on the given day. *)
val of_ymd : int -> int -> int -> t

(** Decomposes into [(year, month, day, hour, minute, second)]. *)
val to_civil : t -> int * int * int * int * int * int

val year : t -> int

(** Midnight of the chronon's civil day. *)
val start_of_day : t -> t

val of_unix_seconds : int -> t
val to_unix_seconds : t -> int

(** {1 Calendar helpers} *)

val is_leap_year : int -> bool

(** @raise Invalid_argument for months outside 1..12. *)
val days_in_month : int -> int -> int

(** {1 Arithmetic} *)

val add : t -> Span.t -> t
val sub : t -> Span.t -> t

(** [diff a b] is the span from [b] to [a]. *)
val diff : t -> t -> Span.t

(** Next/previous chronon (one second away). *)
val succ : t -> t

val pred : t -> t

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

(** {1 Text} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option

(** @raise Scan.Parse_error on malformed input. *)
val of_string_exn : string -> t

(**/**)

val scan : Scan.t -> t
