(** Quadratic reference implementations of the Element set algebra.

    Used as a differential-testing oracle for {!Element} and as the
    baseline in the benchmark backing the paper's Section 3 claim that
    the real algorithms run in linear time. Inputs are unsorted lists of
    disjoint ground periods. *)

type ground = Period.ground list

(** O(n) insertion into an unsorted disjoint set, absorbing every period
    it overlaps or is adjacent to. *)
val insert_period : ground -> Period.ground -> ground

(** O(n·m) union by repeated insertion. *)
val union : ground -> ground -> ground

(** O(n·m) pairwise-product intersection. *)
val intersect : ground -> ground -> ground

(** O(n·m) difference by repeated subtraction. *)
val difference : ground -> ground -> ground

(** O(n·m) overlap test. *)
val overlaps : ground -> ground -> bool

(** Sorted, disjoint, maximal form of an arbitrary ground set, for
    comparing naive results against {!Element.ground} output. *)
val normalized : ground -> ground
