(* Deliberately-naive implementations of the Element set algebra.

   These are the quadratic algorithms one would get without the sorted
   normalized representation: union inserts one period at a time into an
   unsorted set, intersection takes the pairwise product. They serve two
   purposes: as a differential-testing oracle for [Element], and as the
   baseline in the E4 benchmark backing Section 3's claim that the real
   implementation is "linear in the number of periods". *)

type ground = Period.ground list

(* Inserts [p] into an unsorted disjoint set, absorbing every period it
   touches. Each insertion scans the whole set: O(n) per period, O(n^2)
   for a union. *)
let insert_period set p =
  let touches (s1, e1) (s2, e2) =
    (* Overlapping or adjacent (closed, discrete time). *)
    Chronon.compare s1 (Chronon.succ e2) <= 0
    && Chronon.compare s2 (Chronon.succ e1) <= 0
  in
  let merged, rest =
    List.fold_left
      (fun (cur, rest) q ->
        if touches cur q then
          let s, e = cur and s', e' = q in
          ((Chronon.min s s', Chronon.max e e'), rest)
        else (cur, q :: rest))
      (p, []) set
  in
  merged :: rest

let union a b = List.fold_left insert_period a b

let intersect a b =
  let clip (s1, e1) (s2, e2) =
    let s = Chronon.max s1 s2 and e = Chronon.min e1 e2 in
    if Chronon.compare s e <= 0 then Some (s, e) else None
  in
  List.concat_map (fun p -> List.filter_map (clip p) b) a

let difference a b =
  let rec subtract_one (s1, e1) (s2, e2) =
    ignore subtract_one;
    if Chronon.compare e2 s1 < 0 || Chronon.compare e1 s2 < 0 then
      [ (s1, e1) ]
    else begin
      let before =
        if Chronon.compare s1 s2 < 0 then [ (s1, Chronon.pred s2) ] else []
      in
      let after =
        if Chronon.compare e2 e1 < 0 then [ (Chronon.succ e2, e1) ] else []
      in
      before @ after
    end
  in
  let subtract_all p =
    List.fold_left
      (fun pieces q -> List.concat_map (fun piece -> subtract_one piece q) pieces)
      [ p ] b
  in
  List.concat_map subtract_all a

let overlaps a b =
  List.exists
    (fun p -> List.exists (fun q -> Period.ground_overlaps p q) b)
    a

(* Sorts the final result so naive and linear outputs compare equal. *)
let normalized set =
  List.sort (fun (s1, _) (s2, _) -> Chronon.compare s1 s2) (union [] set)
