(** Temporal profiles: integer-valued step functions over the time line.

    A profile answers "how many facts were true at each instant" — the
    per-instant (sequenced) aggregation that plain SQL plus TIP routines
    cannot express. Notation:
    [{[1999-01-01, 1999-02-28]:1, [1999-03-01, 1999-04-30]:3}];
    zero-valued stretches are omitted. *)

type entry = { span_ : Period.ground; value : int }

(** Ascending, disjoint, non-zero entries. *)
type t

val empty : t
val entries : t -> entry list
val is_empty : t -> bool

(** {1 Construction} *)

(** Endpoint sweep over weighted ground-period sets: O(n log n) in the
    number of periods. *)
val of_weighted_ground : (Period.ground list * int) list -> t

(** Per-instant count of a collection of elements under [now]. *)
val of_elements : now:Chronon.t -> Element.t list -> t

val of_element : now:Chronon.t -> Element.t -> t

(** {1 Observation} *)

(** The step function's value (0 outside every entry). *)
val value_at : t -> Chronon.t -> int

val max_value : t -> int

(** Smallest non-zero value; 0 for the empty profile. *)
val min_nonzero : t -> int

(** Instants where the maximum is reached, as an element. *)
val argmax : t -> Element.t

(** Chronons covered with value >= threshold, as an element. *)
val at_least : t -> int -> Element.t

(** Time-weighted integral: sum of value × duration in seconds (closed
    periods counted discretely). *)
val integral : t -> int

val equal : t -> t -> bool

(** {1 Text} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option

(** @raise Scan.Parse_error on malformed input. *)
val of_string_exn : string -> t

(** Structural invariants, for tests. *)
val check_invariants : t -> bool

(**/**)

val scan : Scan.t -> t
