(** Interval index over period-valued columns: an augmented AVL interval
    tree mapping [lo, hi] second-ranges to row ids, answering overlap
    ("window") queries in O(log n + candidates) on well-spread data.

    This is the reproduction stand-in for the period-index DataBlade of
    Bliujute et al. (ICDE 1999). Multi-period timestamps insert one
    entry per period; NOW-relative endpoints use [min_int]/[max_int] so
    entries stay conservative as time advances, and the executor
    rechecks the exact predicate on the candidates. *)

type t

val create : unit -> t

(** Number of stored intervals. *)
val size : t -> int

val insert : t -> lo:int -> hi:int -> int -> unit

(** Removes one occurrence of the (lo, hi, rid) triple; returns whether
    it was present. *)
val remove : t -> lo:int -> hi:int -> int -> bool

(** Rids whose interval intersects the closed window [lo, hi]; a rid
    appears once per matching stored interval. *)
val query_overlaps : t -> lo:int -> hi:int -> int list

(** Rids whose interval contains the point. *)
val query_stab : t -> at:int -> int list

(** In-order iteration over all stored intervals. *)
val iter : t -> (lo:int -> hi:int -> int -> unit) -> unit

(** Asserts AVL balance and max-end augmentation; for tests. *)
val check_invariants : t -> unit
