(** Table schemas: column names, types and constraints.

    Base types are built in; any other type name in DDL is resolved
    against the datatype registry, so installing a DataBlade is exactly
    what makes [CREATE TABLE ... (valid Element)] legal. *)

type col_type =
  | T_int
  | T_float
  | T_bool
  | T_char of int option  (** CHAR(n)/VARCHAR(n); [None] is unbounded TEXT *)
  | T_date
  | T_ext of string  (** canonical registered extension type name *)

type column = {
  name : string;  (** stored lowercased; SQL identifiers fold case *)
  ty : col_type;
  not_null : bool;
  primary_key : bool;
}

type t = { table_name : string; columns : column array }

exception Schema_error of string

(** Resolves a DDL type name ([INT], [CHAR] with [?param], [DATE], or a
    registered extension type).
    @raise Schema_error for unknown names. *)
val type_of_name : ?param:int -> string -> col_type

(** Canonical display name of a column type. *)
val type_name : col_type -> string

(** [primary_key] implies [not_null]. *)
val make_column :
  ?not_null:bool -> ?primary_key:bool -> string -> col_type -> column

(** @raise Schema_error on duplicate column names or an empty column
    list. *)
val make : table_name:string -> column list -> t

val arity : t -> int
val columns : t -> column list
val column : t -> int -> column

(** Case-insensitive column lookup. *)
val column_index : t -> string -> int option

(** @raise Schema_error when the column does not exist. *)
val column_index_exn : t -> string -> int

(** Position of the primary-key column, if declared. *)
val primary_key_index : t -> int option

(** Does the value inhabit the column type? NULL conforms everywhere
    (nullability is a separate check); ints conform to float columns. *)
val value_conforms : col_type -> Value.t -> bool

(** Normalizes a value into the column type (widens ints in float
    columns, truncates over-width CHAR(n)); [None] on mismatch. *)
val coerce : col_type -> Value.t -> Value.t option

val pp_column : Format.formatter -> column -> unit
val pp : Format.formatter -> t -> unit

(**/**)

val schema_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
