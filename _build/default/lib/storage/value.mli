(** Runtime values, including user-defined (DataBlade) types.

    The base universe mirrors a plain relational engine: integers,
    floats, booleans, strings and SQL's DATE. User-defined types enter
    through {!Ext}[(type_name, payload)] where the payload lives in the
    OCaml extensible variant {!ext}: an extension declares constructors
    and registers a {!vtable} for its type name, and the engine
    dispatches by name without knowing the representation — the moral
    equivalent of Informix's opaque-type registration. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string
  | Date of Tip_core.Chronon.t  (** midnight chronon; SQL's plain DATE *)
  | Ext of string * ext
      (** [(canonical type name, payload)]; the name must be registered *)

and ext = ..

exception Type_error of string

(** {1 Datatype registry} *)

type vtable = {
  parse : string -> t;
      (** build a value from a SQL string literal; raises {!Type_error}
          on malformed input *)
  print : t -> string;  (** display / literal form; must round-trip *)
  compare : (t -> t -> int) option;
      (** a NOW-independent total order, when the type has one (types
          whose order moves with NOW must leave this [None] and register
          comparison operators with the engine instead) *)
  extents : (t -> (int * int) list) option;
      (** conservative [lo, hi] second bounds on the chronons the value
          covers, one entry per period for set-valued timestamps, with
          [min_int]/[max_int] for NOW-relative endpoints; enables
          interval indexing *)
}

(** Registers a datatype under a (case-insensitive) name.
    @raise Invalid_argument if the name is taken. *)
val register_type : name:string -> vtable -> unit

val lookup_type : string -> vtable option
val registered_types : unit -> string list
val canonical_type_name : string -> string

(** {1 Observers} *)

(** The value's type name: ["int"], ["char"], ["date"], ... or the
    registered extension name. *)
val type_name : t -> string

val is_null : t -> bool
val to_display_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Ordering, equality, hashing}

    [compare] is a total order across kinds (NULL first, then booleans,
    numbers, strings, dates, extension values) so ORDER BY always works;
    only same-kind incomparabilities (two different extension types, or
    an extension type without an order) raise {!Type_error}. [equal] and
    [hash] are consistent with each other, including [Int]/[Float]
    equality and printed-form fallback for orderless extension types. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** {1 Interval-index support} *)

(** Conservative chronon extents, one per covered period; [[]] when the
    value has no temporal extent. *)
val extents : t -> (int * int) list

(** The single bounding extent (for index probes); [None] when empty. *)
val extent : t -> (int * int) option

(** {1 Checked coercions}

    All raise {!Type_error} on mismatch. *)

val to_int : t -> int
val to_float : t -> float
val to_bool : t -> bool
val to_string_value : t -> string
val to_date : t -> Tip_core.Chronon.t

(**/**)

val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
