(** B+tree secondary index: an ordered multimap from column values to
    row ids with exact lookups and clipped range scans.

    Keys are ordered by {!Value.compare}; a column therefore needs a
    NOW-independent order to be B+tree-indexable (NOW-relative types
    use interval indexes instead). Nodes are immutable arrays and
    inserts copy the root-to-leaf path. Deletion removes entries without
    rebalancing — the tree can fall below the fill factor but never
    loses ordering (the usual lazy-deletion compromise). *)

type rid = int

type t

val create : unit -> t

(** Number of (key, rid) entries, counting duplicates. *)
val entry_count : t -> int

(** (key, rid) pairs behave as a multiset: inserting the same pair twice
    stores it twice. *)
val insert : t -> Value.t -> rid -> unit

(** Removes one occurrence; returns whether it was present. *)
val remove : t -> Value.t -> rid -> bool

(** All rids under an exactly-equal key (most recent first). *)
val find : t -> Value.t -> rid list

type bound = Unbounded | Inclusive of Value.t | Exclusive of Value.t

(** In-order traversal clipped to the bounds; touches
    O(log n + answer) nodes. *)
val iter_range : t -> lo:bound -> hi:bound -> (Value.t -> rid -> unit) -> unit

(** Rids of every entry within the bounds, in key order. *)
val range : t -> lo:bound -> hi:bound -> rid list

val iter : t -> (Value.t -> rid -> unit) -> unit

(** Asserts key ordering and separator consistency; for tests. *)
val check_invariants : t -> unit
