(** Textual snapshot persistence for a whole catalog.

    Cell values are serialized through each type's printer and re-parsed
    on load, which is exact because every value type round-trips through
    its literal syntax; in particular NOW-relative timestamps are stored
    symbolically. Extension types must be registered before {!load}.

    Durability scope: snapshot save/load only — write-ahead logging and
    recovery are out of scope for the demo system (DESIGN.md). *)

exception Format_error of string

(** Writes every table (schema, indexes, rows) to the file. *)
val save : Catalog.t -> string -> unit

(** Rebuilds a catalog from a snapshot: rows re-inserted, secondary
    indexes recreated and backfilled.
    @raise Format_error on malformed input
    @raise Sys_error on I/O failure. *)
val load : string -> Catalog.t

(**/**)

val serialize_value : Value.t -> string
val parse_value : Schema.col_type -> string -> Value.t
val escape_cell : string -> string
val unescape_cell : string -> string
