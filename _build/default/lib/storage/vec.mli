(** Growable arrays, the backing store for heap files.

    [dummy] fills unused capacity so freed slots do not retain live
    values. *)

type 'a t

val create : dummy:'a -> 'a t
val length : 'a t -> int

(** Appends and returns the element's index. *)
val push : 'a t -> 'a -> int

(** @raise Invalid_argument out of bounds. *)
val get : 'a t -> int -> 'a

(** @raise Invalid_argument out of bounds. *)
val set : 'a t -> int -> 'a -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val clear : 'a t -> unit
val to_list : 'a t -> 'a list
