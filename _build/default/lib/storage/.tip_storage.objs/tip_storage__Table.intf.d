lib/storage/table.mli: Btree Interval_index Schema Value
