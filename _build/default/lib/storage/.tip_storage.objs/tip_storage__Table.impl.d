lib/storage/table.ml: Array Btree Format Heap Interval_index List Schema String Value
