lib/storage/catalog.ml: Format Hashtbl List Schema String Table
