lib/storage/interval_index.ml: Int List Option Stdlib
