lib/storage/value.mli: Format Tip_core
