lib/storage/heap.ml: List Printf Value Vec
