lib/storage/vec.mli:
