lib/storage/persist.mli: Catalog Schema Value
