lib/storage/value.ml: Bool Float Fmt Format Hashtbl Int List Printf Stdlib String Tip_core
