lib/storage/interval_index.mli:
