lib/storage/persist.ml: Array Buffer Catalog Format Fun List Printf Schema String Table Tip_core Value
