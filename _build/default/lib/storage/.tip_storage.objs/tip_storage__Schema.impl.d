lib/storage/schema.ml: Array Fmt Format Hashtbl List Printf String Value
