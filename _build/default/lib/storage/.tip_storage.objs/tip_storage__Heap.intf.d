lib/storage/heap.mli: Value
