(* Runtime values, including user-defined (DataBlade) types.

   The base universe mirrors what a plain relational engine offers —
   integers, floats, booleans, strings and SQL's DATE. Everything else
   enters through [Ext (type_name, payload)], where the payload lives in
   an OCaml extensible variant: an extension (such as the TIP blade)
   declares new payload constructors and registers a vtable for its type
   name, and the engine dispatches on the name without ever knowing the
   concrete representation. This is the moral equivalent of Informix's
   opaque-type registration. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string
  | Date of Tip_core.Chronon.t (* midnight chronon; SQL's plain DATE *)
  | Ext of string * ext

and ext = ..

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

(* --- Datatype registry ---------------------------------------------- *)

type vtable = {
  parse : string -> t;
    (* from a SQL string literal; raises Type_error on bad input *)
  print : t -> string;
  compare : (t -> t -> int) option; (* total order, when the type has one *)
  extents : (t -> (int * int) list) option;
    (* conservative [lo, hi] bounds in seconds on the chronons the value
       covers — one entry per period for set-valued timestamps, with int
       bounds standing in for ±infinity when an endpoint is NOW-relative;
       enables interval indexing *)
}

let registry : (string, vtable) Hashtbl.t = Hashtbl.create 16

let canonical_type_name name = String.lowercase_ascii name

let register_type ~name vtable =
  let key = canonical_type_name name in
  if Hashtbl.mem registry key then
    invalid_arg (Printf.sprintf "Value.register_type: %s already registered" key);
  Hashtbl.replace registry key vtable

let lookup_type name = Hashtbl.find_opt registry (canonical_type_name name)

let registered_types () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry []
  |> List.sort String.compare

(* --- Observers -------------------------------------------------------- *)

let type_name = function
  | Null -> "null"
  | Int _ -> "int"
  | Float _ -> "float"
  | Bool _ -> "boolean"
  | Str _ -> "char"
  | Date _ -> "date"
  | Ext (name, _) -> name

let is_null = function Null -> true | _ -> false

let vtable_of_ext name =
  match lookup_type name with
  | Some vt -> vt
  | None -> type_error "unregistered extension type %s" name

let to_display_string = function
  | Null -> "NULL"
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> if b then "t" else "f"
  | Str s -> s
  | Date c -> Tip_core.Chronon.to_string c
  | Ext (name, _) as v -> (vtable_of_ext name).print v

let pp ppf v = Fmt.string ppf (to_display_string v)

(* --- Ordering and equality -------------------------------------------- *)

(* Rank for ordering across base constructors; NULL sorts first (the
   executor handles three-valued logic before we get here, but ORDER BY
   still needs a total order over whole columns). *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3
  | Date _ -> 4
  | Ext _ -> 5

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Bool x, Bool y -> Bool.compare x y
  | Str x, Str y -> String.compare x y
  | Date x, Date y -> Tip_core.Chronon.compare x y
  | Ext (n1, _), Ext (n2, _) when String.equal n1 n2 ->
    (match (vtable_of_ext n1).compare with
    | Some cmp -> cmp a b
    | None -> type_error "type %s has no ordering" n1)
  | _, _ ->
    let r1 = rank a and r2 = rank b in
    if r1 <> r2 then Int.compare r1 r2
    else type_error "cannot compare %s with %s" (type_name a) (type_name b)

let equal a b =
  match a, b with
  | Ext (n1, _), Ext (n2, _) when not (String.equal n1 n2) -> false
  | Ext (n, _), Ext (_, _) -> (
    (* Same extension type: use its ordering when it has one, otherwise
       fall back to printed-form equality (consistent with [hash]). *)
    match (vtable_of_ext n).compare with
    | Some cmp -> cmp a b = 0
    | None ->
      String.equal ((vtable_of_ext n).print a) ((vtable_of_ext n).print b))
  | Ext _, (Null | Int _ | Float _ | Bool _ | Str _ | Date _)
  | (Null | Int _ | Float _ | Bool _ | Str _ | Date _), _ -> (
    match compare a b with
    | c -> c = 0
    | exception Type_error _ -> false)

let hash v =
  match v with
  | Null -> 0
  | Int n -> Hashtbl.hash n
  (* Integral floats must hash like ints, since compare treats 1 = 1.0. *)
  | Float f when Float.is_integer f && Float.abs f < 1e18 ->
    Hashtbl.hash (int_of_float f)
  | Float f -> Hashtbl.hash f
  | Bool b -> Hashtbl.hash b
  | Str s -> Hashtbl.hash s
  | Date c -> Tip_core.Chronon.hash c
  | Ext (name, _) -> Hashtbl.hash (name, (vtable_of_ext name).print v)

(* Conservative chronon extents, for interval indexes: one [lo, hi]
   entry per covered period. *)
let extents v =
  match v with
  | Date c ->
    let s = Tip_core.Chronon.to_unix_seconds c in
    [ (s, s) ]
  | Ext (name, _) -> (
    match (vtable_of_ext name).extents with
    | Some f -> f v
    | None -> [])
  | Null | Int _ | Float _ | Bool _ | Str _ -> []

(* The single bounding extent (for index probes). *)
let extent v =
  match extents v with
  | [] -> None
  | (lo, hi) :: rest ->
    Some
      (List.fold_left
         (fun (alo, ahi) (lo, hi) -> (Stdlib.min alo lo, Stdlib.max ahi hi))
         (lo, hi) rest)

(* --- Numeric coercions ------------------------------------------------ *)

let to_int = function
  | Int n -> n
  | Float f when Float.is_integer f -> int_of_float f
  | v -> type_error "expected int, got %s" (type_name v)

let to_float = function
  | Int n -> float_of_int n
  | Float f -> f
  | v -> type_error "expected float, got %s" (type_name v)

let to_bool = function
  | Bool b -> b
  | v -> type_error "expected boolean, got %s" (type_name v)

let to_string_value = function
  | Str s -> s
  | v -> type_error "expected string, got %s" (type_name v)

let to_date = function
  | Date c -> c
  | v -> type_error "expected date, got %s" (type_name v)
