(* Textual snapshot persistence for a whole catalog.

   The format is a line-oriented header-and-rows layout; cell values are
   serialized through each type's printer and re-parsed on load, which is
   exact because every value type (including blade types) round-trips
   through its literal syntax — in particular NOW-relative timestamps are
   stored symbolically, as they must be.

   Durability scope: snapshot save/load only. Write-ahead logging and
   recovery are out of scope for the demo system (see DESIGN.md). *)

exception Format_error of string

let format_error fmt = Format.kasprintf (fun s -> raise (Format_error s)) fmt

(* --- Cell escaping ----------------------------------------------------- *)

let escape_cell s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape_cell s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      (if s.[i] = '\\' && i + 1 < n then begin
         (match s.[i + 1] with
         | 't' -> Buffer.add_char buf '\t'
         | 'n' -> Buffer.add_char buf '\n'
         | '\\' -> Buffer.add_char buf '\\'
         | c -> Buffer.add_char buf c);
         go (i + 2)
       end
       else begin
         Buffer.add_char buf s.[i];
         go (i + 1)
       end)
    end
  in
  go 0;
  Buffer.contents buf

let null_marker = "\\N"

let serialize_value v =
  if Value.is_null v then null_marker
  else begin
    match v with
    | Value.Bool b -> if b then "t" else "f"
    | Value.Null | Value.Int _ | Value.Float _ | Value.Str _ | Value.Date _
    | Value.Ext _ -> escape_cell (Value.to_display_string v)
  end

let parse_value ty cell =
  if String.equal cell null_marker then Value.Null
  else begin
    let text = unescape_cell cell in
    match ty with
    | Schema.T_int -> Value.Int (int_of_string text)
    | Schema.T_float -> Value.Float (float_of_string text)
    | Schema.T_bool -> Value.Bool (String.equal text "t")
    | Schema.T_char _ -> Value.Str text
    | Schema.T_date -> (
      match Tip_core.Chronon.of_string text with
      | Some c -> Value.Date c
      | None -> format_error "bad date cell %S" text)
    | Schema.T_ext name -> (
      match Value.lookup_type name with
      | Some vt -> vt.Value.parse text
      | None -> format_error "type %s not registered at load time" name)
  end

(* --- Saving ------------------------------------------------------------- *)

let type_spec ty =
  match ty with
  | Schema.T_int -> ("INT", "-")
  | Schema.T_float -> ("FLOAT", "-")
  | Schema.T_bool -> ("BOOLEAN", "-")
  | Schema.T_char None -> ("TEXT", "-")
  | Schema.T_char (Some n) -> ("CHAR", string_of_int n)
  | Schema.T_date -> ("DATE", "-")
  | Schema.T_ext name -> ("EXT:" ^ name, "-")

let save_table oc table =
  let schema = Table.schema table in
  Printf.fprintf oc "table %s\n" schema.Schema.table_name;
  Array.iter
    (fun c ->
      let ty, param = type_spec c.Schema.ty in
      Printf.fprintf oc "column %s %s %s %d %d\n" c.Schema.name ty param
        (if c.Schema.not_null then 1 else 0)
        (if c.Schema.primary_key then 1 else 0))
    schema.Schema.columns;
  List.iter
    (fun idx ->
      let kind =
        match idx.Table.impl with
        | Table.Ordered_impl _ -> "ordered"
        | Table.Interval_impl _ -> "interval"
      in
      let col = (Schema.column schema idx.Table.idx_column).Schema.name in
      Printf.fprintf oc "index %s %s %s %d\n" idx.Table.idx_name col kind
        (if idx.Table.idx_unique then 1 else 0))
    (Table.indexes table);
  Printf.fprintf oc "rows %d\n" (Table.row_count table);
  Table.iteri
    (fun _rid row ->
      let cells = Array.to_list (Array.map serialize_value row) in
      Printf.fprintf oc "%s\n" (String.concat "\t" cells))
    table;
  Printf.fprintf oc "end\n"

let save catalog path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "tipdb 1\n";
      List.iter
        (fun name -> save_table oc (Catalog.table_exn catalog name))
        (Catalog.table_names catalog))

(* --- Loading ------------------------------------------------------------- *)

type reader = { ic : in_channel; mutable line_no : int }

let read_line_opt r =
  match input_line r.ic with
  | line ->
    r.line_no <- r.line_no + 1;
    Some line
  | exception End_of_file -> None

let read_line_exn r what =
  match read_line_opt r with
  | Some line -> line
  | None -> format_error "unexpected end of file (expected %s)" what

let parse_type ty param =
  if String.length ty > 4 && String.sub ty 0 4 = "EXT:" then
    Schema.T_ext (String.sub ty 4 (String.length ty - 4))
  else begin
    match ty with
    | "INT" -> Schema.T_int
    | "FLOAT" -> Schema.T_float
    | "BOOLEAN" -> Schema.T_bool
    | "TEXT" -> Schema.T_char None
    | "CHAR" -> Schema.T_char (Some (int_of_string param))
    | "DATE" -> Schema.T_date
    | _ -> format_error "unknown stored type %s" ty
  end

let split_words line = String.split_on_char ' ' line

let load_table r catalog first_line =
  let table_name =
    match split_words first_line with
    | [ "table"; name ] -> name
    | _ -> format_error "expected table header, got %S" first_line
  in
  (* Columns, then optional index lines, then rows. *)
  let columns = ref [] in
  let index_specs = ref [] in
  let rec header () =
    let line = read_line_exn r "column/index/rows" in
    match split_words line with
    | [ "column"; name; ty; param; not_null; pk ] ->
      let ty = parse_type ty param in
      columns :=
        Schema.make_column ~not_null:(not_null = "1") ~primary_key:(pk = "1")
          name ty
        :: !columns;
      header ()
    | [ "index"; idx_name; col; kind; unique ] ->
      index_specs := (idx_name, col, kind, unique = "1") :: !index_specs;
      header ()
    | [ "rows"; n ] -> int_of_string n
    | _ -> format_error "bad header line %S" line
  in
  let n_rows = header () in
  let schema = Schema.make ~table_name (List.rev !columns) in
  let table = Catalog.create_table catalog schema in
  let types = Array.map (fun c -> c.Schema.ty) schema.Schema.columns in
  for _ = 1 to n_rows do
    let line = read_line_exn r "row" in
    let cells = Array.of_list (String.split_on_char '\t' line) in
    if Array.length cells <> Array.length types then
      format_error "row arity mismatch at line %d" r.line_no;
    let row = Array.mapi (fun i cell -> parse_value types.(i) cell) cells in
    ignore (Table.insert table row)
  done;
  (match read_line_exn r "end" with
  | "end" -> ()
  | line -> format_error "expected end, got %S" line);
  (* Recreate secondary indexes (the pkey index already exists). *)
  List.iter
    (fun (idx_name, col, kind, unique) ->
      if Table.find_index table idx_name = None then begin
        let kind =
          match kind with
          | "ordered" -> Table.Ordered
          | "interval" -> Table.Interval
          | k -> format_error "unknown index kind %s" k
        in
        ignore (Catalog.create_index catalog ~idx_name ~table_name ~column:col
                  ~unique ~kind)
      end)
    (List.rev !index_specs)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let r = { ic; line_no = 0 } in
      (match read_line_opt r with
      | Some "tipdb 1" -> ()
      | Some line -> format_error "bad magic %S" line
      | None -> format_error "empty file");
      let catalog = Catalog.create () in
      let rec tables () =
        match read_line_opt r with
        | None -> ()
        | Some "" -> tables ()
        | Some line ->
          load_table r catalog line;
          tables ()
      in
      tables ();
      catalog)
