(* Table schemas: column names, types and constraints.

   Base types are built in; any other type name in DDL is resolved
   against the datatype registry, so installing a DataBlade is what makes
   [CREATE TABLE ... (valid Element)] legal. *)

type col_type =
  | T_int
  | T_float
  | T_bool
  | T_char of int option (* CHAR(n) / VARCHAR(n); width only checked on insert *)
  | T_date
  | T_ext of string (* canonical registered type name *)

type column = {
  name : string; (* stored lowercased; SQL identifiers are case-insensitive *)
  ty : col_type;
  not_null : bool;
  primary_key : bool;
}

type t = { table_name : string; columns : column array }

exception Schema_error of string

let schema_error fmt = Format.kasprintf (fun s -> raise (Schema_error s)) fmt

let type_of_name ?param name =
  match String.uppercase_ascii name with
  | "INT" | "INTEGER" | "BIGINT" | "SMALLINT" -> T_int
  | "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" -> T_float
  | "BOOLEAN" | "BOOL" -> T_bool
  | "CHAR" | "VARCHAR" | "CHARACTER" -> T_char param
  | "TEXT" | "STRING" -> T_char None
  | "DATE" -> T_date
  | _ ->
    (match Value.lookup_type name with
    | Some _ -> T_ext (Value.canonical_type_name name)
    | None -> schema_error "unknown type %s (is the DataBlade installed?)" name)

let type_name = function
  | T_int -> "INT"
  | T_float -> "FLOAT"
  | T_bool -> "BOOLEAN"
  | T_char None -> "TEXT"
  | T_char (Some n) -> Printf.sprintf "CHAR(%d)" n
  | T_date -> "DATE"
  | T_ext name -> String.capitalize_ascii name

let make_column ?(not_null = false) ?(primary_key = false) name ty =
  { name = String.lowercase_ascii name; ty; not_null = not_null || primary_key;
    primary_key }

let make ~table_name columns =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.name then
        schema_error "duplicate column %s in table %s" c.name table_name;
      Hashtbl.replace seen c.name ())
    columns;
  if columns = [] then schema_error "table %s has no columns" table_name;
  { table_name = String.lowercase_ascii table_name;
    columns = Array.of_list columns }

let arity t = Array.length t.columns
let columns t = Array.to_list t.columns
let column t i = t.columns.(i)

let column_index t name =
  let name = String.lowercase_ascii name in
  let rec find i =
    if i >= Array.length t.columns then None
    else if String.equal t.columns.(i).name name then Some i
    else find (i + 1)
  in
  find 0

let column_index_exn t name =
  match column_index t name with
  | Some i -> i
  | None -> schema_error "no column %s in table %s" name t.table_name

let primary_key_index t =
  let rec find i =
    if i >= Array.length t.columns then None
    else if t.columns.(i).primary_key then Some i
    else find (i + 1)
  in
  find 0

(* Does [v] inhabit column type [ty]? Ints are accepted in float columns. *)
let value_conforms ty (v : Value.t) =
  match ty, v with
  | _, Value.Null -> true (* nullability is checked separately *)
  | T_int, Value.Int _ -> true
  | T_float, (Value.Float _ | Value.Int _) -> true
  | T_bool, Value.Bool _ -> true
  | T_char _, Value.Str _ -> true
  | T_date, Value.Date _ -> true
  | T_ext name, Value.Ext (name', _) -> String.equal name name'
  | (T_int | T_float | T_bool | T_char _ | T_date | T_ext _), _ -> false

(* Normalizes a value into the column's type: widens ints in float
   columns, truncates over-width CHAR(n). Returns [None] on mismatch. *)
let coerce ty (v : Value.t) =
  match ty, v with
  | _, Value.Null -> Some Value.Null
  | T_float, Value.Int n -> Some (Value.Float (float_of_int n))
  | T_char (Some n), Value.Str s when String.length s > n ->
    Some (Value.Str (String.sub s 0 n))
  | _, _ -> if value_conforms ty v then Some v else None

let pp_column ppf c =
  Fmt.pf ppf "%s %s%s" c.name (type_name c.ty)
    (if c.primary_key then " PRIMARY KEY" else if c.not_null then " NOT NULL"
     else "")

let pp ppf t =
  Fmt.pf ppf "%s(%a)" t.table_name
    (Fmt.array ~sep:(Fmt.any ", ") pp_column)
    t.columns
