(* A TSQL2-flavored sequenced-query layer on top of TIP.

   The paper's closing sentence proposes investigating "how closely TIP
   can approach a full-featured temporal query language like TSQL2 in
   expressive power". This module is that investigation, executable: it
   implements TSQL2's core querying idioms as a *translation* into plain
   TIP SQL — which is exactly the position the paper stakes out (no new
   language, just routines), turned into a compatibility layer.

   Supported surface (on tables whose tuple timestamp is an Element
   column, [valid] by default):

   - {e sequenced} SELECT (TSQL2's default): tuples from different
     correlations join only while simultaneously valid, and the result
     carries the intersection of their timestamps. Translation: add
     pairwise [overlaps] conjuncts and a nested [intersect(...)]
     timestamp column.
   - [SELECT SNAPSHOT ...]: TSQL2's non-temporal query — translation
     drops the timestamp machinery and evaluates under NOW like any SQL
     query.
   - [VALID(c)] in any expression: the timestamp of correlation [c];
     translates to the correlation's element column.
   - TSQL2 period predicates over VALID(): [overlaps], [contains],
     Allen's operators — these are already TIP routines, so they pass
     through untouched.

   Deliberately out of scope (documented limitations of the approach,
   which is itself a result): sequenced aggregation/GROUP BY (TSQL2
   gives it per-instant semantics that need a temporal-grouping operator
   TIP lacks), valid-time projection clauses ([VALID e] in the select
   head), and temporal ordering. Attempting them raises
   [Unsupported]. *)

module Ast = Tip_sql.Ast
module Parser = Tip_sql.Parser
module Pretty = Tip_sql.Pretty

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

type mode = Sequenced | Snapshot

(* The correlations (alias or table name) of the FROM clause, in order.
   Joins inside the FROM clause keep their own ON conditions; each base
   table still participates in the sequenced semantics. *)
let rec correlations_of_ref r =
  match r with
  | Ast.Table { name; alias; _ } ->
    [ String.lowercase_ascii (Option.value alias ~default:name) ]
  | Ast.Join { left; right; _ } ->
    correlations_of_ref left @ correlations_of_ref right
  | Ast.Derived { alias; _ } ->
    (* A derived table has no implicit timestamp; TSQL2 would call this a
       snapshot nested query. We let it join non-temporally. *)
    ignore alias;
    []

let correlations select = List.concat_map correlations_of_ref select.Ast.from

(* Rewrites VALID(c) into c.<valid_column> everywhere. *)
let rec rewrite_valid ~valid_column e =
  match e with
  | Ast.Call (name, [ Ast.Column (None, corr) ])
    when String.lowercase_ascii name = "valid" ->
    Ast.Column (Some corr, valid_column)
  | Ast.Call (name, _) when String.lowercase_ascii name = "valid" ->
    unsupported "VALID() takes exactly one correlation name"
  | e -> Ast.map_children (rewrite_valid ~valid_column) e

let conjoin a b = Ast.Binop (Ast.And, a, b)

(* intersect(c1.valid, intersect(c2.valid, ...)) over all correlations. *)
let intersection_of ~valid_column corrs =
  match List.rev corrs with
  | [] -> unsupported "sequenced query needs at least one table"
  | last :: rest ->
    List.fold_left
      (fun acc corr ->
        Ast.Call ("intersect", [ Ast.Column (Some corr, valid_column); acc ]))
      (Ast.Column (Some last, valid_column))
      rest

(* overlaps(ci.valid, cj.valid) for every pair. *)
let pairwise_overlaps ~valid_column corrs =
  let rec pairs = function
    | [] | [ _ ] -> []
    | c :: rest -> List.map (fun c' -> (c, c')) rest @ pairs rest
  in
  List.map
    (fun (a, b) ->
      Ast.Call
        ( "overlaps",
          [ Ast.Column (Some a, valid_column); Ast.Column (Some b, valid_column) ] ))
    (pairs corrs)

(* Translates one parsed TSQL2-flavored SELECT into a TIP SELECT. *)
let translate_select ~mode ~valid_column (s : Ast.select) : Ast.select =
  let rw = rewrite_valid ~valid_column in
  let items =
    List.map
      (function
        | Ast.Sel_expr (e, alias) -> Ast.Sel_expr (rw e, alias)
        | Ast.Sel_star q -> Ast.Sel_star q)
      s.Ast.items
  in
  let where = Option.map rw s.Ast.where in
  let having = Option.map rw s.Ast.having in
  let order_by = List.map (fun (e, d) -> (rw e, d)) s.Ast.order_by in
  let group_by = List.map rw s.Ast.group_by in
  match mode with
  | Snapshot ->
    { s with items; where; having; order_by; group_by }
  | Sequenced ->
    if s.Ast.group_by <> [] then
      unsupported
        "sequenced GROUP BY needs per-instant aggregation; use SNAPSHOT \
         with group_union or group_profile instead";
    let corrs = correlations s in
    if corrs = [] then
      unsupported "sequenced query needs at least one timestamped table";
    let overlap_conjuncts = pairwise_overlaps ~valid_column corrs in
    let where =
      List.fold_left
        (fun acc c -> Some (match acc with None -> c | Some w -> conjoin w c))
        where overlap_conjuncts
    in
    let timestamp =
      Ast.Sel_expr (intersection_of ~valid_column corrs, Some "valid")
    in
    { s with items = items @ [ timestamp ]; where; having; order_by; group_by }

(* Entry points: text to text, and text to result. *)

(* Detects [SELECT SNAPSHOT ...] (the standard parser does not know the
   keyword) and splices SNAPSHOT out of the source text. *)
let parse_mode sql =
  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let n = String.length sql in
  let rec skip_ws i = if i < n && is_space sql.[i] then skip_ws (i + 1) else i in
  let word_at i =
    let rec stop j =
      if j < n && (sql.[j] = '_' || (sql.[j] >= 'a' && sql.[j] <= 'z')
                  || (sql.[j] >= 'A' && sql.[j] <= 'Z'))
      then stop (j + 1)
      else j
    in
    let j = stop i in
    (String.uppercase_ascii (String.sub sql i (j - i)), j)
  in
  let i = skip_ws 0 in
  let w1, j = word_at i in
  if w1 <> "SELECT" then (Sequenced, sql)
  else begin
    let k = skip_ws j in
    let w2, m = word_at k in
    if w2 = "SNAPSHOT" then
      (Snapshot, String.sub sql 0 j ^ String.sub sql m (n - m))
    else (Sequenced, sql)
  end

let translate ?(valid_column = "valid") sql =
  let mode, sql = parse_mode sql in
  match Parser.parse sql with
  | Ast.Select s ->
    Pretty.statement_to_string
      (Ast.Select (translate_select ~mode ~valid_column s))
  | Ast.Select_compound _ ->
    unsupported "set operations are not part of the TSQL2 layer"
  | _ -> unsupported "the TSQL2 layer translates SELECT statements only"
  | exception Parser.Error msg -> raise (Unsupported msg)

(* Translates and runs against a TIP-enabled database. *)
let exec ?(params = []) ?valid_column db sql =
  Tip_engine.Database.exec ~params db (translate ?valid_column sql)
