(** A TSQL2-flavored sequenced-query layer on top of TIP — the paper's
    future-work question ("how closely can TIP approach TSQL2?") made
    executable as a translation into plain TIP SQL.

    Queries run against tables whose tuple timestamp is an Element
    column ([valid] by default):
    - by default a SELECT is {e sequenced}: correlations join only while
      simultaneously valid (pairwise [overlaps] conjuncts) and the
      result carries the intersection of their timestamps as a final
      [valid] column;
    - [SELECT SNAPSHOT ...] is TSQL2's non-temporal query: plain SQL
      evaluated under NOW;
    - [VALID(c)] anywhere in an expression denotes correlation [c]'s
      timestamp;
    - TSQL2's period predicates (Allen's operators, [overlaps],
      [contains]) are already TIP routines and pass through.

    Out of scope, by design (the measure of the distance to full TSQL2):
    sequenced GROUP BY (needs per-instant aggregation), valid-clause
    projection, temporal ordering — these raise {!Unsupported}. *)

exception Unsupported of string

type mode = Sequenced | Snapshot

(** Translates a TSQL2-flavored SELECT into executable TIP SQL.
    @raise Unsupported for constructs outside the layer. *)
val translate : ?valid_column:string -> string -> string

(** [translate] then execute. *)
val exec :
  ?params:(string * Tip_storage.Value.t) list ->
  ?valid_column:string ->
  Tip_engine.Database.t ->
  string ->
  Tip_engine.Database.result
