lib/tsql2/tsql2.mli: Tip_engine Tip_storage
