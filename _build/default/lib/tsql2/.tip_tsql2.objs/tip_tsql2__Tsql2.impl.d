lib/tsql2/tsql2.ml: Format List Option String Tip_engine Tip_sql
