(** The remote client: an embedded-connection-shaped API over the wire
    protocol. Typed values are rebuilt on this side, so register the
    blade types ({!Tip_blade.Values.register_types}) before connecting
    when results contain temporal columns. *)

exception Remote_error of string

type t

(** @raise Remote_error when the server is unreachable. *)
val connect : ?host:string -> port:int -> unit -> t

(** Binds a [:name] parameter for the next {!execute}. *)
val bind : t -> string -> Tip_storage.Value.t -> unit

(** Executes one statement.
    @raise Remote_error on server-side errors or a lost connection. *)
val execute : t -> string -> Tip_engine.Database.result

val close : t -> unit
