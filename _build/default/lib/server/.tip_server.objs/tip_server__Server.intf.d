lib/server/server.mli: Tip_engine
