lib/server/protocol.mli: Tip_storage Value
