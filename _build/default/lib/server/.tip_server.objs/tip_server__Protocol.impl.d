lib/server/protocol.ml: Array List Persist Printf String Tip_core Tip_storage Value
