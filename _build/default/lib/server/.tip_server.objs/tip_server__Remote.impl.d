lib/server/remote.ml: Protocol Tip_engine Unix
