lib/server/server.ml: Fun List Logs Mutex Protocol Thread Tip_engine Tip_sql Tip_storage Unix
