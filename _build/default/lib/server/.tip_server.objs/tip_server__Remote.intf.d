lib/server/remote.mli: Tip_engine Tip_storage
