(* CSV import/export for tables (the COPY statement).

   RFC-4180-style quoting: fields containing commas, quotes or newlines
   are wrapped in double quotes, with embedded quotes doubled. NULL is
   an unquoted empty field; a quoted empty string ("") stays an empty
   string — the usual disambiguation. Cell values travel in display
   syntax and are re-parsed by column type on import, so blade values
   (NOW included) round-trip. *)

open Tip_storage

exception Csv_error of string

let csv_error fmt = Format.kasprintf (fun s -> raise (Csv_error s)) fmt

(* --- Writing --------------------------------------------------------------- *)

let needs_quoting s =
  s = ""
  || String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote_field s =
  if not (needs_quoting s) then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let field_of_value v =
  if Value.is_null v then "" else quote_field (Value.to_display_string v)

(* Writes the table as CSV with a header line; returns the row count. *)
let export table path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let schema = Table.schema table in
      let names =
        List.map (fun c -> quote_field c.Schema.name) (Schema.columns schema)
      in
      output_string oc (String.concat "," names);
      output_char oc '\n';
      let n = ref 0 in
      Table.iteri
        (fun _ row ->
          incr n;
          output_string oc
            (String.concat ","
               (Array.to_list (Array.map field_of_value row)));
          output_char oc '\n')
        table;
      !n)

(* --- Reading ---------------------------------------------------------------- *)

(* A streaming CSV record reader handling quoted fields with embedded
   newlines. Returns fields as (text, was_quoted). *)
let read_record ic =
  match input_line ic with
  | exception End_of_file -> None
  | first_line ->
    let fields = ref [] in
    let buf = Buffer.create 32 in
    let quoted = ref false in
    let finish () =
      fields := (Buffer.contents buf, !quoted) :: !fields;
      Buffer.clear buf;
      quoted := false
    in
    (* The record may span lines when a quoted field contains '\n'. *)
    let rec scan line i in_quotes =
      if i >= String.length line then begin
        if in_quotes then begin
          (* embedded newline: pull the next physical line *)
          Buffer.add_char buf '\n';
          match input_line ic with
          | next -> scan next 0 true
          | exception End_of_file -> csv_error "unterminated quoted field"
        end
        else finish ()
      end
      else begin
        let c = line.[i] in
        if in_quotes then begin
          if c = '"' then begin
            if i + 1 < String.length line && line.[i + 1] = '"' then begin
              Buffer.add_char buf '"';
              scan line (i + 2) true
            end
            else scan line (i + 1) false
          end
          else begin
            Buffer.add_char buf c;
            scan line (i + 1) true
          end
        end
        else if c = '"' && Buffer.length buf = 0 && not !quoted then begin
          quoted := true;
          scan line (i + 1) true
        end
        else if c = ',' then begin
          finish ();
          scan line (i + 1) false
        end
        else if c = '\r' && i = String.length line - 1 then scan line (i + 1) false
        else begin
          Buffer.add_char buf c;
          scan line (i + 1) false
        end
      end
    in
    scan first_line 0 false;
    Some (List.rev !fields)

(* Re-parses one CSV field into the column's type. Unquoted empty is
   NULL; parsing goes through the snapshot machinery so extension
   literals work. *)
let value_of_field ty (text, was_quoted) =
  if text = "" && not was_quoted then Value.Null
  else Persist.parse_value ty (Persist.escape_cell text)

(* Reads CSV (header required, names checked) and hands each typed row
   to [insert]; returns the row count. *)
let import ~schema ~insert path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        match read_record ic with
        | Some fields -> List.map (fun (text, _) -> String.lowercase_ascii text) fields
        | None -> csv_error "empty CSV file"
      in
      let expected =
        List.map (fun c -> c.Schema.name) (Schema.columns schema)
      in
      if header <> expected then
        csv_error "CSV header %s does not match table columns %s"
          (String.concat "," header)
          (String.concat "," expected);
      let types =
        Array.of_list (List.map (fun c -> c.Schema.ty) (Schema.columns schema))
      in
      let n = ref 0 in
      let rec rows () =
        match read_record ic with
        | None -> ()
        | Some fields ->
          if List.length fields <> Array.length types then
            csv_error "row %d has %d fields, expected %d" (!n + 1)
              (List.length fields) (Array.length types);
          let row =
            Array.of_list
              (List.mapi (fun i f -> value_of_field types.(i) f) fields)
          in
          insert row;
          incr n;
          rows ()
      in
      rows ();
      !n)
