(** Built-in scalar functions, installed into every database's extension
    registry at creation through the same mechanism a DataBlade uses.

    Strings: [upper], [lower], [length], [char_length], [trim],
    [reverse], [substr] (1-based, 2- and 3-argument), [replace],
    [strpos]. Numbers: [abs], [round], [floor], [ceil], [sqrt], [power],
    [sign]. NULL handling: [coalesce] (2–4 args), [nullif]. Ordered:
    [greatest], [least]. Dates: [current_date] (follows the statement's
    NOW), [date_year], [date_add_days]. *)

val install : Extension.t -> unit
