(** CSV import/export for tables (the COPY statement).

    RFC-4180-style quoting; NULL is an unquoted empty field while a
    quoted empty string stays a string. Values travel in display syntax
    and re-parse by column type, so blade values — including symbolic
    NOW — round-trip. *)

exception Csv_error of string

(** Writes the table as CSV with a header line; returns the row count.
    @raise Sys_error on I/O failure. *)
val export : Tip_storage.Table.t -> string -> int

(** Reads CSV (header must match the schema's column names) and hands
    each typed row to [insert]; returns the row count.
    @raise Csv_error on malformed input
    @raise Sys_error on I/O failure. *)
val import :
  schema:Tip_storage.Schema.t ->
  insert:(Tip_storage.Value.t array -> unit) ->
  string ->
  int

(**/**)

val quote_field : string -> string
val read_record : in_channel -> (string * bool) list option
