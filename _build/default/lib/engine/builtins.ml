(* Built-in scalar functions, installed into every database's extension
   registry at creation — through exactly the same mechanism a DataBlade
   uses, which keeps the engine core free of special cases and lets
   blades overload these names for their own types (the TIP blade adds
   [length(Element)] next to the string [length] here). *)

open Tip_storage

let type_error fmt = Format.kasprintf (fun s -> raise (Value.Type_error s)) fmt

let str_value s = Value.Str s
let int_value n = Value.Int n
let float_value f = Value.Float f

let install ext =
  let open Extension in
  let r name params impl = register_routine ext ~name ~params impl in
  let r_lax name params impl =
    register_routine ext ~name ~params ~strict:false impl
  in

  (* --- Strings ---------------------------------------------------------- *)
  r "upper" [ P_string ] (fun ~now:_ a ->
      str_value (String.uppercase_ascii (Value.to_string_value a.(0))));
  r "lower" [ P_string ] (fun ~now:_ a ->
      str_value (String.lowercase_ascii (Value.to_string_value a.(0))));
  r "length" [ P_string ] (fun ~now:_ a ->
      int_value (String.length (Value.to_string_value a.(0))));
  r "char_length" [ P_string ] (fun ~now:_ a ->
      int_value (String.length (Value.to_string_value a.(0))));
  r "trim" [ P_string ] (fun ~now:_ a ->
      str_value (String.trim (Value.to_string_value a.(0))));
  r "reverse" [ P_string ] (fun ~now:_ a ->
      let s = Value.to_string_value a.(0) in
      let n = String.length s in
      str_value (String.init n (fun i -> s.[n - 1 - i])));
  (* substr(s, from[, count]); [from] is 1-based, as in SQL. *)
  let substring s from count =
    let n = String.length s in
    let start = Stdlib.max 0 (from - 1) in
    let start = Stdlib.min start n in
    let count = Stdlib.max 0 (Stdlib.min count (n - start)) in
    String.sub s start count
  in
  r "substr" [ P_string; P_int ] (fun ~now:_ a ->
      let s = Value.to_string_value a.(0) in
      str_value (substring s (Value.to_int a.(1)) (String.length s)));
  r "substr" [ P_string; P_int; P_int ] (fun ~now:_ a ->
      str_value
        (substring (Value.to_string_value a.(0)) (Value.to_int a.(1))
           (Value.to_int a.(2))));
  (* replace(s, old, new): every occurrence. *)
  r "replace" [ P_string; P_string; P_string ] (fun ~now:_ a ->
      let s = Value.to_string_value a.(0) in
      let old_sub = Value.to_string_value a.(1) in
      let new_sub = Value.to_string_value a.(2) in
      if old_sub = "" then str_value s
      else begin
        let buf = Buffer.create (String.length s) in
        let ol = String.length old_sub in
        let rec go i =
          if i > String.length s - ol then
            Buffer.add_string buf (String.sub s i (String.length s - i))
          else if String.sub s i ol = old_sub then begin
            Buffer.add_string buf new_sub;
            go (i + ol)
          end
          else begin
            Buffer.add_char buf s.[i];
            go (i + 1)
          end
        in
        go 0;
        str_value (Buffer.contents buf)
      end);
  (* strpos(s, sub): 1-based position of the first occurrence, 0 if none. *)
  r "strpos" [ P_string; P_string ] (fun ~now:_ a ->
      let s = Value.to_string_value a.(0) in
      let sub = Value.to_string_value a.(1) in
      let n = String.length s and m = String.length sub in
      let rec go i =
        if i + m > n then 0
        else if String.sub s i m = sub then i + 1
        else go (i + 1)
      in
      int_value (if m = 0 then 1 else go 0));

  (* --- Numbers ----------------------------------------------------------- *)
  r "abs" [ P_int ] (fun ~now:_ a -> int_value (abs (Value.to_int a.(0))));
  r "abs" [ P_float ] (fun ~now:_ a ->
      float_value (Float.abs (Value.to_float a.(0))));
  r "round" [ P_float ] (fun ~now:_ a ->
      int_value (int_of_float (Float.round (Value.to_float a.(0)))));
  r "floor" [ P_float ] (fun ~now:_ a ->
      int_value (int_of_float (Float.floor (Value.to_float a.(0)))));
  r "ceil" [ P_float ] (fun ~now:_ a ->
      int_value (int_of_float (Float.ceil (Value.to_float a.(0)))));
  r "sqrt" [ P_float ] (fun ~now:_ a ->
      let x = Value.to_float a.(0) in
      if x < 0. then type_error "sqrt of negative number";
      float_value (Float.sqrt x));
  r "power" [ P_float; P_float ] (fun ~now:_ a ->
      float_value (Float.pow (Value.to_float a.(0)) (Value.to_float a.(1))));
  r "sign" [ P_float ] (fun ~now:_ a ->
      let x = Value.to_float a.(0) in
      int_value (Stdlib.compare x 0.));

  (* --- NULL handling ------------------------------------------------------- *)
  (* COALESCE needs to see its NULL arguments, hence non-strict. *)
  let first_non_null a =
    match Array.find_opt (fun v -> not (Value.is_null v)) a with
    | Some v -> v
    | None -> Value.Null
  in
  r_lax "coalesce" [ P_any; P_any ] (fun ~now:_ a -> first_non_null a);
  r_lax "coalesce" [ P_any; P_any; P_any ] (fun ~now:_ a -> first_non_null a);
  r_lax "coalesce" [ P_any; P_any; P_any; P_any ] (fun ~now:_ a ->
      first_non_null a);
  r "nullif" [ P_any; P_any ] (fun ~now:_ a ->
      if Value.equal a.(0) a.(1) then Value.Null else a.(0));

  (* --- Comparisons over any ordered type ------------------------------------ *)
  r "greatest" [ P_any; P_any ] (fun ~now:_ a ->
      if Value.compare a.(0) a.(1) >= 0 then a.(0) else a.(1));
  r "least" [ P_any; P_any ] (fun ~now:_ a ->
      if Value.compare a.(0) a.(1) <= 0 then a.(0) else a.(1));

  (* --- Dates ------------------------------------------------------------------ *)
  r "current_date" [] (fun ~now _ ->
      Value.Date (Tip_core.Chronon.start_of_day now));
  r "date_year" [ P_date ] (fun ~now:_ a ->
      int_value (Tip_core.Chronon.year (Value.to_date a.(0))));
  r "date_add_days" [ P_date; P_int ] (fun ~now:_ a ->
      Value.Date
        (Tip_core.Chronon.add (Value.to_date a.(0))
           (Tip_core.Span.of_days (Value.to_int a.(1)))))
