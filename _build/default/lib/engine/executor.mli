(** Volcano-style pull execution: a plan runs as a lazy row sequence.

    Scans, filters, projections and limits stream; joins materialize
    only their build side; aggregation and sorting are blocking. The
    sequence must be consumed within the statement whose context created
    it (scans snapshot their rid list, but rows are shared). *)

open Tip_storage

exception Exec_error of string

(** Lazy row stream for a plan. *)
val run : Expr_eval.ctx -> Plan.t -> Value.t array Seq.t

(** [run] materialized to a list. *)
val collect : Expr_eval.ctx -> Plan.t -> Value.t array list

(**/**)

(** One aggregate accumulator instance (exposed for tests). *)
type runner = { step : Value.t array -> unit; final : unit -> Value.t }

val make_runner : Expr_eval.ctx -> Plan.agg_spec -> runner
