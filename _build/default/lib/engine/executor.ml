(* Volcano-style pull execution: a plan runs as a lazy row sequence.

   Joins materialize their build side only; scans, filters, projections
   and limits stream. Aggregation and sorting are blocking, as they must
   be. *)

open Tip_storage
module Ast = Tip_sql.Ast

exception Exec_error of string

(* Hash table keyed by a list of values (group keys / join keys). *)
module Row_key = struct
  type t = Value.t list

  let equal a b =
    List.length a = List.length b && List.for_all2 Value.equal a b

  let hash vs = Hashtbl.hash (List.map Value.hash vs)
end

module Key_table = Hashtbl.Make (Row_key)

(* --- Aggregate runners -------------------------------------------------- *)

type runner = { step : Value.t array -> unit; final : unit -> Value.t }

let numeric_add a b =
  match a, b with
  | Value.Int x, Value.Int y -> Value.Int (x + y)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
    Value.Float (Value.to_float a +. Value.to_float b)
  | _, _ ->
    raise (Exec_error (Printf.sprintf "SUM/AVG over non-numeric %s"
                         (Value.type_name b)))

let make_runner ctx (spec : Plan.agg_spec) : runner =
  let eval_arg row =
    match spec.arg with
    | Some c -> c ctx row
    | None -> Value.Null
  in
  (* DISTINCT: wrap the runner so each argument value steps once. *)
  let distinct_wrap runner =
    if not spec.Plan.distinct then runner
    else begin
      let seen = Key_table.create 16 in
      { runner with
        step =
          (fun row ->
            let v = eval_arg row in
            if not (Value.is_null v) then begin
              if not (Key_table.mem seen [ v ]) then begin
                Key_table.replace seen [ v ] ();
                runner.step row
              end
            end) }
    end
  in
  distinct_wrap
  @@
  match spec.impl with
  | Plan.Agg_count_star ->
    let n = ref 0 in
    { step = (fun _ -> incr n); final = (fun () -> Value.Int !n) }
  | Plan.Agg_count ->
    let n = ref 0 in
    { step = (fun row -> if not (Value.is_null (eval_arg row)) then incr n);
      final = (fun () -> Value.Int !n) }
  | Plan.Agg_sum ->
    let acc = ref Value.Null in
    { step =
        (fun row ->
          let v = eval_arg row in
          if not (Value.is_null v) then
            acc := if Value.is_null !acc then v else numeric_add !acc v);
      final = (fun () -> !acc) }
  | Plan.Agg_avg ->
    let acc = ref Value.Null and n = ref 0 in
    { step =
        (fun row ->
          let v = eval_arg row in
          if not (Value.is_null v) then begin
            acc := (if Value.is_null !acc then v else numeric_add !acc v);
            incr n
          end);
      final =
        (fun () ->
          if !n = 0 then Value.Null
          else Value.Float (Value.to_float !acc /. float_of_int !n)) }
  | Plan.Agg_min | Plan.Agg_max ->
    let keep_smaller = spec.impl = Plan.Agg_min in
    let acc = ref Value.Null in
    { step =
        (fun row ->
          let v = eval_arg row in
          if not (Value.is_null v) then
            if Value.is_null !acc then acc := v
            else begin
              let c = Value.compare v !acc in
              if (keep_smaller && c < 0) || ((not keep_smaller) && c > 0) then
                acc := v
            end);
      final = (fun () -> !acc) }
  | Plan.Agg_user (agg, _) ->
    let acc = ref (agg.Extension.agg_init ()) in
    { step =
        (fun row ->
          let v = eval_arg row in
          if not (Value.is_null v) then
            acc := agg.Extension.agg_step ~now:ctx.Expr_eval.now !acc v);
      final = (fun () -> agg.Extension.agg_final ~now:ctx.Expr_eval.now !acc) }

(* --- Sequence helpers ----------------------------------------------------- *)

let seq_of_list l = List.to_seq l

let concat_rows left right =
  Array.append left right

(* --- Execution -------------------------------------------------------------- *)

let rec run ctx (plan : Plan.t) : Value.t array Seq.t =
  match plan with
  | Plan.One_row -> Seq.return [||]
  | Plan.Seq_scan { table; _ } ->
    (* Snapshot the rid list so concurrent mutation cannot skew the scan. *)
    let rids = Table.rids table in
    Seq.filter_map (fun rid -> Table.get table rid) (seq_of_list rids)
  | Plan.Index_scan { table; btree; lo; hi; _ } ->
    (* Rows come back in key order — the planner relies on this to
       satisfy ORDER BY from an index. *)
    let rids = Btree.range btree ~lo ~hi in
    Seq.filter_map (fun rid -> Table.get table rid) (seq_of_list rids)
  | Plan.Interval_scan { table; index; lo; hi; _ } ->
    (* Multi-period values have one index entry per period, so a row can
       match the probe window several times; dedupe before fetching.
       Adaptive fallback: when the window matches most of the table the
       index only adds overhead, and the recheck filter above makes a
       plain scan equivalent — so degrade to one. *)
    let rids = Interval_index.query_overlaps index ~lo ~hi in
    if List.length rids > Table.row_count table / 2 then
      Seq.filter_map (fun rid -> Table.get table rid)
        (seq_of_list (Table.rids table))
    else begin
      let rids = List.sort_uniq Int.compare rids in
      Seq.filter_map (fun rid -> Table.get table rid) (seq_of_list rids)
    end
  | Plan.Filter { input; pred; _ } ->
    Seq.filter (fun row -> Expr_eval.to_predicate pred ctx row) (run ctx input)
  | Plan.Nested_loop { left; right } ->
    let right_rows = List.of_seq (run ctx right) in
    Seq.concat_map
      (fun lrow -> Seq.map (fun rrow -> concat_rows lrow rrow) (seq_of_list right_rows))
      (run ctx left)
  | Plan.Hash_join { left; right; left_keys; right_keys; _ } ->
    (* Build on the right, probe from the left; NULL keys never join. *)
    let build = Key_table.create 64 in
    Seq.iter
      (fun rrow ->
        let key = List.map (fun c -> c ctx rrow) right_keys in
        if not (List.exists Value.is_null key) then begin
          let existing = Option.value (Key_table.find_opt build key) ~default:[] in
          Key_table.replace build key (rrow :: existing)
        end)
      (run ctx right);
    Seq.concat_map
      (fun lrow ->
        let key = List.map (fun c -> c ctx lrow) left_keys in
        if List.exists Value.is_null key then Seq.empty
        else begin
          match Key_table.find_opt build key with
          | None -> Seq.empty
          | Some matches ->
            (* entries were prepended during build; restore scan order *)
            Seq.map (fun rrow -> concat_rows lrow rrow)
              (seq_of_list (List.rev matches))
        end)
      (run ctx left)
  | Plan.Left_outer_join { left; right; on; right_width; _ } ->
    let right_rows = List.of_seq (run ctx right) in
    let nulls = Array.make right_width Value.Null in
    Seq.concat_map
      (fun lrow ->
        let matches =
          List.filter
            (fun rrow -> Expr_eval.to_predicate on ctx (concat_rows lrow rrow))
            right_rows
        in
        match matches with
        | [] -> Seq.return (concat_rows lrow nulls)
        | _ -> Seq.map (fun rrow -> concat_rows lrow rrow) (seq_of_list matches))
      (run ctx left)
  | Plan.Project { input; exprs; _ } ->
    Seq.map (fun row -> Array.map (fun c -> c ctx row) exprs) (run ctx input)
  | Plan.Aggregate { input; keys; aggs; _ } -> run_aggregate ctx input keys aggs
  | Plan.Sort { input; by; _ } ->
    let rows = Array.of_seq (run ctx input) in
    (* decorate-sort-undecorate: evaluate the keys once per row *)
    let decorated =
      Array.map (fun row -> (List.map (fun (c, _) -> c ctx row) by, row)) rows
    in
    let cmp (ka, _) (kb, _) =
      let rec go ks1 ks2 dirs =
        match ks1, ks2, dirs with
        | [], [], [] -> 0
        | k1 :: t1, k2 :: t2, (_, dir) :: td ->
          let c = Value.compare k1 k2 in
          let c = match dir with Ast.Asc -> c | Ast.Desc -> -c in
          if c <> 0 then c else go t1 t2 td
        | _, _, _ -> 0
      in
      go ka kb by
    in
    Array.stable_sort cmp decorated;
    Seq.map snd (Array.to_seq decorated)
  | Plan.Distinct input ->
    let seen = Key_table.create 64 in
    Seq.filter
      (fun row ->
        let key = Array.to_list row in
        if Key_table.mem seen key then false
        else begin
          Key_table.replace seen key ();
          true
        end)
      (run ctx input)
  | Plan.Append inputs ->
    List.fold_left
      (fun acc input -> Seq.append acc (run ctx input))
      Seq.empty inputs
  | Plan.Limit { input; limit; offset } ->
    let s = run ctx input in
    let s = match offset with Some n -> Seq.drop n s | None -> s in
    (match limit with Some n -> Seq.take n s | None -> s)

and run_aggregate ctx input keys aggs =
  let groups : (Value.t list * runner list) Key_table.t = Key_table.create 64 in
  let order = ref [] in
  Seq.iter
    (fun row ->
      let key = List.map (fun c -> c ctx row) keys in
      let runners =
        match Key_table.find_opt groups key with
        | Some (_, runners) -> runners
        | None ->
          let runners = List.map (make_runner ctx) aggs in
          Key_table.replace groups key (key, runners);
          order := key :: !order;
          runners
      in
      List.iter (fun r -> r.step row) runners)
    (run ctx input);
  let emit (key, runners) =
    Array.of_list (key @ List.map (fun r -> r.final ()) runners)
  in
  if keys = [] && Key_table.length groups = 0 then begin
    (* Grand aggregate over an empty input still yields one row. *)
    let runners = List.map (make_runner ctx) aggs in
    Seq.return (emit ([], runners))
  end
  else
    Seq.map
      (fun key -> emit (Key_table.find groups key))
      (seq_of_list (List.rev !order))

let collect ctx plan = List.of_seq (run ctx plan)
