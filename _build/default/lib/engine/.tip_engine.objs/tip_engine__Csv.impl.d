lib/engine/csv.ml: Array Buffer Format Fun List Persist Schema String Table Tip_storage Value
