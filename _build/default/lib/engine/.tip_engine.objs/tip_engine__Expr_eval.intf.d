lib/engine/expr_eval.mli: Extension Tip_core Tip_sql Tip_storage Value
