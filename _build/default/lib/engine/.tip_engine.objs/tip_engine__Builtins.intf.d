lib/engine/builtins.mli: Extension
