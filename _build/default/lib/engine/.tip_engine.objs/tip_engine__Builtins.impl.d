lib/engine/builtins.ml: Array Buffer Extension Float Format Stdlib String Tip_core Tip_storage Value
