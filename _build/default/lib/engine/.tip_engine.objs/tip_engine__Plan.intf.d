lib/engine/plan.mli: Btree Expr_eval Extension Format Interval_index Table Tip_sql Tip_storage
