lib/engine/extension.mli: Tip_core Tip_storage Value
