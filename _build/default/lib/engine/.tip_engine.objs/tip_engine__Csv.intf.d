lib/engine/csv.mli: Tip_storage
