lib/engine/executor.mli: Expr_eval Plan Seq Tip_storage Value
