lib/engine/database.ml: Array Buffer Builtins Catalog Csv Executor Expr_eval Extension Format List Logs Option Plan Planner Printf Schema Seq Stdlib String Table Tip_core Tip_sql Tip_storage Value
