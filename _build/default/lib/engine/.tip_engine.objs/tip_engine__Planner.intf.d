lib/engine/planner.mli: Catalog Expr_eval Extension Plan Schema Tip_sql Tip_storage
