lib/engine/executor.ml: Array Btree Expr_eval Extension Hashtbl Int Interval_index List Option Plan Printf Seq Table Tip_sql Tip_storage Value
