lib/engine/extension.ml: Array Format Hashtbl Int List Option Printf String Tip_core Tip_storage Value
