lib/engine/database.mli: Catalog Extension Tip_core Tip_sql Tip_storage Value
