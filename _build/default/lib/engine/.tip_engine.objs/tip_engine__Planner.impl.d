lib/engine/planner.ml: Array Btree Catalog Executor Expr_eval Extension Format List Option Plan Printf Schema String Table Tip_core Tip_sql Tip_storage Value
