lib/engine/plan.ml: Array Btree Expr_eval Extension Fmt Interval_index List Printf String Table Tip_sql Tip_storage
