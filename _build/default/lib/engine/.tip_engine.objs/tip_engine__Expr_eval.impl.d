lib/engine/expr_eval.ml: Array Extension Format Hashtbl List Option String Tip_core Tip_sql Tip_storage Value
