(** The database facade: parse, bind NOW, plan, execute.

    NOW handling (the paper's Sections 2/4): each statement binds the
    special symbol NOW exactly once, to the current transaction time —
    the wall clock, or a per-database override installed by
    [SET NOW = ...] (the browser's what-if mechanism). The binding is
    pushed into {!Tip_core.Tx_clock} for the statement's duration so
    every blade routine, cast and comparison observes the same frozen
    instant.

    Transactions are single-connection with an in-memory undo log
    (insert/delete/update are undoable; DDL auto-commits). *)

open Tip_storage
module Ast = Tip_sql.Ast

exception Error of string

type t

type result =
  | Rows of { names : string list; rows : Value.t array list }
  | Affected of int  (** DML row count *)
  | Message of string  (** DDL acknowledgements, EXPLAIN text, ... *)

(** A fresh database with built-in scalar functions installed. Pass
    [catalog] to open over a snapshot restored with
    {!Tip_storage.Persist.load} (register extension types first). *)
val create : ?catalog:Catalog.t -> unit -> t

val catalog : t -> Catalog.t

(** The registry a DataBlade installs into. *)
val extension : t -> Extension.t

(** The [SET NOW] override currently in force, if any. *)
val now_override : t -> Tip_core.Chronon.t option

val in_transaction : t -> bool

(** {1 Execution} *)

(** Parses and executes one statement; [params] binds [:name] host
    variables.
    @raise Error (and planner/eval/constraint exceptions) on failure. *)
val exec : ?params:(string * Value.t) list -> t -> string -> result

(** Executes an already-parsed statement. *)
val exec_statement :
  t -> params:(string * Value.t) list -> Ast.statement -> result

(** Runs a [';']-separated script; returns the last result. *)
val exec_script : ?params:(string * Value.t) list -> t -> string -> result

(** {1 Result helpers}

    All raise {!Error} when the result has the wrong shape. *)

val rows_exn : result -> Value.t array list
val names_exn : result -> string list
val affected_exn : result -> int

(** Aligned text table (psql-style) for shells and examples. *)
val render_result : result -> string
