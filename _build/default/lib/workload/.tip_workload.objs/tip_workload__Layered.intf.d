lib/workload/layered.mli: Tip_core Tip_engine
