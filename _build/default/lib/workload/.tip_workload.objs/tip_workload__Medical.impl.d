lib/workload/medical.ml: Array Catalog Chronon Element List Period Printf Random Span Table Tip_blade Tip_core Tip_engine Tip_storage Tx_clock Value
