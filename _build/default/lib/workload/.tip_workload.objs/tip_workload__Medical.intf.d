lib/workload/medical.mli: Chronon Element Span Tip_core Tip_engine
