lib/workload/warehouse.ml: Array Catalog Chronon Element Hashtbl List Option Period Printf Random Span Table Tip_blade Tip_core Tip_engine Tip_storage Value
