lib/workload/warehouse.mli: Chronon Period Tip_core Tip_engine
