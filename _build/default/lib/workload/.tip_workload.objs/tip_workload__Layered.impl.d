lib/workload/layered.ml: Array Hashtbl List Option Tip_blade Tip_core Tip_engine Tip_storage Value
