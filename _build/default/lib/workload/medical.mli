(** The synthetic medical database of the paper's Section 4, as a
    deterministic, seedable generator at configurable scale.

    The same logical data loads two ways: {!load_native} uses the TIP
    representation (Section 2's CREATE TABLE verbatim, with an Element
    timestamp per prescription); {!load_layered} uses the 1NF encoding a
    layered (TimeDB-style) system needs on a plain relational backend —
    one row per (prescription, period) with DATE bounds. Benchmarks
    E5/E6 run the same queries over both. Generated periods are
    day-granularity and ground so the encodings agree exactly. *)

open Tip_core
module Db = Tip_engine.Database

type prescription = {
  doctor : string;
  patient : string;
  patientdob : Chronon.t;
  drug : string;
  dosage : int;
  frequency : Span.t;
  valid : Element.t;
}

(** Same seed, same data. *)
val generate :
  ?seed:int -> patients:int -> prescriptions:int -> unit -> prescription list

(** The paper's CREATE TABLE Prescription statement. *)
val native_schema : string

(** (Re)creates and fills the TIP-typed Prescription table. *)
val load_native : Db.t -> prescription list -> unit

val layered_schema : string

(** (Re)creates and fills the 1NF Prescription1nf table; periods ground
    under the current transaction time. *)
val load_layered : Db.t -> prescription list -> unit

(** The five canonical rows used throughout the paper's examples. *)
val demo_rows_sql : string list

(** A blade-enabled database holding the demo scenario, frozen at
    1999-10-15 like the original demonstration. *)
val demo_database : unit -> Db.t
