(** Temporal view maintenance over a non-temporal source — the
    warehousing application (Yang & Widom) that motivated TIP.

    The source is a current-state relation [assignment(emp, dept)]; the
    warehouse view [assignment_history(emp, dept, valid Element)]
    records when each fact held. Each source change propagates with one
    TIP statement: an assignment opens a [t, NOW] period with the
    NOW-preserving [add_period]; a revocation clips with [difference]
    evaluated at the event time (grounding the open period exactly
    there). {!recompute} is the middleware oracle folding the full log;
    the incremental view equals it (tested), and E9 benchmarks the cost
    gap. *)

open Tip_core
module Db = Tip_engine.Database

type op = Assign | Revoke

type event = { at : Chronon.t; emp : string; dept : string; op : op }

(** (Re)creates the assignment_history table. *)
val setup : Db.t -> unit

val history_schema : string

(** Applies one source event to the view, using only SQL. *)
val apply_incremental : Db.t -> event -> unit

val apply_all : Db.t -> event list -> unit

(** Folds the event log directly with the core library; facts with empty
    histories under [now] are dropped. Sorted output. *)
val recompute :
  event list -> now:Chronon.t -> ((string * string) * Period.ground list) list

(** Reads the maintained view back, grounded under [now]. Sorted. *)
val view_of_db :
  Db.t -> now:Chronon.t -> ((string * string) * Period.ground list) list

(** A plausible event log: employees drift between departments over
    years, with strictly increasing times. *)
val random_events :
  ?seed:int -> employees:int -> departments:int -> events:int -> unit ->
  event list
