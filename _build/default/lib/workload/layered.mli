(** The layered (TimeDB/Tiger-style) baseline of experiment E6.

    A layered temporal system keeps data in 1NF with DATE bounds and
    implements temporal operations as an external middleware issuing
    standard SQL. This module is that middleware, running against our
    own engine, so native-vs-layered isolates exactly the architectural
    choice the paper's Section 5 argues about.

    Results agree with the native queries by construction (tested); the
    differences are cost and plumbing. *)

module Db = Tip_engine.Database

(** {1 Per-patient coalesced prescription length} *)

(** The paper's one-statement group_union query. *)
val native_coalesce_sql : string

(** [(patient, total days)] via the native query. *)
val native_coalesce : Db.t -> (string * int) list

(** The generated standard SQL (a sorted 1NF scan). *)
val layered_coalesce_sql : string

(** The middleware: sorted scan + merge + sum, per patient. *)
val layered_coalesce : Db.t -> (string * int) list

(** The fully-declarative alternative a layered system would generate if
    it refused middleware work: coalescing in one SQL-92 statement with
    doubly-nested correlated NOT EXISTS (Böhlen/Snodgrass). Correct and
    spectacularly slow — the paper's Section 5 criticism, executable. *)
val layered_coalesce_sql92 : string

(** [(patient, total days)] via the pure-SQL query. *)
val pure_sql_coalesce : Db.t -> (string * int) list

(** {1 The Diabeta/Aspirin temporal self-join} *)

val native_self_join_sql : string

(** One row per overlapping prescription pair: [(patient, overlap)]. *)
val native_self_join : Db.t -> (string * Tip_core.Element.t) list

val layered_self_join_sql : string

(** The middleware: period-pair join rows merged back into one timestamp
    per patient. Uses the current transaction time for normalization. *)
val layered_self_join : Db.t -> (string * Tip_core.Element.t) list

(** Rows the layered join materializes before middleware merging — the
    blow-up factor reported in E6. *)
val layered_self_join_rows : Db.t -> int
