(* The synthetic medical database of the paper's Section 4, as a
   deterministic, seedable generator at configurable scale.

   The same logical data can be loaded two ways:
   - [load_native]: the TIP representation — one row per prescription,
     with a Chronon birth date, a Span frequency and an Element of valid
     periods (Section 2's CREATE TABLE, verbatim);
   - [load_layered]: the 1NF encoding a layered system (TimeDB-style)
     must use on a plain relational backend — one row per (prescription,
     period), with DATE vstart/vend columns.

   Benchmarks E5/E6 run the same queries over both. Generated periods are
   day-granularity and fully ground so the two encodings agree exactly;
   NOW-relative data (which the layered encoding cannot faithfully
   represent) is exercised separately in E7. *)

open Tip_core
open Tip_storage
module Db = Tip_engine.Database

type prescription = {
  doctor : string;
  patient : string;
  patientdob : Chronon.t;
  drug : string;
  dosage : int;
  frequency : Span.t;
  valid : Element.t;
}

let doctors =
  [| "Dr.Pepper"; "Dr.No"; "Dr.Who"; "Dr.Strange"; "Dr.Jekyll"; "Dr.Watson";
     "Dr.Quinn"; "Dr.House" |]

let drugs =
  [| "Diabeta"; "Aspirin"; "Tylenol"; "Prozac"; "Zantac"; "Valium";
     "Ibuprofen"; "Amoxil"; "Lipitor"; "Ventolin" |]

let day0 = Chronon.of_ymd 1995 1 1
let day_range = 6 * 365 (* 1995-01-01 .. late 2000 *)

let random_day st = Chronon.add day0 (Span.of_days (Random.State.int st day_range))

(* 1..4 periods of 1..120 days each, possibly overlapping; stored as
   written — normalization is the engine's job. *)
let random_element st =
  let n = 1 + Random.State.int st 4 in
  let periods =
    List.init n (fun _ ->
        let start_ = random_day st in
        let len = 1 + Random.State.int st 120 in
        Period.of_chronons start_ (Chronon.add start_ (Span.of_days len)))
  in
  Element.of_periods periods

let generate ?(seed = 42) ~patients ~prescriptions () =
  let st = Random.State.make [| seed |] in
  let patient_names =
    Array.init patients (fun i -> Printf.sprintf "Patient%04d" i)
  in
  let patient_dobs =
    Array.init patients (fun _ ->
        Chronon.add (Chronon.of_ymd 1930 1 1)
          (Span.of_days (Random.State.int st (65 * 365))))
  in
  List.init prescriptions (fun _ ->
      let p = Random.State.int st patients in
      { doctor = doctors.(Random.State.int st (Array.length doctors));
        patient = patient_names.(p);
        patientdob = patient_dobs.(p);
        drug = drugs.(Random.State.int st (Array.length drugs));
        dosage = 1 + Random.State.int st 3;
        frequency = Span.of_hours (4 * (1 + Random.State.int st 6));
        valid = random_element st })

(* --- Native (TIP) representation ----------------------------------------------- *)

let native_schema =
  "CREATE TABLE Prescription (doctor CHAR(20), patient CHAR(20), \
   patientdob Chronon, drug CHAR(20), dosage INT, frequency Span, \
   valid Element)"

let load_native db prescriptions =
  ignore (Db.exec db "DROP TABLE IF EXISTS Prescription");
  ignore (Db.exec db native_schema);
  let table = Catalog.table_exn (Db.catalog db) "prescription" in
  List.iter
    (fun p ->
      ignore
        (Table.insert table
           [| Value.Str p.doctor; Value.Str p.patient;
              Tip_blade.Values.chronon p.patientdob; Value.Str p.drug;
              Value.Int p.dosage; Tip_blade.Values.span p.frequency;
              Tip_blade.Values.element p.valid |]))
    prescriptions

(* --- Layered (1NF) representation ------------------------------------------------ *)

let layered_schema =
  "CREATE TABLE Prescription1nf (doctor CHAR(20), patient CHAR(20), \
   patientdob DATE, drug CHAR(20), dosage INT, freq_seconds INT, \
   vstart DATE, vend DATE)"

(* One row per (prescription, period); timestamps decompose into plain
   DATE bounds, which is all a temporal-layer-on-stock-SQL system has. *)
let load_layered db prescriptions =
  ignore (Db.exec db "DROP TABLE IF EXISTS Prescription1nf");
  ignore (Db.exec db layered_schema);
  let table = Catalog.table_exn (Db.catalog db) "prescription1nf" in
  let now = Tx_clock.now () in
  List.iter
    (fun p ->
      List.iter
        (fun period ->
          match Period.ground ~now period with
          | None -> ()
          | Some (s, e) ->
            ignore
              (Table.insert table
                 [| Value.Str p.doctor; Value.Str p.patient;
                    Value.Date (Chronon.start_of_day p.patientdob);
                    Value.Str p.drug; Value.Int p.dosage;
                    Value.Int (Span.to_seconds p.frequency);
                    Value.Date (Chronon.start_of_day s);
                    Value.Date (Chronon.start_of_day e) |]))
        (Element.periods p.valid))
    prescriptions

(* --- The five canonical demo rows used throughout the paper ---------------------- *)

let demo_rows_sql =
  [ "INSERT INTO Prescription VALUES ('Dr.Pepper', 'Mr.Showbiz', \
     '1962-03-03', 'Diabeta', 1, '0 08:00:00', '{[1999-10-01, NOW]}')";
    "INSERT INTO Prescription VALUES ('Dr.No', 'Mr.Showbiz', '1962-03-03', \
     'Aspirin', 2, '0 12:00:00', '{[1999-09-20, 1999-10-05]}')";
    "INSERT INTO Prescription VALUES ('Dr.No', 'Ms.Stone', '1999-09-20', \
     'Tylenol', 1, '1', '{[1999-09-25, 1999-10-02]}')";
    "INSERT INTO Prescription VALUES ('Dr.Pepper', 'Ms.Stone', '1999-09-20', \
     'Aspirin', 1, '2', '{[1999-11-01, 1999-11-15]}')";
    "INSERT INTO Prescription VALUES ('Dr.Who', 'Mr.Bean', '1955-01-01', \
     'Prozac', 1, '1', '{[1999-01-01, 1999-04-30], [1999-07-01, 1999-10-31]}')" ]

(* A TIP database holding the paper's demo scenario, frozen in October
   1999 like the original demonstration. *)
let demo_database () =
  let db = Tip_blade.Blade.create_database () in
  ignore (Db.exec db "SET NOW = '1999-10-15'");
  ignore (Db.exec db native_schema);
  List.iter (fun sql -> ignore (Db.exec db sql)) demo_rows_sql;
  db
