(* The layered (TimeDB/Tiger-style) baseline of experiment E6.

   A layered temporal system keeps data in 1NF with plain DATE bounds and
   implements temporal operations as an *external module*: it issues
   standard SQL to the backend and post-processes rows in the middleware.
   This module is that external middleware, written against our own
   engine — so the native-vs-layered comparison isolates exactly the
   architectural choice the paper's Section 5 discusses, on identical
   infrastructure.

   Two canonical workloads are implemented both ways:
   - per-patient coalesced total prescription length (the paper's
     group_union query);
   - the Diabeta/Aspirin temporal self-join ("who took both
     simultaneously, and exactly when"). *)

open Tip_storage
module Db = Tip_engine.Database

(* --- Coalesced length per patient ------------------------------------------------ *)

(* Native: the paper's query, one SQL statement, coalescing in-engine. *)
let native_coalesce_sql =
  "SELECT patient, length(group_union(valid))::INT AS seconds FROM \
   Prescription GROUP BY patient ORDER BY patient"

let native_coalesce db =
  List.map
    (fun row ->
      (Value.to_display_string row.(0), Value.to_int row.(1) / 86_400))
    (Db.rows_exn (Db.exec db native_coalesce_sql))

(* Layered: the generated standard SQL retrieves every (patient, period)
   row sorted; the middleware then merges overlapping periods and sums —
   work the backend cannot do for it. *)
let layered_coalesce_sql =
  "SELECT patient, vstart, vend FROM Prescription1nf ORDER BY patient, \
   vstart, vend"

let layered_coalesce db =
  let rows = Db.rows_exn (Db.exec db layered_coalesce_sql) in
  let day_diff a b =
    Tip_core.Span.to_seconds (Tip_core.Chronon.diff a b) / 86_400
  in
  (* Middleware merge over the sorted stream: [current] is the open run
     of the current patient plus the days already closed for them. *)
  let rec go acc current rows =
    match rows, current with
    | [], None -> List.rev acc
    | [], Some (patient, (cs, ce), total) ->
      List.rev ((patient, total + day_diff ce cs) :: acc)
    | row :: rest, _ -> (
      let patient = Value.to_display_string row.(0) in
      let s = Value.to_date row.(1) and e = Value.to_date row.(2) in
      match current with
      | None -> go acc (Some (patient, (s, e), 0)) rest
      | Some (p, (cs, ce), total) ->
        if p <> patient then
          go
            ((p, total + day_diff ce cs) :: acc)
            (Some (patient, (s, e), 0))
            rest
        else if Tip_core.Chronon.compare s ce <= 0 then
          go acc (Some (p, (cs, Tip_core.Chronon.max ce e), total)) rest
        else go acc (Some (p, (s, e), total + day_diff ce cs)) rest)
  in
  go [] None rows

(* The fully-declarative alternative: coalescing in one SQL-92 statement
   with doubly-nested NOT EXISTS (Böhlen/Snodgrass). This is what a
   layered system would *generate* if it refused middleware work — it is
   correct (tested against the native answer) and spectacularly slow,
   which is precisely the paper's Section 5 point about generated
   queries being "very complex and potentially difficult to optimize".
   Periods merge when they overlap or touch at a shared endpoint,
   matching the second-granularity semantics of the native Element
   (periods one full day apart stay separate). *)
let layered_coalesce_sql92 =
  "SELECT DISTINCT f.patient, f.vstart, l.vend \
   FROM Prescription1nf f, Prescription1nf l \
   WHERE f.patient = l.patient AND f.vstart <= l.vend \
   AND NOT EXISTS (\
     SELECT 1 FROM Prescription1nf m \
     WHERE m.patient = f.patient AND m.vstart > f.vstart \
       AND m.vstart <= l.vend \
       AND NOT EXISTS (\
         SELECT 1 FROM Prescription1nf c \
         WHERE c.patient = m.patient AND c.vstart < m.vstart \
           AND m.vstart <= c.vend)) \
   AND NOT EXISTS (\
     SELECT 1 FROM Prescription1nf x \
     WHERE x.patient = f.patient \
       AND ((x.vstart < f.vstart AND f.vstart <= x.vend) \
         OR (x.vstart <= l.vend AND l.vend < x.vend)))"

let pure_sql_coalesce db =
  let rows = Db.rows_exn (Db.exec db layered_coalesce_sql92) in
  let day_diff a b =
    Tip_core.Span.to_seconds (Tip_core.Chronon.diff a b) / 86_400
  in
  let totals = Hashtbl.create 16 in
  List.iter
    (fun row ->
      let patient = Value.to_display_string row.(0) in
      let s = Value.to_date row.(1) and e = Value.to_date row.(2) in
      Hashtbl.replace totals patient
        (Option.value (Hashtbl.find_opt totals patient) ~default:0
        + day_diff e s))
    rows;
  Hashtbl.fold (fun p d acc -> (p, d) :: acc) totals []
  |> List.sort compare

(* --- Temporal self-join ------------------------------------------------------------- *)

let native_self_join_sql =
  "SELECT p1.patient, intersect(p1.valid, p2.valid) FROM Prescription p1, \
   Prescription p2 WHERE p1.drug = 'Diabeta' AND p2.drug = 'Aspirin' AND \
   p1.patient = p2.patient AND overlaps(p1.valid, p2.valid)"

let native_self_join db =
  List.map
    (fun row ->
      (Value.to_display_string row.(0),
       Tip_blade.Values.as_element row.(1)))
    (Db.rows_exn (Db.exec db native_self_join_sql))

(* Layered: the join explodes into one row per overlapping period pair;
   the middleware must then merge the pair-level fragments back into one
   timestamp per patient. *)
let layered_self_join_sql =
  "SELECT p1.patient, CASE WHEN p1.vstart > p2.vstart THEN p1.vstart ELSE \
   p2.vstart END AS s, CASE WHEN p1.vend < p2.vend THEN p1.vend ELSE \
   p2.vend END AS e FROM Prescription1nf p1, Prescription1nf p2 WHERE \
   p1.drug = 'Diabeta' AND p2.drug = 'Aspirin' AND p1.patient = p2.patient \
   AND p1.vstart <= p2.vend AND p2.vstart <= p1.vend ORDER BY p1.patient, s, e"

let layered_self_join db =
  let rows = Db.rows_exn (Db.exec db layered_self_join_sql) in
  (* Merge sorted fragments per patient in the middleware. *)
  let rec go acc = function
    | [] -> List.rev acc
    | row :: rest -> (
      let patient = Value.to_display_string row.(0) in
      let s = Value.to_date row.(1) and e = Value.to_date row.(2) in
      match acc with
      | (p, periods) :: acc_rest when p = patient ->
        go ((p, (s, e) :: periods) :: acc_rest) rest
      | _ -> go ((patient, [ (s, e) ]) :: acc) rest)
  in
  let grouped = go [] rows in
  let now = Tip_core.Tx_clock.now () in
  List.map
    (fun (patient, periods) ->
      let element =
        Tip_core.Element.of_periods
          (List.rev_map (fun (s, e) -> Tip_core.Period.of_chronons s e) periods)
      in
      (patient, Tip_core.Element.normalize ~now element))
    grouped
  |> List.rev

(* Number of rows the layered join materializes before middleware
   merging — the blow-up factor reported in E6. *)
let layered_self_join_rows db =
  List.length (Db.rows_exn (Db.exec db layered_self_join_sql))
