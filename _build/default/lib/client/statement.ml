(* Prepared statements: parse once, bind host variables, execute many
   times. Mirrors the paper's use of input parameters (the [:w] of the
   Tylenol query). *)

open Tip_storage
module Db = Tip_engine.Database

exception Statement_error of string

type t = {
  conn : Connection.t;
  ast : Tip_sql.Ast.statement;
  mutable bindings : (string * Value.t) list;
}

let prepare conn sql =
  match Tip_sql.Parser.parse sql with
  | ast -> { conn; ast; bindings = [] }
  | exception Tip_sql.Parser.Error msg -> raise (Statement_error msg)

(* Binds [:name] for subsequent executions; later binds override. *)
let bind t name value =
  let name = String.lowercase_ascii name in
  t.bindings <- (name, value) :: List.remove_assoc name t.bindings

let bind_int t name n = bind t name (Value.Int n)
let bind_float t name f = bind t name (Value.Float f)
let bind_string t name s = bind t name (Value.Str s)
let bind_bool t name b = bind t name (Value.Bool b)
let bind_chronon t name c = bind t name (Tip_blade.Values.chronon c)
let bind_span t name s = bind t name (Tip_blade.Values.span s)
let bind_instant t name i = bind t name (Tip_blade.Values.instant i)
let bind_period t name p = bind t name (Tip_blade.Values.period p)
let bind_element t name e = bind t name (Tip_blade.Values.element e)

let clear_bindings t = t.bindings <- []

let execute t =
  Connection.with_session_now t.conn (fun () ->
      Db.exec_statement (Connection.database t.conn) ~params:t.bindings t.ast)

let query t = Result_set.of_result (execute t)

let execute_update t =
  match execute t with
  | Db.Affected n -> n
  | Db.Rows _ | Db.Message _ ->
    raise (Statement_error "statement did not return an update count")
