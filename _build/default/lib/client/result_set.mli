(** Cursor-style result sets with typed accessors — the analog of the
    JDBC 2.0 "customized type mapping" the paper's browser uses: values
    of TIP datatypes come back as the corresponding OCaml objects from
    the core library. *)

open Tip_storage
module Db = Tip_engine.Database

exception Result_error of string

type t

(** @raise Result_error when the statement did not return rows. *)
val of_result : Db.result -> t

val column_count : t -> int
val column_names : t -> string list
val row_count : t -> int

(** Case-insensitive.
    @raise Result_error on unknown names. *)
val column_index : t -> string -> int

(** {1 Cursor movement (JDBC style)} *)

(** Advances to the next row; [false] past the end. The cursor starts
    before the first row. *)
val next : t -> bool

val rewind : t -> unit

(** {1 Accessors on the current row}

    All raise {!Result_error} without a current row, on bad indices, or
    on type mismatches. *)

val get_value : t -> int -> Value.t

(** By column name. *)
val get : t -> string -> Value.t

val is_null : t -> int -> bool
val get_int : t -> int -> int
val get_float : t -> int -> float
val get_bool : t -> int -> bool

(** Display form of any value. *)
val get_string : t -> int -> string

val get_date : t -> int -> Tip_core.Chronon.t

(** {2 TIP type mapping} *)

val get_chronon : t -> int -> Tip_core.Chronon.t
val get_span : t -> int -> Tip_core.Span.t
val get_instant : t -> int -> Tip_core.Instant.t
val get_period : t -> int -> Tip_core.Period.t
val get_element : t -> int -> Tip_core.Element.t

(** Any temporal value (chronon/instant/period/element/DATE) as an
    element; what the browser uses. *)
val get_temporal : t -> int -> Tip_core.Element.t

(** {1 Whole-set iteration} *)

val iter : (Value.t array -> unit) -> t -> unit
val fold : ('a -> Value.t array -> 'a) -> 'a -> t -> 'a
val to_list : t -> Value.t array list
