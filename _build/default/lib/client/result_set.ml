(* Cursor-style result sets with typed accessors — the analog of the TIP
   Browser's "customized type mapping": values of TIP datatypes come back
   as the corresponding OCaml objects from the core library. *)

open Tip_storage
module Db = Tip_engine.Database

exception Result_error of string

let result_error fmt = Format.kasprintf (fun s -> raise (Result_error s)) fmt

type t = {
  names : string array;
  rows : Value.t array array;
  mutable cursor : int; (* -1 = before first row *)
}

let of_result = function
  | Db.Rows { names; rows } ->
    { names = Array.of_list names; rows = Array.of_list rows; cursor = -1 }
  | Db.Affected _ | Db.Message _ ->
    result_error "statement did not produce rows"

let column_count t = Array.length t.names
let column_names t = Array.to_list t.names
let row_count t = Array.length t.rows

let column_index t name =
  let name = String.lowercase_ascii name in
  match
    Array.find_index (fun n -> String.lowercase_ascii n = name) t.names
  with
  | Some i -> i
  | None -> result_error "no column %s in result" name

(* Cursor movement, JDBC style: [next] advances and reports whether a
   current row exists. *)
let next t =
  if t.cursor + 1 < Array.length t.rows then begin
    t.cursor <- t.cursor + 1;
    true
  end
  else false

let rewind t = t.cursor <- -1

let current_row t =
  if t.cursor < 0 || t.cursor >= Array.length t.rows then
    result_error "no current row (call next first)"
  else t.rows.(t.cursor)

let get_value t i =
  let row = current_row t in
  if i < 0 || i >= Array.length row then result_error "column %d out of range" i;
  row.(i)

let get t name = get_value t (column_index t name)

let is_null t i = Value.is_null (get_value t i)

(* --- Typed accessors -------------------------------------------------------- *)

let wrap_type_error f v =
  match f v with
  | x -> x
  | exception Value.Type_error msg -> result_error "%s" msg

let get_int t i = wrap_type_error Value.to_int (get_value t i)
let get_float t i = wrap_type_error Value.to_float (get_value t i)
let get_bool t i = wrap_type_error Value.to_bool (get_value t i)
let get_string t i = Value.to_display_string (get_value t i)
let get_date t i = wrap_type_error Value.to_date (get_value t i)

let get_chronon t i = wrap_type_error Tip_blade.Values.as_chronon (get_value t i)
let get_span t i = wrap_type_error Tip_blade.Values.as_span (get_value t i)
let get_instant t i = wrap_type_error Tip_blade.Values.as_instant (get_value t i)
let get_period t i = wrap_type_error Tip_blade.Values.as_period (get_value t i)
let get_element t i = wrap_type_error Tip_blade.Values.as_element (get_value t i)

(* Loose temporal reading used by the browser: any Chronon, Instant,
   Period, Element or DATE value as an element. *)
let get_temporal t i =
  wrap_type_error Tip_blade.Values.to_element_value (get_value t i)

let iter f t =
  Array.iter f t.rows

let fold f init t = Array.fold_left f init t.rows

let to_list t = Array.to_list t.rows
