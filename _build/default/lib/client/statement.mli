(** Prepared statements: parse once, bind [:name] host variables,
    execute many times — the paper's input parameters (the [:w] of the
    Tylenol query). *)

open Tip_storage
module Db = Tip_engine.Database

exception Statement_error of string

type t

(** @raise Statement_error on parse errors. *)
val prepare : Connection.t -> string -> t

(** Later binds of the same name override earlier ones. *)
val bind : t -> string -> Value.t -> unit

val bind_int : t -> string -> int -> unit
val bind_float : t -> string -> float -> unit
val bind_string : t -> string -> string -> unit
val bind_bool : t -> string -> bool -> unit
val bind_chronon : t -> string -> Tip_core.Chronon.t -> unit
val bind_span : t -> string -> Tip_core.Span.t -> unit
val bind_instant : t -> string -> Tip_core.Instant.t -> unit
val bind_period : t -> string -> Tip_core.Period.t -> unit
val bind_element : t -> string -> Tip_core.Element.t -> unit
val clear_bindings : t -> unit

(** Runs under the connection's session NOW. *)
val execute : t -> Db.result

val query : t -> Result_set.t

(** @raise Statement_error when the statement is not DML. *)
val execute_update : t -> int
