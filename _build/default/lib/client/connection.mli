(** Client connections — the OCaml analog of the TIP C/Java libraries.

    A connection wraps an embedded database session and carries its own
    NOW override (Section 4's what-if mechanism), so two clients of the
    same database can evaluate queries in different temporal contexts;
    the override is installed around each statement and the database's
    own setting restored afterwards. *)

module Db = Tip_engine.Database

exception Client_error of string

type t

(** Opens a connection to a fresh embedded database; the TIP blade is
    installed unless [blade:false]. *)
val connect : ?blade:bool -> unit -> t

(** Attaches to an existing database (shared embedded server). *)
val connect_to : Db.t -> t

val close : t -> unit
val is_closed : t -> bool
val database : t -> Db.t

(** {1 What-if analysis} *)

(** Evaluate this session's statements as if NOW were the given
    chronon. *)
val set_now : t -> Tip_core.Chronon.t -> unit

val clear_now : t -> unit
val session_now : t -> Tip_core.Chronon.t option

(** Runs [f] with this session's NOW installed in the shared database
    (exception-safe restore). Used internally and by prepared
    statements. *)
val with_session_now : t -> (unit -> 'a) -> 'a

(** {1 Execution} *)

(** @raise Client_error when the connection is closed. *)
val execute : ?params:(string * Tip_storage.Value.t) list -> t -> string -> Db.result

val execute_script :
  ?params:(string * Tip_storage.Value.t) list -> t -> string -> Db.result

(** Single-shot query returning a cursor-style result set. *)
val query :
  ?params:(string * Tip_storage.Value.t) list -> t -> string -> Result_set.t

(** @raise Client_error when the statement is not DML. *)
val execute_update :
  ?params:(string * Tip_storage.Value.t) list -> t -> string -> int
