lib/client/connection.mli: Result_set Tip_core Tip_engine Tip_storage
