lib/client/statement.mli: Connection Result_set Tip_core Tip_engine Tip_storage Value
