lib/client/result_set.ml: Array Format String Tip_blade Tip_engine Tip_storage Value
