lib/client/statement.ml: Connection List Result_set String Tip_blade Tip_engine Tip_sql Tip_storage Value
