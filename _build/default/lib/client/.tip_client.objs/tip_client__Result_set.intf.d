lib/client/result_set.mli: Tip_core Tip_engine Tip_storage Value
