lib/client/connection.ml: Fun Result_set Tip_blade Tip_core Tip_engine Tip_sql
