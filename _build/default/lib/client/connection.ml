(* Client connections — the OCaml analog of the TIP C/Java libraries.

   A connection wraps an embedded database session. Each connection
   carries its own NOW override (the what-if mechanism of Section 4), so
   two clients of the same database can evaluate queries in different
   temporal contexts; the override is installed around each statement. *)

module Db = Tip_engine.Database

exception Client_error of string

type t = {
  db : Db.t;
  mutable session_now : Tip_core.Chronon.t option;
  mutable closed : bool;
}

(* Opens a connection to a fresh embedded database. The TIP blade is
   installed unless [blade:false] is given (useful for testing the bare
   engine). *)
let connect ?(blade = true) () =
  let db = if blade then Tip_blade.Blade.create_database () else Db.create () in
  { db; session_now = None; closed = false }

(* Attaches to an existing database (shared embedded server). *)
let connect_to db = { db; session_now = None; closed = false }

let close t = t.closed <- true
let is_closed t = t.closed
let database t = t.db

let check_open t = if t.closed then raise (Client_error "connection is closed")

(* What-if analysis: evaluate subsequent statements as if NOW were the
   given chronon. *)
let set_now t chronon =
  check_open t;
  t.session_now <- Some chronon

let clear_now t =
  check_open t;
  t.session_now <- None

let session_now t = t.session_now

(* Runs [f] with this session's NOW installed in the shared database,
   restoring the database's own override afterwards. *)
let with_session_now t f =
  match t.session_now with
  | None -> f ()
  | Some _ ->
    let saved = Db.now_override t.db in
    (match t.session_now with
    | Some c ->
      ignore (Db.exec_statement t.db ~params:[]
                (Tip_sql.Ast.Set_now
                   (Some (Tip_sql.Ast.Lit
                            (Tip_sql.Ast.L_string (Tip_core.Chronon.to_string c))))))
    | None -> ());
    Fun.protect
      ~finally:(fun () ->
        match saved with
        | Some c ->
          ignore (Db.exec_statement t.db ~params:[]
                    (Tip_sql.Ast.Set_now
                       (Some (Tip_sql.Ast.Lit
                                (Tip_sql.Ast.L_string (Tip_core.Chronon.to_string c))))))
        | None -> ignore (Db.exec_statement t.db ~params:[] (Tip_sql.Ast.Set_now None)))
      f

let execute ?(params = []) t sql =
  check_open t;
  with_session_now t (fun () -> Db.exec ~params t.db sql)

let execute_script ?(params = []) t sql =
  check_open t;
  with_session_now t (fun () -> Db.exec_script ~params t.db sql)

(* Convenience single-shot query returning a result set. *)
let query ?(params = []) t sql = Result_set.of_result (execute ~params t sql)

let execute_update ?(params = []) t sql =
  match execute ~params t sql with
  | Db.Affected n -> n
  | Db.Rows _ | Db.Message _ ->
    raise (Client_error "statement did not return an update count")
