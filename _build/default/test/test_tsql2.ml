(* The TSQL2 compatibility layer (the paper's future-work experiment). *)

open Tip_storage
module Db = Tip_engine.Database
module T = Tip_tsql2.Tsql2

let db () = Tip_workload.Medical.demo_database ()

let strings result col =
  List.map (fun row -> Value.to_display_string row.(col)) (Db.rows_exn result)

let check_translation_shapes () =
  (* Sequenced single-table query: timestamp column appended, as is. *)
  let t = T.translate "SELECT patient FROM Prescription p" in
  Alcotest.(check string) "single table"
    "SELECT patient, p.valid AS valid FROM Prescription p" t;
  (* Sequenced join: pairwise overlaps + nested intersection. *)
  let t2 =
    T.translate "SELECT p1.patient FROM Prescription p1, Prescription p2"
  in
  Alcotest.(check bool) "join adds overlaps" true
    (String.length t2 > 0
    && (try
          ignore (Str.search_forward (Str.regexp_string "overlaps(p1.valid, p2.valid)") t2 0);
          true
        with Not_found -> false));
  Alcotest.(check bool) "join intersects timestamps" true
    (try
       ignore
         (Str.search_forward
            (Str.regexp_string "intersect(p1.valid, p2.valid) AS valid") t2 0);
       true
     with Not_found -> false);
  (* VALID(c) rewrites to the element column. *)
  let t3 =
    T.translate
      "SELECT SNAPSHOT patient FROM Prescription p WHERE \
       contains(VALID(p), '1999-10-03'::Chronon)"
  in
  Alcotest.(check bool) "VALID() rewritten" true
    (try
       ignore (Str.search_forward (Str.regexp_string "contains(p.valid,") t3 0);
       true
     with Not_found -> false);
  Alcotest.(check bool) "snapshot adds no timestamp" true
    (not
       (try
          ignore (Str.search_forward (Str.regexp_string "AS valid") t3 0);
          true
        with Not_found -> false))

let check_sequenced_join_semantics () =
  let db = db () in
  (* TSQL2's sequenced self-join: who took Diabeta and Aspirin at the
     same time — no explicit overlaps/intersect needed, the semantics
     supply them. *)
  let r =
    T.exec db
      "SELECT p1.patient FROM Prescription p1, Prescription p2 WHERE \
       p1.drug = 'Diabeta' AND p2.drug = 'Aspirin' AND p1.patient = p2.patient"
  in
  Alcotest.(check (list string)) "sequenced join result" [ "Mr.Showbiz" ]
    (strings r 0);
  (* The implicit timestamp is the overlap the paper's Query 2 computes
     explicitly. *)
  (match Db.rows_exn r with
  | [ row ] ->
    Alcotest.(check string) "implicit timestamp"
      "{[1999-10-01, 1999-10-05]}"
      (Value.to_display_string row.(Array.length row - 1))
  | _ -> Alcotest.fail "one row expected")

let check_snapshot_mode () =
  let db = db () in
  let r =
    T.exec db
      "SELECT SNAPSHOT patient, drug FROM Prescription p WHERE \
       contains(VALID(p), now()) ORDER BY drug"
  in
  Alcotest.(check (list string)) "snapshot of current meds"
    [ "Diabeta"; "Prozac" ] (strings r 1)

let check_unsupported () =
  let expect_unsupported sql =
    match T.translate sql with
    | exception T.Unsupported _ -> ()
    | t -> Alcotest.failf "expected Unsupported, got %s" t
  in
  expect_unsupported "SELECT patient, COUNT(*) FROM Prescription p GROUP BY patient";
  expect_unsupported "UPDATE Prescription SET dosage = 2";
  expect_unsupported "SELECT VALID(p, q) FROM Prescription p";
  (* but snapshot aggregation is fine *)
  let db = db () in
  let r =
    T.exec db
      "SELECT SNAPSHOT patient, length(group_union(valid))::INT / 86400 \
       FROM Prescription GROUP BY patient ORDER BY patient"
  in
  Alcotest.(check int) "snapshot coalescing works" 3
    (List.length (Db.rows_exn r))

let suite =
  [ Alcotest.test_case "translation shapes" `Quick check_translation_shapes;
    Alcotest.test_case "sequenced join semantics" `Quick
      check_sequenced_join_semantics;
    Alcotest.test_case "snapshot mode" `Quick check_snapshot_mode;
    Alcotest.test_case "unsupported constructs are loud" `Quick
      check_unsupported ]
