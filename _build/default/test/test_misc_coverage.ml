(* Remaining coverage: custom valid columns in the TSQL2 layer, weighted
   profiles, NOW-relative scaling, rendering corners. *)

open Tip_core
open Tip_storage
module Db = Tip_engine.Database

let value = Alcotest.testable Value.pp Value.equal

let check_tsql2_custom_valid_column () =
  let db = Tip_blade.Blade.create_database () in
  ignore (Db.exec db "SET NOW = '1999-10-15'");
  ignore (Db.exec db "CREATE TABLE shifts (who CHAR(10), onduty Element)");
  ignore
    (Db.exec db
       "INSERT INTO shifts VALUES ('ada', '{[1999-10-01, 1999-10-10]}'), \
        ('grace', '{[1999-10-05, 1999-10-20]}')");
  let r =
    Tip_tsql2.Tsql2.exec ~valid_column:"onduty" db
      "SELECT s1.who, s2.who FROM shifts s1, shifts s2 WHERE s1.who < s2.who"
  in
  (match Db.rows_exn r with
  | [ row ] ->
    Alcotest.(check string) "sequenced overlap with custom column"
      "{[1999-10-05, 1999-10-10]}"
      (Value.to_display_string row.(Array.length row - 1))
  | _ -> Alcotest.fail "one overlapping pair expected")

let check_weighted_profile () =
  let g y m d = Chronon.of_ymd y m d in
  (* weights beyond 1: two wards' bed counts *)
  let p =
    Profile.of_weighted_ground
      [ ([ (g 1999 1 1, g 1999 1 31) ], 10);
        ([ (g 1999 1 15, g 1999 2 15) ], 5) ]
  in
  Alcotest.(check int) "before overlap" 10 (Profile.value_at p (g 1999 1 10));
  Alcotest.(check int) "during overlap" 15 (Profile.value_at p (g 1999 1 20));
  Alcotest.(check int) "after" 5 (Profile.value_at p (g 1999 2 10));
  Alcotest.(check bool) "invariants with weights" true
    (Profile.check_invariants p);
  (* negative weights cancel: net zero stretches are omitted *)
  let q =
    Profile.of_weighted_ground
      [ ([ (g 1999 1 1, g 1999 1 31) ], 3);
        ([ (g 1999 1 1, g 1999 1 31) ], -3) ]
  in
  Alcotest.(check bool) "cancellation yields empty" true (Profile.is_empty q)

let check_scale_now_relative () =
  let now = Chronon.of_ymd 1999 10 15 in
  (* scaling grounds under now first: the open period ends at now, then
     expands to the whole current month *)
  let e = Element.of_string_exn "{[1999-10-01, NOW]}" in
  let scaled = Granularity.scale ~now Granularity.Month e in
  (match Element.ground ~now scaled with
  | [ (s, e') ] ->
    Alcotest.(check string) "starts at month start" "1999-10-01"
      (Chronon.to_string s);
    Alcotest.(check string) "ends at month end" "1999-10-31 23:59:59"
      (Chronon.to_string e')
  | _ -> Alcotest.fail "one period")

let check_render_corners () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE t (a INT)");
  (* empty result renders a header and a zero count *)
  let rendered = Db.render_result (Db.exec db "SELECT a FROM t") in
  Alcotest.(check bool) "zero-row render" true
    (try
       ignore (Str.search_forward (Str.regexp_string "(0 rows)") rendered 0);
       true
     with Not_found -> false);
  Alcotest.(check string) "affected render"
    "(1 row affected)"
    (Db.render_result (Db.exec db "INSERT INTO t VALUES (1)"));
  (* timeline axis always embeds the boundary dates *)
  let w =
    Tip_browser.Timeline.make_window ~from_:(Chronon.of_ymd 1999 1 1)
      ~until:(Chronon.of_ymd 1999 12 31)
  in
  let axis = Tip_browser.Timeline.axis ~width:60 ~window:w in
  Alcotest.(check bool) "axis has boundaries" true
    (let has n = try ignore (Str.search_forward (Str.regexp_string n) axis 0); true with Not_found -> false in
     has "1999-01-01" && has "1999-12-31")

let check_show_tables_hides_nothing () =
  (* WITH HISTORY shadows are ordinary catalog entries, visible and
     queryable — by design (they are the audit log). *)
  let db = Tip_blade.Blade.create_database () in
  ignore (Db.exec db "CREATE TABLE t (a INT) WITH HISTORY");
  match Db.rows_exn (Db.exec db "SHOW TABLES") with
  | rows ->
    let names = List.map (fun r -> Value.to_display_string r.(0)) rows in
    Alcotest.(check (list string)) "both tables listed" [ "t"; "t_history" ]
      names

let suite =
  [ Alcotest.test_case "TSQL2 with a custom valid column" `Quick
      check_tsql2_custom_valid_column;
    Alcotest.test_case "weighted profiles" `Quick check_weighted_profile;
    Alcotest.test_case "scaling NOW-relative elements" `Quick
      check_scale_now_relative;
    Alcotest.test_case "render corners" `Quick check_render_corners;
    Alcotest.test_case "history shadows are visible" `Quick
      check_show_tables_hides_nothing ]
