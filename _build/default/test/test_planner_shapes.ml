(* Planner decisions, pinned through EXPLAIN plan shapes. *)

module Db = Tip_engine.Database

let contains hay needle =
  try
    ignore (Str.search_forward (Str.regexp_string needle) hay 0);
    true
  with Not_found -> false

let check_shape db sql ~wants ~rejects =
  let plan =
    match Db.exec db ("EXPLAIN " ^ sql) with
    | Db.Message m -> m
    | _ -> Alcotest.fail "expected plan text"
  in
  List.iter
    (fun needle ->
      if not (contains plan needle) then
        Alcotest.failf "plan for %s should contain %s:\n%s" sql needle plan)
    wants;
  List.iter
    (fun needle ->
      if contains plan needle then
        Alcotest.failf "plan for %s should not contain %s:\n%s" sql needle plan)
    rejects

let fresh_db () =
  let db = Db.create () in
  List.iter
    (fun sql -> ignore (Db.exec db sql))
    [ "CREATE TABLE a (id INT PRIMARY KEY, g CHAR(5), v INT)";
      "CREATE TABLE b (id INT PRIMARY KEY, a_id INT, w INT)";
      "CREATE INDEX a_v ON a (v)";
      "INSERT INTO a VALUES (1, 'x', 10), (2, 'y', 20)";
      "INSERT INTO b VALUES (1, 1, 5), (2, 2, 6)" ];
  db

let check_scan_choices () =
  let db = fresh_db () in
  check_shape db "SELECT * FROM a WHERE id = 1"
    ~wants:[ "IndexScan a" ] ~rejects:[ "SeqScan a" ];
  check_shape db "SELECT * FROM a WHERE v BETWEEN 5 AND 15"
    ~wants:[ "IndexScan a on (v BETWEEN 5 AND 15)" ] ~rejects:[ "SeqScan" ];
  (* and it answers correctly (recheck keeps exactness) *)
  (match Db.exec db "SELECT id FROM a WHERE v BETWEEN 5 AND 15" with
  | Db.Rows { rows = [ [| Tip_storage.Value.Int 1 |] ]; _ } -> ()
  | _ -> Alcotest.fail "between via index answers");
  check_shape db "SELECT * FROM a WHERE v >= 15"
    ~wants:[ "IndexScan a on (v >= 15)" ] ~rejects:[];
  check_shape db "SELECT * FROM a WHERE 15 <= v"
    ~wants:[ "IndexScan a" ] ~rejects:[ "SeqScan a" ];
  (* non-sargable forms stay sequential *)
  check_shape db "SELECT * FROM a WHERE v + 1 = 16"
    ~wants:[ "SeqScan a" ] ~rejects:[ "IndexScan" ];
  check_shape db "SELECT * FROM a WHERE g = 'x'"
    ~wants:[ "SeqScan a" ] ~rejects:[ "IndexScan" ]

let check_join_choices () =
  let db = fresh_db () in
  check_shape db "SELECT * FROM a, b WHERE a.id = b.a_id"
    ~wants:[ "HashJoin" ] ~rejects:[ "NestedLoop" ];
  check_shape db "SELECT * FROM a, b WHERE a.id < b.a_id"
    ~wants:[ "NestedLoop"; "Filter" ] ~rejects:[ "HashJoin" ];
  check_shape db "SELECT * FROM a JOIN b ON a.id = b.a_id"
    ~wants:[ "HashJoin" ] ~rejects:[];
  check_shape db "SELECT * FROM a LEFT JOIN b ON a.id = b.a_id"
    ~wants:[ "LeftOuterJoin" ] ~rejects:[ "HashJoin" ];
  (* single-table conjunct pushes below the join *)
  check_shape db "SELECT * FROM a, b WHERE a.id = b.a_id AND a.v > 15"
    ~wants:[ "IndexScan a on (a.v > 15)" ] ~rejects:[];
  (* WHERE on the right of a LEFT JOIN stays above the join *)
  check_shape db
    "SELECT * FROM a LEFT JOIN b ON a.id = b.a_id WHERE b.w IS NULL"
    ~wants:[ "Filter (b.w IS NULL)" ] ~rejects:[]

let check_pipeline_shapes () =
  let db = fresh_db () in
  check_shape db
    "SELECT g, COUNT(*) FROM a GROUP BY g HAVING COUNT(*) > 0 ORDER BY g LIMIT 1"
    ~wants:[ "Limit limit=1"; "Project"; "Sort"; "Filter"; "Aggregate" ]
    ~rejects:[];
  check_shape db "SELECT DISTINCT g FROM a"
    ~wants:[ "Distinct" ] ~rejects:[];
  check_shape db "SELECT 1"
    ~wants:[ "OneRow" ] ~rejects:[ "SeqScan" ];
  (* constant conjuncts fold into the first scan's filter *)
  check_shape db "SELECT * FROM a WHERE 1 = 1 AND v > 0"
    ~wants:[ "Filter" ] ~rejects:[]

let check_order_by_index () =
  let db = Db.create () in
  List.iter
    (fun sql -> ignore (Db.exec db sql))
    [ "CREATE TABLE o (k INT PRIMARY KEY, v INT, n INT NOT NULL)";
      "CREATE INDEX o_n ON o (n)";
      "INSERT INTO o VALUES (2, 20, 7), (1, 10, 9), (3, 30, 8)" ];
  (* ORDER BY an indexed NOT NULL column: index replaces the sort *)
  check_shape db "SELECT k FROM o ORDER BY n"
    ~wants:[ "IndexScan o (satisfies ORDER BY)" ] ~rejects:[ "Sort" ];
  (* and the answers really come out ordered *)
  (match Db.exec db "SELECT k FROM o ORDER BY n" with
  | Db.Rows { rows; _ } ->
    Alcotest.(check (list int)) "ordered by n" [ 2; 3; 1 ]
      (List.map (fun r -> Tip_storage.Value.to_int r.(0)) rows)
  | _ -> Alcotest.fail "rows");
  (* DESC, nullable columns, filters and multi-key orders still sort *)
  check_shape db "SELECT k FROM o ORDER BY n DESC"
    ~wants:[ "Sort" ] ~rejects:[];
  check_shape db "SELECT k FROM o ORDER BY v"
    ~wants:[ "Sort" ] ~rejects:[] (* v is nullable: sort keeps nulls-first *);
  check_shape db "SELECT k FROM o WHERE v > 0 ORDER BY n"
    ~wants:[ "Sort" ] ~rejects:[ "satisfies ORDER BY" ];
  check_shape db "SELECT k FROM o ORDER BY n, k"
    ~wants:[ "Sort" ] ~rejects:[]

let check_subquery_shapes () =
  let db = fresh_db () in
  (* subquery conjuncts are pinned above the join, never pushed into a
     scan that could not supply their outer columns *)
  check_shape db
    "SELECT * FROM a, b WHERE a.id = b.a_id AND EXISTS (SELECT 1 FROM b b2 \
     WHERE b2.w = a.v)"
    ~wants:[ "HashJoin"; "Filter (EXISTS" ] ~rejects:[];
  (* derived tables plan their own pipeline inline *)
  check_shape db
    "SELECT * FROM (SELECT g, COUNT(*) AS n FROM a GROUP BY g) t WHERE t.n > 0"
    ~wants:[ "Aggregate"; "Filter (t.n > 0)" ] ~rejects:[]

let suite =
  [ Alcotest.test_case "scan choices" `Quick check_scan_choices;
    Alcotest.test_case "join choices" `Quick check_join_choices;
    Alcotest.test_case "pipeline shapes" `Quick check_pipeline_shapes;
    Alcotest.test_case "ORDER BY from an index" `Quick check_order_by_index;
    Alcotest.test_case "subquery placement" `Quick check_subquery_shapes ]
