(* Client/server over the wire protocol: the ODBC/JDBC leg of Figure 1. *)

open Tip_storage
module Db = Tip_engine.Database

let value = Alcotest.testable Value.pp Value.equal

(* One shared demo server on an ephemeral port for the whole suite. *)
let server =
  lazy
    (let db = Tip_workload.Medical.demo_database () in
     let server = Tip_server.Server.listen ~port:0 db in
     Tip_server.Server.serve_in_background server;
     server)

let connect () =
  Tip_server.Remote.connect ~port:(Tip_server.Server.port (Lazy.force server)) ()

let check_basic_roundtrip () =
  let c = connect () in
  (match Tip_server.Remote.execute c "SELECT COUNT(*) FROM Prescription" with
  | Db.Rows { names = [ "count" ]; rows = [ [| Value.Int 5 |] ] } -> ()
  | r -> Alcotest.failf "unexpected result: %s" (Db.render_result r));
  (* typed values cross the wire and come back as blade values *)
  (match
     Tip_server.Remote.execute c
       "SELECT patientdob, frequency, valid FROM Prescription WHERE drug = 'Diabeta'"
   with
  | Db.Rows { rows = [ [| dob; freq; valid |] ]; _ } ->
    Alcotest.check value "chronon over the wire"
      (Tip_blade.Values.chronon (Tip_core.Chronon.of_ymd 1962 3 3))
      dob;
    Alcotest.check value "span over the wire"
      (Tip_blade.Values.span (Tip_core.Span.of_hours 8))
      freq;
    Alcotest.(check string) "NOW stays symbolic on the wire"
      "{[1999-10-01, NOW]}"
      (Value.to_display_string valid)
  | r -> Alcotest.failf "unexpected result: %s" (Db.render_result r));
  Tip_server.Remote.close c

let check_dml_and_errors () =
  let c = connect () in
  (match
     Tip_server.Remote.execute c
       "CREATE TABLE net_t (a INT PRIMARY KEY, b CHAR(5))"
   with
  | Db.Message _ -> ()
  | _ -> Alcotest.fail "expected message");
  (match Tip_server.Remote.execute c "INSERT INTO net_t VALUES (1, 'x'), (2, 'y')" with
  | Db.Affected 2 -> ()
  | _ -> Alcotest.fail "expected affected 2");
  (* errors come back as exceptions and the session stays usable *)
  (match Tip_server.Remote.execute c "INSERT INTO net_t VALUES (1, 'dup')" with
  | exception Tip_server.Remote.Remote_error msg ->
    Alcotest.(check bool) "error mentions the duplicate" true
      (try
         ignore (Str.search_forward (Str.regexp_string "duplicate") msg 0);
         true
       with Not_found -> false)
  | _ -> Alcotest.fail "expected remote error");
  (match Tip_server.Remote.execute c "SELECT COUNT(*) FROM net_t" with
  | Db.Rows { rows = [ [| Value.Int 2 |] ]; _ } -> ()
  | _ -> Alcotest.fail "session must survive the error");
  ignore (Tip_server.Remote.execute c "DROP TABLE net_t");
  Tip_server.Remote.close c

let check_parameters_over_wire () =
  let c = connect () in
  Tip_server.Remote.bind c "w" (Value.Int 1);
  (match
     Tip_server.Remote.execute c
       "SELECT patient FROM Prescription WHERE drug = 'Tylenol' AND \
        start(valid) - patientdob < '7 00:00:00'::Span * :w"
   with
  | Db.Rows { rows = [ [| Value.Str "Ms.Stone" |] ]; _ } -> ()
  | r -> Alcotest.failf "unexpected: %s" (Db.render_result r));
  (* bindings are consumed by the next execute *)
  (match
     Tip_server.Remote.execute c "SELECT COUNT(*) FROM Prescription WHERE 1 = :w"
   with
  | exception Tip_server.Remote.Remote_error _ -> ()
  | _ -> Alcotest.fail "stale binding must not leak");
  (* temporal parameter *)
  Tip_server.Remote.bind c "at"
    (Tip_blade.Values.chronon (Tip_core.Chronon.of_ymd 1999 10 3));
  (match
     Tip_server.Remote.execute c
       "SELECT COUNT(*) FROM Prescription WHERE contains(valid, :at)"
   with
  | Db.Rows { rows = [ [| Value.Int 3 |] ]; _ } -> ()
  | r -> Alcotest.failf "unexpected: %s" (Db.render_result r));
  Tip_server.Remote.close c

let check_concurrent_clients () =
  let banks = 4 and per_client = 25 in
  ignore
    (Tip_server.Remote.execute (connect ())
       "CREATE TABLE counter (k INT, v INT)");
  let worker i () =
    let c = connect () in
    for j = 0 to per_client - 1 do
      ignore
        (Tip_server.Remote.execute c
           (Printf.sprintf "INSERT INTO counter VALUES (%d, %d)" i j))
    done;
    Tip_server.Remote.close c
  in
  let threads = List.init banks (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join threads;
  let c = connect () in
  (match Tip_server.Remote.execute c "SELECT COUNT(*) FROM counter" with
  | Db.Rows { rows = [ [| Value.Int n |] ]; _ } ->
    Alcotest.(check int) "all inserts landed" (banks * per_client) n
  | _ -> Alcotest.fail "count");
  ignore (Tip_server.Remote.execute c "DROP TABLE counter");
  Tip_server.Remote.close c

let suite =
  [ Alcotest.test_case "round trip with typed values" `Quick
      check_basic_roundtrip;
    Alcotest.test_case "DML and error recovery" `Quick check_dml_and_errors;
    Alcotest.test_case "parameters over the wire" `Quick
      check_parameters_over_wire;
    Alcotest.test_case "concurrent clients" `Quick check_concurrent_clients ]
