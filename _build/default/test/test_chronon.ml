open Tip_core

let chronon = Alcotest.testable Chronon.pp Chronon.equal
let span = Alcotest.testable Span.pp Span.equal

let check_civil () =
  let c = Chronon.of_civil ~year:1999 ~month:9 ~day:1 ~hour:12 ~minute:30 ~second:5 in
  Alcotest.(check (list int)) "roundtrip"
    [ 1999; 9; 1; 12; 30; 5 ]
    (let y, m, d, hh, mm, ss = Chronon.to_civil c in [ y; m; d; hh; mm; ss ])

let check_epoch () =
  Alcotest.check chronon "epoch is 1970-01-01" Chronon.epoch
    (Chronon.of_ymd 1970 1 1);
  Alcotest.(check string) "prints date-only at midnight" "1970-01-01"
    (Chronon.to_string Chronon.epoch)

let check_y2k () =
  (* "And yes, TIP is Y2K-compliant!" *)
  let before = Chronon.of_civil ~year:1999 ~month:12 ~day:31 ~hour:23 ~minute:59 ~second:59 in
  let after = Chronon.succ before in
  Alcotest.check chronon "rollover" (Chronon.of_ymd 2000 1 1) after;
  Alcotest.(check bool) "2000 is a leap year" true (Chronon.is_leap_year 2000);
  Alcotest.(check bool) "1900 is not" false (Chronon.is_leap_year 1900);
  Alcotest.(check int) "feb 2000" 29 (Chronon.days_in_month 2000 2)

let check_pre_epoch () =
  let c = Chronon.of_ymd 1969 12 31 in
  Alcotest.(check string) "negative seconds print correctly" "1969-12-31"
    (Chronon.to_string c);
  Alcotest.check span "one day before epoch" (Span.of_days (-1))
    (Chronon.diff c Chronon.epoch)

let check_parse () =
  let famous = Chronon.of_string_exn "1970-01-01 00:00:00" in
  Alcotest.check chronon "famous chronon" Chronon.epoch famous;
  Alcotest.check chronon "date only" (Chronon.of_ymd 1999 9 1)
    (Chronon.of_string_exn "1999-09-01");
  Alcotest.(check (option reject)) "rejects month 13" None
    (Chronon.of_string "1999-13-01");
  Alcotest.(check (option reject)) "rejects feb 30" None
    (Chronon.of_string "1999-02-30");
  Alcotest.(check (option reject)) "rejects trailing garbage" None
    (Chronon.of_string "1999-02-03 xyz")

let check_arith () =
  let c = Chronon.of_ymd 1999 9 1 in
  Alcotest.check chronon "add week" (Chronon.of_ymd 1999 9 8)
    (Chronon.add c (Span.of_weeks 1));
  Alcotest.check chronon "sub day" (Chronon.of_ymd 1999 8 31)
    (Chronon.sub c (Span.of_days 1));
  Alcotest.check span "diff" (Span.of_days 31)
    (Chronon.diff (Chronon.of_ymd 1999 10 2) c);
  Alcotest.check chronon "start_of_day"
    (Chronon.of_ymd 1999 9 1)
    (Chronon.start_of_day
       (Chronon.of_civil ~year:1999 ~month:9 ~day:1 ~hour:23 ~minute:1 ~second:2))

let check_leap_days () =
  Alcotest.check span "1999 has 365 days" (Span.of_days 365)
    (Chronon.diff (Chronon.of_ymd 2000 1 1) (Chronon.of_ymd 1999 1 1));
  Alcotest.check span "2000 has 366 days" (Span.of_days 366)
    (Chronon.diff (Chronon.of_ymd 2001 1 1) (Chronon.of_ymd 2000 1 1))

let civil_gen =
  let open QCheck.Gen in
  let* year = int_range 1 9999 in
  let* month = int_range 1 12 in
  let* day = int_range 1 (Chronon.days_in_month year month) in
  let* hour = int_range 0 23 in
  let* minute = int_range 0 59 in
  let* second = int_range 0 59 in
  return (year, month, day, hour, minute, second)

let civil_arb =
  QCheck.make ~print:(fun (y, m, d, hh, mm, ss) ->
      Printf.sprintf "%d-%d-%d %d:%d:%d" y m d hh mm ss)
    civil_gen

let prop_civil_roundtrip =
  QCheck.Test.make ~name:"civil roundtrip" ~count:2000 civil_arb
    (fun (y, m, d, hh, mm, ss) ->
      let c = Chronon.of_civil ~year:y ~month:m ~day:d ~hour:hh ~minute:mm ~second:ss in
      Chronon.to_civil c = (y, m, d, hh, mm, ss))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:2000 civil_arb
    (fun (y, m, d, hh, mm, ss) ->
      let c = Chronon.of_civil ~year:y ~month:m ~day:d ~hour:hh ~minute:mm ~second:ss in
      Chronon.equal c (Chronon.of_string_exn (Chronon.to_string c)))

let prop_order_preserved =
  QCheck.Test.make ~name:"seconds order = chronon order" ~count:2000
    QCheck.(pair (int_range (-4102444800) 4102444800) (int_range (-4102444800) 4102444800))
    (fun (a, b) ->
      let ca = Chronon.of_unix_seconds a and cb = Chronon.of_unix_seconds b in
      Chronon.compare ca cb = Int.compare a b)

let suite =
  [ Alcotest.test_case "civil components roundtrip" `Quick check_civil;
    Alcotest.test_case "epoch" `Quick check_epoch;
    Alcotest.test_case "y2k rollover and leap rules" `Quick check_y2k;
    Alcotest.test_case "pre-epoch dates" `Quick check_pre_epoch;
    Alcotest.test_case "parsing and validation" `Quick check_parse;
    Alcotest.test_case "arithmetic" `Quick check_arith;
    Alcotest.test_case "leap-year day counts" `Quick check_leap_days;
    QCheck_alcotest.to_alcotest prop_civil_roundtrip;
    QCheck_alcotest.to_alcotest prop_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_order_preserved ]
