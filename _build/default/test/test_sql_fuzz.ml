(* Parser/printer round-trip fuzzing: for random expression ASTs,
   [parse (print ast) = ast]. This pins the printer's parenthesization
   and the parser's precedence against each other, far beyond the
   hand-written cases in test_sql.ml. *)

open Tip_sql

let idents = [| "a"; "b"; "c"; "col_x"; "valid"; "t0" |]
let quals = [| "t"; "p1"; "p2" |]
let funcs = [| "f"; "g"; "start"; "intersect"; "union"; "length" |]
let types = [| "INT"; "CHAR"; "Chronon"; "Span"; "Element" |]

let expr_gen =
  let open QCheck.Gen in
  let ident = oneofa idents in
  let literal =
    oneof
      [ map (fun n -> Ast.L_int n) (int_range 0 9999);
        (* fractional floats so %g cannot print them as integers *)
        map (fun n -> Ast.L_float (float_of_int n +. 0.25)) (int_range 0 999);
        map (fun s -> Ast.L_string s)
          (string_size ~gen:(oneofl [ 'a'; 'z'; '\''; ' '; '%'; '_' ])
             (int_range 0 6));
        return (Ast.L_bool true);
        return (Ast.L_bool false);
        return Ast.L_null ]
  in
  let leaf =
    oneof
      [ map (fun l -> Ast.Lit l) literal;
        map (fun c -> Ast.Column (None, c)) ident;
        (let* q = oneofa quals in
         let* c = ident in
         return (Ast.Column (Some q, c)));
        map (fun p -> Ast.Param p) ident ]
  in
  let binop =
    oneofl
      [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Eq; Ast.Neq; Ast.Lt;
        Ast.Le; Ast.Gt; Ast.Ge; Ast.And; Ast.Or; Ast.Concat ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else begin
        let sub = self (depth - 1) in
        frequency
          [ (3, leaf);
            (3,
             let* op = binop in
             let* a = sub in
             let* b = sub in
             return (Ast.Binop (op, a, b)));
            (1, map (fun e -> Ast.Unop (Ast.Not, e)) sub);
            (1, map (fun e -> Ast.Unop (Ast.Neg, e)) sub);
            (2,
             let* name = oneofa funcs in
             let* args = list_size (int_range 0 3) sub in
             return (Ast.Call (name, args)));
            (1,
             let* e = sub in
             let* ty = oneofa types in
             return (Ast.Cast (e, ty)));
            (1,
             let* arms = list_size (int_range 1 3) (pair sub sub) in
             let* else_ = option sub in
             return (Ast.Case (arms, else_)));
            (1,
             let* scrutinee = sub in
             let* choices = list_size (int_range 1 3) sub in
             let* negated = bool in
             return (Ast.In_list { negated; scrutinee; choices }));
            (1,
             let* scrutinee = sub in
             let* low = sub in
             let* high = sub in
             let* negated = bool in
             return (Ast.Between { negated; scrutinee; low; high }));
            (1,
             let* scrutinee = sub in
             let* pattern = sub in
             let* negated = bool in
             return (Ast.Like { negated; scrutinee; pattern }));
            (1,
             let* scrutinee = sub in
             let* negated = bool in
             return (Ast.Is_null { negated; scrutinee })) ]
      end)
    4

let expr_arb = QCheck.make ~print:Pretty.expr_to_string expr_gen

let reparse e =
  let sql = "SELECT " ^ Pretty.expr_to_string e in
  match Parser.parse sql with
  | Ast.Select { items = [ Ast.Sel_expr (e', _) ]; _ } -> Some e'
  | _ -> None
  | exception Parser.Error _ -> None

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"parse (print e) = e" ~count:2000 expr_arb (fun e ->
      match reparse e with
      | Some e' -> e' = e
      | None -> QCheck.Test.fail_reportf "did not reparse: %s" (Pretty.expr_to_string e))

(* Statements: full select skeletons over a fixed FROM shape. *)
let select_gen =
  let open QCheck.Gen in
  let* n_items = int_range 1 3 in
  let* items =
    list_repeat n_items
      (let* e = expr_gen in
       let* alias = option (oneofa idents) in
       return (Ast.Sel_expr (e, alias)))
  in
  let* where = option expr_gen in
  let* distinct = bool in
  let* order_by =
    list_size (int_range 0 2)
      (pair expr_gen (oneofl [ Ast.Asc; Ast.Desc ]))
  in
  let* limit = option (int_range 0 100) in
  return
    { Ast.empty_select with
      distinct;
      items;
      from =
        [ Ast.Table { name = "t"; alias = Some "x"; as_of = None };
          Ast.Table { name = "u"; alias = Some "y"; as_of = None } ];
      where;
      order_by;
      limit }

let select_arb =
  QCheck.make
    ~print:(fun s -> Pretty.statement_to_string (Ast.Select s))
    select_gen

let prop_select_roundtrip =
  QCheck.Test.make ~name:"parse (print select) = select" ~count:500 select_arb
    (fun s ->
      let sql = Pretty.statement_to_string (Ast.Select s) in
      match Parser.parse sql with
      | Ast.Select s' -> s' = s
      | _ -> false
      | exception Parser.Error _ ->
        QCheck.Test.fail_reportf "did not reparse: %s" sql)

let suite =
  [ QCheck_alcotest.to_alcotest prop_expr_roundtrip;
    QCheck_alcotest.to_alcotest prop_select_roundtrip ]
