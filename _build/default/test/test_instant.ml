open Tip_core

let chronon = Alcotest.testable Chronon.pp Chronon.equal
let span = Alcotest.testable Span.pp Span.equal
let instant = Alcotest.testable Instant.pp Instant.equal

(* The paper's running example: "NOW-1 becomes 1999-08-31 if today's date
   is 1999-09-01". *)
let today = Chronon.of_ymd 1999 9 1

let check_binding () =
  let yesterday = Instant.now_minus (Span.of_days 1) in
  Alcotest.check chronon "NOW-1 under 1999-09-01" (Chronon.of_ymd 1999 8 31)
    (Instant.bind ~now:today yesterday);
  Alcotest.check chronon "NOW itself" today (Instant.bind ~now:today Instant.now);
  Alcotest.check chronon "fixed instants ignore now" (Chronon.of_ymd 1980 1 1)
    (Instant.bind ~now:today (Instant.of_chronon (Chronon.of_ymd 1980 1 1)))

let check_notation () =
  Alcotest.(check string) "NOW" "NOW" (Instant.to_string Instant.now);
  Alcotest.(check string) "NOW-1" "NOW-1"
    (Instant.to_string (Instant.now_minus (Span.of_days 1)));
  Alcotest.(check string) "NOW+7 12:00:00" "NOW+7 12:00:00"
    (Instant.to_string
       (Instant.now_plus (Span.of_dhms ~days:7 ~hours:12 ~minutes:0 ~seconds:0)));
  Alcotest.(check string) "fixed" "1999-09-01"
    (Instant.to_string (Instant.of_chronon today))

let check_parse () =
  Alcotest.check instant "NOW" Instant.now (Instant.of_string_exn "NOW");
  Alcotest.check instant "now case-insensitive" Instant.now
    (Instant.of_string_exn "now");
  Alcotest.check instant "NOW-1" (Instant.now_minus (Span.of_days 1))
    (Instant.of_string_exn "NOW-1");
  Alcotest.check instant "NOW - 1 with spaces" (Instant.now_minus (Span.of_days 1))
    (Instant.of_string_exn "NOW - 1");
  Alcotest.check instant "chronon literal" (Instant.of_chronon today)
    (Instant.of_string_exn "1999-09-01");
  Alcotest.(check (option reject)) "rejects NOW*2" None (Instant.of_string "NOW*2")

let check_comparison_moves_with_time () =
  (* "the result of comparing a Chronon to a NOW-relative Instant may
     change as time advances" *)
  let cutoff = Instant.of_chronon (Chronon.of_ymd 1999 9 15) in
  let week_ago = Instant.now_minus (Span.of_weeks 1) in
  let early = Chronon.of_ymd 1999 9 1 in
  let late = Chronon.of_ymd 1999 10 1 in
  Alcotest.(check bool) "before cutoff when asked early" true
    (Instant.compare_at ~now:early week_ago cutoff < 0);
  Alcotest.(check bool) "after cutoff when asked late" true
    (Instant.compare_at ~now:late week_ago cutoff > 0)

let check_arith () =
  Alcotest.check instant "NOW-1 plus 1 day is NOW" Instant.now
    (Instant.add (Instant.now_minus (Span.of_days 1)) (Span.of_days 1));
  Alcotest.check span "diff of two NOW-relatives ignores now"
    (Span.of_days 6)
    (Instant.diff ~now:today (Instant.now_minus (Span.of_days 1))
       (Instant.now_minus (Span.of_weeks 1)));
  Alcotest.check span "mixed diff uses now" (Span.of_days 1)
    (Instant.diff ~now:today Instant.now
       (Instant.of_chronon (Chronon.of_ymd 1999 8 31)))

let check_structural_equality () =
  Alcotest.(check bool) "NOW-1 <> the chronon it binds to" false
    (Instant.equal
       (Instant.now_minus (Span.of_days 1))
       (Instant.of_chronon (Chronon.of_ymd 1999 8 31)))

let instant_arb =
  let open QCheck in
  let fixed =
    map (fun s -> Instant.of_chronon (Chronon.of_unix_seconds s))
      (int_range (-3_000_000_000) 3_000_000_000)
  in
  let relative =
    map (fun s -> Instant.Now_relative (Span.of_seconds s))
      (int_range (-100_000_000) 100_000_000)
  in
  let base = oneof [ fixed; relative ] in
  set_print Instant.to_string base

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:2000 instant_arb
    (fun i -> Instant.equal i (Instant.of_string_exn (Instant.to_string i)))

let prop_bind_add =
  QCheck.Test.make ~name:"bind commutes with add" ~count:1000
    QCheck.(pair instant_arb (int_range (-1_000_000) 1_000_000))
    (fun (i, s) ->
      let sp = Span.of_seconds s in
      Chronon.equal
        (Instant.bind ~now:today (Instant.add i sp))
        (Chronon.add (Instant.bind ~now:today i) sp))

let suite =
  [ Alcotest.test_case "NOW binding" `Quick check_binding;
    Alcotest.test_case "notation" `Quick check_notation;
    Alcotest.test_case "parsing" `Quick check_parse;
    Alcotest.test_case "comparison changes as time advances" `Quick
      check_comparison_moves_with_time;
    Alcotest.test_case "arithmetic" `Quick check_arith;
    Alcotest.test_case "structural equality keeps NOW symbolic" `Quick
      check_structural_equality;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_bind_add ]
