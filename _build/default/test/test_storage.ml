open Tip_storage

let value = Alcotest.testable Value.pp Value.equal

(* A test-local extension type, proving the registry works without the
   TIP blade: a "mood" wrapping a string. *)
type Value.ext += Mood of string

let mood s = Value.Ext ("mood", Mood s)

let mood_registered =
  lazy
    (Value.register_type ~name:"Mood"
       { Value.parse = (fun s -> mood s);
         print =
           (fun v ->
             match v with
             | Value.Ext ("mood", Mood s) -> s
             | _ -> raise (Value.Type_error "not a mood"));
         compare =
           Some
             (fun a b ->
               match a, b with
               | Value.Ext (_, Mood x), Value.Ext (_, Mood y) -> String.compare x y
               | _ -> raise (Value.Type_error "not moods"));
         extents = None })

(* --- Value ------------------------------------------------------------- *)

let check_value_compare () =
  Alcotest.(check bool) "int/float compare" true
    (Value.compare (Value.Int 1) (Value.Float 1.5) < 0);
  Alcotest.(check bool) "int = integral float" true
    (Value.equal (Value.Int 2) (Value.Float 2.0));
  Alcotest.(check bool) "hash agrees on int/float equality" true
    (Value.hash (Value.Int 2) = Value.hash (Value.Float 2.0));
  Alcotest.(check bool) "strings" true
    (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  (* Cross-kind comparisons fall back to a fixed rank so ORDER BY has a
     total order; only same-rank incompatibilities are type errors. *)
  Alcotest.(check bool) "cross-kind ordering is deterministic" true
    (Value.compare (Value.Int 1) (Value.Str "x") < 0);
  Lazy.force mood_registered;
  Alcotest.(check bool) "different ext types are a type error" true
    (match Value.compare (mood "hm") (Value.Ext ("other", Mood "x")) with
    | _ -> false
    | exception Value.Type_error _ -> true)

let check_ext_type () =
  Lazy.force mood_registered;
  Alcotest.(check string) "prints via vtable" "sunny"
    (Value.to_display_string (mood "sunny"));
  Alcotest.(check bool) "compares via vtable" true
    (Value.compare (mood "grumpy") (mood "sunny") < 0);
  Alcotest.(check string) "type name" "mood" (Value.type_name (mood "hm"))

(* --- Schema -------------------------------------------------------------- *)

let check_schema () =
  Lazy.force mood_registered;
  let schema =
    Schema.make ~table_name:"T"
      [ Schema.make_column ~primary_key:true "id" Schema.T_int;
        Schema.make_column "name" (Schema.T_char (Some 5));
        Schema.make_column "state" (Schema.type_of_name "Mood") ]
  in
  Alcotest.(check int) "arity" 3 (Schema.arity schema);
  Alcotest.(check (option int)) "case-insensitive lookup" (Some 1)
    (Schema.column_index schema "NAME");
  Alcotest.(check (option int)) "pk" (Some 0) (Schema.primary_key_index schema);
  Alcotest.(check (option value)) "char truncation"
    (Some (Value.Str "abcde"))
    (Schema.coerce (Schema.T_char (Some 5)) (Value.Str "abcdefgh"));
  Alcotest.(check (option value)) "int widens to float"
    (Some (Value.Float 3.))
    (Schema.coerce Schema.T_float (Value.Int 3));
  Alcotest.(check (option value)) "mismatch rejected" None
    (Schema.coerce Schema.T_int (Value.Str "1"));
  Alcotest.check_raises "unknown type"
    (Schema.Schema_error "unknown type Wibble (is the DataBlade installed?)")
    (fun () -> ignore (Schema.type_of_name "Wibble"))

(* --- Btree --------------------------------------------------------------- *)

let check_btree_basics () =
  let bt = Btree.create () in
  for i = 0 to 999 do
    Btree.insert bt (Value.Int ((i * 37) mod 1000)) i
  done;
  Btree.check_invariants bt;
  Alcotest.(check int) "entries" 1000 (Btree.entry_count bt);
  Alcotest.(check bool) "exact lookup" true (Btree.find bt (Value.Int 37) <> []);
  let hits =
    Btree.range bt ~lo:(Btree.Inclusive (Value.Int 10))
      ~hi:(Btree.Exclusive (Value.Int 20))
  in
  Alcotest.(check int) "range [10,20) has 10 keys" 10 (List.length hits);
  ignore (Btree.remove bt (Value.Int 37) ((37 * 27 (* inverse of 37 mod 1000? *)) mod 1000));
  Btree.check_invariants bt

let check_btree_duplicates () =
  let bt = Btree.create () in
  Btree.insert bt (Value.Str "k") 1;
  Btree.insert bt (Value.Str "k") 2;
  Btree.insert bt (Value.Str "k") 3;
  Alcotest.(check (list int)) "multimap" [ 3; 2; 1 ] (Btree.find bt (Value.Str "k"));
  Alcotest.(check bool) "remove one" true (Btree.remove bt (Value.Str "k") 2);
  Alcotest.(check (list int)) "two left" [ 3; 1 ] (Btree.find bt (Value.Str "k"));
  Alcotest.(check bool) "remove absent" false (Btree.remove bt (Value.Str "k") 9)

let btree_ops_arb =
  let open QCheck in
  let op =
    let open Gen in
    let* key = int_range 0 200 in
    let* rid = int_range 0 50 in
    let* is_insert = bool in
    return (key, rid, is_insert)
  in
  make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (fun (k, r, i) -> Printf.sprintf "%s(%d,%d)" (if i then "I" else "D") k r)
           ops))
    QCheck.Gen.(list_size (int_range 0 400) op)

let prop_btree_matches_oracle =
  QCheck.Test.make ~name:"btree = sorted-map oracle" ~count:300 btree_ops_arb
    (fun ops ->
      let bt = Btree.create () in
      let module M = Map.Make (Int) in
      let oracle = ref M.empty in
      List.iter
        (fun (k, rid, is_insert) ->
          if is_insert then begin
            Btree.insert bt (Value.Int k) rid;
            oracle :=
              M.update k
                (fun rids -> Some (rid :: Option.value rids ~default:[]))
                !oracle
          end
          else begin
            let present =
              match M.find_opt k !oracle with
              | Some rids -> List.mem rid rids
              | None -> false
            in
            let removed = Btree.remove bt (Value.Int k) rid in
            if removed <> present then QCheck.Test.fail_report "remove mismatch";
            if present then begin
              oracle :=
                M.update k
                  (fun rids ->
                    let rids = Option.value rids ~default:[] in
                    let rec drop_one = function
                      | [] -> []
                      | r :: rest -> if r = rid then rest else r :: drop_one rest
                    in
                    match drop_one rids with [] -> None | l -> Some l)
                  !oracle
            end
          end)
        ops;
      Btree.check_invariants bt;
      (* Compare a handful of range scans against the oracle. *)
      List.for_all
        (fun (lo, hi) ->
          let got =
            Btree.range bt ~lo:(Btree.Inclusive (Value.Int lo))
              ~hi:(Btree.Inclusive (Value.Int hi))
            |> List.sort Int.compare
          in
          let expected =
            M.fold
              (fun k rids acc -> if k >= lo && k <= hi then rids @ acc else acc)
              !oracle []
            |> List.sort Int.compare
          in
          got = expected)
        [ (0, 200); (50, 60); (199, 0); (100, 100) ])

(* --- Interval index -------------------------------------------------------- *)

let check_interval_basics () =
  let idx = Interval_index.create () in
  Interval_index.insert idx ~lo:0 ~hi:10 1;
  Interval_index.insert idx ~lo:5 ~hi:15 2;
  Interval_index.insert idx ~lo:20 ~hi:30 3;
  Interval_index.check_invariants idx;
  Alcotest.(check (list int)) "stab at 7" [ 1; 2 ]
    (List.sort Int.compare (Interval_index.query_stab idx ~at:7));
  Alcotest.(check (list int)) "window 12..25" [ 2; 3 ]
    (List.sort Int.compare (Interval_index.query_overlaps idx ~lo:12 ~hi:25));
  Alcotest.(check bool) "remove" true (Interval_index.remove idx ~lo:5 ~hi:15 2);
  Alcotest.(check bool) "remove absent" false
    (Interval_index.remove idx ~lo:5 ~hi:15 2);
  Alcotest.(check (list int)) "after removal" [ 1 ]
    (Interval_index.query_stab idx ~at:7)

let interval_ops_arb =
  let open QCheck in
  let iv =
    let open Gen in
    let* lo = int_range 0 500 in
    let* len = int_range 0 80 in
    return (lo, lo + len)
  in
  make
    ~print:(fun ivs ->
      String.concat ";" (List.map (fun (l, h) -> Printf.sprintf "[%d,%d]" l h) ivs))
    QCheck.Gen.(list_size (int_range 0 200) iv)

let prop_interval_matches_bruteforce =
  QCheck.Test.make ~name:"interval index = brute force" ~count:300
    interval_ops_arb (fun ivs ->
      let idx = Interval_index.create () in
      List.iteri (fun rid (lo, hi) -> Interval_index.insert idx ~lo ~hi rid) ivs;
      Interval_index.check_invariants idx;
      (* Remove every third interval. *)
      List.iteri
        (fun rid (lo, hi) ->
          if rid mod 3 = 0 then
            ignore (Interval_index.remove idx ~lo ~hi rid))
        ivs;
      Interval_index.check_invariants idx;
      let live = List.filteri (fun rid _ -> rid mod 3 <> 0) (List.mapi (fun i iv -> (i, iv)) ivs) in
      List.for_all
        (fun (qlo, qhi) ->
          let got =
            Interval_index.query_overlaps idx ~lo:qlo ~hi:qhi
            |> List.sort Int.compare
          in
          let expected =
            List.filter_map
              (fun (rid, (lo, hi)) ->
                if lo <= qhi && qlo <= hi then Some rid else None)
              live
            |> List.sort Int.compare
          in
          got = expected)
        [ (0, 600); (100, 120); (250, 250); (590, 600) ])

(* --- Heap ------------------------------------------------------------------ *)

let check_heap () =
  let h = Heap.create () in
  let r1 = Heap.insert h [| Value.Int 1 |] in
  let r2 = Heap.insert h [| Value.Int 2 |] in
  let r3 = Heap.insert h [| Value.Int 3 |] in
  Alcotest.(check int) "live" 3 (Heap.live_count h);
  Alcotest.(check bool) "delete" true (Heap.delete h r2);
  Alcotest.(check bool) "double delete" false (Heap.delete h r2);
  Alcotest.(check (list int)) "iterates live only" [ r1; r3 ] (Heap.rids h);
  let r4 = Heap.insert h [| Value.Int 4 |] in
  Alcotest.(check int) "tombstone recycled" r2 r4;
  Alcotest.check value "row content" (Value.Int 4) (Heap.get_exn h r4).(0)

(* --- Table ------------------------------------------------------------------ *)

let patient_schema () =
  Schema.make ~table_name:"patients"
    [ Schema.make_column ~primary_key:true "id" Schema.T_int;
      Schema.make_column ~not_null:true "name" (Schema.T_char (Some 20));
      Schema.make_column "weight" Schema.T_float ]

let check_table_constraints () =
  let t = Table.create (patient_schema ()) in
  let rid = Table.insert t [| Value.Int 1; Value.Str "Mr.Showbiz"; Value.Int 80 |] in
  Alcotest.check value "int widened in float column" (Value.Float 80.)
    (Table.get_exn t rid).(2);
  Alcotest.check_raises "duplicate pk"
    (Table.Constraint_violation "duplicate key 1 for unique index patients_pkey")
    (fun () -> ignore (Table.insert t [| Value.Int 1; Value.Str "X"; Value.Null |]));
  Alcotest.check_raises "null in not-null"
    (Table.Constraint_violation "column name of patients is NOT NULL")
    (fun () -> ignore (Table.insert t [| Value.Int 2; Value.Null; Value.Null |]));
  Alcotest.check_raises "arity"
    (Table.Constraint_violation "table patients expects 3 values, got 1")
    (fun () -> ignore (Table.insert t [| Value.Int 9 |]));
  Alcotest.check_raises "type mismatch"
    (Table.Constraint_violation
       "column id of patients expects INT, got char (two)") (fun () ->
      ignore (Table.insert t [| Value.Str "two"; Value.Str "Y"; Value.Null |]));
  (* A failed insert must leave the table unchanged. *)
  Alcotest.(check int) "row count" 1 (Table.row_count t)

let check_table_index_maintenance () =
  let t = Table.create (patient_schema ()) in
  let idx =
    Table.create_index t ~idx_name:"by_name" ~column:"name" ~unique:false
      ~kind:Table.Ordered
  in
  let bt = match idx.Table.impl with
    | Table.Ordered_impl bt -> bt
    | Table.Interval_impl _ -> Alcotest.fail "wrong kind"
  in
  let rid = Table.insert t [| Value.Int 1; Value.Str "Ann"; Value.Null |] in
  ignore (Table.insert t [| Value.Int 2; Value.Str "Bob"; Value.Null |]);
  Alcotest.(check (list int)) "index sees insert" [ rid ]
    (Btree.find bt (Value.Str "Ann"));
  ignore (Table.update t rid [| Value.Int 1; Value.Str "Anna"; Value.Null |]);
  Alcotest.(check (list int)) "old key gone" [] (Btree.find bt (Value.Str "Ann"));
  Alcotest.(check (list int)) "new key present" [ rid ]
    (Btree.find bt (Value.Str "Anna"));
  ignore (Table.delete t rid);
  Alcotest.(check (list int)) "delete maintains index" []
    (Btree.find bt (Value.Str "Anna"));
  (* Unique secondary index backfill failure. *)
  ignore (Table.insert t [| Value.Int 3; Value.Str "Bob"; Value.Null |]);
  Alcotest.(check bool) "unique backfill fails on duplicates" true
    (match
       Table.create_index t ~idx_name:"uniq_name" ~column:"name" ~unique:true
         ~kind:Table.Ordered
     with
    | _ -> false
    | exception Table.Constraint_violation _ -> true)

(* --- Catalog & persistence ---------------------------------------------------- *)

let check_catalog () =
  let cat = Catalog.create () in
  let t = Catalog.create_table cat (patient_schema ()) in
  Alcotest.(check bool) "case-insensitive lookup" true
    (Catalog.find_table cat "PATIENTS" == Some t |> fun _ ->
     Catalog.find_table cat "PATIENTS" <> None);
  Alcotest.check_raises "duplicate table"
    (Catalog.Catalog_error "table patients already exists") (fun () ->
      ignore (Catalog.create_table cat (patient_schema ())));
  ignore
    (Catalog.create_index cat ~idx_name:"by_name" ~table_name:"patients"
       ~column:"name" ~unique:false ~kind:Table.Ordered);
  Alcotest.check_raises "duplicate index name is global"
    (Catalog.Catalog_error "index by_name already exists") (fun () ->
      ignore
        (Catalog.create_index cat ~idx_name:"by_name" ~table_name:"patients"
           ~column:"weight" ~unique:false ~kind:Table.Ordered));
  Alcotest.(check bool) "drop index" true (Catalog.drop_index cat "by_name");
  Alcotest.(check bool) "drop table" true (Catalog.drop_table cat "patients");
  Alcotest.(check bool) "gone" true (Catalog.find_table cat "patients" = None)

let check_persist_roundtrip () =
  Lazy.force mood_registered;
  let cat = Catalog.create () in
  let schema =
    Schema.make ~table_name:"t"
      [ Schema.make_column ~primary_key:true "id" Schema.T_int;
        Schema.make_column "note" (Schema.T_char None);
        Schema.make_column "state" (Schema.type_of_name "Mood");
        Schema.make_column "born" Schema.T_date;
        Schema.make_column "score" Schema.T_float;
        Schema.make_column "ok" Schema.T_bool ]
  in
  let t = Catalog.create_table cat schema in
  let date = Tip_core.Chronon.of_ymd 1999 9 1 in
  ignore
    (Table.insert t
       [| Value.Int 1; Value.Str "tab\there\nand newline \\ backslash";
          Value.Ext ("mood", Mood "sunny"); Value.Date date; Value.Float 1.5;
          Value.Bool true |]);
  ignore
    (Table.insert t
       [| Value.Int 2; Value.Null; Value.Null; Value.Null; Value.Null;
          Value.Null |]);
  ignore
    (Catalog.create_index cat ~idx_name:"by_note" ~table_name:"t" ~column:"note"
       ~unique:false ~kind:Table.Ordered);
  let path = Filename.temp_file "tipdb" ".snapshot" in
  Persist.save cat path;
  let cat' = Persist.load path in
  Sys.remove path;
  let t' = Catalog.table_exn cat' "t" in
  Alcotest.(check int) "row count" 2 (Table.row_count t');
  let rows = ref [] in
  Table.iteri (fun _ row -> rows := row :: !rows) t';
  let rows = List.rev !rows in
  (match rows with
  | [ r1; r2 ] ->
    Alcotest.check value "escaped text" (Value.Str "tab\there\nand newline \\ backslash") r1.(1);
    Alcotest.check value "ext value" (Value.Ext ("mood", Mood "sunny")) r1.(2);
    Alcotest.check value "date" (Value.Date date) r1.(3);
    Alcotest.check value "null" Value.Null r2.(1)
  | _ -> Alcotest.fail "expected two rows");
  Alcotest.(check bool) "secondary index restored" true
    (Table.find_index t' "by_note" <> None);
  Alcotest.(check bool) "pkey index restored" true
    (Table.find_index t' "t_pkey" <> None)

let suite =
  [ Alcotest.test_case "value comparison" `Quick check_value_compare;
    Alcotest.test_case "extension types via registry" `Quick check_ext_type;
    Alcotest.test_case "schema" `Quick check_schema;
    Alcotest.test_case "btree basics" `Quick check_btree_basics;
    Alcotest.test_case "btree duplicates" `Quick check_btree_duplicates;
    QCheck_alcotest.to_alcotest prop_btree_matches_oracle;
    Alcotest.test_case "interval index basics" `Quick check_interval_basics;
    QCheck_alcotest.to_alcotest prop_interval_matches_bruteforce;
    Alcotest.test_case "heap rid recycling" `Quick check_heap;
    Alcotest.test_case "table constraints" `Quick check_table_constraints;
    Alcotest.test_case "table index maintenance" `Quick
      check_table_index_maintenance;
    Alcotest.test_case "catalog" `Quick check_catalog;
    Alcotest.test_case "persistence roundtrip" `Quick check_persist_roundtrip ]
