(* TIP DataBlade tests: the paper's medical database and all of its
   worked queries, end-to-end through SQL. *)

open Tip_core
open Tip_storage
module Db = Tip_engine.Database

let exec = Db.exec
let rows db sql = Db.rows_exn (exec db sql)

let value = Alcotest.testable Value.pp Value.equal

let check_row_list msg expected actual =
  Alcotest.(check (list (list value))) msg expected (List.map Array.to_list actual)

let str s = Value.Str s

(* The demo is frozen on 1999-10-15 ("fully functional in October 1999"). *)
let demo_now = Chronon.of_ymd 1999 10 15

let medical_db () =
  let db = Tip_blade.Blade.create_database () in
  ignore (exec db "SET NOW = '1999-10-15'");
  ignore
    (exec db
       "CREATE TABLE Prescription (doctor CHAR(20), patient CHAR(20), \
        patientdob Chronon, drug CHAR(20), dosage INT, frequency Span, \
        valid Element)");
  List.iter
    (fun sql -> ignore (exec db sql))
    [ (* the paper's INSERT, verbatim *)
      "INSERT INTO Prescription VALUES ('Dr.Pepper', 'Mr.Showbiz', \
       '1962-03-03', 'Diabeta', 1, '0 08:00:00', '{[1999-10-01, NOW]}')";
      "INSERT INTO Prescription VALUES ('Dr.No', 'Mr.Showbiz', '1962-03-03', \
       'Aspirin', 2, '0 12:00:00', '{[1999-09-20, 1999-10-05]}')";
      "INSERT INTO Prescription VALUES ('Dr.No', 'Ms.Stone', '1999-09-20', \
       'Tylenol', 1, '1', '{[1999-09-25, 1999-10-02]}')";
      "INSERT INTO Prescription VALUES ('Dr.Pepper', 'Ms.Stone', \
       '1999-09-20', 'Aspirin', 1, '2', '{[1999-11-01, 1999-11-15]}')";
      "INSERT INTO Prescription VALUES ('Dr.Who', 'Mr.Bean', '1955-01-01', \
       'Prozac', 1, '1', '{[1999-01-01, 1999-04-30], [1999-07-01, \
       1999-10-31]}')" ];
  db

(* --- Datatype round trips through the engine ------------------------------ *)

let check_storage_roundtrip () =
  let db = medical_db () in
  check_row_list "element stored symbolically (NOW preserved)"
    [ [ str "{[1999-10-01, NOW]}" ] ]
    (rows db "SELECT valid::CHAR FROM Prescription WHERE drug = 'Diabeta'");
  check_row_list "chronon column"
    [ [ str "1962-03-03" ] ]
    (rows db
       "SELECT patientdob::CHAR FROM Prescription WHERE drug = 'Diabeta'");
  check_row_list "span column"
    [ [ str "0 08:00:00" ] ]
    (rows db "SELECT frequency::CHAR FROM Prescription WHERE drug = 'Diabeta'")

(* --- The paper's Section 2 queries ------------------------------------------ *)

let check_tylenol_query () =
  let db = medical_db () in
  (* "patients who were prescribed Tylenol when they were less than w
     weeks old" — Ms.Stone was born 1999-09-20 and started Tylenol on
     1999-09-25, i.e. at 5 days old. *)
  let query =
    "SELECT patient FROM Prescription WHERE drug = 'Tylenol' AND \
     start(valid) - patientdob < '7 00:00:00'::Span * :w"
  in
  check_row_list "w = 1 week: Ms.Stone matches"
    [ [ str "Ms.Stone" ] ]
    (Db.rows_exn (Db.exec ~params:[ ("w", Value.Int 1) ] db query));
  check_row_list "w = 0 weeks: no one" []
    (Db.rows_exn (Db.exec ~params:[ ("w", Value.Int 0) ] db query))

let check_self_join_query () =
  let db = medical_db () in
  (* "who has taken Diabeta and Aspirin simultaneously, and exactly when" *)
  let r =
    rows db
      "SELECT p1.patient, intersect(p1.valid, p2.valid)::CHAR FROM \
       Prescription p1, Prescription p2 WHERE p1.drug = 'Diabeta' AND \
       p2.drug = 'Aspirin' AND p1.patient = p2.patient AND \
       overlaps(p1.valid, p2.valid)"
  in
  (* Diabeta [1999-10-01, NOW], Aspirin [1999-09-20, 1999-10-05]; with NOW
     = 1999-10-15 they overlap during [1999-10-01, 1999-10-05]. *)
  check_row_list "overlap computed"
    [ [ str "Mr.Showbiz"; str "{[1999-10-01, 1999-10-05]}" ] ]
    r

let check_coalesce_query () =
  let db = medical_db () in
  (* length(group_union(valid)) vs the broken SUM(length(valid)):
     Mr.Showbiz has Diabeta [10-01, NOW=10-15] (14 days) and Aspirin
     [09-20, 10-05] (15 days) overlapping during [10-01, 10-05]; the
     coalesced length is 25 days while the naive SUM double-counts 29. *)
  check_row_list "temporal coalescing via group_union"
    [ [ str "Mr.Bean"; str "241" ];
      [ str "Mr.Showbiz"; str "25" ];
      [ str "Ms.Stone"; str "21" ] ]
    (rows db
       "SELECT patient, (length(group_union(valid))::INT / 86400)::CHAR \
        FROM Prescription GROUP BY patient ORDER BY patient");
  check_row_list "naive SUM double-counts overlapped care"
    [ [ str "Mr.Showbiz"; Value.Int 29 ] ]
    (rows db
       "SELECT patient, SUM(length(valid)::INT) / 86400 FROM Prescription \
        WHERE patient = 'Mr.Showbiz' GROUP BY patient")

(* --- NOW semantics ------------------------------------------------------------- *)

let check_now_shifts_results () =
  let db = medical_db () in
  let active_query =
    "SELECT drug FROM Prescription WHERE patient = 'Mr.Showbiz' AND \
     contains(valid, now()) ORDER BY drug"
  in
  check_row_list "both drugs active on 1999-10-03 (what-if past)"
    [ [ str "Aspirin" ]; [ str "Diabeta" ] ]
    (let _ = exec db "SET NOW = '1999-10-03'" in
     rows db active_query);
  check_row_list "only the open-ended Diabeta active later"
    [ [ str "Diabeta" ] ]
    (let _ = exec db "SET NOW = '1999-12-01'" in
     rows db active_query);
  (* Comparing a Chronon column to a NOW-relative instant: the answer
     changes as time advances, with unchanged data. *)
  let recent = "SELECT patient FROM Prescription WHERE patientdob > 'NOW-30'" in
  check_row_list "Ms.Stone is under 30 days old in mid-October"
    [ [ str "Ms.Stone" ]; [ str "Ms.Stone" ] ]
    (let _ = exec db "SET NOW = '1999-10-15'" in
     rows db recent);
  check_row_list "nobody is, a year later" []
    (let _ = exec db "SET NOW = '2000-10-15'" in
     rows db recent)

let check_set_now_roundtrip () =
  let db = medical_db () in
  (match exec db "SET NOW = '2001-05-05'" with
  | Db.Message m ->
    Alcotest.(check string) "message" "NOW set to 2001-05-05" m
  | _ -> Alcotest.fail "expected message");
  Alcotest.(check bool) "override recorded" true
    (Db.now_override db = Some (Chronon.of_ymd 2001 5 5));
  ignore (exec db "SET NOW DEFAULT");
  Alcotest.(check bool) "override cleared" true (Db.now_override db = None)

(* --- Casts ----------------------------------------------------------------------- *)

let check_casts () =
  let db = medical_db () in
  let one sql = match rows db sql with [ [| v |] ] -> v | _ -> Alcotest.fail sql in
  Alcotest.check value "chronon to period (paper example)"
    (str "[1970-01-01, 1970-01-01]")
    (one "SELECT '1970-01-01'::Chronon::Period::CHAR");
  Alcotest.check value "NOW-1 to chronon binds transaction time"
    (str "1999-10-14")
    (one "SELECT 'NOW-1'::Instant::Chronon::CHAR");
  Alcotest.check value "span seconds"
    (Value.Int 86400)
    (one "SELECT '1'::Span::INT");
  Alcotest.check value "date to chronon is implicit in comparisons"
    (Value.Bool true)
    (one "SELECT '1999-01-01'::DATE = '1999-01-01'::Chronon");
  Alcotest.check value "string parses via cast"
    (str "{[1999-01-01, 1999-12-31]}")
    (one "SELECT '{[1999-01-01, 1999-12-31]}'::Element::CHAR");
  (match exec db "SELECT '1999-13-01'::Chronon" with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "bad literal must fail")

let check_operator_overloads () =
  let db = medical_db () in
  let one sql = match rows db sql with [ [| v |] ] -> v | _ -> Alcotest.fail sql in
  Alcotest.check value "chronon + span"
    (str "1999-01-08")
    (one "SELECT ('1999-01-01'::Chronon + '7'::Span)::CHAR");
  Alcotest.check value "chronon - chronon = span"
    (str "31") (one "SELECT ('1999-02-01'::Chronon - '1999-01-01'::Chronon)::CHAR");
  Alcotest.check value "span * int"
    (str "14") (one "SELECT ('7'::Span * 2)::CHAR");
  Alcotest.check value "span / span"
    (Value.Float 3.5) (one "SELECT '7'::Span / '2'::Span");
  Alcotest.check value "chronon < instant (NOW-relative)"
    (Value.Bool true)
    (one "SELECT '1999-10-10'::Chronon < 'NOW'::Instant");
  (* "a Chronon plus a Chronon returns a type error" *)
  (match exec db "SELECT '1999-01-01'::Chronon + '1999-01-01'::Chronon" with
  | exception Tip_engine.Expr_eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "chronon + chronon must be a type error")

let check_allen_in_sql () =
  let db = medical_db () in
  let one sql = match rows db sql with [ [| v |] ] -> v | _ -> Alcotest.fail sql in
  Alcotest.check value "before"
    (Value.Bool true)
    (one
       "SELECT before('[1999-01-01, 1999-01-31]'::Period, \
        '[1999-03-01, 1999-03-31]'::Period)");
  Alcotest.check value "allen_relation routine"
    (str "during")
    (one
       "SELECT allen_relation('[1999-02-01, 1999-02-15]'::Period, \
        '[1999-01-01, 1999-12-31]'::Period)");
  Alcotest.check value "period intersect returns NULL when disjoint"
    (Value.Bool true)
    (one
       "SELECT intersect('[1999-01-01, 1999-01-31]'::Period, \
        '[1999-03-01, 1999-03-31]'::Period) IS NULL")

let check_element_routines_in_sql () =
  let db = medical_db () in
  let one sql = match rows db sql with [ [| v |] ] -> v | _ -> Alcotest.fail sql in
  Alcotest.check value "union"
    (str "{[1999-01-01, 1999-06-30]}")
    (one
       "SELECT union('{[1999-01-01, 1999-03-31]}'::Element, \
        '{[1999-02-01, 1999-06-30]}'::Element)::CHAR");
  Alcotest.check value "difference"
    (str "{[1999-01-01, 1999-01-31 23:59:59]}")
    (one
       "SELECT difference('{[1999-01-01, 1999-03-31]}'::Element, \
        '{[1999-02-01, 1999-06-30]}'::Element)::CHAR");
  Alcotest.check value "count_periods after coalescing"
    (Value.Int 1)
    (one
       "SELECT count_periods('{[1999-01-01, 1999-03-31], [1999-02-01, \
        1999-04-30]}'::Element)");
  Alcotest.check value "contains element/chronon via implicit cast"
    (Value.Bool true)
    (one
       "SELECT contains('{[1999-01-01, 1999-12-31]}'::Element, \
        '1999-06-15'::Chronon)");
  (* Chronons are second-granularity, so adjacency means end + 1 second. *)
  Alcotest.check value "set equality under NOW merges adjacent periods"
    (Value.Bool true)
    (one
       "SELECT '{[1999-01-01, 1999-03-31 23:59:59], [1999-04-01, \
        1999-06-30]}'::Element = '{[1999-01-01, 1999-06-30]}'::Element");
  Alcotest.check value "midnight-to-midnight periods leave a gap"
    (Value.Bool false)
    (one
       "SELECT '{[1999-01-01, 1999-03-31], [1999-04-01, \
        1999-06-30]}'::Element = '{[1999-01-01, 1999-06-30]}'::Element")

(* --- Interval index over elements ----------------------------------------------- *)

let check_interval_index () =
  let db = medical_db () in
  ignore (exec db "CREATE INDEX presc_valid ON Prescription (valid) USING INTERVAL");
  let window_query =
    "SELECT drug FROM Prescription WHERE overlaps(valid, \
     '{[1999-09-22, 1999-09-26]}'::Element) ORDER BY drug"
  in
  (match exec db ("EXPLAIN " ^ window_query) with
  | Db.Message plan ->
    Alcotest.(check bool) "interval scan chosen" true
      (try
         ignore (Str.search_forward (Str.regexp_string "IntervalScan") plan 0);
         true
       with Not_found -> false)
  | _ -> Alcotest.fail "expected plan");
  check_row_list "window query answers match"
    [ [ str "Aspirin" ]; [ str "Prozac" ]; [ str "Tylenol" ] ]
    (rows db window_query);
  (* The NOW-relative Diabeta row has an open-ended extent: any future
     window must still find it. *)
  check_row_list "NOW-relative rows always candidate, recheck decides"
    [ [ str "Diabeta" ]; [ str "Prozac" ] ]
    (rows db
       "SELECT drug FROM Prescription WHERE overlaps(valid, \
        '{[1999-10-10, 1999-10-12]}'::Element) ORDER BY drug")

(* --- Persistence with blade values ------------------------------------------------ *)

let check_persistence_with_blade () =
  let db = medical_db () in
  let path = Filename.temp_file "tip_medical" ".snapshot" in
  Tip_storage.Persist.save (Db.catalog db) path;
  let catalog = Tip_storage.Persist.load path in
  Sys.remove path;
  let table = Tip_storage.Catalog.table_exn catalog "prescription" in
  Alcotest.(check int) "rows preserved" 5 (Table.row_count table);
  (* NOW-relative timestamp must come back symbolic. *)
  let found = ref false in
  Table.iteri
    (fun _ row ->
      if Value.equal row.(3) (str "Diabeta") then begin
        found := true;
        Alcotest.(check string) "symbolic NOW survives disk"
          "{[1999-10-01, NOW]}"
          (Value.to_display_string row.(6))
      end)
    table;
  Alcotest.(check bool) "diabeta row found" true !found

(* --- group_intersect -------------------------------------------------------------- *)

let check_group_intersect () =
  let db = medical_db () in
  check_row_list "common period of all of Mr.Showbiz's prescriptions"
    [ [ str "{[1999-10-01, 1999-10-05]}" ] ]
    (rows db
       "SELECT group_intersect(valid)::CHAR FROM Prescription \
        WHERE patient = 'Mr.Showbiz'")

let _ = demo_now

let suite =
  [ Alcotest.test_case "storage roundtrip of TIP values" `Quick
      check_storage_roundtrip;
    Alcotest.test_case "paper: Tylenol under-w-weeks query" `Quick
      check_tylenol_query;
    Alcotest.test_case "paper: Diabeta/Aspirin temporal self-join" `Quick
      check_self_join_query;
    Alcotest.test_case "paper: coalescing via group_union" `Quick
      check_coalesce_query;
    Alcotest.test_case "NOW changes results as time advances" `Quick
      check_now_shifts_results;
    Alcotest.test_case "SET NOW override" `Quick check_set_now_roundtrip;
    Alcotest.test_case "casts" `Quick check_casts;
    Alcotest.test_case "operator overloads" `Quick check_operator_overloads;
    Alcotest.test_case "Allen operators in SQL" `Quick check_allen_in_sql;
    Alcotest.test_case "element routines in SQL" `Quick
      check_element_routines_in_sql;
    Alcotest.test_case "interval index on elements" `Quick check_interval_index;
    Alcotest.test_case "persistence of blade values" `Quick
      check_persistence_with_blade;
    Alcotest.test_case "group_intersect aggregate" `Quick check_group_intersect ]
